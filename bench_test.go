// Benchmarks regenerating every table and figure of the paper's evaluation
// at reduced scale (run `cmd/glade-bench` for paper-scale numbers). Each
// benchmark reports the experiment's headline metrics via b.ReportMetric so
// `go test -bench` output doubles as a summary of the reproduction:
//
//	go test -bench=. -benchmem
package glade

import (
	"context"
	"testing"
	"time"

	"glade/internal/bench"
)

func benchConfig() bench.Config {
	return bench.Config{
		Seeds:       10,
		EvalSamples: 200,
		FuzzSamples: 3000,
		Timeout:     60 * time.Second,
		RandSeed:    1,
	}
}

// BenchmarkFig4aF1 reproduces Figure 4(a): F1 of the four learners on the
// four target languages. Reported metrics are F1 scores scaled ×1000.
func BenchmarkFig4aF1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig4(context.Background(), benchConfig())
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.F1*1000, r.Target+"/"+r.Learner+"-mF1")
			}
		}
	}
}

// BenchmarkFig4bTime reproduces Figure 4(b): learner running time (ms).
func BenchmarkFig4bTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig4(context.Background(), benchConfig())
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Seconds*1000, r.Target+"/"+r.Learner+"-ms")
			}
		}
	}
}

// BenchmarkFig4cSeeds reproduces Figure 4(c): GLADE precision/recall on XML
// versus the number of seed inputs.
func BenchmarkFig4cSeeds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig4c(context.Background(), benchConfig(), []int{5, 15, 25})
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Precision*1000, sprintInt(r.Seeds)+"seeds-mP")
				b.ReportMetric(r.Recall*1000, sprintInt(r.Seeds)+"seeds-mR")
			}
		}
	}
}

// BenchmarkFig5Grammars reproduces Figure 5: synthesis from documentation
// seeds (reports grammar text length as a size proxy).
func BenchmarkFig5Grammars(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.Fig5(context.Background(), benchConfig())
		if i == 0 {
			for name, g := range out {
				b.ReportMetric(float64(len(g)), name+"-gramlen")
			}
		}
	}
}

// BenchmarkFig6Synthesis reproduces the Figure 6 table: GLADE synthesis
// time and query count per program.
func BenchmarkFig6Synthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ResetCache()
		rows, err := bench.Fig6(context.Background(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Seconds*1000, r.Program+"-ms")
				b.ReportMetric(float64(r.Queries), r.Program+"-queries")
			}
		}
	}
}

// BenchmarkFig7aCoverage reproduces Figure 7(a): valid normalized
// incremental coverage of the three fuzzers (×100, naive = 100).
func BenchmarkFig7aCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ResetCache()
		rows, err := bench.Fig7a(context.Background(), benchConfig(), []string{"sed", "xml", "python"})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Normalized*100, r.Program+"/"+r.Fuzzer+"-cov")
			}
		}
	}
}

// BenchmarkFig7bUpperBound reproduces Figure 7(b): the handwritten-grammar /
// test-suite proxy upper bounds.
func BenchmarkFig7bUpperBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ResetCache()
		c := benchConfig()
		c.FuzzSamples = 1500
		rows, err := bench.Fig7b(context.Background(), c)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Fuzzer == "handwritten" || r.Fuzzer == "testsuite" {
					b.ReportMetric(r.Normalized*100, r.Program+"/"+r.Fuzzer+"-cov")
				}
			}
		}
	}
}

// BenchmarkFig7cCurve reproduces Figure 7(c): coverage over samples on the
// python program (final curve values ×100).
func BenchmarkFig7cCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ResetCache()
		rows, err := bench.Fig7c(context.Background(), benchConfig(), 1000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Samples == 3000 {
					b.ReportMetric(r.Value*100, r.Fuzzer+"-final")
				}
			}
		}
	}
}

// BenchmarkFig8Sample reproduces Figure 8: drawing a valid structured
// sample from the synthesized XML grammar.
func BenchmarkFig8Sample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.ResetCache()
		s, err := bench.Fig8(context.Background(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(s)), "sample-len")
		}
	}
}

// BenchmarkAblations runs the design-choice ablations DESIGN.md calls out:
// phase 2 off, char-gen off, member-check discarding off, reversed
// candidate ordering.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchConfig()
		c.Seeds = 6
		c.EvalSamples = 120
		rows := bench.Ablations(context.Background(), c)
		if i == 0 {
			for _, r := range rows {
				if r.Target == "xml" {
					b.ReportMetric(r.F1*1000, r.Variant+"-mF1")
					b.ReportMetric(float64(r.Queries), r.Variant+"-queries")
				}
			}
		}
	}
}

// BenchmarkParallelSpeedup measures the concurrent batched oracle-query
// engine: the sed and xml programs are learned at Workers=1 and Workers=8
// over an oracle with a simulated per-query program-execution cost, as in
// cmd/glade-bench -fig speedup. Reported metrics: wall-clock speedup ×100,
// oracle throughput (queries/second), and grammar identity (1 = the
// parallel grammar is byte-identical to the sequential one, the engine's
// determinism guarantee).
func BenchmarkParallelSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Speedup(context.Background(), benchConfig(), []string{"sed", "xml"}, []int{1, 8}, 100*time.Microsecond)
		if i == 0 {
			for _, r := range rows {
				suffix := sprintInt(r.Workers) + "w"
				b.ReportMetric(r.Speedup*100, r.Program+"/"+suffix+"-speedup")
				b.ReportMetric(r.QPS, r.Program+"/"+suffix+"-qps")
				identical := 0.0
				if r.Identical {
					identical = 1
				}
				b.ReportMetric(identical, r.Program+"/"+suffix+"-identical")
			}
		}
	}
}

func sprintInt(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
