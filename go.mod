module glade

go 1.24
