// Package glade is a Go implementation of GLADE, the program-input-grammar
// synthesis algorithm of Bastani, Sharma, Aiken & Liang, "Synthesizing
// Program Input Grammars" (PLDI 2017).
//
// Given a handful of valid example inputs and blackbox membership access to
// a program (run it; valid iff it does not report an error), Learn
// synthesizes a context-free grammar approximating the program's input
// language. The grammar can then drive a grammar-based fuzzer
// (NewGrammarFuzzer) that generates mostly-valid, structurally diverse
// inputs.
//
// The package is a facade over the implementation packages:
//
//	internal/core     the synthesis algorithm (phases 1, 2, char-gen)
//	internal/cfg      grammars, Earley parsing, sampling
//	internal/oracle   membership oracles (functions, caching, exec)
//	internal/fuzz     naive / afl-style / grammar-based fuzzers
//
// A minimal session:
//
//	o := glade.OracleFunc(isValidInput)
//	res, err := glade.Learn([]string{"<a>hi</a>"}, o, glade.DefaultOptions())
//	fmt.Println(res.Grammar)
//	fz := glade.NewGrammarFuzzer(res.Grammar, seeds)
//	input := fz.Next(rng)
//
// Oracle queries dominate learning cost — every candidate generalization is
// one blackbox program run. Setting Options.Workers > 1 issues independent
// checks as concurrent batched waves (the oracle must then be safe for
// concurrent use); the synthesized grammar is byte-identical at any worker
// count:
//
//	opts := glade.DefaultOptions()
//	opts.Workers = 8
//	res, err := glade.Learn(seeds, o, opts)
package glade

import (
	"math/rand"

	"glade/internal/cfg"
	"glade/internal/core"
	"glade/internal/fuzz"
	"glade/internal/oracle"
)

// Oracle answers membership queries: does the program accept this input?
type Oracle = oracle.Oracle

// OracleFunc adapts a plain predicate to an Oracle.
func OracleFunc(f func(string) bool) Oracle { return oracle.Func(f) }

// BatchOracle is an Oracle with a concurrent bulk path; the learner uses it
// to issue independent checks as one wave when Options.Workers > 1.
type BatchOracle = oracle.BatchOracle

// ExecOracle runs a command per query, feeding the input on stdin; the
// input is valid when the command exits zero. This treats a real program
// binary exactly as the paper does. Set the returned Exec's Timeout to
// bound each run (a hanging target is killed and treated as rejecting).
func ExecOracle(argv ...string) *oracle.Exec { return &oracle.Exec{Argv: argv} }

// ParallelOracle fans batched queries of a concurrency-safe oracle across
// at most workers goroutines. Learn builds this stack itself when
// Options.Workers > 1; the adapter is exported for callers that batch
// queries outside of learning (evaluation, fuzz triage).
func ParallelOracle(inner Oracle, workers int) BatchOracle {
	return oracle.Parallel(inner, workers)
}

// Grammar is a context-free grammar with byte-class terminals. Its String
// method renders BNF-like productions.
type Grammar = cfg.Grammar

// Options configures learning; start from DefaultOptions.
type Options = core.Options

// DefaultOptions returns the paper's configuration: both phases enabled and
// character generalization over printable ASCII.
func DefaultOptions() Options { return core.DefaultOptions() }

// Stats reports learner effort (queries, candidates, merges, time).
type Stats = core.Stats

// Progress is one phase-level progress event of a learning run; install a
// callback via Options.Progress to observe a run as it advances (the
// glade-serve daemon relays this stream to HTTP clients).
type Progress = core.Progress

// Result is the outcome of Learn: the synthesized grammar, the intermediate
// regular expression, and statistics.
type Result = core.Result

// Learn synthesizes a grammar for the oracle's language from seed inputs.
// Every seed must be accepted by the oracle.
func Learn(seeds []string, o Oracle, opts Options) (*Result, error) {
	return core.Learn(seeds, o, opts)
}

// Parser recognizes and parses strings against a Grammar (Earley).
type Parser = cfg.Parser

// NewParser compiles g for repeated membership queries and parsing.
func NewParser(g *Grammar) *Parser { return cfg.NewParser(g) }

// Sampler draws random strings from a Grammar (uniform PCFG, §8.1).
type Sampler = cfg.Sampler

// NewSampler builds a sampler with the given derivation-depth budget;
// DefaultSampleDepth suits the grammars in this repository.
func NewSampler(g *Grammar, maxDepth int) *Sampler { return cfg.NewSampler(g, maxDepth) }

// DefaultSampleDepth is the sampling depth budget used by Sample and the
// grammar fuzzer; pass it to NewSampler unless you have a reason not to.
const DefaultSampleDepth = cfg.DefaultSampleDepth

// CompiledGrammar is a Grammar lowered into flat index tables for the
// throughput workloads: concurrent batch membership (Accepts, AcceptsAll)
// and low-allocation sampling (Sample). It is safe for concurrent use;
// the one mutable knob, the MaxDepth sampling budget, must be set before
// the value is shared across goroutines.
type CompiledGrammar = cfg.Compiled

// Compile lowers g into its compiled form. Compile once, share freely;
// membership through the compiled engine is several times faster than
// Parser and allocation-free at steady state.
func Compile(g *Grammar) *CompiledGrammar { return cfg.Compile(g) }

// Fuzzer generates test inputs, optionally steering on coverage feedback.
type Fuzzer = fuzz.Fuzzer

// NewGrammarFuzzer builds the paper's grammar-based fuzzer: parse a random
// seed, apply up to 50 random subtree resamplings, render.
func NewGrammarFuzzer(g *Grammar, seeds []string) *fuzz.Grammar {
	return fuzz.NewGrammar(g, seeds)
}

// NewNaiveFuzzer builds the paper's baseline fuzzer: random single-byte
// insertions and deletions on a random seed.
func NewNaiveFuzzer(seeds []string, alphabet []byte) *fuzz.Naive {
	return fuzz.NewNaive(seeds, alphabet)
}

// Sample draws one string from the grammar — a convenience for quick use.
// Callers sampling in volume should Compile the grammar once and use its
// Sample instead.
func Sample(g *Grammar, rng *rand.Rand) string {
	return cfg.NewSampler(g, DefaultSampleDepth).Sample(rng)
}
