// Package glade is a Go implementation of GLADE, the program-input-grammar
// synthesis algorithm of Bastani, Sharma, Aiken & Liang, "Synthesizing
// Program Input Grammars" (PLDI 2017).
//
// Given a handful of valid example inputs and blackbox membership access to
// a program (run it; valid iff it does not report an error), LearnContext
// synthesizes a context-free grammar approximating the program's input
// language. The grammar can then drive a grammar-based fuzzer
// (NewGrammarFuzzer) that generates mostly-valid, structurally diverse
// inputs.
//
// The package is a facade over the implementation packages:
//
//	internal/core     the synthesis algorithm (phases 1, 2, char-gen)
//	internal/cfg      grammars, Earley parsing, sampling
//	internal/oracle   membership oracles (functions, caching, exec) and
//	                  the named oracle-spec registry (OracleSpec)
//	internal/fuzz     naive / afl-style / grammar-based fuzzers
//	internal/telemetry metrics registry, phase tracing, Prometheus text
//
// # The v2 API: contexts and verdicts
//
// The primary oracle contract is CheckOracle: Check(ctx, input) answers
// with a Verdict — VerdictAccept, VerdictReject, VerdictCrash (the target
// died on a signal), VerdictTimeout (the per-query deadline killed it) —
// and an error that means the oracle itself failed, which aborts learning
// instead of silently reading as a rejection. LearnContext threads the
// context through every phase: cancel it and learning returns within one
// oracle wave, wrapping ctx.Err().
//
// A minimal session:
//
//	o := glade.CheckOracleFunc(func(ctx context.Context, s string) (glade.Verdict, error) {
//		if isValidInput(s) {
//			return glade.VerdictAccept, nil
//		}
//		return glade.VerdictReject, nil
//	})
//	res, err := glade.LearnContext(ctx, []string{"<a>hi</a>"}, o, glade.DefaultOptions())
//	fmt.Println(res.Grammar)
//	fz := glade.NewGrammarFuzzer(res.Grammar, seeds)
//	input := fz.Next(rng)
//
// Plain boolean predicates still work — OracleFunc builds a v1 Oracle and
// AsCheckOracle (or the deprecated Learn shim) adapts it.
//
// Oracle queries dominate learning cost — every candidate generalization is
// one blackbox program run. Setting Options.Workers > 1 issues independent
// checks as concurrent batched waves (the oracle must then be safe for
// concurrent use); the synthesized grammar is byte-identical at any worker
// count:
//
//	opts := glade.DefaultOptions()
//	opts.Workers = 8
//	res, err := glade.LearnContext(ctx, seeds, o, opts)
package glade

import (
	"context"
	"io"
	"math/rand"
	"sync"

	"glade/internal/cfg"
	"glade/internal/core"
	"glade/internal/fuzz"
	"glade/internal/oracle"
	_ "glade/internal/oracle/registry" // named oracle specs resolve here
	"glade/internal/telemetry"
)

// Verdict is the outcome of one membership query: the domain answer about
// the input. Oracle failures travel as errors next to the Verdict, never
// as a verdict.
type Verdict = oracle.Verdict

// The four verdicts. Only VerdictAccept means the input is in the
// language; VerdictCrash and VerdictTimeout are rejections carrying the
// extra signal fuzzing campaigns triage into their own buckets.
const (
	// VerdictReject: the target processed the input and reported it invalid.
	VerdictReject = oracle.Reject
	// VerdictAccept: the input is in the target's language.
	VerdictAccept = oracle.Accept
	// VerdictCrash: the target died on a signal rather than exiting.
	VerdictCrash = oracle.Crash
	// VerdictTimeout: the target exceeded the per-query deadline and was
	// killed.
	VerdictTimeout = oracle.Timeout
)

// CheckOracle is the v2 oracle contract: Check(ctx, input) answers one
// membership query with a Verdict and an error (the error means the oracle
// itself failed — cancellation, a missing binary — and aborts learning).
type CheckOracle = oracle.CheckOracle

// BatchCheckOracle is a CheckOracle with a concurrent bulk path; the
// learner uses it to issue independent checks as one wave when
// Options.Workers > 1.
type BatchCheckOracle = oracle.BatchCheckOracle

// CheckOracleFunc adapts a context-aware verdict function to a CheckOracle.
func CheckOracleFunc(f func(ctx context.Context, input string) (Verdict, error)) CheckOracle {
	return oracle.CheckFunc(f)
}

// AsCheckOracle adapts a v1 boolean Oracle to the CheckOracle contract
// (true ↦ VerdictAccept, false ↦ VerdictReject; cancellation observed
// between queries). Oracles that already implement CheckOracle pass
// through unchanged.
func AsCheckOracle(o Oracle) CheckOracle { return oracle.AsCheck(o) }

// CheckAll answers every query: through o's bulk path when it provides
// one, otherwise fanning Check calls across at most workers goroutines.
// On a non-nil error the verdict slice must be discarded.
func CheckAll(ctx context.Context, o CheckOracle, inputs []string, workers int) ([]Verdict, error) {
	return oracle.CheckAll(ctx, o, inputs, workers)
}

// ParallelCheckOracle fans batched queries of a concurrency-safe
// CheckOracle across at most workers goroutines. LearnContext builds this
// stack itself when Options.Workers > 1; the adapter is exported for
// callers that batch queries outside of learning (evaluation, fuzz
// triage).
func ParallelCheckOracle(inner CheckOracle, workers int) BatchCheckOracle {
	return oracle.Parallel(inner, workers)
}

// Oracle answers boolean membership queries: does the program accept this
// input? It remains the convenient contract for pure in-process
// predicates; wrap with AsCheckOracle where a CheckOracle is required.
type Oracle = oracle.Oracle

// OracleFunc adapts a plain predicate to an Oracle (which also satisfies
// CheckOracle: true ↦ VerdictAccept, false ↦ VerdictReject).
func OracleFunc(f func(string) bool) Oracle { return oracle.Func(f) }

// BatchOracle is an Oracle with a concurrent bulk path (v1 contract).
type BatchOracle = oracle.BatchOracle

// OracleSpec is the one oracle-construction description shared by the
// CLIs (-oracle flags), the HTTP API, and stored grammar metadata:
// {Type: "builtin"|"program"|"target", Name: ...} selects a registered
// in-process oracle, {Type: "exec", Argv: ...} an external command.
type OracleSpec = oracle.Spec

// OracleBuildOptions parameterizes BuildOracle; the zero value is usable.
type OracleBuildOptions = oracle.BuildOptions

// OracleRegistration describes one named oracle in the process-wide
// registry, as listed by RegisteredOracles.
type OracleRegistration = oracle.Registration

// ParseOracleSpec parses the CLI flag form of an OracleSpec:
// "builtin:json", "program:sed", "target:xml", "exec:python3 -", or a
// bare registered name.
func ParseOracleSpec(s string) (OracleSpec, error) { return oracle.ParseSpec(s) }

// BuildOracle resolves a spec into a CheckOracle plus the oracle's
// bundled seed inputs (nil for exec specs). Named specs resolve against
// the in-process registry — builtins over pure-Go targets
// (encoding/json, net/url, go/parser, ...), the paper's §8.3 programs,
// and the §8.2 evaluation languages — which importing this package
// populates.
func BuildOracle(sp OracleSpec, opt OracleBuildOptions) (CheckOracle, []string, error) {
	return sp.Build(opt)
}

// RegisteredOracles lists every named oracle the registry knows,
// builtins first, then programs, then targets.
func RegisteredOracles() []OracleRegistration { return oracle.NamedOracles() }

// ExecOracle runs a command per query, feeding the input on stdin; the
// input is valid when the command exits zero. This treats a real program
// binary exactly as the paper does. Set the returned Exec's Timeout to
// bound each run (a hanging target is killed with VerdictTimeout); its
// Check method reports signal deaths as VerdictCrash and a command that
// cannot run at all as an error.
func ExecOracle(argv ...string) *oracle.Exec { return &oracle.Exec{Argv: argv} }

// ParallelOracle fans batched queries of a concurrency-safe oracle across
// at most workers goroutines.
//
// Deprecated: use ParallelCheckOracle, which carries context cancellation
// through the wave. This shim adapts boolean oracles and keeps the v1
// return type.
func ParallelOracle(inner Oracle, workers int) BatchOracle {
	return oracle.Parallel(oracle.AsCheck(inner), workers)
}

// ResilientOracle wraps a CheckOracle with bounded retries for transient
// failures and a per-oracle circuit breaker. Verdicts are never retried —
// only errors are — so learning through it yields byte-identical grammars;
// permanent errors (unknown binary, bad spec) abort on the first attempt.
type ResilientOracle = oracle.Resilient

// RetryPolicy bounds the retry loop of a ResilientOracle: total attempts
// per query and the exponential full-jitter backoff between them.
type RetryPolicy = oracle.RetryPolicy

// BreakerPolicy configures a ResilientOracle's circuit breaker: the
// consecutive-failure threshold that opens it and the cooldown before a
// half-open probe.
type BreakerPolicy = oracle.BreakerPolicy

// ResilientOracleOptions configures NewResilientOracle; the zero value
// retries nothing and never opens the breaker.
type ResilientOracleOptions = oracle.ResilientOptions

// NewResilientOracle wraps inner with the retry/breaker layer. The same
// wrapper is what OracleBuildOptions.Retry/Breaker add inside BuildOracle.
func NewResilientOracle(inner CheckOracle, opt ResilientOracleOptions) *ResilientOracle {
	return oracle.NewResilient(inner, opt)
}

// FaultInjectingOracle deterministically injects transient errors,
// latency, hangs, and panics into an oracle — chaos testing for anything
// built on ResilientOracle.
type FaultInjectingOracle = oracle.FaultInjector

// FaultOptions sets the per-query fault rates (and seed) of a
// FaultInjectingOracle. The schedule is a pure function of (seed, input,
// per-input attempt), so runs are reproducible under any concurrency.
type FaultOptions = oracle.FaultOptions

// NewFaultInjectingOracle wraps inner with deterministic fault injection.
func NewFaultInjectingOracle(inner CheckOracle, opt FaultOptions) *FaultInjectingOracle {
	return oracle.NewFaultInjector(inner, opt)
}

// ErrOracleBreakerOpen is the sentinel inside errors returned while a
// ResilientOracle's circuit breaker is rejecting queries; test with
// errors.Is. It is itself a transient error.
var ErrOracleBreakerOpen = oracle.ErrBreakerOpen

// MarkTransientOracleError marks err as transient so a ResilientOracle
// will retry it. Use it in custom CheckOracle implementations for
// failures that are worth retrying (resource exhaustion, flaky IPC).
func MarkTransientOracleError(err error) error { return oracle.MarkTransient(err) }

// IsTransientOracleError reports whether err is worth retrying: marked
// transient, a breaker rejection, or a retryable syscall failure
// (EAGAIN, ENOMEM, ECONNRESET, ...). Context cancellation and deadline
// expiry are never transient.
func IsTransientOracleError(err error) bool { return oracle.IsTransient(err) }

// Grammar is a context-free grammar with byte-class terminals. Its String
// method renders BNF-like productions.
type Grammar = cfg.Grammar

// Options configures learning; start from DefaultOptions.
type Options = core.Options

// DefaultOptions returns the paper's configuration: both phases enabled and
// character generalization over printable ASCII.
func DefaultOptions() Options { return core.DefaultOptions() }

// Stats reports learner effort (queries, candidates, merges, time).
type Stats = core.Stats

// Progress is one phase-level progress event of a learning run; install a
// callback via Options.Progress to observe a run as it advances (the
// glade-serve daemon relays this stream to HTTP clients).
type Progress = core.Progress

// Result is the outcome of learning: the synthesized grammar, the
// intermediate regular expression, and statistics.
type Result = core.Result

// Span is one completed phase of a learning run: name, seed count, start
// time, wall duration, and phase-specific attributes (queries, cache hits,
// waves, speculation hit-rate). Spans of one run are contiguous — each
// starts exactly where the previous ended — so their durations sum to the
// run's wall time.
type Span = telemetry.Span

// Tracer receives the phase spans of a learning run; install one via
// Options.Tracer. Emit is called once per completed phase, from the
// learner's goroutine.
type Tracer = telemetry.Tracer

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc = telemetry.TracerFunc

// SpanRecorder is a Tracer that buffers spans in memory for later
// inspection (Spans, PhaseSummary). Safe for concurrent use.
type SpanRecorder = telemetry.SpanRecorder

// NewNDJSONTracer returns a Tracer that writes each span as one JSON
// object per line to w — the format `glade -trace out.ndjson` emits.
// Safe for concurrent use; callers own closing w.
func NewNDJSONTracer(w io.Writer) *telemetry.NDJSONTracer {
	return telemetry.NewNDJSONTracer(w)
}

// LearnContext synthesizes a grammar for the oracle's language from seed
// inputs. Every seed must be accepted by the oracle. Cancelling ctx aborts
// the run within one oracle wave, returning an error wrapping ctx.Err();
// an oracle error (as opposed to a rejection verdict) aborts the same way.
// Options.Timeout, by contrast, finalizes the language learned so far.
func LearnContext(ctx context.Context, seeds []string, o CheckOracle, opts Options) (*Result, error) {
	return core.Learn(ctx, seeds, o, opts)
}

// Learn synthesizes a grammar for the oracle's language from seed inputs.
//
// Deprecated: use LearnContext, which can be cancelled and distinguishes
// oracle failure from rejection. Learn runs under context.Background().
func Learn(seeds []string, o Oracle, opts Options) (*Result, error) {
	return core.Learn(context.Background(), seeds, oracle.AsCheck(o), opts)
}

// Parser recognizes and parses strings against a Grammar (Earley).
type Parser = cfg.Parser

// NewParser compiles g for repeated membership queries and parsing.
func NewParser(g *Grammar) *Parser { return cfg.NewParser(g) }

// Sampler draws random strings from a Grammar (uniform PCFG, §8.1).
type Sampler = cfg.Sampler

// NewSampler builds a sampler with the given derivation-depth budget;
// DefaultSampleDepth suits the grammars in this repository.
func NewSampler(g *Grammar, maxDepth int) *Sampler { return cfg.NewSampler(g, maxDepth) }

// DefaultSampleDepth is the sampling depth budget used by Sample and the
// grammar fuzzer; pass it to NewSampler unless you have a reason not to.
const DefaultSampleDepth = cfg.DefaultSampleDepth

// CompiledGrammar is a Grammar lowered into flat index tables for the
// throughput workloads: concurrent batch membership (Accepts, AcceptsAll)
// and low-allocation sampling (Sample). It is safe for concurrent use;
// the one mutable knob, the MaxDepth sampling budget, must be set before
// the value is shared across goroutines.
type CompiledGrammar = cfg.Compiled

// Compile lowers g into its compiled form. Compile once, share freely;
// membership through the compiled engine is several times faster than
// Parser and allocation-free at steady state.
func Compile(g *Grammar) *CompiledGrammar { return cfg.Compile(g) }

// Fuzzer generates test inputs, optionally steering on coverage feedback.
type Fuzzer = fuzz.Fuzzer

// NewGrammarFuzzer builds the paper's grammar-based fuzzer: parse a random
// seed, apply up to 50 random subtree resamplings, render.
func NewGrammarFuzzer(g *Grammar, seeds []string) *fuzz.Grammar {
	return fuzz.NewGrammar(g, seeds)
}

// NewNaiveFuzzer builds the paper's baseline fuzzer: random single-byte
// insertions and deletions on a random seed.
func NewNaiveFuzzer(seeds []string, alphabet []byte) *fuzz.Naive {
	return fuzz.NewNaive(seeds, alphabet)
}

// sampleCache memoizes the compiled form of the grammar most recently
// passed to Sample, so repeated convenience calls on the same grammar pay
// the Compile cost once instead of per call. One slot suffices for the
// helper's intended use; callers juggling many grammars should Compile
// each themselves.
var sampleCache struct {
	sync.Mutex
	g *Grammar
	c *CompiledGrammar
}

// Sample draws one string from the grammar — a convenience for quick use.
// The first call on a grammar compiles it (cfg.Compile, linear in grammar
// size) and caches the compiled form; subsequent calls on the same
// *Grammar reuse it, so sampling in a loop costs one compile plus one
// allocation per sample. The cache is keyed on the *Grammar pointer and
// assumes the grammar is not mutated after its first Sample — a grammar
// extended in place (AddNT/Add) keeps sampling its old language here;
// Compile it yourself after mutations. The cache holds exactly one
// grammar: alternating between grammars recompiles on every switch —
// Compile once and use CompiledGrammar.Sample directly for that. The
// drawn strings are identical to NewSampler(g, DefaultSampleDepth).Sample
// for the same rng stream.
func Sample(g *Grammar, rng *rand.Rand) string {
	sampleCache.Lock()
	c := sampleCache.c
	if sampleCache.g != g {
		c = cfg.Compile(g)
		sampleCache.g, sampleCache.c = g, c
	}
	sampleCache.Unlock()
	return c.Sample(rng)
}
