package service

import (
	"encoding/json"
	"net/http"
	"runtime"
)

// Server-side bounds on batch membership checks: the endpoint is designed
// to be the cheap high-QPS one (no oracle, no subprocess — just the
// compiled recognition ladder), so the caps bound per-request work, not
// concurrency.
const (
	// maxCheckInputs bounds inputs per POST /v1/grammars/{id}/check.
	maxCheckInputs = 1000
	// maxCheckBytes bounds the summed length of those inputs.
	maxCheckBytes = 1 << 20
)

// checkRequest is the body of POST /v1/grammars/{id}/check.
type checkRequest struct {
	Inputs []string `json:"inputs"`
}

// checkResponse answers a batch membership check: verdicts is
// index-aligned with the request's inputs, accepted counts the true ones.
type checkResponse struct {
	GrammarID string `json:"grammar_id"`
	Count     int    `json:"count"`
	Accepted  int    `json:"accepted"`
	Verdicts  []bool `json:"verdicts"`
}

// handleCheck serves POST /v1/grammars/{id}/check: batch membership of the
// posted inputs against the stored grammar's compiled recognition ladder
// (cfg.Compiled.AcceptsAll). No oracle is consulted — verdicts are the
// grammar's own language, served from the store's hot cache, which is what
// makes this the endpoint of choice for high-QPS load (and the one
// glade-bench -fig serve leans on).
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req checkRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad check request: %v", err)
		return
	}
	if len(req.Inputs) == 0 {
		writeError(w, http.StatusBadRequest, "no inputs")
		return
	}
	if len(req.Inputs) > maxCheckInputs {
		writeError(w, http.StatusBadRequest, "%d inputs exceeds limit %d", len(req.Inputs), maxCheckInputs)
		return
	}
	total := 0
	for _, in := range req.Inputs {
		total += len(in)
	}
	if total > maxCheckBytes {
		writeError(w, http.StatusBadRequest, "inputs total %d bytes exceeds limit %d", total, maxCheckBytes)
		return
	}
	compiled, err := s.store.Compiled(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	// Fan membership out across cores for large batches; AcceptsAll runs
	// sequentially below 2 workers, reusing one scratch set either way.
	workers := min(runtime.GOMAXPROCS(0), len(req.Inputs)/16)
	verdicts := compiled.AcceptsAll(req.Inputs, workers)
	accepted := 0
	for _, v := range verdicts {
		if v {
			accepted++
		}
	}
	s.met.checkInputs.Add(uint64(len(verdicts)))
	writeJSON(w, http.StatusOK, checkResponse{
		GrammarID: id,
		Count:     len(verdicts),
		Accepted:  accepted,
		Verdicts:  verdicts,
	})
}
