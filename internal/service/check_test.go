package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// mustUnmarshal decodes JSON or fails the test with the raw body.
func mustUnmarshal(t *testing.T, data []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
}

// putTestGrammar stores a tiny grammar (L = "a"+ digits) for the check
// endpoint tests.
func putTestGrammar(t *testing.T, srv *Server, id string) {
	t.Helper()
	g := mustGrammar(t, "start A\nA -> \"a\" A\nA -> {0-9}\n")
	if err := srv.Store().Put(g, GrammarMeta{ID: id, CreatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchCheck drives POST /v1/grammars/{id}/check: index-aligned
// verdicts from the compiled ladder, accepted count, unknown-grammar 404,
// and the count/size caps.
func TestBatchCheck(t *testing.T) {
	srv, ts := testServer(t, t.TempDir())
	putTestGrammar(t, srv, "chk")

	var out checkResponse
	resp, body := postJSON(t, ts.URL+"/v1/grammars/chk/check", map[string]any{
		"inputs": []string{"a1", "aaa7", "b", "", "a"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check: %d %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &out)
	want := []bool{true, true, false, false, false}
	if out.Count != 5 || out.Accepted != 2 || len(out.Verdicts) != 5 {
		t.Fatalf("bad response: %+v", out)
	}
	for i, v := range want {
		if out.Verdicts[i] != v {
			t.Fatalf("verdict[%d] = %v, want %v (%+v)", i, out.Verdicts[i], v, out)
		}
	}

	// Unknown grammar.
	resp, _ = postJSON(t, ts.URL+"/v1/grammars/nosuch/check", map[string]any{"inputs": []string{"a"}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown grammar: %d", resp.StatusCode)
	}

	// Empty input list.
	resp, _ = postJSON(t, ts.URL+"/v1/grammars/chk/check", map[string]any{"inputs": []string{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty inputs: %d", resp.StatusCode)
	}

	// Count cap.
	many := make([]string, maxCheckInputs+1)
	for i := range many {
		many[i] = "a1"
	}
	resp, _ = postJSON(t, ts.URL+"/v1/grammars/chk/check", map[string]any{"inputs": many})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("count cap: %d", resp.StatusCode)
	}

	// Size cap (few inputs, huge bytes).
	big := []string{strings.Repeat("a", maxCheckBytes/2), strings.Repeat("a", maxCheckBytes/2+2)}
	resp, _ = postJSON(t, ts.URL+"/v1/grammars/chk/check", map[string]any{"inputs": big})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("size cap: %d", resp.StatusCode)
	}

	// Unknown fields are rejected like every other JSON body.
	resp, _ = postJSON(t, ts.URL+"/v1/grammars/chk/check", map[string]any{"inputs": []string{"a1"}, "bogus": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", resp.StatusCode)
	}
}

// TestBatchCheckLargeBatchParallel exercises the worker fan-out path
// (inputs/16 >= 2 workers) and checks the telemetry counter advances.
func TestBatchCheckLargeBatchParallel(t *testing.T) {
	srv, ts := testServer(t, t.TempDir())
	putTestGrammar(t, srv, "par")
	inputs := make([]string, 256)
	wantAccept := 0
	for i := range inputs {
		if i%2 == 0 {
			inputs[i] = "a5"
			wantAccept++
		} else {
			inputs[i] = "nope"
		}
	}
	var out checkResponse
	resp, body := postJSON(t, ts.URL+"/v1/grammars/par/check", map[string]any{"inputs": inputs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check: %d %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &out)
	if out.Accepted != wantAccept || out.Count != len(inputs) {
		t.Fatalf("parallel batch wrong: %+v", out)
	}
	for i, v := range out.Verdicts {
		if v != (i%2 == 0) {
			t.Fatalf("verdict[%d] = %v", i, v)
		}
	}
	if got := srv.met.checkInputs.Value(); got < uint64(len(inputs)) {
		t.Fatalf("check counter = %d, want >= %d", got, len(inputs))
	}
}
