package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"glade/internal/oracle"
)

// oraclesResponse mirrors the GET /v1/oracles wire shape.
type oraclesResponse struct {
	Oracles []struct {
		Spec        string `json:"spec"`
		Kind        string `json:"kind"`
		Name        string `json:"name"`
		Description string `json:"description"`
		Seeds       int    `json:"seeds"`
		ExecGated   bool   `json:"exec_gated"`
	} `json:"oracles"`
	ExecAllowed bool `json:"exec_allowed"`
}

// TestListOracles checks GET /v1/oracles: every registered named oracle
// appears ungated with a description, the synthetic exec row is flagged
// exec_gated, and exec_allowed reflects the server config.
func TestListOracles(t *testing.T) {
	_, ts := testServer(t, t.TempDir())
	var out oraclesResponse
	resp := getJSON(t, ts.URL+"/v1/oracles", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/oracles: %d", resp.StatusCode)
	}
	if out.ExecAllowed {
		t.Error("exec_allowed true on a default (gated) server")
	}
	byKindName := map[string]bool{}
	execRows := 0
	for _, row := range out.Oracles {
		if row.Kind == oracle.SpecExec {
			execRows++
			if !row.ExecGated {
				t.Error("exec row not marked exec_gated")
			}
			continue
		}
		if row.ExecGated {
			t.Errorf("named oracle %s marked exec_gated", row.Spec)
		}
		if row.Description == "" || row.Spec != row.Kind+":"+row.Name {
			t.Errorf("malformed row: %+v", row)
		}
		byKindName[row.Spec] = true
	}
	if execRows != 1 {
		t.Errorf("%d exec rows, want exactly 1", execRows)
	}
	for _, want := range []string{"builtin:json", "builtin:json-strict", "program:sed", "target:xml"} {
		if !byKindName[want] {
			t.Errorf("oracle %s missing from listing", want)
		}
	}
	if len(byKindName) != len(oracle.NamedOracles()) {
		t.Errorf("listing has %d named rows, registry has %d", len(byKindName), len(oracle.NamedOracles()))
	}
}

// TestBuiltinJobWithoutAllowExec is the tentpole's gating contract from
// the job side: a builtin oracle spec runs in-process, so a server
// without -allow-exec accepts it (while TestExecGating pins that exec
// specs still 403), and the job learns from the builtin's bundled seeds.
func TestBuiltinJobWithoutAllowExec(t *testing.T) {
	_, ts := testServer(t, t.TempDir())
	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Oracle: oracle.Spec{Type: oracle.SpecBuiltin, Name: "semver"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("builtin job on gated server: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, ts.URL, st.ID)
	if st.State != JobDone {
		t.Fatalf("builtin job failed: %s", st.Error)
	}
	if st.Stats == nil || st.Stats.OracleQueries == 0 {
		t.Fatalf("no oracle queries recorded: %+v", st)
	}
	// The stored metadata records the canonical spec, round-trippable
	// through ParseSpec.
	var wrapped struct {
		Meta GrammarMeta `json:"meta"`
	}
	getJSON(t, ts.URL+"/v1/grammars/"+st.GrammarID+"?format=json", &wrapped)
	if wrapped.Meta.Spec.Type != oracle.SpecBuiltin || wrapped.Meta.Spec.Name != "semver" {
		t.Fatalf("stored spec mangled: %+v", wrapped.Meta.Spec)
	}
}

// TestDifferentialCampaignHTTP submits a differential campaign over HTTP:
// learn from builtin:json (whose seeds include top-level scalars), fuzz
// with builtin:json-strict as the diff oracle, and require at least one
// triaged disagreement — the acceptance scenario of the oracle registry.
func TestDifferentialCampaignHTTP(t *testing.T) {
	_, ts := testServer(t, t.TempDir())
	resp, body := postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{
		Oracle:     &oracle.Spec{Type: oracle.SpecBuiltin, Name: "json"},
		DiffOracle: &oracle.Spec{Type: oracle.SpecBuiltin, Name: "json-strict"},
		DurationMS: 3000,
		Workers:    4,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st CampaignStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	st = waitCampaignDone(t, ts.URL, st.ID)
	if st.State != JobDone {
		t.Fatalf("campaign failed: %s", st.Error)
	}
	rep := st.Report
	if rep == nil || !rep.Done {
		t.Fatalf("no finished report: %+v", st)
	}
	if rep.DiffOracle != "builtin:json-strict" {
		t.Errorf("DiffOracle = %q", rep.DiffOracle)
	}
	if rep.DiffDisagreements == 0 {
		t.Fatalf("no disagreements between json and json-strict: buckets %v (%d inputs)",
			rep.Buckets, rep.Inputs)
	}
	if rep.Buckets["diff_accept"]+rep.Buckets["diff_reject"] == 0 {
		t.Fatalf("disagreements not triaged into diff buckets: %v", rep.Buckets)
	}
	if rep.DiffQueries == nil || rep.DiffQueries.Queries == 0 {
		t.Error("diff oracle query stats missing")
	}

	// A diff oracle alone follows the same exec gating as the primary.
	resp, _ = postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{
		Oracle:     &oracle.Spec{Type: oracle.SpecBuiltin, Name: "json"},
		DiffOracle: &oracle.Spec{Type: oracle.SpecExec, Argv: []string{"true"}},
		DurationMS: 1000,
	})
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("exec diff oracle without AllowExec: got %d, want 403", resp.StatusCode)
	}
	// An unknown diff oracle is a 400 at submit time, not a late failure.
	resp, _ = postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{
		Oracle:     &oracle.Spec{Type: oracle.SpecBuiltin, Name: "json"},
		DiffOracle: &oracle.Spec{Type: oracle.SpecBuiltin, Name: "no-such"},
		DurationMS: 1000,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown diff oracle: got %d, want 400", resp.StatusCode)
	}
}
