package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"glade/internal/campaign"
	"glade/internal/core"
	"glade/internal/oracle"
)

// CampaignSpec is the body of POST /v1/campaigns: a long-running fuzzing
// campaign against either a stored grammar (GrammarID, using its recorded
// oracle) or a fresh one (Oracle, learned before the campaign starts — the
// learned grammar is stored under the campaign's id like a normal job's).
// Exactly one of GrammarID and Oracle must be set.
type CampaignSpec struct {
	// GrammarID names a stored grammar; its recorded oracle spec answers
	// the campaign's membership queries.
	GrammarID string `json:"grammar_id,omitempty"`
	// Oracle, when GrammarID is empty, is learned from before fuzzing —
	// the campaign then runs against the freshly synthesized grammar.
	Oracle *oracle.Spec `json:"oracle,omitempty"`
	// DiffOracle, when set, makes the campaign differential: every wave is
	// also checked against this second oracle, and inputs on which the two
	// disagree are triaged into the diff_accept / diff_reject corpus
	// buckets. Exec diff oracles are gated by -allow-exec like primaries.
	DiffOracle *oracle.Spec `json:"diff_oracle,omitempty"`
	// Seeds overrides the seed inputs (default: the stored grammar's
	// recorded seeds, or the builtin oracle's bundled seeds).
	Seeds []string `json:"seeds,omitempty"`
	// DurationMS bounds the campaign (default 30s; clamped to the server's
	// -campaign-timeout). HTTP campaigns are always bounded.
	DurationMS int `json:"duration_ms,omitempty"`
	// Workers bounds concurrent oracle queries (clamped to MaxWorkers).
	Workers int `json:"workers,omitempty"`
	// Batch is the campaign wave size (default 64, max 1024).
	Batch int `json:"batch,omitempty"`
	// MutateRatio is the naive-mutant fraction per wave (default 0.25).
	MutateRatio float64 `json:"mutate_ratio,omitempty"`
	// RefreshEveryMS, when positive, re-learns the grammar at this
	// interval from discovered accept flips.
	RefreshEveryMS int `json:"refresh_every_ms,omitempty"`
	// RandSeed seeds the campaign's generators.
	RandSeed int64 `json:"rand_seed,omitempty"`
	// Retries is the per-query transient-failure retry budget for the
	// campaign's oracles (nil uses the server default, clamped
	// server-side to Config.MaxRetries).
	Retries *int `json:"retries,omitempty"`
}

// CampaignStatus is the wire form of a campaign snapshot; watch streams
// emit one per progress checkpoint.
type CampaignStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Phase is "learn" while a fresh grammar is being synthesized,
	// "fuzz" while waves run.
	Phase  string `json:"phase,omitempty"`
	Oracle string `json:"oracle"`
	// GrammarID is the grammar driving the campaign (the spec's, or the
	// campaign's own id when it learned one).
	GrammarID string     `json:"grammar_id,omitempty"`
	Created   time.Time  `json:"created_at"`
	Started   *time.Time `json:"started_at,omitempty"`
	Finished  *time.Time `json:"finished_at,omitempty"`
	Error     string     `json:"error,omitempty"`
	// Report is the latest checkpoint (final once State is done).
	Report *campaign.Report `json:"report,omitempty"`
}

// CampaignRun is one campaign owned by the server. Mutable fields are
// guarded by mu; changed is closed and replaced on every mutation so
// watchers block for "anything new" without polling (the Job pattern).
type CampaignRun struct {
	ID   string
	Spec CampaignSpec

	mu        sync.Mutex
	changed   chan struct{}
	state     JobState
	phase     string
	oracle    string
	grammarID string
	err       string
	created   time.Time
	started   time.Time
	finished  time.Time
	report    campaign.Report
	hasReport bool
	seq       int // increments on every mutation; the watch cursor space
	// cancel aborts the running campaign's context; set by runCampaign.
	// cancelRequested records that a DELETE asked for it, so the engine's
	// normal-cancellation exit maps to canceled rather than done.
	cancel          func()
	cancelRequested bool
	// reqID is the submitting HTTP request's ID ("" for direct
	// SubmitCampaign calls); immutable after creation.
	reqID string
}

// log returns the base logger with the campaign's identity attached.
func (cr *CampaignRun) log(base *slog.Logger) *slog.Logger {
	l := base.With("campaign", cr.ID)
	if cr.reqID != "" {
		l = l.With("req", cr.reqID)
	}
	return l
}

func newCampaignRun(spec CampaignSpec) *CampaignRun {
	return &CampaignRun{
		ID:      newID(),
		Spec:    spec,
		changed: make(chan struct{}),
		state:   JobQueued,
		created: time.Now(),
	}
}

// touch wakes every watcher. Callers hold cr.mu.
func (cr *CampaignRun) touch() {
	cr.seq++
	close(cr.changed)
	cr.changed = make(chan struct{})
}

// status snapshots the campaign.
func (cr *CampaignRun) status() CampaignStatus {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return cr.statusLocked()
}

func (cr *CampaignRun) statusLocked() CampaignStatus {
	st := CampaignStatus{
		ID:        cr.ID,
		State:     cr.state,
		Phase:     cr.phase,
		Oracle:    cr.oracle,
		GrammarID: cr.grammarID,
		Created:   cr.created,
		Error:     cr.err,
	}
	if !cr.started.IsZero() {
		t := cr.started
		st.Started = &t
	}
	if !cr.finished.IsZero() {
		t := cr.finished
		st.Finished = &t
	}
	if cr.hasReport {
		r := cr.report
		st.Report = &r
	}
	return st
}

// watch returns the current snapshot, the advanced cursor, and a channel
// closed on the next mutation; fresh reports whether the snapshot is newer
// than the caller's cursor.
func (cr *CampaignRun) watch(cursor int) (st CampaignStatus, next int, fresh bool, changed <-chan struct{}) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return cr.statusLocked(), cr.seq, cr.seq > cursor, cr.changed
}

// campaignRecord is the JSON persisted per campaign under
// <DataDir>/campaigns/<id>.json: the status plus the spec, written at
// every checkpoint and at completion so reports survive daemon restarts
// (a record still marked running on load belongs to a campaign the
// previous incarnation never finished; it is surfaced as failed with its
// last checkpoint intact).
type campaignRecord struct {
	ID        string           `json:"id"`
	State     JobState         `json:"state"`
	Oracle    string           `json:"oracle"`
	GrammarID string           `json:"grammar_id,omitempty"`
	Created   time.Time        `json:"created_at"`
	Started   time.Time        `json:"started_at,omitempty"`
	Finished  time.Time        `json:"finished_at,omitempty"`
	Error     string           `json:"error,omitempty"`
	Spec      CampaignSpec     `json:"spec"`
	Report    *campaign.Report `json:"report,omitempty"`
}

// campaignsDir is the per-store subdirectory holding campaign records.
func (s *Server) campaignsDir() string { return filepath.Join(s.store.Dir(), "campaigns") }

// persistCampaign writes the campaign's current record atomically; failures
// are logged, not fatal (the in-memory run stays authoritative).
func (s *Server) persistCampaign(cr *CampaignRun) {
	cr.mu.Lock()
	rec := campaignRecord{
		ID:        cr.ID,
		State:     cr.state,
		Oracle:    cr.oracle,
		GrammarID: cr.grammarID,
		Created:   cr.created,
		Started:   cr.started,
		Finished:  cr.finished,
		Error:     cr.err,
		Spec:      cr.Spec,
	}
	if cr.hasReport {
		r := cr.report
		rec.Report = &r
	}
	cr.mu.Unlock()
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		s.log.Warn("campaign record marshal failed", "campaign", cr.ID, "err", err)
		return
	}
	dir := s.campaignsDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.log.Warn("campaigns dir create failed", "campaign", cr.ID, "err", err)
		return
	}
	if err := writeAtomic(filepath.Join(dir, cr.ID+".json"), append(data, '\n')); err != nil {
		s.log.Warn("campaign record persist failed", "campaign", cr.ID, "err", err)
	}
}

// loadCampaigns restores persisted campaign records at startup. Records
// left in a non-terminal state by a previous incarnation are surfaced as
// failed, keeping their last checkpointed report — the report survives the
// restart even though the campaign itself did not.
func (s *Server) loadCampaigns() {
	entries, err := os.ReadDir(s.campaignsDir())
	if err != nil {
		return // no campaigns yet
	}
	loaded := 0
	for _, e := range entries {
		id, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.campaignsDir(), e.Name()))
		if err != nil {
			s.log.Warn("skipping unreadable campaign record", "file", e.Name(), "err", err)
			continue
		}
		var rec campaignRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID != id {
			s.log.Warn("skipping bad campaign record", "file", e.Name())
			continue
		}
		cr := &CampaignRun{
			ID:        rec.ID,
			Spec:      rec.Spec,
			changed:   make(chan struct{}),
			state:     rec.State,
			oracle:    rec.Oracle,
			grammarID: rec.GrammarID,
			err:       rec.Error,
			created:   rec.Created,
			started:   rec.Started,
			finished:  rec.Finished,
		}
		if rec.Report != nil {
			cr.report = *rec.Report
			cr.hasReport = true
		}
		if !cr.state.terminal() {
			cr.state = JobFailed
			cr.err = "daemon restarted before the campaign finished"
			if cr.finished.IsZero() {
				cr.finished = time.Now()
			}
			s.persistCampaign(cr)
		}
		// Restored terminal outcomes count toward the lifecycle counters.
		s.met.campaignFinished(cr.state)
		s.campaigns[cr.ID] = cr
		s.campOrder = append(s.campOrder, cr)
		loaded++
	}
	if loaded > 0 {
		// Listings are submission-ordered; restored records sort by their
		// original creation time.
		sortCampaignsByCreated(s.campOrder)
		s.log.Info("campaign records loaded", "count", loaded, "dir", s.campaignsDir())
	}
}

// sortCampaignsByCreated orders runs oldest first (stable id tiebreak).
func sortCampaignsByCreated(runs []*CampaignRun) {
	sort.Slice(runs, func(i, j int) bool {
		a, b := runs[i], runs[j]
		if a.created.Equal(b.created) {
			return a.ID < b.ID
		}
		return a.created.Before(b.created)
	})
}

// SubmitCampaign validates a campaign spec, resolves its grammar source and
// oracle, and enqueues it; campWorkers goroutines drain the queue with
// Config.MaxCampaigns concurrency. ctx carries request-scoped metadata (the
// HTTP request ID) only — it does not bound or cancel the campaign.
func (s *Server) SubmitCampaign(ctx context.Context, spec CampaignSpec) (*CampaignRun, error) {
	return s.SubmitCampaignWithID(ctx, spec, "")
}

// SubmitCampaignWithID is SubmitCampaign with a caller-chosen campaign
// id — the cluster router's entry point, mirroring SubmitWithID. An empty
// id gets a server-generated one; a non-empty id must be in the server
// format and unused.
func (s *Server) SubmitCampaignWithID(ctx context.Context, spec CampaignSpec, id string) (*CampaignRun, error) {
	if id != "" && !IsValidID(id) {
		return nil, fmt.Errorf("bad assigned id %q", id)
	}
	hasGrammar := spec.GrammarID != ""
	hasOracle := spec.Oracle != nil
	if hasGrammar == hasOracle {
		return nil, fmt.Errorf("campaign spec must name exactly one of grammar_id, oracle")
	}
	if hasGrammar {
		meta, ok := s.store.Meta(spec.GrammarID)
		if !ok {
			return nil, fmt.Errorf("%w: no grammar %q", errNotFound, spec.GrammarID)
		}
		if meta.Spec.IsExec() && !s.cfg.AllowExec {
			return nil, fmt.Errorf("grammar %q fuzzes through an exec oracle and %w", spec.GrammarID, errExecDisabled)
		}
		// Validate the recorded spec still resolves (a builtin could have
		// been renamed across versions).
		if _, _, err := buildOracle(meta.Spec, 1, s.cfg.DefaultOracleTimeout); err != nil {
			return nil, fmt.Errorf("grammar %q has no usable oracle: %v", spec.GrammarID, err)
		}
	} else {
		if spec.Oracle.IsExec() && !s.cfg.AllowExec {
			return nil, errExecDisabled
		}
		_, defaults, err := buildOracle(*spec.Oracle, 1, s.cfg.DefaultOracleTimeout)
		if err != nil {
			return nil, err
		}
		if len(spec.Seeds) == 0 && len(defaults) == 0 {
			return nil, fmt.Errorf("no seeds: pass seeds or use a builtin oracle with bundled seeds")
		}
	}
	if spec.DiffOracle != nil {
		if spec.DiffOracle.IsExec() && !s.cfg.AllowExec {
			return nil, fmt.Errorf("diff oracle: %w", errExecDisabled)
		}
		if _, _, err := buildOracle(*spec.DiffOracle, 1, s.cfg.DefaultOracleTimeout); err != nil {
			return nil, fmt.Errorf("diff oracle: %w", err)
		}
	}
	total := 0
	for _, seed := range spec.Seeds {
		total += len(seed)
	}
	if total > s.cfg.MaxSeedBytes {
		return nil, fmt.Errorf("seed payload %d bytes exceeds limit %d", total, s.cfg.MaxSeedBytes)
	}
	if spec.Batch > maxCampaignBatch {
		return nil, fmt.Errorf("batch %d exceeds limit %d", spec.Batch, maxCampaignBatch)
	}

	cr := newCampaignRun(spec)
	if id != "" {
		cr.ID = id
	}
	cr.oracle = spec.oracleName()
	cr.reqID = requestID(ctx)
	if hasGrammar {
		cr.grammarID = spec.GrammarID
	}

	s.mu.Lock()
	// Mirror Submit: once draining starts, no new campaigns are accepted.
	if s.draining.Load() {
		s.mu.Unlock()
		return nil, errDraining
	}
	select {
	case <-s.done:
		s.mu.Unlock()
		return nil, errDraining
	default:
	}
	if _, dup := s.campaigns[cr.ID]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: campaign %q", errDuplicateID, cr.ID)
	}
	select {
	case s.campQueue <- cr:
	default:
		s.mu.Unlock()
		return nil, errQueueFull
	}
	s.campaigns[cr.ID] = cr
	s.campOrder = append(s.campOrder, cr)
	s.mu.Unlock()
	s.met.campaignsSubmitted.Inc()
	cr.log(s.log).Info("campaign queued", "oracle", cr.oracle)
	return cr, nil
}

// oracleName renders the campaign's oracle for status lines.
func (spec CampaignSpec) oracleName() string {
	if spec.Oracle != nil {
		return spec.Oracle.String()
	}
	return "grammar:" + spec.GrammarID
}

// maxCampaignBatch bounds the client-chosen wave size; wave memory and
// oracle fan-out scale with it.
const maxCampaignBatch = 1024

// Campaign returns a campaign by id.
func (s *Server) Campaign(id string) (*CampaignRun, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cr, ok := s.campaigns[id]
	return cr, ok
}

// Campaigns lists campaigns in submission order.
func (s *Server) Campaigns() []*CampaignRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*CampaignRun(nil), s.campOrder...)
}

// campWorker drains the campaign queue; Config.MaxCampaigns workers bound
// concurrently running campaigns.
func (s *Server) campWorker() {
	defer s.wg.Done()
	for cr := range s.campQueue {
		s.runCampaign(cr)
	}
}

// runCampaign resolves the grammar (learning one first when the spec asks
// for it), builds the engine, and drives it to completion, persisting the
// record at every checkpoint.
func (s *Server) runCampaign(cr *CampaignRun) {
	setState := func(state JobState, phase string) {
		cr.mu.Lock()
		// Never resurrect a terminal state: a DELETE racing the worker's
		// setup has already recorded (and persisted) canceled.
		if cr.state.terminal() {
			cr.mu.Unlock()
			return
		}
		cr.state = state
		cr.phase = phase
		if state == JobRunning && cr.started.IsZero() {
			cr.started = time.Now()
		}
		cr.touch()
		cr.mu.Unlock()
	}
	fail := func(err error) {
		cr.mu.Lock()
		cr.state = JobFailed
		cr.phase = ""
		cr.err = err.Error()
		cr.finished = time.Now()
		cr.touch()
		cr.mu.Unlock()
		s.met.campaignFinished(JobFailed)
		s.persistCampaign(cr)
		cr.log(s.log).Warn("campaign failed", "err", err)
	}

	// A campaign popped from the queue while Close drains it must not
	// start fresh work.
	if s.baseCtx.Err() != nil {
		fail(fmt.Errorf("server shut down before the campaign ran"))
		return
	}
	// A campaign cancelled while queued never starts.
	cr.mu.Lock()
	if cr.state.terminal() {
		cr.mu.Unlock()
		return
	}
	// The campaign context nests under baseCtx (shutdown still ends every
	// campaign) and adds a per-run cancel for DELETE /v1/campaigns/{id};
	// the learn phase and the waves both run under it. The hard deadline
	// bounds the whole run — learn phase (soft-bounded by MaxJobDuration
	// via resolveOptions) plus fuzzing (clamped to MaxCampaignDuration) —
	// so even an exec oracle with an enormous per-query timeout cannot
	// hold a campaign slot past the server's bounds.
	hard := s.cfg.MaxJobDuration + s.cfg.MaxCampaignDuration + jobDeadlineGrace
	ctx, cancel := context.WithTimeout(s.baseCtx, hard)
	cr.cancel = cancel
	cr.mu.Unlock()
	defer cancel()

	canceled := func() bool {
		cr.mu.Lock()
		defer cr.mu.Unlock()
		return cr.cancelRequested
	}
	spec := cr.Spec
	conf, err := s.campaignConfig(ctx, cr, spec, setState)
	if err != nil {
		if canceled() {
			s.finishCampaignCanceled(cr)
			return
		}
		fail(err)
		return
	}
	eng, err := campaign.New(conf)
	if err != nil {
		fail(err)
		return
	}
	setState(JobRunning, "fuzz")
	s.persistCampaign(cr)
	cr.log(s.log).Info("campaign running",
		"oracle", cr.oracle, "duration", conf.Duration, "workers", conf.Workers)
	rep, err := eng.Run(ctx)
	if err != nil && !canceled() {
		fail(err)
		return
	}
	cr.mu.Lock()
	if cr.cancelRequested {
		cr.state = JobCanceled
		cr.err = "canceled by request"
	} else {
		cr.state = JobDone
	}
	cr.phase = ""
	cr.finished = time.Now()
	if rep != nil {
		cr.report = *rep
		cr.hasReport = true
	}
	state := cr.state
	cr.touch()
	cr.mu.Unlock()
	s.met.campaignFinished(state)
	s.persistCampaign(cr)
	if state == JobCanceled {
		cr.log(s.log).Info("campaign canceled")
	} else {
		cr.log(s.log).Info("campaign done",
			"inputs", rep.Inputs, "interesting", rep.Interesting())
	}
}

// finishCampaignCanceled moves a campaign whose learn phase was aborted by
// a DELETE into the canceled state.
func (s *Server) finishCampaignCanceled(cr *CampaignRun) {
	cr.mu.Lock()
	cr.state = JobCanceled
	cr.phase = ""
	cr.err = "canceled by request"
	cr.finished = time.Now()
	cr.touch()
	cr.mu.Unlock()
	s.met.campaignFinished(JobCanceled)
	s.persistCampaign(cr)
	cr.log(s.log).Info("campaign canceled")
}

// CancelCampaign cancels a campaign by id: a queued campaign flips to
// canceled immediately (the scheduler will skip it), a running one has its
// context cancelled — the engine finalizes its report and the run lands in
// canceled. Cancelling a campaign already in a terminal state reports
// errAlreadyTerminal.
func (s *Server) CancelCampaign(id string) (*CampaignRun, error) {
	cr, ok := s.Campaign(id)
	if !ok {
		return nil, fmt.Errorf("%w: no campaign %q", errNotFound, id)
	}
	cr.mu.Lock()
	switch {
	case cr.state.terminal():
		cr.mu.Unlock()
		return cr, errAlreadyTerminal
	case cr.state == JobQueued:
		cr.state = JobCanceled
		cr.err = "canceled by request"
		cr.finished = time.Now()
		cr.cancelRequested = true
		// A worker may have popped this campaign already and be setting it
		// up; setState refuses to resurrect a terminal state, and when the
		// run context exists, cancelling it aborts the setup (including a
		// learn phase) within one oracle wave.
		cancel := cr.cancel
		cr.touch()
		cr.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		s.met.campaignFinished(JobCanceled)
		s.persistCampaign(cr)
		cr.log(s.log).Info("campaign canceled while queued")
		return cr, nil
	default: // running (learn or fuzz phase)
		cr.cancelRequested = true
		cancel := cr.cancel
		cr.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		cr.log(s.log).Info("campaign cancellation requested")
		return cr, nil
	}
}

// campaignConfig assembles the engine config for a run: grammar + seeds +
// oracle from either the store or a fresh learn (run under ctx, so a
// DELETE aborts even the learn phase), server-side clamps on
// duration/workers/batch, and a progress hook that feeds watchers and the
// persisted record.
func (s *Server) campaignConfig(ctx context.Context, cr *CampaignRun, spec CampaignSpec, setState func(JobState, string)) (campaign.Config, error) {
	var conf campaign.Config
	workers := spec.Workers
	if workers <= 0 {
		workers = s.cfg.DefaultWorkers
	}
	workers = min(workers, s.cfg.MaxWorkers)

	if spec.GrammarID != "" {
		g, err := s.store.Grammar(spec.GrammarID)
		if err != nil {
			return conf, err
		}
		meta, ok := s.store.Meta(spec.GrammarID)
		if !ok {
			return conf, fmt.Errorf("no metadata for grammar %q", spec.GrammarID)
		}
		o, _, err := s.buildResilientOracle(meta.Spec, workers, s.cfg.resolveRetries(spec.Retries), s.met.resilientCampaign)
		if err != nil {
			return conf, err
		}
		seeds := spec.Seeds
		if len(seeds) == 0 {
			seeds = meta.Seeds
		}
		conf.Grammar = g
		conf.Seeds = seeds
		conf.Oracle = o
	} else {
		// Learn a grammar first, exactly as a learn job would, then fuzz
		// with it. The grammar is stored under the campaign's id so it is
		// listable and generate-able like any other.
		setState(JobRunning, "learn")
		o, defaults, err := s.buildResilientOracle(*spec.Oracle, workers, s.cfg.resolveRetries(spec.Retries), s.met.resilientCampaign)
		if err != nil {
			return conf, err
		}
		seeds := spec.Seeds
		if len(seeds) == 0 {
			seeds = defaults
		}
		jobSpec := JobSpec{Seeds: seeds, Oracle: *spec.Oracle}
		opts := jobSpec.resolveOptions(s.cfg, seeds)
		opts.Workers = workers
		res, err := core.Learn(ctx, seeds, o, opts)
		if err != nil {
			return conf, err
		}
		meta := GrammarMeta{
			ID:        cr.ID,
			Oracle:    spec.Oracle.String(),
			Spec:      *spec.Oracle,
			Seeds:     seeds,
			CreatedAt: time.Now().UTC(),
			Queries:   res.Stats.OracleQueries,
			Seconds:   res.Stats.Duration.Seconds(),
			TimedOut:  res.Stats.TimedOut,
		}
		if err := s.store.Put(res.Grammar, meta); err != nil {
			return conf, err
		}
		cr.mu.Lock()
		cr.grammarID = cr.ID
		cr.touch()
		cr.mu.Unlock()
		conf.Grammar = res.Grammar
		conf.Seeds = seeds
		conf.Oracle = o
	}

	if spec.DiffOracle != nil {
		diff, _, err := s.buildResilientOracle(*spec.DiffOracle, workers, s.cfg.resolveRetries(spec.Retries), s.met.resilientCampaign)
		if err != nil {
			return conf, fmt.Errorf("diff oracle: %w", err)
		}
		conf.DiffOracle = diff
		conf.DiffName = spec.DiffOracle.String()
	}

	duration := DefaultCampaignDuration
	if spec.DurationMS > 0 {
		duration = time.Duration(spec.DurationMS) * time.Millisecond
	}
	if duration > s.cfg.MaxCampaignDuration {
		duration = s.cfg.MaxCampaignDuration
	}
	conf.Duration = duration
	conf.Workers = workers
	conf.BatchSize = spec.Batch
	conf.MutateRatio = spec.MutateRatio
	conf.RandSeed = spec.RandSeed
	if spec.RefreshEveryMS > 0 {
		conf.RefreshEvery = time.Duration(spec.RefreshEveryMS) * time.Millisecond
		conf.RefreshTimeout = s.cfg.MaxJobDuration
	}
	conf.ReportEvery = campaignReportEvery
	engineLog := cr.log(s.log)
	conf.Logf = func(format string, args ...any) {
		engineLog.Debug(fmt.Sprintf(format, args...))
	}
	conf.QueryHist = s.met.oracleCampaign
	conf.Progress = func(rep campaign.Report) {
		cr.mu.Lock()
		cr.report = rep
		cr.hasReport = true
		cr.touch()
		cr.mu.Unlock()
		// Checkpoint persistence rides the progress cadence, so a crashed
		// or restarted daemon keeps the latest report.
		s.persistCampaign(cr)
	}
	return conf, nil
}

// DefaultCampaignDuration is the campaign runtime when the spec does not
// set one. HTTP-submitted campaigns are always duration-bounded.
const DefaultCampaignDuration = 30 * time.Second

// campaignReportEvery is the watch/persistence checkpoint cadence.
const campaignReportEvery = time.Second

// errNotFound tags submission errors caused by a missing referenced
// resource, so the HTTP layer can answer 404 instead of 400.
var errNotFound = fmt.Errorf("not found")
