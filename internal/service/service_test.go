package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"glade/internal/cfg"
	"glade/internal/core"
	"glade/internal/oracle"
	"glade/internal/programs"
)

func testServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{DataDir: dir, MaxJobs: 2, MaxJobDuration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", url, err, data)
		}
	}
	return resp
}

// waitDone polls the job endpoint until the job reaches a terminal state.
func waitDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var st JobStatus
		getJSON(t, base+"/v1/jobs/"+id, &st)
		if st.State.terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// TestEndToEndLearnServeGenerate is the acceptance path: a learn job
// submitted over HTTP yields a grammar byte-identical to core.Learn run
// directly with the same seeds and options, survives a server restart
// (store reload), and then drives fuzz generation.
func TestEndToEndLearnServeGenerate(t *testing.T) {
	dir := t.TempDir()
	_, ts := testServer(t, dir)

	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Oracle: oracle.Spec{Type: oracle.SpecProgram, Name: "sed"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, ts.URL, st.ID)
	if st.State != JobDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Stats == nil || st.Stats.OracleQueries == 0 {
		t.Fatalf("done job has no stats: %+v", st)
	}

	// The served grammar must be byte-identical to a direct engine run
	// with the same seeds and options.
	resp, err := http.Get(ts.URL + "/v1/grammars/" + st.GrammarID)
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	p := programs.ByName("sed")
	opts := core.DefaultOptions()
	opts.Timeout = time.Minute
	res, err := core.Learn(context.Background(), p.Seeds(), oracle.Func(func(s string) bool { return p.Run(s).OK }), opts)
	if err != nil {
		t.Fatal(err)
	}
	if direct := cfg.Marshal(res.Grammar); string(served) != direct {
		t.Fatalf("served grammar differs from direct core.Learn:\n-- served --\n%s\n-- direct --\n%s", served, direct)
	}

	// Restart: a fresh server over the same data dir must serve the stored
	// grammar and generate from it without relearning.
	_, ts2 := testServer(t, dir)
	resp, err = http.Get(ts2.URL + "/v1/grammars/" + st.GrammarID)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(reloaded, served) {
		t.Fatalf("restarted server served %d / different bytes", resp.StatusCode)
	}

	var gen struct {
		Inputs   []string `json:"inputs"`
		Count    int      `json:"count"`
		Attempts int      `json:"attempts"`
	}
	resp, body = postJSON(t, ts2.URL+"/v1/grammars/"+st.GrammarID+"/generate?n=10&valid=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &gen); err != nil {
		t.Fatal(err)
	}
	if gen.Count != 10 || len(gen.Inputs) != 10 {
		t.Fatalf("generate returned %d inputs (attempts %d)", len(gen.Inputs), gen.Attempts)
	}
	for _, in := range gen.Inputs {
		if !p.Run(in).OK {
			t.Errorf("valid-filtered input rejected by program: %q", in)
		}
	}
}

// TestWatchStreamsProgress reads the NDJSON watch stream and checks it
// carries phase-level events ending in the terminal snapshot.
func TestWatchStreamsProgress(t *testing.T) {
	_, ts := testServer(t, t.TempDir())
	_, body := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Oracle: oracle.Spec{Type: oracle.SpecTarget, Name: "url"}})
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch content type %q", ct)
	}
	phases := map[string]bool{}
	var lastLine string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		lastLine = line
		var ev core.Progress
		if err := json.Unmarshal([]byte(line), &ev); err == nil && ev.Phase != "" {
			phases[ev.Phase] = true
		}
	}
	for _, want := range []string{"seeds", "phase1", "done"} {
		if !phases[want] {
			t.Errorf("watch stream missing phase %q (saw %v)", want, phases)
		}
	}
	var final JobStatus
	if err := json.Unmarshal([]byte(lastLine), &final); err != nil || final.State != JobDone {
		t.Fatalf("stream did not end with a done snapshot: %q (err %v)", lastLine, err)
	}
}

// TestSubmitValidation exercises spec validation failures.
func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t, t.TempDir())
	cases := []struct {
		name string
		body string
	}{
		{"no oracle", `{"seeds":["x"]}`},
		{"two oracles", `{"oracle":{"program":"sed","target":"xml"}}`},
		{"unknown program", `{"oracle":{"program":"nope"}}`},
		{"unknown field", `{"oracle":{"program":"sed"},"bogus":1}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestExecGating: exec oracle specs run client-chosen commands on the
// server, so without Config.AllowExec both submission and validity-
// filtered generation from an exec-recorded grammar must be refused with
// 403; with AllowExec the spec proceeds to normal validation.
func TestExecGating(t *testing.T) {
	srv, ts := testServer(t, t.TempDir())

	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Seeds: []string{"x"}, Oracle: oracle.Spec{Type: oracle.SpecExec, Argv: []string{"true"}}})
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("exec submit without AllowExec: got %d, want 403 (%s)", resp.StatusCode, body)
	}

	// A grammar recorded with an exec oracle (e.g. stored by an earlier
	// incarnation that allowed exec) must not validate through it either.
	g := mustGrammar(t, "start A\nA -> \"a\"\n")
	if err := srv.Store().Put(g, GrammarMeta{ID: "execgram", Spec: oracle.Spec{Type: oracle.SpecExec, Argv: []string{"true"}}, Seeds: []string{"a"}, CreatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/grammars/execgram/generate?valid=1", nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("valid=1 generate with exec oracle: got %d, want 403 (%s)", resp.StatusCode, body)
	}
	// Plain (unvalidated) generation never runs the oracle and stays open.
	resp, body = postJSON(t, ts.URL+"/v1/grammars/execgram/generate?n=3", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("plain generate on exec-recorded grammar: got %d, want 200 (%s)", resp.StatusCode, body)
	}

	allow, err := New(Config{DataDir: t.TempDir(), AllowExec: true})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(allow.Handler())
	t.Cleanup(func() { ts2.Close(); allow.Close() })
	resp, body = postJSON(t, ts2.URL+"/v1/jobs", JobSpec{Oracle: oracle.Spec{Type: oracle.SpecExec, Argv: []string{"true"}}})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "no seeds") {
		t.Errorf("exec submit with AllowExec but no seeds: got %d, want 400 no-seeds (%s)", resp.StatusCode, body)
	}
}

// TestValidGenerateCap: valid=1 may run an oracle subprocess per attempt,
// so its n cap is much lower than plain generation's.
func TestValidGenerateCap(t *testing.T) {
	_, ts := testServer(t, t.TempDir())
	resp, body := postJSON(t, ts.URL+"/v1/grammars/whatever/generate?n=501&valid=1", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("valid=1 n=501: got %d, want 400 (%s)", resp.StatusCode, body)
	}
	// The same n is fine without validation (404 only because the grammar
	// does not exist, i.e. the cap check passed).
	resp, _ = postJSON(t, ts.URL+"/v1/grammars/whatever/generate?n=501", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("plain n=501: got %d, want 404", resp.StatusCode)
	}
	// valid parses as a bool: valid=0 means plain generation (so the lower
	// cap does not apply), and a non-boolean value is rejected.
	resp, _ = postJSON(t, ts.URL+"/v1/grammars/whatever/generate?n=501&valid=0", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("valid=0 n=501: got %d, want 404 (plain path)", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/grammars/whatever/generate?valid=bogus", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("valid=bogus: got %d, want 400", resp.StatusCode)
	}
}

// TestFuzzerPoolEviction: the fuzzer cache must stay LRU-bounded so a
// long-lived daemon's memory does not grow with every grammar ever used
// for generation.
func TestFuzzerPoolEviction(t *testing.T) {
	store, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	g := mustGrammar(t, "start A\nA -> \"a\"\n")
	pool := newFuzzerPool(store)
	n := maxFuzzerEntries + 8
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("g%03d", i)
		if err := store.Put(g, GrammarMeta{ID: id, Seeds: []string{"a"}, CreatedAt: time.Now()}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := pool.Generate(context.Background(), id, 1, nil); err != nil {
			t.Fatalf("generate %s: %v", id, err)
		}
	}
	pool.mu.Lock()
	size, lruLen := len(pool.entries), pool.lru.Len()
	_, oldestOK := pool.entries["g000"]
	_, newestOK := pool.entries[fmt.Sprintf("g%03d", n-1)]
	pool.mu.Unlock()
	if size != maxFuzzerEntries || lruLen != size {
		t.Fatalf("pool holds %d entries (lru %d), want %d", size, lruLen, maxFuzzerEntries)
	}
	if oldestOK || !newestOK {
		t.Fatalf("LRU order wrong: oldest present=%v newest present=%v", oldestOK, newestOK)
	}
	// An evicted grammar is rebuilt transparently on its next use.
	if inputs, _, err := pool.Generate(context.Background(), "g000", 1, nil); err != nil || len(inputs) != 1 {
		t.Fatalf("regenerate after eviction: %v (%d inputs)", err, len(inputs))
	}
}

// TestStatsAndListings checks /v1/stats, job and grammar listings after a
// couple of jobs.
func TestStatsAndListings(t *testing.T) {
	_, ts := testServer(t, t.TempDir())
	ids := make([]string, 0, 2)
	for _, target := range []string{"url", "lisp"} {
		_, body := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Oracle: oracle.Spec{Type: oracle.SpecTarget, Name: target}})
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := waitDone(t, ts.URL, id); st.State != JobDone {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
	}

	var stats struct {
		Jobs         []jobStats `json:"jobs"`
		Grammars     int        `json:"grammars"`
		Done         int        `json:"done"`
		TotalQueries int        `json:"total_queries"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Done != 2 || stats.Grammars != 2 || len(stats.Jobs) != 2 {
		t.Fatalf("stats shape wrong: %+v", stats)
	}
	for _, row := range stats.Jobs {
		if row.Queries == 0 || row.OracleQueries == 0 || row.OracleSummary == "" {
			t.Errorf("job %s: missing query stats: %+v", row.ID, row)
		}
	}
	if stats.TotalQueries == 0 {
		t.Error("total_queries is zero")
	}

	var jobs struct {
		Jobs []JobStatus `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &jobs)
	if len(jobs.Jobs) != 2 {
		t.Fatalf("job listing has %d entries", len(jobs.Jobs))
	}
	var grammars struct {
		Grammars []GrammarMeta `json:"grammars"`
	}
	getJSON(t, ts.URL+"/v1/grammars", &grammars)
	if len(grammars.Grammars) != 2 {
		t.Fatalf("grammar listing has %d entries", len(grammars.Grammars))
	}
	for _, m := range grammars.Grammars {
		if len(m.Seeds) == 0 || m.Queries == 0 || m.Oracle == "" {
			t.Errorf("grammar %s: incomplete metadata: %+v", m.ID, m)
		}
	}
}

// TestConcurrentGenerate hammers one grammar's generate endpoint from many
// goroutines; with -race this exercises the fuzzer pool's concurrency
// claims.
func TestConcurrentGenerate(t *testing.T) {
	srv, ts := testServer(t, t.TempDir())
	_, body := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Oracle: oracle.Spec{Type: oracle.SpecTarget, Name: "url"}})
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, ts.URL, st.ID); st.State != JobDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	_ = srv

	const goroutines = 8
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			for k := 0; k < 5; k++ {
				resp, err := http.Post(ts.URL+"/v1/grammars/"+st.GrammarID+"/generate?n=20", "application/json", nil)
				if err != nil {
					errs <- err
					return
				}
				var gen struct {
					Inputs []string `json:"inputs"`
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err := json.Unmarshal(data, &gen); err != nil {
					errs <- fmt.Errorf("bad generate response: %v", err)
					return
				}
				if len(gen.Inputs) != 20 {
					errs <- fmt.Errorf("got %d inputs", len(gen.Inputs))
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestJobNotFound and bad generate targets.
func TestNotFound(t *testing.T) {
	_, ts := testServer(t, t.TempDir())
	for _, url := range []string{"/v1/jobs/deadbeef", "/v1/grammars/deadbeef"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: got %d, want 404", url, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/grammars/deadbeef/generate", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("generate on missing grammar: got %d, want 404", resp.StatusCode)
	}
}
