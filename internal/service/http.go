package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"glade/internal/metrics"
	"glade/internal/oracle"
)

// maxBodyBytes bounds request bodies; seed payloads are separately bounded
// by Config.MaxSeedBytes.
const maxBodyBytes = 8 << 20

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	// Readiness is distinct from liveness: a draining server is still
	// healthy (in-flight work finishes) but must stop receiving new
	// traffic, so load balancers probe /readyz and liveness probes
	// /healthz.
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/grammars", s.handleListGrammars)
	mux.HandleFunc("GET /v1/grammars/{id}", s.handleGrammar)
	mux.HandleFunc("POST /v1/grammars/{id}/generate", s.handleGenerate)
	mux.HandleFunc("POST /v1/grammars/{id}/check", s.handleCheck)
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmitCampaign)
	mux.HandleFunc("GET /v1/campaigns", s.handleListCampaigns)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaign)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancelCampaign)
	mux.HandleFunc("GET /v1/oracles", s.handleListOracles)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", s.reg.Handler())
	return s.recoverPanics(s.instrument(mux))
}

// oracleInfo is one row of GET /v1/oracles.
type oracleInfo struct {
	// Spec is the string a job or campaign oracle spec uses to select the
	// oracle ("builtin:json"); Kind and Name are its parts.
	Spec        string `json:"spec"`
	Kind        string `json:"kind"`
	Name        string `json:"name"`
	Description string `json:"description"`
	// Seeds is the number of bundled seed inputs a spec-only submission
	// learns from.
	Seeds int `json:"seeds"`
	// ExecGated reports whether using the oracle requires -allow-exec.
	// Every registered oracle runs in-process, so only the synthetic
	// "exec" row is gated.
	ExecGated bool `json:"exec_gated"`
}

// handleListOracles lists every named oracle the server can build —
// builtins, programs, and targets from the registry — plus a synthetic row
// for exec specs, with whether each is exec-gated and whether this server
// currently allows exec.
func (s *Server) handleListOracles(w http.ResponseWriter, r *http.Request) {
	regs := oracle.NamedOracles()
	rows := make([]oracleInfo, 0, len(regs)+1)
	for _, reg := range regs {
		rows = append(rows, oracleInfo{
			Spec:        reg.Kind + ":" + reg.Name,
			Kind:        reg.Kind,
			Name:        reg.Name,
			Description: reg.Description,
			Seeds:       len(reg.Seeds),
		})
	}
	rows = append(rows, oracleInfo{
		Spec:        "exec:CMD [ARGS...]",
		Kind:        oracle.SpecExec,
		Description: "external command oracle: input on stdin, valid iff exit status 0",
		ExecGated:   true,
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"oracles":      rows,
		"exec_allowed": s.cfg.AllowExec,
	})
}

// handleCancelJob cancels a learn job: 200 with the snapshot once the
// cancellation is recorded (queued jobs flip immediately; running jobs
// stop within one oracle wave), 404 for unknown ids, 409 when the job
// already reached a terminal state.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.CancelJob(r.PathValue("id"))
	if err != nil {
		code := http.StatusConflict
		if errors.Is(err, errNotFound) {
			code = http.StatusNotFound
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, j.status(false))
}

// handleCancelCampaign cancels a campaign, with the same status mapping as
// handleCancelJob. The engine finalizes and persists its report before the
// run lands in the canceled state.
func (s *Server) handleCancelCampaign(w http.ResponseWriter, r *http.Request) {
	cr, err := s.CancelCampaign(r.PathValue("id"))
	if err != nil {
		code := http.StatusConflict
		if errors.Is(err, errNotFound) {
			code = http.StatusNotFound
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, cr.status())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Suggested client backoff, in seconds, for the saturation responses.
// Queue-full and validation-saturation conditions clear as work drains;
// draining never clears for this process, so clients get a longer hint
// to find another instance.
const (
	retryAfterSaturated = 10
	retryAfterDraining  = 30
)

// writeUnavailable writes a saturation/overload error (429 or 503) with a
// Retry-After hint. Every saturation response the API emits goes through
// here — the retry contract is that any 429/503 carries the header.
func writeUnavailable(w http.ResponseWriter, code, retryAfterSeconds int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeError(w, code, format, args...)
}

// handleReady serves GET /readyz: 200 while the server accepts new work,
// 503 (with Retry-After) once draining has begun or the server is closed.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		writeUnavailable(w, http.StatusServiceUnavailable, retryAfterDraining, "draining; not accepting new work")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// handleSubmit accepts a JobSpec and enqueues the learn job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	j, err := s.SubmitWithID(r.Context(), spec, r.Header.Get(AssignedIDHeader))
	if err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			writeUnavailable(w, http.StatusServiceUnavailable, retryAfterSaturated, "%v", err)
		case errors.Is(err, errDraining):
			writeUnavailable(w, http.StatusServiceUnavailable, retryAfterDraining, "%v", err)
		case errors.Is(err, errExecDisabled):
			writeError(w, http.StatusForbidden, "%v", err)
		case errors.Is(err, errDuplicateID):
			writeError(w, http.StatusConflict, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.status(false))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status(false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// handleJob serves one job: a JSON snapshot by default (?events=1 includes
// the buffered progress stream), or — with ?watch=1 — an NDJSON stream of
// progress events as they happen, terminated by the final job snapshot
// once the job reaches a terminal state.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("watch") == "" {
		writeJSON(w, http.StatusOK, j.status(r.URL.Query().Get("events") != ""))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cursor := 0
	for {
		fresh, next, state, changed := j.watch(cursor)
		cursor = next
		for _, ev := range fresh {
			_ = enc.Encode(ev)
		}
		if state.terminal() {
			_ = enc.Encode(j.status(false))
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleListGrammars(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"grammars": s.store.List()})
}

// handleGrammar serves the stored grammar text (cfg.Marshal form, loadable
// by cfg.Unmarshal and glade-fuzz -grammar); ?format=json wraps it with
// its metadata.
func (s *Server) handleGrammar(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	text, ok := s.store.Text(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no grammar %q", id)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		meta, _ := s.store.Meta(id)
		writeJSON(w, http.StatusOK, map[string]any{"meta": meta, "grammar": text})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, text)
}

// Server-side bounds on validity-filtered generation (?valid=1): each
// accepted input may cost up to maxValidFactor oracle runs, possibly
// subprocesses, so unlike plain generation it is capped much lower, runs
// under a deadline, and at most Config.MaxValidating requests validate
// concurrently.
const (
	maxGenerateN      = 10000
	maxValidGenerateN = 500
	validGenerateTime = 2 * time.Minute
)

// handleGenerate draws fuzz inputs from a stored grammar's pooled fuzzer.
// Query parameters: n (count, default 10, max 10000); valid=1 filters
// through the grammar's recorded oracle so only oracle-accepted inputs are
// returned (n capped at 500, bounded attempts and a server-side deadline —
// the response reports how many candidates were drawn).
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	valid := false
	if raw := r.URL.Query().Get("valid"); raw != "" {
		v, err := strconv.ParseBool(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad valid %q", raw)
			return
		}
		valid = v
	}
	limit := maxGenerateN
	if valid {
		limit = maxValidGenerateN
	}
	n := 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "bad n %q", raw)
			return
		}
		n = v
	}
	if n > limit {
		writeError(w, http.StatusBadRequest, "n %d exceeds limit %d", n, limit)
		return
	}
	ctx := r.Context()
	var check oracle.CheckOracle
	if valid {
		meta, ok := s.store.Meta(id)
		if !ok {
			writeError(w, http.StatusNotFound, "no grammar %q", id)
			return
		}
		if meta.Spec.IsExec() && !s.cfg.AllowExec {
			writeError(w, http.StatusForbidden, "grammar %q validates through an exec oracle and %v", id, errExecDisabled)
			return
		}
		// Validation queries run under the request context (plus the
		// per-query exec timeout), so the deadline below bounds every
		// subprocess directly — no clamp needed, and a slot on the
		// validating semaphore can never be held past the deadline.
		o, _, err := s.buildResilientOracle(meta.Spec, 1, s.cfg.resolveRetries(nil), s.met.resilientGenerate)
		if err != nil {
			writeError(w, http.StatusConflict, "grammar %q has no usable oracle for validation: %v", id, err)
			return
		}
		check = timedOracle{inner: o, h: s.met.oracleGenerate}
	}
	// Resolve the fuzzer before any deadline or slot below: building one
	// parses every seed (Earley, potentially slow and uncancellable). The
	// entry is held directly so LRU churn during a semaphore wait cannot
	// force a rebuild inside the deadline-bounded slot.
	e, err := s.fuzzers.entry(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if valid {
		// Validation may run a subprocess per candidate: bound the whole
		// request with a deadline and take a slot on the server-wide
		// validating semaphore so a handful of clients cannot fan out an
		// unbounded number of oracle processes.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, validGenerateTime)
		defer cancel()
		select {
		case s.validating <- struct{}{}:
			defer func() { <-s.validating }()
		case <-ctx.Done():
			writeUnavailable(w, http.StatusServiceUnavailable, retryAfterSaturated, "validating generation is saturated; retry later")
			return
		}
	}
	inputs, attempts, err := e.generate(ctx, n, check)
	if err != nil {
		if r.Context().Err() != nil {
			return // client disconnected mid-generation
		}
		// The server-side deadline fired mid-validation: serve the inputs
		// gathered so far (count < n tells the client it was truncated).
		// Any other error means the validation oracle itself failed.
		if !errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusBadGateway, "validation oracle failed: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"grammar_id": id,
		"inputs":     inputs,
		"count":      len(inputs),
		"attempts":   attempts,
	})
}

// handleSubmitCampaign accepts a CampaignSpec and enqueues the campaign.
func (s *Server) handleSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad campaign spec: %v", err)
		return
	}
	cr, err := s.SubmitCampaignWithID(r.Context(), spec, r.Header.Get(AssignedIDHeader))
	if err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			writeUnavailable(w, http.StatusServiceUnavailable, retryAfterSaturated, "%v", err)
		case errors.Is(err, errDraining):
			writeUnavailable(w, http.StatusServiceUnavailable, retryAfterDraining, "%v", err)
		case errors.Is(err, errExecDisabled):
			writeError(w, http.StatusForbidden, "%v", err)
		case errors.Is(err, errNotFound):
			writeError(w, http.StatusNotFound, "%v", err)
		case errors.Is(err, errDuplicateID):
			writeError(w, http.StatusConflict, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, cr.status())
}

func (s *Server) handleListCampaigns(w http.ResponseWriter, r *http.Request) {
	runs := s.Campaigns()
	out := make([]CampaignStatus, len(runs))
	for i, cr := range runs {
		out[i] = cr.status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": out})
}

// handleCampaign serves one campaign: a JSON snapshot (with the latest
// checkpointed report) by default, or — with ?watch=1 — an NDJSON stream
// of snapshots at the checkpoint cadence, terminated by the final snapshot
// once the campaign reaches a terminal state.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	cr, ok := s.Campaign(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("watch") == "" {
		writeJSON(w, http.StatusOK, cr.status())
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cursor := -1 // emit the current snapshot immediately
	for {
		st, next, fresh, changed := cr.watch(cursor)
		cursor = next
		if fresh {
			_ = enc.Encode(st)
			if flusher != nil {
				flusher.Flush()
			}
		}
		if st.State.terminal() {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// jobStats is one job's row in /v1/stats.
type jobStats struct {
	ID     string   `json:"id"`
	State  JobState `json:"state"`
	Oracle string   `json:"oracle"`
	// Learner effort (set once the job is done).
	Queries   int     `json:"queries,omitempty"`
	CacheHits int     `json:"cache_hits,omitempty"`
	Checks    int     `json:"checks,omitempty"`
	Seconds   float64 `json:"seconds,omitempty"`
	// Oracle-level timing from the per-job metrics.QueryTimer.
	OracleQueries   int     `json:"oracle_queries,omitempty"`
	OracleBatches   int     `json:"oracle_batches,omitempty"`
	MeanLatencyMS   float64 `json:"mean_latency_ms,omitempty"`
	P50LatencyMS    float64 `json:"p50_latency_ms,omitempty"`
	P95LatencyMS    float64 `json:"p95_latency_ms,omitempty"`
	P99LatencyMS    float64 `json:"p99_latency_ms,omitempty"`
	ThroughputQPS   float64 `json:"throughput_qps,omitempty"`
	OracleWallMS    float64 `json:"oracle_wall_ms,omitempty"`
	OracleSummary   string  `json:"oracle_summary,omitempty"`
	TimedOut        bool    `json:"timed_out,omitempty"`
	GrammarStored   bool    `json:"grammar_stored,omitempty"`
	ProgressPhase   string  `json:"progress_phase,omitempty"`
	ProgressQueries int     `json:"progress_queries,omitempty"`
	// PhaseNS is total learner wall time per phase, from the job's span
	// trace (present once the learn has finished).
	PhaseNS map[string]int64 `json:"phase_ns,omitempty"`
}

// handleStats surfaces per-job learner stats and metrics.QueryStats plus
// server-level aggregates. The top-level counters are derived from the
// telemetry registry snapshot — the same numbers /metrics exposes, marshaled
// once — under their historical keys; the raw snapshot rides along under
// "telemetry".
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	rows := make([]jobStats, 0, len(jobs))
	for _, j := range jobs {
		st := j.status(false)
		qs, _ := j.queryStats()
		row := jobStats{ID: st.ID, State: st.State, Oracle: st.Oracle}
		if st.Progress != nil {
			row.ProgressPhase = st.Progress.Phase
			row.ProgressQueries = st.Progress.Queries
		}
		if st.Stats != nil {
			row.Queries = st.Stats.OracleQueries
			row.CacheHits = st.Stats.CacheHits
			row.Checks = st.Stats.Checks
			row.Seconds = st.Stats.Duration.Seconds()
			row.TimedOut = st.Stats.TimedOut
			row.GrammarStored = st.GrammarID != ""
		}
		if qs.Queries > 0 {
			row.OracleQueries = qs.Queries
			row.OracleBatches = qs.Batches
			row.MeanLatencyMS = float64(qs.MeanLatency().Microseconds()) / 1e3
			row.P50LatencyMS = float64(qs.P50Latency.Microseconds()) / 1e3
			row.P95LatencyMS = float64(qs.P95Latency.Microseconds()) / 1e3
			row.P99LatencyMS = float64(qs.P99Latency.Microseconds()) / 1e3
			row.ThroughputQPS = qs.Throughput()
			row.OracleWallMS = float64(qs.Wall.Microseconds()) / 1e3
			row.OracleSummary = qs.String()
		}
		row.PhaseNS = j.phaseSummary()
		rows = append(rows, row)
	}
	snap := s.reg.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":                 rows,
		"grammars":             int(snapValue(snap, "glade_store_grammars")),
		"queued":               int(snapValue(snap, "glade_jobs_queued")),
		"running":              int(snapValue(snap, "glade_jobs_running")),
		"done":                 int(snapValue(snap, "glade_jobs_done_total")),
		"failed":               int(snapValue(snap, "glade_jobs_failed_total")),
		"total_queries":        int(snapValue(snap, "glade_oracle_queries_total")),
		"campaigns":            len(s.Campaigns()),
		"campaigns_running":    int(snapValue(snap, "glade_campaigns_running")),
		"campaign_inputs":      int(snapValue(snap, "glade_campaign_inputs")),
		"campaign_interesting": int(snapValue(snap, "glade_campaign_interesting")),
		"telemetry":            snap,
	})
}

// Interface assertions: the per-job timer must forward the oracle bulk
// path or Workers>1 jobs would serialize under it (both the v2 verdict
// path and the legacy boolean shim).
var (
	_ oracle.BatchCheckOracle = (*metrics.QueryTimer)(nil)
	_ oracle.BatchOracle      = (*metrics.QueryTimer)(nil)
)
