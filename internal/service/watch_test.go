package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"glade/internal/core"
	"glade/internal/oracle"
)

// TestWatchIncrementalDelivery pins the NDJSON ?watch=1 contract at the
// streaming level: each progress event is delivered to an already-connected
// watcher as its own line soon after it is emitted (not batched until the
// job ends), and the stream closes by itself once the job reaches a
// terminal state. The job is driven by hand so the timing is deterministic.
func TestWatchIncrementalDelivery(t *testing.T) {
	srv, ts := testServer(t, t.TempDir())

	// Install a queued job directly in the ledger; the test plays the role
	// of the scheduler worker.
	j := newJob(JobSpec{Oracle: oracle.Spec{Type: oracle.SpecProgram, Name: "grep"}})
	srv.mu.Lock()
	srv.jobs[j.ID] = j
	srv.order = append(srv.order, j)
	srv.mu.Unlock()

	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()

	readLine := func(what string) string {
		t.Helper()
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream closed early waiting for %s", what)
			}
			return line
		case <-time.After(5 * time.Second):
			t.Fatalf("no line within 5s waiting for %s", what)
		}
		return ""
	}
	assertNoLine := func(what string) {
		t.Helper()
		select {
		case line, ok := <-lines:
			if ok {
				t.Fatalf("unexpected line while %s: %q", what, line)
			}
			t.Fatalf("stream closed while %s", what)
		case <-time.After(150 * time.Millisecond):
		}
	}

	// Nothing has happened yet: the watcher must be blocked, not fed.
	assertNoLine("job is idle")

	// Each emitted event must arrive as its own line, promptly.
	for i, phase := range []string{"seeds", "phase1", "chargen"} {
		j.appendEvent(core.Progress{Phase: phase, Seed: 1, Seeds: 1, Queries: i})
		var ev core.Progress
		if err := json.Unmarshal([]byte(readLine(phase)), &ev); err != nil {
			t.Fatalf("bad event line: %v", err)
		}
		if ev.Phase != phase {
			t.Fatalf("line %d: phase %q, want %q", i, ev.Phase, phase)
		}
		assertNoLine("waiting between events")
	}

	// Terminal state: the final snapshot line arrives and the stream ends.
	j.mu.Lock()
	j.state = JobFailed
	j.err = "stopped by test"
	j.finished = time.Now()
	j.touch()
	j.mu.Unlock()

	var final JobStatus
	if err := json.Unmarshal([]byte(readLine("final snapshot")), &final); err != nil {
		t.Fatalf("bad final line: %v", err)
	}
	if final.State != JobFailed || final.Error != "stopped by test" {
		t.Fatalf("final snapshot wrong: %+v", final)
	}
	select {
	case line, ok := <-lines:
		if ok {
			t.Fatalf("line after terminal snapshot: %q", line)
		}
		// closed: the server ended the stream on completion.
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not close after the job finished")
	}
}
