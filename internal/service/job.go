package service

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"strings"
	"sync"
	"time"

	"glade/internal/bytesets"
	"glade/internal/core"
	"glade/internal/metrics"
	"glade/internal/oracle"
	"glade/internal/telemetry"
	// The registry fills oracle's named table: importing service is enough
	// to make every builtin, program, and target spec resolvable.
	_ "glade/internal/oracle/registry"
)

// buildOracle resolves a spec against the server's defaults with no
// resilience layer — the cheap form the validation-only paths use (a
// submission check never issues a query, so it needs no retry loop).
func buildOracle(sp oracle.Spec, workers int, defaultTimeout time.Duration) (oracle.CheckOracle, []string, error) {
	return sp.Build(oracle.BuildOptions{Workers: workers, DefaultTimeout: defaultTimeout})
}

// buildResilientOracle is the query-issuing form: the oracle every job,
// campaign, and validity-filtered generation actually runs carries the
// server's resilience layer — the clamped retry budget, the circuit
// breaker, and the shared per-source telemetry instruments.
func (s *Server) buildResilientOracle(sp oracle.Spec, workers, retries int, met *oracle.ResilientMetrics) (oracle.CheckOracle, []string, error) {
	opt := oracle.BuildOptions{Workers: workers, DefaultTimeout: s.cfg.DefaultOracleTimeout}
	if retries > 0 {
		opt.Retry = oracle.RetryPolicy{MaxAttempts: retries + 1}
	}
	if s.cfg.BreakerThreshold > 0 {
		opt.Breaker = oracle.BreakerPolicy{Threshold: s.cfg.BreakerThreshold}
	}
	opt.ResilientMetrics = met // used only when the options add the wrapper
	return sp.Build(opt)
}

// JobOptions is the client-settable subset of core.Options. Pointer fields
// distinguish "unset, use the default" from explicit false/zero.
type JobOptions struct {
	Phase2            *bool `json:"phase2,omitempty"`
	CharGen           *bool `json:"chargen,omitempty"`
	Workers           int   `json:"workers,omitempty"`
	TimeoutMS         int   `json:"timeout_ms,omitempty"`
	MergeSampleChecks *int  `json:"merge_sample_checks,omitempty"`
	RandSeed          int64 `json:"rand_seed,omitempty"`
	// Retries is the per-query transient-failure retry budget (nil uses
	// the server default, clamped server-side to Config.MaxRetries).
	Retries *int `json:"retries,omitempty"`
}

// JobSpec is the body of POST /v1/jobs. Empty Seeds with a named oracle
// (builtin, program, target) selects the oracle's bundled seeds.
type JobSpec struct {
	Seeds   []string    `json:"seeds,omitempty"`
	Oracle  oracle.Spec `json:"oracle"`
	Options *JobOptions `json:"options,omitempty"`
}

// resolveOptions maps the spec onto core.Options, starting from the
// paper's defaults. Exec oracles restrict character generalization to the
// bytes of the seeds plus common structural characters, exactly as
// cmd/glade does — external processes are too expensive for a full
// printable-ASCII sweep per literal position; in-process oracles get the
// full sweep.
func (spec JobSpec) resolveOptions(cfg Config, seeds []string) core.Options {
	opts := core.DefaultOptions()
	opts.Timeout = cfg.MaxJobDuration
	opts.Workers = cfg.DefaultWorkers
	if spec.Oracle.IsExec() {
		opts.GenAlphabet = bytesets.OfString(strings.Join(seeds, "")).
			Union(bytesets.OfString(" \t\nabcxyz012<>()[]{}/\\\"'"))
	}
	jo := spec.Options
	if jo == nil {
		return opts
	}
	if jo.Phase2 != nil {
		opts.Phase2 = *jo.Phase2
	}
	if jo.CharGen != nil {
		opts.CharGen = *jo.CharGen
	}
	if jo.Workers > 0 {
		opts.Workers = min(jo.Workers, cfg.MaxWorkers)
	}
	if jo.TimeoutMS > 0 {
		t := time.Duration(jo.TimeoutMS) * time.Millisecond
		if cfg.MaxJobDuration == 0 || t < cfg.MaxJobDuration {
			opts.Timeout = t
		}
	}
	if jo.MergeSampleChecks != nil {
		opts.MergeSampleChecks = *jo.MergeSampleChecks
	}
	if jo.RandSeed != 0 {
		opts.RandSeed = jo.RandSeed
	}
	return opts
}

// JobState is the lifecycle of a learn job.
type JobState string

const (
	JobQueued   JobState = "queued"   // accepted, waiting for a scheduler slot
	JobRunning  JobState = "running"  // learning (or, for campaigns, fuzzing)
	JobDone     JobState = "done"     // finished; the grammar or report is available
	JobFailed   JobState = "failed"   // finished unsuccessfully; Error says why
	JobCanceled JobState = "canceled" // cancelled by DELETE before finishing; distinct from failed
)

// terminal reports whether the state is final (no further transitions).
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job is one learn job owned by the Manager. All mutable fields are
// guarded by mu; changed is closed and replaced on every mutation so
// watchers can block for "anything new" without polling.
type Job struct {
	ID   string
	Spec JobSpec

	mu      sync.Mutex
	changed chan struct{}
	state   JobState
	// cancel aborts the running learn's context; set by run() for the
	// duration of the learn. cancelRequested records that a DELETE asked
	// for cancellation, so finish() maps the resulting context error to
	// JobCanceled rather than JobFailed.
	cancel          func()
	cancelRequested bool
	// events buffers progress for snapshots and watchers. Slots
	// [0, len-1) hold the first events verbatim; once seq outgrows the
	// buffer the tail slot is overwritten with the newest event, so the
	// buffer is "head of the stream + latest". seq counts every event
	// ever emitted and is the watcher cursor space.
	events   []core.Progress
	seq      int
	err      string
	created  time.Time
	started  time.Time
	finished time.Time
	stats    core.Stats
	queries  metrics.QueryStats
	// spans are the learner's phase spans (core.Options.Tracer), recorded
	// once the learn returns and persisted with the terminal record.
	spans []telemetry.Span
	// seeds are the resolved seed inputs (spec seeds or builtin defaults);
	// dropped once the job reaches a terminal state (the store keeps them
	// in GrammarMeta), leaving seedCount for snapshots.
	seeds     []string
	seedCount int
	// reqID is the submitting HTTP request's ID ("" for direct Submit
	// calls); immutable after creation, threaded through lifecycle logs.
	reqID string
}

// log returns the base logger with the job's identity attached, so every
// lifecycle line carries the job ID and — when the job arrived over HTTP —
// the submitting request's ID.
func (j *Job) log(base *slog.Logger) *slog.Logger {
	l := base.With("job", j.ID)
	if j.reqID != "" {
		l = l.With("req", j.reqID)
	}
	return l
}

func newJob(spec JobSpec) *Job {
	return &Job{
		ID:      newID(),
		Spec:    spec,
		changed: make(chan struct{}),
		state:   JobQueued,
		created: time.Now(),
	}
}

// newID returns a 12-hex-digit random identifier.
func newID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("service: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// touch wakes every watcher. Callers hold j.mu.
func (j *Job) touch() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// appendEvent records one learner progress event. maxEvents bounds memory:
// char-gen on many seeds can emit thousands of literal events, so the
// buffer keeps the head of the stream and overwrites the tail slot with
// the newest event; watchers track seq, not buffer indices, so they keep
// sampling the latest event after the buffer fills.
const maxEvents = 512

func (j *Job) appendEvent(p core.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.seq < maxEvents {
		j.events = append(j.events, p)
	} else {
		j.events[len(j.events)-1] = p
	}
	j.seq++
	j.touch()
}

// JobStatus is the wire form of a job snapshot.
type JobStatus struct {
	ID       string     `json:"id"`
	State    JobState   `json:"state"`
	Oracle   string     `json:"oracle"`
	Seeds    int        `json:"seeds"`
	Created  time.Time  `json:"created_at"`
	Started  *time.Time `json:"started_at,omitempty"`
	Finished *time.Time `json:"finished_at,omitempty"`
	Error    string     `json:"error,omitempty"`
	// Progress is the most recent learner event (nil before the run
	// starts); Events is the full buffered stream when requested.
	Progress *core.Progress  `json:"progress,omitempty"`
	Events   []core.Progress `json:"events,omitempty"`
	// GrammarID is set once the job is done; the grammar then lives at
	// /v1/grammars/{grammar_id}.
	GrammarID string      `json:"grammar_id,omitempty"`
	Stats     *core.Stats `json:"stats,omitempty"`
	// Spans is the learner's phase-span trace (per-phase wall time and
	// effort counters), included when events are requested.
	Spans []telemetry.Span `json:"spans,omitempty"`
}

// status snapshots the job. withEvents includes the buffered event stream.
func (j *Job) status(withEvents bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:      j.ID,
		State:   j.state,
		Oracle:  j.Spec.Oracle.String(),
		Seeds:   j.seedCount,
		Created: j.created,
		Error:   j.err,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if n := len(j.events); n > 0 {
		p := j.events[n-1]
		st.Progress = &p
		if withEvents {
			st.Events = append([]core.Progress(nil), j.events...)
		}
	}
	if withEvents && len(j.spans) > 0 {
		st.Spans = append([]telemetry.Span(nil), j.spans...)
	}
	if j.state == JobDone {
		st.GrammarID = j.ID
		s := j.stats
		st.Stats = &s
	}
	return st
}

// watch returns the events past cursor (a seq position), the advanced
// cursor, the current state, and a channel closed on the next mutation.
// While the buffer holds the whole stream delivery is exact; once it has
// overflowed, watchers past the exact head receive the newest event only
// (middles were dropped). Terminal states never mutate again.
func (j *Job) watch(cursor int) ([]core.Progress, int, JobState, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var fresh []core.Progress
	if j.seq <= len(j.events) {
		// No overflow yet: buffer positions are seq positions.
		if cursor < j.seq {
			fresh = append(fresh, j.events[cursor:]...)
			cursor = j.seq
		}
	} else {
		head := len(j.events) - 1 // slots [0, head) are exact; tail is event seq-1
		if cursor < head {
			fresh = append(fresh, j.events[cursor:head]...)
			cursor = head
		}
		if cursor < j.seq {
			fresh = append(fresh, j.events[head])
			cursor = j.seq
		}
	}
	return fresh, cursor, j.state, j.changed
}

// queryStats returns the oracle-level timing snapshot recorded for the job.
func (j *Job) queryStats() (metrics.QueryStats, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.queries, j.state
}

// phaseSummary aggregates the job's phase spans: total wall nanoseconds
// per phase name, nil while no spans are recorded.
func (j *Job) phaseSummary() map[string]int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.spans) == 0 {
		return nil
	}
	out := make(map[string]int64, 4)
	for _, sp := range j.spans {
		out[sp.Name] += sp.DurationNS
	}
	return out
}
