package service

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"glade/internal/cfg"
	"glade/internal/oracle"
)

func mustGrammar(t *testing.T, text string) *cfg.Grammar {
	t.Helper()
	g, err := cfg.Unmarshal(text)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStoreRoundTripAndReload(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := mustGrammar(t, "start A\nA -> \"a\" B\nB -> {0-9}\nB ->\n")
	meta := GrammarMeta{
		ID:        "abc123",
		Oracle:    "program:sed",
		Spec:      oracle.Spec{Type: oracle.SpecProgram, Name: "sed"},
		Seeds:     []string{"a1", "a"},
		CreatedAt: time.Now().UTC().Truncate(time.Second),
		Queries:   42,
		Seconds:   1.5,
	}
	if err := s.Put(g, meta); err != nil {
		t.Fatal(err)
	}
	text, ok := s.Text("abc123")
	if !ok || text != cfg.Marshal(g) {
		t.Fatalf("stored text mismatch (ok=%v)", ok)
	}
	if _, err := s.Grammar("abc123"); err != nil {
		t.Fatal(err)
	}

	// A fresh open over the same directory sees the same grammar and
	// metadata — the restart-survival contract.
	s2, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	text2, ok := s2.Text("abc123")
	if !ok || text2 != text {
		t.Fatalf("reloaded text mismatch (ok=%v)", ok)
	}
	m2, ok := s2.Meta("abc123")
	if !ok || m2.Oracle != meta.Oracle || len(m2.Seeds) != 2 || m2.Queries != 42 || m2.Spec.Name != "sed" {
		t.Fatalf("reloaded metadata mismatch: %+v", m2)
	}
	g2, err := s2.Grammar("abc123")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Marshal(g2) != cfg.Marshal(g) {
		t.Fatal("reloaded grammar differs")
	}
}

func TestStoreSkipsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := mustGrammar(t, "start A\nA -> \"ok\"\n")
	if err := s.Put(good, GrammarMeta{ID: "good", CreatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	// A metadata file without a grammar, a grammar without metadata, and a
	// grammar that does not parse.
	os.WriteFile(filepath.Join(dir, "orphanmeta.json"), []byte(`{"id":"orphanmeta"}`), 0o644)
	os.WriteFile(filepath.Join(dir, "orphangrammar.grammar"), []byte("start A\nA -> \"x\"\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "bad.json"), []byte(`{"id":"bad"}`), 0o644)
	os.WriteFile(filepath.Join(dir, "bad.grammar"), []byte("not a grammar"), 0o644)

	s2, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	list := s2.List()
	if len(list) != 1 || list[0].ID != "good" {
		t.Fatalf("expected only the good entry, got %+v", list)
	}
}

func TestStoreListOrder(t *testing.T) {
	s, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	g := mustGrammar(t, "start A\nA -> \"a\"\n")
	base := time.Now().UTC()
	for i, id := range []string{"first", "second", "third"} {
		if err := s.Put(g, GrammarMeta{ID: id, CreatedAt: base.Add(time.Duration(i) * time.Second)}); err != nil {
			t.Fatal(err)
		}
	}
	list := s.List()
	if len(list) != 3 || list[0].ID != "third" || list[2].ID != "first" {
		t.Fatalf("list not newest-first: %+v", list)
	}
}
