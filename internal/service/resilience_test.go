package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestReadyzDrain pins the readiness-vs-liveness contract: /readyz answers
// 200 while the server accepts work and flips to 503 with a Retry-After
// hint once draining begins, while /healthz (liveness) stays 200 so
// orchestrators do not kill a server that is merely finishing its jobs.
// New submissions during the drain are refused with the same hint.
func TestReadyzDrain(t *testing.T) {
	srv, ts := testServer(t, t.TempDir())

	resp := getJSON(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready server: /readyz = %d, want 200", resp.StatusCode)
	}
	if !srv.Ready() {
		t.Fatal("Ready() = false before Drain")
	}

	srv.Drain()
	if srv.Ready() {
		t.Fatal("Ready() = true after Drain")
	}
	resp = getJSON(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server: /readyz = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("draining /readyz carries no Retry-After header")
	}
	resp = getJSON(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining server: /healthz = %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}

	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"oracle": map[string]any{"type": "builtin", "name": "json"},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503 (%s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("draining submit refusal carries no Retry-After header")
	}
	resp, body = postJSON(t, ts.URL+"/v1/campaigns", map[string]any{
		"oracle": map[string]any{"type": "builtin", "name": "json"},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("campaign submit while draining = %d, want 503 (%s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("draining campaign refusal carries no Retry-After header")
	}
}

// TestRecoverPanics pins the panic-containment middleware: a panicking
// handler yields a 500 (not a dropped connection), increments the panic
// counter, and http.ErrAbortHandler passes through untouched (it is the
// stdlib's sanctioned abort signal and must keep its semantics).
func TestRecoverPanics(t *testing.T) {
	srv, err := New(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	boom := srv.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	boom.ServeHTTP(rec, httptest.NewRequest("GET", "/panic", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	var sb strings.Builder
	if err := srv.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "glade_http_panics_total 1") {
		t.Fatalf("panic counter not incremented; exposition:\n%s", sb.String())
	}

	abort := srv.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if p := recover(); p != http.ErrAbortHandler {
				t.Fatalf("ErrAbortHandler was swallowed (recovered %v)", p)
			}
		}()
		abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/abort", nil))
	}()
}

// TestResolveRetries pins the server-side clamp on client-requested retry
// budgets: nil uses the configured default, negatives floor at zero, and
// nothing exceeds MaxRetries.
func TestResolveRetries(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), DefaultRetries: 2, MaxRetries: 4}.withDefaults()
	intp := func(v int) *int { return &v }
	cases := []struct {
		name string
		req  *int
		want int
	}{
		{"nil uses default", nil, 2},
		{"explicit zero disables", intp(0), 0},
		{"in range passes through", intp(3), 3},
		{"above max clamps", intp(100), 4},
		{"negative floors at zero", intp(-7), 0},
	}
	for _, tc := range cases {
		if got := cfg.resolveRetries(tc.req); got != tc.want {
			t.Errorf("%s: resolveRetries = %d, want %d", tc.name, got, tc.want)
		}
	}

	// A default above the cap is itself clamped at config time.
	high := Config{DataDir: t.TempDir(), DefaultRetries: 50, MaxRetries: 3}.withDefaults()
	if got := high.resolveRetries(nil); got != 3 {
		t.Errorf("default above max: resolveRetries(nil) = %d, want 3", got)
	}
}

// TestRetryAfterHints pins the backoff constants every saturation response
// advertises: both must be positive whole seconds, and a drain (the server
// is going away) should hint a longer backoff than transient saturation.
func TestRetryAfterHints(t *testing.T) {
	if retryAfterSaturated <= 0 || retryAfterDraining <= 0 {
		t.Fatal("Retry-After hints must be positive seconds")
	}
	if retryAfterDraining < retryAfterSaturated {
		t.Fatal("draining should hint a longer backoff than transient saturation")
	}
}
