package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"glade/internal/cfg"
	"glade/internal/oracle"
)

// GrammarMeta is the JSON metadata persisted beside each stored grammar.
// Seeds are kept because rebuilding a grammar fuzzer after a restart needs
// them (the fuzzer starts every input from a parsed seed tree).
type GrammarMeta struct {
	ID     string `json:"id"`
	Oracle string `json:"oracle"` // human-readable spec, e.g. "program:sed"
	// Spec is the full oracle spec, kept so validity-filtered generation
	// can rebuild the oracle even after a restart. Metadata written before
	// the unified spec (legacy {"program": ...} keys) still decodes —
	// oracle.Spec normalizes the old shape on load.
	Spec      oracle.Spec `json:"oracle_spec"`
	Seeds     []string    `json:"seeds"`
	CreatedAt time.Time   `json:"created_at"`
	// Learning effort, surfaced by /v1/stats and grammar listings.
	Queries  int     `json:"queries"`
	Seconds  float64 `json:"seconds"`
	TimedOut bool    `json:"timed_out,omitempty"`
}

// Store is the disk-backed grammar store: a directory holding one
// <id>.grammar file (cfg.Marshal text) and one <id>.json metadata file per
// learned grammar. Everything is loaded at open, so the daemon serves
// grammars learned by earlier incarnations; writes go through a temp-file
// rename so a crash never leaves a half-written grammar behind.
type Store struct {
	dir  string
	logf func(format string, args ...any)

	mu    sync.RWMutex
	metas map[string]*GrammarMeta
	texts map[string]string
	// grammars caches parsed grammars; populated lazily from texts.
	grammars map[string]*cfg.Grammar
}

// OpenStore opens (creating if needed) the store rooted at dir and loads
// every grammar already present. Entries whose grammar text no longer
// parses, or which lack either file of the pair, are skipped with a line
// through logf (nil silences them, matching glade-serve -quiet) rather
// than failing the open — one corrupt entry must not take the daemon down.
func OpenStore(dir string, logf func(format string, args ...any)) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: store directory is empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: create store: %w", err)
	}
	s := &Store{
		dir:      dir,
		logf:     logf,
		metas:    map[string]*GrammarMeta{},
		texts:    map[string]string{},
		grammars: map[string]*cfg.Grammar{},
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: read store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		id, ok := strings.CutSuffix(name, ".json")
		if !ok {
			continue
		}
		metaBytes, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			s.skipf("store: skipping unreadable metadata %s: %v", name, err)
			continue
		}
		var meta GrammarMeta
		if err := json.Unmarshal(metaBytes, &meta); err != nil || meta.ID != id {
			s.skipf("store: skipping bad metadata %s", name)
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, id+".grammar"))
		if err != nil {
			s.skipf("store: %s has no grammar file", id)
			continue
		}
		g, err := cfg.Unmarshal(string(text))
		if err != nil {
			s.skipf("store: skipping unparsable grammar %s: %v", id, err)
			continue
		}
		s.metas[id] = &meta
		s.texts[id] = string(text)
		s.grammars[id] = g // validation already paid for the parse
	}
	return s, nil
}

// skipf logs one skipped-entry diagnostic; silent when no logger is set.
func (s *Store) skipf(format string, args ...any) {
	if s.logf != nil {
		s.logf(format, args...)
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Put persists a learned grammar and its metadata, then publishes it to
// readers. The grammar is stored in cfg.Marshal text form — the same bytes
// GET /v1/grammars/{id} serves.
func (s *Store) Put(g *cfg.Grammar, meta GrammarMeta) error {
	if meta.ID == "" {
		return fmt.Errorf("service: store: empty grammar id")
	}
	text := cfg.Marshal(g)
	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(s.dir, meta.ID+".grammar"), []byte(text)); err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(s.dir, meta.ID+".json"), append(metaBytes, '\n')); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := meta
	s.metas[meta.ID] = &m
	s.texts[meta.ID] = text
	s.grammars[meta.ID] = g
	return nil
}

// writeAtomic writes data via a temp file + rename so readers (and future
// opens) never observe a torn file.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Text returns the stored cfg.Marshal text of a grammar.
func (s *Store) Text(id string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	text, ok := s.texts[id]
	return text, ok
}

// Grammar returns the parsed grammar, caching the parse.
func (s *Store) Grammar(id string) (*cfg.Grammar, error) {
	s.mu.RLock()
	g, ok := s.grammars[id]
	text, haveText := s.texts[id]
	s.mu.RUnlock()
	if ok {
		return g, nil
	}
	if !haveText {
		return nil, fmt.Errorf("service: no grammar %q", id)
	}
	g, err := cfg.Unmarshal(text)
	if err != nil {
		return nil, fmt.Errorf("service: grammar %q: %w", id, err)
	}
	s.mu.Lock()
	s.grammars[id] = g
	s.mu.Unlock()
	return g, nil
}

// Meta returns a grammar's metadata.
func (s *Store) Meta(id string) (GrammarMeta, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.metas[id]
	if !ok {
		return GrammarMeta{}, false
	}
	return *m, true
}

// List returns every stored grammar's metadata, newest first.
func (s *Store) List() []GrammarMeta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]GrammarMeta, 0, len(s.metas))
	for _, m := range s.metas {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].ID < out[j].ID
		}
		return out[i].CreatedAt.After(out[j].CreatedAt)
	})
	return out
}
