package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"glade/internal/cfg"
	"glade/internal/oracle"
)

// GrammarMeta is the JSON metadata persisted beside each stored grammar.
// Seeds are kept because rebuilding a grammar fuzzer after a restart needs
// them (the fuzzer starts every input from a parsed seed tree).
type GrammarMeta struct {
	ID     string `json:"id"`
	Oracle string `json:"oracle"` // human-readable spec, e.g. "program:sed"
	// Spec is the full oracle spec, kept so validity-filtered generation
	// can rebuild the oracle even after a restart. Metadata written before
	// the unified spec (legacy {"program": ...} keys) still decodes —
	// oracle.Spec normalizes the old shape on load.
	Spec      oracle.Spec `json:"oracle_spec"`
	Seeds     []string    `json:"seeds"`
	CreatedAt time.Time   `json:"created_at"`
	// Learning effort, surfaced by /v1/stats and grammar listings.
	Queries  int     `json:"queries"`
	Seconds  float64 `json:"seconds"`
	TimedOut bool    `json:"timed_out,omitempty"`
	// GrammarSHA is the SHA-256 (hex) of the grammar's canonical marshaled
	// text. Grammars are immutable, so the bytes live content-addressed at
	// blobs/<sha>.grammar and every id with identical content shares one
	// blob. Metadata written by pre-CAS layouts lacks this field; OpenStore
	// migrates such entries in place.
	GrammarSHA string `json:"grammar_sha256,omitempty"`
}

// blobsDirName is the subdirectory of the store root holding
// content-addressed grammar blobs.
const blobsDirName = "blobs"

// maxCachedGrammars bounds the store's hot cache of parsed (and, on
// demand, compiled) grammars. Entries are keyed by content hash, so two
// ids storing identical grammars share one cache slot and one compiled
// engine; least-recently-used entries are evicted and simply reload from
// their blob on next use.
const maxCachedGrammars = 128

// cacheEntry is one resident grammar: its canonical text, the parsed
// form, and — built lazily on first membership use — the compiled ladder.
// Immutable after construction apart from the compile-once.
type cacheEntry struct {
	sha  string
	text string
	g    *cfg.Grammar

	compileOnce sync.Once
	compiled    *cfg.Compiled

	elem *list.Element // position in Store.lru; guarded by Store.mu
}

// engine returns the entry's compiled recognition ladder, building it on
// first use. Safe for concurrent callers.
func (e *cacheEntry) engine() *cfg.Compiled {
	e.compileOnce.Do(func() { e.compiled = cfg.Compile(e.g) })
	return e.compiled
}

// Store is the disk-backed grammar store. Grammar bytes are immutable and
// content-addressed: blobs/<sha256>.grammar holds the canonical
// cfg.Marshal text, <id>.json metadata points at the hash, and identical
// grammars stored under any number of ids share one blob. Metadata for
// every grammar is loaded at open (so the daemon serves grammars learned
// by earlier incarnations); grammar text is loaded — and parsed, and on
// demand compiled — through an LRU hot cache keyed by content hash, so
// repeat membership and generation traffic never re-reads or re-parses
// from disk. Writes go through a temp-file rename so a crash never leaves
// a half-written grammar behind; stale temp files from interrupted writes
// are swept at open.
type Store struct {
	dir string
	log *slog.Logger

	mu    sync.Mutex
	metas map[string]*GrammarMeta
	cache map[string]*cacheEntry // keyed by content hash
	lru   *list.List             // front = most recently used; values are hashes
}

// OpenStore opens (creating if needed) the store rooted at dir and loads
// every grammar's metadata. Stores written by the pre-content-addressed
// layout (<id>.grammar beside <id>.json) are migrated in place: the
// grammar bytes move, byte-identical, into blobs/<sha>.grammar and the
// metadata is rewritten to point at the hash. Entries whose grammar no
// longer parses, or which lack their blob or metadata, are skipped with a
// warning through logger (nil silences everything) rather than failing
// the open — one corrupt entry must not take the daemon down.
func OpenStore(dir string, logger *slog.Logger) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: store directory is empty")
	}
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	if err := os.MkdirAll(filepath.Join(dir, blobsDirName), 0o755); err != nil {
		return nil, fmt.Errorf("service: create store: %w", err)
	}
	s := &Store{
		dir:   dir,
		log:   logger,
		metas: map[string]*GrammarMeta{},
		cache: map[string]*cacheEntry{},
		lru:   list.New(),
	}
	s.sweepTemp()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: read store: %w", err)
	}
	migrated := 0
	for _, e := range entries {
		name := e.Name()
		id, ok := strings.CutSuffix(name, ".json")
		if !ok || e.IsDir() {
			continue
		}
		metaBytes, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			s.log.Warn("store: skipping unreadable metadata", "file", name, "err", err)
			continue
		}
		var meta GrammarMeta
		if err := json.Unmarshal(metaBytes, &meta); err != nil || meta.ID != id {
			s.log.Warn("store: skipping bad metadata", "file", name)
			continue
		}
		if meta.GrammarSHA == "" {
			// Pre-CAS layout: grammar bytes live at <id>.grammar. Migrate
			// them into the blob store, byte-identical, and point the
			// metadata at the hash.
			sha, err := s.migrate(&meta)
			if err != nil {
				s.log.Warn("store: skipping entry", "id", id, "err", err)
				continue
			}
			meta.GrammarSHA = sha
			migrated++
		} else if _, err := os.Stat(s.blobPath(meta.GrammarSHA)); err != nil {
			s.log.Warn("store: skipping entry with missing blob", "id", id, "sha", meta.GrammarSHA)
			continue
		}
		s.metas[id] = &meta
	}
	if migrated > 0 {
		s.log.Info("store: migrated legacy entries to content-addressed blobs", "count", migrated)
	}
	return s, nil
}

// migrate moves one legacy <id>.grammar file into the blob store,
// validating that it still parses, and rewrites the metadata to carry the
// content hash. The grammar bytes are preserved exactly — the blob is the
// old file's content, not a re-marshal — so migration is lossless.
func (s *Store) migrate(meta *GrammarMeta) (string, error) {
	legacy := filepath.Join(s.dir, meta.ID+".grammar")
	text, err := os.ReadFile(legacy)
	if err != nil {
		return "", fmt.Errorf("no grammar file: %w", err)
	}
	if _, err := cfg.Unmarshal(string(text)); err != nil {
		return "", fmt.Errorf("unparsable grammar: %w", err)
	}
	sha := contentSHA(text)
	if err := s.ensureBlob(sha, text); err != nil {
		return "", err
	}
	m := *meta
	m.GrammarSHA = sha
	metaBytes, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	if err := writeAtomic(filepath.Join(s.dir, meta.ID+".json"), append(metaBytes, '\n')); err != nil {
		return "", err
	}
	// The blob and the updated metadata are durable; the legacy file is
	// now redundant. If the remove fails the entry still works — the next
	// open just retries nothing (the metadata already carries the hash).
	if err := os.Remove(legacy); err != nil {
		s.log.Warn("store: could not remove migrated grammar file", "id", meta.ID, "err", err)
	}
	return sha, nil
}

// sweepTemp removes stale .tmp-* files left by writeAtomic calls that were
// interrupted between create and rename — without it a crashy daemon's
// data dir accumulates them forever. Swept at open across the store root
// and its subdirectories (blobs, jobs, campaigns).
func (s *Store) sweepTemp() {
	dirs := []string{s.dir}
	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, e := range entries {
			if e.IsDir() {
				dirs = append(dirs, filepath.Join(s.dir, e.Name()))
			}
		}
	}
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasPrefix(e.Name(), ".tmp-") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			if err := os.Remove(path); err != nil {
				s.log.Warn("store: could not sweep temp file", "file", path, "err", err)
				continue
			}
			s.log.Debug("store: swept stale temp file", "file", path)
		}
	}
}

// contentSHA returns the hex SHA-256 of the grammar bytes — the blob name.
func contentSHA(text []byte) string {
	sum := sha256.Sum256(text)
	return hex.EncodeToString(sum[:])
}

// blobPath maps a content hash to its blob file.
func (s *Store) blobPath(sha string) string {
	return filepath.Join(s.dir, blobsDirName, sha+".grammar")
}

// ensureBlob writes the grammar bytes under their hash unless an identical
// blob is already present — the dedup point: storing the same grammar
// twice (under any ids) costs one blob.
func (s *Store) ensureBlob(sha string, text []byte) error {
	path := s.blobPath(sha)
	if _, err := os.Stat(path); err == nil {
		return nil // identical content already stored
	}
	return writeAtomic(path, text)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Put persists a learned grammar and its metadata, then publishes it to
// readers. The grammar is stored in cfg.Marshal text form — the same bytes
// GET /v1/grammars/{id} serves — under its content hash; identical
// grammars already stored are deduplicated to the existing blob.
func (s *Store) Put(g *cfg.Grammar, meta GrammarMeta) error {
	if meta.ID == "" {
		return fmt.Errorf("service: store: empty grammar id")
	}
	text := cfg.Marshal(g)
	sha := contentSHA([]byte(text))
	meta.GrammarSHA = sha
	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if err := s.ensureBlob(sha, []byte(text)); err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(s.dir, meta.ID+".json"), append(metaBytes, '\n')); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := meta
	s.metas[meta.ID] = &m
	if _, ok := s.cache[sha]; !ok {
		s.insertLocked(&cacheEntry{sha: sha, text: text, g: g})
	}
	return nil
}

// writeAtomic writes data via a temp file + rename so readers (and future
// opens) never observe a torn file.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// insertLocked adds a cache entry and evicts beyond the cap. Callers hold
// s.mu.
func (s *Store) insertLocked(e *cacheEntry) {
	e.elem = s.lru.PushFront(e.sha)
	s.cache[e.sha] = e
	for s.lru.Len() > maxCachedGrammars {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.cache, back.Value.(string))
	}
}

// entry resolves a grammar id to its resident cache entry, loading and
// parsing the blob on a miss. The steady-state path — the one every
// membership check, generation, and text fetch rides — is a metadata map
// lookup plus an LRU bump: no disk, no parse, no allocation beyond the
// bump.
func (s *Store) entry(id string) (*cacheEntry, error) {
	s.mu.Lock()
	meta, ok := s.metas[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: no grammar %q", id)
	}
	sha := meta.GrammarSHA
	if e, ok := s.cache[sha]; ok {
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		return e, nil
	}
	s.mu.Unlock()

	// Miss: load and parse outside the lock (a cold blob read must not
	// stall hot lookups), then publish. A racing loader may have inserted
	// the same hash meanwhile — use theirs, drop ours.
	text, err := os.ReadFile(s.blobPath(sha))
	if err != nil {
		return nil, fmt.Errorf("service: grammar %q: %w", id, err)
	}
	g, err := cfg.Unmarshal(string(text))
	if err != nil {
		return nil, fmt.Errorf("service: grammar %q: %w", id, err)
	}
	e := &cacheEntry{sha: sha, text: string(text), g: g}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prior, ok := s.cache[sha]; ok {
		s.lru.MoveToFront(prior.elem)
		return prior, nil
	}
	s.insertLocked(e)
	return e, nil
}

// Text returns the stored cfg.Marshal text of a grammar.
func (s *Store) Text(id string) (string, bool) {
	e, err := s.entry(id)
	if err != nil {
		return "", false
	}
	return e.text, true
}

// Grammar returns the parsed grammar, cached across calls (keyed by
// content, so identical grammars under different ids share one parse).
func (s *Store) Grammar(id string) (*cfg.Grammar, error) {
	e, err := s.entry(id)
	if err != nil {
		return nil, err
	}
	return e.g, nil
}

// Compiled returns the grammar's compiled recognition ladder, built once
// per resident cache entry and shared by every id with identical content —
// membership traffic (POST /v1/grammars/{id}/check) never re-parses or
// re-compiles from disk at steady state.
func (s *Store) Compiled(id string) (*cfg.Compiled, error) {
	e, err := s.entry(id)
	if err != nil {
		return nil, err
	}
	return e.engine(), nil
}

// Meta returns a grammar's metadata.
func (s *Store) Meta(id string) (GrammarMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.metas[id]
	if !ok {
		return GrammarMeta{}, false
	}
	return *m, true
}

// List returns every stored grammar's metadata, newest first.
func (s *Store) List() []GrammarMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GrammarMeta, 0, len(s.metas))
	for _, m := range s.metas {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].ID < out[j].ID
		}
		return out[i].CreatedAt.After(out[j].CreatedAt)
	})
	return out
}

// CacheLen reports resident hot-cache entries (a telemetry gauge).
func (s *Store) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// BlobCount counts content-addressed blobs on disk. With deduplication it
// can be smaller than the number of stored grammar ids; exposed as a
// telemetry gauge and asserted by the dedup tests.
func (s *Store) BlobCount() int {
	entries, err := os.ReadDir(filepath.Join(s.dir, blobsDirName))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".grammar") {
			n++
		}
	}
	return n
}
