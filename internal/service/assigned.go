package service

import "fmt"

// AssignedIDHeader names the request header through which a cluster router
// pre-assigns the id of a resource created by POST /v1/jobs or
// POST /v1/campaigns. The entry node mints the id, hashes it to pick the
// owning peer, and forwards the submission with this header so the owner
// creates the resource under the id every node will route by. Requests
// without the header (single-node deployments, direct clients) get a
// server-generated id as always.
const AssignedIDHeader = "X-Glade-Assigned-Id"

// NewID returns a fresh resource id in the server's format — exported so a
// cluster router can mint a job or campaign id before the resource exists
// and route the creating POST to the id's owner.
func NewID() string { return newID() }

// IsValidID reports whether id is in the server-generated resource-id
// format (12 lowercase hex digits). Assigned-id headers are validated with
// it, so a client or forwarding peer cannot inject arbitrary ids.
func IsValidID(id string) bool {
	if len(id) != 12 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// errDuplicateID tags submissions whose pre-assigned id already names a
// job or campaign on this node; the HTTP layer answers 409.
var errDuplicateID = fmt.Errorf("id already in use")
