package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"glade/internal/oracle"
	"glade/internal/programs"
)

// putGrepGrammar stores a small hand-written grammar recorded against the
// builtin grep program, so campaign tests skip the learning cost.
func putGrepGrammar(t *testing.T, srv *Server, id string) {
	t.Helper()
	p := programs.ByName("grep")
	// A narrow but valid slice of the grep pattern language: literal runs
	// with optional star. Everything it generates is accepted by grep.
	g := mustGrammar(t, "start A\nA -> {a-z} A\nA -> {a-z}\nA -> {a-z} \"*\"\n")
	meta := GrammarMeta{
		ID:        id,
		Oracle:    "program:grep",
		Spec:      oracle.Spec{Type: oracle.SpecProgram, Name: "grep"},
		Seeds:     p.Seeds(),
		CreatedAt: time.Now().UTC(),
		Queries:   1,
	}
	if err := srv.Store().Put(g, meta); err != nil {
		t.Fatal(err)
	}
}

// waitCampaignDone polls until the campaign reaches a terminal state.
func waitCampaignDone(t *testing.T, base, id string) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var st CampaignStatus
		getJSON(t, base+"/v1/campaigns/"+id, &st)
		if st.State == JobDone || st.State == JobFailed {
			return st
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish", id)
	return CampaignStatus{}
}

// TestCampaignEndToEnd is the acceptance path: a campaign against a stored
// grammar submitted over HTTP runs to completion, its watch stream carries
// incremental NDJSON checkpoints ending in a done snapshot, and a
// restarted daemon still serves the report.
func TestCampaignEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srv, ts := testServer(t, dir)
	putGrepGrammar(t, srv, "grepgram")

	resp, body := postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{
		GrammarID:  "grepgram",
		DurationMS: 2500,
		Workers:    4,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st CampaignStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	// Watch: NDJSON snapshots must arrive incrementally (more than one
	// line, spread over the campaign's runtime) and the stream must close
	// with a terminal snapshot carrying the final report.
	wresp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if ct := wresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch content type %q", ct)
	}
	var lines []CampaignStatus
	var firstAt, lastAt time.Time
	sc := bufio.NewScanner(wresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var snap CampaignStatus
		if err := json.Unmarshal([]byte(line), &snap); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, line)
		}
		if firstAt.IsZero() {
			firstAt = time.Now()
		}
		lastAt = time.Now()
		lines = append(lines, snap)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("watch stream error: %v", err)
	}
	if len(lines) < 2 {
		t.Fatalf("watch stream produced %d lines, want >= 2 (incremental checkpoints)", len(lines))
	}
	if lastAt.Sub(firstAt) < 500*time.Millisecond {
		t.Errorf("all %d watch lines arrived within %v; expected incremental delivery", len(lines), lastAt.Sub(firstAt))
	}
	final := lines[len(lines)-1]
	if final.State != JobDone {
		t.Fatalf("stream did not end done: %+v", final)
	}
	if final.Report == nil || !final.Report.Done || final.Report.Inputs == 0 {
		t.Fatalf("final snapshot lacks a finished report: %+v", final.Report)
	}
	if final.Report.Interesting() == 0 {
		t.Errorf("campaign found nothing interesting: %+v", final.Report.Buckets)
	}

	// Restart: a fresh server over the same data dir must still serve the
	// campaign's report.
	_, ts2 := testServer(t, dir)
	var reloaded CampaignStatus
	r2 := getJSON(t, ts2.URL+"/v1/campaigns/"+st.ID, &reloaded)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("restarted server: %d", r2.StatusCode)
	}
	if reloaded.State != JobDone || reloaded.Report == nil {
		t.Fatalf("restarted server lost the campaign: %+v", reloaded)
	}
	if reloaded.Report.Inputs != final.Report.Inputs {
		t.Errorf("report changed across restart: %d != %d inputs", reloaded.Report.Inputs, final.Report.Inputs)
	}
}

// TestCampaignLearnThenFuzz: a campaign submitted with an oracle spec (no
// stored grammar) learns one first, stores it under the campaign id, and
// then fuzzes with it.
func TestCampaignLearnThenFuzz(t *testing.T) {
	_, ts := testServer(t, t.TempDir())
	resp, body := postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{
		Oracle:     &oracle.Spec{Type: oracle.SpecTarget, Name: "url"},
		DurationMS: 1200,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st CampaignStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	st = waitCampaignDone(t, ts.URL, st.ID)
	if st.State != JobDone {
		t.Fatalf("campaign failed: %s", st.Error)
	}
	if st.GrammarID != st.ID {
		t.Errorf("learned grammar not stored under campaign id: %q", st.GrammarID)
	}
	// The learned grammar is a first-class store entry: fetchable and
	// usable for generation.
	resp, err := http.Get(ts.URL + "/v1/grammars/" + st.GrammarID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stored campaign grammar: %d", resp.StatusCode)
	}
	if st.Report == nil || st.Report.Inputs == 0 {
		t.Fatalf("no fuzzing happened after learn: %+v", st.Report)
	}
}

// TestCampaignValidation exercises spec validation and gating.
func TestCampaignValidation(t *testing.T) {
	srv, ts := testServer(t, t.TempDir())

	// Must name exactly one source.
	resp, _ := postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty spec: got %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{GrammarID: "x", Oracle: &oracle.Spec{Type: oracle.SpecProgram, Name: "sed"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("both sources: got %d, want 400", resp.StatusCode)
	}
	// Unknown grammar is 404, not 400.
	resp, _ = postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{GrammarID: "missing"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing grammar: got %d, want 404", resp.StatusCode)
	}
	// Exec oracle specs are gated exactly like learn jobs.
	resp, _ = postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{Oracle: &oracle.Spec{Type: oracle.SpecExec, Argv: []string{"true"}}, Seeds: []string{"x"}})
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("exec campaign without AllowExec: got %d, want 403", resp.StatusCode)
	}
	// ... and so are stored grammars recorded with an exec oracle.
	g := mustGrammar(t, "start A\nA -> \"a\"\n")
	if err := srv.Store().Put(g, GrammarMeta{ID: "execgram", Spec: oracle.Spec{Type: oracle.SpecExec, Argv: []string{"true"}}, Seeds: []string{"a"}, CreatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{GrammarID: "execgram"})
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("exec-recorded grammar campaign: got %d, want 403", resp.StatusCode)
	}
	// Oversized batch is rejected.
	putGrepGrammar(t, srv, "gg")
	resp, _ = postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{GrammarID: "gg", Batch: maxCampaignBatch + 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: got %d, want 400", resp.StatusCode)
	}
	// Unknown campaign id is 404.
	r := getJSON(t, ts.URL+"/v1/campaigns/deadbeef", nil)
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("missing campaign: got %d, want 404", r.StatusCode)
	}
}

// TestCampaignShutdownPersistsReport: closing the server mid-campaign must
// stop the engine promptly and leave a checkpointed report on disk that
// the next incarnation surfaces (as a failed-but-reported campaign).
func TestCampaignShutdownPersistsReport(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{DataDir: dir, MaxCampaignDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	putGrepGrammar(t, srv, "gg")
	_, body := postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{GrammarID: "gg", DurationMS: 3600000})
	var st CampaignStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit: %v (%s)", err, body)
	}
	// Let it produce at least the initial checkpoint, then shut down.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var snap CampaignStatus
		getJSON(t, ts.URL+"/v1/campaigns/"+st.ID, &snap)
		if snap.State == JobRunning && snap.Report != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close blocked on a running campaign")
	}
	ts.Close()

	srv2, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cr, ok := srv2.Campaign(st.ID)
	if !ok {
		t.Fatal("campaign record not restored after restart")
	}
	rst := cr.status()
	if rst.Report == nil {
		t.Fatalf("restored campaign has no report: %+v", rst)
	}
	if rst.State != JobDone && rst.State != JobFailed {
		t.Fatalf("restored campaign in non-terminal state %q", rst.State)
	}
}
