// Package service implements glade-serve: a long-lived daemon that
// multiplexes many grammar-learn jobs and many fuzz-input consumers over
// the core/oracle engine, amortizing learning cost across requests the way
// parser servers amortize compilation.
//
// The JSON/HTTP surface:
//
//	POST   /v1/jobs                     submit a learn job (seeds + oracle spec)
//	GET    /v1/jobs                     list jobs
//	GET    /v1/jobs/{id}                job snapshot; ?events=1 for the full
//	                                    progress stream, ?watch=1 to stream
//	                                    NDJSON events until the job finishes
//	DELETE /v1/jobs/{id}                cancel a queued or running job; a
//	                                    running learn stops within one wave
//	GET    /v1/grammars                 list stored grammars
//	GET    /v1/grammars/{id}            the grammar in cfg.Marshal text form
//	POST   /v1/grammars/{id}/generate   fuzz inputs from the stored grammar
//	POST   /v1/campaigns                start a fuzzing campaign (stored
//	                                    grammar, or learn-then-fuzz oracle)
//	GET    /v1/campaigns                list campaigns
//	GET    /v1/campaigns/{id}           campaign snapshot with latest report;
//	                                    ?watch=1 streams NDJSON checkpoints
//	DELETE /v1/campaigns/{id}           cancel a campaign (its report is
//	                                    finalized and kept)
//	GET    /v1/oracles                  registered oracle specs (builtins,
//	                                    programs, targets) and exec gating
//	GET    /v1/stats                    per-job learner + oracle query stats
//	GET    /healthz                     liveness
//
// Cancellation lands work in the "canceled" state — distinct from
// "failed" — and persists it, like every other terminal outcome: learned
// grammars, terminal job records, and campaign reports all live in the
// disk-backed store and survive restarts. Generation requests draw from a
// per-grammar pooled fuzzer so concurrent consumers scale.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"glade/internal/core"
	"glade/internal/metrics"
	"glade/internal/telemetry"
)

// Config configures a Server. The zero value is usable apart from DataDir,
// which must name the grammar-store directory.
type Config struct {
	// DataDir is the grammar store's directory; created if absent.
	DataDir string
	// MaxJobs bounds concurrently running learn jobs (default 2). Queued
	// jobs beyond it wait in submission order.
	MaxJobs int
	// QueueDepth bounds jobs waiting to run (default 256); submissions
	// beyond it are rejected with 503.
	QueueDepth int
	// DefaultWorkers is the per-job oracle concurrency when the job spec
	// does not set one (default 1, the paper's sequential algorithm).
	DefaultWorkers int
	// MaxWorkers clamps the per-job oracle concurrency a job spec may
	// request (default 16) — wave sizes and subprocess fan-out scale with
	// it, so it must not be client-controlled without bound.
	MaxWorkers int
	// MaxJobDuration bounds each job's learning time (default 5m). Job
	// specs may shorten it but not exceed it.
	MaxJobDuration time.Duration
	// DefaultOracleTimeout bounds each exec-oracle query when the job spec
	// does not set one (default 10s; a hanging target program is killed).
	DefaultOracleTimeout time.Duration
	// AllowExec permits exec oracle specs, which make the API run
	// client-chosen argv as subprocesses — arbitrary command execution by
	// design. Off by default: enable only when every client that can reach
	// the listen address is trusted (the server has no authentication).
	// When off, exec job submissions and validity-filtered generation from
	// grammars recorded with an exec oracle are rejected with 403.
	AllowExec bool
	// MaxValidating bounds concurrent validity-filtered generate requests
	// (?valid=1), each of which may run thousands of oracle subprocess
	// invocations (default 2). Excess requests wait for a slot until the
	// per-request deadline expires.
	MaxValidating int
	// MaxCampaigns bounds concurrently running fuzzing campaigns
	// (default 1); queued campaigns wait in submission order. A campaign
	// saturates its Workers-bounded oracle pool for its whole duration, so
	// the default keeps one campaign from starving learn jobs.
	MaxCampaigns int
	// MaxCampaignDuration clamps the client-chosen campaign duration
	// (default 10m). HTTP-submitted campaigns are always bounded.
	MaxCampaignDuration time.Duration
	// MaxSeedBytes bounds the total seed payload of one job (default 1MiB).
	MaxSeedBytes int
	// DefaultRetries is the per-query transient-failure retry budget when
	// a job or campaign spec does not set one (default 0: a transient
	// oracle error fails the query on first occurrence, as before).
	DefaultRetries int
	// MaxRetries clamps the per-query retry budget a spec may request
	// (default 8) — each retry can spawn another oracle subprocess, so it
	// must not be client-controlled without bound.
	MaxRetries int
	// BreakerThreshold opens the per-oracle circuit breaker after this
	// many consecutive transient failures, shedding load from an oracle
	// that is down instead of hammering it (default 16; negative
	// disables the breaker).
	BreakerThreshold int
	// Logf, when non-nil, receives server log lines. Superseded by Logger:
	// when both are unset logging is off, and when only Logf is set it
	// receives the structured records flattened to printf lines (info
	// level and above), keeping pre-slog embedders working.
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives the server's structured logs:
	// request lines at debug, job/campaign lifecycle at info, persistence
	// problems at warn/error. See cmd/glade-serve's -log-format and
	// -log-level flags.
	Logger *slog.Logger
	// Registry receives the server's metrics (HTTP, job/campaign
	// lifecycle, oracle latency, pool gauges) and backs GET /metrics. Nil
	// gets a private registry, so metrics always work; pass one to share
	// series with other subsystems or expose them on a debug listener.
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = 1
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 16
	}
	if c.DefaultWorkers > c.MaxWorkers {
		c.DefaultWorkers = c.MaxWorkers
	}
	if c.MaxJobDuration <= 0 {
		c.MaxJobDuration = 5 * time.Minute
	}
	if c.DefaultOracleTimeout <= 0 {
		c.DefaultOracleTimeout = 10 * time.Second
	}
	if c.MaxValidating <= 0 {
		c.MaxValidating = 2
	}
	if c.MaxCampaigns <= 0 {
		c.MaxCampaigns = 1
	}
	if c.MaxCampaignDuration <= 0 {
		c.MaxCampaignDuration = 10 * time.Minute
	}
	if c.MaxSeedBytes <= 0 {
		c.MaxSeedBytes = 1 << 20
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.DefaultRetries < 0 {
		c.DefaultRetries = 0
	}
	if c.DefaultRetries > c.MaxRetries {
		c.DefaultRetries = c.MaxRetries
	}
	switch {
	case c.BreakerThreshold < 0:
		c.BreakerThreshold = 0
	case c.BreakerThreshold == 0:
		c.BreakerThreshold = 16
	}
	return c
}

// resolveRetries maps a client-requested retry budget onto the server's
// clamps: nil means the server default; explicit requests clamp to
// [0, MaxRetries].
func (c Config) resolveRetries(req *int) int {
	r := c.DefaultRetries
	if req != nil {
		r = *req
	}
	if r < 0 {
		r = 0
	}
	return min(r, c.MaxRetries)
}

// Server is the glade-serve daemon: a grammar store, a bounded-concurrency
// job manager, a pooled fuzz generator, and the HTTP handler tying them
// together. Create with New, serve its Handler, Close on shutdown.
type Server struct {
	cfg     Config
	store   *Store
	fuzzers *fuzzerPool
	handler http.Handler
	log     *slog.Logger
	reg     *telemetry.Registry
	met     *serverMetrics
	// validating is the semaphore bounding concurrent ?valid=1 generate
	// requests (capacity cfg.MaxValidating).
	validating chan struct{}

	// baseCtx is cancelled by Close so running campaigns stop promptly.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	// draining flips once the server begins shutting down (Drain or
	// Close): GET /readyz turns not-ready so load balancers stop routing
	// new work here, while /healthz stays 200 for the process liveness
	// probe and in-flight requests finish normally.
	draining atomic.Bool

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []*Job // submission order, for listing
	queue     chan *Job
	campaigns map[string]*CampaignRun
	campOrder []*CampaignRun // submission order, for listing
	campQueue chan *CampaignRun
	wg        sync.WaitGroup
	done      chan struct{}
}

// New opens the store under cfg.DataDir (loading grammars learned by
// earlier incarnations) and starts cfg.MaxJobs scheduler workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	logger := cfg.resolveLogger()
	store, err := OpenStore(cfg.DataDir, logger)
	if err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:        cfg,
		store:      store,
		fuzzers:    newFuzzerPool(store),
		log:        logger,
		reg:        reg,
		met:        newServerMetrics(reg),
		validating: make(chan struct{}, cfg.MaxValidating),
		jobs:       map[string]*Job{},
		queue:      make(chan *Job, cfg.QueueDepth),
		campaigns:  map[string]*CampaignRun{},
		campQueue:  make(chan *CampaignRun, cfg.QueueDepth),
		done:       make(chan struct{}),
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.registerGauges()
	s.loadJobs()
	s.loadCampaigns()
	s.handler = s.routes()
	for i := 0; i < cfg.MaxJobs; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	for i := 0; i < cfg.MaxCampaigns; i++ {
		s.wg.Add(1)
		go s.campWorker()
	}
	s.log.Info("store loaded", "grammars", len(store.List()), "dir", store.Dir())
	return s, nil
}

// Registry exposes the server's metrics registry, so embedders (and
// cmd/glade-serve's debug listener) can mount or extend it.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Store exposes the grammar store (tests and tooling).
func (s *Server) Store() *Store { return s.store }

// Drain marks the server not-ready without stopping work: GET /readyz
// starts answering 503 so load balancers drain traffic away, while
// running jobs, campaigns, and in-flight requests continue. Call before
// http.Server.Shutdown for a graceful two-phase stop; Close implies it.
func (s *Server) Drain() {
	if !s.draining.Swap(true) {
		s.log.Info("draining: readyz now reports not ready")
	}
}

// Ready reports whether the server is accepting new work (not draining
// or closed) — the condition behind GET /readyz.
func (s *Server) Ready() bool { return !s.draining.Load() }

// Close stops accepting submissions, cancels running campaigns (their
// final checkpoint persists), and waits for running jobs and campaigns to
// finish. Work still queued races the shutdown drain: each item is either
// run by a worker or marked failed here. Close is idempotent.
func (s *Server) Close() {
	s.draining.Store(true)
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		s.wg.Wait()
		return
	default:
	}
	close(s.done)
	close(s.queue)     // Submit holds s.mu around its send, so this is safe
	close(s.campQueue) // likewise SubmitCampaign
	s.mu.Unlock()
	// Campaigns run until their duration elapses; cancelling the base
	// context ends their fuzzing now (a cancelled campaign still finalizes
	// and persists its report), and aborts a campaign mid learn-phase too —
	// core.Learn observes the cancellation within one oracle wave.
	s.cancelBase()
	for j := range s.queue {
		j.mu.Lock()
		if j.state.terminal() { // cancelled while queued; already recorded
			j.mu.Unlock()
			continue
		}
		j.state = JobFailed
		j.err = "server shut down before the job ran"
		j.finished = time.Now()
		j.seeds = nil
		j.touch()
		j.mu.Unlock()
		s.met.jobFinished(JobFailed)
		s.persistJob(j)
	}
	for cr := range s.campQueue {
		cr.mu.Lock()
		if cr.state.terminal() { // cancelled while queued; already recorded
			cr.mu.Unlock()
			continue
		}
		cr.state = JobFailed
		cr.err = "server shut down before the campaign ran"
		cr.finished = time.Now()
		cr.touch()
		cr.mu.Unlock()
		s.met.campaignFinished(JobFailed)
		s.persistCampaign(cr)
	}
	s.wg.Wait()
}

// Submit validates a job spec, resolves its seeds, and enqueues it. ctx is
// the submitting request's context: its request ID (when the submission
// came over HTTP) is recorded on the job and threaded through every
// lifecycle log line; the job's own execution is NOT bounded by ctx.
func (s *Server) Submit(ctx context.Context, spec JobSpec) (*Job, error) {
	return s.SubmitWithID(ctx, spec, "")
}

// SubmitWithID is Submit with a caller-chosen job id — the cluster
// router's entry point, which mints the id before forwarding so placement
// is decided before the job exists. An empty id gets a server-generated
// one; a non-empty id must be in the server format and unused, else the
// submission fails (errDuplicateID maps to 409 over HTTP).
func (s *Server) SubmitWithID(ctx context.Context, spec JobSpec, id string) (*Job, error) {
	if id != "" && !IsValidID(id) {
		return nil, fmt.Errorf("bad assigned id %q", id)
	}
	if spec.Oracle.IsExec() && !s.cfg.AllowExec {
		return nil, errExecDisabled
	}
	// Resolve the oracle now so an invalid spec fails the submission, not
	// the job. The resolved oracle is rebuilt in run() — oracles are cheap
	// to construct, and building late keeps Job free of live resources.
	_, defaults, err := buildOracle(spec.Oracle, 1, s.cfg.DefaultOracleTimeout)
	if err != nil {
		return nil, err
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = defaults
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds: pass seeds or use a builtin oracle with bundled seeds")
	}
	total := 0
	for _, seed := range seeds {
		total += len(seed)
	}
	if total > s.cfg.MaxSeedBytes {
		return nil, fmt.Errorf("seed payload %d bytes exceeds limit %d", total, s.cfg.MaxSeedBytes)
	}
	j := newJob(spec)
	if id != "" {
		j.ID = id
	}
	j.seeds = seeds
	j.seedCount = len(seeds)
	j.reqID = requestID(ctx)

	s.mu.Lock()
	// Refuse new work from the moment draining begins (Drain or Close):
	// a queued job accepted now might be abandoned mid-shutdown.
	if s.draining.Load() {
		s.mu.Unlock()
		return nil, errDraining
	}
	select {
	case <-s.done:
		s.mu.Unlock()
		return nil, errDraining
	default:
	}
	if _, dup := s.jobs[j.ID]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: job %q", errDuplicateID, j.ID)
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		return nil, errQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	s.pruneLocked()
	s.mu.Unlock()
	s.met.jobsSubmitted.Inc()
	j.log(s.log).Info("job queued", "oracle", spec.Oracle.String(), "seeds", len(seeds))
	return j, nil
}

var (
	errQueueFull    = fmt.Errorf("job queue is full")
	errDraining     = fmt.Errorf("server is shutting down")
	errExecDisabled = fmt.Errorf("exec oracles are disabled on this server; start glade-serve with -allow-exec to permit them")
)

// maxJobHistory bounds retained job records. Grammars and their metadata
// live on in the store; only the in-memory job ledger is pruned.
const maxJobHistory = 1024

// pruneLocked evicts the oldest finished jobs once the ledger outgrows
// maxJobHistory, so a long-lived daemon's memory stays bounded. Queued and
// running jobs are never evicted; evicted terminal jobs keep their
// persisted record on disk. Callers hold s.mu; j.mu nests under it (no
// path locks them in the opposite order).
func (s *Server) pruneLocked() {
	excess := len(s.order) - maxJobHistory
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, j := range s.order {
		if excess > 0 {
			j.mu.Lock()
			terminal := j.state.terminal()
			j.mu.Unlock()
			if terminal {
				delete(s.jobs, j.ID)
				excess--
				continue
			}
		}
		kept = append(kept, j)
	}
	s.order = kept
}

// Job returns a submitted job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.order...)
}

// worker drains the queue, running one job at a time; MaxJobs workers give
// the service its bounded job concurrency.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// jobDeadlineGrace is the headroom the hard per-job context deadline adds
// over the soft learner timeout. The soft timeout (core.Options.Timeout)
// finalizes the partial language gracefully; the context deadline is the
// backstop that aborts a learn whose oracle wedged past the soft deadline.
const jobDeadlineGrace = 30 * time.Second

// run executes one learn job on the core/oracle engine under a per-job
// context — cancelled by DELETE /v1/jobs/{id} and bounded by
// context.WithTimeout — and persists the resulting grammar.
func (s *Server) run(j *Job) {
	j.mu.Lock()
	if j.state.terminal() { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()

	opts := j.Spec.resolveOptions(s.cfg, j.seeds)
	var reqRetries *int
	if j.Spec.Options != nil {
		reqRetries = j.Spec.Options.Retries
	}
	o, _, err := s.buildResilientOracle(j.Spec.Oracle, opts.Workers, s.cfg.resolveRetries(reqRetries), s.met.resilientJob)
	if err != nil {
		// Validated at submission; only reachable if a builtin vanished.
		s.finish(j, nil, err)
		return
	}
	timer := metrics.NewQueryTimer(o)
	// Per-query latencies mirror into the shared registry's job-source
	// histogram, and phase spans are recorded for the job record, the API,
	// and /v1/stats.
	timer.Mirror(s.met.oracleJob)
	spans := &telemetry.SpanRecorder{}
	opts.Progress = j.appendEvent
	opts.Tracer = spans

	// The job context is deliberately NOT derived from baseCtx: shutdown
	// waits for running learns (their grammars are worth keeping), while
	// DELETE cancels exactly one job. The hard deadline enforces the job
	// bound end to end — exec queries run under this context, so no
	// client-chosen per-query timeout can outlive it.
	hard := s.cfg.MaxJobDuration + jobDeadlineGrace
	if opts.Timeout > 0 && opts.Timeout+jobDeadlineGrace < hard {
		hard = opts.Timeout + jobDeadlineGrace
	}
	ctx, cancel := context.WithTimeout(context.Background(), hard)
	defer cancel()

	j.mu.Lock()
	// Re-check under the same lock that flips to running: a DELETE that
	// landed while the oracle was being built has already recorded (and
	// persisted) the canceled state, which must not be overwritten.
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	j.touch()
	j.mu.Unlock()
	j.log(s.log).Info("job running", "workers", opts.Workers, "timeout", opts.Timeout, "hard_deadline", hard)

	res, err := core.Learn(ctx, j.seeds, timer, opts)

	j.mu.Lock()
	j.queries = timer.Snapshot()
	j.spans = spans.Spans()
	j.cancel = nil
	j.mu.Unlock()
	s.finish(j, res, err)
}

// finish moves a job to its terminal state, persisting the grammar on
// success and the terminal record either way. A context cancellation that
// was requested over the API lands in JobCanceled; every other error in
// JobFailed.
func (s *Server) finish(j *Job, res *core.Result, err error) {
	if err == nil {
		meta := GrammarMeta{
			ID:        j.ID,
			Oracle:    j.Spec.Oracle.String(),
			Spec:      j.Spec.Oracle,
			Seeds:     j.seeds,
			CreatedAt: time.Now().UTC(),
			Queries:   res.Stats.OracleQueries,
			Seconds:   res.Stats.Duration.Seconds(),
			TimedOut:  res.Stats.TimedOut,
		}
		err = s.store.Put(res.Grammar, meta)
	}
	j.mu.Lock()
	j.finished = time.Now()
	j.seeds = nil // persisted in GrammarMeta; no reason to hold them here
	switch {
	case err == nil:
		j.state = JobDone
		j.stats = res.Stats
	case j.cancelRequested && errors.Is(err, context.Canceled):
		j.state = JobCanceled
		j.err = "canceled by request"
	default:
		j.state = JobFailed
		j.err = err.Error()
	}
	state := j.state
	j.touch()
	j.mu.Unlock()
	s.met.jobFinished(state)
	s.persistJob(j)
	switch state {
	case JobDone:
		s.met.oracleQueries.Add(uint64(res.Stats.OracleQueries))
		j.log(s.log).Info("job done",
			"queries", res.Stats.OracleQueries,
			"seconds", res.Stats.Duration.Seconds())
	case JobCanceled:
		j.log(s.log).Info("job canceled")
	default:
		j.log(s.log).Warn("job failed", "error", err)
	}
}

// CancelJob cancels a job by id: a queued job flips to canceled
// immediately (the scheduler will skip it), a running job has its context
// cancelled and reaches canceled as soon as the learner unwinds — within
// one oracle wave. Cancelling a job already in a terminal state reports
// errAlreadyTerminal.
func (s *Server) CancelJob(id string) (*Job, error) {
	j, ok := s.Job(id)
	if !ok {
		return nil, fmt.Errorf("%w: no job %q", errNotFound, id)
	}
	j.mu.Lock()
	switch {
	case j.state.terminal():
		j.mu.Unlock()
		return j, errAlreadyTerminal
	case j.state == JobQueued:
		j.state = JobCanceled
		j.err = "canceled by request"
		j.finished = time.Now()
		j.seeds = nil
		j.cancelRequested = true
		// A worker may have popped this job already and be building its
		// oracle; it re-checks the terminal state before running, and the
		// cancel (when the context is already set up) stops it regardless.
		cancel := j.cancel
		j.touch()
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		s.met.jobFinished(JobCanceled)
		s.persistJob(j)
		j.log(s.log).Info("job canceled while queued")
		return j, nil
	default: // running
		j.cancelRequested = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		j.log(s.log).Info("job cancellation requested")
		return j, nil
	}
}

// errAlreadyTerminal tags cancellations of work that already finished, so
// the HTTP layer can answer 409 instead of 404/400.
var errAlreadyTerminal = fmt.Errorf("already in a terminal state")
