package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"glade/internal/cfg"
)

// writeLegacyEntry lays down a pre-CAS store entry: <id>.grammar beside
// <id>.json metadata with no grammar_sha256 field.
func writeLegacyEntry(t *testing.T, dir, id, text string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, id+".grammar"), []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	meta := map[string]any{
		"id":         id,
		"oracle":     "program:sed",
		"seeds":      []string{"a1"},
		"created_at": time.Now().UTC().Format(time.RFC3339),
		"queries":    7,
		"seconds":    0.5,
	}
	data, err := json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, id+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreMigratesLegacyLayout pins the migration contract: an old flat
// <id>.grammar layout opens, moves byte-identical bytes into
// blobs/<sha>.grammar, rewrites the metadata to point at the hash,
// removes the flat file, and survives a second restart unchanged.
func TestStoreMigratesLegacyLayout(t *testing.T) {
	dir := t.TempDir()
	text := "start A\nA -> \"a\" B\nB -> {0-9}\nB ->\n"
	writeLegacyEntry(t, dir, "old1", text)
	// A second id with identical grammar content must migrate into the
	// same blob — dedup applies to migrated entries too.
	writeLegacyEntry(t, dir, "old2", text)

	s, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.Text("old1")
	if !ok || got != text {
		t.Fatalf("migrated text not byte-identical (ok=%v):\n%q\nwant\n%q", ok, got, text)
	}
	if _, err := os.Stat(filepath.Join(dir, "old1.grammar")); !os.IsNotExist(err) {
		t.Fatalf("legacy old1.grammar should be removed after migration, stat err=%v", err)
	}
	meta, ok := s.Meta("old1")
	if !ok || meta.GrammarSHA == "" {
		t.Fatalf("migrated metadata lacks grammar_sha256: %+v", meta)
	}
	if meta.Oracle != "program:sed" || meta.Queries != 7 || len(meta.Seeds) != 1 {
		t.Fatalf("migration lost metadata fields: %+v", meta)
	}
	if _, err := os.Stat(filepath.Join(dir, blobsDirName, meta.GrammarSHA+".grammar")); err != nil {
		t.Fatalf("blob missing after migration: %v", err)
	}
	if n := s.BlobCount(); n != 1 {
		t.Fatalf("identical migrated grammars should share one blob, got %d", n)
	}

	// Restart: the already-migrated layout loads as-is, text still
	// byte-identical, and the on-disk metadata carries the hash.
	s2, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"old1", "old2"} {
		got, ok := s2.Text(id)
		if !ok || got != text {
			t.Fatalf("post-restart text mismatch for %s (ok=%v)", id, ok)
		}
		if _, err := s2.Grammar(id); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "old2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"grammar_sha256"`) {
		t.Fatalf("persisted metadata not rewritten with hash: %s", raw)
	}
}

// TestStorePutDeduplicates pins the CAS dedup contract: the same grammar
// stored under two ids shares one blob, one cache entry, and one compiled
// engine; a different grammar gets its own blob.
func TestStorePutDeduplicates(t *testing.T) {
	s, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	g := mustGrammar(t, "start A\nA -> \"a\"\nA -> \"b\"\n")
	other := mustGrammar(t, "start A\nA -> {0-9}\n")
	for _, id := range []string{"first", "second"} {
		if err := s.Put(g, GrammarMeta{ID: id, CreatedAt: time.Now()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(other, GrammarMeta{ID: "third", CreatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if n := s.BlobCount(); n != 2 {
		t.Fatalf("3 ids over 2 distinct grammars should store 2 blobs, got %d", n)
	}
	m1, _ := s.Meta("first")
	m2, _ := s.Meta("second")
	m3, _ := s.Meta("third")
	if m1.GrammarSHA != m2.GrammarSHA || m1.GrammarSHA == m3.GrammarSHA {
		t.Fatalf("hash sharing wrong: %s %s %s", m1.GrammarSHA, m2.GrammarSHA, m3.GrammarSHA)
	}
	c1, err := s.Compiled("first")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Compiled("second")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("identical grammars under different ids should share one compiled engine")
	}
	if !c1.Accepts("a") || c1.Accepts("0") {
		t.Fatal("compiled engine answers wrong grammar")
	}
	c3, err := s.Compiled("third")
	if err != nil {
		t.Fatal(err)
	}
	if !c3.Accepts("0") || c3.Accepts("a") {
		t.Fatal("distinct grammar compiled wrong")
	}
}

// TestStoreSweepsTempFiles pins the interrupted-write cleanup: stale
// .tmp-* files anywhere in the data dir are removed at open, real entries
// untouched.
func TestStoreSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := mustGrammar(t, "start A\nA -> \"ok\"\n")
	if err := s.Put(g, GrammarMeta{ID: "keep", CreatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	stale := []string{
		filepath.Join(dir, ".tmp-123456"),
		filepath.Join(dir, blobsDirName, ".tmp-abcdef"),
	}
	for _, p := range stale {
		if err := os.WriteFile(p, []byte("torn write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range stale {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("stale temp file %s survived the sweep (err=%v)", p, err)
		}
	}
	if text, ok := s2.Text("keep"); !ok || text != cfg.Marshal(g) {
		t.Fatalf("sweep damaged a real entry (ok=%v)", ok)
	}
}

// TestStoreCacheEviction drives more distinct grammars through the store
// than the hot cache holds: evicted entries must transparently reload from
// their blobs.
func TestStoreCacheEviction(t *testing.T) {
	s, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	n := maxCachedGrammars + 8
	texts := make([]string, n)
	for i := 0; i < n; i++ {
		// Distinct content per id so every entry is its own blob.
		texts[i] = "start A\nA -> \"" + strings.Repeat("x", i+1) + "\"\n"
		g := mustGrammar(t, texts[i])
		if err := s.Put(g, GrammarMeta{ID: idFor(i), CreatedAt: time.Now()}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.CacheLen(); got > maxCachedGrammars {
		t.Fatalf("cache exceeded its cap: %d > %d", got, maxCachedGrammars)
	}
	// The oldest entries were evicted; reading them must reload and parse
	// from the blob with identical bytes.
	for i := 0; i < 4; i++ {
		text, ok := s.Text(idFor(i))
		if !ok || text != texts[i] {
			t.Fatalf("evicted entry %d did not reload (ok=%v)", i, ok)
		}
	}
}

func idFor(i int) string { return fmt.Sprintf("g%03d", i) }

// BenchmarkStoreRepeatLookups pins the satellite fix for the old
// read-and-reparse-per-call Store.Grammar: steady-state repeat lookups of
// Text, Grammar, and Compiled must be allocation-light map hits, not disk
// reads.
func BenchmarkStoreRepeatLookups(b *testing.B) {
	s, err := OpenStore(b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	g, err := cfg.Unmarshal("start A\nA -> \"a\" A\nA -> {0-9}\n")
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Put(g, GrammarMeta{ID: "bench", CreatedAt: time.Now()}); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Compiled("bench"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Text("bench"); !ok {
			b.Fatal("lost grammar")
		}
		if _, err := s.Grammar("bench"); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Compiled("bench"); err != nil {
			b.Fatal(err)
		}
	}
}
