package service

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"glade/internal/telemetry"
)

// resolveLogger picks the server's structured logger: Config.Logger when
// set; otherwise a bridge that renders records through the legacy
// Config.Logf at Info level and above; otherwise a discard logger. The
// server therefore always has a non-nil s.log.
func (c Config) resolveLogger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	if c.Logf != nil {
		return slog.New(&logfHandler{logf: c.Logf})
	}
	return slog.New(slog.DiscardHandler)
}

// logfHandler adapts a printf-style sink to slog.Handler so pre-slog
// embedders (and tests) keep receiving log lines: "msg key=value ...".
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

// Enabled keeps the legacy sink at the legacy volume: info and above.
func (h *logfHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= slog.LevelInfo
}

// Handle renders the record as one printf call.
func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	write := func(a slog.Attr) {
		if a.Key == "" {
			return
		}
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
	}
	for _, a := range h.attrs {
		write(a)
	}
	r.Attrs(func(a slog.Attr) bool {
		write(a)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

// WithAttrs returns a handler that prefixes the given attributes.
func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &logfHandler{logf: h.logf, attrs: merged}
}

// WithGroup flattens groups: the legacy sink has no nesting to offer.
func (h *logfHandler) WithGroup(string) slog.Handler { return h }

// requestIDKey carries the per-request ID through request contexts.
type requestIDKey struct{}

// requestID returns the request ID stored in ctx, or "" outside a request.
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// instrument wraps the public mux with the observability stack: a
// per-request ID (generated, stored in the context, echoed as
// X-Request-ID, and logged), then the telemetry HTTP middleware counting
// requests and timing them per route pattern. The route label comes from
// the mux's own pattern resolution, so client-probed garbage paths all
// collapse into one "unmatched" label instead of minting metric children.
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	route := func(r *http.Request) string {
		if _, pattern := mux.Handler(r); pattern != "" {
			return pattern
		}
		return "unmatched"
	}
	var h http.Handler = telemetry.HTTPMetrics(s.reg, route, mux)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := newID()
		ctx := context.WithValue(r.Context(), requestIDKey{}, id)
		w.Header().Set("X-Request-ID", id)
		start := time.Now()
		h.ServeHTTP(w, r.WithContext(ctx))
		s.log.Debug("http request",
			"req", id, "method", r.Method, "path", r.URL.Path,
			"elapsed", time.Since(start).Round(time.Microsecond))
	})
}

// recoverPanics is the outermost middleware: a panicking handler must
// take down one request, not the daemon. The panic is counted, logged
// with its stack, and answered with a 500 (best-effort — if the handler
// already streamed a body, the status is on the wire and the connection
// just ends). http.ErrAbortHandler is re-raised: it is net/http's own
// control-flow signal for aborting a response, not a bug.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.met.httpPanics.Inc()
			s.log.Error("http handler panic",
				"panic", fmt.Sprint(p),
				"method", r.Method, "path", r.URL.Path,
				"stack", string(debug.Stack()))
			writeError(w, http.StatusInternalServerError, "internal error")
		}()
		next.ServeHTTP(w, r)
	})
}
