package service

import (
	"container/list"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"glade/internal/fuzz"
	"glade/internal/oracle"
)

// maxValidFactor bounds the attempts a valid-only generate request may
// spend per requested input before giving up on the remainder.
const maxValidFactor = 20

// maxFuzzerEntries bounds the fuzzer cache: a long-lived daemon may serve
// generation from far more grammars than it should hold parsed seed trees
// for at once, so least-recently-used entries are evicted (mirroring how
// maxJobHistory bounds the job ledger). An evicted grammar just pays the
// seed-parsing cost again on its next generate.
const maxFuzzerEntries = 64

// fuzzerPool caches one grammar fuzzer per stored grammar, LRU-bounded at
// maxFuzzerEntries. Building a fuzzer compiles the grammar into its flat
// IR (cfg.Compile) and parses every seed under it — the expensive part —
// so it happens once per grammar per residence in the cache; the one
// Compiled then serves both sampling and membership for that grammar.
// Generation itself is cheap and runs concurrently, each request drawing
// a private rng from a per-grammar sync.Pool. fuzz.Grammar is safe for
// concurrent Next calls with distinct rngs: seed trees are deep-cloned
// before mutation and the compiled engine is read-only after
// construction, with per-call scratch state drawn from its own pool.
type fuzzerPool struct {
	store *Store

	mu      sync.Mutex
	entries map[string]*pooledFuzzer
	lru     *list.List // front = most recently used; values are grammar ids
}

type pooledFuzzer struct {
	once sync.Once
	fz   *fuzz.Grammar
	err  error
	rngs sync.Pool
	elem *list.Element // position in fuzzerPool.lru; guarded by its mu
}

func newFuzzerPool(store *Store) *fuzzerPool {
	return &fuzzerPool{store: store, entries: map[string]*pooledFuzzer{}, lru: list.New()}
}

// rngSeq distinguishes rngs created by the pool; combined with the clock
// it keeps every pooled rng's stream distinct.
var rngSeq atomic.Int64

// size reports the number of resident pool entries (a telemetry gauge).
func (p *fuzzerPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

func (p *fuzzerPool) entry(id string) (*pooledFuzzer, error) {
	p.mu.Lock()
	e, ok := p.entries[id]
	if ok {
		p.lru.MoveToFront(e.elem)
	} else {
		e = &pooledFuzzer{}
		e.rngs.New = func() any {
			return rand.New(rand.NewSource(time.Now().UnixNano() ^ rngSeq.Add(1)<<20))
		}
		e.elem = p.lru.PushFront(id)
		p.entries[id] = e
		// Evict the least-recently-used entries beyond the cap. In-flight
		// Generate calls hold their own reference, so an evicted entry
		// keeps working; it is simply rebuilt on its next use.
		for p.lru.Len() > maxFuzzerEntries {
			back := p.lru.Back()
			p.lru.Remove(back)
			delete(p.entries, back.Value.(string))
		}
	}
	p.mu.Unlock()

	e.once.Do(func() {
		g, err := p.store.Grammar(id)
		if err != nil {
			e.err = err
			return
		}
		meta, ok := p.store.Meta(id)
		if !ok {
			e.err = fmt.Errorf("service: no metadata for grammar %q", id)
			return
		}
		e.fz = fuzz.NewGrammar(g, meta.Seeds)
	})
	if e.err != nil {
		// Do not memoize the failure: a generate that raced a still-running
		// learn job must succeed on retry once the grammar is stored. Only
		// drop the entry we created — a fresh (possibly good) replacement
		// may already be in the map.
		p.mu.Lock()
		if p.entries[id] == e {
			delete(p.entries, id)
			p.lru.Remove(e.elem)
		}
		p.mu.Unlock()
		return nil, e.err
	}
	return e, nil
}

// Generate returns n fuzz inputs drawn from the stored grammar's pooled
// fuzzer: entry resolution (possibly building the fuzzer) followed by
// generate. Callers that must separate the potentially slow build from
// deadline-bounded generation use entry + pooledFuzzer.generate directly.
func (p *fuzzerPool) Generate(ctx context.Context, id string, n int, check oracle.CheckOracle) ([]string, int, error) {
	e, err := p.entry(id)
	if err != nil {
		return nil, 0, err
	}
	return e.generate(ctx, n, check)
}

// generate draws n fuzz inputs from the built fuzzer. When check is
// non-nil only inputs it accepts (verdict oracle.Accept — crashes and
// timeouts do not count as valid) are returned, spending at most
// maxValidFactor attempts per requested input; attempts reports how many
// candidates were drawn either way. Validation queries run under ctx, so
// a disconnected client or an expired server deadline stops a subprocess
// mid-run, not just between candidates; an oracle failure aborts the loop
// with its error.
func (e *pooledFuzzer) generate(ctx context.Context, n int, check oracle.CheckOracle) (inputs []string, attempts int, err error) {
	rng := e.rngs.Get().(*rand.Rand)
	defer e.rngs.Put(rng)
	budget := n
	if check != nil {
		budget = n * maxValidFactor
	}
	inputs = make([]string, 0, n)
	for len(inputs) < n && attempts < budget {
		if err := ctx.Err(); err != nil {
			return inputs, attempts, err
		}
		s := e.fz.Next(rng)
		attempts++
		if check != nil {
			v, err := check.Check(ctx, s)
			if err != nil {
				return inputs, attempts, err
			}
			if v != oracle.Accept {
				continue
			}
		}
		inputs = append(inputs, s)
	}
	return inputs, attempts, nil
}
