package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"glade/internal/core"
	"glade/internal/oracle"
)

// jobRecord is the JSON persisted per terminal job under
// <DataDir>/jobs/<id>.json. Only terminal states are written: queued and
// running jobs are in-memory creatures that do not survive a restart, but
// a finished — and in particular a canceled — job's outcome does, so
// clients polling across a daemon restart still see what happened.
type jobRecord struct {
	ID       string      `json:"id"`
	State    JobState    `json:"state"`
	Oracle   string      `json:"oracle"`
	Seeds    int         `json:"seeds"`
	Created  time.Time   `json:"created_at"`
	Started  time.Time   `json:"started_at,omitempty"`
	Finished time.Time   `json:"finished_at,omitempty"`
	Error    string      `json:"error,omitempty"`
	Stats    *core.Stats `json:"stats,omitempty"`
}

// jobsDir is the per-store subdirectory holding terminal job records.
func (s *Server) jobsDir() string { return filepath.Join(s.store.Dir(), "jobs") }

// persistJob writes the job's terminal record atomically; failures are
// logged, not fatal (the in-memory job stays authoritative). Callers must
// not hold j.mu.
func (s *Server) persistJob(j *Job) {
	j.mu.Lock()
	if !j.state.terminal() {
		j.mu.Unlock()
		return
	}
	rec := jobRecord{
		ID:       j.ID,
		State:    j.state,
		Oracle:   j.Spec.Oracle.String(),
		Seeds:    j.seedCount,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Error:    j.err,
	}
	if j.state == JobDone {
		st := j.stats
		rec.Stats = &st
	}
	j.mu.Unlock()
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		s.logf("job %s: marshal record: %v", j.ID, err)
		return
	}
	dir := s.jobsDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.logf("job %s: create jobs dir: %v", j.ID, err)
		return
	}
	if err := writeAtomic(filepath.Join(dir, j.ID+".json"), append(data, '\n')); err != nil {
		s.logf("job %s: persist record: %v", j.ID, err)
	}
}

// loadJobs restores persisted terminal job records at startup, so job
// outcomes — done, failed, and canceled alike — survive daemon restarts
// the way grammars and campaign reports do.
func (s *Server) loadJobs() {
	entries, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return // no records yet
	}
	loaded := 0
	for _, e := range entries {
		id, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.jobsDir(), e.Name()))
		if err != nil {
			s.logf("jobs: skipping unreadable record %s: %v", e.Name(), err)
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID != id || !rec.State.terminal() {
			s.logf("jobs: skipping bad record %s", e.Name())
			continue
		}
		j := &Job{
			ID:        rec.ID,
			changed:   make(chan struct{}),
			state:     rec.State,
			err:       rec.Error,
			created:   rec.Created,
			started:   rec.Started,
			finished:  rec.Finished,
			seedCount: rec.Seeds,
		}
		j.Spec.Oracle = specFromName(rec.Oracle)
		if rec.Stats != nil {
			j.stats = *rec.Stats
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j)
		loaded++
	}
	if loaded > 0 {
		// Listings are submission-ordered; restored records sort by their
		// original creation time.
		sort.Slice(s.order, func(i, k int) bool {
			a, b := s.order[i], s.order[k]
			if a.created.Equal(b.created) {
				return a.ID < b.ID
			}
			return a.created.Before(b.created)
		})
		s.logf("jobs: %d records loaded from %s", loaded, s.jobsDir())
	}
}

// specFromName reconstructs a display-only oracle.Spec from the persisted
// "kind:detail" string (oracle.ParseSpec inverts Spec.String), so restored
// jobs render the same oracle column. The spec is not guaranteed runnable
// (exec argv quoting is lossy); restored jobs are terminal and never
// rebuild their oracle.
func specFromName(name string) oracle.Spec {
	sp, err := oracle.ParseSpec(name)
	if err != nil {
		return oracle.Spec{}
	}
	return sp
}
