package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"glade/internal/core"
	"glade/internal/oracle"
	"glade/internal/telemetry"
)

// jobRecord is the JSON persisted per terminal job under
// <DataDir>/jobs/<id>.json. Only terminal states are written: queued and
// running jobs are in-memory creatures that do not survive a restart, but
// a finished — and in particular a canceled — job's outcome does, so
// clients polling across a daemon restart still see what happened.
type jobRecord struct {
	ID       string      `json:"id"`
	State    JobState    `json:"state"`
	Oracle   string      `json:"oracle"`
	Seeds    int         `json:"seeds"`
	Created  time.Time   `json:"created_at"`
	Started  time.Time   `json:"started_at,omitempty"`
	Finished time.Time   `json:"finished_at,omitempty"`
	Error    string      `json:"error,omitempty"`
	Stats    *core.Stats `json:"stats,omitempty"`
	// Spans is the learner's phase trace, kept with the record so restored
	// jobs still answer span queries after a restart.
	Spans []telemetry.Span `json:"spans,omitempty"`
}

// jobsDir is the per-store subdirectory holding terminal job records.
func (s *Server) jobsDir() string { return filepath.Join(s.store.Dir(), "jobs") }

// persistJob writes the job's terminal record atomically; failures are
// logged, not fatal (the in-memory job stays authoritative). Callers must
// not hold j.mu.
func (s *Server) persistJob(j *Job) {
	j.mu.Lock()
	if !j.state.terminal() {
		j.mu.Unlock()
		return
	}
	rec := jobRecord{
		ID:       j.ID,
		State:    j.state,
		Oracle:   j.Spec.Oracle.String(),
		Seeds:    j.seedCount,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Error:    j.err,
	}
	if j.state == JobDone {
		st := j.stats
		rec.Stats = &st
	}
	rec.Spans = j.spans
	j.mu.Unlock()
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		s.log.Warn("job record marshal failed", "job", j.ID, "err", err)
		return
	}
	dir := s.jobsDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.log.Warn("jobs dir create failed", "job", j.ID, "err", err)
		return
	}
	if err := writeAtomic(filepath.Join(dir, j.ID+".json"), append(data, '\n')); err != nil {
		s.log.Warn("job record persist failed", "job", j.ID, "err", err)
	}
}

// loadJobs restores persisted terminal job records at startup, so job
// outcomes — done, failed, and canceled alike — survive daemon restarts
// the way grammars and campaign reports do.
func (s *Server) loadJobs() {
	entries, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return // no records yet
	}
	loaded := 0
	for _, e := range entries {
		id, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.jobsDir(), e.Name()))
		if err != nil {
			s.log.Warn("skipping unreadable job record", "file", e.Name(), "err", err)
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID != id || !rec.State.terminal() {
			s.log.Warn("skipping bad job record", "file", e.Name())
			continue
		}
		j := &Job{
			ID:        rec.ID,
			changed:   make(chan struct{}),
			state:     rec.State,
			err:       rec.Error,
			created:   rec.Created,
			started:   rec.Started,
			finished:  rec.Finished,
			seedCount: rec.Seeds,
			spans:     rec.Spans,
		}
		j.Spec.Oracle = specFromName(rec.Oracle)
		if rec.Stats != nil {
			j.stats = *rec.Stats
		}
		// Restored terminal outcomes count toward the lifecycle counters, so
		// a restart does not zero glade_jobs_done_total under a ledger that
		// still lists the jobs.
		s.met.jobFinished(rec.State)
		if rec.Stats != nil {
			s.met.oracleQueries.Add(uint64(rec.Stats.OracleQueries))
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j)
		loaded++
	}
	if loaded > 0 {
		// Listings are submission-ordered; restored records sort by their
		// original creation time.
		sort.Slice(s.order, func(i, k int) bool {
			a, b := s.order[i], s.order[k]
			if a.created.Equal(b.created) {
				return a.ID < b.ID
			}
			return a.created.Before(b.created)
		})
		s.log.Info("job records loaded", "count", loaded, "dir", s.jobsDir())
	}
}

// specFromName reconstructs a display-only oracle.Spec from the persisted
// "kind:detail" string (oracle.ParseSpec inverts Spec.String), so restored
// jobs render the same oracle column. The spec is not guaranteed runnable
// (exec argv quoting is lossy); restored jobs are terminal and never
// rebuild their oracle.
func specFromName(name string) oracle.Spec {
	sp, err := oracle.ParseSpec(name)
	if err != nil {
		return oracle.Spec{}
	}
	return sp
}
