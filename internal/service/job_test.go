package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"glade/internal/core"
	"glade/internal/oracle"
)

// TestWatchAfterOverflow drives a job past the event-buffer bound and
// checks watchers keep receiving the newest event (sampled) rather than
// going silent until the terminal snapshot.
func TestWatchAfterOverflow(t *testing.T) {
	j := newJob(JobSpec{})
	total := maxEvents + 300
	for i := 0; i < total; i++ {
		j.appendEvent(core.Progress{Phase: "chargen", Checks: i})
	}

	// A watcher that consumed everything buffered so far must still be
	// offered each newer event as it lands.
	fresh, cursor, _, _ := j.watch(0)
	if len(fresh) != maxEvents || cursor != total {
		t.Fatalf("first drain: %d events, cursor %d (want %d, %d)", len(fresh), cursor, maxEvents, total)
	}
	if got := fresh[len(fresh)-1].Checks; got != total-1 {
		t.Fatalf("drain did not end with the newest event: checks=%d", got)
	}
	if head := fresh[maxEvents-2].Checks; head != maxEvents-2 {
		t.Fatalf("exact head corrupted: checks=%d at slot %d", head, maxEvents-2)
	}

	j.appendEvent(core.Progress{Phase: "phase2", Checks: total})
	fresh, cursor, _, _ = j.watch(cursor)
	if len(fresh) != 1 || fresh[0].Checks != total {
		t.Fatalf("post-overflow event not delivered: %+v", fresh)
	}
	if fresh2, _, _, _ := j.watch(cursor); len(fresh2) != 0 {
		t.Fatalf("cursor at tip still yielded %d events", len(fresh2))
	}
}

// TestGenerateRetryAfterEarlyRequest checks a generate that arrives before
// the grammar exists does not poison the fuzzer pool for that id.
func TestGenerateRetryAfterEarlyRequest(t *testing.T) {
	store, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := newFuzzerPool(store)
	if _, _, err := pool.Generate(context.Background(), "early", 3, nil); err == nil {
		t.Fatal("generate for a missing grammar succeeded")
	}
	g := mustGrammar(t, "start A\nA -> \"ab\"\n")
	if err := store.Put(g, GrammarMeta{ID: "early", Seeds: []string{"ab"}, CreatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	inputs, _, err := pool.Generate(context.Background(), "early", 3, nil)
	if err != nil {
		t.Fatalf("generate after store still failing: %v", err)
	}
	if len(inputs) != 3 {
		t.Fatalf("got %d inputs", len(inputs))
	}
}

// TestGenerateRespectsContext checks a canceled request stops the
// validity-filter loop instead of burning the full attempt budget.
func TestGenerateRespectsContext(t *testing.T) {
	store, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := newFuzzerPool(store)
	g := mustGrammar(t, "start A\nA -> \"ab\"\n")
	if err := store.Put(g, GrammarMeta{ID: "g", Seeds: []string{"ab"}, CreatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	attemptsSeen := 0
	reject := oracle.CheckFunc(func(context.Context, string) (oracle.Verdict, error) {
		attemptsSeen++
		if attemptsSeen == 3 {
			cancel()
		}
		return oracle.Reject, nil
	})
	_, attempts, err := pool.Generate(ctx, "g", 100, reject)
	if err == nil {
		t.Fatal("canceled generate returned nil error")
	}
	if attempts > 4 {
		t.Fatalf("cancellation ignored: %d attempts", attempts)
	}
}

// TestPruneKeepsActiveJobs checks ledger pruning evicts only finished jobs
// and only beyond the history bound.
func TestPruneKeepsActiveJobs(t *testing.T) {
	s := &Server{jobs: map[string]*Job{}}
	mk := func(state JobState) *Job {
		j := newJob(JobSpec{})
		j.state = state
		s.jobs[j.ID] = j
		s.order = append(s.order, j)
		return j
	}
	running := mk(JobRunning)
	for i := 0; i < maxJobHistory+10; i++ {
		mk(JobDone)
	}
	s.mu.Lock()
	s.pruneLocked()
	s.mu.Unlock()
	if len(s.order) != maxJobHistory {
		t.Fatalf("ledger size %d after prune, want %d", len(s.order), maxJobHistory)
	}
	if _, ok := s.jobs[running.ID]; !ok {
		t.Fatal("running job was evicted")
	}
	if s.order[0] != running {
		t.Fatal("running job lost its slot")
	}
}

// TestWorkersClamped checks a job spec cannot demand unbounded oracle
// concurrency.
func TestWorkersClamped(t *testing.T) {
	cfg := Config{DataDir: "x"}.withDefaults()
	spec := JobSpec{Options: &JobOptions{Workers: 1 << 30}}
	opts := spec.resolveOptions(cfg, []string{"s"})
	if opts.Workers != cfg.MaxWorkers {
		t.Fatalf("Workers = %d, want clamp at %d", opts.Workers, cfg.MaxWorkers)
	}
	spec.Options.Workers = 2
	if got := spec.resolveOptions(cfg, []string{"s"}).Workers; got != 2 {
		t.Fatalf("modest Workers mangled: %d", got)
	}
}

// TestExecTimeoutBoundedByContext replaces the old server-side clamp test:
// the client-chosen per-query exec timeout no longer needs clamping,
// because every query runs under the caller's context — here, a deadline
// far shorter than the requested hour-long per-query timeout kills the
// subprocess and surfaces the context error.
func TestExecTimeoutBoundedByContext(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	sp := oracle.Spec{Type: oracle.SpecExec, Argv: []string{"sleep", "30"}, TimeoutMS: 3600_000}
	o, _, err := buildOracle(sp, 1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.(*oracle.Exec).Timeout; got != 3600*time.Second {
		t.Fatalf("requested per-query timeout mangled: %v", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = o.Check(ctx, "x")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Check err = %v, want ctx deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("context did not bound the query: %v", elapsed)
	}
}
