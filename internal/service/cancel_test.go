package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"glade/internal/oracle"
)

// doDelete issues a DELETE and returns the response plus decoded body.
func doDelete(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

// slowJobSpec is a learn job whose exec oracle sleeps per query, so the
// job reliably outlives the test's cancellation window: the restricted
// exec-oracle alphabet still drives hundreds of sequential 50 ms queries.
func slowJobSpec() JobSpec {
	return JobSpec{
		Seeds:  []string{"abcab"},
		Oracle: oracle.Spec{Type: oracle.SpecExec, Argv: []string{"sh", "-c", "sleep 0.05"}},
	}
}

// TestCancelRunningJob is the satellite acceptance path: DELETE on a
// running learn job flips it to canceled promptly (the learner stops
// within one oracle wave), frees the worker slot for the next queued job,
// and the canceled state persists across a daemon restart.
func TestCancelRunningJob(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	dir := t.TempDir()
	srv, err := New(Config{DataDir: dir, MaxJobs: 1, MaxJobDuration: time.Minute, AllowExec: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/jobs", slowJobSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var slow JobStatus
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatal(err)
	}
	// A second (fast, builtin) job queues behind the slow one on the
	// single worker.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", JobSpec{Oracle: oracle.Spec{Type: oracle.SpecProgram, Name: "grep"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit queued: %d %s", resp.StatusCode, body)
	}
	var queued JobStatus
	if err := json.Unmarshal(body, &queued); err != nil {
		t.Fatal(err)
	}

	// Wait until the slow job is actually running (not just queued).
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+slow.ID, &st)
		if st.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow job never started: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // let it get into a query wave

	resp, body = doDelete(t, ts.URL+"/v1/jobs/"+slow.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d %s", resp.StatusCode, body)
	}
	canceledAt := time.Now()
	st := waitDone(t, ts.URL, slow.ID)
	if st.State != JobCanceled {
		t.Fatalf("state after DELETE = %q (err %q), want canceled", st.State, st.Error)
	}
	// Promptness: the learn had hundreds of 50 ms queries left; observing
	// the terminal state within a few seconds means cancellation stopped
	// the oracle within a wave rather than draining the run.
	if took := time.Since(canceledAt); took > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt", took)
	}
	// The worker slot is free: the queued builtin job now runs to done.
	if st := waitDone(t, ts.URL, queued.ID); st.State != JobDone {
		t.Fatalf("queued job after cancel = %q (err %q), want done", st.State, st.Error)
	}
	// The canceled record is on disk.
	if _, err := os.Stat(filepath.Join(dir, "jobs", slow.ID+".json")); err != nil {
		t.Fatalf("canceled job record not persisted: %v", err)
	}

	// Restart: the canceled job is still visible, still canceled.
	srv.Close()
	srv2, err := New(Config{DataDir: dir, MaxJobs: 1, AllowExec: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	j, ok := srv2.Job(slow.ID)
	if !ok {
		t.Fatal("canceled job vanished after restart")
	}
	if got := j.status(false); got.State != JobCanceled {
		t.Fatalf("state after restart = %q, want canceled", got.State)
	}
}

// TestCancelQueuedJob checks a job cancelled before a worker picks it up
// flips immediately and is skipped by the scheduler.
func TestCancelQueuedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	dir := t.TempDir()
	srv, err := New(Config{DataDir: dir, MaxJobs: 1, MaxJobDuration: time.Minute, AllowExec: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	slow, err := srv.Submit(context.Background(), slowJobSpec())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := srv.Submit(context.Background(), JobSpec{Oracle: oracle.Spec{Type: oracle.SpecProgram, Name: "grep"}})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := doDelete(t, ts.URL+"/v1/jobs/"+queued.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE queued: %d %s", resp.StatusCode, body)
	}
	if st := queued.status(false); st.State != JobCanceled {
		t.Fatalf("queued job state = %q, want canceled immediately", st.State)
	}
	// A second DELETE conflicts.
	resp, _ = doDelete(t, ts.URL+"/v1/jobs/"+queued.ID)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE: %d, want 409", resp.StatusCode)
	}
	// Unknown ids 404.
	resp, _ = doDelete(t, ts.URL+"/v1/jobs/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: %d, want 404", resp.StatusCode)
	}
	// Unblock the worker.
	doDelete(t, ts.URL+"/v1/jobs/"+slow.ID)
	waitDone(t, ts.URL, slow.ID)
}

// TestCancelCampaign checks DELETE on a running campaign lands it in
// canceled — with its finalized report kept — persists the state, and
// keeps it across restart.
func TestCancelCampaign(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{DataDir: dir, MaxJobs: 1, MaxCampaigns: 1, MaxJobDuration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A grammar to fuzz: learn grep quickly first.
	job, err := srv.Submit(context.Background(), JobSpec{Oracle: oracle.Spec{Type: oracle.SpecProgram, Name: "grep"}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, ts.URL, job.ID); st.State != JobDone {
		t.Fatalf("learn job: %q (%s)", st.State, st.Error)
	}

	resp, body := postJSON(t, ts.URL+"/v1/campaigns", CampaignSpec{GrammarID: job.ID, DurationMS: 60_000})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit campaign: %d %s", resp.StatusCode, body)
	}
	var cst CampaignStatus
	if err := json.Unmarshal(body, &cst); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/campaigns/"+cst.ID, &cst)
		if cst.State == JobRunning && cst.Phase == "fuzz" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never started fuzzing: %+v", cst)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, body = doDelete(t, ts.URL+"/v1/campaigns/"+cst.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE campaign: %d %s", resp.StatusCode, body)
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/campaigns/"+cst.ID, &cst)
		if cst.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not stop after DELETE: %+v", cst)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cst.State != JobCanceled {
		t.Fatalf("campaign state = %q (err %q), want canceled", cst.State, cst.Error)
	}
	if cst.Report == nil {
		t.Fatal("canceled campaign lost its report")
	}

	// Restart: still canceled, report intact.
	srv.Close()
	srv2, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cr, ok := srv2.Campaign(cst.ID)
	if !ok {
		t.Fatal("canceled campaign vanished after restart")
	}
	got := cr.status()
	if got.State != JobCanceled || got.Report == nil {
		t.Fatalf("after restart: state %q report %v", got.State, got.Report != nil)
	}

	// DELETE on the terminal campaign conflicts.
	resp, _ = doDelete(t, ts.URL+"/v1/campaigns/"+cst.ID)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE terminal campaign: %d, want 409", resp.StatusCode)
	}
}
