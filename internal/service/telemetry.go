package service

import (
	"context"
	"time"

	"glade/internal/oracle"
	"glade/internal/telemetry"
)

// serverMetrics holds the server's registered instruments. Lifecycle
// counters are monotonic and incremented at terminal transitions (and from
// restored records at startup), so they survive job-ledger pruning;
// queued/running population gauges are computed from the ledger at scrape
// time instead of being transition-tracked, which keeps every state change
// site free of gauge bookkeeping.
type serverMetrics struct {
	jobsSubmitted *telemetry.Counter
	jobsDone      *telemetry.Counter
	jobsFailed    *telemetry.Counter
	jobsCanceled  *telemetry.Counter

	campaignsSubmitted *telemetry.Counter
	campaignsDone      *telemetry.Counter
	campaignsFailed    *telemetry.Counter
	campaignsCanceled  *telemetry.Counter

	oracleQueries *telemetry.Counter

	// Per-source oracle latency histograms, fed by metrics.QueryTimer
	// mirrors (jobs, campaigns) and by the generate validation wrapper.
	oracleJob      *telemetry.Histogram
	oracleCampaign *telemetry.Histogram
	oracleGenerate *telemetry.Histogram

	// Per-source resilience instruments (retries_total, breaker state and
	// opens), shared by every oracle the source builds: breaker trips are
	// per-oracle, but the exposition aggregates them per source.
	resilientJob      *oracle.ResilientMetrics
	resilientCampaign *oracle.ResilientMetrics
	resilientGenerate *oracle.ResilientMetrics

	// checkInputs counts inputs answered by POST /v1/grammars/{id}/check —
	// the cheap batch-membership endpoint's unit of work.
	checkInputs *telemetry.Counter

	// httpPanics counts handler panics contained by the recovery
	// middleware — any nonzero value is a bug worth paging on.
	httpPanics *telemetry.Counter
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	const (
		jobsHelp  = "Learn jobs that reached this terminal state (including records restored from disk)."
		campsHelp = "Campaigns that reached this terminal state (including records restored from disk)."
	)
	histogram := func(source string) *telemetry.Histogram {
		return reg.Histogram("glade_oracle_query_seconds",
			"Membership-oracle query latency, by query source.",
			telemetry.L("source", source))
	}
	return &serverMetrics{
		jobsSubmitted: reg.Counter("glade_jobs_submitted_total", "Learn jobs accepted by this process."),
		jobsDone:      reg.Counter("glade_jobs_done_total", jobsHelp),
		jobsFailed:    reg.Counter("glade_jobs_failed_total", jobsHelp),
		jobsCanceled:  reg.Counter("glade_jobs_canceled_total", jobsHelp),

		campaignsSubmitted: reg.Counter("glade_campaigns_submitted_total", "Campaigns accepted by this process."),
		campaignsDone:      reg.Counter("glade_campaigns_done_total", campsHelp),
		campaignsFailed:    reg.Counter("glade_campaigns_failed_total", campsHelp),
		campaignsCanceled:  reg.Counter("glade_campaigns_canceled_total", campsHelp),

		oracleQueries: reg.Counter("glade_oracle_queries_total",
			"De-duplicated oracle queries spent by completed learn jobs."),

		oracleJob:      histogram("job"),
		oracleCampaign: histogram("campaign"),
		oracleGenerate: histogram("generate"),

		resilientJob:      oracle.NewResilientMetrics(reg, telemetry.L("source", "job")),
		resilientCampaign: oracle.NewResilientMetrics(reg, telemetry.L("source", "campaign")),
		resilientGenerate: oracle.NewResilientMetrics(reg, telemetry.L("source", "generate")),

		checkInputs: reg.Counter("glade_check_inputs_total",
			"Inputs answered by the batch membership endpoint."),

		httpPanics: reg.Counter("glade_http_panics_total",
			"HTTP handler panics contained by the recovery middleware."),
	}
}

// jobFinished counts one job's arrival in a terminal state.
func (m *serverMetrics) jobFinished(state JobState) {
	switch state {
	case JobDone:
		m.jobsDone.Inc()
	case JobFailed:
		m.jobsFailed.Inc()
	case JobCanceled:
		m.jobsCanceled.Inc()
	}
}

// campaignFinished counts one campaign's arrival in a terminal state.
func (m *serverMetrics) campaignFinished(state JobState) {
	switch state {
	case JobDone:
		m.campaignsDone.Inc()
	case JobFailed:
		m.campaignsFailed.Inc()
	case JobCanceled:
		m.campaignsCanceled.Inc()
	}
}

// registerGauges installs the scrape-time computed gauges. The callbacks
// run on the exposition handler's goroutine and take s.mu (and nested
// per-job mutexes), which no scrape-path caller already holds.
func (s *Server) registerGauges() {
	jobCount := func(state JobState) func() float64 {
		return func() float64 {
			n := 0
			for _, j := range s.Jobs() {
				j.mu.Lock()
				if j.state == state {
					n++
				}
				j.mu.Unlock()
			}
			return float64(n)
		}
	}
	campaignCount := func(state JobState) func() float64 {
		return func() float64 {
			n := 0
			for _, cr := range s.Campaigns() {
				cr.mu.Lock()
				if cr.state == state {
					n++
				}
				cr.mu.Unlock()
			}
			return float64(n)
		}
	}
	s.reg.GaugeFunc("glade_jobs_queued", "Learn jobs waiting for a scheduler slot.", jobCount(JobQueued))
	s.reg.GaugeFunc("glade_jobs_running", "Learn jobs currently learning.", jobCount(JobRunning))
	s.reg.GaugeFunc("glade_campaigns_queued", "Campaigns waiting for a scheduler slot.", campaignCount(JobQueued))
	s.reg.GaugeFunc("glade_campaigns_running", "Campaigns currently fuzzing (or learning their grammar).", campaignCount(JobRunning))
	s.reg.GaugeFunc("glade_store_grammars", "Grammars in the disk-backed store.", func() float64 {
		return float64(len(s.store.List()))
	})
	s.reg.GaugeFunc("glade_store_blobs", "Content-addressed grammar blobs on disk (deduplicated).", func() float64 {
		return float64(s.store.BlobCount())
	})
	s.reg.GaugeFunc("glade_store_cache_entries", "Parsed grammars resident in the store's hot cache.", func() float64 {
		return float64(s.store.CacheLen())
	})
	s.reg.GaugeFunc("glade_fuzzer_pool_entries", "Grammar fuzzers resident in the LRU pool.", func() float64 {
		return float64(s.fuzzers.size())
	})
	s.reg.GaugeFunc("glade_validating_in_flight", "Validity-filtered generate requests holding a validation slot.", func() float64 {
		return float64(len(s.validating))
	})
	s.reg.GaugeFunc("glade_campaign_inputs", "Inputs executed across all known campaigns (latest reports).", func() float64 {
		inputs, _ := s.campaignTotals()
		return float64(inputs)
	})
	s.reg.GaugeFunc("glade_campaign_interesting", "Interesting inputs across all known campaigns (latest reports).", func() float64 {
		_, interesting := s.campaignTotals()
		return float64(interesting)
	})
}

// campaignTotals sums inputs and interesting counts over the latest report
// of every known campaign.
func (s *Server) campaignTotals() (inputs, interesting int) {
	for _, cr := range s.Campaigns() {
		cr.mu.Lock()
		if cr.hasReport {
			inputs += cr.report.Inputs
			interesting += cr.report.Interesting()
		}
		cr.mu.Unlock()
	}
	return inputs, interesting
}

// snapValue finds the value of an unlabeled counter or gauge in a registry
// snapshot; /v1/stats derives its back-compatible top-level keys this way
// so the registry is the single source of counter truth.
func snapValue(snap []telemetry.MetricPoint, name string) float64 {
	for _, p := range snap {
		if p.Name == name && len(p.Labels) == 0 {
			return p.Value
		}
	}
	return 0
}

// timedOracle observes every Check's latency on a histogram; the generate
// validation path uses it where no QueryTimer is in the stack.
type timedOracle struct {
	inner oracle.CheckOracle
	h     *telemetry.Histogram
}

// Check answers the query through the inner oracle and records its wall
// time on the histogram.
func (t timedOracle) Check(ctx context.Context, input string) (oracle.Verdict, error) {
	start := time.Now()
	v, err := t.inner.Check(ctx, input)
	t.h.Observe(time.Since(start))
	return v, err
}
