package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// PeerHealth is one peer's probe state, exposed by GET /v1/cluster.
type PeerHealth struct {
	Addr string `json:"addr"`
	Self bool   `json:"self,omitempty"`
	// Healthy reports the last probe's outcome. The local node is always
	// healthy from its own point of view (it is answering the request).
	Healthy bool `json:"healthy"`
	// Failures counts consecutive failed probes (0 while healthy).
	Failures int `json:"consecutive_failures,omitempty"`
	// LastProbe is when the peer was last probed (zero for self).
	LastProbe time.Time `json:"last_probe,omitempty"`
	// Error is the last probe failure ("" while healthy).
	Error string `json:"error,omitempty"`
}

// Prober health-checks every remote peer's /readyz on an interval and
// answers Healthy for the router's failover decisions. A peer is assumed
// healthy until its first failed probe (optimistic start: a cluster
// booting in any order must not mark slow-starting peers dead forever —
// the first real forward either works or fails fast and marks them down).
// The router also reports proxy failures through MarkDown, so a dead peer
// is shed at first contact instead of waiting out a probe interval.
type Prober struct {
	self     string
	peers    []string
	client   *http.Client
	interval time.Duration
	log      *slog.Logger

	mu    sync.Mutex
	state map[string]*peerState

	stop   context.CancelFunc
	stopWG sync.WaitGroup
}

type peerState struct {
	healthy   bool
	failures  int
	lastProbe time.Time
	lastErr   string
}

// probeTimeout bounds one /readyz probe (and is the proxy dial ceiling a
// router failover tolerates before trying the next successor).
const probeTimeout = 2 * time.Second

// NewProber builds a prober for the remote members of peers (self is
// skipped — a node does not probe itself). Probing starts when Start is
// called; interval <= 0 defaults to 2s.
func NewProber(self string, peers []string, interval time.Duration, logger *slog.Logger) *Prober {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	p := &Prober{
		self:     self,
		peers:    append([]string(nil), peers...),
		client:   &http.Client{Timeout: probeTimeout},
		interval: interval,
		log:      logger,
		state:    map[string]*peerState{},
	}
	for _, peer := range p.peers {
		if peer != self {
			p.state[peer] = &peerState{healthy: true}
		}
	}
	return p
}

// Start launches the probe loop. Stop with Stop.
func (p *Prober) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	p.stop = cancel
	p.stopWG.Add(1)
	go func() {
		defer p.stopWG.Done()
		ticker := time.NewTicker(p.interval)
		defer ticker.Stop()
		p.probeAll(ctx)
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				p.probeAll(ctx)
			}
		}
	}()
}

// Stop ends the probe loop and waits for it.
func (p *Prober) Stop() {
	if p.stop != nil {
		p.stop()
		p.stopWG.Wait()
	}
}

// probeAll probes every remote peer once, sequentially — cluster sizes
// here are single digits and the probe timeout bounds the sweep.
func (p *Prober) probeAll(ctx context.Context) {
	for peer := range p.state {
		p.probe(ctx, peer)
	}
}

// probe hits one peer's /readyz. Any response at all proves the process is
// alive, but only 200 marks it ready for traffic — a draining peer (503)
// must shed its keys to the successors just like a dead one.
func (p *Prober) probe(ctx context.Context, peer string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+"/readyz", nil)
	if err != nil {
		p.record(peer, fmt.Errorf("bad peer address: %w", err))
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.record(peer, err)
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.record(peer, fmt.Errorf("readyz: %s", resp.Status))
		return
	}
	p.record(peer, nil)
}

// record folds one probe outcome into the peer's state.
func (p *Prober) record(peer string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[peer]
	if !ok {
		return
	}
	st.lastProbe = time.Now()
	if err == nil {
		if !st.healthy {
			p.log.Info("peer recovered", "peer", peer)
		}
		st.healthy = true
		st.failures = 0
		st.lastErr = ""
		return
	}
	st.failures++
	st.lastErr = err.Error()
	if st.healthy {
		p.log.Warn("peer unhealthy", "peer", peer, "err", err)
	}
	st.healthy = false
}

// MarkDown records a router-observed failure (a proxy attempt that could
// not reach the peer), so failover does not wait for the next probe tick.
// The next successful probe brings the peer back.
func (p *Prober) MarkDown(peer string, err error) {
	p.record(peer, err)
}

// Healthy reports whether peer should receive traffic. Self is always
// healthy; unknown peers are not.
func (p *Prober) Healthy(peer string) bool {
	if peer == p.self {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[peer]
	return ok && st.healthy
}

// Snapshot returns every peer's health, sorted by address (self included).
func (p *Prober) Snapshot() []PeerHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerHealth, 0, len(p.peers))
	for _, peer := range p.peers {
		if peer == p.self {
			out = append(out, PeerHealth{Addr: peer, Self: true, Healthy: true})
			continue
		}
		st := p.state[peer]
		out = append(out, PeerHealth{
			Addr:      peer,
			Healthy:   st.healthy,
			Failures:  st.failures,
			LastProbe: st.lastProbe,
			Error:     st.lastErr,
		})
	}
	return out
}
