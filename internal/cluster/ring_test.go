package cluster

import (
	"fmt"
	"testing"
)

// keys returns n distinct synthetic resource ids.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%012x", i*2654435761)
	}
	return out
}

// TestRingDeterministic verifies placement is a pure function of the
// membership: rebuilding the ring — in any peer order — routes every key
// identically, so nodes need no coordination to agree on owners.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]string{"n1:80", "n2:80", "n3:80"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3:80", "n1:80", "n2:80", "n1:80"}, 0) // permuted + duplicate
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner(%q) differs across equivalent rings: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingBalance verifies the vnode ring spreads keys within ~20% of the
// uniform share across 3 peers — the acceptance bound for placement skew.
func TestRingBalance(t *testing.T) {
	peers := []string{"n1:80", "n2:80", "n3:80"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 12000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	share := float64(n) / float64(len(peers))
	for _, p := range peers {
		got := float64(counts[p])
		if got < share*0.8 || got > share*1.2 {
			t.Fatalf("peer %s owns %d keys; want within 20%% of %.0f (all: %v)", p, counts[p], share, counts)
		}
	}
}

// TestRingMinimalMovement verifies the consistent-hashing contract: adding
// or removing one peer moves only keys involving that peer — a key whose
// owner is unrelated to the membership change keeps its owner.
func TestRingMinimalMovement(t *testing.T) {
	three, err := NewRing([]string{"n1:80", "n2:80", "n3:80"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	four, err := NewRing([]string{"n1:80", "n2:80", "n3:80", "n4:80"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ks := keys(12000)
	moved := 0
	for _, k := range ks {
		before, after := three.Owner(k), four.Owner(k)
		if before != after {
			// Every movement on join must be TO the new peer; a key
			// reassigned between old peers would violate consistency.
			if after != "n4:80" {
				t.Fatalf("key %q moved %q -> %q on join of n4", k, before, after)
			}
			moved++
		}
	}
	// The new peer should take roughly 1/4 of the keyspace — allow wide
	// slack, but catch both full reshuffles and no-op rings.
	if moved < len(ks)/8 || moved > len(ks)/2 {
		t.Fatalf("join moved %d/%d keys; want roughly 1/4", moved, len(ks))
	}

	// Removal is the mirror image: only keys owned by the removed peer move.
	for _, k := range ks {
		if four.Owner(k) != "n4:80" && three.Owner(k) != four.Owner(k) {
			t.Fatalf("key %q not owned by n4 moved on leave", k)
		}
	}
}

// TestRingOwnersDistinct verifies the failover preference list: distinct
// peers, owner first, covering the whole membership.
func TestRingOwnersDistinct(t *testing.T) {
	r, err := NewRing([]string{"n1:80", "n2:80", "n3:80"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(200) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("owners(%q) = %v; want 3 distinct peers", k, owners)
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("owners(%q)[0] = %q, Owner = %q", k, owners[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("owners(%q) repeats %q: %v", k, o, owners)
			}
			seen[o] = true
		}
	}
}

// TestRingErrors covers the constructor's rejection paths.
func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"a:1", ""}, 0); err == nil {
		t.Fatal("empty peer name accepted")
	}
}
