package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"glade/internal/cfg"
	"glade/internal/service"
)

// node is one in-process cluster member: a real service.Server behind a
// Router on a real TCP listener (the ring routes by host:port, so
// httptest's indirection is no help here).
type node struct {
	addr   string
	srv    *service.Server
	prober *Prober
	hs     *http.Server
}

// startCluster boots n routed nodes that share one membership list.
// Listeners are opened first so every node knows the full address set
// before any ring is built.
func startCluster(t *testing.T, n int) []*node {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*node, n)
	for i, ln := range listeners {
		srv, err := service.New(service.Config{DataDir: t.TempDir(), MaxJobs: 2, MaxJobDuration: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		ring, err := NewRing(addrs, 0)
		if err != nil {
			t.Fatal(err)
		}
		prober := NewProber(addrs[i], addrs, 100*time.Millisecond, testLogger(i))
		prober.Start()
		router, err := NewRouter(addrs[i], ring, prober, srv.Handler(), testLogger(i))
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: router}
		go hs.Serve(ln)
		nodes[i] = &node{addr: addrs[i], srv: srv, prober: prober, hs: hs}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.hs.Close()
			nd.prober.Stop()
			nd.srv.Close()
		}
	})
	return nodes
}

// byAddr finds the node serving addr.
func byAddr(t *testing.T, nodes []*node, addr string) *node {
	t.Helper()
	for _, nd := range nodes {
		if nd.addr == addr {
			return nd
		}
	}
	t.Fatalf("no node %s", addr)
	return nil
}

// putGrammar stores a tiny grammar (L = "a"* digit) on nd under id.
func putGrammar(t *testing.T, nd *node, id string) {
	t.Helper()
	g, err := cfg.Unmarshal("start A\nA -> \"a\" A\nA -> {0-9}\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.srv.Store().Put(g, service.GrammarMeta{ID: id, CreatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
}

// get fetches a URL and returns the response plus body.
func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

// post sends a JSON body and returns the response plus body.
func post(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

// ownedID returns a valid-format id whose ring owner is nodes[want].
func ownedID(t *testing.T, nodes []*node, want int) string {
	t.Helper()
	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.addr
	}
	ring, err := NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		id := fmt.Sprintf("%012x", i)
		if ring.Owner(id) == nodes[want].addr {
			return id
		}
	}
	t.Fatal("no id owned by target node found")
	return ""
}

// TestClusterEndpoint checks GET /v1/cluster reports the full membership
// with every peer healthy, from each node's own viewpoint.
func TestClusterEndpoint(t *testing.T) {
	nodes := startCluster(t, 3)
	for _, nd := range nodes {
		resp, body := get(t, "http://"+nd.addr+"/v1/cluster")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cluster from %s: %d %s", nd.addr, resp.StatusCode, body)
		}
		var st ClusterStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, body)
		}
		if st.Self != nd.addr || len(st.Peers) != 3 {
			t.Fatalf("cluster status from %s: %+v", nd.addr, st)
		}
		for _, p := range st.Peers {
			if !p.Healthy {
				t.Fatalf("peer %s unhealthy at startup: %+v", p.Addr, st)
			}
		}
	}
}

// TestOwnershipRouting stores a grammar on its ring owner and fetches it
// through every node: the owner serves locally, the others proxy, and all
// return the same bytes with the owner identified in the node header.
func TestOwnershipRouting(t *testing.T) {
	nodes := startCluster(t, 3)
	id := ownedID(t, nodes, 1)
	owner := nodes[1]
	putGrammar(t, owner, id)

	var want []byte
	for i, nd := range nodes {
		resp, body := get(t, "http://"+nd.addr+"/v1/grammars/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get via node %d: %d %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get(NodeHeader); got != owner.addr {
			t.Fatalf("get via node %d served by %q, want owner %q", i, got, owner.addr)
		}
		if nd != owner {
			if via := resp.Header.Get(ViaHeader); via != nd.addr {
				t.Fatalf("get via node %d: via header %q, want %q", i, via, nd.addr)
			}
		}
		if want == nil {
			want = body
		} else if !bytes.Equal(body, want) {
			t.Fatalf("grammar bytes differ via node %d", i)
		}
	}
}

// TestProxiedBatchCheck drives POST /v1/grammars/{id}/check through a
// non-owner, exercising body-buffered proxying.
func TestProxiedBatchCheck(t *testing.T) {
	nodes := startCluster(t, 3)
	id := ownedID(t, nodes, 2)
	putGrammar(t, nodes[2], id)

	resp, body := post(t, "http://"+nodes[0].addr+"/v1/grammars/"+id+"/check",
		map[string]any{"inputs": []string{"a1", "nope"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied check: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Verdicts []bool `json:"verdicts"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(out.Verdicts) != 2 || !out.Verdicts[0] || out.Verdicts[1] {
		t.Fatalf("verdicts = %v", out.Verdicts)
	}
}

// TestSubmitRoutesToOwner submits a job through one node and verifies the
// entry node assigned an id, the id's ring owner ran the job, and the
// result is fetchable through any node.
func TestSubmitRoutesToOwner(t *testing.T) {
	nodes := startCluster(t, 3)
	resp, body := post(t, "http://"+nodes[0].addr+"/v1/jobs",
		map[string]any{"oracle": map[string]any{"type": "program", "name": "sed"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if !service.IsValidID(st.ID) {
		t.Fatalf("bad assigned id %q", st.ID)
	}
	ownerAddr := resp.Header.Get(NodeHeader)
	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.addr
	}
	ring, err := NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := ring.Owner(st.ID); ownerAddr != want {
		t.Fatalf("job %s created on %s, ring owner is %s (entry %s, addrs %v, via %q, hdr %q)",
			st.ID, ownerAddr, want, nodes[0].addr, addrs, resp.Header.Get(ViaHeader), resp.Header.Values(NodeHeader))
	}
	// The owner's server — and only the owner's — has the job.
	owner := byAddr(t, nodes, ownerAddr)
	if _, ok := owner.srv.Job(st.ID); !ok {
		t.Fatalf("owner %s does not hold job %s", ownerAddr, st.ID)
	}

	// Wait for completion via a different node than the entry node.
	other := nodes[0]
	if other.addr == ownerAddr {
		other = nodes[1]
	}
	deadline := time.Now().Add(time.Minute)
	for {
		resp, body = get(t, "http://"+other.addr+"/v1/jobs/"+st.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d %s", resp.StatusCode, body)
		}
		var poll struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &poll); err != nil {
			t.Fatal(err)
		}
		if poll.State == "done" {
			break
		}
		if poll.State == "failed" || poll.State == "canceled" {
			t.Fatalf("job ended %s: %s", poll.State, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %s", st.ID, body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The learned grammar lives under the job id, so it too is fetchable
	// from every node.
	for i, nd := range nodes {
		resp, body = get(t, "http://"+nd.addr+"/v1/grammars/"+st.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("grammar via node %d: %d %s", i, resp.StatusCode, body)
		}
	}
}

// TestFailover kills a key's owner and verifies requests for that key
// fail over to the next peer on the ring instead of erroring.
func TestFailover(t *testing.T) {
	nodes := startCluster(t, 3)
	id := ownedID(t, nodes, 1)
	owner := nodes[1]

	// Stage the grammar on the owner's first successor, as a replica
	// would be; then kill the owner.
	addrs := []string{nodes[0].addr, nodes[1].addr, nodes[2].addr}
	ring, err := NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	successors := ring.Owners(id, 3)
	if successors[0] != owner.addr {
		t.Fatalf("test setup: owner mismatch %v", successors)
	}
	backup := byAddr(t, nodes, successors[1])
	putGrammar(t, backup, id)

	owner.hs.Close()
	owner.prober.Stop()
	owner.srv.Close()

	// Route via a node that is neither the dead owner nor the backup if
	// possible; any live node works.
	entry := nodes[0]
	if entry == owner {
		entry = nodes[2]
	}
	// First attempt may pay the MarkDown discovery; retry briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body := get(t, "http://"+entry.addr+"/v1/grammars/"+id)
		if resp.StatusCode == http.StatusOK {
			if got := resp.Header.Get(NodeHeader); got != backup.addr {
				t.Fatalf("failover served by %q, want backup %q", got, backup.addr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover did not converge: %d %s", resp.StatusCode, body)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The dead peer shows unhealthy in the entry node's cluster view.
	deadline = time.Now().Add(10 * time.Second)
	for {
		var st ClusterStatus
		_, body := get(t, "http://"+entry.addr+"/v1/cluster")
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		down := false
		for _, p := range st.Peers {
			if p.Addr == owner.addr && !p.Healthy {
				down = true
			}
		}
		if down {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead peer never marked unhealthy: %s", body)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestHopLimit verifies a request arriving at the hop ceiling is served
// locally instead of forwarded, so misrouted traffic cannot loop.
func TestHopLimit(t *testing.T) {
	nodes := startCluster(t, 3)
	id := ownedID(t, nodes, 1)
	nonOwner := nodes[0]
	if nonOwner.addr == nodes[1].addr {
		t.Fatal("setup")
	}
	req, err := http.NewRequest(http.MethodGet, "http://"+nonOwner.addr+"/v1/grammars/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HopsHeader, fmt.Sprintf("%d", MaxHops))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Served locally by the non-owner: the grammar is not there, so 404 —
	// but crucially from this node, not forwarded.
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("hop-limited request: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(NodeHeader); got != nonOwner.addr {
		t.Fatalf("hop-limited request served by %q, want local %q", got, nonOwner.addr)
	}
}

// TestRouteKey pins the routing table: which requests are key-addressed,
// which mint ids, and which stay node-local.
func TestRouteKey(t *testing.T) {
	cases := []struct {
		method, path string
		key          string
		mint         bool
	}{
		{http.MethodPost, "/v1/jobs", "", true},
		{http.MethodGet, "/v1/jobs", "", false},
		{http.MethodGet, "/v1/jobs/abc123abc123", "abc123abc123", false},
		{http.MethodDelete, "/v1/jobs/abc123abc123", "abc123abc123", false},
		{http.MethodGet, "/v1/grammars", "", false},
		{http.MethodGet, "/v1/grammars/deadbeef0000", "deadbeef0000", false},
		{http.MethodPost, "/v1/grammars/deadbeef0000/generate", "deadbeef0000", false},
		{http.MethodPost, "/v1/grammars/deadbeef0000/check", "deadbeef0000", false},
		{http.MethodPost, "/v1/campaigns", "", true},
		{http.MethodGet, "/v1/campaigns/abc123abc123", "abc123abc123", false},
		{http.MethodGet, "/v1/stats", "", false},
		{http.MethodGet, "/v1/oracles", "", false},
		{http.MethodGet, "/healthz", "", false},
		{http.MethodGet, "/metrics", "", false},
	}
	for _, c := range cases {
		key, mint := routeKey(c.method, c.path)
		if key != c.key || mint != c.mint {
			t.Errorf("routeKey(%s %s) = (%q, %v), want (%q, %v)", c.method, c.path, key, mint, c.key, c.mint)
		}
	}
}

// TestSingleNodeRing verifies the degenerate one-peer cluster serves
// everything locally — the always-wrapped router must cost nothing when
// no peers are configured.
func TestSingleNodeRing(t *testing.T) {
	nodes := startCluster(t, 1)
	putGrammar(t, nodes[0], "abcabcabcabc")
	resp, body := get(t, "http://"+nodes[0].addr+"/v1/grammars/abcabcabcabc")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single node get: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(NodeHeader); got != nodes[0].addr {
		t.Fatalf("served by %q", got)
	}
	if strings.Contains(resp.Header.Get(ViaHeader), nodes[0].addr) {
		t.Fatalf("single-node request was proxied")
	}
}

// testLogger emits debug logs to stderr for router/prober debugging.
func testLogger(i int) *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug})).With("node", i)
}
