package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"glade/internal/service"
)

// Request headers the router adds to forwarded traffic.
const (
	// HopsHeader counts forwards a request has taken. A request arriving
	// with MaxHops is served locally instead of being forwarded again, so
	// transient membership or health disagreements between peers degrade to
	// single-node behavior instead of looping.
	HopsHeader = "X-Glade-Hops"
	// NodeHeader is set on every response to the peer that produced it, so
	// clients and smoke tests can see which node actually served a request.
	NodeHeader = "X-Glade-Node"
	// ViaHeader is appended by each forwarding node, recording the proxy
	// path a response took.
	ViaHeader = "X-Glade-Via"
)

// MaxHops bounds forwarding. Steady state needs one hop (entry node to
// owner); failover while health views disagree can bounce once more.
const MaxHops = 3

// maxProxyBody bounds how much request body the router buffers for
// forwarding (bodies are buffered so a failed proxy attempt can be retried
// against the next owner). Matches the service's own body cap.
const maxProxyBody = 8 << 20

// Router fronts one node's service handler with consistent-hash ownership
// routing: requests addressed to a resource id this node owns (or that
// carry no id at all) are served locally; requests for ids owned by a peer
// are transparently proxied to that peer, failing over along the ring's
// successor list when the owner is unhealthy. POST /v1/jobs and
// POST /v1/campaigns create resources whose ids do not exist yet, so the
// entry node mints the id, picks the owner by hashing it, and forwards the
// submission with the assigned-id header.
type Router struct {
	self   string
	ring   *Ring
	prober *Prober
	local  http.Handler
	log    *slog.Logger
	client *http.Client
}

// NewRouter wraps local (a node's service handler) in ownership routing.
// self must be this node's address as it appears in the ring's peer list.
func NewRouter(self string, ring *Ring, prober *Prober, local http.Handler, logger *slog.Logger) (*Router, error) {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	found := false
	for _, p := range ring.Peers() {
		if p == self {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", self, ring.Peers())
	}
	return &Router{
		self:   self,
		ring:   ring,
		prober: prober,
		local:  local,
		log:    logger,
		client: &http.Client{
			// No overall timeout: watch streams and validity-filtered
			// generation legitimately run for minutes. Dead peers are caught
			// by the dial timeout; a connected-but-slow peer is the owner
			// doing real work, which forwarding must wait out.
			Transport: &http.Transport{
				DialContext:     (&net.Dialer{Timeout: probeTimeout}).DialContext,
				MaxIdleConns:    32,
				IdleConnTimeout: 90 * time.Second,
			},
		},
	}, nil
}

// routeKey extracts the placement key for a request, and whether the
// request creates a resource whose id must be minted first. Requests with
// no key (listings, health, metrics, stats, oracles) are node-local:
// listings deliberately show one node's view — cluster-wide scatter-gather
// listings are future work.
func routeKey(method, path string) (key string, mint bool) {
	seg := strings.Split(strings.Trim(path, "/"), "/")
	if len(seg) < 2 || seg[0] != "v1" {
		return "", false
	}
	switch seg[1] {
	case "jobs", "campaigns":
		if len(seg) == 2 {
			return "", method == http.MethodPost
		}
		if len(seg) == 3 {
			return seg[2], false
		}
	case "grammars":
		// /v1/grammars/{id} and /v1/grammars/{id}/{generate,check}.
		if len(seg) == 3 || len(seg) == 4 {
			return seg[2], false
		}
	}
	return "", false
}

// ServeHTTP routes one request: cluster endpoint, local serve, or proxy to
// the key's owner.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && r.URL.Path == "/v1/cluster" {
		rt.handleCluster(w, r)
		return
	}

	key, mint := routeKey(r.Method, r.URL.Path)
	if key == "" && mint {
		// A forwarded creation already carries the entry node's assigned
		// id — minting again here would re-route (and loop) the request.
		key = r.Header.Get(service.AssignedIDHeader)
		if key == "" {
			key = service.NewID()
			r.Header.Set(service.AssignedIDHeader, key)
		}
	}
	if key == "" {
		rt.serveLocal(w, r)
		return
	}

	hops := 0
	if raw := r.Header.Get(HopsHeader); raw != "" {
		hops, _ = strconv.Atoi(raw)
	}
	if hops >= MaxHops {
		// Forwarding loop (peers disagree about membership or health).
		// Serve locally: for reads this can 404, but it cannot loop, and a
		// consistent cluster never reaches this branch.
		rt.log.Warn("hop limit reached; serving locally", "path", r.URL.Path, "hops", hops)
		rt.serveLocal(w, r)
		return
	}

	owners := rt.ring.Owners(key, len(rt.ring.Peers()))
	rt.proxy(w, r, key, hops, rt.healthyFirst(owners))
}

// healthyFirst filters owners down to the currently-healthy ones; if the
// prober thinks every owner is down (its view can be stale), the full list
// is returned so the request still tries the owner before giving up.
func (rt *Router) healthyFirst(owners []string) []string {
	healthy := make([]string, 0, len(owners))
	for _, p := range owners {
		if rt.prober.Healthy(p) {
			healthy = append(healthy, p)
		}
	}
	if len(healthy) == 0 {
		return owners
	}
	return healthy
}

// serveLocal hands the request to the wrapped service handler, stamping
// the node header so the serving peer is visible to clients.
func (rt *Router) serveLocal(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(NodeHeader, rt.self)
	rt.local.ServeHTTP(w, r)
}

// proxy serves the request from the first reachable peer in targets
// (ring preference order): self means serve locally, a remote peer is
// tried over HTTP, and a failed attempt falls through to the next ring
// successor. The body is buffered so a dead first choice can be retried.
// Once a remote response arrives its status and headers are committed and
// the body streams through with a flush per write, so NDJSON watch
// streams stay live end to end.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, key string, hops int, targets []string) {
	var body []byte
	if r.Body != nil {
		b, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody+1))
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
			return
		}
		if len(b) > maxProxyBody {
			writeJSONError(w, http.StatusRequestEntityTooLarge, "request body exceeds proxy limit")
			return
		}
		body = b
	}

	var lastErr error
	for _, peer := range targets {
		if peer == rt.self {
			// Self is the most-preferred live candidate: either this node
			// owns the key, or every preferred owner ahead of it on the
			// ring is down and the key has failed over here.
			r.Body = io.NopCloser(bytes.NewReader(body))
			rt.serveLocal(w, r)
			return
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method,
			"http://"+peer+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		req.Header = r.Header.Clone()
		req.Header.Set(HopsHeader, strconv.Itoa(hops+1))
		resp, err := rt.client.Do(req)
		if err != nil {
			// Nothing was written to the client yet, so failing over to the
			// next owner is safe. Tell the prober so subsequent requests
			// skip this peer without waiting for the next probe tick.
			rt.prober.MarkDown(peer, err)
			rt.log.Warn("proxy attempt failed", "peer", peer, "key", key, "err", err)
			lastErr = err
			continue
		}
		defer resp.Body.Close()
		rt.relay(w, r, resp)
		return
	}
	writeJSONError(w, http.StatusBadGateway,
		fmt.Sprintf("no owner reachable for %q: %v", key, lastErr))
}

// relay copies a proxied response to the client, flushing after every
// body write so streaming endpoints behave as if served directly.
func (rt *Router) relay(w http.ResponseWriter, r *http.Request, resp *http.Response) {
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	h.Add(ViaHeader, rt.self)
	w.WriteHeader(resp.StatusCode)
	fw := &flushWriter{w: w}
	if f, ok := w.(http.Flusher); ok {
		fw.f = f
	}
	if _, err := io.Copy(fw, resp.Body); err != nil && r.Context().Err() == nil {
		rt.log.Warn("proxy copy interrupted", "err", err)
	}
}

// flushWriter flushes after every write, keeping proxied NDJSON watch
// streams unbuffered.
type flushWriter struct {
	w io.Writer
	f http.Flusher
}

// Write writes p and flushes the underlying ResponseWriter.
func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

// ClusterStatus is the GET /v1/cluster response body.
type ClusterStatus struct {
	// Self is the answering node's address.
	Self string `json:"self"`
	// Vnodes is the ring's virtual-node count per peer.
	Vnodes int `json:"vnodes"`
	// Peers is every ring member with its health as seen from Self.
	Peers []PeerHealth `json:"peers"`
}

// handleCluster serves GET /v1/cluster: ring membership plus this node's
// view of each peer's health. Each node answers with its own view — the
// endpoint is deliberately local so it works during partitions.
func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(NodeHeader, rt.self)
	writeJSONValue(w, http.StatusOK, ClusterStatus{
		Self:   rt.self,
		Vnodes: rt.ring.Vnodes(),
		Peers:  rt.prober.Snapshot(),
	})
}

// writeJSONValue writes v as an indented JSON response, matching the
// service handlers' format.
func writeJSONValue(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeJSONError writes a service-shaped {"error": msg} body.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSONValue(w, code, map[string]string{"error": msg})
}
