// Package cluster turns N shared-nothing glade-serve daemons into one
// logical service. Placement is consistent hashing: every peer owns a set
// of virtual nodes on a hash ring, a resource id (grammar id, job id,
// campaign id) hashes to a ring position, and the next virtual node
// clockwise names the owner. The Router serves locally-owned resources
// from the wrapped service handler and transparently proxies non-owned
// requests to the owner (chosen over 307 redirects so that dumb clients —
// curl without -L, load generators, SDKs with redirect policies — see one
// coherent API from any node); a Prober health-checks peers off /readyz so
// a dead peer's keys fail over to the next ring position.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per peer. 64 vnodes keep the
// per-peer share within a few percent of uniform for small clusters while
// the ring stays tiny (N*64 points).
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over a set of peers. Placement
// is deterministic in the peer names alone — every node building a ring
// from the same peer list routes every key identically, with no
// coordination — and rebalance-friendly: adding or removing one peer moves
// only the keys that hashed to its virtual nodes (~1/N of the space), not
// the whole keyspace the way modulo placement would.
type Ring struct {
	peers  []string // sorted, unique
	vnodes int
	points []point // sorted by hash
}

// point is one virtual node: a ring position owned by a peer.
type point struct {
	hash uint64
	peer int32 // index into peers
}

// NewRing builds a ring over peers with vnodes virtual nodes each
// (DefaultVnodes when vnodes <= 0). Peer names are deduplicated and
// sorted, so any permutation of the same membership yields an identical
// ring. An empty peer list is an error — a ring with no owners cannot
// place anything.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	uniq := map[string]bool{}
	var sorted []string
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer name")
		}
		if !uniq[p] {
			uniq[p] = true
			sorted = append(sorted, p)
		}
	}
	if len(sorted) == 0 {
		return nil, fmt.Errorf("cluster: no peers")
	}
	sort.Strings(sorted)
	r := &Ring{
		peers:  sorted,
		vnodes: vnodes,
		points: make([]point, 0, len(sorted)*vnodes),
	}
	for i, peer := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash: hashKey(fmt.Sprintf("%s#%d", peer, v)),
				peer: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash == r.points[b].hash {
			return r.points[a].peer < r.points[b].peer
		}
		return r.points[a].hash < r.points[b].hash
	})
	return r, nil
}

// hashKey is FNV-1a 64 with a splitmix64 finalizer — fast,
// dependency-free, and stable across processes and architectures, which is
// all ring placement needs (cryptographic strength buys nothing here).
// Raw FNV on short, similar strings ("peer#0", "peer#1", ...) leaves the
// high bits badly mixed and skews vnode placement several-fold; the
// finalizer's avalanche restores a near-uniform spread.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Peers returns the ring's membership, sorted.
func (r *Ring) Peers() []string {
	return append([]string(nil), r.peers...)
}

// Vnodes returns the virtual-node count per peer.
func (r *Ring) Vnodes() int { return r.vnodes }

// Owner names the peer owning key — the first peer clockwise from the
// key's ring position.
func (r *Ring) Owner(key string) string {
	return r.Owners(key, 1)[0]
}

// Owners returns up to n distinct peers in ring order from the key's
// position: the owner first, then the failover successors a router walks
// when the owner is unhealthy. n is clamped to the peer count.
func (r *Ring) Owners(key string, n int) []string {
	if n > len(r.peers) {
		n = len(r.peers)
	}
	if n <= 0 {
		n = 1
	}
	h := hashKey(key)
	// First point at or after h, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int32]bool, n)
	out := make([]string, 0, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if seen[p.peer] {
			continue
		}
		seen[p.peer] = true
		out = append(out, r.peers[p.peer])
	}
	return out
}
