// Package oracle defines the membership-oracle abstraction of §2: blackbox
// access to a program answering "is this input valid?". It also provides the
// wrappers the learner and the evaluation need — caching, query counting,
// batching, worker-pool parallelism — and an oracle that executes an
// external command, which is how the CLI treats a real program binary
// exactly as the paper does (run the program, valid iff it does not report
// an error).
//
// Oracle queries dominate GLADE's cost (§4.3): every candidate
// generalization, merge check, and character-generalization probe is one
// blackbox program run. The learner therefore issues independent checks as
// waves through the BatchOracle bulk path; composing
// Cached → Parallel → Counting → <program> turns each wave into bounded
// concurrent program runs with per-key deduplication.
package oracle

import (
	"context"
	"errors"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// Oracle answers membership queries for the target language L*.
type Oracle interface {
	// Accepts reports whether input ∈ L*.
	Accepts(input string) bool
}

// BatchOracle is an Oracle with a bulk path: implementations may answer a
// slice of membership queries concurrently. The returned slice is parallel
// to inputs. Implementations must be safe for concurrent use.
type BatchOracle interface {
	Oracle
	// AcceptsBatch answers every query, in input order.
	AcceptsBatch(inputs []string) []bool
}

// AcceptsAll answers every query, using the bulk path when o provides one
// and falling back to sequential Accepts calls otherwise. It is how callers
// issue a wave of independent checks without caring what o is.
func AcceptsAll(o Oracle, inputs []string) []bool {
	if b, ok := o.(BatchOracle); ok {
		return b.AcceptsBatch(inputs)
	}
	out := make([]bool, len(inputs))
	for i, in := range inputs {
		out[i] = o.Accepts(in)
	}
	return out
}

// Func adapts a plain function to an Oracle.
type Func func(string) bool

// Accepts implements Oracle.
func (f Func) Accepts(input string) bool { return f(input) }

// cacheShards is the number of lock stripes in Cached. Striping keeps
// concurrent batch waves from serializing on one mutex; 64 stripes is
// comfortably above any worker count this repository uses.
const cacheShards = 64

// inflightCall tracks one underlying query in progress, so that concurrent
// misses on the same key wait for the first caller instead of duplicating
// the (expensive) program run. val is written before done is closed.
type inflightCall struct {
	done chan struct{}
	val  bool
}

// cacheShard is one lock stripe of Cached.
type cacheShard struct {
	mu       sync.Mutex
	memo     map[string]bool
	inflight map[string]*inflightCall
	hits     int
	miss     int
}

// Cached memoizes oracle answers. The learner issues many repeated queries
// (identical checks recur across candidates), so callers typically wrap
// their oracle in Cached before learning. Cached is safe for concurrent
// use: the memo is sharded across lock stripes, and concurrent misses on
// the same key are deduplicated — exactly one underlying query is issued
// and every waiter receives its answer.
type Cached struct {
	inner  Oracle
	shards [cacheShards]cacheShard
}

// NewCached wraps inner with memoization.
func NewCached(inner Oracle) *Cached {
	c := &Cached{inner: inner}
	for i := range c.shards {
		c.shards[i].memo = map[string]bool{}
		c.shards[i].inflight = map[string]*inflightCall{}
	}
	return c
}

// shard picks the lock stripe for a key (FNV-1a).
func (c *Cached) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// Accepts implements Oracle. A miss issues exactly one underlying query per
// key even under concurrency: later callers missing on the same key block
// on the first caller's in-flight computation.
func (c *Cached) Accepts(input string) bool {
	sh := c.shard(input)
	sh.mu.Lock()
	if v, ok := sh.memo[input]; ok {
		sh.hits++
		sh.mu.Unlock()
		return v
	}
	if call, ok := sh.inflight[input]; ok {
		// Another goroutine is computing this key; its answer serves us too.
		sh.hits++
		sh.mu.Unlock()
		<-call.done
		return call.val
	}
	call := &inflightCall{done: make(chan struct{})}
	sh.inflight[input] = call
	sh.miss++
	sh.mu.Unlock()

	v := c.inner.Accepts(input)

	sh.mu.Lock()
	sh.memo[input] = v
	delete(sh.inflight, input)
	sh.mu.Unlock()
	call.val = v
	close(call.done)
	return v
}

// AcceptsBatch implements BatchOracle: cached keys answer immediately,
// duplicates collapse, and the remaining unique misses are issued through
// the inner oracle's bulk path (concurrently, when inner is a BatchOracle).
func (c *Cached) AcceptsBatch(inputs []string) []bool {
	out := make([]bool, len(inputs))
	// indices groups result positions by key, collapsing duplicates.
	indices := make(map[string][]int, len(inputs))
	order := make([]string, 0, len(inputs))
	for i, in := range inputs {
		if _, seen := indices[in]; !seen {
			order = append(order, in)
		}
		indices[in] = append(indices[in], i)
	}

	resolved := make(map[string]bool, len(order))
	var owned []string                        // keys this call computes
	waiting := make(map[string]*inflightCall) // keys another goroutine is computing
	for _, key := range order {
		sh := c.shard(key)
		sh.mu.Lock()
		if v, ok := sh.memo[key]; ok {
			sh.hits += len(indices[key])
			resolved[key] = v
			sh.mu.Unlock()
			continue
		}
		if call, ok := sh.inflight[key]; ok {
			sh.hits += len(indices[key])
			waiting[key] = call
			sh.mu.Unlock()
			continue
		}
		sh.inflight[key] = &inflightCall{done: make(chan struct{})}
		sh.miss++
		if extra := len(indices[key]) - 1; extra > 0 {
			sh.hits += extra
		}
		owned = append(owned, key)
		sh.mu.Unlock()
	}

	if len(owned) > 0 {
		vals := AcceptsAll(c.inner, owned)
		for i, key := range owned {
			v := vals[i]
			sh := c.shard(key)
			sh.mu.Lock()
			call := sh.inflight[key]
			sh.memo[key] = v
			delete(sh.inflight, key)
			sh.mu.Unlock()
			call.val = v
			close(call.done)
			resolved[key] = v
		}
	}
	for key, call := range waiting {
		<-call.done
		resolved[key] = call.val
	}

	for key, idxs := range indices {
		v := resolved[key]
		for _, i := range idxs {
			out[i] = v
		}
	}
	return out
}

// Stats returns (cache hits, underlying queries issued). Deduplicated
// concurrent misses count as hits: exactly one of them reached the inner
// oracle.
func (c *Cached) Stats() (hits, misses int) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.miss
		sh.mu.Unlock()
	}
	return hits, misses
}

// Counting counts queries to the underlying oracle; the evaluation reports
// query budgets with it. Counting is safe for concurrent use and forwards
// the bulk path of its inner oracle.
type Counting struct {
	inner Oracle
	mu    sync.Mutex
	n     int
}

// NewCounting wraps inner with query counting.
func NewCounting(inner Oracle) *Counting { return &Counting{inner: inner} }

// Accepts implements Oracle.
func (c *Counting) Accepts(input string) bool {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.inner.Accepts(input)
}

// AcceptsBatch implements BatchOracle, forwarding to the inner oracle's
// bulk path when it has one.
func (c *Counting) AcceptsBatch(inputs []string) []bool {
	c.mu.Lock()
	c.n += len(inputs)
	c.mu.Unlock()
	return AcceptsAll(c.inner, inputs)
}

// Queries returns the number of queries issued so far.
func (c *Counting) Queries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Exec is an oracle that runs an external command per query, feeding the
// input on stdin. The input is considered valid when the command exits with
// status zero and, if ErrSubstring is non-empty, stderr does not contain it.
// This mirrors the paper's setup of observing whether the program prints an
// error message. Exec is safe for concurrent use; its bulk path fans
// subprocess runs out across Workers concurrent processes.
type Exec struct {
	// Command and arguments, e.g. {"python3", "-"}.
	Argv []string
	// ErrSubstring, when non-empty, marks inputs invalid if stderr contains
	// it even when the exit status is zero.
	ErrSubstring string
	// Workers bounds the concurrent subprocesses AcceptsBatch may spawn.
	// Values below 1 mean sequential execution.
	Workers int
	// Timeout bounds each query's subprocess run; zero means unbounded. A
	// run that exceeds it is killed and the input treated as rejected, so a
	// target that hangs on some candidate cannot wedge a learn job.
	Timeout time.Duration
}

// Verdict is the detailed outcome of one Exec query. Accepts collapses it
// to a bool for the membership-oracle interface; fuzzing campaigns keep
// the full verdict, since a crash or a hang is far more interesting than
// an ordinary rejection.
type Verdict struct {
	// Accepted reports whether the input was accepted: exit status zero
	// and, when ErrSubstring is set, no error marker on stderr.
	Accepted bool
	// Crashed reports that the process died on a signal (SIGSEGV, SIGABRT,
	// ...) rather than exiting — the classic fuzzing trophy.
	Crashed bool
	// TimedOut reports that the run exceeded Timeout and was killed.
	TimedOut bool
}

// Accepts implements Oracle by running the command.
func (e *Exec) Accepts(input string) bool {
	return e.Verdict(input).Accepted
}

// Verdict runs the command on input and reports the detailed outcome:
// acceptance, a signal-death crash, or a timeout kill. A crashed or
// timed-out run is never accepted.
func (e *Exec) Verdict(input string) Verdict {
	if len(e.Argv) == 0 {
		return Verdict{}
	}
	ctx := context.Background()
	if e.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.Timeout)
		defer cancel()
	}
	cmd := exec.CommandContext(ctx, e.Argv[0], e.Argv[1:]...)
	cmd.Stdin = strings.NewReader(input)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	// Grandchildren inheriting stderr can keep Wait blocked past the kill;
	// WaitDelay closes the pipes shortly after cancellation so the deadline
	// is honored regardless of what the target spawned.
	if e.Timeout > 0 {
		cmd.WaitDelay = e.Timeout/4 + 10*time.Millisecond
	}
	if err := cmd.Run(); err != nil {
		if ctx.Err() == context.DeadlineExceeded {
			return Verdict{TimedOut: true}
		}
		// ExitCode is -1 when the process was terminated by a signal; the
		// timeout kill is already accounted for above, so a remaining -1 is
		// the target dying on its own (segfault, abort, ...).
		var ee *exec.ExitError
		if errors.As(err, &ee) && ee.ProcessState != nil && ee.ProcessState.ExitCode() == -1 {
			return Verdict{Crashed: true}
		}
		return Verdict{}
	}
	if e.ErrSubstring != "" && strings.Contains(stderr.String(), e.ErrSubstring) {
		return Verdict{}
	}
	return Verdict{Accepted: true}
}

// AcceptsBatch implements BatchOracle, running up to Workers subprocesses
// concurrently.
func (e *Exec) AcceptsBatch(inputs []string) []bool {
	return fanOut(e, e.Workers, inputs, nil)
}
