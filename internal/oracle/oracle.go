// Package oracle defines the membership-oracle abstraction of §2: blackbox
// access to a program answering "is this input valid?". It also provides the
// wrappers the learner and the evaluation need — caching, query counting,
// batching, worker-pool parallelism — and an oracle that executes an
// external command, which is how the CLI treats a real program binary
// exactly as the paper does (run the program, valid iff it does not report
// an error).
//
// Oracle queries dominate GLADE's cost (§4.3): every candidate
// generalization, merge check, and character-generalization probe is one
// blackbox program run. The learner therefore issues independent checks as
// waves through the batched bulk path; composing
// Cached → Parallel → Counting → <program> turns each wave into bounded
// concurrent program runs with per-key deduplication.
//
// # The v2 contract: verdicts and context
//
// CheckOracle is the primary interface: Check(ctx, input) answers one
// membership query with a Verdict (Accept, Reject, Crash, Timeout) and an
// error. The two channels carry different information:
//
//   - The Verdict is a domain answer about the input. Crash and Timeout are
//     rejections that carry extra signal (the classic fuzzing trophies).
//   - A non-nil error means the oracle itself failed to answer — the target
//     binary could not be started, or ctx was cancelled before the query
//     ran. Callers must not treat an error as a rejection: learning aborts
//     and surfaces it, rather than silently synthesizing from garbage.
//
// The legacy boolean Oracle interface remains for simple pure predicates
// (Func implements both); AsCheck and AsBool adapt between the worlds.
package oracle

import (
	"context"
	"errors"
	"fmt"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// Verdict is the outcome of one membership query: the domain answer about
// the input (not about the oracle — oracle failures travel as errors next
// to the Verdict).
type Verdict uint8

// The four verdicts. Only Accept means the input is in the language; Crash
// and Timeout are rejections that carry extra signal — the target died on a
// signal, or hung until the per-query deadline killed it — which fuzzing
// campaigns triage into their own buckets.
const (
	// Reject: the target processed the input and reported it invalid.
	Reject Verdict = iota
	// Accept: the input is in the target's language.
	Accept
	// Crash: the target died on a signal (SIGSEGV, SIGABRT, ...) rather
	// than exiting.
	Crash
	// Timeout: the target exceeded the per-query deadline and was killed.
	Timeout
)

// Accepted reports whether the verdict is Accept — the collapse to the
// boolean membership answer of §2.
func (v Verdict) Accepted() bool { return v == Accept }

// String renders the verdict ("accept", "reject", "crash", "timeout").
func (v Verdict) String() string {
	switch v {
	case Accept:
		return "accept"
	case Crash:
		return "crash"
	case Timeout:
		return "timeout"
	default:
		return "reject"
	}
}

// CheckOracle answers membership queries for the target language L* with
// full verdicts, deadline and cancellation support. It is the primary
// oracle contract; the boolean Oracle remains as a convenience for pure
// predicates.
type CheckOracle interface {
	// Check answers one membership query. The returned error is about the
	// oracle, not the input: ctx cancellation or an oracle that could not
	// run. Implementations must respect ctx promptly.
	Check(ctx context.Context, input string) (Verdict, error)
}

// BatchCheckOracle is a CheckOracle with a bulk path: implementations may
// answer a slice of membership queries concurrently. The returned slice is
// parallel to inputs; on a non-nil error the slice contents are
// meaningless and must be discarded. Implementations must be safe for
// concurrent use.
type BatchCheckOracle interface {
	CheckOracle
	// CheckBatch answers every query, in input order, stopping early on
	// cancellation or oracle failure.
	CheckBatch(ctx context.Context, inputs []string) ([]Verdict, error)
}

// CheckAll answers every query: through o's bulk path when it provides one
// (the bulk path chooses its own concurrency), otherwise fanning Check
// calls across at most workers goroutines (values below 2 run
// sequentially). It is how callers issue a wave of independent checks
// without caring what o is. On error the returned slice must be discarded.
func CheckAll(ctx context.Context, o CheckOracle, inputs []string, workers int) ([]Verdict, error) {
	if b, ok := o.(BatchCheckOracle); ok {
		return b.CheckBatch(ctx, inputs)
	}
	return fanOut(ctx, o, workers, inputs)
}

// CheckFunc adapts a plain context-aware function to a CheckOracle.
type CheckFunc func(ctx context.Context, input string) (Verdict, error)

// Check implements CheckOracle.
func (f CheckFunc) Check(ctx context.Context, input string) (Verdict, error) {
	return f(ctx, input)
}

// Oracle answers boolean membership queries. It is the v1 contract, kept
// for pure in-process predicates that cannot crash, hang, or fail; wrap
// with AsCheck to use one where a CheckOracle is required.
type Oracle interface {
	// Accepts reports whether input ∈ L*.
	Accepts(input string) bool
}

// BatchOracle is an Oracle with a bulk path (v1 contract). The returned
// slice is parallel to inputs. Implementations must be safe for concurrent
// use.
type BatchOracle interface {
	Oracle
	// AcceptsBatch answers every query, in input order.
	AcceptsBatch(inputs []string) []bool
}

// AcceptsAll answers every boolean query, using the bulk path when o
// provides one and falling back to sequential Accepts calls otherwise
// (v1 contract).
func AcceptsAll(o Oracle, inputs []string) []bool {
	if b, ok := o.(BatchOracle); ok {
		return b.AcceptsBatch(inputs)
	}
	out := make([]bool, len(inputs))
	for i, in := range inputs {
		out[i] = o.Accepts(in)
	}
	return out
}

// Func adapts a plain predicate to both oracle contracts: Accepts calls it
// directly, Check maps true/false to Accept/Reject (after honoring ctx).
type Func func(string) bool

// Accepts implements Oracle.
func (f Func) Accepts(input string) bool { return f(input) }

// Check implements CheckOracle. A predicate panic is the in-process
// analogue of a target dying on a signal, so it answers Crash instead of
// unwinding into (and killing) the calling worker goroutine. The predicate
// itself cannot be interrupted, so cancellation is only observed between
// queries.
func (f Func) Check(ctx context.Context, input string) (Verdict, error) {
	if err := ctx.Err(); err != nil {
		return Reject, err
	}
	return Protect(f, input), nil
}

// Protect answers one boolean membership query with panic containment: a
// predicate panic becomes Crash — the same trophy as a subprocess target
// dying on a signal — rather than unwinding into the caller. Every
// in-process adapter (Func, AsCheck, the builtin registry) answers through
// it so the v2 verdict contract holds without a subprocess.
func Protect(pred func(string) bool, input string) (v Verdict) {
	defer func() {
		if recover() != nil {
			v = Crash
		}
	}()
	if pred(input) {
		return Accept
	}
	return Reject
}

// AsCheck adapts a v1 boolean oracle to the CheckOracle contract: true maps
// to Accept, false to Reject, and cancellation is observed between queries
// (a boolean oracle cannot be interrupted mid-query). When o already
// implements CheckOracle it is returned unchanged.
func AsCheck(o Oracle) CheckOracle {
	if c, ok := o.(CheckOracle); ok {
		return c
	}
	return boolAdapter{o}
}

// boolAdapter is AsCheck's wrapper for oracles that only speak booleans.
type boolAdapter struct{ inner Oracle }

// Check implements CheckOracle, containing predicate panics as Crash.
func (a boolAdapter) Check(ctx context.Context, input string) (Verdict, error) {
	if err := ctx.Err(); err != nil {
		return Reject, err
	}
	return Protect(a.inner.Accepts, input), nil
}

// AsBool adapts a CheckOracle to the v1 boolean contract: only Accept reads
// as true; oracle errors read as false, losing the distinction — callers
// that care about Crash/Timeout/error must stay on the Check path. When o
// already implements Oracle it is returned unchanged.
func AsBool(o CheckOracle) Oracle {
	if b, ok := o.(Oracle); ok {
		return b
	}
	return checkAdapter{o}
}

// checkAdapter is AsBool's wrapper for oracles that only speak verdicts.
type checkAdapter struct{ inner CheckOracle }

// Accepts implements Oracle.
func (a checkAdapter) Accepts(input string) bool {
	v, err := a.inner.Check(context.Background(), input)
	return err == nil && v == Accept
}

// legacyAccepts is the shared v1 shim: collapse one Check answer to the
// boolean contract, reading oracle errors as rejection.
func legacyAccepts(o CheckOracle, input string) bool {
	v, err := o.Check(context.Background(), input)
	return err == nil && v == Accept
}

// legacyAcceptsBatch is the shared v1 bulk shim: a batch error reads as
// all-rejected. Callers that must distinguish oracle failure (or cancel a
// running wave) use CheckBatch.
func legacyAcceptsBatch(o BatchCheckOracle, inputs []string) []bool {
	vs, err := o.CheckBatch(context.Background(), inputs)
	out := make([]bool, len(inputs))
	if err != nil {
		return out
	}
	for i, v := range vs {
		out[i] = v == Accept
	}
	return out
}

// cacheShards is the number of lock stripes in Cached. Striping keeps
// concurrent batch waves from serializing on one mutex; 64 stripes is
// comfortably above any worker count this repository uses.
const cacheShards = 64

// inflightCall tracks one underlying query in progress, so that concurrent
// misses on the same key wait for the first caller instead of duplicating
// the (expensive) program run. val and err are written before done is
// closed; an err outcome is not memoized (see Cached).
type inflightCall struct {
	done chan struct{}
	val  Verdict
	err  error
}

// cacheShard is one lock stripe of Cached.
type cacheShard struct {
	mu       sync.Mutex
	memo     map[string]Verdict
	inflight map[string]*inflightCall
	hits     int
	miss     int
}

// Cached memoizes oracle verdicts. The learner issues many repeated queries
// (identical checks recur across candidates), so callers typically wrap
// their oracle in Cached before learning. Cached is safe for concurrent
// use: the memo is sharded across lock stripes, and concurrent misses on
// the same key are deduplicated — exactly one underlying query is issued
// and every waiter receives its answer.
//
// Only verdicts are memoized. A query that fails with an error (oracle
// broken, ctx cancelled) is never cached: cancellation artifacts must not
// poison the memo, so the same key asked again issues a fresh underlying
// query.
type Cached struct {
	inner  CheckOracle
	shards [cacheShards]cacheShard
}

// NewCached wraps inner with memoization.
func NewCached(inner CheckOracle) *Cached {
	c := &Cached{inner: inner}
	for i := range c.shards {
		c.shards[i].memo = map[string]Verdict{}
		c.shards[i].inflight = map[string]*inflightCall{}
	}
	return c
}

// shard picks the lock stripe for a key (FNV-1a).
func (c *Cached) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// Check implements CheckOracle. A miss issues exactly one underlying query
// per key even under concurrency: later callers missing on the same key
// block on the first caller's in-flight computation (or return early when
// their own ctx is cancelled while waiting).
func (c *Cached) Check(ctx context.Context, input string) (Verdict, error) {
	sh := c.shard(input)
	sh.mu.Lock()
	if v, ok := sh.memo[input]; ok {
		sh.hits++
		sh.mu.Unlock()
		return v, nil
	}
	if call, ok := sh.inflight[input]; ok {
		// Another goroutine is computing this key; its answer serves us too.
		sh.hits++
		sh.mu.Unlock()
		select {
		case <-call.done:
			return call.val, call.err
		case <-ctx.Done():
			return Reject, ctx.Err()
		}
	}
	call := &inflightCall{done: make(chan struct{})}
	sh.inflight[input] = call
	sh.miss++
	sh.mu.Unlock()

	v, err := c.inner.Check(ctx, input)

	sh.mu.Lock()
	if err == nil {
		sh.memo[input] = v
	}
	delete(sh.inflight, input)
	sh.mu.Unlock()
	call.val, call.err = v, err
	close(call.done)
	return v, err
}

// CheckBatch implements BatchCheckOracle: cached keys answer immediately,
// duplicates collapse, and the remaining unique misses are issued through
// the inner oracle's bulk path (concurrently, when inner is a
// BatchCheckOracle). On error nothing new is memoized and the returned
// slice must be discarded.
func (c *Cached) CheckBatch(ctx context.Context, inputs []string) ([]Verdict, error) {
	out := make([]Verdict, len(inputs))
	// indices groups result positions by key, collapsing duplicates.
	indices := make(map[string][]int, len(inputs))
	order := make([]string, 0, len(inputs))
	for i, in := range inputs {
		if _, seen := indices[in]; !seen {
			order = append(order, in)
		}
		indices[in] = append(indices[in], i)
	}

	resolved := make(map[string]Verdict, len(order))
	var owned []string                        // keys this call computes
	waiting := make(map[string]*inflightCall) // keys another goroutine is computing
	for _, key := range order {
		sh := c.shard(key)
		sh.mu.Lock()
		if v, ok := sh.memo[key]; ok {
			sh.hits += len(indices[key])
			resolved[key] = v
			sh.mu.Unlock()
			continue
		}
		if call, ok := sh.inflight[key]; ok {
			sh.hits += len(indices[key])
			waiting[key] = call
			sh.mu.Unlock()
			continue
		}
		sh.inflight[key] = &inflightCall{done: make(chan struct{})}
		sh.miss++
		if extra := len(indices[key]) - 1; extra > 0 {
			sh.hits += extra
		}
		owned = append(owned, key)
		sh.mu.Unlock()
	}

	var batchErr error
	if len(owned) > 0 {
		vals, err := CheckAll(ctx, c.inner, owned, 1)
		batchErr = err
		for i, key := range owned {
			sh := c.shard(key)
			sh.mu.Lock()
			call := sh.inflight[key]
			if err == nil {
				sh.memo[key] = vals[i]
			}
			delete(sh.inflight, key)
			sh.mu.Unlock()
			if err == nil {
				call.val = vals[i]
				resolved[key] = vals[i]
			} else {
				call.err = err
			}
			close(call.done)
		}
	}
	for key, call := range waiting {
		select {
		case <-call.done:
			if call.err != nil {
				if batchErr == nil {
					batchErr = call.err
				}
				continue
			}
			resolved[key] = call.val
		case <-ctx.Done():
			if batchErr == nil {
				batchErr = ctx.Err()
			}
		}
	}
	if batchErr != nil {
		return out, batchErr
	}

	for key, idxs := range indices {
		v := resolved[key]
		for _, i := range idxs {
			out[i] = v
		}
	}
	return out, nil
}

// Accepts implements the v1 Oracle contract on top of Check: errors read as
// rejection. Callers that must distinguish oracle failure use Check.
func (c *Cached) Accepts(input string) bool { return legacyAccepts(c, input) }

// AcceptsBatch implements the v1 BatchOracle contract on top of CheckBatch.
func (c *Cached) AcceptsBatch(inputs []string) []bool { return legacyAcceptsBatch(c, inputs) }

// Stats returns (cache hits, underlying queries issued). Deduplicated
// concurrent misses count as hits: exactly one of them reached the inner
// oracle.
func (c *Cached) Stats() (hits, misses int) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.miss
		sh.mu.Unlock()
	}
	return hits, misses
}

// Counting counts queries to the underlying oracle; the evaluation reports
// query budgets with it. Counting is safe for concurrent use and forwards
// the bulk path of its inner oracle.
type Counting struct {
	inner CheckOracle
	mu    sync.Mutex
	n     int
}

// NewCounting wraps inner with query counting.
func NewCounting(inner CheckOracle) *Counting { return &Counting{inner: inner} }

// Check implements CheckOracle.
func (c *Counting) Check(ctx context.Context, input string) (Verdict, error) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.inner.Check(ctx, input)
}

// CheckBatch implements BatchCheckOracle, forwarding to the inner oracle's
// bulk path when it has one.
func (c *Counting) CheckBatch(ctx context.Context, inputs []string) ([]Verdict, error) {
	c.mu.Lock()
	c.n += len(inputs)
	c.mu.Unlock()
	return CheckAll(ctx, c.inner, inputs, 1)
}

// Accepts implements the v1 Oracle contract on top of Check: errors read
// as rejection.
func (c *Counting) Accepts(input string) bool { return legacyAccepts(c, input) }

// AcceptsBatch implements the v1 BatchOracle contract on top of CheckBatch.
func (c *Counting) AcceptsBatch(inputs []string) []bool { return legacyAcceptsBatch(c, inputs) }

// Queries returns the number of queries issued so far.
func (c *Counting) Queries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Exec is an oracle that runs an external command per query, feeding the
// input on stdin. The input is accepted when the command exits with status
// zero and, if ErrSubstring is non-empty, stderr does not contain it. This
// mirrors the paper's setup of observing whether the program prints an
// error message. Exec is safe for concurrent use; its bulk path fans
// subprocess runs out across Workers concurrent processes.
//
// Check is the canonical implementation: a signal death is Crash, a
// per-query deadline kill is Timeout, a command that cannot be started at
// all (missing binary, fork failure) is an oracle error — not a rejection.
type Exec struct {
	// Command and arguments, e.g. {"python3", "-"}.
	Argv []string
	// ErrSubstring, when non-empty, marks inputs invalid if stderr contains
	// it even when the exit status is zero.
	ErrSubstring string
	// Workers bounds the concurrent subprocesses CheckBatch may spawn.
	// Values below 1 mean sequential execution.
	Workers int
	// Timeout bounds each query's subprocess run; zero means unbounded. A
	// run that exceeds it is killed and the query answers Timeout, so a
	// target that hangs on some candidate cannot wedge a learn job. The
	// caller's ctx bounds the run as well: whichever deadline is tighter
	// wins, and a caller cancellation surfaces as an error, not a verdict.
	Timeout time.Duration
}

// errNoCommand reports an Exec with no Argv — an oracle that cannot answer.
var errNoCommand = errors.New("oracle: exec oracle has no command")

// Check implements CheckOracle by running the command under ctx (and, when
// Timeout is set, a per-query deadline nested inside it).
func (e *Exec) Check(ctx context.Context, input string) (Verdict, error) {
	if len(e.Argv) == 0 {
		return Reject, errNoCommand
	}
	if err := ctx.Err(); err != nil {
		return Reject, err
	}
	runCtx := ctx
	if e.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, e.Timeout)
		defer cancel()
	}
	cmd := exec.CommandContext(runCtx, e.Argv[0], e.Argv[1:]...)
	cmd.Stdin = strings.NewReader(input)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	// Grandchildren inheriting stderr can keep Wait blocked past the kill;
	// WaitDelay closes the pipes shortly after cancellation so the deadline
	// is honored regardless of what the target spawned.
	if e.Timeout > 0 {
		cmd.WaitDelay = e.Timeout/4 + 10*time.Millisecond
	}
	if err := cmd.Run(); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// The caller gave up (cancellation or its own deadline): the
			// query has no answer, so this is an oracle-level error.
			return Reject, ctxErr
		}
		if runCtx.Err() == context.DeadlineExceeded {
			return Timeout, nil
		}
		var ee *exec.ExitError
		if errors.As(err, &ee) && ee.ProcessState != nil {
			// ExitCode is -1 when the process was terminated by a signal;
			// the timeout kill is already accounted for above, so a
			// remaining -1 is the target dying on its own (segfault, ...).
			if ee.ProcessState.ExitCode() == -1 {
				return Crash, nil
			}
			return Reject, nil
		}
		// The command never ran (missing binary, fork failure): the oracle
		// is broken, which must not read as "input rejected".
		return Reject, fmt.Errorf("oracle: exec %s: %w", e.Argv[0], err)
	}
	if e.ErrSubstring != "" && strings.Contains(stderr.String(), e.ErrSubstring) {
		return Reject, nil
	}
	return Accept, nil
}

// CheckBatch implements BatchCheckOracle, running up to Workers
// subprocesses concurrently under ctx.
func (e *Exec) CheckBatch(ctx context.Context, inputs []string) ([]Verdict, error) {
	return fanOut(ctx, e, e.Workers, inputs)
}

// Verdict runs the command on input and reports the verdict, treating an
// oracle failure as Reject.
//
// Deprecated: use Check, which carries cancellation and distinguishes an
// oracle failure from a rejection.
func (e *Exec) Verdict(input string) Verdict {
	v, err := e.Check(context.Background(), input)
	if err != nil {
		return Reject
	}
	return v
}

// Accepts implements the v1 Oracle contract by running the command; oracle
// failures read as rejection.
func (e *Exec) Accepts(input string) bool { return legacyAccepts(e, input) }

// AcceptsBatch implements the v1 BatchOracle contract, running up to
// Workers subprocesses concurrently.
func (e *Exec) AcceptsBatch(inputs []string) []bool { return legacyAcceptsBatch(e, inputs) }
