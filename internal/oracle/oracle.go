// Package oracle defines the membership-oracle abstraction of §2: blackbox
// access to a program answering "is this input valid?". It also provides the
// wrappers the learner and the evaluation need — caching, query counting —
// and an oracle that executes an external command, which is how the CLI
// treats a real program binary exactly as the paper does (run the program,
// valid iff it does not report an error).
package oracle

import (
	"os/exec"
	"strings"
	"sync"
)

// Oracle answers membership queries for the target language L*.
type Oracle interface {
	// Accepts reports whether input ∈ L*.
	Accepts(input string) bool
}

// Func adapts a plain function to an Oracle.
type Func func(string) bool

// Accepts implements Oracle.
func (f Func) Accepts(input string) bool { return f(input) }

// Cached memoizes oracle answers. The learner issues many repeated queries
// (identical checks recur across candidates), so callers typically wrap
// their oracle in Cached before learning. Cached is safe for concurrent use.
type Cached struct {
	inner Oracle
	mu    sync.Mutex
	memo  map[string]bool
	hits  int
	miss  int
}

// NewCached wraps inner with memoization.
func NewCached(inner Oracle) *Cached {
	return &Cached{inner: inner, memo: map[string]bool{}}
}

// Accepts implements Oracle.
func (c *Cached) Accepts(input string) bool {
	c.mu.Lock()
	if v, ok := c.memo[input]; ok {
		c.hits++
		c.mu.Unlock()
		return v
	}
	c.miss++
	c.mu.Unlock()
	v := c.inner.Accepts(input)
	c.mu.Lock()
	c.memo[input] = v
	c.mu.Unlock()
	return v
}

// Stats returns (cache hits, underlying queries issued).
func (c *Cached) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}

// Counting counts queries to the underlying oracle; the evaluation reports
// query budgets with it. Counting is safe for concurrent use.
type Counting struct {
	inner Oracle
	mu    sync.Mutex
	n     int
}

// NewCounting wraps inner with query counting.
func NewCounting(inner Oracle) *Counting { return &Counting{inner: inner} }

// Accepts implements Oracle.
func (c *Counting) Accepts(input string) bool {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.inner.Accepts(input)
}

// Queries returns the number of queries issued so far.
func (c *Counting) Queries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Exec is an oracle that runs an external command per query, feeding the
// input on stdin. The input is considered valid when the command exits with
// status zero and, if ErrSubstring is non-empty, stderr does not contain it.
// This mirrors the paper's setup of observing whether the program prints an
// error message.
type Exec struct {
	// Command and arguments, e.g. {"python3", "-"}.
	Argv []string
	// ErrSubstring, when non-empty, marks inputs invalid if stderr contains
	// it even when the exit status is zero.
	ErrSubstring string
}

// Accepts implements Oracle by running the command.
func (e *Exec) Accepts(input string) bool {
	if len(e.Argv) == 0 {
		return false
	}
	cmd := exec.Command(e.Argv[0], e.Argv[1:]...)
	cmd.Stdin = strings.NewReader(input)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return false
	}
	if e.ErrSubstring != "" && strings.Contains(stderr.String(), e.ErrSubstring) {
		return false
	}
	return true
}
