package registry

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"glade/internal/oracle"
)

// TestBuiltinSeedsAccepted checks the registration invariant every named
// oracle promises: each bundled seed is accepted by the oracle it seeds.
func TestBuiltinSeedsAccepted(t *testing.T) {
	for _, reg := range oracle.NamedOracles() {
		o := reg.New(0, 1)
		for _, seed := range reg.Seeds {
			v, err := o.Check(context.Background(), seed)
			if err != nil {
				t.Errorf("%s:%s seed %q: %v", reg.Kind, reg.Name, seed, err)
				continue
			}
			if v != oracle.Accept {
				t.Errorf("%s:%s rejects its own seed %q (%v)", reg.Kind, reg.Name, seed, v)
			}
		}
	}
}

// TestBuiltinRejects spot-checks that each builtin actually discriminates:
// a clearly-invalid input per oracle must not be accepted.
func TestBuiltinRejects(t *testing.T) {
	rejects := map[string]string{
		"json":        `{"unterminated": `,
		"json-strict": `{"dup":1,"dup":2}`,
		"xml":         "<a><b></a></b>",
		"url":         "://missing-scheme",
		"regexp":      "a(b",
		"mime":        "not/a valid;;; media",
		"csv":         "\"unterminated,quote\nx",
		"semver":      "1.02.3",
		"gosrc":       "func main( {",
	}
	for name, bad := range rejects {
		reg, ok := oracle.LookupNamed(oracle.SpecBuiltin, name)
		if !ok {
			t.Errorf("builtin %q not registered", name)
			continue
		}
		v, err := reg.New(0, 1).Check(context.Background(), bad)
		if err != nil {
			t.Errorf("builtin:%s on %q: %v", name, bad, err)
			continue
		}
		if v == oracle.Accept {
			t.Errorf("builtin:%s accepts invalid input %q", name, bad)
		}
	}
}

// TestJSONStrictDisagreesWithJSON pins the disagreement surface the
// differential campaign relies on: RFC 8259 accepts top-level scalars,
// the strict RFC 4627 validator does not.
func TestJSONStrictDisagreesWithJSON(t *testing.T) {
	lenient, _ := oracle.LookupNamed(oracle.SpecBuiltin, "json")
	strict, _ := oracle.LookupNamed(oracle.SpecBuiltin, "json-strict")
	lo, so := lenient.New(0, 1), strict.New(0, 1)
	disagree := []string{`"top-level string"`, `42`, `true`, `null`, `3.5`, `{"dup":1,"dup":2}`}
	for _, in := range disagree {
		lv, err1 := lo.Check(context.Background(), in)
		sv, err2 := so.Check(context.Background(), in)
		if err1 != nil || err2 != nil {
			t.Fatalf("%q: errors %v / %v", in, err1, err2)
		}
		if lv != oracle.Accept || sv == oracle.Accept {
			t.Errorf("%q: json=%v json-strict=%v, want Accept/reject split", in, lv, sv)
		}
	}
	agree := []string{`{"a": [1, 2]}`, `[]`, `{"nested": {"x": "y"}}`, `[1.5e3, false]`}
	for _, in := range agree {
		lv, _ := lo.Check(context.Background(), in)
		sv, _ := so.Check(context.Background(), in)
		if lv != oracle.Accept || sv != oracle.Accept {
			t.Errorf("%q: json=%v json-strict=%v, want both Accept", in, lv, sv)
		}
	}
}

// TestStrictJSONValidator exercises the recursive-descent validator's
// corners directly.
func TestStrictJSONValidator(t *testing.T) {
	valid := []string{
		`{}`, `[]`, `[null]`, `{"a": -0.5e+2}`, `["é", "\n\t\\\""]`,
		`{"a": {"b": [{"c": []}]}}`,
	}
	for _, in := range valid {
		if !strictJSONValid(in) {
			t.Errorf("strictJSONValid(%q) = false, want true", in)
		}
	}
	invalid := []string{
		``, `{`, `[1,]`, `{"a":}`, `{"a" 1}`, `[01]`, `[1.]`, `[.5]`, `[+1]`,
		`["\x"]`, `["\u00g9"]`, "[\"raw\tcontrol\"]", `[1] trailing`,
		`{"a":1}{"b":2}`, `[tru]`, strings.Repeat("[", 40) + strings.Repeat("]", 40),
	}
	for _, in := range invalid {
		if strictJSONValid(in) {
			t.Errorf("strictJSONValid(%q) = true, want false", in)
		}
	}
}

// TestSemverValidator exercises the semver validator's corners.
func TestSemverValidator(t *testing.T) {
	valid := []string{"0.0.0", "1.2.3", "10.20.30", "1.0.0-alpha", "1.0.0-alpha.1",
		"1.0.0-0.3.7", "1.0.0+build", "1.0.0-rc.1+build.5", "1.0.0--"}
	for _, in := range valid {
		if !semverValid(in) {
			t.Errorf("semverValid(%q) = false, want true", in)
		}
	}
	invalid := []string{"", "1", "1.2", "v1.2.3", "1.02.3", "1.2.3-", "1.2.3+",
		"1.2.3-01", "1.2.3-a..b", "1.2.3 ", "1.2.3.4", "-1.2.3"}
	for _, in := range invalid {
		if semverValid(in) {
			t.Errorf("semverValid(%q) = true, want false", in)
		}
	}
}

// TestInProcessPanicIsCrash checks the panic-recovery contract: a
// predicate that panics yields VerdictCrash, not a dead goroutine — on
// both the inline fast path and the goroutine (timeout) path.
func TestInProcessPanicIsCrash(t *testing.T) {
	boom := func(string) bool { panic("validator exploded") }
	for _, timeout := range []time.Duration{0, time.Second} {
		o := NewInProcess("boom", boom, timeout)
		v, err := o.Check(context.Background(), "x")
		if err != nil {
			t.Fatalf("timeout=%v: %v", timeout, err)
		}
		if v != oracle.Crash {
			t.Fatalf("timeout=%v: verdict %v, want Crash", timeout, v)
		}
	}
}

// TestInProcessTimeout checks a hanging predicate is abandoned with
// VerdictTimeout while the caller's own context stays intact.
func TestInProcessTimeout(t *testing.T) {
	hang := func(string) bool { time.Sleep(10 * time.Second); return true }
	o := NewInProcess("hang", hang, 50*time.Millisecond)
	start := time.Now()
	v, err := o.Check(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if v != oracle.Timeout {
		t.Fatalf("verdict %v, want Timeout", v)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not bound the query")
	}
}

// TestInProcessCallerCancellation checks cancelling the caller's context
// is an oracle error (aborts learning), never a verdict.
func TestInProcessCallerCancellation(t *testing.T) {
	hang := func(string) bool { time.Sleep(10 * time.Second); return true }
	o := NewInProcess("hang", hang, time.Minute)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := o.Check(ctx, "x")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ctx deadline", err)
	}
}

// TestInProcessFastPath checks the no-timeout path answers without a
// goroutine and still observes a pre-cancelled context.
func TestInProcessFastPath(t *testing.T) {
	o := NewInProcess("even", func(s string) bool { return len(s)%2 == 0 }, 0)
	if v, err := o.Check(context.Background(), "ab"); err != nil || v != oracle.Accept {
		t.Fatalf("Check = %v, %v", v, err)
	}
	if !o.Accepts("ab") || o.Accepts("a") {
		t.Fatal("v1 Accepts adapter wrong")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := o.Check(ctx, "ab"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: err = %v", err)
	}
}

// TestRegistryCoversProgramsAndTargets checks init registered all three
// kinds so bare-name resolution and GET /v1/oracles see the full table.
func TestRegistryCoversProgramsAndTargets(t *testing.T) {
	kinds := map[string]int{}
	for _, reg := range oracle.NamedOracles() {
		kinds[reg.Kind]++
		if reg.Description == "" {
			t.Errorf("%s:%s has no description", reg.Kind, reg.Name)
		}
	}
	if kinds[oracle.SpecBuiltin] < 9 {
		t.Errorf("only %d builtins registered", kinds[oracle.SpecBuiltin])
	}
	if kinds[oracle.SpecProgram] < 8 {
		t.Errorf("only %d programs registered", kinds[oracle.SpecProgram])
	}
	if kinds[oracle.SpecTarget] < 4 {
		t.Errorf("only %d targets registered", kinds[oracle.SpecTarget])
	}
	for _, name := range []string{"json", "json-strict", "xml", "url", "regexp", "mime", "csv", "semver", "gosrc"} {
		if _, ok := oracle.LookupNamed(oracle.SpecBuiltin, name); !ok {
			t.Errorf("builtin %q missing", name)
		}
	}
}
