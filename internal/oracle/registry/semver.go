package registry

import "strings"

// semverValid is the membership predicate behind builtin:semver: a
// hand-rolled validator for semver 2.0.0 (MAJOR.MINOR.PATCH with optional
// -PRERELEASE and +BUILD), written locally because the repository takes no
// external dependencies.
func semverValid(s string) bool {
	// Split off build metadata first ("+" cannot appear earlier).
	if i := strings.IndexByte(s, '+'); i >= 0 {
		if !buildValid(s[i+1:]) {
			return false
		}
		s = s[:i]
	}
	// Then the pre-release part.
	if i := strings.IndexByte(s, '-'); i >= 0 {
		if !prereleaseValid(s[i+1:]) {
			return false
		}
		s = s[:i]
	}
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return false
	}
	for _, p := range parts {
		if !numericNoLeadingZero(p) {
			return false
		}
	}
	return true
}

// numericNoLeadingZero reports whether s is a non-empty digit string
// without a leading zero (except "0" itself).
func numericNoLeadingZero(s string) bool {
	if s == "" || (len(s) > 1 && s[0] == '0') {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isDigit(s[i]) {
			return false
		}
	}
	return true
}

// prereleaseValid validates dot-separated pre-release identifiers:
// non-empty, alphanumeric/hyphen only, and numeric identifiers carry no
// leading zeros.
func prereleaseValid(s string) bool {
	for _, id := range strings.Split(s, ".") {
		if id == "" || !identChars(id) {
			return false
		}
		if allDigits(id) && !numericNoLeadingZero(id) {
			return false
		}
	}
	return true
}

// buildValid validates dot-separated build-metadata identifiers:
// non-empty, alphanumeric/hyphen only (leading zeros are allowed here).
func buildValid(s string) bool {
	for _, id := range strings.Split(s, ".") {
		if id == "" || !identChars(id) {
			return false
		}
	}
	return true
}

// identChars reports whether s contains only [0-9A-Za-z-].
func identChars(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !isDigit(c) && !(c >= 'a' && c <= 'z') && !(c >= 'A' && c <= 'Z') && c != '-' {
			return false
		}
	}
	return true
}

// allDigits reports whether s is entirely digits.
func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isDigit(s[i]) {
			return false
		}
	}
	return true
}
