package registry

import (
	"encoding/csv"
	"encoding/json"
	"encoding/xml"
	"go/parser"
	"go/token"
	"io"
	"mime"
	"net/url"
	"regexp"
	"strings"
)

// builtins returns every stdlib-backed oracle the registry ships. Each
// seed list contains only inputs the oracle accepts (the registry test
// enforces this) and doubles as the default seed set for learn requests
// that name the builtin without providing seeds.
//
// The json seeds deliberately include top-level scalars: RFC 8259 (which
// encoding/json implements) admits any value at the top level, while the
// json-strict builtin keeps the older RFC 4627 object-or-array rule — so
// a grammar learned from builtin:json generalizes into exactly the inputs
// a differential campaign against builtin:json-strict flags.
func builtins() []builtin {
	return []builtin{
		{
			name: "json",
			desc: "JSON text per RFC 8259 (encoding/json's json.Valid; any top-level value)",
			fn:   func(s string) bool { return json.Valid([]byte(s)) },
			seeds: []string{
				`{"key": [1, 2.5, true, null], "s": "text"}`,
				`[false, "two", 3e2]`,
				`{"nested": {"a": [], "b": {}}}`,
				`"top-level string"`,
				`42`,
			},
		},
		{
			name: "json-strict",
			desc: "strict JSON: RFC 4627 top-level object/array only, duplicate keys rejected, depth-limited (hand-rolled)",
			fn:   strictJSONValid,
			seeds: []string{
				`{"key": [1, 2.5, true, null], "s": "text"}`,
				`[false, "two", 3e2]`,
				`{"nested": {"a": [], "b": {}}}`,
			},
		},
		{
			name: "xml",
			desc: "well-formed XML with at least one element (encoding/xml strict token stream)",
			fn:   xmlWellFormed,
			seeds: []string{
				`<note><to>you</to><from>me</from></note>`,
				`<a x="1"><b/>text</a>`,
				`<root>&amp;escaped</root>`,
			},
		},
		{
			name: "url",
			desc: "absolute URL with a scheme (net/url's ParseRequestURI)",
			fn:   urlValid,
			seeds: []string{
				`http://example.com/path?q=1`,
				`https://go.dev/doc#top`,
				`ftp://ftp.example.org:21/pub`,
			},
		},
		{
			name: "regexp",
			desc: "RE2 regular expression syntax (regexp.Compile)",
			fn:   func(s string) bool { _, err := regexp.Compile(s); return err == nil },
			seeds: []string{
				`a(b|c)*d`,
				`[a-z]+[0-9]?`,
				`^x{1,3}\.$`,
			},
		},
		{
			name: "mime",
			desc: "MIME media type with optional parameters (mime.ParseMediaType)",
			fn:   func(s string) bool { _, _, err := mime.ParseMediaType(s); return err == nil },
			seeds: []string{
				`text/html; charset=utf-8`,
				`application/json`,
				`multipart/form-data; boundary=xyz`,
			},
		},
		{
			name: "csv",
			desc: "CSV with consistent field counts and at least one record (encoding/csv)",
			fn:   csvValid,
			seeds: []string{
				"a,b,c\n1,2,3\n",
				"name,\"quoted, field\"\nx,y\n",
				"solo\n",
			},
		},
		{
			name: "semver",
			desc: "semantic version per semver 2.0.0 (hand-rolled: core, pre-release, build metadata)",
			fn:   semverValid,
			seeds: []string{
				`1.2.3`,
				`0.1.0-alpha.1`,
				`2.0.0-rc.1+build.5`,
			},
		},
		{
			name: "gosrc",
			desc: "parsable Go source file (go/parser.ParseFile)",
			fn:   gosrcValid,
			seeds: []string{
				"package p\n\nfunc add(a, b int) int { return a + b }\n",
				"package p\n\nvar xs = []int{1, 2}\n",
				"package p\n\ntype pair struct{ a, b string }\n",
			},
		},
	}
}

// xmlWellFormed reports whether s tokenizes cleanly under the strict
// decoder and contains at least one element (bare character data is not an
// XML document).
func xmlWellFormed(s string) bool {
	dec := xml.NewDecoder(strings.NewReader(s))
	dec.Strict = true
	sawElement := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return sawElement
		}
		if err != nil {
			return false
		}
		if _, ok := tok.(xml.StartElement); ok {
			sawElement = true
		}
	}
}

// urlValid reports whether s is an absolute URL: ParseRequestURI accepts
// it and it carries a scheme (relative request paths like "/x" do not).
func urlValid(s string) bool {
	u, err := url.ParseRequestURI(s)
	return err == nil && u.Scheme != ""
}

// csvValid reports whether s parses as CSV — consistent field counts
// (encoding/csv's default) — with at least one record.
func csvValid(s string) bool {
	records, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	return err == nil && len(records) > 0
}

// gosrcValid reports whether s parses as a Go source file.
func gosrcValid(s string) bool {
	_, err := parser.ParseFile(token.NewFileSet(), "input.go", s, 0)
	return err == nil
}
