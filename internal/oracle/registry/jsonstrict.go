package registry

// strictJSONValid is the hand-rolled strict-JSON membership predicate
// behind builtin:json-strict, deliberately stricter than encoding/json's
// RFC 8259 reading on three points so that differential campaigns against
// builtin:json have a real disagreement surface:
//
//   - the top-level value must be an object or array (RFC 4627);
//   - duplicate keys within one object are rejected (RFC 8259 only says
//     names "SHOULD" be unique — many strict parsers enforce it);
//   - nesting beyond strictMaxDepth is rejected (defensive parsers bound
//     recursion; encoding/json's validator does not).
//
// Within those bounds the grammar is standard JSON: the same numbers,
// strings, escapes, and literals json.Valid accepts.
func strictJSONValid(s string) bool {
	p := &strictParser{s: s}
	p.ws()
	if p.pos >= len(p.s) || (p.s[p.pos] != '{' && p.s[p.pos] != '[') {
		return false
	}
	if !p.value(0) {
		return false
	}
	p.ws()
	return p.pos == len(p.s)
}

// strictMaxDepth bounds object/array nesting in strictJSONValid.
const strictMaxDepth = 32

// strictParser is a recursive-descent validator over s; pos is the scan
// position. Methods return false on the first violation.
type strictParser struct {
	s   string
	pos int
}

// ws skips insignificant whitespace (the four characters JSON allows).
func (p *strictParser) ws() {
	for p.pos < len(p.s) {
		switch p.s[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// value validates one JSON value at depth.
func (p *strictParser) value(depth int) bool {
	if depth > strictMaxDepth {
		return false
	}
	p.ws()
	if p.pos >= len(p.s) {
		return false
	}
	switch c := p.s[p.pos]; {
	case c == '{':
		return p.object(depth)
	case c == '[':
		return p.array(depth)
	case c == '"':
		_, ok := p.stringLit()
		return ok
	case c == '-' || (c >= '0' && c <= '9'):
		return p.number()
	case c == 't':
		return p.lit("true")
	case c == 'f':
		return p.lit("false")
	case c == 'n':
		return p.lit("null")
	}
	return false
}

// lit consumes an exact literal.
func (p *strictParser) lit(want string) bool {
	if len(p.s)-p.pos < len(want) || p.s[p.pos:p.pos+len(want)] != want {
		return false
	}
	p.pos += len(want)
	return true
}

// object validates {"k": v, ...}, rejecting duplicate keys. Keys compare
// by raw escaped text, so "a" and "a" count as distinct keys — a
// defensible strict reading that keeps the validator allocation-light.
func (p *strictParser) object(depth int) bool {
	p.pos++ // '{'
	p.ws()
	if p.pos < len(p.s) && p.s[p.pos] == '}' {
		p.pos++
		return true
	}
	seen := map[string]bool{}
	for {
		p.ws()
		key, ok := p.stringLit()
		if !ok || seen[key] {
			return false
		}
		seen[key] = true
		p.ws()
		if p.pos >= len(p.s) || p.s[p.pos] != ':' {
			return false
		}
		p.pos++
		if !p.value(depth + 1) {
			return false
		}
		p.ws()
		if p.pos >= len(p.s) {
			return false
		}
		switch p.s[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return true
		default:
			return false
		}
	}
}

// array validates [v, ...].
func (p *strictParser) array(depth int) bool {
	p.pos++ // '['
	p.ws()
	if p.pos < len(p.s) && p.s[p.pos] == ']' {
		p.pos++
		return true
	}
	for {
		if !p.value(depth + 1) {
			return false
		}
		p.ws()
		if p.pos >= len(p.s) {
			return false
		}
		switch p.s[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return true
		default:
			return false
		}
	}
}

// stringLit validates a string literal and returns its raw contents
// (escapes unprocessed) for duplicate-key detection.
func (p *strictParser) stringLit() (string, bool) {
	if p.pos >= len(p.s) || p.s[p.pos] != '"' {
		return "", false
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		switch {
		case c == '"':
			raw := p.s[start:p.pos]
			p.pos++
			return raw, true
		case c == '\\':
			p.pos++
			if p.pos >= len(p.s) {
				return "", false
			}
			switch p.s[p.pos] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				p.pos++
			case 'u':
				p.pos++
				for i := 0; i < 4; i++ {
					if p.pos >= len(p.s) || !isHex(p.s[p.pos]) {
						return "", false
					}
					p.pos++
				}
			default:
				return "", false
			}
		case c < 0x20:
			// Control characters must be escaped.
			return "", false
		default:
			p.pos++
		}
	}
	return "", false
}

// number validates a JSON number: -?int frac? exp?, no leading zeros.
func (p *strictParser) number() bool {
	if p.pos < len(p.s) && p.s[p.pos] == '-' {
		p.pos++
	}
	// Integer part: "0" or a nonzero digit followed by digits.
	switch {
	case p.pos < len(p.s) && p.s[p.pos] == '0':
		p.pos++
	case p.pos < len(p.s) && p.s[p.pos] >= '1' && p.s[p.pos] <= '9':
		for p.pos < len(p.s) && isDigit(p.s[p.pos]) {
			p.pos++
		}
	default:
		return false
	}
	if p.pos < len(p.s) && p.s[p.pos] == '.' {
		p.pos++
		if p.pos >= len(p.s) || !isDigit(p.s[p.pos]) {
			return false
		}
		for p.pos < len(p.s) && isDigit(p.s[p.pos]) {
			p.pos++
		}
	}
	if p.pos < len(p.s) && (p.s[p.pos] == 'e' || p.s[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.s) && (p.s[p.pos] == '+' || p.s[p.pos] == '-') {
			p.pos++
		}
		if p.pos >= len(p.s) || !isDigit(p.s[p.pos]) {
			return false
		}
		for p.pos < len(p.s) && isDigit(p.s[p.pos]) {
			p.pos++
		}
	}
	return true
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
