// Package registry populates the oracle package's named-oracle table with
// every in-process oracle this repository ships: the builtin oracles over
// pure-Go targets (encoding/json, encoding/xml, net/url, regexp, mime,
// CSV, semver, Go source via go/parser, plus a hand-rolled strict-JSON
// variant for differential campaigns), the §8.3 simulated programs, and
// the §8.2 evaluation languages.
//
// Importing the package (a blank import suffices) makes every
// oracle.Spec name resolvable through oracle.ParseSpec and
// oracle.Spec.Build:
//
//	import _ "glade/internal/oracle/registry"
//
//	spec, _ := oracle.ParseSpec("builtin:json")
//	o, seeds, _ := spec.Build(oracle.BuildOptions{})
//
// Builtins uphold the full v2 verdict contract without a subprocess: each
// query runs through a guard that contains panics as VerdictCrash and —
// when a per-query timeout is configured — bounds the call with a
// deadline that answers VerdictTimeout, exactly mirroring the semantics
// of oracle.Exec for external commands. Queries cost a function call
// instead of a fork/exec, which is what makes differential campaigns and
// large learn jobs cheap (see BENCH_oracle.json: 100–1000x the exec qps).
package registry

import (
	"context"
	"time"

	"glade/internal/oracle"
	"glade/internal/programs"
	"glade/internal/targets"
)

// InProcess is the registry's guard wrapper: a CheckOracle over a pure-Go
// predicate that upholds the verdict contract of oracle.Exec without a
// subprocess. A predicate panic answers Crash; when a timeout is set, a
// query exceeding it answers Timeout (the predicate's goroutine is
// abandoned — pure-Go code cannot be killed — but the caller moves on);
// caller cancellation surfaces as an error, never as a verdict.
type InProcess struct {
	name    string
	fn      func(string) bool
	timeout time.Duration
}

// NewInProcess wraps a pure-Go predicate in the registry guard. timeout
// bounds each query; zero leaves queries bounded only by the caller's
// context.
func NewInProcess(name string, fn func(string) bool, timeout time.Duration) *InProcess {
	return &InProcess{name: name, fn: fn, timeout: timeout}
}

// Name returns the registered name the oracle was built under.
func (o *InProcess) Name() string { return o.name }

// Check implements oracle.CheckOracle. The fast path — no timeout, no
// cancellable context — answers inline; otherwise the predicate runs in
// its own goroutine so a deadline or cancellation can be honored even
// though the predicate itself is uninterruptible.
func (o *InProcess) Check(ctx context.Context, input string) (oracle.Verdict, error) {
	if err := ctx.Err(); err != nil {
		return oracle.Reject, err
	}
	if o.timeout <= 0 && ctx.Done() == nil {
		return oracle.Protect(o.fn, input), nil
	}
	runCtx := ctx
	if o.timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	ch := make(chan oracle.Verdict, 1)
	go func() { ch <- oracle.Protect(o.fn, input) }()
	select {
	case v := <-ch:
		return v, nil
	case <-runCtx.Done():
		if err := ctx.Err(); err != nil {
			// The caller gave up: the query has no answer, so this is an
			// oracle-level error, mirroring oracle.Exec.
			return oracle.Reject, err
		}
		return oracle.Timeout, nil
	}
}

// Accepts implements the v1 boolean contract; Crash and Timeout read as
// rejection.
func (o *InProcess) Accepts(input string) bool {
	v, err := o.Check(context.Background(), input)
	return err == nil && v == oracle.Accept
}

// builtin describes one stdlib-backed oracle before registration.
type builtin struct {
	name  string
	desc  string
	fn    func(string) bool
	seeds []string
}

// register enters one builtin into the oracle package's table.
func register(b builtin) {
	oracle.RegisterNamed(oracle.Registration{
		Kind:        oracle.SpecBuiltin,
		Name:        b.name,
		Description: b.desc,
		Seeds:       b.seeds,
		New: func(timeout time.Duration, _ int) oracle.CheckOracle {
			return NewInProcess(b.name, b.fn, timeout)
		},
	})
}

func init() {
	for _, b := range builtins() {
		register(b)
	}
	for _, p := range programs.All() {
		p := p
		oracle.RegisterNamed(oracle.Registration{
			Kind:        oracle.SpecProgram,
			Name:        p.Name(),
			Description: "simulated program with coverage instrumentation (§8.3 fuzzing evaluation)",
			Seeds:       p.Seeds(),
			New: func(timeout time.Duration, _ int) oracle.CheckOracle {
				return NewInProcess(p.Name(), func(s string) bool { return p.Run(s).OK }, timeout)
			},
		})
	}
	for _, t := range targets.All() {
		t := t
		oracle.RegisterNamed(oracle.Registration{
			Kind:        oracle.SpecTarget,
			Name:        t.Name,
			Description: "hand-written parser for a §8.2 evaluation language",
			Seeds:       append([]string(nil), t.DocSeeds...),
			New: func(timeout time.Duration, _ int) oracle.CheckOracle {
				return NewInProcess(t.Name, t.Oracle.Accepts, timeout)
			},
		})
	}
}
