package oracle

import (
	"context"
	"fmt"
	"testing"
)

// TestProtect checks the shared panic guard's three outcomes.
func TestProtect(t *testing.T) {
	if v := Protect(func(string) bool { return true }, "x"); v != Accept {
		t.Fatalf("accepting predicate: %v", v)
	}
	if v := Protect(func(string) bool { return false }, "x"); v != Reject {
		t.Fatalf("rejecting predicate: %v", v)
	}
	if v := Protect(func(string) bool { panic("boom") }, "x"); v != Crash {
		t.Fatalf("panicking predicate: %v", v)
	}
}

// TestFuncPanicMidBatchIsCrash drives a batch through the parallel wave
// engine with a predicate that panics on some inputs. The panics must
// surface as VerdictCrash on exactly the offending inputs — not kill the
// worker goroutines (which would deadlock or abort the process) — and
// the remaining inputs must still be answered. Run under -race in CI,
// this also checks the recovery path involves no data races.
func TestFuncPanicMidBatchIsCrash(t *testing.T) {
	o := Func(func(s string) bool {
		if len(s) >= 4 && s[:4] == "boom" {
			panic("validator exploded on " + s)
		}
		return true
	})
	var inputs []string
	for i := 0; i < 64; i++ {
		if i%5 == 0 {
			inputs = append(inputs, fmt.Sprintf("boom-%d", i))
		} else {
			inputs = append(inputs, fmt.Sprintf("fine-%d", i))
		}
	}
	for _, workers := range []int{1, 8} {
		verdicts, err := CheckAll(context.Background(), o, inputs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(verdicts) != len(inputs) {
			t.Fatalf("workers=%d: %d verdicts for %d inputs", workers, len(verdicts), len(inputs))
		}
		for i, v := range verdicts {
			want := Accept
			if i%5 == 0 {
				want = Crash
			}
			if v != want {
				t.Errorf("workers=%d input %q: verdict %v, want %v", workers, inputs[i], v, want)
			}
		}
	}

	// The same contract through the Pool batch path and the v1 adapter.
	pool := Parallel(o, 4)
	verdicts, err := pool.CheckBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0] != Crash || verdicts[1] != Accept {
		t.Fatalf("pool batch: verdicts[0]=%v verdicts[1]=%v", verdicts[0], verdicts[1])
	}
	v1 := AsCheck(panickyV1{})
	if v, err := v1.Check(context.Background(), "boom"); err != nil || v != Crash {
		t.Fatalf("v1 adapter: %v, %v; want Crash", v, err)
	}
}

// panickyV1 is a v1 boolean oracle whose Accepts panics: the AsCheck
// adapter must contain the panic like Func does.
type panickyV1 struct{}

func (panickyV1) Accepts(string) bool { panic("v1 oracle exploded") }
