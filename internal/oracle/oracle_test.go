package oracle

import (
	"strings"
	"testing"
	"time"
)

func TestFunc(t *testing.T) {
	o := Func(func(s string) bool { return strings.HasPrefix(s, "ok") })
	if !o.Accepts("ok then") || o.Accepts("nope") {
		t.Fatal("Func adapter wrong")
	}
}

func TestCached(t *testing.T) {
	calls := 0
	o := NewCached(Func(func(s string) bool {
		calls++
		return s == "yes"
	}))
	for i := 0; i < 5; i++ {
		if !o.Accepts("yes") || o.Accepts("no") {
			t.Fatal("cached answers wrong")
		}
	}
	if calls != 2 {
		t.Fatalf("underlying calls = %d, want 2", calls)
	}
	hits, misses := o.Stats()
	if misses != 2 || hits != 8 {
		t.Fatalf("Stats = %d hits %d misses", hits, misses)
	}
}

func TestCounting(t *testing.T) {
	o := NewCounting(Func(func(s string) bool { return true }))
	for i := 0; i < 7; i++ {
		o.Accepts("x")
	}
	if o.Queries() != 7 {
		t.Fatalf("Queries = %d", o.Queries())
	}
}

func TestExecTrueFalse(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	yes := &Exec{Argv: []string{"true"}}
	no := &Exec{Argv: []string{"false"}}
	if !yes.Accepts("anything") {
		t.Fatal("true command rejected")
	}
	if no.Accepts("anything") {
		t.Fatal("false command accepted")
	}
	empty := &Exec{}
	if empty.Accepts("x") {
		t.Fatal("empty argv accepted")
	}
}

func TestExecReadsStdin(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	// grep -q ok: exit 0 iff stdin contains "ok".
	o := &Exec{Argv: []string{"grep", "-q", "ok"}}
	if !o.Accepts("this is ok") {
		t.Fatal("grep oracle rejected matching input")
	}
	if o.Accepts("nothing here") {
		t.Fatal("grep oracle accepted non-matching input")
	}
}

func TestExecTimeoutKillsHangingTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	// Without a timeout this would block for 30 s; the deadline must kill
	// the process and report rejection quickly.
	o := &Exec{Argv: []string{"sleep", "30"}, Timeout: 100 * time.Millisecond}
	start := time.Now()
	if o.Accepts("x") {
		t.Fatal("timed-out run reported accepted")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout did not bound the run: took %v", elapsed)
	}
	// A fast run under the same timeout is unaffected.
	fast := &Exec{Argv: []string{"true"}, Timeout: 5 * time.Second}
	if !fast.Accepts("x") {
		t.Fatal("fast run under timeout rejected")
	}
}

func TestExecTimeoutInBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	o := &Exec{Argv: []string{"sh", "-c", "grep -q ok || sleep 30"}, Timeout: 150 * time.Millisecond, Workers: 4}
	got := o.AcceptsBatch([]string{"ok", "hang", "ok", "hang"})
	want := []bool{true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch answer %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestExecVerdict(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	cases := []struct {
		name string
		o    *Exec
		want Verdict
	}{
		{"accepted", &Exec{Argv: []string{"true"}}, Verdict{Accepted: true}},
		{"rejected", &Exec{Argv: []string{"false"}}, Verdict{}},
		{"empty argv", &Exec{}, Verdict{}},
		{"timeout", &Exec{Argv: []string{"sleep", "30"}, Timeout: 100 * time.Millisecond}, Verdict{TimedOut: true}},
		// A process killing itself with SIGSEGV is a crash, not a plain
		// rejection — and not a timeout, since the deadline never fired.
		{"crash", &Exec{Argv: []string{"sh", "-c", "kill -SEGV $$"}, Timeout: 10 * time.Second}, Verdict{Crashed: true}},
		{"err substring", &Exec{Argv: []string{"sh", "-c", "echo parse error >&2"}, ErrSubstring: "error"}, Verdict{}},
	}
	for _, tc := range cases {
		if got := tc.o.Verdict("x"); got != tc.want {
			t.Errorf("%s: Verdict = %+v, want %+v", tc.name, got, tc.want)
		}
	}
	// Accepts must agree with Verdict().Accepted.
	if (&Exec{Argv: []string{"sh", "-c", "kill -SEGV $$"}}).Accepts("x") {
		t.Error("crashed run reported accepted")
	}
}
