package oracle

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFunc(t *testing.T) {
	o := Func(func(s string) bool { return strings.HasPrefix(s, "ok") })
	if !o.Accepts("ok then") || o.Accepts("nope") {
		t.Fatal("Func adapter wrong")
	}
	v, err := o.Check(context.Background(), "ok then")
	if err != nil || v != Accept {
		t.Fatalf("Check = %v, %v, want accept", v, err)
	}
	if v, err := o.Check(context.Background(), "nope"); err != nil || v != Reject {
		t.Fatalf("Check = %v, %v, want reject", v, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := o.Check(ctx, "ok"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Check on cancelled ctx err = %v, want context.Canceled", err)
	}
}

func TestVerdictString(t *testing.T) {
	cases := map[Verdict]string{Accept: "accept", Reject: "reject", Crash: "crash", Timeout: "timeout"}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
	if !Accept.Accepted() || Reject.Accepted() || Crash.Accepted() || Timeout.Accepted() {
		t.Error("Accepted() wrong")
	}
}

func TestAdapters(t *testing.T) {
	// AsCheck on a plain v1 oracle maps booleans to verdicts.
	v1 := plainBool{yes: "member"}
	c := AsCheck(v1)
	if v, err := c.Check(context.Background(), "member"); err != nil || v != Accept {
		t.Fatalf("AsCheck accept = %v, %v", v, err)
	}
	if v, err := c.Check(context.Background(), "other"); err != nil || v != Reject {
		t.Fatalf("AsCheck reject = %v, %v", v, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Check(ctx, "member"); !errors.Is(err, context.Canceled) {
		t.Fatalf("AsCheck cancelled err = %v", err)
	}
	// AsCheck on something already implementing CheckOracle is the identity.
	f := Func(func(s string) bool { return true })
	if AsCheck(f).(Func) == nil {
		t.Fatal("AsCheck did not pass a CheckOracle through")
	}
	// AsBool collapses verdicts; errors read as rejection.
	cb := CheckFunc(func(ctx context.Context, s string) (Verdict, error) {
		switch s {
		case "in":
			return Accept, nil
		case "boom":
			return Reject, errors.New("oracle broke")
		}
		return Crash, nil
	})
	b := AsBool(cb)
	if !b.Accepts("in") || b.Accepts("out") || b.Accepts("boom") {
		t.Fatal("AsBool collapse wrong")
	}
}

// plainBool implements only the v1 Oracle interface, so AsCheck must wrap
// it rather than pass it through.
type plainBool struct{ yes string }

func (p plainBool) Accepts(s string) bool { return s == p.yes }

func TestCached(t *testing.T) {
	calls := 0
	o := NewCached(Func(func(s string) bool {
		calls++
		return s == "yes"
	}))
	for i := 0; i < 5; i++ {
		if !o.Accepts("yes") || o.Accepts("no") {
			t.Fatal("cached answers wrong")
		}
	}
	if calls != 2 {
		t.Fatalf("underlying calls = %d, want 2", calls)
	}
	hits, misses := o.Stats()
	if misses != 2 || hits != 8 {
		t.Fatalf("Stats = %d hits %d misses", hits, misses)
	}
}

// TestCachedErrorNotMemoized is the v2 cache contract: a query that fails
// with an oracle error must not be cached, so the same key asked again
// reaches the oracle — cancellation artifacts cannot poison the memo.
func TestCachedErrorNotMemoized(t *testing.T) {
	calls := 0
	broken := true
	c := NewCached(CheckFunc(func(ctx context.Context, s string) (Verdict, error) {
		calls++
		if broken {
			return Reject, errors.New("oracle down")
		}
		return Accept, nil
	}))
	if _, err := c.Check(context.Background(), "k"); err == nil {
		t.Fatal("expected error from broken oracle")
	}
	broken = false
	v, err := c.Check(context.Background(), "k")
	if err != nil || v != Accept {
		t.Fatalf("retry after error = %v, %v, want accept", v, err)
	}
	if calls != 2 {
		t.Fatalf("underlying calls = %d, want 2 (error not memoized)", calls)
	}
	// The successful verdict IS memoized.
	if _, _ = c.Check(context.Background(), "k"); calls != 2 {
		t.Fatalf("underlying calls = %d after hit, want 2", calls)
	}
}

// TestCachedBatchErrorNotMemoized mirrors the single-query contract on the
// bulk path: a failing batch memoizes nothing.
func TestCachedBatchErrorNotMemoized(t *testing.T) {
	calls := 0
	broken := true
	c := NewCached(CheckFunc(func(ctx context.Context, s string) (Verdict, error) {
		calls++
		if broken {
			return Reject, errors.New("oracle down")
		}
		return Accept, nil
	}))
	if _, err := c.CheckBatch(context.Background(), []string{"a", "b"}); err == nil {
		t.Fatal("expected batch error from broken oracle")
	}
	broken = false
	vs, err := c.CheckBatch(context.Background(), []string{"a", "b"})
	if err != nil || vs[0] != Accept || vs[1] != Accept {
		t.Fatalf("retry after batch error = %v, %v", vs, err)
	}
}

func TestCounting(t *testing.T) {
	o := NewCounting(Func(func(s string) bool { return true }))
	for i := 0; i < 7; i++ {
		o.Accepts("x")
	}
	if o.Queries() != 7 {
		t.Fatalf("Queries = %d", o.Queries())
	}
}

func TestExecTrueFalse(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	yes := &Exec{Argv: []string{"true"}}
	no := &Exec{Argv: []string{"false"}}
	if !yes.Accepts("anything") {
		t.Fatal("true command rejected")
	}
	if no.Accepts("anything") {
		t.Fatal("false command accepted")
	}
	empty := &Exec{}
	if empty.Accepts("x") {
		t.Fatal("empty argv accepted")
	}
	// On the v2 path an empty argv is an oracle error, not a rejection.
	if _, err := empty.Check(context.Background(), "x"); err == nil {
		t.Fatal("empty argv Check returned no error")
	}
}

func TestExecReadsStdin(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	// grep -q ok: exit 0 iff stdin contains "ok".
	o := &Exec{Argv: []string{"grep", "-q", "ok"}}
	if !o.Accepts("this is ok") {
		t.Fatal("grep oracle rejected matching input")
	}
	if o.Accepts("nothing here") {
		t.Fatal("grep oracle accepted non-matching input")
	}
}

func TestExecTimeoutKillsHangingTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	// Without a timeout this would block for 30 s; the deadline must kill
	// the process and report a Timeout verdict quickly.
	o := &Exec{Argv: []string{"sleep", "30"}, Timeout: 100 * time.Millisecond}
	start := time.Now()
	v, err := o.Check(context.Background(), "x")
	if err != nil || v != Timeout {
		t.Fatalf("timed-out run = %v, %v, want timeout verdict", v, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout did not bound the run: took %v", elapsed)
	}
	// A fast run under the same timeout is unaffected.
	fast := &Exec{Argv: []string{"true"}, Timeout: 5 * time.Second}
	if !fast.Accepts("x") {
		t.Fatal("fast run under timeout rejected")
	}
}

func TestExecTimeoutInBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	o := &Exec{Argv: []string{"sh", "-c", "grep -q ok || sleep 30"}, Timeout: 150 * time.Millisecond, Workers: 4}
	got, err := o.CheckBatch(context.Background(), []string{"ok", "hang", "ok", "hang"})
	if err != nil {
		t.Fatalf("CheckBatch: %v", err)
	}
	want := []Verdict{Accept, Timeout, Accept, Timeout}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch verdict %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestExecCheckVerdicts pins the canonical verdict mapping of Exec.Check:
// exit 0 accepts, nonzero rejects, signal death crashes, deadline kill
// times out, and the error-substring convention rejects.
func TestExecCheckVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	cases := []struct {
		name string
		o    *Exec
		want Verdict
	}{
		{"accepted", &Exec{Argv: []string{"true"}}, Accept},
		{"rejected", &Exec{Argv: []string{"false"}}, Reject},
		{"timeout", &Exec{Argv: []string{"sleep", "30"}, Timeout: 100 * time.Millisecond}, Timeout},
		// A process killing itself with SIGSEGV is a crash, not a plain
		// rejection — and not a timeout, since the deadline never fired.
		{"crash", &Exec{Argv: []string{"sh", "-c", "kill -SEGV $$"}, Timeout: 10 * time.Second}, Crash},
		{"err substring", &Exec{Argv: []string{"sh", "-c", "echo parse error >&2"}, ErrSubstring: "error"}, Reject},
	}
	for _, tc := range cases {
		got, err := tc.o.Check(context.Background(), "x")
		if err != nil {
			t.Errorf("%s: Check error: %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: Check = %v, want %v", tc.name, got, tc.want)
		}
		// The deprecated Verdict shim must agree.
		if shim := tc.o.Verdict("x"); shim != tc.want {
			t.Errorf("%s: Verdict shim = %v, want %v", tc.name, shim, tc.want)
		}
	}
	// Accepts must agree with the Check verdict.
	if (&Exec{Argv: []string{"sh", "-c", "kill -SEGV $$"}}).Accepts("x") {
		t.Error("crashed run reported accepted")
	}
}

// TestExecMissingBinaryIsError is the heart of the v2 contract: an oracle
// that cannot run at all must answer with an error, never a silent Reject.
func TestExecMissingBinaryIsError(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	o := &Exec{Argv: []string{"/no/such/binary-glade-test"}}
	v, err := o.Check(context.Background(), "x")
	if err == nil {
		t.Fatalf("missing binary answered %v with no error", v)
	}
	// The legacy boolean view collapses the error to a rejection.
	if o.Accepts("x") {
		t.Fatal("missing binary reported accepted")
	}
}

// TestExecCallerCancellation distinguishes the caller giving up (an error)
// from the per-query deadline firing (a Timeout verdict).
func TestExecCallerCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("exec oracle spawns processes")
	}
	o := &Exec{Argv: []string{"sleep", "30"}, Timeout: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := o.Check(ctx, "x")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("caller-cancelled Check err = %v, want ctx deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation did not bound the run: took %v", elapsed)
	}
}
