package oracle

import (
	"context"
	"sync"
	"sync/atomic"
)

// Pool is the worker-pool BatchOracle adapter: AcceptsBatch fans queries
// out across a bounded number of goroutines, each calling the inner
// oracle's Accepts. The inner oracle must be safe for concurrent use.
type Pool struct {
	inner   Oracle
	workers int
	ctx     context.Context
}

// Parallel adapts inner into a Pool with the given worker bound. Values of
// workers below 1 are treated as 1 (sequential).
func Parallel(inner Oracle, workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{inner: inner, workers: workers, ctx: context.Background()}
}

// WithContext returns a copy of the pool that stops dispatching new queries
// once ctx is done. Queries never dispatched report false; callers that
// care should check ctx.Err afterwards. Because those falses are
// indistinguishable from genuine rejections, a context-bound pool must not
// sit under a memoizing wrapper such as Cached — the cache would store the
// cancellation artifacts permanently.
func (p *Pool) WithContext(ctx context.Context) *Pool {
	q := *p
	q.ctx = ctx
	return &q
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Accepts implements Oracle by delegating a single query to the inner
// oracle.
func (p *Pool) Accepts(input string) bool { return p.inner.Accepts(input) }

// AcceptsBatch implements BatchOracle.
func (p *Pool) AcceptsBatch(inputs []string) []bool {
	return fanOut(p.inner, p.workers, inputs, p.ctx)
}

// fanOut answers inputs through o.Accepts using at most workers concurrent
// goroutines, stopping early (remaining answers false) once ctx is done.
// A nil ctx never cancels. It is the shared engine behind Pool and the
// concurrent Exec bulk path.
func fanOut(o Oracle, workers int, inputs []string, ctx context.Context) []bool {
	out := make([]bool, len(inputs))
	n := len(inputs)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, in := range inputs {
			if ctx != nil && ctx.Err() != nil {
				break
			}
			out[i] = o.Accepts(in)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || (ctx != nil && ctx.Err() != nil) {
					return
				}
				out[i] = o.Accepts(inputs[i])
			}
		}()
	}
	wg.Wait()
	return out
}
