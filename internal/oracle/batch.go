package oracle

import (
	"context"
	"sync"
	"sync/atomic"
)

// Pool is the worker-pool BatchCheckOracle adapter: CheckBatch fans queries
// out across a bounded number of goroutines, each calling the inner
// oracle's Check. The inner oracle must be safe for concurrent use.
// Cancellation is checked inside the fan-out: once ctx is done no further
// queries are dispatched and CheckBatch returns ctx.Err().
type Pool struct {
	inner   CheckOracle
	workers int
}

// Parallel adapts inner into a Pool with the given worker bound. Values of
// workers below 1 are treated as 1 (sequential).
func Parallel(inner CheckOracle, workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{inner: inner, workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Check implements CheckOracle by delegating a single query to the inner
// oracle.
func (p *Pool) Check(ctx context.Context, input string) (Verdict, error) {
	return p.inner.Check(ctx, input)
}

// CheckBatch implements BatchCheckOracle.
func (p *Pool) CheckBatch(ctx context.Context, inputs []string) ([]Verdict, error) {
	return fanOut(ctx, p.inner, p.workers, inputs)
}

// Accepts implements the v1 Oracle contract; errors read as rejection.
func (p *Pool) Accepts(input string) bool { return legacyAccepts(p, input) }

// AcceptsBatch implements the v1 BatchOracle contract.
func (p *Pool) AcceptsBatch(inputs []string) []bool { return legacyAcceptsBatch(p, inputs) }

// fanOut answers inputs through o.Check using at most workers concurrent
// goroutines. It stops dispatching once ctx is done or any query returns an
// error, and reports the first error observed; on a non-nil error the
// verdict slice is meaningless and must be discarded. It is the shared
// engine behind Pool, the concurrent Exec bulk path, and CheckAll's
// fallback for plain CheckOracles.
func fanOut(ctx context.Context, o CheckOracle, workers int, inputs []string) ([]Verdict, error) {
	out := make([]Verdict, len(inputs))
	n := len(inputs)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, in := range inputs {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			v, err := o.Check(ctx, in)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}
	var (
		next     atomic.Int64
		stopped  atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		stopped.Store(true)
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stopped.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				v, err := o.Check(ctx, inputs[i])
				if err != nil {
					fail(err)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return out, firstErr
}
