package oracle

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"syscall"
	"time"

	"glade/internal/telemetry"
)

// This file is the fault-tolerance layer of the oracle stack. A single
// learn run or campaign issues thousands to millions of oracle queries, so
// one transient subprocess hiccup (fork failure, ENOMEM blip, momentary
// file-descriptor exhaustion) must not abort hours of work. Resilient
// retries exactly the errors that are worth retrying — never a domain
// Verdict, which would perturb the learner's decisions and break the
// byte-identical-grammar guarantee — and a circuit breaker stops hammering
// an oracle that is failing consistently.

// ErrBreakerOpen is returned (wrapped) when the circuit breaker is open
// and the call was rejected without reaching the inner oracle. It is
// classified as transient: the breaker may close after its cooldown.
var ErrBreakerOpen = errors.New("oracle: circuit breaker open")

// transientError marks a wrapped error as transient for IsTransient.
type transientError struct{ err error }

// Error returns the wrapped error's message unchanged.
func (e *transientError) Error() string { return e.err.Error() }

// Unwrap exposes the wrapped error to errors.Is/As.
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient wraps err so that IsTransient reports true for it (and
// for any error wrapping it). A nil err returns nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// transientErrnos are process-spawn and resource-exhaustion conditions
// that typically clear on their own: retrying is worthwhile. Notably
// absent: "executable file not found" and permission errors, which are
// permanent misconfigurations and must abort promptly.
var transientErrnos = []syscall.Errno{
	syscall.EAGAIN, // fork/pipe: resource temporarily unavailable
	syscall.ENOMEM, // out of memory (momentary pressure)
	syscall.EMFILE, // per-process fd limit
	syscall.ENFILE, // system-wide fd limit
	syscall.EINTR,  // interrupted syscall
	syscall.ECONNRESET,
	syscall.ECONNREFUSED,
}

// IsTransient reports whether err represents a transient oracle failure
// that is worth retrying: an error marked with MarkTransient, a rejected
// call from an open circuit breaker, or a recognized resource-exhaustion
// errno from spawning an exec oracle. Context cancellation and deadline
// expiry are never transient — the caller's clock ran out, and retrying
// cannot help. Everything else (missing binary, permission denied, a bug
// in an in-process oracle) is permanent and aborts the caller.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var te *transientError
	if errors.As(err, &te) {
		return true
	}
	if errors.Is(err, ErrBreakerOpen) {
		return true
	}
	for _, errno := range transientErrnos {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// RetryPolicy bounds how a Resilient oracle retries transient errors.
// The zero value disables retries (a single attempt per query).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per query, including
	// the first. Values <= 1 mean no retries.
	MaxAttempts int
	// BaseDelay is the cap of the first backoff window. Each subsequent
	// attempt doubles the cap, and the actual sleep is drawn uniformly
	// from [0, cap) ("full jitter"). Defaults to 5ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff window growth. Defaults to 1s.
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// BreakerPolicy configures the per-oracle circuit breaker. The zero
// value disables the breaker.
type BreakerPolicy struct {
	// Threshold is the number of consecutive transient failures that
	// opens the breaker. Values <= 0 disable the breaker.
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// single half-open probe. Defaults to 500ms.
	Cooldown time.Duration
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Cooldown <= 0 {
		p.Cooldown = 500 * time.Millisecond
	}
	return p
}

// ResilientMetrics carries the telemetry instruments a Resilient oracle
// updates. All fields are optional; a nil ResilientMetrics disables
// instrumentation entirely.
type ResilientMetrics struct {
	// Retries counts retry attempts (attempts beyond the first per query).
	Retries *telemetry.Counter
	// BreakerOpens counts transitions into the open state.
	BreakerOpens *telemetry.Counter
	// BreakerState gauges the current state: 0 closed, 1 half-open, 2 open.
	BreakerState *telemetry.Gauge
}

// NewResilientMetrics registers the standard resilience instruments
// (glade_oracle_retries_total, glade_oracle_breaker_opens_total,
// glade_oracle_breaker_state) on reg with the given labels.
func NewResilientMetrics(reg *telemetry.Registry, labels ...telemetry.Label) *ResilientMetrics {
	return &ResilientMetrics{
		Retries:      reg.Counter("glade_oracle_retries_total", "Oracle query retry attempts after transient failures.", labels...),
		BreakerOpens: reg.Counter("glade_oracle_breaker_opens_total", "Circuit breaker transitions into the open state.", labels...),
		BreakerState: reg.Gauge("glade_oracle_breaker_state", "Circuit breaker state: 0 closed, 1 half-open, 2 open.", labels...),
	}
}

// Breaker states. Half-open exists only while a single probe is in
// flight: the probe's outcome immediately resolves to closed or open.
const (
	breakerClosed = iota
	breakerHalfOpen
	breakerOpen
)

// ResilientOptions configures NewResilient.
type ResilientOptions struct {
	// Retry bounds transient-error retries. Zero value: no retries.
	Retry RetryPolicy
	// Breaker configures the circuit breaker. Zero value: disabled.
	Breaker BreakerPolicy
	// Workers sets the fan-out width of CheckBatch (default 1). The
	// batch path must run through Resilient.Check — not the inner
	// oracle's own batch path — so every query gets the retry loop.
	Workers int
	// Metrics, when non-nil, receives retry and breaker telemetry.
	Metrics *ResilientMetrics
	// JitterSeed seeds the backoff jitter source (0 means 1). Jitter
	// affects only timing, never results, so any seed preserves
	// grammar determinism.
	JitterSeed int64
}

// Resilient wraps a CheckOracle with bounded retries and a circuit
// breaker. Domain verdicts — including Crash and Timeout — pass through
// untouched on the first attempt; only transient *errors* (per
// IsTransient) are retried, with full-jitter exponential backoff that
// respects ctx cancellation and deadlines. Permanent errors return
// immediately. A panic in the inner oracle is contained and surfaces as
// a transient error rather than unwinding a worker goroutine.
//
// The breaker counts consecutive transient failures; at the configured
// threshold it opens and fails calls fast with ErrBreakerOpen until the
// cooldown elapses, then admits exactly one half-open probe. A
// successful probe closes the breaker; a failed probe re-opens it.
type Resilient struct {
	inner   CheckOracle
	retry   RetryPolicy
	breaker BreakerPolicy
	met     *ResilientMetrics
	workers int

	rngMu sync.Mutex
	rng   *rand.Rand

	mu           sync.Mutex
	state        int
	failures     int // consecutive transient failures while closed
	openedAt     time.Time
	retries      uint64
	breakerOpens uint64
}

// NewResilient wraps inner with the retry and breaker behavior described
// on Resilient.
func NewResilient(inner CheckOracle, opt ResilientOptions) *Resilient {
	seed := opt.JitterSeed
	if seed == 0 {
		seed = 1
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	return &Resilient{
		inner:   inner,
		retry:   opt.Retry.withDefaults(),
		breaker: opt.Breaker.withDefaults(),
		met:     opt.Metrics,
		workers: workers,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Unwrap returns the wrapped oracle, letting callers inspect the
// underlying stack (e.g. to detect an exec oracle for crash triage).
func (r *Resilient) Unwrap() CheckOracle { return r.inner }

// Innermost strips every wrapper exposing Unwrap() CheckOracle and
// returns the base oracle.
func Innermost(o CheckOracle) CheckOracle {
	for {
		u, ok := o.(interface{ Unwrap() CheckOracle })
		if !ok {
			return o
		}
		o = u.Unwrap()
	}
}

// ResilientStats is a snapshot of a Resilient oracle's counters.
type ResilientStats struct {
	// Retries is the number of retry attempts issued so far.
	Retries uint64
	// BreakerOpens counts transitions into the open state.
	BreakerOpens uint64
	// State is the current breaker state: "closed", "half-open" or "open".
	State string
}

// Stats returns a point-in-time snapshot of the retry and breaker
// counters.
func (r *Resilient) Stats() ResilientStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := "closed"
	switch r.state {
	case breakerHalfOpen:
		st = "half-open"
	case breakerOpen:
		st = "open"
	}
	return ResilientStats{Retries: r.retries, BreakerOpens: r.breakerOpens, State: st}
}

// Check implements CheckOracle with the retry/breaker loop. A verdict
// (nil error) always returns immediately — retries can only happen after
// an error, so wrapping an oracle in Resilient never changes the verdict
// stream a learner observes.
func (r *Resilient) Check(ctx context.Context, input string) (Verdict, error) {
	if err := ctx.Err(); err != nil {
		return Reject, err
	}
	maxAttempts := r.retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		v, err := r.attempt(ctx, input)
		if err == nil {
			return v, nil
		}
		if !IsTransient(err) {
			return Reject, err
		}
		lastErr = err
		if attempt >= maxAttempts {
			break
		}
		if serr := r.backoff(ctx, attempt, err); serr != nil {
			// The caller's context expired while backing off; the
			// context error dominates so cancellation propagates
			// exactly as it would from the inner oracle.
			return Reject, serr
		}
		r.countRetry()
	}
	if maxAttempts == 1 {
		return Reject, lastErr
	}
	return Reject, fmt.Errorf("oracle: %d attempts failed: %w", maxAttempts, lastErr)
}

// attempt runs one guarded call: breaker admission, panic containment,
// and breaker bookkeeping on the outcome.
func (r *Resilient) attempt(ctx context.Context, input string) (v Verdict, err error) {
	if err := r.admit(); err != nil {
		return Reject, err
	}
	defer func() {
		if p := recover(); p != nil {
			v, err = Reject, MarkTransient(fmt.Errorf("oracle: panic in oracle: %v", p))
		}
		r.onResult(err)
	}()
	return r.inner.Check(ctx, input)
}

// admit applies the breaker gate. In the open state calls fail fast
// until the cooldown elapses; the first call after cooldown becomes the
// single half-open probe and everyone else keeps failing fast until the
// probe resolves.
func (r *Resilient) admit() error {
	if r.breaker.Threshold <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case breakerClosed:
		return nil
	case breakerHalfOpen:
		// A probe is already in flight; fail fast.
		return fmt.Errorf("oracle: probe in flight: %w", ErrBreakerOpen)
	default: // breakerOpen
		if wait := r.breaker.Cooldown - time.Since(r.openedAt); wait > 0 {
			return fmt.Errorf("oracle: cooling down for %v: %w", wait.Round(time.Millisecond), ErrBreakerOpen)
		}
		r.setStateLocked(breakerHalfOpen)
		return nil
	}
}

// onResult updates breaker state from a call outcome. Only transient
// errors count as failures: a permanent error aborts the caller anyway,
// and tripping the breaker on it would just mask the real error from
// concurrent callers.
func (r *Resilient) onResult(err error) {
	if r.breaker.Threshold <= 0 {
		return
	}
	if err != nil && errors.Is(err, ErrBreakerOpen) {
		return // breaker rejections don't feed back into the breaker
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err == nil || !IsTransient(err) {
		r.failures = 0
		if r.state != breakerClosed {
			r.setStateLocked(breakerClosed)
		}
		return
	}
	switch r.state {
	case breakerHalfOpen:
		// The probe failed: back to open, restart the cooldown clock.
		r.openLocked()
	case breakerClosed:
		r.failures++
		if r.failures >= r.breaker.Threshold {
			r.openLocked()
		}
	}
}

func (r *Resilient) openLocked() {
	r.setStateLocked(breakerOpen)
	r.openedAt = time.Now()
	r.failures = 0
	r.breakerOpens++
	if r.met != nil && r.met.BreakerOpens != nil {
		r.met.BreakerOpens.Inc()
	}
}

func (r *Resilient) setStateLocked(state int) {
	r.state = state
	if r.met != nil && r.met.BreakerState != nil {
		var v float64
		switch state {
		case breakerHalfOpen:
			v = 1
		case breakerOpen:
			v = 2
		}
		r.met.BreakerState.Set(v)
	}
}

func (r *Resilient) countRetry() {
	r.mu.Lock()
	r.retries++
	r.mu.Unlock()
	if r.met != nil && r.met.Retries != nil {
		r.met.Retries.Inc()
	}
}

// backoff sleeps before the next attempt: full-jitter exponential
// backoff, except that breaker rejections wait out the remaining
// cooldown instead (plus jitter) so a retry budget is not burned
// hammering an open breaker. The sleep aborts as soon as ctx is done.
func (r *Resilient) backoff(ctx context.Context, attempt int, cause error) error {
	window := r.retry.BaseDelay << (attempt - 1)
	if window <= 0 || window > r.retry.MaxDelay {
		window = r.retry.MaxDelay
	}
	d := r.jitter(window)
	if errors.Is(cause, ErrBreakerOpen) {
		r.mu.Lock()
		if r.state == breakerOpen {
			if wait := r.breaker.Cooldown - time.Since(r.openedAt); wait > d {
				d = wait + r.jitterUnlockedSafe(r.retry.BaseDelay)
			}
		}
		r.mu.Unlock()
	}
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// jitter draws uniformly from [0, window).
func (r *Resilient) jitter(window time.Duration) time.Duration {
	if window <= 0 {
		return 0
	}
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	return time.Duration(r.rng.Int63n(int64(window)))
}

// jitterUnlockedSafe is jitter for call sites already holding r.mu; the
// jitter source has its own lock, so this is safe — the name just
// documents that r.mu and rngMu never nest the other way.
func (r *Resilient) jitterUnlockedSafe(window time.Duration) time.Duration {
	return r.jitter(window)
}

// CheckBatch fans the batch out over the configured worker count, with
// every query going through the retry/breaker loop. It deliberately does
// not delegate to the inner oracle's own batch path, which would bypass
// the retry loop.
func (r *Resilient) CheckBatch(ctx context.Context, inputs []string) ([]Verdict, error) {
	return fanOut(ctx, r, r.workers, inputs)
}

// Accepts implements the legacy boolean Oracle interface.
func (r *Resilient) Accepts(input string) bool { return legacyAccepts(r, input) }

// AcceptsBatch implements the legacy boolean BatchOracle interface.
func (r *Resilient) AcceptsBatch(inputs []string) []bool { return legacyAcceptsBatch(r, inputs) }
