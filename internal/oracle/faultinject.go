package oracle

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// FaultInjector is a chaos wrapper for tests and the chaos-smoke CI job:
// it injects faults into an otherwise healthy oracle on a deterministic,
// seed-derived schedule. Determinism is the point — fault decisions are
// keyed on hash(seed, input, per-input attempt index), not on call
// order, so the same seed produces the same fault schedule regardless of
// goroutine interleaving, and a retry of the same input advances the
// attempt index so it can succeed where the first attempt was failed.
//
// Four fault kinds are supported, checked in this order per attempt:
// hang-until-ctx, panic, transient error, added latency. Injected errors
// are marked transient (MarkTransient), so a Resilient wrapper above the
// injector retries them; verdicts from surviving calls pass through
// untouched, which is what lets the chaos smoke assert byte-identical
// grammars under fault injection.
type FaultInjector struct {
	inner CheckOracle
	opt   FaultOptions

	mu       sync.Mutex
	attempts map[string]uint64
	injected uint64
}

// FaultOptions configures a FaultInjector. All rates are probabilities
// in [0, 1] evaluated independently per attempt.
type FaultOptions struct {
	// Seed derives the deterministic fault schedule (0 means 1).
	Seed int64
	// TransientRate is the probability an attempt fails with an
	// injected transient error.
	TransientRate float64
	// LatencyRate is the probability an attempt is delayed by Latency
	// before reaching the inner oracle.
	LatencyRate float64
	// Latency is the injected delay (default 1ms when LatencyRate > 0).
	Latency time.Duration
	// HangRate is the probability an attempt blocks until ctx is done
	// and returns ctx.Err().
	HangRate float64
	// PanicRate is the probability an attempt panics, exercising panic
	// containment in the layers above.
	PanicRate float64
}

// NewFaultInjector wraps inner with deterministic fault injection.
func NewFaultInjector(inner CheckOracle, opt FaultOptions) *FaultInjector {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Latency <= 0 {
		opt.Latency = time.Millisecond
	}
	return &FaultInjector{
		inner:    inner,
		opt:      opt,
		attempts: make(map[string]uint64),
	}
}

// Unwrap returns the wrapped oracle.
func (f *FaultInjector) Unwrap() CheckOracle { return f.inner }

// Injected reports how many faults (of any kind) have been injected.
func (f *FaultInjector) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// roll returns a deterministic pseudo-uniform value in [0, 1) for the
// given input, attempt index, and fault-kind salt. The hash folds the
// configured Seed, so the schedule is stable across processes and
// goroutine interleavings.
func (f *FaultInjector) roll(salt string, input string, attempt uint64) float64 {
	// FNV-1a over the decision tuple: stable across processes, cheap,
	// and well-mixed enough for fault scheduling.
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	for i := 0; i < 8; i++ {
		mix(byte(uint64(f.opt.Seed) >> (8 * i)))
	}
	for i := 0; i < len(salt); i++ {
		mix(salt[i])
	}
	mix(0)
	for i := 0; i < len(input); i++ {
		mix(input[i])
	}
	mix(0)
	for i := 0; i < 8; i++ {
		mix(byte(attempt >> (8 * i)))
	}
	return float64(h>>11) / float64(1<<53)
}

// nextAttempt returns this call's attempt index for input (0-based) and
// bumps the counter.
func (f *FaultInjector) nextAttempt(input string) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.attempts[input]
	f.attempts[input] = n + 1
	return n
}

func (f *FaultInjector) countInjected() {
	f.mu.Lock()
	f.injected++
	f.mu.Unlock()
}

// Check implements CheckOracle, injecting scheduled faults before
// delegating to the inner oracle.
func (f *FaultInjector) Check(ctx context.Context, input string) (Verdict, error) {
	attempt := f.nextAttempt(input)
	if f.opt.HangRate > 0 && f.roll("hang", input, attempt) < f.opt.HangRate {
		f.countInjected()
		<-ctx.Done()
		return Reject, ctx.Err()
	}
	if f.opt.PanicRate > 0 && f.roll("panic", input, attempt) < f.opt.PanicRate {
		f.countInjected()
		panic(fmt.Sprintf("faultinject: scheduled panic (input %q attempt %d)", input, attempt))
	}
	if f.opt.TransientRate > 0 && f.roll("transient", input, attempt) < f.opt.TransientRate {
		f.countInjected()
		return Reject, MarkTransient(fmt.Errorf("faultinject: scheduled transient fault (input %q attempt %d)", input, attempt))
	}
	if f.opt.LatencyRate > 0 && f.roll("latency", input, attempt) < f.opt.LatencyRate {
		f.countInjected()
		timer := time.NewTimer(f.opt.Latency)
		defer timer.Stop()
		select {
		case <-ctx.Done():
			return Reject, ctx.Err()
		case <-timer.C:
		}
	}
	return f.inner.Check(ctx, input)
}

// Accepts implements the legacy boolean Oracle interface.
func (f *FaultInjector) Accepts(input string) bool { return legacyAccepts(f, input) }
