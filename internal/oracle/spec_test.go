package oracle

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// registerSpecTestOracles installs fake named oracles for spec tests
// without importing the real registry (which would create an import
// cycle). The fake builtin accepts inputs containing "ok".
var registerSpecTestOracles = sync.OnceFunc(func() {
	RegisterNamed(Registration{
		Kind: SpecBuiltin, Name: "spec-test", Description: "spec test fake",
		Seeds: []string{"ok", "ok ok"},
		New: func(timeout time.Duration, workers int) CheckOracle {
			return Func(func(s string) bool { return strings.Contains(s, "ok") })
		},
	})
	RegisterNamed(Registration{
		Kind: SpecProgram, Name: "spec-test-prog", Description: "spec test fake program",
		New: func(timeout time.Duration, workers int) CheckOracle {
			return Func(func(s string) bool { return s == "prog" })
		},
	})
})

// TestSpecRoundTrip drives specs of every kind through the three
// surfaces that must agree: JSON encode/decode (HTTP and the on-disk
// store), the CLI flag grammar (ParseSpec/String), and Build.
func TestSpecRoundTrip(t *testing.T) {
	registerSpecTestOracles()
	cases := []struct {
		name   string
		spec   Spec
		flag   string // CLI form; "" = skip the flag leg (not representable)
		json   string // canonical wire form
		accept string // an input the built oracle accepts
		reject string
	}{
		{
			name:   "builtin",
			spec:   Spec{Type: SpecBuiltin, Name: "spec-test"},
			flag:   "builtin:spec-test",
			json:   `{"type":"builtin","name":"spec-test"}`,
			accept: "ok then", reject: "no",
		},
		{
			name:   "program",
			spec:   Spec{Type: SpecProgram, Name: "spec-test-prog"},
			flag:   "program:spec-test-prog",
			json:   `{"type":"program","name":"spec-test-prog"}`,
			accept: "prog", reject: "x",
		},
		{
			name:   "exec",
			spec:   Spec{Type: SpecExec, Argv: []string{"grep", "-q", "ok"}},
			flag:   "exec:grep -q ok",
			json:   `{"type":"exec","argv":["grep","-q","ok"]}`,
			accept: "ok", reject: "no",
		},
		{
			name: "exec with timeout",
			spec: Spec{Type: SpecExec, Argv: []string{"true"}, TimeoutMS: 1500},
			flag: "exec:true",
			json: `{"type":"exec","argv":["true"],"timeout_ms":1500}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// JSON leg: marshal is canonical, unmarshal inverts it.
			data, err := json.Marshal(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != tc.json {
				t.Errorf("Marshal = %s, want %s", data, tc.json)
			}
			var back Spec
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(back, tc.spec) {
				t.Errorf("JSON round trip: %+v != %+v", back, tc.spec)
			}

			// CLI leg: String renders the flag form, ParseSpec inverts it.
			// TimeoutMS is not representable in the flag grammar, so compare
			// the flag-visible fields only.
			if tc.flag != "" {
				parsed, err := ParseSpec(tc.spec.String())
				if err != nil {
					t.Fatalf("ParseSpec(%q): %v", tc.spec.String(), err)
				}
				if tc.spec.String() != tc.flag {
					t.Errorf("String() = %q, want %q", tc.spec.String(), tc.flag)
				}
				if parsed.Type != tc.spec.Type || parsed.Name != tc.spec.Name ||
					!reflect.DeepEqual(parsed.Argv, tc.spec.Argv) {
					t.Errorf("CLI round trip: %+v != %+v", parsed, tc.spec)
				}
			}

			// Build leg: the spec resolves and the oracle answers.
			o, _, err := tc.spec.Build(BuildOptions{})
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if tc.accept != "" {
				if v, err := o.Check(context.Background(), tc.accept); err != nil || v != Accept {
					t.Errorf("Check(%q) = %v, %v; want Accept", tc.accept, v, err)
				}
				if v, err := o.Check(context.Background(), tc.reject); err != nil || v == Accept {
					t.Errorf("Check(%q) = %v, %v; want a rejection", tc.reject, v, err)
				}
			}
		})
	}
}

// TestSpecLegacyJSON checks the pre-registry wire shapes still decode:
// old clients and stored GrammarMeta use {"program": ...} etc.
func TestSpecLegacyJSON(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{`{"program":"sed"}`, Spec{Type: SpecProgram, Name: "sed"}},
		{`{"target":"xml"}`, Spec{Type: SpecTarget, Name: "xml"}},
		{`{"exec":["python3","-"],"timeout_ms":100}`,
			Spec{Type: SpecExec, Argv: []string{"python3", "-"}, TimeoutMS: 100}},
	}
	for _, tc := range cases {
		var got Spec
		if err := json.Unmarshal([]byte(tc.in), &got); err != nil {
			t.Errorf("Unmarshal(%s): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Unmarshal(%s) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// TestSpecJSONRejects checks the decoder still rejects malformed specs:
// unknown keys (HTTP strictness) and naming two oracles at once.
func TestSpecJSONRejects(t *testing.T) {
	for _, in := range []string{
		`{"progarm":"sed"}`,                  // typo key
		`{"program":"sed","target":"xml"}`,   // two legacy oracles
		`{"program":"sed","type":"exec"}`,    // legacy + canonical
		`{"exec":["true"],"argv":["false"]}`, // legacy + canonical argv
	} {
		var sp Spec
		if err := json.Unmarshal([]byte(in), &sp); err == nil {
			t.Errorf("Unmarshal(%s) succeeded as %+v, want error", in, sp)
		}
	}
}

// TestParseSpecForms covers the flag grammar corners: bare registered
// names, whitespace commands, and malformed specs.
func TestParseSpecForms(t *testing.T) {
	registerSpecTestOracles()
	good := []struct {
		in   string
		want Spec
	}{
		{"spec-test", Spec{Type: SpecBuiltin, Name: "spec-test"}},
		{"spec-test-prog", Spec{Type: SpecProgram, Name: "spec-test-prog"}},
		{"python3 -", Spec{Type: SpecExec, Argv: []string{"python3", "-"}}},
		{"exec:jq .", Spec{Type: SpecExec, Argv: []string{"jq", "."}}},
		{" builtin:spec-test ", Spec{Type: SpecBuiltin, Name: "spec-test"}},
	}
	for _, tc := range good {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	for _, in := range []string{"", "no-such-oracle", "builtin:", "exec:", "builtin:two words"} {
		if sp, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) succeeded as %+v, want error", in, sp)
		}
	}
}

// TestSpecValidate covers the malformed-spec cases Build must refuse
// before consulting the registry.
func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{},
		{Type: "weird", Name: "x"},
		{Type: SpecBuiltin},
		{Type: SpecBuiltin, Name: "json", Argv: []string{"x"}},
		{Type: SpecExec},
		{Type: SpecExec, Argv: []string{"true"}, Name: "x"},
	}
	for _, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", sp)
		}
		if _, _, err := sp.Build(BuildOptions{}); err == nil {
			t.Errorf("Build(%+v) succeeded, want error", sp)
		}
	}
	if _, _, err := (Spec{Type: SpecBuiltin, Name: "definitely-unregistered"}).Build(BuildOptions{}); err == nil {
		t.Error("Build with unregistered name succeeded")
	}
}

// TestSpecBuildTimeouts checks TimeoutMS beats BuildOptions.DefaultTimeout
// and the default applies when the spec is silent.
func TestSpecBuildTimeouts(t *testing.T) {
	sp := Spec{Type: SpecExec, Argv: []string{"true"}, TimeoutMS: 250}
	o, _, err := sp.Build(BuildOptions{DefaultTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.(*Exec).Timeout; got != 250*time.Millisecond {
		t.Fatalf("spec timeout not honored: %v", got)
	}
	sp.TimeoutMS = 0
	o, _, err = sp.Build(BuildOptions{DefaultTimeout: 5 * time.Second, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	ex := o.(*Exec)
	if ex.Timeout != 5*time.Second || ex.Workers != 3 {
		t.Fatalf("defaults not applied: timeout=%v workers=%d", ex.Timeout, ex.Workers)
	}
}
