package oracle

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// The spec types. A Spec names its oracle with exactly one of these in
// Type; the three named kinds resolve through the process-wide
// registration table (populated by internal/oracle/registry), while exec
// builds an external-command oracle from Argv.
const (
	// SpecBuiltin selects a registered in-process oracle over a pure-Go
	// target (encoding/json, net/url, go/parser, ...). Builtins run inside
	// the server process, so they need no exec gating.
	SpecBuiltin = "builtin"
	// SpecProgram selects a §8.3 simulated program (sed, flex, xml, ...).
	SpecProgram = "program"
	// SpecTarget selects a §8.2 evaluation language (url, grep, lisp, xml).
	SpecTarget = "target"
	// SpecExec selects an external command run per query: input on stdin,
	// valid iff exit status 0. Exec specs execute caller-chosen argv, so
	// services gate them behind explicit operator opt-in.
	SpecExec = "exec"
)

// Spec is the one oracle-construction description shared by every
// consumer: the four CLIs (-oracle), the glade facade (OracleSpec), the
// HTTP API (POST /v1/jobs, /v1/campaigns), and stored grammar metadata.
// Exactly one oracle is named: Type selects the kind, Name the registered
// oracle for the three named kinds, Argv the command for exec.
//
// The JSON form is {"type": "builtin", "name": "json"} and so on; the
// pre-registry wire shape ({"program": "sed"}, {"target": "xml"},
// {"exec": [...]}) is still accepted on decode and normalized, so stored
// metadata and old clients keep working.
type Spec struct {
	// Type is one of SpecBuiltin, SpecProgram, SpecTarget, SpecExec.
	Type string `json:"type,omitempty"`
	// Name is the registered oracle name for the named kinds.
	Name string `json:"name,omitempty"`
	// Argv is the exec command, e.g. {"python3", "-"}.
	Argv []string `json:"argv,omitempty"`
	// ErrSubstring marks exec inputs invalid when stderr contains it even
	// on exit status 0 (the paper's "program prints an error" signal).
	ErrSubstring string `json:"err_substring,omitempty"`
	// TimeoutMS bounds each query; zero uses the builder's default. For
	// exec oracles a hanging run is killed (VerdictTimeout); builtins get
	// the same guard from the registry wrapper.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// specWire is Spec's decode shape: the canonical fields plus the legacy
// aliases of the pre-registry service.OracleSpec wire format.
type specWire struct {
	Type         string   `json:"type"`
	Name         string   `json:"name"`
	Argv         []string `json:"argv"`
	ErrSubstring string   `json:"err_substring"`
	TimeoutMS    int      `json:"timeout_ms"`
	// Legacy aliases: {"program": "sed"}, {"target": "xml"},
	// {"exec": ["python3", "-"]}.
	Program string   `json:"program"`
	Target  string   `json:"target"`
	Exec    []string `json:"exec"`
}

// UnmarshalJSON decodes the canonical shape or the legacy aliases,
// normalizing either into the canonical fields. Unknown keys are rejected
// so HTTP-layer strictness survives the custom decoder; naming an oracle
// through both shapes at once is an error.
func (sp *Spec) UnmarshalJSON(data []byte) error {
	var w specWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return err
	}
	legacy := 0
	if w.Program != "" {
		legacy++
	}
	if w.Target != "" {
		legacy++
	}
	if len(w.Exec) > 0 {
		legacy++
	}
	if legacy > 1 || (legacy == 1 && (w.Type != "" || w.Name != "" || len(w.Argv) > 0)) {
		return fmt.Errorf("oracle spec names more than one oracle")
	}
	switch {
	case w.Program != "":
		w.Type, w.Name = SpecProgram, w.Program
	case w.Target != "":
		w.Type, w.Name = SpecTarget, w.Target
	case len(w.Exec) > 0:
		w.Type, w.Argv = SpecExec, w.Exec
	}
	*sp = Spec{Type: w.Type, Name: w.Name, Argv: w.Argv,
		ErrSubstring: w.ErrSubstring, TimeoutMS: w.TimeoutMS}
	return nil
}

// Validate reports whether the spec names exactly one buildable oracle.
// It does not consult the registration table — an unknown name fails at
// Build, a malformed spec fails here.
func (sp Spec) Validate() error {
	switch sp.Type {
	case SpecBuiltin, SpecProgram, SpecTarget:
		if sp.Name == "" {
			return fmt.Errorf("oracle spec: %s oracle needs a name", sp.Type)
		}
		if len(sp.Argv) > 0 {
			return fmt.Errorf("oracle spec: %s oracle cannot carry argv", sp.Type)
		}
		return nil
	case SpecExec:
		if len(sp.Argv) == 0 {
			return fmt.Errorf("oracle spec: exec oracle needs argv")
		}
		if sp.Name != "" {
			return fmt.Errorf("oracle spec: exec oracle cannot carry a name")
		}
		return nil
	case "":
		return fmt.Errorf("oracle spec is empty: set type to one of builtin, program, target, exec")
	default:
		return fmt.Errorf("oracle spec: unknown type %q (want builtin, program, target, or exec)", sp.Type)
	}
}

// IsExec reports whether the spec runs an external command — the property
// services gate behind -allow-exec. Every named kind runs in-process.
func (sp Spec) IsExec() bool { return sp.Type == SpecExec }

// String renders the spec in its CLI flag form: "builtin:json",
// "program:sed", "target:xml", "exec:python3 -", or "none" for the zero
// Spec. ParseSpec inverts it.
func (sp Spec) String() string {
	switch sp.Type {
	case SpecBuiltin, SpecProgram, SpecTarget:
		return sp.Type + ":" + sp.Name
	case SpecExec:
		return SpecExec + ":" + strings.Join(sp.Argv, " ")
	}
	return "none"
}

// ParseSpec parses the CLI flag form of a Spec:
//
//	builtin:json          a registered in-process oracle
//	program:sed           a §8.3 simulated program
//	target:xml            a §8.2 evaluation language
//	exec:python3 -        an external command (argv split on whitespace)
//	json                  bare names resolve against the registration
//	                      table (builtin first, then program, then target)
//	python3 -c '...'      anything else containing whitespace is an exec
//	                      command (single-word commands need the exec: prefix)
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, fmt.Errorf("empty oracle spec")
	}
	if kind, rest, ok := strings.Cut(s, ":"); ok {
		switch kind {
		case SpecBuiltin, SpecProgram, SpecTarget:
			if rest == "" || strings.ContainsAny(rest, " \t") {
				return Spec{}, fmt.Errorf("oracle spec %q: want %s:NAME", s, kind)
			}
			return Spec{Type: kind, Name: rest}, nil
		case SpecExec:
			argv := strings.Fields(rest)
			if len(argv) == 0 {
				return Spec{}, fmt.Errorf("oracle spec %q: want exec:CMD [ARGS...]", s)
			}
			return Spec{Type: SpecExec, Argv: argv}, nil
		}
	}
	if strings.ContainsAny(s, " \t") {
		return Spec{Type: SpecExec, Argv: strings.Fields(s)}, nil
	}
	for _, kind := range []string{SpecBuiltin, SpecProgram, SpecTarget} {
		if _, ok := LookupNamed(kind, s); ok {
			return Spec{Type: kind, Name: s}, nil
		}
	}
	return Spec{}, fmt.Errorf("unknown oracle %q: use builtin:NAME, program:NAME, target:NAME, or exec:CMD (GET /v1/oracles or the README table list the names)", s)
}

// BuildOptions parameterizes Spec.Build with the caller's environment;
// the zero value is usable.
type BuildOptions struct {
	// Workers bounds the concurrent bulk path of oracles that own one
	// (exec subprocess fan-out). Values below 1 mean sequential.
	Workers int
	// DefaultTimeout bounds each query when the spec sets no TimeoutMS;
	// zero leaves queries bounded only by the caller's context.
	DefaultTimeout time.Duration
	// Retry, when MaxAttempts > 1, wraps the built oracle in a Resilient
	// layer retrying transient errors with full-jitter backoff.
	Retry RetryPolicy
	// Breaker, when Threshold > 0, adds a per-oracle circuit breaker to
	// the Resilient layer (implied even if Retry is zero).
	Breaker BreakerPolicy
	// ResilientMetrics, when non-nil, instruments the Resilient layer.
	ResilientMetrics *ResilientMetrics
}

// resilient reports whether the options ask for the Resilient wrapper.
func (opt BuildOptions) resilient() bool {
	return opt.Retry.MaxAttempts > 1 || opt.Breaker.Threshold > 0
}

// wrap applies the Resilient layer to a freshly built oracle when the
// options ask for one.
func (opt BuildOptions) wrap(o CheckOracle) CheckOracle {
	if !opt.resilient() {
		return o
	}
	return NewResilient(o, ResilientOptions{
		Retry:   opt.Retry,
		Breaker: opt.Breaker,
		Workers: opt.Workers,
		Metrics: opt.ResilientMetrics,
	})
}

// Build resolves the spec into a CheckOracle plus the oracle's bundled
// seed inputs (nil for exec oracles). Named kinds resolve through the
// registration table — import internal/oracle/registry (the facade and
// the CLIs do) to have the builtin, program, and target oracles
// registered. Build is cheap; callers rebuild freely rather than holding
// oracles as live resources.
func (sp Spec) Build(opt BuildOptions) (CheckOracle, []string, error) {
	if err := sp.Validate(); err != nil {
		return nil, nil, err
	}
	timeout := opt.DefaultTimeout
	if sp.TimeoutMS > 0 {
		timeout = time.Duration(sp.TimeoutMS) * time.Millisecond
	}
	if sp.Type == SpecExec {
		return opt.wrap(&Exec{Argv: sp.Argv, ErrSubstring: sp.ErrSubstring, Workers: opt.Workers, Timeout: timeout}), nil, nil
	}
	reg, ok := LookupNamed(sp.Type, sp.Name)
	if !ok {
		return nil, nil, fmt.Errorf("unknown %s oracle %q%s", sp.Type, sp.Name, nameHint(sp.Type))
	}
	return opt.wrap(reg.New(timeout, opt.Workers)), reg.Seeds, nil
}

// Registration describes one named oracle in the process-wide table:
// which kind and name a Spec selects it by, a human-readable description
// (GET /v1/oracles, README tables), bundled seed inputs for learning
// without explicit seeds, and the constructor Build calls.
type Registration struct {
	// Kind is SpecBuiltin, SpecProgram, or SpecTarget.
	Kind string
	// Name is the spec name within the kind ("json", "sed", ...).
	Name string
	// Description is one human-readable line about the oracle.
	Description string
	// Seeds are bundled example inputs, all accepted by the oracle; they
	// default a learn request's seed set.
	Seeds []string
	// New builds the oracle. timeout bounds each query (zero = unbounded);
	// workers sizes a concurrent bulk path for oracles that own one.
	New func(timeout time.Duration, workers int) CheckOracle
}

// named is the registration table; the registry package fills it at init.
var (
	namedMu sync.RWMutex
	named   = map[string]Registration{}
)

func namedKey(kind, name string) string { return kind + ":" + name }

// RegisterNamed adds one named oracle to the table Spec.Build resolves
// against. It panics on a duplicate (kind, name) or an invalid
// registration — registration is init-time wiring, not input handling.
func RegisterNamed(r Registration) {
	if r.Name == "" || r.New == nil {
		panic("oracle: RegisterNamed with empty name or nil constructor")
	}
	switch r.Kind {
	case SpecBuiltin, SpecProgram, SpecTarget:
	default:
		panic("oracle: RegisterNamed with kind " + r.Kind)
	}
	key := namedKey(r.Kind, r.Name)
	namedMu.Lock()
	defer namedMu.Unlock()
	if _, dup := named[key]; dup {
		panic("oracle: duplicate registration " + key)
	}
	named[key] = r
}

// LookupNamed returns the registration a (kind, name) pair resolves to.
func LookupNamed(kind, name string) (Registration, bool) {
	namedMu.RLock()
	defer namedMu.RUnlock()
	r, ok := named[namedKey(kind, name)]
	return r, ok
}

// NamedOracles lists every registration, builtins first, then programs,
// then targets, each kind sorted by name — the order GET /v1/oracles and
// documentation tables present.
func NamedOracles() []Registration {
	namedMu.RLock()
	out := make([]Registration, 0, len(named))
	for _, r := range named {
		out = append(out, r)
	}
	namedMu.RUnlock()
	rank := map[string]int{SpecBuiltin: 0, SpecProgram: 1, SpecTarget: 2}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return rank[out[i].Kind] < rank[out[j].Kind]
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// nameHint lists the registered names of a kind for error messages.
func nameHint(kind string) string {
	var names []string
	for _, r := range NamedOracles() {
		if r.Kind == kind {
			names = append(names, r.Name)
		}
	}
	if len(names) == 0 {
		return " (none registered: import glade/internal/oracle/registry)"
	}
	return " (registered: " + strings.Join(names, ", ") + ")"
}
