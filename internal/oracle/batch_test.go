package oracle

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// hasA is the reference predicate the conformance suite checks against.
func hasA(s string) bool { return strings.Contains(s, "a") }

// conformanceInputs mixes members, non-members, and duplicates.
var conformanceInputs = []string{
	"abc", "xyz", "", "a", "zzz", "abc", "banana", "xyz", "qqq", "a",
}

// testBatchConformance is the shared conformance suite of the BatchOracle
// contract: the bulk path must agree with Accepts elementwise, in input
// order, including duplicates and the empty batch, and must be safe to
// call concurrently with itself and with Accepts.
func testBatchConformance(t *testing.T, name string, mk func() BatchOracle) {
	t.Run(name+"/agrees-with-accepts", func(t *testing.T) {
		o := mk()
		got := o.AcceptsBatch(conformanceInputs)
		if len(got) != len(conformanceInputs) {
			t.Fatalf("AcceptsBatch returned %d results for %d inputs", len(got), len(conformanceInputs))
		}
		for i, in := range conformanceInputs {
			if got[i] != hasA(in) {
				t.Errorf("AcceptsBatch[%d] (%q) = %v, want %v", i, in, got[i], hasA(in))
			}
		}
		for i, in := range conformanceInputs {
			if o.Accepts(in) != got[i] {
				t.Errorf("Accepts(%q) disagrees with AcceptsBatch[%d]", in, i)
			}
		}
	})
	t.Run(name+"/empty-batch", func(t *testing.T) {
		if got := mk().AcceptsBatch(nil); len(got) != 0 {
			t.Fatalf("AcceptsBatch(nil) = %v, want empty", got)
		}
	})
	t.Run(name+"/concurrent", func(t *testing.T) {
		o := mk()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				inputs := make([]string, 20)
				for i := range inputs {
					inputs[i] = fmt.Sprintf("in-%d-%d%s", g, i, strings.Repeat("a", i%2))
				}
				got := o.AcceptsBatch(inputs)
				for i, in := range inputs {
					if got[i] != hasA(in) {
						t.Errorf("concurrent AcceptsBatch(%q) = %v, want %v", in, got[i], hasA(in))
					}
				}
				if o.Accepts("abc") != true {
					t.Error("concurrent Accepts wrong")
				}
			}(g)
		}
		wg.Wait()
	})
}

func TestBatchConformance(t *testing.T) {
	mkInner := func() Oracle { return Func(hasA) }
	testBatchConformance(t, "Pool", func() BatchOracle {
		return Parallel(mkInner(), 4)
	})
	testBatchConformance(t, "Pool-seq", func() BatchOracle {
		return Parallel(mkInner(), 1)
	})
	testBatchConformance(t, "Cached", func() BatchOracle {
		return NewCached(mkInner())
	})
	testBatchConformance(t, "Cached-of-Pool", func() BatchOracle {
		return NewCached(Parallel(mkInner(), 4))
	})
	testBatchConformance(t, "Counting", func() BatchOracle {
		return NewCounting(mkInner())
	})
	testBatchConformance(t, "Counting-of-Pool", func() BatchOracle {
		return NewCounting(Parallel(mkInner(), 4))
	})
	if !testing.Short() {
		testBatchConformance(t, "Exec", func() BatchOracle {
			return &Exec{Argv: []string{"grep", "-q", "a"}, Workers: 4}
		})
	}
}

func TestAcceptsAllFallback(t *testing.T) {
	// A bare Func has no bulk path; AcceptsAll must fall back sequentially.
	got := AcceptsAll(Func(hasA), conformanceInputs)
	for i, in := range conformanceInputs {
		if got[i] != hasA(in) {
			t.Fatalf("AcceptsAll[%d] (%q) = %v, want %v", i, in, got[i], hasA(in))
		}
	}
}

// TestCachedInflightDedup exercises the race the single-mutex cache had:
// two goroutines missing on the same key must issue exactly one underlying
// query between them.
func TestCachedInflightDedup(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	inner := Func(func(s string) bool {
		calls.Add(1)
		<-release // hold every underlying query open
		return true
	})
	c := NewCached(inner)

	const waiters = 16
	var wg sync.WaitGroup
	started := make(chan struct{}, waiters)
	for g := 0; g < waiters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			if !c.Accepts("same-key") {
				t.Error("dedup returned wrong value")
			}
		}()
	}
	for g := 0; g < waiters; g++ {
		<-started
	}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("underlying queries = %d, want 1 (in-flight dedup)", n)
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != waiters-1 {
		t.Fatalf("Stats = %d hits %d misses, want %d hits 1 miss", hits, misses, waiters-1)
	}
}

// TestCachedBatchDedup checks that a batch with duplicates and overlap with
// already-cached keys issues only the novel unique queries.
func TestCachedBatchDedup(t *testing.T) {
	var calls atomic.Int64
	c := NewCached(Func(func(s string) bool {
		calls.Add(1)
		return hasA(s)
	}))
	c.Accepts("abc") // pre-cache one key
	got := c.AcceptsBatch([]string{"abc", "new-a", "xyz", "new-a", "abc"})
	want := []bool{true, true, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AcceptsBatch[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if n := calls.Load(); n != 3 { // abc, new-a, xyz — each exactly once
		t.Fatalf("underlying queries = %d, want 3", n)
	}
	hits, misses := c.Stats()
	if misses != 3 || hits != 3 {
		t.Fatalf("Stats = %d hits %d misses, want 3 hits 3 misses", hits, misses)
	}
}

// TestCachedStatsConcurrent checks hits+misses == total queries under a
// concurrent mixed load — the accuracy guarantee Stats now makes.
func TestCachedStatsConcurrent(t *testing.T) {
	c := NewCached(Func(hasA))
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Accepts(fmt.Sprintf("key-%d", i%37))
			}
		}(g)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != goroutines*per {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d", hits, misses, hits+misses, goroutines*per)
	}
	if misses != 37 {
		t.Fatalf("misses = %d, want 37 unique keys", misses)
	}
}

func TestPoolContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	p := Parallel(Func(func(s string) bool {
		if calls.Add(1) >= 4 {
			cancel()
		}
		return true
	}), 2).WithContext(ctx)
	inputs := make([]string, 1000)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("%d", i)
	}
	out := p.AcceptsBatch(inputs)
	if len(out) != len(inputs) {
		t.Fatalf("result length %d, want %d", len(out), len(inputs))
	}
	if n := calls.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop dispatch: %d calls", n)
	}
}

func TestCountingBatch(t *testing.T) {
	c := NewCounting(Func(hasA))
	c.AcceptsBatch([]string{"a", "b", "c"})
	c.Accepts("d")
	if c.Queries() != 4 {
		t.Fatalf("Queries = %d, want 4", c.Queries())
	}
}
