package oracle

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// hasA is the reference predicate the conformance suite checks against.
func hasA(s string) bool { return strings.Contains(s, "a") }

// conformanceInputs mixes members, non-members, and duplicates.
var conformanceInputs = []string{
	"abc", "xyz", "", "a", "zzz", "abc", "banana", "xyz", "qqq", "a",
}

// testBatchConformance is the shared conformance suite of the batch-oracle
// contracts: the bulk path must agree with the single path elementwise, in
// input order, including duplicates and the empty batch, and must be safe
// to call concurrently with itself and with single queries. Both the v2
// CheckBatch path and the legacy AcceptsBatch shim are exercised.
func testBatchConformance(t *testing.T, name string, mk func() BatchCheckOracle) {
	ctx := context.Background()
	t.Run(name+"/agrees-with-check", func(t *testing.T) {
		o := mk()
		got, err := o.CheckBatch(ctx, conformanceInputs)
		if err != nil {
			t.Fatalf("CheckBatch: %v", err)
		}
		if len(got) != len(conformanceInputs) {
			t.Fatalf("CheckBatch returned %d results for %d inputs", len(got), len(conformanceInputs))
		}
		for i, in := range conformanceInputs {
			want := Reject
			if hasA(in) {
				want = Accept
			}
			if got[i] != want {
				t.Errorf("CheckBatch[%d] (%q) = %v, want %v", i, in, got[i], want)
			}
		}
		for i, in := range conformanceInputs {
			v, err := o.Check(ctx, in)
			if err != nil {
				t.Fatalf("Check(%q): %v", in, err)
			}
			if v != got[i] {
				t.Errorf("Check(%q) disagrees with CheckBatch[%d]", in, i)
			}
		}
	})
	t.Run(name+"/legacy-shim-agrees", func(t *testing.T) {
		o := mk()
		legacy, ok := any(o).(BatchOracle)
		if !ok {
			t.Fatalf("%T does not keep the legacy BatchOracle shim", o)
		}
		got := legacy.AcceptsBatch(conformanceInputs)
		for i, in := range conformanceInputs {
			if got[i] != hasA(in) {
				t.Errorf("AcceptsBatch[%d] (%q) = %v, want %v", i, in, got[i], hasA(in))
			}
		}
	})
	t.Run(name+"/empty-batch", func(t *testing.T) {
		got, err := mk().CheckBatch(ctx, nil)
		if err != nil || len(got) != 0 {
			t.Fatalf("CheckBatch(nil) = %v, %v, want empty", got, err)
		}
	})
	t.Run(name+"/concurrent", func(t *testing.T) {
		o := mk()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				inputs := make([]string, 20)
				for i := range inputs {
					inputs[i] = fmt.Sprintf("in-%d-%d%s", g, i, strings.Repeat("a", i%2))
				}
				got, err := o.CheckBatch(ctx, inputs)
				if err != nil {
					t.Errorf("concurrent CheckBatch: %v", err)
					return
				}
				for i, in := range inputs {
					if got[i].Accepted() != hasA(in) {
						t.Errorf("concurrent CheckBatch(%q) = %v, want %v", in, got[i], hasA(in))
					}
				}
				if v, err := o.Check(ctx, "abc"); err != nil || v != Accept {
					t.Error("concurrent Check wrong")
				}
			}(g)
		}
		wg.Wait()
	})
}

func TestBatchConformance(t *testing.T) {
	mkInner := func() CheckOracle { return Func(hasA) }
	testBatchConformance(t, "Pool", func() BatchCheckOracle {
		return Parallel(mkInner(), 4)
	})
	testBatchConformance(t, "Pool-seq", func() BatchCheckOracle {
		return Parallel(mkInner(), 1)
	})
	testBatchConformance(t, "Cached", func() BatchCheckOracle {
		return NewCached(mkInner())
	})
	testBatchConformance(t, "Cached-of-Pool", func() BatchCheckOracle {
		return NewCached(Parallel(mkInner(), 4))
	})
	testBatchConformance(t, "Counting", func() BatchCheckOracle {
		return NewCounting(mkInner())
	})
	testBatchConformance(t, "Counting-of-Pool", func() BatchCheckOracle {
		return NewCounting(Parallel(mkInner(), 4))
	})
	if !testing.Short() {
		testBatchConformance(t, "Exec", func() BatchCheckOracle {
			return &Exec{Argv: []string{"grep", "-q", "a"}, Workers: 4}
		})
	}
}

func TestAcceptsAllFallback(t *testing.T) {
	// A bare v1 oracle has no bulk path; AcceptsAll must fall back
	// sequentially.
	got := AcceptsAll(plainBool{yes: "a"}, []string{"a", "b", "a"})
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AcceptsAll[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestCheckAllFanOut exercises CheckAll's worker fan-out fallback for plain
// CheckOracles (no bulk path of their own).
func TestCheckAllFanOut(t *testing.T) {
	o := CheckFunc(func(ctx context.Context, s string) (Verdict, error) {
		if hasA(s) {
			return Accept, nil
		}
		return Reject, nil
	})
	for _, workers := range []int{1, 4} {
		got, err := CheckAll(context.Background(), o, conformanceInputs, workers)
		if err != nil {
			t.Fatalf("CheckAll(workers=%d): %v", workers, err)
		}
		for i, in := range conformanceInputs {
			if got[i].Accepted() != hasA(in) {
				t.Fatalf("CheckAll(workers=%d)[%d] = %v, want %v", workers, i, got[i], hasA(in))
			}
		}
	}
}

// TestCachedInflightDedup exercises the race the single-mutex cache had:
// two goroutines missing on the same key must issue exactly one underlying
// query between them.
func TestCachedInflightDedup(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	inner := Func(func(s string) bool {
		calls.Add(1)
		<-release // hold every underlying query open
		return true
	})
	c := NewCached(inner)

	const waiters = 16
	var wg sync.WaitGroup
	started := make(chan struct{}, waiters)
	for g := 0; g < waiters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			if !c.Accepts("same-key") {
				t.Error("dedup returned wrong value")
			}
		}()
	}
	for g := 0; g < waiters; g++ {
		<-started
	}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("underlying queries = %d, want 1 (in-flight dedup)", n)
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != waiters-1 {
		t.Fatalf("Stats = %d hits %d misses, want %d hits 1 miss", hits, misses, waiters-1)
	}
}

// TestCachedInflightWaiterCancel checks that a caller waiting on another
// goroutine's in-flight query honors its own ctx instead of blocking until
// the owner finishes.
func TestCachedInflightWaiterCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	c := NewCached(Func(func(s string) bool {
		<-release
		return true
	}))
	owner := make(chan struct{})
	go func() {
		close(owner)
		c.Accepts("slow-key")
	}()
	<-owner
	// Give the owner a moment to register its in-flight call; then a waiter
	// with an already-expired ctx must return promptly.
	var err error
	for i := 0; i < 100; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err = c.Check(ctx, "slow-key")
		if errors.Is(err, context.Canceled) {
			return
		}
	}
	t.Fatalf("waiter never observed its cancelled ctx: last err = %v", err)
}

// TestCachedBatchDedup checks that a batch with duplicates and overlap with
// already-cached keys issues only the novel unique queries.
func TestCachedBatchDedup(t *testing.T) {
	var calls atomic.Int64
	c := NewCached(Func(func(s string) bool {
		calls.Add(1)
		return hasA(s)
	}))
	c.Accepts("abc") // pre-cache one key
	got := c.AcceptsBatch([]string{"abc", "new-a", "xyz", "new-a", "abc"})
	want := []bool{true, true, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AcceptsBatch[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if n := calls.Load(); n != 3 { // abc, new-a, xyz — each exactly once
		t.Fatalf("underlying queries = %d, want 3", n)
	}
	hits, misses := c.Stats()
	if misses != 3 || hits != 3 {
		t.Fatalf("Stats = %d hits %d misses, want 3 hits 3 misses", hits, misses)
	}
}

// TestCachedStatsConcurrent checks hits+misses == total queries under a
// concurrent mixed load — the accuracy guarantee Stats makes.
func TestCachedStatsConcurrent(t *testing.T) {
	c := NewCached(Func(hasA))
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Accepts(fmt.Sprintf("key-%d", i%37))
			}
		}(g)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != goroutines*per {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d", hits, misses, hits+misses, goroutines*per)
	}
	if misses != 37 {
		t.Fatalf("misses = %d, want 37 unique keys", misses)
	}
}

// TestPoolContextCancel is the wave-cancellation contract: once ctx is
// done, the pool stops dispatching and CheckBatch reports the ctx error.
func TestPoolContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	p := Parallel(Func(func(s string) bool {
		if calls.Add(1) >= 4 {
			cancel()
		}
		return true
	}), 2)
	inputs := make([]string, 1000)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("%d", i)
	}
	_, err := p.CheckBatch(ctx, inputs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled CheckBatch err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop dispatch: %d calls", n)
	}
}

// TestPoolErrorStopsDispatch checks the other fan-out stop condition: an
// oracle error halts the wave and surfaces as the batch error.
func TestPoolErrorStopsDispatch(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("oracle exploded")
	p := Parallel(CheckFunc(func(ctx context.Context, s string) (Verdict, error) {
		if calls.Add(1) == 5 {
			return Reject, boom
		}
		return Accept, nil
	}), 2)
	inputs := make([]string, 1000)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("%d", i)
	}
	_, err := p.CheckBatch(context.Background(), inputs)
	if !errors.Is(err, boom) {
		t.Fatalf("failing CheckBatch err = %v, want the oracle error", err)
	}
	if n := calls.Load(); n >= 1000 {
		t.Fatalf("error did not stop dispatch: %d calls", n)
	}
}

func TestCountingBatch(t *testing.T) {
	c := NewCounting(Func(hasA))
	c.AcceptsBatch([]string{"a", "b", "c"})
	c.Accepts("d")
	if c.Queries() != 4 {
		t.Fatalf("Queries = %d, want 4", c.Queries())
	}
}
