package oracle

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"glade/internal/telemetry"
)

func TestIsTransientTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"marked", MarkTransient(errors.New("blip")), true},
		{"wrapped marked", fmt.Errorf("outer: %w", MarkTransient(errors.New("blip"))), true},
		{"breaker open", fmt.Errorf("gate: %w", ErrBreakerOpen), true},
		{"plain", errors.New("bad config"), false},
		{"ctx canceled", context.Canceled, false},
		{"ctx deadline", context.DeadlineExceeded, false},
		{"marked ctx stays permanent", MarkTransient(context.Canceled), false},
	}
	for _, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("%s: IsTransient = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// failNTimes returns a CheckFunc failing the first n calls with a
// transient error, then accepting, plus a pointer to the call counter.
func failNTimes(n int) (CheckFunc, *atomic.Int64) {
	var calls atomic.Int64
	return func(ctx context.Context, input string) (Verdict, error) {
		if calls.Add(1) <= int64(n) {
			return Reject, MarkTransient(errors.New("transient blip"))
		}
		return Accept, nil
	}, &calls
}

func TestResilientRetriesTransient(t *testing.T) {
	inner, calls := failNTimes(2)
	r := NewResilient(inner, ResilientOptions{
		Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond},
	})
	v, err := r.Check(context.Background(), "x")
	if err != nil || v != Accept {
		t.Fatalf("Check = %v, %v; want Accept, nil", v, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("inner calls = %d, want 3", got)
	}
	if st := r.Stats(); st.Retries != 2 {
		t.Fatalf("Stats().Retries = %d, want 2", st.Retries)
	}
}

func TestResilientExhaustsAttempts(t *testing.T) {
	inner, calls := failNTimes(1000)
	r := NewResilient(inner, ResilientOptions{
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond},
	})
	_, err := r.Check(context.Background(), "x")
	if err == nil || !strings.Contains(err.Error(), "3 attempts failed") {
		t.Fatalf("err = %v, want 3-attempts-failed wrapper", err)
	}
	if !IsTransient(err) {
		t.Fatalf("exhausted error should stay transient for upper layers: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("inner calls = %d, want 3", got)
	}
}

func TestResilientPermanentNoRetry(t *testing.T) {
	var calls atomic.Int64
	perm := errors.New("executable file not found")
	inner := CheckFunc(func(ctx context.Context, input string) (Verdict, error) {
		calls.Add(1)
		return Reject, perm
	})
	r := NewResilient(inner, ResilientOptions{Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond}})
	_, err := r.Check(context.Background(), "x")
	if !errors.Is(err, perm) {
		t.Fatalf("err = %v, want the permanent error", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("inner calls = %d, want 1 (no retries on permanent errors)", got)
	}
	if st := r.Stats(); st.Retries != 0 {
		t.Fatalf("Stats().Retries = %d, want 0", st.Retries)
	}
}

// TestResilientNeverRetriesVerdict is the byte-identical-grammar
// property: any domain verdict — including Crash and Timeout — returns
// from the first attempt, so wrapping an oracle in Resilient can never
// change the verdict stream the learner observes.
func TestResilientNeverRetriesVerdict(t *testing.T) {
	for _, verdict := range []Verdict{Reject, Accept, Crash, Timeout} {
		var calls atomic.Int64
		inner := CheckFunc(func(ctx context.Context, input string) (Verdict, error) {
			calls.Add(1)
			return verdict, nil
		})
		r := NewResilient(inner, ResilientOptions{
			Retry:   RetryPolicy{MaxAttempts: 8, BaseDelay: time.Microsecond},
			Breaker: BreakerPolicy{Threshold: 2, Cooldown: time.Millisecond},
		})
		v, err := r.Check(context.Background(), "in")
		if err != nil || v != verdict {
			t.Fatalf("verdict %v: Check = %v, %v", verdict, v, err)
		}
		if got := calls.Load(); got != 1 {
			t.Fatalf("verdict %v: inner calls = %d, want exactly 1", verdict, got)
		}
	}
}

// TestResilientBreakerTripsOnceConcurrent hammers an always-failing
// oracle from a concurrent CheckBatch and asserts the breaker opens
// exactly once and short-circuits the bulk of the batch.
func TestResilientBreakerTripsOnceConcurrent(t *testing.T) {
	var calls atomic.Int64
	inner := CheckFunc(func(ctx context.Context, input string) (Verdict, error) {
		calls.Add(1)
		return Reject, MarkTransient(errors.New("down"))
	})
	r := NewResilient(inner, ResilientOptions{
		Breaker: BreakerPolicy{Threshold: 4, Cooldown: time.Hour},
		Workers: 8,
	})
	inputs := make([]string, 256)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("in-%d", i)
	}
	// fanOut stops at the first error, so drive the batch manually to
	// guarantee every input is attempted even after failures.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(inputs); i += 8 {
				r.Check(context.Background(), inputs[i])
			}
		}(w)
	}
	wg.Wait()
	st := r.Stats()
	if st.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want exactly 1", st.BreakerOpens)
	}
	if st.State != "open" {
		t.Fatalf("State = %q, want open", st.State)
	}
	// Once open, calls fail fast without reaching the inner oracle: far
	// fewer inner calls than inputs. The bound is loose to tolerate
	// scheduling; the exact guarantee is the single open transition.
	if got := calls.Load(); got >= int64(len(inputs)) {
		t.Fatalf("inner calls = %d, want < %d (breaker should shed load)", got, len(inputs))
	}
}

// TestResilientHalfOpenSingleProbe trips the breaker, waits out the
// cooldown, then fires concurrent calls: exactly one must reach the
// inner oracle as the half-open probe while the rest fail fast, and the
// probe's success must close the breaker.
func TestResilientHalfOpenSingleProbe(t *testing.T) {
	var inProbe atomic.Int64
	release := make(chan struct{})
	var healthy atomic.Bool
	inner := CheckFunc(func(ctx context.Context, input string) (Verdict, error) {
		if !healthy.Load() {
			return Reject, MarkTransient(errors.New("down"))
		}
		inProbe.Add(1)
		<-release
		return Accept, nil
	})
	r := NewResilient(inner, ResilientOptions{
		Breaker: BreakerPolicy{Threshold: 2, Cooldown: 10 * time.Millisecond},
	})
	ctx := context.Background()
	r.Check(ctx, "a")
	r.Check(ctx, "b")
	if st := r.Stats(); st.State != "open" || st.BreakerOpens != 1 {
		t.Fatalf("after trip: %+v", st)
	}
	healthy.Store(true)
	time.Sleep(15 * time.Millisecond) // let the cooldown elapse

	const goroutines = 16
	errsCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := r.Check(ctx, "probe")
			errsCh <- err
		}()
	}
	// Wait until the probe is blocked inside the inner oracle, then let
	// the losers finish: they must all see ErrBreakerOpen.
	for inProbe.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // give losers time to hit the gate
	close(release)
	wg.Wait()
	close(errsCh)
	var ok, rejected int
	for err := range errsCh {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrBreakerOpen):
			rejected++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if ok != 1 || rejected != goroutines-1 {
		t.Fatalf("ok = %d, rejected = %d; want 1 probe success and %d fast failures", ok, rejected, goroutines-1)
	}
	if got := inProbe.Load(); got != 1 {
		t.Fatalf("inner probe calls = %d, want exactly 1", got)
	}
	if st := r.Stats(); st.State != "closed" {
		t.Fatalf("probe success should close the breaker, state = %q", st.State)
	}
	if v, err := r.Check(ctx, "after"); err != nil || v != Accept {
		t.Fatalf("after close: %v, %v", v, err)
	}
}

func TestResilientBackoffRespectsDeadline(t *testing.T) {
	inner, _ := failNTimes(1000)
	r := NewResilient(inner, ResilientOptions{
		Retry: RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.Check(ctx, "x")
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Check took %v; backoff ignored the deadline", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestResilientContainsPanic(t *testing.T) {
	boom := CheckFunc(func(ctx context.Context, input string) (Verdict, error) {
		panic("oracle bug")
	})
	r := NewResilient(boom, ResilientOptions{})
	_, err := r.Check(context.Background(), "x")
	if err == nil || !strings.Contains(err.Error(), "panic in oracle") {
		t.Fatalf("err = %v, want contained panic", err)
	}
	if !IsTransient(err) {
		t.Fatalf("contained panic should be transient: %v", err)
	}
}

func TestResilientMetricsInstruments(t *testing.T) {
	reg := telemetry.NewRegistry()
	met := NewResilientMetrics(reg, telemetry.L("source", "test"))
	inner := CheckFunc(func(ctx context.Context, input string) (Verdict, error) {
		return Reject, MarkTransient(errors.New("down"))
	})
	r := NewResilient(inner, ResilientOptions{
		Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond},
		Breaker: BreakerPolicy{Threshold: 3, Cooldown: time.Hour},
		Metrics: met,
	})
	r.Check(context.Background(), "x")
	if got := met.Retries.Value(); got != 2 {
		t.Fatalf("retries_total = %d, want 2", got)
	}
	if got := met.BreakerOpens.Value(); got != 1 {
		t.Fatalf("breaker_opens_total = %d, want 1", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`glade_oracle_retries_total{source="test"} 2`,
		`glade_oracle_breaker_opens_total{source="test"} 1`,
		`glade_oracle_breaker_state{source="test"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestResilientBuildWiring(t *testing.T) {
	// A spec built with retry options must come back wrapped, with the
	// base oracle reachable through Innermost for exec detection.
	sp := Spec{Type: SpecExec, Argv: []string{"/bin/true"}}
	o, _, err := sp.Build(BuildOptions{Workers: 2, Retry: RetryPolicy{MaxAttempts: 3}})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := o.(*Resilient)
	if !ok {
		t.Fatalf("Build returned %T, want *Resilient", o)
	}
	if _, ok := Innermost(r).(*Exec); !ok {
		t.Fatalf("Innermost = %T, want *Exec", Innermost(r))
	}
	// Without resilience options the oracle stays bare.
	o2, _, err := sp.Build(BuildOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := o2.(*Exec); !ok {
		t.Fatalf("bare Build returned %T, want *Exec", o2)
	}
}

// TestResilientExecPermanentAbort pins the acceptance criterion that a
// missing binary aborts promptly with the wrapped error even under an
// aggressive retry policy.
func TestResilientExecPermanentAbort(t *testing.T) {
	sp := Spec{Type: SpecExec, Argv: []string{"/nonexistent/glade-test-binary"}}
	o, _, err := sp.Build(BuildOptions{Retry: RetryPolicy{MaxAttempts: 8, BaseDelay: 100 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = o.Check(context.Background(), "x")
	if err == nil || !strings.Contains(err.Error(), "/nonexistent/glade-test-binary") {
		t.Fatalf("err = %v, want wrapped exec error", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("missing binary took %v to abort; should not retry", elapsed)
	}
	if st := o.(*Resilient).Stats(); st.Retries != 0 {
		t.Fatalf("Retries = %d, want 0 for a permanent error", st.Retries)
	}
}

func TestFaultInjectorDeterminism(t *testing.T) {
	inputs := make([]string, 512)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("input-%d", i)
	}
	schedule := func(seed int64) []bool {
		inj := NewFaultInjector(Func(func(string) bool { return true }), FaultOptions{Seed: seed, TransientRate: 0.1})
		out := make([]bool, 0, 2*len(inputs))
		for rep := 0; rep < 2; rep++ { // second pass = attempt index 1
			for _, in := range inputs {
				_, err := inj.Check(context.Background(), in)
				out = append(out, err != nil)
			}
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced a different fault schedule at call %d", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("degenerate schedule: %d faults of %d calls", faults, len(a))
	}
	// ~10% rate over 1024 calls: expect roughly 102, allow wide slack.
	if faults < 50 || faults > 200 {
		t.Errorf("fault count %d far from the configured 10%% rate", faults)
	}
	c := schedule(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("different seeds produced identical schedules")
	}
}

// TestFaultInjectorDeterminismConcurrent checks the schedule is keyed on
// (input, attempt), not call order: a concurrent pass injects faults on
// exactly the same (input, attempt) pairs as a sequential one.
func TestFaultInjectorDeterminismConcurrent(t *testing.T) {
	inputs := make([]string, 256)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("input-%d", i)
	}
	run := func(workers int) map[string]bool {
		inj := NewFaultInjector(Func(func(string) bool { return true }), FaultOptions{Seed: 7, TransientRate: 0.15})
		var mu sync.Mutex
		faulted := make(map[string]bool)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(inputs); i += workers {
					_, err := inj.Check(context.Background(), inputs[i])
					mu.Lock()
					faulted[inputs[i]] = err != nil
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		return faulted
	}
	seq, conc := run(1), run(8)
	for in, want := range seq {
		if conc[in] != want {
			t.Fatalf("input %q: concurrent schedule diverged from sequential", in)
		}
	}
}

func TestFaultInjectorHangHonorsCtx(t *testing.T) {
	inj := NewFaultInjector(Func(func(string) bool { return true }), FaultOptions{Seed: 1, HangRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := inj.Check(ctx, "x")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("hang did not release on ctx")
	}
}

// TestResilientSurvivesInjectedPanics pins that injector panics are
// contained by the Resilient layer and retried into a success.
func TestResilientSurvivesInjectedPanics(t *testing.T) {
	inj := NewFaultInjector(Func(func(string) bool { return true }), FaultOptions{Seed: 3, PanicRate: 0.5})
	r := NewResilient(inj, ResilientOptions{
		Retry: RetryPolicy{MaxAttempts: 30, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond},
	})
	for i := 0; i < 64; i++ {
		v, err := r.Check(context.Background(), fmt.Sprintf("in-%d", i))
		if err != nil || v != Accept {
			t.Fatalf("input %d: %v, %v", i, v, err)
		}
	}
	if inj.Injected() == 0 {
		t.Fatalf("no panics were injected at rate 0.5")
	}
}
