package core

import (
	"context"
	"testing"
	"time"

	"glade/internal/oracle"
	"glade/internal/telemetry"
)

// The Options.Tracer contract: one span per phase — seeds, then
// phase1/chargen per generalized seed, phase2, finalize — contiguous and
// non-overlapping, with the summed span wall time equal to the span
// window. This is what makes `glade -trace` NDJSON a faithful account of
// where a learn job's wall time went.
func TestLearnPhaseSpans(t *testing.T) {
	var rec telemetry.SpanRecorder
	opts := DefaultOptions()
	opts.Workers = 4
	opts.Tracer = &rec

	started := time.Now()
	res, err := Learn(context.Background(), []string{"<a>hi</a>", "xyz<a>q</a>"},
		oracle.Func(figure1XML), opts)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	total := time.Since(started)

	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}

	// Every expected phase appears: both seeds generalize (neither is in
	// the other's language), so phase1 and chargen fire per seed.
	count := map[string]int{}
	for _, s := range spans {
		count[s.Name]++
	}
	if count["seeds"] != 1 || count["phase2"] != 1 || count["finalize"] != 1 {
		t.Errorf("span counts = %v, want one each of seeds/phase2/finalize", count)
	}
	if count["phase1"] != 2 || count["chargen"] != 2 {
		t.Errorf("span counts = %v, want two each of phase1/chargen", count)
	}

	// Spans are emitted in order, tile the window without overlap, and
	// their durations sum to exactly the window they cover.
	var sum time.Duration
	for i, s := range spans {
		if s.Duration() < 0 {
			t.Errorf("span %d (%s) has negative duration %v", i, s.Name, s.Duration())
		}
		if i > 0 {
			prev := spans[i-1]
			if s.Start.Before(prev.End()) {
				t.Errorf("span %d (%s) starts %v before span %d (%s) ends %v",
					i, s.Name, s.Start, i-1, prev.Name, prev.End())
			}
			if !s.Start.Equal(prev.End()) {
				t.Errorf("span %d (%s) not contiguous with previous: gap %v",
					i, s.Name, s.Start.Sub(prev.End()))
			}
		}
		sum += s.Duration()
	}
	window := spans[len(spans)-1].End().Sub(spans[0].Start)
	if sum != window {
		t.Errorf("summed span time %v != span window %v", sum, window)
	}
	// The window is the bulk of Learn's wall time (only option parsing and
	// stats assembly fall outside it).
	if sum > total {
		t.Errorf("summed span time %v exceeds measured wall time %v", sum, total)
	}

	// Per-seed phases carry the seed index; run-wide phases carry -1.
	for _, s := range spans {
		switch s.Name {
		case "phase1", "chargen":
			if s.Seed < 0 || s.Seed > 1 {
				t.Errorf("%s span has seed %d, want 0 or 1", s.Name, s.Seed)
			}
		default:
			if s.Seed != -1 {
				t.Errorf("%s span has seed %d, want -1", s.Name, s.Seed)
			}
		}
	}

	// Attribute deltas must reconcile with the run's aggregate stats.
	var queries, waves float64
	for _, s := range spans {
		queries += s.Attrs["queries"]
		waves += s.Attrs["waves"]
	}
	if int(queries) != res.Stats.OracleQueries {
		t.Errorf("span queries sum to %v, stats report %d", queries, res.Stats.OracleQueries)
	}
	if int(waves) != res.Stats.Waves || res.Stats.Waves == 0 {
		t.Errorf("span waves sum to %v, stats report %d (want nonzero at Workers=4)", waves, res.Stats.Waves)
	}
}

// Without a tracer, Learn must emit nothing and behave identically.
func TestLearnNoTracer(t *testing.T) {
	opts := DefaultOptions()
	res, err := Learn(context.Background(), []string{"<a>x</a>"}, oracle.Func(figure1XML), opts)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if res.Stats.Waves != 0 {
		t.Errorf("sequential run issued %d waves, want 0", res.Stats.Waves)
	}
}
