package core

import (
	"time"

	"glade/internal/telemetry"
)

// spanMark snapshots the learner's effort counters at a span boundary, so
// endSpan can attribute per-phase deltas without per-phase bookkeeping
// inside the scans.
type spanMark struct {
	at     time.Time
	stats  Stats
	hits   int
	misses int
}

// markSpan opens a phase span. Spans are kept contiguous by starting each
// one at the previous span's end (l.spanClock) rather than at time.Now():
// the few instructions between two phases are attributed to the later
// phase, and the summed span wall time equals the run's wall time exactly.
func (l *learner) markSpan() spanMark {
	if l.opts.Tracer == nil {
		return spanMark{}
	}
	at := l.spanClock
	if at.IsZero() {
		at = time.Now()
	}
	hits, misses := l.cached.Stats()
	return spanMark{at: at, stats: l.stats, hits: hits, misses: misses}
}

// endSpan closes a phase span opened by markSpan and emits it through
// Options.Tracer with the phase's counter deltas as attributes.
func (l *learner) endSpan(name string, seed int, m spanMark) {
	if l.opts.Tracer == nil {
		return
	}
	end := time.Now()
	l.spanClock = end
	hits, misses := l.cached.Stats()
	attrs := make(map[string]float64)
	set := func(k string, v float64) {
		if v != 0 {
			attrs[k] = v
		}
	}
	set("checks", float64(l.stats.Checks-m.stats.Checks))
	set("candidates", float64(l.stats.Candidates-m.stats.Candidates))
	set("chargen_checks", float64(l.stats.CharGenChecks-m.stats.CharGenChecks))
	set("merge_pairs", float64(l.stats.MergePairs-m.stats.MergePairs))
	set("merged", float64(l.stats.Merged-m.stats.Merged))
	set("waves", float64(l.stats.Waves-m.stats.Waves))
	dq := misses - m.misses
	dh := hits - m.hits
	set("queries", float64(dq))
	set("cache_hits", float64(dh))
	if dq+dh > 0 {
		// Speculation hit-rate: the fraction of this phase's checks
		// answered from cache (prefetched by an earlier wave or deduped).
		set("speculation_hit_rate", float64(dh)/float64(dq+dh))
	}
	if len(attrs) == 0 {
		attrs = nil
	}
	l.opts.Tracer.Emit(telemetry.Span{
		Name:       name,
		Seed:       seed,
		Start:      m.at,
		DurationNS: end.Sub(m.at).Nanoseconds(),
		Attrs:      attrs,
	})
}
