package core

import (
	"math/rand"
	"time"

	"glade/internal/rex"
)

// learner holds the mutable state of one Learn invocation.
type learner struct {
	opts  Options
	check checker
	stats Stats
	rng   *rand.Rand

	// roots are the per-seed trees learned so far (including the tree
	// currently being generalized); their alternation is the current
	// language L̂i.
	roots []*node

	matcher      *rex.Matcher
	matcherDirty bool

	deadline time.Time
	step     int
}

// expired reports whether the learning deadline has passed; once true, the
// learner stops proposing generalizations and finalizes what it has.
func (l *learner) expired() bool {
	if l.deadline.IsZero() {
		return false
	}
	if time.Now().After(l.deadline) {
		l.stats.TimedOut = true
		return true
	}
	return false
}

// currentMatcher returns a matcher for L̂i (holes read as literals),
// recompiling only after tree mutations.
func (l *learner) currentMatcher() *rex.Matcher {
	if l.matcher == nil || l.matcherDirty {
		kids := make([]rex.Expr, len(l.roots))
		for i, r := range l.roots {
			kids[i] = toRex(r)
		}
		l.matcher = rex.Compile(rex.Union(kids...))
		l.matcherDirty = false
	}
	return l.matcher
}

// passes implements the check discipline of §4.3: a check string passes if
// the oracle accepts it, or — when the member-discard option is on — if it
// already belongs to the current language L̂i (such checks are discarded
// from S). The oracle is consulted first because it is cached and usually
// cheaper than recompiling a matcher.
func (l *learner) passes(check string) bool {
	l.stats.Checks++
	if l.check.accepts(check) {
		return true
	}
	if l.opts.DiscardMemberChecks && l.currentMatcher().Match(check) {
		l.stats.DiscardedChecks++
		return true
	}
	return false
}

// logStep emits one trace line when the caller installed Options.Logf.
func (l *learner) logStep(kind string, h *node) {
	if l.opts.Logf == nil {
		return
	}
	l.step++
	l.opts.Logf("step %d (%s): %s", l.step, kind, render(l.roots[len(l.roots)-1]))
	_ = h
}

// phase1 generalizes one seed input into an annotated regular-expression
// tree (§4), returning its root. Holes are processed LIFO, which reproduces
// the step order of Figure 2.
func (l *learner) phase1(seed string) *node {
	root := &node{kind: nHole, hole: hRep, str: seed}
	l.roots = append(l.roots, root)
	l.matcherDirty = true
	stack := []*node{root}
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var fresh []*node
		if h.hole == hRep {
			fresh = l.generalizeRep(h)
		} else {
			fresh = l.generalizeAlt(h)
		}
		stack = append(stack, fresh...)
		l.matcherDirty = true
	}
	return root
}

// generalizeRep performs one repetition generalization step on hole
// h = [α]rep (§4.1): candidates α1([α2]alt)*[α3]rep for every decomposition
// α = α1·α2·α3 with α2 ≠ ε, ordered by shorter α1 then longer α2 (§4.2),
// with the plain literal α ranked last. Residuals are α1α3 and α1α2α2α3
// (§4.3). It mutates h into the chosen structure and returns fresh holes.
func (l *learner) generalizeRep(h *node) []*node {
	α := h.str
	γ, δ := h.ctx.Left, h.ctx.Right
	if !l.expired() {
		for ii := 0; ii < len(α); ii++ {
			i := ii // α1 = α[:i], shorter first (§4.2)
			if l.opts.ReverseOrdering {
				i = len(α) - 1 - ii
			}
			for jj := len(α); jj > i; jj-- {
				j := jj // α2 = α[i:j], longer first (§4.2)
				if l.opts.ReverseOrdering {
					j = len(α) + i + 1 - jj
				}
				if h.noFullStar && i == 0 && j == len(α) {
					continue
				}
				α1, α2, α3 := α[:i], α[i:j], α[j:]
				l.stats.Candidates++
				if !l.passes(γ+α1+α3+δ) || !l.passes(γ+α1+α2+α2+α3+δ) {
					continue
				}
				return l.acceptRep(h, α1, α2, α3)
			}
			if l.expired() {
				break
			}
		}
	}
	// Final candidate: the constant α (Trep ::= β). No checks needed.
	h.kind = nLit
	l.logStep("rep→const", h)
	return nil
}

// acceptRep rewrites hole h (context (γ,δ)) into α1 ([α2]alt)* [α3]rep,
// assigning the contexts of §4.3:
//
//	[α2]alt ↦ (γα1, α3δ)    [α3]rep ↦ (γα1α2, δ)    literal α1 ↦ (γ, α3δ)
func (l *learner) acceptRep(h *node, α1, α2, α3 string) []*node {
	γ, δ := h.ctx.Left, h.ctx.Right
	starCtx := Context{γ + α1, α3 + δ}
	body := &node{kind: nHole, hole: hAlt, str: α2, ctx: starCtx}
	star := &node{kind: nStar, kids: []*node{body}, ctx: starCtx, bodySeed: α2}

	var kids []*node
	if α1 != "" {
		kids = append(kids, lit(α1, Context{γ, α3 + δ}))
	}
	kids = append(kids, star)
	var fresh []*node
	fresh = append(fresh, body)
	if α3 != "" {
		rest := &node{kind: nHole, hole: hRep, str: α3, ctx: Context{γ + α1 + α2, δ}}
		kids = append(kids, rest)
		fresh = append(fresh, rest)
	}
	if len(kids) == 1 {
		*h = *star
		// The body hole's parent is now h itself; re-point the star child.
		h.kids = []*node{body}
	} else {
		h.kind = nSeq
		h.str = ""
		h.kids = kids
	}
	l.matcherDirty = true
	l.logStep("rep", h)
	// Return in creation order; the caller's LIFO stack then processes
	// [α3]rep before [α2]alt, matching Figure 2.
	return fresh
}

// generalizeAlt performs one alternation generalization step on hole
// h = [α]alt (§4.1): candidates ([α1]rep + [α2]alt) for every decomposition
// α = α1·α2 with both parts nonempty, ordered by shorter α1 (§4.2).
// Residuals are α1 and α2. The final candidate demotes the hole to [α]rep
// (the production Talt ::= Trep of the meta-grammar).
func (l *learner) generalizeAlt(h *node) []*node {
	α := h.str
	γ, δ := h.ctx.Left, h.ctx.Right
	if !l.expired() {
		for i := 1; i < len(α); i++ {
			α1, α2 := α[:i], α[i:]
			l.stats.Candidates++
			if !l.passes(γ+α1+δ) || !l.passes(γ+α2+δ) {
				continue
			}
			left := &node{kind: nHole, hole: hRep, str: α1, ctx: Context{γ, α2 + δ}, noFullStar: true}
			right := &node{kind: nHole, hole: hAlt, str: α2, ctx: Context{γ + α1, δ}}
			h.kind = nAlt
			h.str = ""
			h.kids = []*node{left, right}
			l.matcherDirty = true
			l.logStep("alt", h)
			return []*node{left, right}
		}
	}
	// Final candidate: [α]alt becomes [α]rep and is reprocessed.
	h.hole = hRep
	h.noFullStar = true
	l.logStep("alt→rep", h)
	return []*node{h}
}
