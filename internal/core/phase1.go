package core

import (
	"context"
	"math/rand"
	"time"

	"glade/internal/oracle"
	"glade/internal/rex"
)

// learner holds the mutable state of one Learn invocation.
type learner struct {
	ctx    context.Context
	opts   Options
	cached *oracle.Cached
	stats  Stats
	rng    *rand.Rand

	// workers is the resolved Options.Workers (at least 1). Above 1 the
	// candidate scans prefetch check waves through the oracle's bulk path.
	workers int

	// oracleErr is the first oracle failure or ctx cancellation observed.
	// Once set, every subsequent check answers false without querying, the
	// scans wind down at their next stopped() poll, and Learn surfaces the
	// error instead of a grammar. The learner runs single-threaded (waves
	// fan out below the cache), so no lock is needed.
	oracleErr error

	// roots are the per-seed trees learned so far (including the tree
	// currently being generalized); their alternation is the current
	// language L̂i.
	roots []*node

	matcher      *rex.Matcher
	matcherDirty bool

	deadline time.Time
	step     int

	// spanClock is the end time of the last emitted phase span; markSpan
	// starts the next span there so spans tile the run without gaps. Zero
	// until the first span closes (or when Options.Tracer is nil).
	spanClock time.Time
}

// accepts answers one membership check through the cache, mapping the
// verdict to the boolean the scans decide on (Crash and Timeout are
// rejections, as in the paper's "program reports an error" reading). An
// oracle error or cancellation trips oracleErr and reads as false — the
// scan stops generalizing at its next stopped() poll and Learn returns the
// error, so the artifact false never reaches a synthesized grammar.
func (l *learner) accepts(s string) bool {
	if l.oracleErr != nil {
		return false
	}
	v, err := l.cached.Check(l.ctx, s)
	if err != nil {
		l.oracleErr = err
		return false
	}
	return v == oracle.Accept
}

// prefetch issues a wave of independent checks through the cache's batched
// bulk path, so the sequential decision scan that follows answers from
// memory. Speculative: checks past the scan's accept point cost extra
// underlying queries but never change any decision. Cancellation and
// oracle failures inside the wave trip oracleErr; nothing is cached on
// that path, so the failure cannot poison later answers.
func (l *learner) prefetch(checks []string) {
	if l.oracleErr != nil || len(checks) <= 1 {
		return
	}
	l.stats.Waves++
	if _, err := l.cached.CheckBatch(l.ctx, checks); err != nil {
		l.oracleErr = err
	}
}

// expired reports whether the learning deadline has passed; once true, the
// learner stops proposing generalizations and finalizes what it has.
func (l *learner) expired() bool {
	if l.deadline.IsZero() {
		return false
	}
	if time.Now().After(l.deadline) {
		l.stats.TimedOut = true
		return true
	}
	return false
}

// stopped reports whether the learner must stop proposing generalizations:
// the run was cancelled, the oracle failed, or the soft deadline passed.
// The scans poll it between candidate waves, which bounds how much work a
// cancellation can leave in flight to one wave.
func (l *learner) stopped() bool {
	if l.oracleErr != nil {
		return true
	}
	if err := l.ctx.Err(); err != nil {
		l.oracleErr = err
		return true
	}
	return l.expired()
}

// currentMatcher returns a matcher for L̂i (holes read as literals),
// recompiling only after tree mutations.
func (l *learner) currentMatcher() *rex.Matcher {
	if l.matcher == nil || l.matcherDirty {
		kids := make([]rex.Expr, len(l.roots))
		for i, r := range l.roots {
			kids[i] = toRex(r)
		}
		l.matcher = rex.Compile(rex.Union(kids...))
		l.matcherDirty = false
	}
	return l.matcher
}

// passes implements the check discipline of §4.3: a check string passes if
// the oracle accepts it, or — when the member-discard option is on — if it
// already belongs to the current language L̂i (such checks are discarded
// from S). The oracle is consulted first because it is cached and usually
// cheaper than recompiling a matcher.
func (l *learner) passes(check string) bool {
	l.stats.Checks++
	if l.accepts(check) {
		return true
	}
	if l.opts.DiscardMemberChecks && l.currentMatcher().Match(check) {
		l.stats.DiscardedChecks++
		return true
	}
	return false
}

// waves sizes the chunks of an ordered candidate scan. In speculative mode
// (Workers > 1) wave sizes ramp up from small — the §4.2 ordering usually
// accepts an early candidate, so small first waves bound the queries wasted
// past the accept point — doubling toward a cap that keeps every worker
// busy through long failure runs. Scans whose every result is consumed
// (character generalization) disable the ramp and issue full-width waves
// immediately. In sequential mode waves degenerate to fixed chunks that
// merely bound the deadline-check interval; no prefetch is issued, so the
// query sequence is exactly the paper's.
type waves struct {
	cur, max  int
	speculate bool
}

// seqChunk is the sequential-mode scan chunk between deadline checks.
const seqChunk = 64

func (l *learner) newWaves(ramp bool) *waves {
	if l.workers > 1 {
		if ramp {
			return &waves{cur: max(2, l.workers/2), max: l.workers * 4, speculate: true}
		}
		full := l.workers * 8
		return &waves{cur: full, max: full, speculate: true}
	}
	return &waves{cur: seqChunk, max: seqChunk}
}

// nextSize returns the next wave's candidate budget, ramping toward max.
func (w *waves) nextSize() int {
	s := w.cur
	w.cur = min(w.cur*2, w.max)
	return s
}

// logStep emits one trace line when the caller installed Options.Logf.
func (l *learner) logStep(kind string, h *node) {
	if l.opts.Logf == nil {
		return
	}
	l.step++
	l.opts.Logf("step %d (%s): %s", l.step, kind, render(l.roots[len(l.roots)-1]))
	_ = h
}

// phase1 generalizes one seed input into an annotated regular-expression
// tree (§4), returning its root. Holes are processed LIFO, which reproduces
// the step order of Figure 2.
func (l *learner) phase1(seed string) *node {
	root := &node{kind: nHole, hole: hRep, str: seed}
	l.roots = append(l.roots, root)
	l.matcherDirty = true
	stack := []*node{root}
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var fresh []*node
		if h.hole == hRep {
			fresh = l.generalizeRep(h)
		} else {
			fresh = l.generalizeAlt(h)
		}
		stack = append(stack, fresh...)
		l.matcherDirty = true
	}
	return root
}

// repCand is one decomposition α = α1·α2·α3 of a repetition candidate.
type repCand struct {
	α1, α2, α3 string
}

// repIter lazily enumerates the decompositions α = α1·α2·α3 with α2 ≠ ε in
// the §4.2 candidate order: shorter α1 first, then longer α2 first
// (inverted by the ReverseOrdering ablation), skipping the full-span star
// when the hole forbids it. There are O(|α|²) decompositions, so they are
// produced on demand — the scan usually accepts an early candidate and a
// long seed must not materialize the full list.
type repIter struct {
	α          string
	noFullStar bool
	reverse    bool
	ii, jj     int
}

func newRepIter(α string, noFullStar, reverse bool) *repIter {
	return &repIter{α: α, noFullStar: noFullStar, reverse: reverse, jj: len(α)}
}

func (it *repIter) next() (repCand, bool) {
	n := len(it.α)
	for it.ii < n {
		i := it.ii // α1 = α[:i], shorter first (§4.2)
		if it.reverse {
			i = n - 1 - it.ii
		}
		for it.jj > i {
			j := it.jj // α2 = α[i:j], longer first (§4.2)
			if it.reverse {
				j = n + i + 1 - it.jj
			}
			it.jj--
			if it.noFullStar && i == 0 && j == n {
				continue
			}
			return repCand{it.α[:i], it.α[i:j], it.α[j:]}, true
		}
		it.ii++
		it.jj = n
	}
	return repCand{}, false
}

// generalizeRep performs one repetition generalization step on hole
// h = [α]rep (§4.1): candidates α1([α2]alt)*[α3]rep for every decomposition
// α = α1·α2·α3 with α2 ≠ ε, ordered per §4.2, with the plain literal α
// ranked last. Residuals are α1α3 and α1α2α2α3 (§4.3). Candidates are
// scanned strictly in order — the wave machinery only prefetches the
// upcoming residual checks through the batched oracle — so the chosen
// structure is independent of Workers. It mutates h into the chosen
// structure and returns fresh holes.
func (l *learner) generalizeRep(h *node) []*node {
	α := h.str
	γ, δ := h.ctx.Left, h.ctx.Right
	if !l.stopped() {
		it := newRepIter(α, h.noFullStar, l.opts.ReverseOrdering)
		w := l.newWaves(true)
		var buf []repCand // reused wave buffer; memory stays O(wave), not O(|α|²)
		for {
			buf = buf[:0]
			for size := w.nextSize(); len(buf) < size; {
				c, ok := it.next()
				if !ok {
					break
				}
				buf = append(buf, c)
			}
			if len(buf) == 0 {
				break
			}
			if w.speculate {
				checks := make([]string, 0, 2*len(buf))
				for _, c := range buf {
					checks = append(checks, γ+c.α1+c.α3+δ, γ+c.α1+c.α2+c.α2+c.α3+δ)
				}
				l.prefetch(checks)
			}
			for _, c := range buf {
				l.stats.Candidates++
				if !l.passes(γ+c.α1+c.α3+δ) || !l.passes(γ+c.α1+c.α2+c.α2+c.α3+δ) {
					continue
				}
				return l.acceptRep(h, c.α1, c.α2, c.α3)
			}
			if l.stopped() {
				break
			}
		}
	}
	// Final candidate: the constant α (Trep ::= β). No checks needed.
	h.kind = nLit
	l.logStep("rep→const", h)
	return nil
}

// acceptRep rewrites hole h (context (γ,δ)) into α1 ([α2]alt)* [α3]rep,
// assigning the contexts of §4.3:
//
//	[α2]alt ↦ (γα1, α3δ)    [α3]rep ↦ (γα1α2, δ)    literal α1 ↦ (γ, α3δ)
func (l *learner) acceptRep(h *node, α1, α2, α3 string) []*node {
	γ, δ := h.ctx.Left, h.ctx.Right
	starCtx := Context{γ + α1, α3 + δ}
	body := &node{kind: nHole, hole: hAlt, str: α2, ctx: starCtx}
	star := &node{kind: nStar, kids: []*node{body}, ctx: starCtx, bodySeed: α2}

	var kids []*node
	if α1 != "" {
		kids = append(kids, lit(α1, Context{γ, α3 + δ}))
	}
	kids = append(kids, star)
	var fresh []*node
	fresh = append(fresh, body)
	if α3 != "" {
		rest := &node{kind: nHole, hole: hRep, str: α3, ctx: Context{γ + α1 + α2, δ}}
		kids = append(kids, rest)
		fresh = append(fresh, rest)
	}
	if len(kids) == 1 {
		*h = *star
		// The body hole's parent is now h itself; re-point the star child.
		h.kids = []*node{body}
	} else {
		h.kind = nSeq
		h.str = ""
		h.kids = kids
	}
	l.matcherDirty = true
	l.logStep("rep", h)
	// Return in creation order; the caller's LIFO stack then processes
	// [α3]rep before [α2]alt, matching Figure 2.
	return fresh
}

// generalizeAlt performs one alternation generalization step on hole
// h = [α]alt (§4.1): candidates ([α1]rep + [α2]alt) for every decomposition
// α = α1·α2 with both parts nonempty, ordered by shorter α1 (§4.2).
// Residuals are α1 and α2; as in generalizeRep, waves prefetch upcoming
// checks without reordering the scan. The final candidate demotes the hole
// to [α]rep (the production Talt ::= Trep of the meta-grammar).
func (l *learner) generalizeAlt(h *node) []*node {
	α := h.str
	γ, δ := h.ctx.Left, h.ctx.Right
	if !l.stopped() && len(α) > 1 {
		w := l.newWaves(true)
		for lo, n := 0, len(α)-1; lo < n; {
			hi := min(lo+w.nextSize(), n)
			if w.speculate {
				checks := make([]string, 0, 2*(hi-lo))
				for k := lo; k < hi; k++ {
					i := k + 1 // α1 = α[:i], shorter first (§4.2)
					checks = append(checks, γ+α[:i]+δ, γ+α[i:]+δ)
				}
				l.prefetch(checks)
			}
			for k := lo; k < hi; k++ {
				i := k + 1
				α1, α2 := α[:i], α[i:]
				l.stats.Candidates++
				if !l.passes(γ+α1+δ) || !l.passes(γ+α2+δ) {
					continue
				}
				left := &node{kind: nHole, hole: hRep, str: α1, ctx: Context{γ, α2 + δ}, noFullStar: true}
				right := &node{kind: nHole, hole: hAlt, str: α2, ctx: Context{γ + α1, δ}}
				h.kind = nAlt
				h.str = ""
				h.kids = []*node{left, right}
				l.matcherDirty = true
				l.logStep("alt", h)
				return []*node{left, right}
			}
			lo = hi
			if l.stopped() {
				break
			}
		}
	}
	// Final candidate: [α]alt becomes [α]rep and is reprocessed.
	h.hole = hRep
	h.noFullStar = true
	l.logStep("alt→rep", h)
	return []*node{h}
}
