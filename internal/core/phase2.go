package core

import "glade/internal/rex"

// phase2 learns recursive structure (§5): every unordered pair of
// repetition subexpressions (star nodes) is a merge candidate, validated by
// substituting the doubled body seed of each star into the context of the
// other (§5.3). Accepted merges are recorded in a union-find over star
// nodes; the CFG translation then maps each merge class to one nonterminal,
// which is exactly the paper's "equate A'i and A'j" construction.
//
// The doubled-seed residuals of upcoming pairs are deterministic, so with
// Workers > 1 they are prefetched in waves through the batched oracle. The
// RandSeed-driven sampled residuals (MergeSampleChecks) are issued strictly
// sequentially from the scan, because each draw's very occurrence depends
// on the preceding checks — prefetching them would desynchronize the rng
// stream and break grammar determinism.
func (l *learner) phase2(allStars []*node) *unionFind {
	uf := newUnionFind(len(allStars))
	type starPair struct{ i, j int }
	pairs := make([]starPair, 0, len(allStars)*(len(allStars)-1)/2)
	for i := 0; i < len(allStars); i++ {
		for j := i + 1; j < len(allStars); j++ {
			pairs = append(pairs, starPair{i, j})
		}
	}
	w := l.newWaves(false)
	for lo := 0; lo < len(pairs); {
		l.emit(Progress{Phase: "phase2", Pairs: lo, TotalPairs: len(pairs)})
		hi := min(lo+w.nextSize(), len(pairs))
		if w.speculate {
			checks := make([]string, 0, 2*(hi-lo))
			for _, p := range pairs[lo:hi] {
				if uf.find(p.i) == uf.find(p.j) {
					// Already equated when the wave was formed; the scan will
					// almost surely skip it (merges accepted mid-wave may
					// still equate more — prefetching those few is harmless).
					continue
				}
				a, b := allStars[p.i], allStars[p.j]
				checks = append(checks,
					a.ctx.Left+b.bodySeed+b.bodySeed+a.ctx.Right,
					b.ctx.Left+a.bodySeed+a.bodySeed+b.ctx.Right)
			}
			l.prefetch(checks)
		}
		for _, p := range pairs[lo:hi] {
			if l.stopped() {
				return uf
			}
			l.stats.MergePairs++
			if uf.find(p.i) == uf.find(p.j) {
				// Already equated transitively; the merge candidate equals
				// the current language, so it is trivially selected.
				continue
			}
			a, b := allStars[p.i], allStars[p.j]
			l.stats.Candidates++
			// Check L(P R' Q) ⊆ L*: residuals of R' in the context of a,
			// and symmetrically. The paper's residual is the doubled body
			// seed (§5.3); MergeSampleChecks adds residuals sampled from
			// the generalized body, which also exercise character classes.
			if l.mergeChecksPass(a, b) && l.mergeChecksPass(b, a) {
				uf.union(p.i, p.j)
				l.stats.Merged++
			}
		}
		lo = hi
	}
	return uf
}

// mergeChecksPass validates substituting star b's repetition language into
// star a's context: the doubled seed residual of §5.3, plus sampled
// residuals from b's generalized body when MergeSampleChecks > 0.
func (l *learner) mergeChecksPass(a, b *node) bool {
	if !l.passes(a.ctx.Left + b.bodySeed + b.bodySeed + a.ctx.Right) {
		return false
	}
	if l.opts.MergeSampleChecks > 0 {
		body := toRex(b.kids[0])
		if !rex.Empty(body) {
			for k := 0; k < l.opts.MergeSampleChecks; k++ {
				ρ := rex.Sample(body, l.rng, 0.4)
				// One and two iterations of the substituted body, both in
				// L(P R' Q).
				if !l.passes(a.ctx.Left + ρ + a.ctx.Right) {
					return false
				}
				if !l.passes(a.ctx.Left + ρ + ρ + a.ctx.Right) {
					return false
				}
			}
		}
	}
	return true
}

// unionFind is a standard disjoint-set forest with path compression and
// union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(x, y int) {
	rx, ry := uf.find(x), uf.find(y)
	if rx == ry {
		return
	}
	if uf.size[rx] < uf.size[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	uf.size[rx] += uf.size[ry]
}
