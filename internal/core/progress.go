package core

// Progress is one phase-level progress event of a learning run. The
// learner emits a bounded stream of these through Options.Progress: one
// event per seed entering phase one, one per literal scanned by character
// generalization, one per phase-two candidate wave, and one terminal
// "done" event. Long-lived callers (the glade-serve job manager) relay the
// stream to clients polling or watching a job.
type Progress struct {
	// Phase names the learner's current activity: "seeds" (validating the
	// seed inputs), "phase1", "chargen", "phase2", or "done".
	Phase string `json:"phase"`
	// Seed is the 1-based index of the seed being generalized (phase1 and
	// chargen events); Seeds is the total seed count.
	Seed  int `json:"seed,omitempty"`
	Seeds int `json:"seeds,omitempty"`
	// Lit/Lits report character-generalization progress within a seed: the
	// 1-based literal being scanned and the literal count.
	Lit  int `json:"lit,omitempty"`
	Lits int `json:"lits,omitempty"`
	// Pairs/TotalPairs report phase-two progress: merge pairs examined so
	// far out of the total candidate pairs.
	Pairs      int `json:"pairs,omitempty"`
	TotalPairs int `json:"total_pairs,omitempty"`
	// Checks and Queries snapshot learner effort at the time of the event:
	// check strings evaluated and de-duplicated queries that reached the
	// underlying oracle.
	Checks  int `json:"checks"`
	Queries int `json:"queries"`
}

// emit sends a progress event through Options.Progress, stamping it with
// the current effort counters. The callback runs synchronously on the
// learning goroutine between oracle waves, so it must return quickly;
// callers that relay events elsewhere should buffer rather than block.
func (l *learner) emit(p Progress) {
	if l.opts.Progress == nil {
		return
	}
	p.Checks = l.stats.Checks
	_, p.Queries = l.cached.Stats()
	l.opts.Progress(p)
}
