package core

import (
	"context"
	"strings"
	"testing"

	"glade/internal/cfg"
	"glade/internal/oracle"
	"glade/internal/programs"
	"glade/internal/rex"
)

// figure1XML recognizes L(CXML) from Figure 1 of the paper: the XML-like
// language A → (a + ... + z + <a>A</a>)*. It is pure, hence trivially safe
// for concurrent oracle queries.
func figure1XML(s string) bool {
	depth := 0
	for i := 0; i < len(s); {
		switch {
		case strings.HasPrefix(s[i:], "<a>"):
			depth++
			i += 3
		case strings.HasPrefix(s[i:], "</a>"):
			depth--
			if depth < 0 {
				return false
			}
			i += 4
		case s[i] >= 'a' && s[i] <= 'z':
			i++
		default:
			return false
		}
	}
	return depth == 0
}

// learnFingerprint runs Learn and renders everything the caller could
// observe about the synthesized language: the grammar and the intermediate
// regular expression.
func learnFingerprint(t *testing.T, seeds []string, o oracle.CheckOracle, opts Options) string {
	t.Helper()
	res, err := Learn(context.Background(), seeds, o, opts)
	if err != nil {
		t.Fatalf("Learn(Workers=%d): %v", opts.Workers, err)
	}
	return cfg.Marshal(res.Grammar) + "\n---\n" + rex.String(res.Regex)
}

// TestParallelDeterminism is the contract of Options.Workers: the same
// RandSeed and the same seeds must synthesize a byte-identical grammar at
// Workers=1 and Workers=8 — parallelism prefetches checks but never
// reorders decisions. Run under -race this also exercises the concurrent
// oracle stack end to end.
func TestParallelDeterminism(t *testing.T) {
	seeds := []string{"<a>hi</a>", "xyz<a>q</a>"}
	opts := DefaultOptions()

	base := learnFingerprint(t, seeds, oracle.Func(figure1XML), opts)
	for _, workers := range []int{2, 8} {
		po := opts
		po.Workers = workers
		got := learnFingerprint(t, seeds, oracle.Func(figure1XML), po)
		if got != base {
			t.Errorf("Workers=%d synthesized a different language:\n--- Workers=1 ---\n%s\n--- Workers=%d ---\n%s",
				workers, base, workers, got)
		}
	}
}

// TestParallelDeterminismPrograms repeats the determinism contract on two
// simulated programs of §8.3 (sed and the XML parser) learned from their
// bundled seeds — the configuration the speedup benchmark measures.
func TestParallelDeterminismPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("full program learning")
	}
	for _, name := range []string{"sed", "xml"} {
		p := programs.ByName(name)
		if p == nil {
			t.Fatalf("program %q missing", name)
		}
		o := oracle.Func(func(s string) bool { return p.Run(s).OK })
		seeds := p.Seeds()
		if len(seeds) > 4 {
			seeds = seeds[:4] // keep the test fast; determinism needs no scale
		}
		opts := DefaultOptions()
		base := learnFingerprint(t, seeds, o, opts)
		opts.Workers = 8
		if got := learnFingerprint(t, seeds, o, opts); got != base {
			t.Errorf("%s: Workers=8 grammar differs from Workers=1", name)
		}
	}
}

// TestParallelStatsConsistent checks the stats invariants the parallel path
// must keep: every check the scan consults is counted, and the cache
// accounts for every query (hits + unique misses).
func TestParallelStatsConsistent(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 8
	res, err := Learn(context.Background(), []string{"<a>hi</a>"}, oracle.Func(figure1XML), opts)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Checks == 0 || s.CharGenChecks == 0 {
		t.Fatalf("parallel run recorded no checks: %+v", s)
	}
	if s.OracleQueries == 0 {
		t.Fatalf("parallel run recorded no oracle queries: %+v", s)
	}
	// Speculative prefetching may issue more unique queries than the scan
	// consults, but the cache can never report fewer than the distinct
	// checks the scan needed.
	if s.OracleQueries+s.CacheHits < s.Checks {
		t.Fatalf("cache accounting lost queries: %+v", s)
	}
}
