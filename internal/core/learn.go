package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"glade/internal/bytesets"
	"glade/internal/cfg"
	"glade/internal/oracle"
	"glade/internal/rex"
	"glade/internal/telemetry"
)

// Options configures the learner. The zero value is not useful; start from
// DefaultOptions.
type Options struct {
	// Phase2 enables the recursive-merge phase (§5). Disabling it yields
	// the "P1" variant evaluated in Figure 4.
	Phase2 bool
	// CharGen enables character generalization (§6.2).
	CharGen bool
	// GenAlphabet is the alphabet Σ used by character generalization.
	// Empty disables the phase regardless of CharGen.
	GenAlphabet bytesets.Set
	// DiscardMemberChecks discards checks already in the current language
	// L̂i (§4.3) instead of querying the oracle about them.
	DiscardMemberChecks bool
	// ReverseOrdering inverts the §4.2 candidate ordering heuristic
	// (longest α1 first, shortest α2 first) — an ablation knob showing the
	// ordering drives generality; never useful in production.
	ReverseOrdering bool
	// Workers bounds the number of concurrent oracle queries. Values
	// below 2 learn strictly sequentially, exactly as the paper's
	// algorithm. When above 1, independent candidate checks within a
	// generalization step are speculatively issued as batched waves
	// through the oracle's bulk path (oracle.BatchCheckOracle) ahead of the
	// sequential §4.2 candidate scan; the scan itself — and therefore the
	// chosen generalizations, the RandSeed-driven sampling, and the
	// synthesized grammar — is byte-identical regardless of Workers,
	// provided Timeout does not fire (a timed-out run truncates the scan
	// at a wall-clock-dependent point at any worker count). The oracle
	// must be safe for concurrent use when Workers > 1.
	Workers int
	// MergeSampleChecks is the number of extra sampled residuals per
	// direction used to validate a phase-two merge, beyond the paper's
	// doubled-seed residual. Sampling draws from the already-generalized
	// repetition body, so it exercises the interaction between merging and
	// character classes that the fixed residual cannot see. Zero keeps the
	// paper's minimal check set.
	MergeSampleChecks int
	// RandSeed seeds the learner's internal sampling (merge checks).
	RandSeed int64
	// Timeout bounds total learning time; zero means no bound. On timeout
	// the learner finalizes the current language instead of failing.
	Timeout time.Duration
	// Progress, when non-nil, receives phase-level progress events (one per
	// seed entering phase one, one per character-generalization literal,
	// one per phase-two wave, and a terminal "done"). The callback runs
	// synchronously on the learning goroutine, so it must be fast and must
	// not call back into the learner.
	Progress func(Progress)
	// Tracer, when non-nil, receives one completed telemetry.Span per
	// learner phase: "seeds" (validating the seed inputs), then "phase1"
	// and "chargen" per generalized seed, "phase2", and "finalize". Spans
	// are contiguous — each starts where the previous one ended — so their
	// summed wall time equals the run's wall time. Span attributes carry
	// the phase's deltas: checks, candidates, oracle queries, cache hits,
	// speculative wave count, and speculation hit-rate. Emission happens
	// synchronously on the learning goroutine; Tracer implementations must
	// be fast and must not call back into the learner.
	Tracer telemetry.Tracer
	// Logf, when non-nil, receives a Figure 2-style trace of every chosen
	// generalization step.
	Logf func(format string, args ...any)
}

// DefaultOptions returns the configuration used throughout the paper's
// evaluation: both phases on, character generalization over printable
// ASCII plus tab/newline, member-check discarding on.
func DefaultOptions() Options {
	return Options{
		Phase2:              true,
		CharGen:             true,
		GenAlphabet:         bytesets.PrintableWS(),
		DiscardMemberChecks: true,
		MergeSampleChecks:   2,
		RandSeed:            1,
	}
}

// Stats reports what the learner did. The JSON names are the glade-serve
// wire format.
type Stats struct {
	Seeds           int           `json:"seeds"`            // seeds provided
	SeedsSkipped    int           `json:"seeds_skipped"`    // seeds already in the language learned so far (§6.1)
	Candidates      int           `json:"candidates"`       // generalization candidates considered
	Checks          int           `json:"checks"`           // check strings evaluated
	DiscardedChecks int           `json:"discarded_checks"` // checks discarded as members of L̂i
	CharGenChecks   int           `json:"chargen_checks"`   // character-generalization checks
	Waves           int           `json:"waves"`            // speculative prefetch waves issued (Workers > 1)
	MergePairs      int           `json:"merge_pairs"`      // phase-two pairs examined
	Merged          int           `json:"merged"`           // phase-two merges accepted
	OracleQueries   int           `json:"queries"`          // de-duplicated queries reaching the oracle
	CacheHits       int           `json:"cache_hits"`       // queries answered by the cache
	TimedOut        bool          `json:"timed_out"`
	Duration        time.Duration `json:"duration_ns"`
}

// Result is the outcome of Learn.
type Result struct {
	// Grammar is the synthesized context-free grammar Ĉ.
	Grammar *cfg.Grammar
	// Regex is the phase-one/char-gen regular expression (the union over
	// seeds), before phase-two recursion is added.
	Regex rex.Expr
	Stats Stats
}

// Learn synthesizes a context-free grammar approximating the language of
// the oracle from the given seed inputs (Algorithm 1 plus the extensions of
// §6). Every seed must be accepted by the oracle; a rejected seed is an
// error, since the algorithm's invariants assume Ein ⊆ L*.
//
// ctx cancels the run: cancellation is observed between oracle waves and
// inside the batched fan-out, so Learn returns promptly — within one wave
// of oracle queries — wrapping ctx.Err(). An oracle error (the oracle
// itself failed, as opposed to rejecting an input) likewise aborts the run
// and is surfaced; it is never silently treated as a rejection. Unlike
// Options.Timeout, which finalizes the language learned so far, both abort
// paths discard the partial result.
func Learn(ctx context.Context, seeds []string, o oracle.CheckOracle, opts Options) (*Result, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("core: no seed inputs")
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	// The oracle stack: Cached (sharded memo + in-flight dedup) on top of a
	// worker pool fanning batch waves out over the user's oracle. At
	// Workers <= 1 the pool is omitted and every query is issued
	// sequentially, exactly as the paper's algorithm. Underlying-query
	// accounting comes from the cache's miss counter, so no counting
	// wrapper is needed.
	inner := o
	if workers > 1 {
		inner = oracle.Parallel(o, workers)
	}
	cached := oracle.NewCached(inner)
	rngSeed := opts.RandSeed
	if rngSeed == 0 {
		rngSeed = 1
	}
	l := &learner{ctx: ctx, opts: opts, cached: cached, workers: workers, rng: rand.New(rand.NewSource(rngSeed))}
	if opts.Timeout > 0 {
		l.deadline = time.Now().Add(opts.Timeout)
	}
	start := time.Now()
	l.spanClock = start

	sm := l.markSpan()
	verdicts, err := cached.CheckBatch(ctx, seeds)
	if err != nil {
		return nil, fmt.Errorf("core: checking seeds: %w", err)
	}
	for i, v := range verdicts {
		if v != oracle.Accept {
			return nil, fmt.Errorf("core: seed %d (%q) is rejected by the oracle (%v)", i, seeds[i], v)
		}
	}
	l.endSpan("seeds", -1, sm)

	l.emit(Progress{Phase: "seeds", Seeds: len(seeds)})

	// Phase one (and character generalization) per seed, with the §6.1
	// optimization: a seed already matched by the language learned from
	// earlier seeds is skipped.
	for i, seed := range seeds {
		l.stats.Seeds++
		if len(l.roots) > 0 && l.currentMatcher().Match(seed) {
			l.stats.SeedsSkipped++
			continue
		}
		l.emit(Progress{Phase: "phase1", Seed: i + 1, Seeds: len(seeds)})
		sm = l.markSpan()
		root := l.phase1(seed)
		l.endSpan("phase1", i, sm)
		if opts.CharGen {
			l.emit(Progress{Phase: "chargen", Seed: i + 1, Seeds: len(seeds)})
			sm = l.markSpan()
			l.charGen(root)
			l.endSpan("chargen", i, sm)
		}
	}

	// Phase two across all seed components.
	allStars := stars(l.roots)
	var uf *unionFind
	if opts.Phase2 {
		sm = l.markSpan()
		uf = l.phase2(allStars)
		l.endSpan("phase2", -1, sm)
	} else {
		uf = newUnionFind(len(allStars))
	}

	// An aborted run (cancellation or oracle failure) must not hand back a
	// grammar synthesized from artifact rejections; the soft Timeout is the
	// graceful-finalize path, these two are not.
	if l.oracleErr != nil {
		return nil, fmt.Errorf("core: learning aborted: %w", l.oracleErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: learning aborted: %w", err)
	}

	sm = l.markSpan()
	g := toCFG(l.roots, allStars, uf)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: synthesized grammar invalid: %v", err)
	}

	kids := make([]rex.Expr, len(l.roots))
	for i, r := range l.roots {
		kids[i] = toRex(r)
	}
	l.endSpan("finalize", -1, sm)
	hits, misses := cached.Stats()
	l.stats.OracleQueries = misses
	l.stats.CacheHits = hits
	l.stats.Duration = time.Since(start)
	l.emit(Progress{Phase: "done", Seeds: len(seeds)})
	return &Result{Grammar: g, Regex: rex.Union(kids...), Stats: l.stats}, nil
}
