package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"glade/internal/bytesets"
	"glade/internal/cfg"
	"glade/internal/oracle"
	"glade/internal/rex"
)

// xmlParse recognizes the paper's Figure 1 language L(CXML):
// A → (a + ... + z + <a>A</a>)*.
func xmlParse(s string) bool {
	i := 0
	d := 0
	for i < len(s) {
		switch {
		case strings.HasPrefix(s[i:], "<a>"):
			d++
			i += 3
		case strings.HasPrefix(s[i:], "</a>"):
			d--
			if d < 0 {
				return false
			}
			i += 4
		case s[i] >= 'a' && s[i] <= 'z':
			i++
		default:
			return false
		}
	}
	return d == 0
}

func xmlOpts() Options {
	opts := DefaultOptions()
	// Restrict character generalization to the language's alphabet to keep
	// the trace identical to the paper (the result is the same either way).
	opts.GenAlphabet = bytesets.Range('a', 'z').Union(bytesets.OfString("</>"))
	return opts
}

var oXML = oracle.Func(xmlParse)

func TestXMLOracleSanity(t *testing.T) {
	valid := []string{"", "hi", "<a></a>", "<a>hi</a>", "<a><a>x</a>y</a>", "ab<a>c</a>de"}
	for _, s := range valid {
		if !oXML.Accepts(s) {
			t.Fatalf("oracle rejects valid %q", s)
		}
	}
	invalid := []string{"<a>", "</a>", "<a>hi</a", "<a><a></a>", "A", "<b></b>", "<>"}
	for _, s := range invalid {
		if oXML.Accepts(s) {
			t.Fatalf("oracle accepts invalid %q", s)
		}
	}
}

// TestRunningExamplePhase1 reproduces Figure 2 steps R1-R9: the seed
// <a>hi</a> must generalize to exactly (<a>(h + i)*</a>)*.
func TestRunningExamplePhase1(t *testing.T) {
	opts := xmlOpts()
	opts.CharGen = false
	opts.Phase2 = false
	res, err := Learn(context.Background(), []string{"<a>hi</a>"}, oXML, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := rex.String(res.Regex)
	want := "(<a>(h + i)*</a>)*"
	if got != want {
		t.Fatalf("phase 1 regex = %s, want %s", got, want)
	}
}

// TestRunningExampleTrace checks the intermediate languages of Figure 2.
func TestRunningExampleTrace(t *testing.T) {
	opts := xmlOpts()
	opts.CharGen = false
	opts.Phase2 = false
	var trace []string
	opts.Logf = func(format string, args ...any) {
		trace = append(trace, fmt.Sprintf(format, args...))
	}
	if _, err := Learn(context.Background(), []string{"<a>hi</a>"}, oXML, opts); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(trace, "\n")
	// Key intermediate languages from Figure 2, in order.
	milestones := []string{
		"([<a>hi</a>]alt)*",            // R1
		"([<a>hi</a>]rep)*",            // R2 (alt demoted to rep)
		"(<a>([hi]alt)*[</a>]rep)*",    // R3
		"(<a>([hi]alt)*</a>)*",         // R4
		"(<a>([h]rep + [i]alt)*</a>)*", // R5
	}
	pos := 0
	for _, m := range milestones {
		idx := strings.Index(joined[pos:], m)
		if idx < 0 {
			t.Fatalf("milestone %q not found in order in trace:\n%s", m, joined)
		}
		pos += idx
	}
}

// TestRunningExampleCharGen reproduces §6.2: h and i generalize to [a-z].
func TestRunningExampleCharGen(t *testing.T) {
	opts := xmlOpts()
	opts.Phase2 = false
	res, err := Learn(context.Background(), []string{"<a>hi</a>"}, oXML, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := rex.String(res.Regex)
	want := "(<a>([a-z] + [a-z])*</a>)*"
	if got != want {
		t.Fatalf("char-gen regex = %s, want %s", got, want)
	}
}

// TestRunningExamplePhase2 reproduces §5/§6.2 end to end: the final grammar
// must equal L(CXML) — nested tags accepted, imbalance rejected.
func TestRunningExamplePhase2(t *testing.T) {
	res, err := Learn(context.Background(), []string{"<a>hi</a>"}, oXML, xmlOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Merged != 1 {
		t.Fatalf("Merged = %d, want 1", res.Stats.Merged)
	}
	p := cfg.NewParser(res.Grammar)
	mustAccept := []string{
		"", "xyz", "<a></a>", "<a>hi</a>",
		"<a><a>deep</a></a>",
		"ab<a>cd<a>ef</a>gh</a>ij",
		"<a><a><a>x</a></a></a>",
	}
	for _, s := range mustAccept {
		if !p.Accepts(s) {
			t.Errorf("synthesized grammar rejects %q", s)
		}
	}
	mustReject := []string{"<a>", "</a><a>", "<a><a>x</a>", "<b></b>", "HI"}
	for _, s := range mustReject {
		if p.Accepts(s) {
			t.Errorf("synthesized grammar accepts %q", s)
		}
	}
}

// TestPrecisionOnXML: every string sampled from the synthesized grammar
// must be valid — the grammar is a subset of L(CXML).
func TestPrecisionOnXML(t *testing.T) {
	res, err := Learn(context.Background(), []string{"<a>hi</a>"}, oXML, xmlOpts())
	if err != nil {
		t.Fatal(err)
	}
	sm := cfg.NewSampler(res.Grammar, 24)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		s := sm.Sample(rng)
		if !oXML.Accepts(s) {
			t.Fatalf("sampled invalid string %q", s)
		}
	}
}

// TestP1VariantHasNoRecursion: without phase 2 the language stays regular —
// nesting one level deeper than the seed is rejected.
func TestP1VariantHasNoRecursion(t *testing.T) {
	opts := xmlOpts()
	opts.Phase2 = false
	res, err := Learn(context.Background(), []string{"<a>hi</a>"}, oXML, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.NewParser(res.Grammar)
	if !p.Accepts("<a>xyz</a>") {
		t.Fatal("P1 grammar rejects flat string")
	}
	if p.Accepts("<a><a>x</a></a>") {
		t.Fatal("P1 grammar accepts nested tags; phase 2 leaked in")
	}
}

// TestCharGenOffKeepsSeedLetters: disabling character generalization keeps
// the letters restricted to those in the seed (§8.2's ablation).
func TestCharGenOffKeepsSeedLetters(t *testing.T) {
	opts := xmlOpts()
	opts.CharGen = false
	res, err := Learn(context.Background(), []string{"<a>hi</a>"}, oXML, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.NewParser(res.Grammar)
	if !p.Accepts("<a>hihi</a>") {
		t.Fatal("rejects seed letters")
	}
	if p.Accepts("<a>xy</a>") {
		t.Fatal("accepts letters outside the seed with char-gen off")
	}
}

func TestRejectedSeedIsError(t *testing.T) {
	if _, err := Learn(context.Background(), []string{"<a>"}, oXML, xmlOpts()); err == nil {
		t.Fatal("invalid seed accepted")
	}
	if _, err := Learn(context.Background(), nil, oXML, xmlOpts()); err == nil {
		t.Fatal("empty seed set accepted")
	}
}

// TestMultiSeedSkip: a second seed already covered by the first tree is
// skipped (§6.1).
func TestMultiSeedSkip(t *testing.T) {
	res, err := Learn(context.Background(), []string{"<a>hi</a>", "<a>hh</a>", "<a>ii</a>"}, oXML, xmlOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SeedsSkipped != 2 {
		t.Fatalf("SeedsSkipped = %d, want 2", res.Stats.SeedsSkipped)
	}
}

// TestMultiSeedUnion: seeds from disjoint shapes produce a top-level
// alternation covering both, and the phase-two merge checks (which
// substitute each repetition body into the other's context) correctly
// refuse to conflate the two shapes.
func TestMultiSeedUnion(t *testing.T) {
	// Oracle: (a…a) or [b…b] — bracket kind must match the letter.
	o := oracle.Func(func(s string) bool {
		if len(s) >= 2 && s[0] == '(' && s[len(s)-1] == ')' {
			inner := s[1 : len(s)-1]
			return strings.Count(inner, "a") == len(inner)
		}
		if len(s) >= 2 && s[0] == '[' && s[len(s)-1] == ']' {
			inner := s[1 : len(s)-1]
			return strings.Count(inner, "b") == len(inner)
		}
		return false
	})
	opts := DefaultOptions()
	opts.GenAlphabet = bytesets.OfString("ab()[]")
	res, err := Learn(context.Background(), []string{"(aa)", "[bb]"}, o, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.NewParser(res.Grammar)
	for _, s := range []string{"()", "(a)", "(aaaa)", "[]", "[bbb]"} {
		if !p.Accepts(s) {
			t.Errorf("rejects %q", s)
		}
	}
	sm := cfg.NewSampler(res.Grammar, 20)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		s := sm.Sample(rng)
		if !o.Accepts(s) {
			t.Fatalf("sampled invalid %q (shapes conflated)", s)
		}
	}
}

// TestPhase2OvergeneralizationLimitation documents the §7 limitation
// faithfully: when two repetition subexpressions both occur in empty
// contexts, the merge checks cannot distinguish them and GLADE merges,
// trading precision for recall. The target "all a's or all b's" therefore
// generalizes to (a+b)*.
func TestPhase2OvergeneralizationLimitation(t *testing.T) {
	o := oracle.Func(func(s string) bool {
		return strings.Count(s, "a") == len(s) || strings.Count(s, "b") == len(s)
	})
	opts := DefaultOptions()
	opts.GenAlphabet = bytesets.OfString("ab")
	res, err := Learn(context.Background(), []string{"aa", "bb"}, o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Merged == 0 {
		t.Fatal("expected the empty-context stars to merge (paper §5.3 checks pass)")
	}
	if !cfg.NewParser(res.Grammar).Accepts("ab") {
		t.Fatal("expected the documented overgeneralization to (a+b)*")
	}
}

// TestDyck: GLADE learns a matching-parentheses grammar (Def 5.2) from one
// seed — the headline capability of phase 2.
func TestDyck(t *testing.T) {
	o := oracle.Func(func(s string) bool {
		d := 0
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case '(':
				d++
			case ')':
				d--
				if d < 0 {
					return false
				}
			default:
				return false
			}
		}
		return d == 0
	})
	opts := DefaultOptions()
	opts.GenAlphabet = bytesets.OfString("()")
	res, err := Learn(context.Background(), []string{"(())"}, o, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.NewParser(res.Grammar)
	for _, s := range []string{"", "()", "(())", "((()))", "()()", "(()())"} {
		if !p.Accepts(s) {
			t.Errorf("rejects balanced %q", s)
		}
	}
	for _, s := range []string{"(", ")", ")(", "(()"} {
		if p.Accepts(s) {
			t.Errorf("accepts unbalanced %q", s)
		}
	}
	sm := cfg.NewSampler(res.Grammar, 20)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		if s := sm.Sample(rng); !o.Accepts(s) {
			t.Fatalf("sampled invalid %q", s)
		}
	}
}

// TestTimeoutReturnsPartialResult: with an immediate deadline the learner
// must still terminate and return a grammar containing the seed.
func TestTimeoutReturnsPartialResult(t *testing.T) {
	opts := xmlOpts()
	opts.Timeout = 1 // one nanosecond: expires immediately
	res, err := Learn(context.Background(), []string{"<a>hi</a>"}, oXML, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.TimedOut {
		t.Fatal("TimedOut not reported")
	}
	p := cfg.NewParser(res.Grammar)
	if !p.Accepts("<a>hi</a>") {
		t.Fatal("partial grammar does not contain the seed")
	}
}

// TestSeedAlwaysInLanguage is the core monotonicity invariant (Prop 4.1):
// whatever the oracle, the seed remains in the learned language.
func TestSeedAlwaysInLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	oracles := []oracle.Func{
		oXML,
		oracle.Func(func(s string) bool { return len(s)%2 == 0 }),
		oracle.Func(func(s string) bool { return !strings.Contains(s, "zz") }),
		oracle.Func(func(s string) bool { return true }),
	}
	opts := DefaultOptions()
	opts.GenAlphabet = bytesets.OfString("abz<>/")
	for _, o := range oracles {
		for trial := 0; trial < 6; trial++ {
			seed := randomSeed(rng)
			if !o.Accepts(seed) {
				continue
			}
			res, err := Learn(context.Background(), []string{seed}, o, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !cfg.NewParser(res.Grammar).Accepts(seed) {
				t.Fatalf("seed %q not in learned language", seed)
			}
		}
	}
}

func randomSeed(rng *rand.Rand) string {
	n := rng.Intn(8)
	b := make([]byte, n*2)
	letters := "ab<>/z"
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// TestStatsPopulated sanity-checks the counters.
func TestStatsPopulated(t *testing.T) {
	res, err := Learn(context.Background(), []string{"<a>hi</a>"}, oXML, xmlOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Candidates == 0 || s.Checks == 0 || s.OracleQueries == 0 {
		t.Fatalf("stats not populated: %+v", s)
	}
	if s.CharGenChecks == 0 {
		t.Fatal("char-gen checks not counted")
	}
	if s.MergePairs == 0 {
		t.Fatal("merge pairs not counted")
	}
	if s.Seeds != 1 {
		t.Fatalf("Seeds = %d", s.Seeds)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	uf.union(0, 1)
	uf.union(2, 3)
	uf.union(1, 3)
	if uf.find(0) != uf.find(2) {
		t.Fatal("union not transitive")
	}
	if uf.find(4) == uf.find(0) || uf.find(4) == uf.find(5) {
		t.Fatal("spurious union")
	}
	uf.union(4, 4)
	if uf.find(4) != uf.find(4) {
		t.Fatal("self union broke find")
	}
}

func TestRender(t *testing.T) {
	n := &node{kind: nStar, kids: []*node{{
		kind: nSeq,
		kids: []*node{
			lit("<a>", Context{}),
			{kind: nHole, hole: hAlt, str: "hi"},
			{kind: nHole, hole: hRep, str: "</a>"},
		},
	}}}
	got := render(n)
	want := "(<a>[hi]alt[</a>]rep)*"
	if got != want {
		t.Fatalf("render = %q, want %q", got, want)
	}
}
