package core

import (
	"fmt"

	"glade/internal/cfg"
)

// toCFG translates the learned trees into a context-free grammar following
// §5.1, with phase-two merges applied: each union-find class of repetition
// subexpressions becomes a single nonterminal A with productions
//
//	A → ε | body_m A        (one pair per member star m)
//
// which is the Kleene-star expansion of the paper (Ai → α1 A'i Ak with
// A'i → ε | A'i Aj) shared across the merged stars. Alternation nodes get
// their own nonterminals; literals and character classes inline as terminal
// symbols.
func toCFG(roots []*node, allStars []*node, uf *unionFind) *cfg.Grammar {
	g := cfg.New()
	start := g.AddNT("S")
	g.Start = start

	starIdx := make(map[*node]int, len(allStars))
	for i, s := range allStars {
		starIdx[s] = i
	}
	// One nonterminal per merge class, created on first use so numbering is
	// stable in preorder.
	classNT := map[int]int{}
	altCount := 0

	var translate func(n *node) []cfg.Sym
	ntFor := func(star *node) int {
		root := uf.find(starIdx[star])
		if nt, ok := classNT[root]; ok {
			return nt
		}
		nt := g.AddNT(fmt.Sprintf("A%d", len(classNT)+1))
		classNT[root] = nt
		return nt
	}

	// First pass: assign class nonterminals in preorder for stable names,
	// and record each class's member stars in order.
	members := map[int][]*node{}
	for _, s := range allStars {
		nt := ntFor(s)
		members[nt] = append(members[nt], s)
	}

	translate = func(n *node) []cfg.Sym {
		switch n.kind {
		case nLit:
			return cfg.Str(n.str)
		case nClass:
			return []cfg.Sym{cfg.T(n.set)}
		case nSeq:
			var out []cfg.Sym
			for _, k := range n.kids {
				out = append(out, translate(k)...)
			}
			return out
		case nAlt:
			altCount++
			nt := g.AddNT(fmt.Sprintf("Alt%d", altCount))
			for _, k := range n.kids {
				g.Add(nt, translate(k)...)
			}
			return []cfg.Sym{cfg.N(nt)}
		case nStar:
			return []cfg.Sym{cfg.N(ntFor(n))}
		case nHole:
			// Holes only remain if learning was aborted mid-phase-1; treat
			// them as their literal substring, the current language.
			return cfg.Str(n.str)
		}
		panic("core: unknown node kind")
	}

	// Emit class productions. Order of member bodies follows star preorder.
	// The encoding is A → ε | B A with B holding one production per member
	// body: the same language as the paper's A'i → ε | A'i Aj expansions,
	// but with a continuation probability of 1/2 under the uniform sampler
	// regardless of how many repetition subexpressions were merged into the
	// class (k continuing productions out of k+1 would make samples from
	// heavily-merged grammars explode in length).
	emitted := map[int]bool{}
	for _, s := range allStars {
		nt := ntFor(s)
		if emitted[nt] {
			continue
		}
		emitted[nt] = true
		bodies := members[nt]
		if len(bodies) == 1 {
			g.Add(nt) // A → ε
			g.Add(nt, append(translate(bodies[0].kids[0]), cfg.N(nt))...)
			continue
		}
		bnt := g.AddNT(g.Names[nt] + "b")
		g.Add(nt) // A → ε
		g.Add(nt, cfg.N(bnt), cfg.N(nt))
		for _, m := range bodies {
			g.Add(bnt, translate(m.kids[0])...)
		}
	}

	// Start productions: one per seed tree (the top-level alternation of
	// §6.1).
	for _, r := range roots {
		g.Add(start, translate(r)...)
	}
	return g
}
