package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"glade/internal/cfg"
	"glade/internal/oracle"
	"glade/internal/programs"
)

// TestGoldenGrammars is the migration guarantee of the context/verdict
// plumbing: the grammars learned for sed and xml at Workers 1 and 8 must be
// byte-identical to the ones the pre-migration engine synthesized (the
// committed testdata goldens). Any drift means the v2 oracle stack changed
// a decision the §4.2 scan makes, which the API redesign must never do.
// The recognition ladder runs inside learning (phase-2 candidate checks go
// through Compiled.Accepts), so passing also pins that the DFA/VM rungs do
// not perturb a single learner decision; the ladder's own verdicts are
// re-checked against the reference parser on the learned result below.
func TestGoldenGrammars(t *testing.T) {
	if testing.Short() {
		t.Skip("full program learning")
	}
	for _, name := range []string{"sed", "xml"} {
		p := programs.ByName(name)
		if p == nil {
			t.Fatalf("program %q missing", name)
		}
		o := oracle.Func(func(s string) bool { return p.Run(s).OK })
		seeds := p.Seeds()
		if len(seeds) > 4 {
			seeds = seeds[:4] // matches the committed goldens
		}
		for _, workers := range []int{1, 8} {
			golden := filepath.Join("testdata", fmt.Sprintf("golden_%s_w%d.grammar", name, workers))
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			opts := DefaultOptions()
			opts.Workers = workers
			res, err := Learn(context.Background(), seeds, o, opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if got := cfg.Marshal(res.Grammar); got != string(want) {
				t.Errorf("%s workers=%d: grammar drifted from the pre-migration golden (%s)", name, workers, golden)
			}
			assertLadderSound(t, fmt.Sprintf("%s workers=%d", name, workers), res.Grammar, seeds)
		}
	}
}

// assertLadderSound checks the compiled recognition ladder against the
// map-based reference parser on a small mixed corpus for the learned
// grammar: identical verdicts overall, and — the prefilter's soundness
// contract — no DFA rejection of an input the reference accepts.
func assertLadderSound(t *testing.T, name string, g *cfg.Grammar, seeds []string) {
	t.Helper()
	parser := cfg.NewParser(g)
	comp := cfg.Compile(g)
	corpus := append([]string(nil), seeds...)
	corpus = append(corpus, "", "x", "<<<", "s/a/b/", "<a>text</a>")
	for _, s := range seeds {
		if len(s) > 1 {
			corpus = append(corpus, s[1:], s[:len(s)-1], s+s)
		}
	}
	for _, in := range corpus {
		want := parser.Accepts(in)
		if got, rung := comp.AcceptsRung(in); got != want {
			t.Errorf("%s: ladder says %v via %s rung, reference parser says %v for %q", name, got, rung, want, in)
		}
		if comp.PrefilterRejects(in) && want {
			t.Errorf("%s: DFA prefilter rejects %q, which the reference parser accepts", name, in)
		}
	}
}
