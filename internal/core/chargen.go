package core

// charGen is the character-generalization phase of §6.2: for each terminal
// position σi of each literal in the synthesized regular expression, and
// each other byte σ of the generalization alphabet, it proposes replacing
// σi by (σi + σ), validated by the single check γ·σ1…σi−1·σ·σi+1…σk·δ.
// Each (position, byte) pair is considered exactly once.
//
// Every (position, byte) check result is consumed — there is no accept
// point that cuts the scan short — so this phase parallelizes perfectly:
// with Workers > 1, checks are prefetched in full-width waves through the
// batched oracle with zero wasted speculation.
//
// Literals whose context was recorded during phase one are rewritten in
// place: positions that generalized to more than one byte become character
// classes.
func (l *learner) charGen(root *node) {
	if l.opts.GenAlphabet.IsEmpty() {
		return
	}
	var lits []*node
	walk(root, func(n *node) {
		if n.kind == nLit && n.str != "" {
			lits = append(lits, n)
		}
	})
	alphabet := l.opts.GenAlphabet.Bytes()
	for li, n := range lits {
		if l.stopped() {
			return
		}
		l.emit(Progress{Phase: "chargen", Lit: li + 1, Lits: len(lits)})
		s := n.str
		γ, δ := n.ctx.Left, n.ctx.Right

		// Flatten the (position, byte) candidates of this literal; the scan
		// visits them in the seed's order (positions left to right, alphabet
		// order within a position).
		type cgCand struct {
			pos int
			σ   byte
		}
		cands := make([]cgCand, 0, len(s)*len(alphabet))
		for i := 0; i < len(s); i++ {
			for _, σ := range alphabet {
				if σ == s[i] {
					continue
				}
				cands = append(cands, cgCand{i, σ})
			}
		}

		sets := make([][]byte, len(s))
		for i := range sets {
			sets[i] = []byte{s[i]}
		}
		anyWidened := false
		w := l.newWaves(false)
	scan:
		for lo := 0; lo < len(cands); {
			hi := min(lo+w.nextSize(), len(cands))
			if w.speculate {
				checks := make([]string, 0, hi-lo)
				for _, c := range cands[lo:hi] {
					checks = append(checks, γ+s[:c.pos]+string(c.σ)+s[c.pos+1:]+δ)
				}
				l.prefetch(checks)
			}
			for _, c := range cands[lo:hi] {
				l.stats.CharGenChecks++
				if l.passes(γ + s[:c.pos] + string(c.σ) + s[c.pos+1:] + δ) {
					sets[c.pos] = append(sets[c.pos], c.σ)
					anyWidened = true
				}
			}
			lo = hi
			if l.stopped() {
				break scan
			}
		}
		if !anyWidened {
			continue
		}
		l.rewriteLit(n, sets)
		l.matcherDirty = true
	}
}

// rewriteLit replaces literal node n with a sequence mixing literal runs
// (positions that stayed singletons) and character classes (positions that
// widened). A literal that widened at every position with the same set
// still becomes per-position classes; runs of singletons re-merge into
// literal nodes to keep the tree small.
func (l *learner) rewriteLit(n *node, sets [][]byte) {
	s := n.str
	var kids []*node
	i := 0
	for i < len(s) {
		if len(sets[i]) == 1 {
			j := i
			for j < len(s) && len(sets[j]) == 1 {
				j++
			}
			kids = append(kids, lit(s[i:j], Context{}))
			i = j
			continue
		}
		cls := &node{kind: nClass}
		for _, b := range sets[i] {
			cls.set.Add(b)
		}
		kids = append(kids, cls)
		i++
	}
	if len(kids) == 1 {
		*n = *kids[0]
		return
	}
	n.kind = nSeq
	n.str = ""
	n.kids = kids
}
