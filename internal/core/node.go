// Package core implements the GLADE grammar-synthesis algorithm of the
// paper: phase one regular-expression generalization (§4), character
// generalization (§6.2), the regex→CFG translation and phase two repetition
// merging (§5), and the multi-seed driver (§6.1).
package core

import (
	"strings"

	"glade/internal/bytesets"
	"glade/internal/rex"
)

// Context is the (γ, δ) pair of §4.3: strings such that γ α' δ ∈ L(P α' Q)
// for every α', where P and Q are the expressions surrounding the annotated
// node. Checks are built as γ·ρ·δ for residuals ρ.
type Context struct {
	Left  string // γ
	Right string // δ
}

type nodeKind int8

const (
	nHole  nodeKind = iota // bracketed substring [α]τ awaiting generalization
	nLit                   // terminal string
	nClass                 // single-byte character class (from char generalization)
	nSeq                   // concatenation
	nAlt                   // alternation
	nStar                  // repetition; exactly one child
)

type holeKind int8

const (
	hRep holeKind = iota // [α]rep
	hAlt                 // [α]alt
)

// node is one vertex of the annotated regular expression the learner
// mutates in place. The paper's bracketed substrings [α]τ are nHole nodes;
// generalization steps replace a hole with literal/star/alternation
// structure containing fresh holes.
type node struct {
	kind nodeKind
	hole holeKind // nHole only

	str  string       // nHole: the bracketed substring α; nLit: the literal
	set  bytesets.Set // nClass
	kids []*node      // nSeq, nAlt; nStar has exactly one child

	// ctx is maintained on nHole (check construction), nLit (character
	// generalization), and nStar (phase-two merge checks).
	ctx Context
	// noFullStar marks rep holes that must not propose the full-span
	// repetition candidate α = ε·α·ε → ([α]alt)*. It is set on holes that
	// were derived from an alternation bracket (the Talt ::= Trep fallback
	// and the [α1]rep part of an alternation candidate): proposing the
	// full-span star there would re-bracket the same substring occurrence,
	// which §4.4's "each substring is considered at most once" forbids and
	// which would otherwise loop forever ([α]alt → [α]rep → ([α]alt)* → …).
	// Figure 2 shows the algorithm skipping the candidate at steps R3, R7,
	// and R8.
	noFullStar bool
	// bodySeed is, for nStar, the seed substring α2 whose generalization
	// became the star body; doubled, it is the phase-two merge residual.
	bodySeed string
}

func lit(s string, ctx Context) *node { return &node{kind: nLit, str: s, ctx: ctx} }

// toRex converts the (possibly still hole-containing) tree to a matchable
// regular expression; holes are treated as their literal substring, which
// is exactly the current language L̂i of the paper.
func toRex(n *node) rex.Expr {
	switch n.kind {
	case nHole, nLit:
		return rex.Literal(n.str)
	case nClass:
		return rex.OneOf(n.set)
	case nSeq:
		kids := make([]rex.Expr, len(n.kids))
		for i, k := range n.kids {
			kids[i] = toRex(k)
		}
		return rex.Concat(kids...)
	case nAlt:
		kids := make([]rex.Expr, len(n.kids))
		for i, k := range n.kids {
			kids[i] = toRex(k)
		}
		return rex.Union(kids...)
	case nStar:
		return rex.Rep(toRex(n.kids[0]))
	}
	panic("core: unknown node kind")
}

// render prints the tree in the paper's annotated notation, with holes as
// [α]rep / [α]alt, for trace output and tests.
func render(n *node) string {
	var b strings.Builder
	renderTo(&b, n, 0)
	return b.String()
}

func renderTo(b *strings.Builder, n *node, prec int) {
	switch n.kind {
	case nHole:
		b.WriteByte('[')
		b.WriteString(escape(n.str))
		b.WriteByte(']')
		if n.hole == hRep {
			b.WriteString("rep")
		} else {
			b.WriteString("alt")
		}
	case nLit:
		if n.str == "" {
			b.WriteString("ε")
			return
		}
		b.WriteString(escape(n.str))
	case nClass:
		b.WriteString(n.set.String())
	case nSeq:
		if prec > 1 {
			b.WriteByte('(')
		}
		for _, k := range n.kids {
			renderTo(b, k, 2)
		}
		if prec > 1 {
			b.WriteByte(')')
		}
	case nAlt:
		if prec > 0 {
			b.WriteByte('(')
		}
		for i, k := range n.kids {
			if i > 0 {
				b.WriteString(" + ")
			}
			renderTo(b, k, 1)
		}
		if prec > 0 {
			b.WriteByte(')')
		}
	case nStar:
		child := n.kids[0]
		needParens := child.kind != nClass
		if needParens {
			b.WriteByte('(')
		}
		renderTo(b, child, 0)
		if needParens {
			b.WriteByte(')')
		}
		b.WriteByte('*')
	}
}

func escape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\n':
			b.WriteString(`\n`)
		case c == '\t':
			b.WriteString(`\t`)
		case c < 32 || c > 126:
			const hex = "0123456789abcdef"
			b.WriteString(`\x`)
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&15])
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// walk visits the subtree rooted at n in preorder.
func walk(n *node, visit func(*node)) {
	visit(n)
	for _, k := range n.kids {
		walk(k, visit)
	}
}

// stars returns all star nodes under the given roots in preorder — the
// repetition subexpressions that phase two may merge.
func stars(roots []*node) []*node {
	var out []*node
	for _, r := range roots {
		walk(r, func(n *node) {
			if n.kind == nStar {
				out = append(out, n)
			}
		})
	}
	return out
}
