package core

import (
	"context"
	"testing"

	"glade/internal/bytesets"
	"glade/internal/oracle"
)

// TestProgressEvents checks the shape of the phase-level progress stream:
// phases appear in learning order, effort counters are monotone, and the
// stream terminates with exactly one "done" event.
func TestProgressEvents(t *testing.T) {
	var events []Progress
	opts := xmlOpts()
	opts.Progress = func(p Progress) { events = append(events, p) }
	res, err := Learn(context.Background(), []string{"<a>hi</a>", "xy"}, oXML, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 4 {
		t.Fatalf("expected a multi-event stream, got %d events: %+v", len(events), events)
	}
	if events[0].Phase != "seeds" || events[0].Seeds != 2 {
		t.Errorf("first event should be seeds/2, got %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Phase != "done" {
		t.Errorf("last event should be done, got %+v", last)
	}
	if last.Queries != res.Stats.OracleQueries || last.Checks != res.Stats.Checks {
		t.Errorf("done counters %d/%d != stats %d/%d",
			last.Queries, last.Checks, res.Stats.OracleQueries, res.Stats.Checks)
	}
	order := map[string]int{"seeds": 0, "phase1": 1, "chargen": 1, "phase2": 2, "done": 3}
	rank, checks, queries, done := -1, 0, 0, 0
	for i, ev := range events {
		r, ok := order[ev.Phase]
		if !ok {
			t.Fatalf("event %d: unknown phase %q", i, ev.Phase)
		}
		if r < rank {
			t.Errorf("event %d: phase %q after a later phase", i, ev.Phase)
		}
		rank = max(rank, r)
		if ev.Checks < checks || ev.Queries < queries {
			t.Errorf("event %d: counters went backwards: %+v", i, ev)
		}
		checks, queries = ev.Checks, ev.Queries
		if ev.Phase == "done" {
			done++
		}
	}
	if done != 1 {
		t.Errorf("expected exactly one done event, got %d", done)
	}
}

// TestProgressNilIsQuiet ensures learning without a callback emits nothing
// and the hook adds no observable cost path.
func TestProgressNilIsQuiet(t *testing.T) {
	opts := DefaultOptions()
	opts.GenAlphabet = bytesets.OfString("ab")
	if _, err := Learn(context.Background(), []string{"ab"}, oracle.Func(func(string) bool { return true }), opts); err != nil {
		t.Fatal(err)
	}
}
