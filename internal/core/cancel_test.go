package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"glade/internal/oracle"
)

// TestLearnCancelReturnsPromptly is the cancellation contract of the v2
// learner: cancelling the context mid-phase makes Learn return quickly —
// within one oracle wave — with an error wrapping ctx.Err(), and the
// oracle stops being queried. Run under -race this also exercises the
// concurrent cancellation paths of the cache and the worker pool.
func TestLearnCancelReturnsPromptly(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var queries atomic.Int64
			var atCancel atomic.Int64
			o := oracle.CheckFunc(func(qctx context.Context, s string) (oracle.Verdict, error) {
				n := queries.Add(1)
				if n == 40 {
					atCancel.Store(n)
					cancel()
				}
				if err := qctx.Err(); err != nil {
					return oracle.Reject, err
				}
				if figure1XML(s) {
					return oracle.Accept, nil
				}
				return oracle.Reject, nil
			})
			opts := DefaultOptions()
			opts.Workers = workers
			start := time.Now()
			res, err := Learn(ctx, []string{"<a>hi</a>", "xyz<a>q</a>"}, o, opts)
			elapsed := time.Since(start)
			if err == nil {
				t.Fatalf("cancelled Learn returned a grammar: %v", res.Grammar)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled Learn err = %v, want context.Canceled", err)
			}
			if elapsed > 10*time.Second {
				t.Fatalf("cancelled Learn took %v, want prompt return", elapsed)
			}
			// After the learner observed the cancellation, no further oracle
			// queries may be issued: the overshoot is bounded by the wave
			// that was already in flight (wave cap is workers*8, each
			// candidate contributing up to 2 checks) plus the one sequential
			// scan that trips on the sticky error.
			total, mark := queries.Load(), atCancel.Load()
			if limit := mark + int64(workers)*16 + 64; total > limit {
				t.Fatalf("oracle saw %d queries, %d at cancel — cancellation leaked past one wave (limit %d)",
					total, mark, limit)
			}
		})
	}
}

// TestLearnCancelledBeforeStart checks the degenerate case: a context
// already cancelled at the call fails the seed check, not the phases.
func TestLearnCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Learn(ctx, []string{"<a>hi</a>"}, oracle.Func(figure1XML), DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestLearnSurfacesOracleError is the error half of the v2 contract: an
// oracle that fails mid-run (as opposed to rejecting inputs) must abort
// learning with that error — never silently read as "reject" and keep
// synthesizing.
func TestLearnSurfacesOracleError(t *testing.T) {
	boom := errors.New("target binary vanished")
	for _, workers := range []int{1, 8} {
		var queries atomic.Int64
		o := oracle.CheckFunc(func(ctx context.Context, s string) (oracle.Verdict, error) {
			if queries.Add(1) > 30 {
				return oracle.Reject, boom
			}
			if figure1XML(s) {
				return oracle.Accept, nil
			}
			return oracle.Reject, nil
		})
		opts := DefaultOptions()
		opts.Workers = workers
		res, err := Learn(context.Background(), []string{"<a>hi</a>"}, o, opts)
		if err == nil {
			t.Fatalf("workers=%d: broken oracle still returned a grammar: %v", workers, res.Grammar)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want the oracle error", workers, err)
		}
	}
}

// TestLearnSeedOracleError checks the error surfaces from the very first
// wave (seed validation) too, distinct from the "seed rejected" error.
func TestLearnSeedOracleError(t *testing.T) {
	boom := errors.New("oracle down")
	o := oracle.CheckFunc(func(ctx context.Context, s string) (oracle.Verdict, error) {
		return oracle.Reject, boom
	})
	_, err := Learn(context.Background(), []string{"<a>hi</a>"}, o, DefaultOptions())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the oracle error", err)
	}
}
