package bench

import (
	"context"
	"strings"
	"testing"
	"time"
)

func smallConfig() Config {
	return Config{Seeds: 6, EvalSamples: 120, Timeout: 30 * time.Second, FuzzSamples: 1500, RandSeed: 1}
}

func TestFig4Shape(t *testing.T) {
	rows := Fig4(context.Background(), smallConfig())
	if len(rows) != 16 {
		t.Fatalf("expected 16 rows, got %d", len(rows))
	}
	f1 := map[string]map[string]float64{}
	for _, r := range rows {
		if f1[r.Target] == nil {
			f1[r.Target] = map[string]float64{}
		}
		f1[r.Target][r.Learner] = r.F1
	}
	// The paper's headline shape: GLADE beats both baselines on every
	// target; L-Star's only real showing is grep; RPNI fails everywhere.
	for _, tgt := range []string{"url", "grep", "lisp", "xml"} {
		if f1[tgt]["glade"] < f1[tgt]["rpni"] {
			t.Errorf("%s: glade F1 %.2f < rpni %.2f", tgt, f1[tgt]["glade"], f1[tgt]["rpni"])
		}
	}
	for _, tgt := range []string{"grep", "lisp", "xml"} {
		if f1[tgt]["glade"] < f1[tgt]["lstar"] {
			t.Errorf("%s: glade F1 %.2f < lstar %.2f", tgt, f1[tgt]["glade"], f1[tgt]["lstar"])
		}
	}
	if f1["xml"]["glade"] < 0.4 || f1["grep"]["glade"] < 0.7 {
		t.Errorf("glade F1 too low: xml %.2f grep %.2f", f1["xml"]["glade"], f1["grep"]["glade"])
	}
}

func TestFig4c(t *testing.T) {
	rows := Fig4c(context.Background(), smallConfig(), []int{2, 5})
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Recall == 0 {
			t.Errorf("seeds=%d: zero recall", r.Seeds)
		}
	}
}

func TestFig5(t *testing.T) {
	out := Fig5(context.Background(), smallConfig())
	for _, tgt := range []string{"url", "grep", "lisp", "xml"} {
		if !strings.Contains(out[tgt], "::=") {
			t.Errorf("%s: no grammar rendered: %s", tgt, out[tgt])
		}
	}
}

func TestFig6And7(t *testing.T) {
	ResetCache()
	c := smallConfig()
	rows, err := Fig6(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("Fig6 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Points == 0 || r.SeedLines == 0 || r.GrammarSize == 0 {
			t.Errorf("incomplete row %+v", r)
		}
	}
	cov, err := Fig7a(context.Background(), c, []string{"xml", "sed"})
	if err != nil {
		t.Fatal(err)
	}
	byProg := map[string]map[string]CoverageRow{}
	for _, r := range cov {
		if byProg[r.Program] == nil {
			byProg[r.Program] = map[string]CoverageRow{}
		}
		byProg[r.Program][r.Fuzzer] = r
	}
	// Shape: on the structured XML format the grammar fuzzer beats naive.
	if byProg["xml"]["glade"].Normalized < 1.0 {
		t.Errorf("xml: glade normalized %.2f < 1", byProg["xml"]["glade"].Normalized)
	}
	for _, r := range cov {
		if r.Fuzzer == "naive" && r.Normalized != 1.0 {
			t.Errorf("naive normalization broken: %+v", r)
		}
	}
	curve, err := Fig7c(context.Background(), c, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 9 {
		t.Errorf("Fig7c rows = %d, want 9", len(curve))
	}
	sample, err := Fig8(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if sample == "" {
		t.Error("Fig8 produced no sample")
	}
}

func TestFig7b(t *testing.T) {
	ResetCache()
	c := smallConfig()
	c.FuzzSamples = 800
	rows, err := Fig7b(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Fuzzer] = true
	}
	if !seen["handwritten"] || !seen["testsuite"] {
		t.Fatalf("missing upper-bound rows: %+v", seen)
	}
}

func TestAblations(t *testing.T) {
	c := smallConfig()
	c.Seeds = 4
	c.EvalSamples = 80
	rows := Ablations(context.Background(), c)
	if len(rows) != 4*len(AblationVariants) {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	byKey := map[string]AblationRow{}
	for _, r := range rows {
		byKey[r.Target+"/"+r.Variant] = r
	}
	// Reversed candidate ordering must hurt recall on xml (the §4.2 claim).
	if byKey["xml/reverse-ordering"].Recall > byKey["xml/full"].Recall {
		t.Errorf("reverse ordering did not reduce xml recall: %.2f vs %.2f",
			byKey["xml/reverse-ordering"].Recall, byKey["xml/full"].Recall)
	}
}

func TestTestSuitesAreValid(t *testing.T) {
	for _, name := range []string{"python", "ruby", "javascript"} {
		suite := TestSuite(name)
		if len(suite) < 30 {
			t.Fatalf("%s suite too small: %d", name, len(suite))
		}
	}
	if TestSuite("nope") != nil {
		t.Fatal("unknown suite non-nil")
	}
}
