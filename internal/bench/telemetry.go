package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"glade/internal/metrics"
	"glade/internal/oracle"
	"glade/internal/telemetry"
)

// TelemetryRow is one measurement of the telemetry figure: oracle dispatch
// throughput with and without the observability stack (metrics.QueryTimer
// plus a mirrored telemetry.Histogram) in the query path.
type TelemetryRow struct {
	// Mode is "bare" (pool straight over the oracle), "instrumented"
	// (pool over a QueryTimer mirroring onto a registry histogram — the
	// exact stack a glade-serve job runs), or "resilient" (pool over the
	// retry/breaker wrapper with no faults occurring — its fast path).
	Mode string
	// Workers is the pool concurrency the batch ran at.
	Workers int
	// Queries is the batch size of each repetition.
	Queries int
	// Seconds is the fastest repetition's wall-clock time (min-of-reps
	// suppresses scheduler noise; the gate compares best cases).
	Seconds float64
	// QPS is Queries / Seconds.
	QPS float64
	// NsPerQuery is the per-query mean in nanoseconds.
	NsPerQuery float64
	// OverheadPct, on instrumented and resilient rows, is the slowdown
	// versus bare in percent (negative = faster, noise). It is the
	// smallest slowdown over the paired repetitions — each tuple runs
	// back-to-back under the same machine load, so the best pair is the
	// noise-floor estimate of the stack's true cost.
	OverheadPct float64
}

// telemetryInputs synthesizes the query corpus: ~4 KB JSON documents, one
// quarter corrupted, so builtin:json does the per-query work of a realistic
// membership oracle (10+ microseconds of parsing — in-process validators on
// real inputs, let alone exec oracles, sit at or far above this) and the
// measured overhead ratio reflects a real learner's accept/reject mix
// rather than trivial empty-input dispatch.
func telemetryInputs(n int) []string {
	base := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		var b strings.Builder
		fmt.Fprintf(&b, `{"id":%d,"tags":[`, i)
		for j := 0; j < 96; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `"t%02d-%02d"`, i, j)
		}
		b.WriteString(`],"payload":"`)
		for j := 0; j < 384; j++ {
			fmt.Fprintf(&b, "%08x", i*384+j)
		}
		b.WriteString(`"}`)
		s := b.String()
		if i%4 == 3 {
			s = s[:len(s)-1] // drop the closing brace: reject path
		}
		base = append(base, s)
	}
	out := make([]string, n)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out
}

// TelemetryBench measures the cost of the observability stack on the oracle
// hot path: the same builtin:json batch runs through a bare worker pool and
// through the instrumented pool (QueryTimer with a histogram mirror, as
// every service job is wired), at each worker count, reps times each,
// keeping the fastest run. scripts/telemetrycheck gates CI on the
// instrumented overhead staying small.
func TelemetryBench(ctx context.Context, workersList []int, queries, reps int) ([]TelemetryRow, error) {
	if reps < 1 {
		reps = 1
	}
	spec := oracle.Spec{Type: oracle.SpecBuiltin, Name: "json"}
	inputs := telemetryInputs(queries)
	var rows []TelemetryRow
	for _, w := range workersList {
		t, err := telemetryTime(ctx, spec, w, inputs, reps)
		if err != nil {
			return nil, err
		}
		mkRow := func(mode string, secs float64) TelemetryRow {
			r := TelemetryRow{Mode: mode, Workers: w, Queries: queries, Seconds: secs}
			if secs > 0 {
				r.QPS = float64(queries) / secs
				r.NsPerQuery = secs * 1e9 / float64(queries)
			}
			return r
		}
		bRow := mkRow("bare", t.bare)
		iRow := mkRow("instrumented", t.instr)
		iRow.OverheadPct = t.instrOverheadPct
		rRow := mkRow("resilient", t.resil)
		rRow.OverheadPct = t.resilOverheadPct
		rows = append(rows, bRow, iRow, rRow)
	}
	return rows, nil
}

// telemetryTiming is telemetryTime's result: fastest seconds per stack
// and the noise-floor overhead of each wrapped stack versus bare.
type telemetryTiming struct {
	bare, instr, resil                 float64
	instrOverheadPct, resilOverheadPct float64
}

// telemetryTime runs reps interleaved bare/instrumented/resilient batch
// tuples through the three pools. It returns each stack's fastest
// wall-clock seconds and, for each wrapped stack, the smallest per-tuple
// slowdown versus bare in percent. Interleaving keeps clock-frequency
// drift and cache warmth from landing on one side of the comparison, and
// the per-tuple minimum — each tuple runs back-to-back under the same
// machine load — is the noise-floor estimate of the stack's true cost.
// The instrumented stack is the service's exact one: pool → QueryTimer
// (stats + latency histogram) → mirror histogram (the shared per-source
// registry instrument) → oracle. The resilient stack is the fault-free
// fast path of the retry/breaker wrapper as a job with -retries builds
// it: pool → Resilient (retry budget + closed breaker, no faults ever
// fire) → oracle.
func telemetryTime(ctx context.Context, spec oracle.Spec, workers int,
	inputs []string, reps int) (telemetryTiming, error) {
	var t telemetryTiming
	o, _, err := spec.Build(oracle.BuildOptions{Workers: workers})
	if err != nil {
		return t, err
	}
	timer := metrics.NewQueryTimer(o)
	timer.Mirror(&telemetry.Histogram{})
	res := oracle.NewResilient(o, oracle.ResilientOptions{
		Retry:   oracle.RetryPolicy{MaxAttempts: 3},
		Breaker: oracle.BreakerPolicy{Threshold: 16},
	})
	barePool := oracle.Parallel(o, workers)
	instrPool := oracle.Parallel(timer, workers)
	resilPool := oracle.Parallel(res, workers)
	one := func(pool *oracle.Pool, mode string) (float64, error) {
		start := time.Now()
		if _, err := pool.CheckBatch(ctx, inputs); err != nil {
			return 0, fmt.Errorf("telemetry bench (%s, workers=%d): %w", mode, workers, err)
		}
		return time.Since(start).Seconds(), nil
	}
	// Warm every stack before timing anything.
	for _, warm := range []struct {
		pool *oracle.Pool
		mode string
	}{{barePool, "bare"}, {instrPool, "instrumented"}, {resilPool, "resilient"}} {
		if _, err := one(warm.pool, warm.mode); err != nil {
			return t, err
		}
	}
	t.bare, t.instr, t.resil = -1, -1, -1
	first := true
	for r := 0; r < reps; r++ {
		b, err := one(barePool, "bare")
		if err != nil {
			return t, err
		}
		i, err := one(instrPool, "instrumented")
		if err != nil {
			return t, err
		}
		rs, err := one(resilPool, "resilient")
		if err != nil {
			return t, err
		}
		if t.bare < 0 || b < t.bare {
			t.bare = b
		}
		if t.instr < 0 || i < t.instr {
			t.instr = i
		}
		if t.resil < 0 || rs < t.resil {
			t.resil = rs
		}
		if b > 0 {
			iPct := (i - b) / b * 100
			rPct := (rs - b) / b * 100
			if first || iPct < t.instrOverheadPct {
				t.instrOverheadPct = iPct
			}
			if first || rPct < t.resilOverheadPct {
				t.resilOverheadPct = rPct
			}
			first = false
		}
	}
	return t, nil
}
