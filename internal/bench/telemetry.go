package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"glade/internal/metrics"
	"glade/internal/oracle"
	"glade/internal/telemetry"
)

// TelemetryRow is one measurement of the telemetry figure: oracle dispatch
// throughput with and without the observability stack (metrics.QueryTimer
// plus a mirrored telemetry.Histogram) in the query path.
type TelemetryRow struct {
	// Mode is "bare" (pool straight over the oracle) or "instrumented"
	// (pool over a QueryTimer mirroring onto a registry histogram — the
	// exact stack a glade-serve job runs).
	Mode string
	// Workers is the pool concurrency the batch ran at.
	Workers int
	// Queries is the batch size of each repetition.
	Queries int
	// Seconds is the fastest repetition's wall-clock time (min-of-reps
	// suppresses scheduler noise; the gate compares best cases).
	Seconds float64
	// QPS is Queries / Seconds.
	QPS float64
	// NsPerQuery is the per-query mean in nanoseconds.
	NsPerQuery float64
	// OverheadPct, on instrumented rows, is the instrumentation slowdown in
	// percent (negative = faster, noise). It is the smallest slowdown over
	// the paired repetitions — each pair runs bare then instrumented
	// back-to-back under the same machine load, so the best pair is the
	// noise-floor estimate of the stack's true cost.
	OverheadPct float64
}

// telemetryInputs synthesizes the query corpus: ~4 KB JSON documents, one
// quarter corrupted, so builtin:json does the per-query work of a realistic
// membership oracle (10+ microseconds of parsing — in-process validators on
// real inputs, let alone exec oracles, sit at or far above this) and the
// measured overhead ratio reflects a real learner's accept/reject mix
// rather than trivial empty-input dispatch.
func telemetryInputs(n int) []string {
	base := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		var b strings.Builder
		fmt.Fprintf(&b, `{"id":%d,"tags":[`, i)
		for j := 0; j < 96; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `"t%02d-%02d"`, i, j)
		}
		b.WriteString(`],"payload":"`)
		for j := 0; j < 384; j++ {
			fmt.Fprintf(&b, "%08x", i*384+j)
		}
		b.WriteString(`"}`)
		s := b.String()
		if i%4 == 3 {
			s = s[:len(s)-1] // drop the closing brace: reject path
		}
		base = append(base, s)
	}
	out := make([]string, n)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out
}

// TelemetryBench measures the cost of the observability stack on the oracle
// hot path: the same builtin:json batch runs through a bare worker pool and
// through the instrumented pool (QueryTimer with a histogram mirror, as
// every service job is wired), at each worker count, reps times each,
// keeping the fastest run. scripts/telemetrycheck gates CI on the
// instrumented overhead staying small.
func TelemetryBench(ctx context.Context, workersList []int, queries, reps int) ([]TelemetryRow, error) {
	if reps < 1 {
		reps = 1
	}
	spec := oracle.Spec{Type: oracle.SpecBuiltin, Name: "json"}
	inputs := telemetryInputs(queries)
	var rows []TelemetryRow
	for _, w := range workersList {
		bare, instr, overhead, err := telemetryTime(ctx, spec, w, inputs, reps)
		if err != nil {
			return nil, err
		}
		mkRow := func(mode string, secs float64) TelemetryRow {
			r := TelemetryRow{Mode: mode, Workers: w, Queries: queries, Seconds: secs}
			if secs > 0 {
				r.QPS = float64(queries) / secs
				r.NsPerQuery = secs * 1e9 / float64(queries)
			}
			return r
		}
		bRow := mkRow("bare", bare)
		iRow := mkRow("instrumented", instr)
		iRow.OverheadPct = overhead
		rows = append(rows, bRow, iRow)
	}
	return rows, nil
}

// telemetryTime runs reps interleaved bare/instrumented batch pairs
// through the two pools. It returns each side's fastest wall-clock seconds
// and the smallest per-pair slowdown in percent. Interleaving keeps
// clock-frequency drift and cache warmth from landing on one side of the
// comparison, and the per-pair minimum — each pair runs back-to-back under
// the same machine load — is the noise-floor estimate of the true
// instrumentation cost. The instrumented stack is the service's exact one:
// pool → QueryTimer (stats + latency histogram) → mirror histogram (the
// shared per-source registry instrument) → oracle.
func telemetryTime(ctx context.Context, spec oracle.Spec, workers int,
	inputs []string, reps int) (bare, instr, overheadPct float64, err error) {
	o, _, err := spec.Build(oracle.BuildOptions{Workers: workers})
	if err != nil {
		return 0, 0, 0, err
	}
	timer := metrics.NewQueryTimer(o)
	timer.Mirror(&telemetry.Histogram{})
	barePool := oracle.Parallel(o, workers)
	instrPool := oracle.Parallel(timer, workers)
	one := func(pool *oracle.Pool, mode string) (float64, error) {
		start := time.Now()
		if _, err := pool.CheckBatch(ctx, inputs); err != nil {
			return 0, fmt.Errorf("telemetry bench (%s, workers=%d): %w", mode, workers, err)
		}
		return time.Since(start).Seconds(), nil
	}
	// Warm both stacks before timing anything.
	if _, err := one(barePool, "bare"); err != nil {
		return 0, 0, 0, err
	}
	if _, err := one(instrPool, "instrumented"); err != nil {
		return 0, 0, 0, err
	}
	bare, instr = -1, -1
	first := true
	for r := 0; r < reps; r++ {
		b, err := one(barePool, "bare")
		if err != nil {
			return 0, 0, 0, err
		}
		i, err := one(instrPool, "instrumented")
		if err != nil {
			return 0, 0, 0, err
		}
		if bare < 0 || b < bare {
			bare = b
		}
		if instr < 0 || i < instr {
			instr = i
		}
		if b > 0 {
			if pct := (i - b) / b * 100; first || pct < overheadPct {
				overheadPct = pct
				first = false
			}
		}
	}
	return bare, instr, overheadPct, nil
}
