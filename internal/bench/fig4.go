// Package bench is the experiment harness regenerating every table and
// figure of the paper's evaluation (§8). It is shared between cmd/glade-bench
// (full-size runs) and the root bench_test.go (reduced-size runs).
package bench

import (
	"context"
	"math/rand"
	"time"

	"glade/internal/core"
	"glade/internal/lstar"
	"glade/internal/metrics"
	"glade/internal/oracle"
	"glade/internal/rpni"
	"glade/internal/targets"
)

// Config scales the experiments. Zero values select the paper's settings.
type Config struct {
	// Seeds is the number of sampled seed inputs per target (paper: 50).
	Seeds int
	// EvalSamples is the sample count per precision/recall estimate
	// (paper: 1000).
	EvalSamples int
	// Timeout bounds each learner run (paper: 300 s).
	Timeout time.Duration
	// FuzzSamples is the per-fuzzer sample budget in §8.3 (paper: 50000).
	FuzzSamples int
	// RandSeed makes runs reproducible.
	RandSeed int64
	// Workers bounds concurrent oracle queries during learning (see
	// core.Options.Workers). Zero or one learns sequentially, exactly as
	// the paper's algorithm; the synthesized grammars are identical either
	// way.
	Workers int
}

// withDefaults fills in the paper's parameters.
func (c Config) withDefaults() Config {
	if c.Seeds == 0 {
		c.Seeds = 50
	}
	if c.EvalSamples == 0 {
		c.EvalSamples = 1000
	}
	if c.Timeout == 0 {
		c.Timeout = 300 * time.Second
	}
	if c.FuzzSamples == 0 {
		c.FuzzSamples = 50000
	}
	if c.RandSeed == 0 {
		c.RandSeed = 1
	}
	return c
}

// LearnerRow is one bar of Figure 4(a)/(b): a (target, learner) pair.
type LearnerRow struct {
	Target    string
	Learner   string
	Precision float64
	Recall    float64
	F1        float64
	Seconds   float64
	TimedOut  bool
}

// Learners evaluated in Figure 4, in display order.
var Learners = []string{"lstar", "rpni", "glade-p1", "glade"}

// Fig4 reproduces Figures 4(a) and 4(b): F1 and running time of L-Star,
// RPNI, GLADE without phase two ("glade-p1"), and GLADE on the four targets.
func Fig4(ctx context.Context, c Config) []LearnerRow {
	c = c.withDefaults()
	var rows []LearnerRow
	for _, tgt := range targets.All() {
		rng := rand.New(rand.NewSource(c.RandSeed))
		seeds := tgt.SampleSeeds(rng, c.Seeds)
		for _, learner := range Learners {
			rows = append(rows, runLearner(ctx, c, tgt, learner, seeds, rng))
		}
	}
	return rows
}

func runLearner(ctx context.Context, c Config, tgt *targets.Target, learner string, seeds []string, rng *rand.Rand) LearnerRow {
	row := LearnerRow{Target: tgt.Name, Learner: learner}
	truth := targetLang(tgt)
	start := time.Now()
	var learned metrics.Language
	switch learner {
	case "glade", "glade-p1":
		opts := core.DefaultOptions()
		opts.Phase2 = learner == "glade"
		opts.Timeout = c.Timeout
		opts.Workers = c.Workers
		res, err := core.Learn(ctx, seeds, oracle.AsCheck(tgt.Oracle), opts)
		if err != nil {
			return row
		}
		row.TimedOut = res.Stats.TimedOut
		learned = metrics.NewGrammarLang(res.Grammar, 28)
	case "lstar":
		// The paper's setup (§8.2): "the equivalence oracle is implemented
		// by randomly sampling strings to search for counter-examples; we
		// accept R̂ if none are found after 50 samples". Random strings over
		// a structured language are almost never valid, so the oracle
		// rarely supplies the positive counterexamples L-Star needs — the
		// failure mode the paper reports.
		alphabet := tgt.Grammar.Terminals().Bytes()
		d, stats := lstar.Learn(lstar.Teacher{
			Oracle:       tgt.Oracle,
			Alphabet:     alphabet,
			EquivSamples: 50,
			MaxSampleLen: 40,
			Timeout:      c.Timeout,
			Rng:          rand.New(rand.NewSource(c.RandSeed + 7)),
		})
		row.TimedOut = stats.TimedOut
		learned = &metrics.DFALang{D: d, MaxLen: 60}
	case "rpni":
		// §8.2: negatives are 50 random strings not in L*.
		alphabet := tgt.Grammar.Terminals().Bytes()
		negatives := sampleNegatives(tgt, alphabet, 50, rand.New(rand.NewSource(c.RandSeed+13)))
		d, stats := rpni.Learn(seeds, negatives, alphabet, c.Timeout)
		row.TimedOut = stats.TimedOut
		learned = &metrics.DFALang{D: d, MaxLen: 60}
	default:
		panic("bench: unknown learner " + learner)
	}
	row.Seconds = time.Since(start).Seconds()
	e := metrics.Evaluate(learned, truth, c.EvalSamples, rand.New(rand.NewSource(c.RandSeed+99)))
	row.Precision, row.Recall, row.F1 = e.Precision, e.Recall, e.F1()
	return row
}

func targetLang(tgt *targets.Target) metrics.Language {
	return &metrics.OracleLang{
		O: tgt.Oracle,
		S: func(r *rand.Rand) (string, bool) { return sampleTarget(tgt, r) },
	}
}

// targetLangs caches the ground-truth grammar samplers; they are immutable
// and expensive to rebuild per evaluation.
var targetLangs = map[string]*metrics.GrammarLang{}

func sampleTarget(tgt *targets.Target, rng *rand.Rand) (string, bool) {
	gl, ok := targetLangs[tgt.Name]
	if !ok {
		gl = metrics.NewGrammarLang(tgt.Grammar, 28)
		targetLangs[tgt.Name] = gl
	}
	return gl.Sample(rng)
}

// sampleNegatives draws n random strings over the alphabet rejected by the
// oracle, as §8.2 does for RPNI.
func sampleNegatives(tgt *targets.Target, alphabet []byte, n int, rng *rand.Rand) []string {
	var out []string
	for attempts := 0; len(out) < n && attempts < 100*n; attempts++ {
		l := rng.Intn(25)
		b := make([]byte, l)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		s := string(b)
		if !tgt.Oracle.Accepts(s) {
			out = append(out, s)
		}
	}
	return out
}

// SeedSweepRow is one x-position of Figure 4(c).
type SeedSweepRow struct {
	Seeds     int
	Precision float64
	Recall    float64
	Seconds   float64
}

// Fig4c reproduces Figure 4(c): GLADE precision, recall, and running time
// on the XML target as the number of seed inputs grows.
func Fig4c(ctx context.Context, c Config, counts []int) []SeedSweepRow {
	c = c.withDefaults()
	if len(counts) == 0 {
		counts = []int{5, 15, 25, 35, 45}
	}
	tgt := targets.XML()
	rng := rand.New(rand.NewSource(c.RandSeed))
	all := tgt.SampleSeeds(rng, counts[len(counts)-1])
	var rows []SeedSweepRow
	for _, n := range counts {
		if n > len(all) {
			n = len(all)
		}
		opts := core.DefaultOptions()
		opts.Timeout = c.Timeout
		opts.Workers = c.Workers
		start := time.Now()
		res, err := core.Learn(ctx, all[:n], oracle.AsCheck(tgt.Oracle), opts)
		if err != nil {
			continue
		}
		secs := time.Since(start).Seconds()
		e := metrics.Evaluate(metrics.NewGrammarLang(res.Grammar, 28), targetLang(tgt),
			c.EvalSamples, rand.New(rand.NewSource(c.RandSeed+99)))
		rows = append(rows, SeedSweepRow{Seeds: n, Precision: e.Precision, Recall: e.Recall, Seconds: secs})
	}
	return rows
}

// Fig5 reproduces Figure 5: grammars synthesized from a few representative
// (documentation) seeds per target, rendered as text.
func Fig5(ctx context.Context, c Config) map[string]string {
	c = c.withDefaults()
	out := map[string]string{}
	for _, tgt := range targets.All() {
		opts := core.DefaultOptions()
		opts.Timeout = c.Timeout
		opts.Workers = c.Workers
		res, err := core.Learn(ctx, tgt.DocSeeds, oracle.AsCheck(tgt.Oracle), opts)
		if err != nil {
			out[tgt.Name] = "error: " + err.Error()
			continue
		}
		out[tgt.Name] = res.Grammar.Trim().String()
	}
	return out
}
