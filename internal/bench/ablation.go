package bench

import (
	"context"
	"math/rand"
	"time"

	"glade/internal/core"
	"glade/internal/metrics"
	"glade/internal/oracle"
	"glade/internal/targets"
)

// AblationRow reports one learner variant on one target.
type AblationRow struct {
	Target    string
	Variant   string
	Precision float64
	Recall    float64
	F1        float64
	Queries   int
	Seconds   float64
}

// AblationVariants are the design choices DESIGN.md calls out, each mapped
// to an Options mutation.
var AblationVariants = []struct {
	Name  string
	Apply func(*core.Options)
}{
	{"full", func(*core.Options) {}},
	{"no-phase2", func(o *core.Options) { o.Phase2 = false }},
	{"no-chargen", func(o *core.Options) { o.CharGen = false }},
	{"no-discard", func(o *core.Options) { o.DiscardMemberChecks = false }},
	{"reverse-ordering", func(o *core.Options) { o.ReverseOrdering = true }},
}

// Ablations runs every variant on every target with the configured seed
// budget, reporting quality and query cost. ctx cancels the remaining
// learning runs.
func Ablations(ctx context.Context, c Config) []AblationRow {
	c = c.withDefaults()
	var rows []AblationRow
	for _, tgt := range targets.All() {
		rng := rand.New(rand.NewSource(c.RandSeed))
		seeds := tgt.SampleSeeds(rng, c.Seeds)
		for _, v := range AblationVariants {
			opts := core.DefaultOptions()
			opts.Timeout = c.Timeout
			v.Apply(&opts)
			start := time.Now()
			res, err := core.Learn(ctx, seeds, oracle.AsCheck(tgt.Oracle), opts)
			if err != nil {
				continue
			}
			e := metrics.Evaluate(metrics.NewGrammarLang(res.Grammar, 28), targetLang(tgt),
				c.EvalSamples, rand.New(rand.NewSource(c.RandSeed+99)))
			rows = append(rows, AblationRow{
				Target:    tgt.Name,
				Variant:   v.Name,
				Precision: e.Precision,
				Recall:    e.Recall,
				F1:        e.F1(),
				Queries:   res.Stats.OracleQueries,
				Seconds:   time.Since(start).Seconds(),
			})
		}
	}
	return rows
}
