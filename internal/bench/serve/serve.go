// Package servebench load-tests the glade-serve stack itself: it boots
// in-process clusters wired through the consistent-hash router and drives
// them with the closed-loop generator, producing the serve figure's rows.
// It lives apart from internal/bench because it imports internal/service
// (whose campaign tests import internal/bench — a cycle otherwise).
package servebench

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"glade/internal/bench"
	"glade/internal/cluster"
	"glade/internal/core"
	"glade/internal/loadgen"
	"glade/internal/oracle"
	"glade/internal/service"
)

// ServeRow is one line of the serve-mode load benchmark: an endpoint's
// throughput and latency distribution at a given cluster size.
type ServeRow struct {
	// Nodes is the cluster size the row was measured against.
	Nodes int
	// Endpoint is "generate", "check", "stats", or "total" (the aggregate).
	Endpoint string
	// Clients is the closed-loop client count.
	Clients int
	// Requests and Errors count attempts and failures over the run.
	Requests int
	Errors   int
	// Seconds is the measured wall time.
	Seconds float64
	// QPS is Requests / Seconds.
	QPS float64
	// Latency quantiles in milliseconds.
	P50Ms float64
	P95Ms float64
	P99Ms float64
	// InputsPerSec is work throughput: batch inputs/s for check, samples/s
	// for generate (0 for stats and total).
	InputsPerSec float64
}

// serveGrammars is how many grammar ids the load spreads across. Several
// ids give the ring something to place — with one id a 3-node cluster
// would concentrate all keyed work on a single owner.
const serveGrammars = 6

// Serve measures glade-serve under closed-loop load at each cluster size
// in nodeCounts (e.g. {1, 3}): it learns the builtin JSON grammar once,
// boots that many in-process nodes wired through the consistent-hash
// router, stores the grammar under several ids (each on its ring owner),
// and drives a generate/check/stats mix against them. The load generator
// routes keyed requests straight to each id's owner — the production
// analogy is a placement-aware load balancer — so the multi-node numbers
// measure sharding, not proxy hops.
func Serve(ctx context.Context, c bench.Config, nodeCounts []int, clients int, duration time.Duration) ([]ServeRow, error) {
	if c.Timeout == 0 {
		c.Timeout = 300 * time.Second
	}
	if clients <= 0 {
		clients = 8
	}
	if duration <= 0 {
		duration = 3 * time.Second
	}

	reg, ok := oracle.LookupNamed(oracle.SpecBuiltin, "json")
	if !ok {
		return nil, fmt.Errorf("servebench: builtin json oracle not registered")
	}
	opts := core.DefaultOptions()
	opts.Timeout = c.Timeout
	opts.Workers = c.Workers
	res, err := core.Learn(ctx, reg.Seeds, reg.New(0, 1), opts)
	if err != nil {
		return nil, fmt.Errorf("servebench: learning json grammar: %w", err)
	}

	// The same ids are reused at every cluster size, so the 1-node and
	// 3-node runs check and generate from identical grammars.
	ids := make([]string, serveGrammars)
	for i := range ids {
		ids[i] = service.NewID()
	}

	var rows []ServeRow
	for _, n := range nodeCounts {
		r, err := serveOne(ctx, n, clients, duration, res, reg, ids)
		if err != nil {
			return rows, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// serveOne boots an n-node routed cluster, loads it, and tears it down.
func serveOne(ctx context.Context, n, clients int, duration time.Duration, res *core.Result, reg oracle.Registration, ids []string) ([]ServeRow, error) {
	nodes, ring, cleanup, err := startNodes(n)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	byAddr := map[string]*service.Server{}
	targets := make([]string, len(nodes))
	for i, nd := range nodes {
		byAddr[nd.addr] = nd.srv
		targets[i] = "http://" + nd.addr
	}
	meta := service.GrammarMeta{
		Oracle:    "builtin:json",
		Spec:      oracle.Spec{Type: oracle.SpecBuiltin, Name: "json"},
		Seeds:     reg.Seeds,
		CreatedAt: time.Now(),
	}
	for _, id := range ids {
		meta.ID = id
		if err := byAddr[ring.Owner(id)].Store().Put(res.Grammar, meta); err != nil {
			return nil, fmt.Errorf("servebench: storing grammar %s: %w", id, err)
		}
	}

	lr, err := loadgen.Run(ctx, loadgen.Config{
		Targets:    targets,
		GrammarIDs: ids,
		Route:      func(id string) string { return "http://" + ring.Owner(id) },
		Clients:    clients,
		Duration:   duration,
		Mix:        loadgen.Mix{Generate: 1, Check: 6, Stats: 1},
	})
	if err != nil {
		return nil, fmt.Errorf("servebench: loadgen against %d nodes: %w", n, err)
	}

	rows := make([]ServeRow, 0, len(lr.Endpoints)+1)
	for _, ep := range lr.Endpoints {
		rows = append(rows, ServeRow{
			Nodes: n, Endpoint: ep.Endpoint, Clients: lr.Clients,
			Requests: ep.Requests, Errors: ep.Errors, Seconds: lr.Seconds,
			QPS: ep.QPS, P50Ms: ep.P50Ms, P95Ms: ep.P95Ms, P99Ms: ep.P99Ms,
			InputsPerSec: ep.InputsPerSec,
		})
	}
	rows = append(rows, ServeRow{
		Nodes: n, Endpoint: "total", Clients: lr.Clients,
		Requests: lr.Requests, Errors: lr.Errors, Seconds: lr.Seconds,
		QPS: lr.QPS,
	})
	return rows, nil
}

// serveNode is one booted in-process node.
type serveNode struct {
	addr string
	srv  *service.Server
	hs   *http.Server
}

// startNodes boots n glade-serve nodes on loopback, each fronted by the
// cluster router over a shared ring, exactly as the daemon wires them.
// Listeners are opened before any node starts so every ring is built from
// the full final membership.
func startNodes(n int) (nodes []serveNode, ring *cluster.Ring, cleanup func(), err error) {
	var lns []net.Listener
	var probers []*cluster.Prober
	var dirs []string
	cleanup = func() {
		for _, nd := range nodes {
			nd.hs.Close()
		}
		for _, p := range probers {
			p.Stop()
		}
		for _, nd := range nodes {
			nd.srv.Close()
		}
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}
	fail := func(e error) ([]serveNode, *cluster.Ring, func(), error) {
		cleanup()
		for _, ln := range lns {
			ln.Close()
		}
		return nil, nil, nil, e
	}

	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	ring, err = cluster.NewRing(addrs, 0)
	if err != nil {
		return fail(err)
	}

	logger := slog.New(slog.DiscardHandler)
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "glade-bench-serve-*")
		if err != nil {
			return fail(err)
		}
		dirs = append(dirs, dir)
		srv, err := service.New(service.Config{
			DataDir:        dir,
			MaxJobs:        1,
			MaxJobDuration: time.Minute,
			Logger:         logger,
		})
		if err != nil {
			return fail(err)
		}
		prober := cluster.NewProber(addrs[i], addrs, 0, logger)
		router, err := cluster.NewRouter(addrs[i], ring, prober, srv.Handler(), logger)
		if err != nil {
			srv.Close()
			return fail(err)
		}
		probers = append(probers, prober)
		prober.Start()
		hs := &http.Server{Handler: router}
		nodes = append(nodes, serveNode{addr: addrs[i], srv: srv, hs: hs})
		go hs.Serve(lns[i])
	}
	return nodes, ring, cleanup, nil
}
