package bench

import (
	"context"
	"math/rand"
	"strings"
	"time"

	"glade/internal/cfg"
	"glade/internal/core"
	"glade/internal/fuzz"
	"glade/internal/oracle"
	"glade/internal/programs"
	"glade/internal/targets"
)

// ProgramRow is one line of the Figure 6 table.
type ProgramRow struct {
	Program string
	// Points is the number of coverage points discovered (the stand-in for
	// the paper's "lines of code" column).
	Points int
	// SeedLines is the total line count of the bundled seed inputs.
	SeedLines int
	// Seconds is GLADE's synthesis time.
	Seconds float64
	// Queries is the number of de-duplicated oracle queries issued.
	Queries int
	// GrammarSize is the size of the synthesized grammar.
	GrammarSize int
}

// learnedGrammars caches per-program synthesis results so Figures 6, 7 and
// 8 share one learning run (as the paper's pipeline does).
var learnedGrammars = map[string]*core.Result{}

// LearnProgram synthesizes (and caches) a grammar for the named program
// from its bundled seeds. workers bounds concurrent oracle queries (see
// core.Options.Workers); the synthesized grammar is identical at any value.
func LearnProgram(ctx context.Context, p programs.Program, timeout time.Duration, workers int) (*core.Result, error) {
	if res, ok := learnedGrammars[p.Name()]; ok {
		return res, nil
	}
	opts := core.DefaultOptions()
	opts.Timeout = timeout
	opts.Workers = workers
	o := oracle.Func(func(s string) bool { return p.Run(s).OK })
	res, err := core.Learn(ctx, p.Seeds(), o, opts)
	if err != nil {
		return nil, err
	}
	learnedGrammars[p.Name()] = res
	return res, nil
}

// ResetCache clears the learned-grammar cache (used by tests).
func ResetCache() { learnedGrammars = map[string]*core.Result{} }

// Fig6 reproduces the Figure 6 table: program size proxy, seed size, and
// GLADE synthesis time for each of the eight programs.
func Fig6(ctx context.Context, c Config) ([]ProgramRow, error) {
	c = c.withDefaults()
	var rows []ProgramRow
	for _, p := range programs.All() {
		res, err := LearnProgram(ctx, p, c.Timeout, c.Workers)
		if err != nil {
			return nil, err
		}
		lines := 0
		for _, s := range p.Seeds() {
			lines += 1 + strings.Count(strings.TrimRight(s, "\n"), "\n")
		}
		rows = append(rows, ProgramRow{
			Program:     p.Name(),
			Points:      p.NumPoints(),
			SeedLines:   lines,
			Seconds:     res.Stats.Duration.Seconds(),
			Queries:     res.Stats.OracleQueries,
			GrammarSize: res.Grammar.Size(),
		})
	}
	return rows, nil
}

// CoverageRow is one bar of Figure 7(a)/(b): a (program, fuzzer) pair with
// the valid normalized incremental coverage (naive = 1.0).
type CoverageRow struct {
	Program    string
	Fuzzer     string
	Valid      int
	IncrCover  int
	Normalized float64
}

// Fig7a reproduces Figure 7(a): valid normalized incremental coverage of
// the naive fuzzer (1.0 by construction), the afl-style fuzzer, and the
// GLADE grammar fuzzer on all eight programs.
func Fig7a(ctx context.Context, c Config, names []string) ([]CoverageRow, error) {
	c = c.withDefaults()
	if len(names) == 0 {
		for _, p := range programs.All() {
			names = append(names, p.Name())
		}
	}
	var rows []CoverageRow
	for _, name := range names {
		p := programs.ByName(name)
		res, err := LearnProgram(ctx, p, c.Timeout, c.Workers)
		if err != nil {
			return nil, err
		}
		seeds := p.Seeds()
		runs := []fuzz.CoverageRun{
			fuzz.RunCoverage(p, fuzz.NewNaive(seeds, nil), c.FuzzSamples, rand.New(rand.NewSource(c.RandSeed)), 0),
			fuzz.RunCoverage(p, fuzz.NewAFL(seeds), c.FuzzSamples, rand.New(rand.NewSource(c.RandSeed)), 0),
			fuzz.RunCoverage(p, fuzz.NewGrammar(res.Grammar, seeds), c.FuzzSamples, rand.New(rand.NewSource(c.RandSeed)), 0),
		}
		base := runs[0]
		for _, r := range runs {
			rows = append(rows, CoverageRow{
				Program:    p.Name(),
				Fuzzer:     r.Fuzzer,
				Valid:      r.Valid,
				IncrCover:  r.IncrCover,
				Normalized: r.Normalized(base),
			})
		}
	}
	return rows, nil
}

// Fig7b reproduces Figure 7(b): the same metric with a proxy for the upper
// bound — a handwritten grammar for grep and xml, and a bundled "test
// suite" corpus for python, ruby, and javascript.
func Fig7b(ctx context.Context, c Config) ([]CoverageRow, error) {
	c = c.withDefaults()
	names := []string{"grep", "xml", "ruby", "python", "javascript"}
	rows, err := Fig7a(ctx, c, names)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		p := programs.ByName(name)
		base := baselineRun(c, p)
		upper := upperBoundRun(c, p)
		rows = append(rows, CoverageRow{
			Program:    name,
			Fuzzer:     upper.Fuzzer,
			Valid:      upper.Valid,
			IncrCover:  upper.IncrCover,
			Normalized: upper.Normalized(base),
		})
	}
	return rows, nil
}

func baselineRun(c Config, p programs.Program) fuzz.CoverageRun {
	return fuzz.RunCoverage(p, fuzz.NewNaive(p.Seeds(), nil), c.FuzzSamples,
		rand.New(rand.NewSource(c.RandSeed)), 0)
}

// upperBoundRun plays the paper's proxy upper bound: fuzz with a
// handwritten grammar (grep, xml) or replay a large test-suite corpus
// (python, ruby, javascript).
func upperBoundRun(c Config, p programs.Program) fuzz.CoverageRun {
	switch p.Name() {
	case "grep":
		return handwrittenRun(c, p, targets.Grep().Grammar, targets.Grep().DocSeeds)
	case "xml":
		return handwrittenRun(c, p, targets.XML().Grammar, targets.XML().DocSeeds)
	default:
		return suiteRun(c, p, TestSuite(p.Name()))
	}
}

func handwrittenRun(c Config, p programs.Program, g *cfg.Grammar, seeds []string) fuzz.CoverageRun {
	f := fuzz.NewGrammar(g, seeds)
	run := fuzz.RunCoverage(p, f, c.FuzzSamples, rand.New(rand.NewSource(c.RandSeed)), 0)
	run.Fuzzer = "handwritten"
	return run
}

// suiteRun measures coverage of a fixed corpus (no fuzzing), normalized
// like the other runs.
func suiteRun(c Config, p programs.Program, corpus []string) fuzz.CoverageRun {
	run := fuzz.CoverageRun{Fuzzer: "testsuite", Program: p.Name(), Samples: len(corpus)}
	seedPoints := map[int]bool{}
	for _, s := range p.Seeds() {
		for _, pt := range p.Run(s).Points {
			seedPoints[pt] = true
		}
	}
	run.SeedCover = len(seedPoints)
	incr := map[int]bool{}
	for _, s := range corpus {
		res := p.Run(s)
		if !res.OK {
			continue
		}
		run.Valid++
		for _, pt := range res.Points {
			if !seedPoints[pt] {
				incr[pt] = true
			}
		}
	}
	run.IncrCover = len(incr)
	return run
}

// Fig7c reproduces Figure 7(c): valid incremental coverage (normalized by
// the naive fuzzer's final coverage) as a function of sample count, on the
// python program, for all three fuzzers.
type CurveRow struct {
	Fuzzer  string
	Samples int
	Value   float64
}

// Fig7c runs the three fuzzers on python with periodic checkpoints.
func Fig7c(ctx context.Context, c Config, checkpointEvery int) ([]CurveRow, error) {
	c = c.withDefaults()
	if checkpointEvery <= 0 {
		checkpointEvery = c.FuzzSamples / 10
		if checkpointEvery == 0 {
			checkpointEvery = 1
		}
	}
	p := programs.ByName("python")
	res, err := LearnProgram(ctx, p, c.Timeout, c.Workers)
	if err != nil {
		return nil, err
	}
	seeds := p.Seeds()
	runs := []fuzz.CoverageRun{
		fuzz.RunCoverage(p, fuzz.NewNaive(seeds, nil), c.FuzzSamples, rand.New(rand.NewSource(c.RandSeed)), checkpointEvery),
		fuzz.RunCoverage(p, fuzz.NewAFL(seeds), c.FuzzSamples, rand.New(rand.NewSource(c.RandSeed)), checkpointEvery),
		fuzz.RunCoverage(p, fuzz.NewGrammar(res.Grammar, seeds), c.FuzzSamples, rand.New(rand.NewSource(c.RandSeed)), checkpointEvery),
	}
	norm := float64(runs[0].IncrCover)
	if norm == 0 {
		norm = 1
	}
	var rows []CurveRow
	for _, r := range runs {
		for _, cp := range r.Curve {
			rows = append(rows, CurveRow{Fuzzer: r.Fuzzer, Samples: cp.Samples, Value: float64(cp.IncrCover) / norm})
		}
	}
	return rows, nil
}

// Fig8 reproduces Figure 8: one valid sample from the grammar synthesized
// for the XML program.
func Fig8(ctx context.Context, c Config) (string, error) {
	c = c.withDefaults()
	p := programs.ByName("xml")
	res, err := LearnProgram(ctx, p, c.Timeout, c.Workers)
	if err != nil {
		return "", err
	}
	sm := cfg.NewSampler(res.Grammar, cfg.DefaultSampleDepth)
	rng := rand.New(rand.NewSource(c.RandSeed))
	// Prefer a sample that the program actually accepts and that shows some
	// structure.
	best := ""
	for i := 0; i < 200; i++ {
		s := sm.Sample(rng)
		if p.Run(s).OK && len(s) > len(best) && len(s) < 400 {
			best = s
		}
	}
	return best, nil
}
