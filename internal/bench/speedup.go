package bench

import (
	"context"
	"time"

	"glade/internal/cfg"
	"glade/internal/core"
	"glade/internal/metrics"
	"glade/internal/oracle"
	"glade/internal/programs"
)

// SpeedupRow is one (program, workers) measurement of the parallel
// oracle-query engine.
type SpeedupRow struct {
	Program string
	Workers int
	// Seconds is the wall-clock learning time.
	Seconds float64
	// Speedup is the Workers=1 wall clock divided by this row's; 1.0 on
	// the baseline row.
	Speedup float64
	// Queries is the number of underlying oracle queries issued (the
	// speculative waves issue more than the sequential scan needs).
	Queries int
	// QPS is the oracle throughput observed below the worker pool.
	QPS float64
	// MeanLatency is the mean per-query latency of the underlying oracle.
	MeanLatency time.Duration
	// Identical reports whether the synthesized grammar is byte-identical
	// to the baseline row's grammar — the engine's determinism guarantee.
	// Only meaningful when neither run timed out: a timeout truncates the
	// candidate scan at a wall-clock-dependent point at any worker count.
	Identical bool
	// TimedOut reports whether this row's learning run hit the timeout.
	TimedOut bool
}

// Speedup measures wall-clock learning time at increasing worker counts on
// the named §8.3 programs, learned from their bundled seeds. Each oracle
// query sleeps for delay on top of running the simulated program,
// reproducing the cost profile of the paper's real setting — one program
// execution per membership query — where subprocess spawn time dominates.
// With delay zero the in-process parsers answer in microseconds and the
// engine's speedup reflects only multicore parsing.
//
// The grammars synthesized at every worker count are compared byte for
// byte; Identical reports the engine's determinism guarantee holding.
func Speedup(ctx context.Context, c Config, names []string, workerCounts []int, delay time.Duration) []SpeedupRow {
	c = c.withDefaults()
	if len(names) == 0 {
		names = []string{"sed", "xml"}
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 8}
	}
	var rows []SpeedupRow
	for _, name := range names {
		p := programs.ByName(name)
		if p == nil {
			continue
		}
		o := oracle.Func(func(s string) bool {
			if delay > 0 {
				time.Sleep(delay)
			}
			return p.Run(s).OK
		})
		var baseSeconds float64
		var baseGrammar string
		for _, workers := range workerCounts {
			timer := metrics.NewQueryTimer(o)
			opts := core.DefaultOptions()
			opts.Timeout = c.Timeout
			opts.Workers = workers
			start := time.Now()
			res, err := core.Learn(ctx, p.Seeds(), timer, opts)
			if err != nil {
				continue
			}
			secs := time.Since(start).Seconds()
			qs := timer.Snapshot()
			g := cfg.Marshal(res.Grammar)
			row := SpeedupRow{
				Program:     name,
				Workers:     workers,
				Seconds:     secs,
				Queries:     qs.Queries,
				QPS:         qs.Throughput(),
				MeanLatency: qs.MeanLatency(),
				TimedOut:    res.Stats.TimedOut,
			}
			if baseGrammar == "" {
				baseSeconds, baseGrammar = secs, g
				row.Speedup = 1
				row.Identical = true
			} else {
				row.Speedup = baseSeconds / secs
				row.Identical = g == baseGrammar
			}
			rows = append(rows, row)
		}
	}
	return rows
}
