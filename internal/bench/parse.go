package bench

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"glade/internal/cfg"
	"glade/internal/fuzz"
	"glade/internal/programs"
)

// ParseRow is one (program, engine) measurement of the parse benchmark:
// membership and sampling throughput of the map-based Earley Parser, the
// compiled Earley rung alone, and the full recognition ladder (DFA
// prefilter → bytecode VM → Earley) on a grammar learned from the named
// program, over a mixed accept/reject corpus.
type ParseRow struct {
	Program string
	// Engine is "parser" (the map-based Earley baseline), "earley" (the
	// compiled Earley rung alone — the pre-ladder compiled engine), or
	// "compiled" (the full DFA → VM → Earley ladder).
	Engine string
	// Inputs is the corpus size; Bytes its total length.
	Inputs int
	Bytes  int
	// NsPerAccept is the mean wall-clock per membership query; MBps the
	// corresponding input throughput.
	NsPerAccept float64
	MBps        float64
	// AcceptAllocs is the mean heap allocations per membership query.
	AcceptAllocs float64
	// SamplesPerSec is the sampling throughput; SampleAllocs the mean
	// heap allocations per sampled string (recognition-only rows leave
	// both zero).
	SamplesPerSec float64
	SampleAllocs  float64
	// Ratio is the baseline engine's NsPerAccept divided by this row's
	// (1.0 on the baseline row) — the headline old-vs-new speedup.
	Ratio float64
	// Agree reports whether this engine returned the reference parser's
	// verdict on every corpus input.
	Agree bool
	// RungAgree reports full per-rung verdict agreement on the corpus:
	// the ladder, the Earley rung alone, and the prefilter's sound
	// direction all match the reference parser.
	RungAgree bool
	// Per-rung corpus shares (compiled row): the fraction of inputs
	// decided by the DFA prefilter (always rejects), the bytecode VM, and
	// the Earley fallback.
	DFARejectRate float64
	VMShare       float64
	EarleyShare   float64
}

// parseMinDuration is how long each throughput measurement loops; long
// enough to amortize pool warm-up, short enough that -quick stays quick.
const parseMinDuration = 150 * time.Millisecond

// Parse measures the compiled-grammar engine against the map-based
// Parser/Sampler on grammars learned from the named §8.3 programs
// (default sed and xml, the acceptance pair). The corpus mixes the
// program's seeds, grammar samples (accepts), naive byte-level mutants,
// and random strings over the grammar's alphabet (mostly rejects);
// verdict agreement across the whole corpus is re-checked and reported
// per row.
func Parse(ctx context.Context, c Config, names []string) ([]ParseRow, error) {
	c = c.withDefaults()
	if len(names) == 0 {
		names = []string{"sed", "xml"}
	}
	var rows []ParseRow
	for _, name := range names {
		p := programs.ByName(name)
		if p == nil {
			return nil, fmt.Errorf("bench: unknown program %q", name)
		}
		res, err := LearnProgram(ctx, p, c.Timeout, c.Workers)
		if err != nil {
			return nil, err
		}
		g := res.Grammar
		if !g.Productive()[g.Start] {
			// Sampling from an unproductive start panics by contract; a
			// grammar this degenerate (every seed skipped under a tight
			// timeout) is not benchmarkable, so fail loudly instead.
			return nil, fmt.Errorf("bench: %s grammar has an unproductive start symbol; nothing to measure", name)
		}
		corpus := ParseCorpus(g, p.Seeds(), c.RandSeed)
		bytes := 0
		for _, s := range corpus {
			bytes += len(s)
		}

		parser := cfg.NewParser(g)
		comp := cfg.Compile(g)

		// One differential pass over the corpus: verdicts from the
		// reference parser, the full ladder (with the deciding rung), and
		// the Earley rung alone, plus the prefilter's sound direction.
		agree, rungAgree := true, true
		var rungCount [3]int
		for _, s := range corpus {
			want := parser.Accepts(s)
			got, rung := comp.AcceptsRung(s)
			rungCount[rung]++
			if got != want {
				agree, rungAgree = false, false
			}
			if comp.AcceptsEarley(s) != want || (comp.PrefilterRejects(s) && want) {
				rungAgree = false
			}
		}
		share := func(r cfg.Rung) float64 { return float64(rungCount[r]) / float64(len(corpus)) }

		sm := cfg.NewSampler(g, cfg.DefaultSampleDepth)
		base := ParseRow{Program: name, Engine: "parser", Inputs: len(corpus), Bytes: bytes,
			Agree: true, RungAgree: rungAgree, Ratio: 1}
		base.NsPerAccept, base.MBps = measureMembership(parser.Accepts, corpus, bytes)
		base.AcceptAllocs = allocsPerMembership(parser.Accepts, corpus)
		base.SamplesPerSec, base.SampleAllocs = measureSampling(func(rng *rand.Rand) string { return sm.Sample(rng) })

		// The Earley rung alone is the engine the previous PR shipped as
		// "compiled"; measuring it keeps the ladder's gain attributable.
		earleyRow := ParseRow{Program: name, Engine: "earley", Inputs: len(corpus), Bytes: bytes,
			Agree: rungAgree, RungAgree: rungAgree}
		earleyRow.NsPerAccept, earleyRow.MBps = measureMembership(comp.AcceptsEarley, corpus, bytes)
		earleyRow.AcceptAllocs = allocsPerMembership(comp.AcceptsEarley, corpus)
		if earleyRow.NsPerAccept > 0 {
			earleyRow.Ratio = base.NsPerAccept / earleyRow.NsPerAccept
		}

		comprow := ParseRow{Program: name, Engine: "compiled", Inputs: len(corpus), Bytes: bytes,
			Agree: agree, RungAgree: rungAgree,
			DFARejectRate: share(cfg.RungDFA), VMShare: share(cfg.RungVM), EarleyShare: share(cfg.RungEarley)}
		comprow.NsPerAccept, comprow.MBps = measureMembership(comp.Accepts, corpus, bytes)
		comprow.AcceptAllocs = allocsPerMembership(comp.Accepts, corpus)
		comprow.SamplesPerSec, comprow.SampleAllocs = measureSampling(func(rng *rand.Rand) string { return comp.Sample(rng) })
		if comprow.NsPerAccept > 0 {
			comprow.Ratio = base.NsPerAccept / comprow.NsPerAccept
		}
		rows = append(rows, base, earleyRow, comprow)
	}
	return rows, nil
}

// ParseCorpus builds the mixed accept/reject membership corpus for g: the
// seeds, the empty string, grammar samples (accepts), naive byte-level
// mutants of the seeds, and random strings over the grammar's terminal
// alphabet (mostly rejects). It is the corpus behind both the parse
// benchmark's CI gate and the compiled-engine differential test suite, so
// the two always measure and verify the same input mix.
func ParseCorpus(g *cfg.Grammar, seeds []string, randSeed int64) []string {
	rng := rand.New(rand.NewSource(randSeed))
	corpus := append([]string(nil), seeds...)
	corpus = append(corpus, "")
	if g.Productive()[g.Start] {
		sm := cfg.NewSampler(g, cfg.DefaultSampleDepth)
		for i := 0; i < 80; i++ {
			corpus = append(corpus, sm.Sample(rng))
		}
	}
	naive := fuzz.NewNaive(seeds, g.Terminals().Bytes())
	for i := 0; i < 60; i++ {
		corpus = append(corpus, naive.Next(rng))
	}
	alphabet := g.Terminals().Bytes()
	if len(alphabet) == 0 {
		alphabet = []byte("ab")
	}
	for i := 0; i < 40; i++ {
		b := make([]byte, rng.Intn(24))
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		corpus = append(corpus, string(b))
	}
	return corpus
}

// measureMembership loops whole corpus passes for at least
// parseMinDuration and reports mean ns per query and MB/s of input.
func measureMembership(accepts func(string) bool, corpus []string, bytes int) (nsPerOp, mbps float64) {
	start := time.Now()
	passes := 0
	for time.Since(start) < parseMinDuration {
		for _, s := range corpus {
			accepts(s)
		}
		passes++
	}
	elapsed := time.Since(start).Seconds()
	ops := passes * len(corpus)
	if ops == 0 || elapsed == 0 {
		return 0, 0
	}
	return elapsed * 1e9 / float64(ops), float64(passes*bytes) / (1 << 20) / elapsed
}

// allocsPerMembership reports mean heap allocations per membership query
// over one corpus pass (testing.AllocsPerRun averages across runs).
func allocsPerMembership(accepts func(string) bool, corpus []string) float64 {
	perPass := testing.AllocsPerRun(3, func() {
		for _, s := range corpus {
			accepts(s)
		}
	})
	return perPass / float64(len(corpus))
}

// measureSampling reports samples/s and allocations per sample.
func measureSampling(sample func(rng *rand.Rand) string) (perSec, allocs float64) {
	rng := rand.New(rand.NewSource(1))
	start := time.Now()
	ops := 0
	for time.Since(start) < parseMinDuration {
		for i := 0; i < 64; i++ {
			sample(rng)
		}
		ops += 64
	}
	elapsed := time.Since(start).Seconds()
	if ops == 0 || elapsed == 0 {
		return 0, 0
	}
	rng2 := rand.New(rand.NewSource(2))
	allocs = testing.AllocsPerRun(64, func() { sample(rng2) })
	return float64(ops) / elapsed, allocs
}
