package bench

import (
	"context"
	"fmt"
	"time"

	"glade/internal/oracle"
)

// OracleRow is one measurement of the oracle figure: queries per second
// for one oracle at one worker count, plus the in-process-vs-exec speedup
// where both modes were measured at that worker count.
type OracleRow struct {
	// Oracle is the spec that was measured ("builtin:json" or the exec
	// command).
	Oracle string
	// Mode is "builtin" or "exec".
	Mode string
	// Workers is the concurrency the batch ran at (1 = sequential).
	Workers int
	// Queries is how many membership queries the measurement issued.
	Queries int
	// Seconds is the wall-clock time for those queries.
	Seconds float64
	// QPS is Queries / Seconds.
	QPS float64
	// Speedup is builtin QPS / exec QPS at the same worker count; set on
	// the builtin rows only.
	Speedup float64
}

// oracleBenchInputs builds the query corpus for the oracle figure from
// the builtin's bundled seeds: the seeds themselves plus systematic
// corruptions (truncations and single-byte edits), so the oracle sees the
// accept/reject mix a learner's generalization checks produce.
func oracleBenchInputs(seeds []string, n int) []string {
	var corpus []string
	for _, s := range seeds {
		corpus = append(corpus, s)
		for cut := 1; cut < len(s) && cut < 8; cut++ {
			corpus = append(corpus, s[:len(s)-cut])
		}
		for i := 0; i < len(s) && i < 8; i++ {
			b := []byte(s)
			b[i] ^= 0x5a
			corpus = append(corpus, string(b))
		}
	}
	if len(corpus) == 0 {
		corpus = []string{""}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = corpus[i%len(corpus)]
	}
	return out
}

// OracleBench measures the same membership workload through the
// in-process builtin oracle and through an equivalent external command
// (execArgv — glade-bench passes its own binary re-executed in stdin-
// oracle mode, so both sides run the very same validator and the gap is
// pure process overhead). builtinQueries and execQueries size the two
// workloads independently: the exec side is orders of magnitude slower,
// so it gets a smaller batch while still timing enough processes to
// average fork/exec jitter.
func OracleBench(ctx context.Context, builtinName string, execArgv []string,
	workersList []int, builtinQueries, execQueries int) ([]OracleRow, error) {
	spec := oracle.Spec{Type: oracle.SpecBuiltin, Name: builtinName}
	var rows []OracleRow
	for _, w := range workersList {
		inProc, seeds, err := spec.Build(oracle.BuildOptions{Workers: w})
		if err != nil {
			return nil, err
		}
		bRow, err := timeOracle(ctx, spec.String(), "builtin", inProc, w,
			oracleBenchInputs(seeds, builtinQueries))
		if err != nil {
			return nil, err
		}
		ex := &oracle.Exec{Argv: execArgv, Workers: w}
		eRow, err := timeOracle(ctx, (oracle.Spec{Type: oracle.SpecExec, Argv: execArgv}).String(),
			"exec", ex, w, oracleBenchInputs(seeds, execQueries))
		if err != nil {
			return nil, err
		}
		if eRow.QPS > 0 {
			bRow.Speedup = bRow.QPS / eRow.QPS
		}
		rows = append(rows, bRow, eRow)
	}
	return rows, nil
}

// timeOracle runs one batch through a worker pool and reports throughput.
func timeOracle(ctx context.Context, name, mode string, o oracle.CheckOracle,
	workers int, inputs []string) (OracleRow, error) {
	pool := oracle.Parallel(o, workers)
	start := time.Now()
	if _, err := pool.CheckBatch(ctx, inputs); err != nil {
		return OracleRow{}, fmt.Errorf("%s: %w", name, err)
	}
	secs := time.Since(start).Seconds()
	row := OracleRow{
		Oracle: name, Mode: mode, Workers: workers,
		Queries: len(inputs), Seconds: secs,
	}
	if secs > 0 {
		row.QPS = float64(len(inputs)) / secs
	}
	return row, nil
}
