package telemetry

import (
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics wraps next with per-endpoint instrumentation on reg:
//
//	glade_http_requests_total{route,class}  request count by status class
//	glade_http_request_seconds{route}       latency histogram per route
//	glade_http_in_flight                    requests currently being served
//
// route maps a request to its label value — typically the mux pattern that
// will serve it, so label cardinality stays bounded no matter what paths
// clients probe. A nil route labels every request "unknown".
func HTTPMetrics(reg *Registry, route func(*http.Request) string, next http.Handler) http.Handler {
	inFlight := reg.Gauge("glade_http_in_flight",
		"HTTP requests currently being served.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := "unknown"
		if route != nil {
			if v := route(r); v != "" {
				rt = v
			}
		}
		inFlight.Inc()
		defer inFlight.Dec()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		reg.Counter("glade_http_requests_total",
			"HTTP requests served, by route and status class.",
			L("route", rt), L("class", statusClass(sw.status))).Inc()
		reg.Histogram("glade_http_request_seconds",
			"HTTP request latency, by route.",
			L("route", rt)).Observe(elapsed)
	})
}

// statusClass buckets an HTTP status code as "1xx".."5xx".
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// statusWriter captures the response status code while delegating to the
// wrapped ResponseWriter. Flush is forwarded so streaming endpoints (job
// watch NDJSON) keep working behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

// WriteHeader records the first status code written and forwards it.
func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

// Write marks the response started (an implicit 200 if WriteHeader was
// never called) and forwards the body bytes.
func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
