package telemetry

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Table test: each status code the handler returns must be counted under
// the right status class with the right route label.
func TestHTTPMetricsStatusClasses(t *testing.T) {
	cases := []struct {
		route  string
		status int
		class  string
	}{
		{"GET /v1/jobs", http.StatusOK, "2xx"},
		{"GET /v1/jobs", http.StatusNoContent, "2xx"},
		{"GET /v1/grammars/{id}", http.StatusMovedPermanently, "3xx"},
		{"GET /v1/jobs/{id}", http.StatusNotFound, "4xx"},
		{"POST /v1/jobs", http.StatusTooManyRequests, "4xx"},
		{"POST /v1/campaigns", http.StatusInternalServerError, "5xx"},
	}

	reg := NewRegistry()
	for _, tc := range cases {
		status := tc.status
		inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(status)
		})
		route := tc.route
		h := HTTPMetrics(reg, func(*http.Request) string { return route }, inner)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/whatever", nil))
		if rec.Code != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.route, rec.Code, tc.status)
		}
	}

	wantCounts := map[string]uint64{
		`class="2xx",route="GET /v1/jobs"`:          2,
		`class="3xx",route="GET /v1/grammars/{id}"`: 1,
		`class="4xx",route="GET /v1/jobs/{id}"`:     1,
		`class="4xx",route="POST /v1/jobs"`:         1,
		`class="5xx",route="POST /v1/campaigns"`:    1,
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for labels, n := range wantCounts {
		want := fmt.Sprintf("glade_http_requests_total{%s} %d", labels, n)
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Each request also lands one latency observation per route.
	if !strings.Contains(out, `glade_http_request_seconds_count{route="GET /v1/jobs"} 2`) {
		t.Errorf("missing latency count for GET /v1/jobs in:\n%s", out)
	}
	// In-flight gauge returns to zero once all handlers finish.
	if !strings.Contains(out, "glade_http_in_flight 0") {
		t.Errorf("in-flight gauge not back to 0 in:\n%s", out)
	}
}

// A handler that never calls WriteHeader must be counted as 200/2xx, and an
// implicit write must not let a later WriteHeader overwrite the class.
func TestHTTPMetricsImplicitStatus(t *testing.T) {
	reg := NewRegistry()
	h := HTTPMetrics(reg, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(b.String(), `glade_http_requests_total{class="2xx",route="unknown"} 1`) {
		t.Errorf("implicit 200 not counted as 2xx/unknown:\n%s", b.String())
	}
}

// The status wrapper must pass Flush through so streaming NDJSON endpoints
// keep flushing behind the middleware.
func TestStatusWriterFlushPassthrough(t *testing.T) {
	reg := NewRegistry()
	flushed := false
	h := HTTPMetrics(reg, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("middleware hides http.Flusher")
		}
		f.Flush()
		flushed = true
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stream", nil))
	if !flushed || !rec.Flushed {
		t.Errorf("flush not propagated: handler=%v recorder=%v", flushed, rec.Flushed)
	}
}
