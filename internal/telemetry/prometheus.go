package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE header per family
// followed by its samples, in registration order. Histogram samples are
// emitted in seconds with cumulative _bucket{le=...} series plus _sum and
// _count, as Prometheus expects.
func (r *Registry) WritePrometheus(w io.Writer) error {
	fams, children := r.collect()
	for fi, fam := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam.name, escapeHelp(fam.help), fam.name, fam.kind); err != nil {
			return err
		}
		for _, ch := range children[fi] {
			if err := writeChild(w, fam, ch); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, fam *family, ch *child) error {
	switch fam.kind {
	case kindCounter:
		return writeSample(w, fam.name, ch.key, "", float64(ch.c.Value()))
	case kindGauge:
		v := ch.g.Value()
		if ch.fn != nil {
			v = ch.fn()
		}
		return writeSample(w, fam.name, ch.key, "", v)
	case kindHistogram:
		s := ch.h.Snapshot()
		var cum uint64
		for i, n := range s.Buckets {
			cum += n
			le := "+Inf"
			if i < len(DefaultBuckets) {
				le = formatFloat(DefaultBuckets[i].Seconds())
			}
			leLabel := `le="` + le + `"`
			key := ch.key
			if key != "" {
				key += "," + leLabel
			} else {
				key = leLabel
			}
			if err := writeSample(w, fam.name, key, "_bucket", float64(cum)); err != nil {
				return err
			}
		}
		if err := writeSample(w, fam.name, ch.key, "_sum", s.Sum.Seconds()); err != nil {
			return err
		}
		return writeSample(w, fam.name, ch.key, "_count", float64(s.Count))
	}
	return nil
}

func writeSample(w io.Writer, name, labels, suffix string, v float64) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s%s %s\n", name, suffix, formatFloat(v))
	} else {
		_, err = fmt.Fprintf(w, "%s%s{%s} %s\n", name, suffix, labels, formatFloat(v))
	}
	return err
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Handler returns an http.Handler that serves the registry in the
// Prometheus text exposition format, suitable for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Render to the response directly; exposition errors past the
		// header are connection failures the client already sees.
		_ = r.WritePrometheus(w)
	})
}
