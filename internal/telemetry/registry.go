package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is a single name/value pair attached to a metric.
type Label struct {
	// Name is the label key; it must be a valid Prometheus label name.
	Name string
	// Value is the label value; it is escaped on exposition.
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metric kinds, mirrored in the Prometheus TYPE line and Snapshot output.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Registry collects named metrics and renders them for exposition. The
// zero value is not usable; call NewRegistry. Get-or-create lookups take a
// mutex, so callers should resolve instruments once at startup and hold the
// returned pointers rather than re-looking them up per observation.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// family is one metric name with its help text, kind, and every labeled
// child, kept in first-registration order for deterministic exposition.
type family struct {
	name     string
	help     string
	kind     string
	children []*child
	byLabels map[string]*child
}

// child is one labelset's instrument within a family.
type child struct {
	labels []Label
	key    string // rendered label string, "" for unlabeled
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// Counter returns the counter registered under name with the given labels,
// creating it on first use. Registering the same name with a different
// metric kind panics: metric names are a program-wide contract.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	ch := r.child(name, help, kindCounter, labels)
	return ch.c
}

// Gauge returns the gauge registered under name with the given labels,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	ch := r.child(name, help, kindGauge, labels)
	return ch.g
}

// GaugeFunc registers a gauge whose value is computed by fn at collection
// time. fn must be safe to call from the exposition handler's goroutine.
// Re-registering the same name and labels replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	ch := r.child(name, help, kindGauge, labels)
	r.mu.Lock()
	ch.fn = fn
	r.mu.Unlock()
}

// Histogram returns the latency histogram registered under name with the
// given labels, creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	ch := r.child(name, help, kindHistogram, labels)
	return ch.h
}

func (r *Registry) child(name, help, kind string, labels []Label) *child {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.byName[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind, byLabels: map[string]*child{}}
		r.byName[name] = fam
		r.families = append(r.families, fam)
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, fam.kind, kind))
	}
	ch := fam.byLabels[key]
	if ch == nil {
		ch = &child{labels: append([]Label(nil), labels...), key: key}
		switch kind {
		case kindCounter:
			ch.c = &Counter{}
		case kindGauge:
			ch.g = &Gauge{}
		case kindHistogram:
			ch.h = &Histogram{}
		}
		fam.byLabels[key] = ch
		fam.children = append(fam.children, ch)
	}
	return ch
}

// renderLabels renders a labelset as it appears inside {...} in the
// exposition format, sorted by label name so lookups are order-insensitive.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// MetricPoint is one metric sample in a Registry snapshot, shaped for JSON
// APIs: counters and gauges carry Value; histograms carry Count, the sum in
// seconds, and derived quantiles in seconds.
type MetricPoint struct {
	// Name is the metric family name.
	Name string `json:"name"`
	// Type is "counter", "gauge", or "histogram".
	Type string `json:"type"`
	// Labels holds the metric's label pairs, if any.
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the current value for counters and gauges.
	Value float64 `json:"value,omitempty"`
	// Count is the observation count for histograms.
	Count uint64 `json:"count,omitempty"`
	// SumSeconds is the histogram's total observed time in seconds.
	SumSeconds float64 `json:"sum_seconds,omitempty"`
	// P50Seconds is the estimated median latency in seconds.
	P50Seconds float64 `json:"p50_seconds,omitempty"`
	// P95Seconds is the estimated 95th-percentile latency in seconds.
	P95Seconds float64 `json:"p95_seconds,omitempty"`
	// P99Seconds is the estimated 99th-percentile latency in seconds.
	P99Seconds float64 `json:"p99_seconds,omitempty"`
	// MaxSeconds is the largest single observation in seconds.
	MaxSeconds float64 `json:"max_seconds,omitempty"`
}

// Snapshot returns the current value of every registered metric in
// registration order. GaugeFunc gauges are evaluated during the call.
func (r *Registry) Snapshot() []MetricPoint {
	fams, children := r.collect()
	var out []MetricPoint
	for fi, fam := range fams {
		for _, ch := range children[fi] {
			p := MetricPoint{Name: fam.name, Type: fam.kind}
			if len(ch.labels) > 0 {
				p.Labels = make(map[string]string, len(ch.labels))
				for _, l := range ch.labels {
					p.Labels[l.Name] = l.Value
				}
			}
			switch fam.kind {
			case kindCounter:
				p.Value = float64(ch.c.Value())
			case kindGauge:
				if ch.fn != nil {
					p.Value = ch.fn()
				} else {
					p.Value = ch.g.Value()
				}
			case kindHistogram:
				s := ch.h.Snapshot()
				p.Count = s.Count
				p.SumSeconds = s.Sum.Seconds()
				p.P50Seconds = s.Quantile(0.50).Seconds()
				p.P95Seconds = s.Quantile(0.95).Seconds()
				p.P99Seconds = s.Quantile(0.99).Seconds()
				p.MaxSeconds = s.Max.Seconds()
			}
			out = append(out, p)
		}
	}
	return out
}

// collect copies the family/child structure under the lock so exposition
// can run GaugeFunc callbacks (which may take other locks) without holding
// the registry mutex.
func (r *Registry) collect() ([]*family, [][]*child) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := append([]*family(nil), r.families...)
	children := make([][]*child, len(fams))
	for i, fam := range fams {
		children[i] = append([]*child(nil), fam.children...)
	}
	return fams, children
}
