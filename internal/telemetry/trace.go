package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one completed phase of work: a name, a wall-clock interval, and a
// small bag of numeric attributes (oracle queries, candidates generated,
// speculation hit-rate, ...). Spans are emitted by core.Learn for each
// learner phase and serialized as one JSON object per line in NDJSON trace
// files.
type Span struct {
	// Name identifies the phase: "seeds", "phase1", "chargen", "phase2",
	// or "finalize".
	Name string `json:"name"`
	// Seed is the zero-based seed index for per-seed phases, -1 otherwise.
	Seed int `json:"seed"`
	// Start is the wall-clock time the phase began.
	Start time.Time `json:"start"`
	// DurationNS is the phase wall time in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// Attrs holds phase counters: only keys with non-zero values are set.
	Attrs map[string]float64 `json:"attrs,omitempty"`
}

// End returns the wall-clock time the span finished.
func (s Span) End() time.Time { return s.Start.Add(time.Duration(s.DurationNS)) }

// Duration returns the span's wall time as a time.Duration.
func (s Span) Duration() time.Duration { return time.Duration(s.DurationNS) }

// Tracer receives completed spans. Implementations must be safe for
// concurrent use; core.Learn emits spans from the learner goroutine but a
// single Tracer may be shared across jobs.
type Tracer interface {
	// Emit records one completed span.
	Emit(Span)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(Span)

// Emit calls f(s).
func (f TracerFunc) Emit(s Span) { f(s) }

// MultiTracer fans each span out to every non-nil tracer in the list.
func MultiTracer(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	return TracerFunc(func(s Span) {
		for _, t := range live {
			t.Emit(s)
		}
	})
}

// NDJSONTracer writes each span as one JSON object per line. It serializes
// writes internally, so a single instance may back multiple jobs.
type NDJSONTracer struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewNDJSONTracer returns a tracer writing newline-delimited JSON spans to w.
func NewNDJSONTracer(w io.Writer) *NDJSONTracer {
	return &NDJSONTracer{enc: json.NewEncoder(w)}
}

// Emit writes the span as one NDJSON line. Encoding errors are dropped:
// tracing must never fail the traced work.
func (t *NDJSONTracer) Emit(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.enc.Encode(s)
}

// maxRecordedSpans bounds SpanRecorder growth; a learn job over dozens of
// seeds emits a few spans per seed, so the cap is far above normal use.
const maxRecordedSpans = 1024

// SpanRecorder accumulates spans in memory, for attaching phase timing to
// job records and API responses. It is safe for concurrent use and keeps at
// most maxRecordedSpans spans (later spans are counted but dropped).
type SpanRecorder struct {
	mu      sync.Mutex
	spans   []Span
	dropped int
}

// Emit appends the span to the recorder.
func (r *SpanRecorder) Emit(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= maxRecordedSpans {
		r.dropped++
		return
	}
	r.spans = append(r.spans, s)
}

// Spans returns a copy of the recorded spans in emission order.
func (r *SpanRecorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// PhaseSummary aggregates the recorded spans by name: total wall time in
// nanoseconds per phase. It is the shape folded into /v1/stats.
func (r *SpanRecorder) PhaseSummary() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) == 0 {
		return nil
	}
	out := make(map[string]int64)
	for _, s := range r.spans {
		out[s.Name] += s.DurationNS
	}
	return out
}
