package telemetry

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Eight goroutines hammer one histogram with a known latency mix; the
// totals must be exact and the estimated quantiles must land inside the
// bucket-resolution bounds implied by the mix. Run under -race this also
// proves the observation path is data-race free.
func TestHistogramConcurrentHammer(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
	)
	h := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				// 90% fast ops around 1µs, 10% slow ops around 1ms.
				var d time.Duration
				if rng.Intn(10) == 0 {
					d = time.Millisecond + time.Duration(rng.Intn(1000))*time.Microsecond
				} else {
					d = time.Microsecond + time.Duration(rng.Intn(1000))*time.Nanosecond
				}
				h.Observe(d)
			}
		}(int64(g))
	}
	wg.Wait()

	s := h.Snapshot()
	if want := uint64(goroutines * perG); s.Count != want {
		t.Fatalf("count = %d, want %d", s.Count, want)
	}
	var bucketTotal uint64
	for _, n := range s.Buckets {
		bucketTotal += n
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	if s.Max < time.Millisecond || s.Max > 2*time.Millisecond {
		t.Fatalf("max = %v, want ~1-2ms", s.Max)
	}
	// p50 sits in the fast mode (~1-2µs); bucket resolution bounds it to
	// [1µs, 2.5µs]. p99 sits in the slow mode (~1-2ms).
	if p50 := s.Quantile(0.50); p50 < time.Microsecond || p50 > 2500*time.Nanosecond {
		t.Errorf("p50 = %v, want within [1µs, 2.5µs]", p50)
	}
	if p99 := s.Quantile(0.99); p99 < time.Millisecond || p99 > 2500*time.Microsecond {
		t.Errorf("p99 = %v, want within [1ms, 2.5ms]", p99)
	}
	if mean := s.Mean(); mean <= 0 || mean > time.Millisecond {
		t.Errorf("mean = %v, want positive and below 1ms", mean)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := &Histogram{}
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Errorf("empty histogram p99 = %v, want 0", got)
	}

	h.Observe(3 * time.Microsecond)
	s := h.Snapshot()
	if got := s.Quantile(0.5); got > s.Max || got < time.Microsecond {
		t.Errorf("single-sample p50 = %v, want within (1µs, max=%v]", got, s.Max)
	}
	if got := s.Quantile(1.0); got != s.Max {
		t.Errorf("p100 = %v, want max %v", got, s.Max)
	}

	// Overflow bucket observations are clamped to the observed max.
	h2 := &Histogram{}
	h2.Observe(5 * time.Minute)
	s2 := h2.Snapshot()
	if got := s2.Quantile(0.99); got != 5*time.Minute {
		t.Errorf("overflow p99 = %v, want clamped to max 5m", got)
	}
}

func TestHistogramObserveN(t *testing.T) {
	h := &Histogram{}
	h.ObserveN(10*time.Microsecond, 100)
	h.ObserveN(-time.Second, 1) // negative clamps to 0
	h.ObserveN(time.Second, 0)  // n<=0 ignored
	s := h.Snapshot()
	if s.Count != 101 {
		t.Fatalf("count = %d, want 101", s.Count)
	}
	if want := 1000 * time.Microsecond; s.Sum != want {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
	if s.Max != 10*time.Microsecond {
		t.Errorf("max = %v, want 10µs", s.Max)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	g.Dec()
	if g.Value() != 3 {
		t.Errorf("gauge = %v, want 3", g.Value())
	}
}
