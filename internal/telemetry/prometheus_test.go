package telemetry

import (
	"strings"
	"testing"
	"time"
)

// Golden test for the Prometheus text exposition: exact output, including
// family headers, label rendering, cumulative buckets, and seconds units.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("glade_test_requests_total", "Requests served.",
		L("route", "/v1/jobs"), L("class", "2xx")).Add(3)
	reg.Gauge("glade_test_temp", "Current temperature.").Set(21.5)
	reg.GaugeFunc("glade_test_queue_depth", "Computed queue depth.",
		func() float64 { return 7 })
	h := reg.Histogram("glade_test_latency_seconds", "Latency.")
	h.Observe(time.Microsecond)
	h.Observe(time.Microsecond)
	h.Observe(2 * time.Millisecond)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}

	want := `# HELP glade_test_requests_total Requests served.
# TYPE glade_test_requests_total counter
glade_test_requests_total{class="2xx",route="/v1/jobs"} 3
# HELP glade_test_temp Current temperature.
# TYPE glade_test_temp gauge
glade_test_temp 21.5
# HELP glade_test_queue_depth Computed queue depth.
# TYPE glade_test_queue_depth gauge
glade_test_queue_depth 7
# HELP glade_test_latency_seconds Latency.
# TYPE glade_test_latency_seconds histogram
glade_test_latency_seconds_bucket{le="2.5e-07"} 0
glade_test_latency_seconds_bucket{le="5e-07"} 0
glade_test_latency_seconds_bucket{le="1e-06"} 2
glade_test_latency_seconds_bucket{le="2.5e-06"} 2
glade_test_latency_seconds_bucket{le="5e-06"} 2
glade_test_latency_seconds_bucket{le="1e-05"} 2
glade_test_latency_seconds_bucket{le="2.5e-05"} 2
glade_test_latency_seconds_bucket{le="5e-05"} 2
glade_test_latency_seconds_bucket{le="0.0001"} 2
glade_test_latency_seconds_bucket{le="0.00025"} 2
glade_test_latency_seconds_bucket{le="0.0005"} 2
glade_test_latency_seconds_bucket{le="0.001"} 2
glade_test_latency_seconds_bucket{le="0.0025"} 3
glade_test_latency_seconds_bucket{le="0.005"} 3
glade_test_latency_seconds_bucket{le="0.01"} 3
glade_test_latency_seconds_bucket{le="0.025"} 3
glade_test_latency_seconds_bucket{le="0.05"} 3
glade_test_latency_seconds_bucket{le="0.1"} 3
glade_test_latency_seconds_bucket{le="0.25"} 3
glade_test_latency_seconds_bucket{le="0.5"} 3
glade_test_latency_seconds_bucket{le="1"} 3
glade_test_latency_seconds_bucket{le="2.5"} 3
glade_test_latency_seconds_bucket{le="5"} 3
glade_test_latency_seconds_bucket{le="10"} 3
glade_test_latency_seconds_bucket{le="30"} 3
glade_test_latency_seconds_bucket{le="+Inf"} 3
glade_test_latency_seconds_sum 0.002002
glade_test_latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("glade_test_esc_total", "Escaping.",
		L("path", "a\\b\"c\nd")).Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `glade_test_esc_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing escaped sample %q in:\n%s", want, b.String())
	}
}

func TestSnapshotShapes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "c.", L("k", "v")).Add(2)
	reg.Histogram("h_seconds", "h.").Observe(time.Millisecond)
	snap := reg.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(snap))
	}
	if snap[0].Type != "counter" || snap[0].Value != 2 || snap[0].Labels["k"] != "v" {
		t.Errorf("counter point = %+v", snap[0])
	}
	hp := snap[1]
	if hp.Type != "histogram" || hp.Count != 1 || hp.SumSeconds != 0.001 {
		t.Errorf("histogram point = %+v", hp)
	}
	if hp.P50Seconds <= 0 || hp.P99Seconds < hp.P50Seconds || hp.MaxSeconds != 0.001 {
		t.Errorf("histogram quantiles = %+v", hp)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("same_name", "first.")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("same_name", "second.")
}

func TestRegistryGetOrCreateReturnsSameInstrument(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x.", L("r", "1"))
	b := reg.Counter("x_total", "x.", L("r", "1"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	c := reg.Counter("x_total", "x.", L("r", "2"))
	if a == c {
		t.Error("distinct labels returned the same counter")
	}
}
