package telemetry

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNDJSONTracerRoundTrip(t *testing.T) {
	var b strings.Builder
	tr := NewNDJSONTracer(&b)
	start := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr.Emit(Span{Name: "phase1", Seed: 0, Start: start,
		DurationNS: int64(150 * time.Millisecond),
		Attrs:      map[string]float64{"queries": 42, "candidates": 7}})
	tr.Emit(Span{Name: "phase2", Seed: -1, Start: start.Add(150 * time.Millisecond),
		DurationNS: int64(20 * time.Millisecond)})

	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var spans []Span
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d not valid JSON: %v", len(spans)+1, err)
		}
		spans = append(spans, s)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d NDJSON lines, want 2", len(spans))
	}
	if spans[0].Name != "phase1" || spans[0].Attrs["queries"] != 42 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if got := spans[0].End(); !got.Equal(start.Add(150 * time.Millisecond)) {
		t.Errorf("span 0 end = %v", got)
	}
	if spans[1].Seed != -1 || spans[1].Duration() != 20*time.Millisecond {
		t.Errorf("span 1 = %+v", spans[1])
	}
}

func TestSpanRecorderSummary(t *testing.T) {
	var r SpanRecorder
	base := time.Now()
	r.Emit(Span{Name: "phase1", Start: base, DurationNS: 100})
	r.Emit(Span{Name: "phase1", Start: base, DurationNS: 50})
	r.Emit(Span{Name: "phase2", Start: base, DurationNS: 30})
	if got := len(r.Spans()); got != 3 {
		t.Fatalf("recorded %d spans, want 3", got)
	}
	sum := r.PhaseSummary()
	if sum["phase1"] != 150 || sum["phase2"] != 30 {
		t.Errorf("summary = %v", sum)
	}
}

func TestMultiTracerSkipsNil(t *testing.T) {
	var a, b SpanRecorder
	mt := MultiTracer(&a, nil, &b)
	mt.Emit(Span{Name: "x"})
	if len(a.Spans()) != 1 || len(b.Spans()) != 1 {
		t.Errorf("fan-out failed: a=%d b=%d", len(a.Spans()), len(b.Spans()))
	}
}
