// Package telemetry is a dependency-free metrics and tracing layer for the
// glade toolchain.
//
// It provides three instrument kinds — Counter, Gauge (including computed
// GaugeFunc gauges), and fixed-bucket latency Histogram — collected in a
// Registry that can render itself in the Prometheus text exposition format
// (see WritePrometheus / Handler) or as a structured Snapshot for JSON APIs.
// All instruments are safe for concurrent use and allocation-free on the
// observation path: counters and gauges are single atomics, and a histogram
// observation is three atomic adds plus a bucket lookup in a fixed table.
//
// The package also defines the Span / Tracer contract used by core.Learn to
// report per-phase timing (see trace.go) and an HTTP middleware that
// instruments a mux with request counts, status classes, and latency
// histograms (see httpmw.go).
package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n (which must be non-negative).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds one to the gauge.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
