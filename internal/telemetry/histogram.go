package telemetry

import (
	"sync/atomic"
	"time"
)

// DefaultBuckets are the upper bounds, in nanoseconds, of the fixed latency
// buckets used by every Histogram. They span 250ns to 30s on a 1-2.5-5
// ladder, wide enough to cover both in-process oracle dispatch (hundreds of
// nanoseconds) and exec-oracle or whole-job latencies (seconds). The final
// implicit bucket is +Inf.
var DefaultBuckets = []time.Duration{
	250 * time.Nanosecond,
	500 * time.Nanosecond,
	1 * time.Microsecond,
	2500 * time.Nanosecond,
	5 * time.Microsecond,
	10 * time.Microsecond,
	25 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
}

const numBuckets = 26 // len(DefaultBuckets) + the +Inf overflow bucket

// Histogram is a fixed-bucket latency histogram. Observations are binned
// into DefaultBuckets; count, sum, and max are tracked exactly, and
// quantiles are estimated from the bucket counts by linear interpolation.
// All methods are safe for concurrent use and the observation path performs
// no allocation.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [numBuckets]atomic.Uint64
}

// Observe records a single latency observation.
func (h *Histogram) Observe(d time.Duration) { h.ObserveN(d, 1) }

// ObserveN records n observations of the same latency d in one shot. It is
// used by batch oracles that know the per-item mean but not the individual
// item latencies: the batch contributes n samples at the mean, matching the
// attribution convention of metrics.QueryStats.
func (h *Histogram) ObserveN(d time.Duration, n int) {
	if n <= 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(uint64(n))
	h.sumNS.Add(int64(d) * int64(n))
	for {
		old := h.maxNS.Load()
		if int64(d) <= old || h.maxNS.CompareAndSwap(old, int64(d)) {
			break
		}
	}
	h.buckets[bucketIndex(d)].Add(uint64(n))
}

// bucketIndex returns the index of the bucket that d falls into. The table
// is small enough that a linear scan beats binary search in practice.
func bucketIndex(d time.Duration) int {
	for i, b := range DefaultBuckets {
		if d <= b {
			return i
		}
	}
	return numBuckets - 1
}

// Snapshot returns a point-in-time copy of the histogram state. The copy is
// internally consistent enough for reporting: bucket counts are read after
// count/sum/max, so derived quantiles are never ahead of the totals by more
// than the observations that raced the snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sumNS.Load())
	s.Max = time.Duration(h.maxNS.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Reset zeroes the histogram. It is not atomic with respect to concurrent
// observers; callers that need a consistent epoch should swap in a fresh
// Histogram instead.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sumNS.Store(0)
	h.maxNS.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistogramSnapshot is an immutable copy of a Histogram's state.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of all observed latencies.
	Sum time.Duration
	// Max is the largest single observation.
	Max time.Duration
	// Buckets holds the per-bucket observation counts; Buckets[i] counts
	// observations <= DefaultBuckets[i], with the final slot counting the
	// +Inf overflow.
	Buckets [numBuckets]uint64
}

// Mean returns the mean observed latency, or zero with no observations.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by walking the
// cumulative bucket counts and linearly interpolating within the bucket
// that contains the target rank. The estimate is clamped to Max so the
// overflow bucket never reports beyond the largest real observation.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	lower := time.Duration(0)
	for i, n := range s.Buckets {
		if n == 0 {
			if i < len(DefaultBuckets) {
				lower = DefaultBuckets[i]
			}
			continue
		}
		next := cum + n
		if float64(next) >= rank {
			if i == len(DefaultBuckets) {
				// Overflow bucket: no finite upper bound to interpolate
				// against, so report the largest real observation.
				return s.Max
			}
			upper := DefaultBuckets[i]
			if upper > s.Max && s.Max > 0 {
				upper = s.Max
			}
			frac := (rank - float64(cum)) / float64(n)
			est := lower + time.Duration(frac*float64(upper-lower))
			if est > s.Max && s.Max > 0 {
				est = s.Max
			}
			return est
		}
		cum = next
		if i < len(DefaultBuckets) {
			lower = DefaultBuckets[i]
		}
	}
	return s.Max
}
