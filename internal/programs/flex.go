package programs

// Flex returns a simulated flex lexer-generator front-end: it parses .l
// specifications — a definitions section (name/pattern macros, %option
// lines, %{ literal blocks %}), a %% rules section (pattern + action), and
// an optional user-code epilogue.
func Flex() Program {
	return &base{
		name: "flex",
		reg:  newRegistry(),
		seeds: []string{
			"DIGIT [0-9]\n%%\n{DIGIT}+ { count(); }\n. ;\n%%\n",
			"%option noyywrap\n%%\nabc printf\n",
			"%{\nint n;\n%}\nID [a-z_]\n%%\n{ID}* { n++; }\n\"+\" |\n\"-\" { op(); }\n%%\nmain\n",
		},
		parse: flexParse,
	}
}

func flexParse(t *tracer, input string) bool {
	c := &cursor{s: input, t: t}
	t.hit("flex.enter")
	if !flexDefinitions(c) {
		return false
	}
	if !c.lit("%%") {
		t.hit("flex.err.no-rules-marker")
		return false
	}
	t.hit("flex.rules-marker")
	if !c.eat('\n') && !c.eof() {
		t.hit("flex.err.marker-line")
		return false
	}
	if !flexRules(c) {
		return false
	}
	if c.lit("%%") {
		t.hit("flex.user-code")
		// The epilogue is arbitrary text; always accepted.
		c.i = len(c.s)
	}
	if !c.eof() {
		t.hit("flex.err.trailing")
		return false
	}
	t.hit("flex.accept")
	return true
}

// flexDefinitions parses the section before the first %%.
func flexDefinitions(c *cursor) bool {
	t := c.t
	for {
		if c.eof() {
			t.hit("flex.err.no-sections")
			return false
		}
		if c.peek() == '%' && c.peekAt(1) == '%' {
			return true
		}
		switch {
		case c.lit("%{"):
			t.hit("flex.def.codeblock")
			// Literal block up to %} at line start.
			for {
				if c.eof() {
					t.hit("flex.err.codeblock-open")
					return false
				}
				if c.eat('\n') && c.lit("%}") {
					t.hit("flex.def.codeblock-close")
					break
				}
				if c.peek() != '\n' {
					c.i++
				}
			}
			c.skip(func(b byte) bool { return b != '\n' })
			c.eat('\n')
		case c.lit("%option"):
			t.hit("flex.def.option")
			if c.skip(isSpace) == 0 {
				t.hit("flex.err.option-space")
				return false
			}
			if c.skip(isAlnum) == 0 {
				t.hit("flex.err.option-name")
				return false
			}
			c.skip(func(b byte) bool { return b != '\n' })
			c.eat('\n')
		case c.peek() == '\n':
			c.i++
			t.hit("flex.def.blank")
		case isSpace(c.peek()):
			// Indented lines in the definitions section are literal code.
			t.hit("flex.def.indented-code")
			c.skip(func(b byte) bool { return b != '\n' })
			c.eat('\n')
		case isLetter(c.peek()):
			// Macro definition: NAME pattern.
			t.hit("flex.def.macro")
			c.skip(isAlnum)
			if c.skip(isSpace) == 0 {
				t.hit("flex.err.macro-space")
				return false
			}
			if !flexPattern(c, true) {
				return false
			}
			c.eat('\n')
		default:
			t.hit("flex.err.def-line")
			return false
		}
	}
}

// flexRules parses rule lines: pattern action, pattern |, or blank lines,
// up to the optional second %%.
func flexRules(c *cursor) bool {
	t := c.t
	sawRule := false
	rules := 0
	done := func() bool { t.bucket("flex.rules", rules); return true }
	for {
		if c.eof() {
			if !sawRule {
				t.hit("flex.warn.no-rules")
			}
			return done()
		}
		if c.peek() == '%' && c.peekAt(1) == '%' {
			return done()
		}
		if c.eat('\n') {
			t.hit("flex.rule.blank")
			continue
		}
		if isSpace(c.peek()) {
			// Indented code line inside the rules section.
			t.hit("flex.rule.indented-code")
			c.skip(func(b byte) bool { return b != '\n' })
			c.eat('\n')
			continue
		}
		if !flexPattern(c, false) {
			return false
		}
		sawRule = true
		rules++
		if c.skip(isSpace) == 0 && c.peek() != '\n' && !c.eof() {
			t.hit("flex.err.rule-space")
			return false
		}
		if !flexAction(c) {
			return false
		}
	}
}

// flexPattern parses a lexer regex: chars, classes, quoted literals, {name}
// references, and repetition. inDef stops at end of line only.
func flexPattern(c *cursor, inDef bool) bool {
	t := c.t
	n := 0
	for {
		if c.eof() || c.peek() == '\n' {
			break
		}
		if !inDef && isSpace(c.peek()) {
			break
		}
		b := c.peek()
		switch {
		case b == '"':
			c.i++
			t.hit("flex.pat.quote")
			for !c.eof() && c.peek() != '"' && c.peek() != '\n' {
				if c.peek() == '\\' {
					c.i++
					if c.eof() {
						t.hit("flex.err.pat.escape")
						return false
					}
				}
				c.i++
			}
			if !c.eat('"') {
				t.hit("flex.err.pat.quote-open")
				return false
			}
		case b == '[':
			c.i++
			t.hit("flex.pat.class")
			if c.eat('^') {
				t.hit("flex.pat.class-negate")
			}
			if c.skip(func(x byte) bool { return x != ']' && x != '\n' }) == 0 {
				t.hit("flex.err.pat.class-empty")
				return false
			}
			if !c.eat(']') {
				t.hit("flex.err.pat.class-open")
				return false
			}
		case b == '{':
			c.i++
			if isDigit(c.peek()) {
				t.hit("flex.pat.interval")
				c.skip(isDigit)
				if c.eat(',') {
					c.skip(isDigit)
				}
			} else {
				t.hit("flex.pat.macro-ref")
				if c.skip(isAlnum) == 0 {
					t.hit("flex.err.pat.ref-name")
					return false
				}
			}
			if !c.eat('}') {
				t.hit("flex.err.pat.brace-open")
				return false
			}
		case b == '(':
			c.i++
			t.hit("flex.pat.group-open")
			if !flexPattern(c, inDef) {
				return false
			}
			if !c.eat(')') {
				t.hit("flex.err.pat.group-open")
				return false
			}
		case b == ')':
			if n == 0 {
				t.hit("flex.err.pat.group-close")
				return false
			}
			return true
		case b == '*' || b == '+' || b == '?':
			if n == 0 {
				t.hit("flex.err.pat.dangling-op")
				return false
			}
			c.i++
			t.hit("flex.pat.rep." + string(b))
			continue
		case b == '|':
			if n == 0 {
				t.hit("flex.err.pat.empty-alt")
				return false
			}
			c.i++
			t.hit("flex.pat.alt")
			continue
		case b == '\\':
			c.i++
			if c.eof() || c.peek() == '\n' {
				t.hit("flex.err.pat.escape")
				return false
			}
			c.i++
			t.hit("flex.pat.escape")
		case b == '.':
			c.i++
			t.hit("flex.pat.any")
		case b == '^' && n == 0:
			c.i++
			t.hit("flex.pat.anchor")
		case b == '$':
			c.i++
			t.hit("flex.pat.eol")
		default:
			c.i++
			t.hit("flex.pat.char")
		}
		n++
	}
	if n == 0 {
		t.hit("flex.err.pat.empty")
		return false
	}
	t.bucket("flex.pat.size", n)
	return true
}

// flexAction parses an action: '|', a { } block with nesting, a one-line C
// fragment, or empty (end of line).
func flexAction(c *cursor) bool {
	t := c.t
	switch {
	case c.peek() == '|':
		c.i++
		t.hit("flex.action.fallthrough")
		c.skip(isSpace)
		if !c.eat('\n') && !c.eof() {
			t.hit("flex.err.action.bar")
			return false
		}
		return true
	case c.peek() == '{':
		t.hit("flex.action.block")
		depth := 0
		for !c.eof() {
			switch c.peek() {
			case '{':
				depth++
			case '}':
				depth--
				if depth == 0 {
					c.i++
					t.hit("flex.action.block-close")
					c.skip(isSpace)
					c.eat('\n')
					return true
				}
			}
			c.i++
		}
		t.hit("flex.err.action.block-open")
		return false
	case c.peek() == '\n' || c.eof():
		c.eat('\n')
		t.hit("flex.action.empty")
		return true
	default:
		t.hit("flex.action.inline")
		c.skip(func(b byte) bool { return b != '\n' })
		c.eat('\n')
		return true
	}
}
