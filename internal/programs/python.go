package programs

// Python returns a simulated Python front-end: a parser for a miniature of
// Python's statement and expression syntax — assignments, expression
// statements, control flow with colon suites and indentation, function
// definitions, and a full expression grammar with precedence, calls,
// attributes, subscripts, and literals. Only parsing is simulated (the
// paper likewise fuzzes just the parser, wrapping inputs so they never
// execute).
func Python() Program {
	return &base{
		name: "python",
		reg:  newRegistry(),
		seeds: []string{
			"x = 1 + 2 * f(y)\nprint(x)\n",
			"if x == 1:\n    y = [1, 2, 3]\nelse:\n    y = {'k': v}\n",
			"def f(a, b):\n    return a.size[0] + b\nwhile not done:\n    f(1, 2)\n",
			"for i in range(10):\n    total = total + i\npass\n",
		},
		parse: pyParse,
	}
}

// pyParse splits the input into physical lines and parses a block structure
// driven by 4-space indentation.
func pyParse(t *tracer, input string) bool {
	t.hit("py.enter")
	lines, ok := pyLines(t, input)
	if !ok {
		return false
	}
	p := &pyParser{t: t, lines: lines}
	if !p.block(0) {
		return false
	}
	if p.ln != len(p.lines) {
		t.hit("py.err.dedent")
		return false
	}
	t.hit("py.accept")
	return true
}

type pyLine struct {
	indent int
	text   string
}

// pyLines computes (indent, text) per non-blank line; indentation must be
// spaces in multiples of four.
func pyLines(t *tracer, input string) ([]pyLine, bool) {
	var out []pyLine
	for len(input) > 0 {
		nl := -1
		for i := 0; i < len(input); i++ {
			if input[i] == '\n' {
				nl = i
				break
			}
		}
		var line string
		if nl < 0 {
			line, input = input, ""
		} else {
			line, input = input[:nl], input[nl+1:]
		}
		n := 0
		for n < len(line) && line[n] == ' ' {
			n++
		}
		if n == len(line) {
			t.hit("py.line.blank")
			continue
		}
		if line[n] == '#' {
			t.hit("py.line.comment")
			continue
		}
		if line[n] == '\t' {
			t.hit("py.err.tab-indent")
			return nil, false
		}
		if n%4 != 0 {
			t.hit("py.err.indent-width")
			return nil, false
		}
		out = append(out, pyLine{indent: n / 4, text: line[n:]})
	}
	return out, true
}

type pyParser struct {
	t     *tracer
	lines []pyLine
	ln    int
}

// block parses statements at exactly the given indent level; it returns
// when the indentation drops below level.
func (p *pyParser) block(level int) bool {
	t := p.t
	t.bucket("py.indent", level)
	n := 0
	for p.ln < len(p.lines) {
		l := p.lines[p.ln]
		if l.indent < level {
			break
		}
		if l.indent > level {
			t.hit("py.err.unexpected-indent")
			return false
		}
		if !p.statement(level, l.text) {
			return false
		}
		n++
	}
	if n == 0 {
		t.hit("py.err.empty-block")
		return false
	}
	t.bucket("py.block.stmts", n)
	return true
}

// statement parses one logical line (p.lines[p.ln]) and any suite it owns.
func (p *pyParser) statement(level int, text string) bool {
	t := p.t
	c := &cursor{s: text, t: t}
	switch {
	case c.lit("if "):
		t.hit("py.stmt.if")
		if !p.colonSuite(c, level) {
			return false
		}
		for p.ln < len(p.lines) && p.lines[p.ln].indent == level && hasPrefixWord(p.lines[p.ln].text, "elif") {
			t.hit("py.stmt.elif")
			ec := &cursor{s: p.lines[p.ln].text[len("elif"):], t: t}
			if !ec.eat(' ') {
				t.hit("py.err.elif-space")
				return false
			}
			if !p.colonSuiteAt(ec, level) {
				return false
			}
		}
		if p.ln < len(p.lines) && p.lines[p.ln].indent == level && isElseLine(p.lines[p.ln].text) {
			t.hit("py.stmt.else")
			ec := &cursor{s: p.lines[p.ln].text[len("else"):], t: t}
			skipPySpaces(ec)
			if !p.suiteAfterColon(ec, level) {
				return false
			}
		}
		return true
	case c.lit("while "):
		t.hit("py.stmt.while")
		return p.colonSuite(c, level)
	case c.lit("for "):
		t.hit("py.stmt.for")
		if !pyName(c) {
			t.hit("py.err.for-target")
			return false
		}
		skipPySpaces(c)
		if !c.lit("in ") && !c.lit("in") {
			t.hit("py.err.for-in")
			return false
		}
		return p.colonSuite(c, level)
	case c.lit("def "):
		t.hit("py.stmt.def")
		if !pyName(c) {
			t.hit("py.err.def-name")
			return false
		}
		if !c.eat('(') {
			t.hit("py.err.def-paren")
			return false
		}
		if !pyParamList(c) {
			return false
		}
		return p.suiteAfterColonExpr(c, level, false)
	default:
		defer func() { p.ln++ }()
		return p.simpleLine(c)
	}
}

// colonSuite parses "<expr>: suite" for if/while/for headers.
func (p *pyParser) colonSuite(c *cursor, level int) bool {
	skipPySpaces(c)
	if !pyExpr(c) {
		return false
	}
	return p.suiteAfterColon(c, level)
}

func (p *pyParser) colonSuiteAt(c *cursor, level int) bool {
	return p.colonSuite(c, level)
}

func (p *pyParser) suiteAfterColonExpr(c *cursor, level int, needExpr bool) bool {
	if needExpr {
		if !pyExpr(c) {
			return false
		}
	}
	return p.suiteAfterColon(c, level)
}

// suiteAfterColon consumes ':' then either an inline suite on the same
// line or an indented block on the following lines.
func (p *pyParser) suiteAfterColon(c *cursor, level int) bool {
	t := p.t
	skipPySpaces(c)
	if !c.eat(':') {
		t.hit("py.err.colon")
		return false
	}
	skipPySpaces(c)
	if !c.eof() {
		t.hit("py.suite.inline")
		if !p.simpleLine(c) {
			return false
		}
		p.ln++
		return true
	}
	t.hit("py.suite.block")
	p.ln++
	return p.block(level + 1)
}

// simpleLine parses ';'-separated simple statements filling the rest of the
// line.
func (p *pyParser) simpleLine(c *cursor) bool {
	t := p.t
	for {
		if !pySimpleStmt(c) {
			return false
		}
		skipPySpaces(c)
		if c.eat(';') {
			t.hit("py.stmt.semi")
			skipPySpaces(c)
			if c.eof() {
				return true
			}
			continue
		}
		if !c.eof() {
			t.hit("py.err.trailing")
			return false
		}
		return true
	}
}

// pySimpleStmt parses return/pass/break/continue/import/assignment/expr.
func pySimpleStmt(c *cursor) bool {
	t := c.t
	switch {
	case c.lit("return"):
		t.hit("py.stmt.return")
		if c.eat(' ') {
			skipPySpaces(c)
			if !c.eof() && c.peek() != ';' {
				return pyExpr(c)
			}
		}
		return true
	case matchWord(c, "pass"):
		t.hit("py.stmt.pass")
		return true
	case matchWord(c, "break"):
		t.hit("py.stmt.break")
		return true
	case matchWord(c, "continue"):
		t.hit("py.stmt.continue")
		return true
	case c.lit("import "):
		t.hit("py.stmt.import")
		skipPySpaces(c)
		if !pyName(c) {
			t.hit("py.err.import-name")
			return false
		}
		for {
			save := c.i
			skipPySpaces(c)
			if c.eat('.') {
				if !pyName(c) {
					t.hit("py.err.import-dotted")
					return false
				}
				continue
			}
			c.i = save
			return true
		}
	default:
		if !pyExpr(c) {
			return false
		}
		save := c.i
		skipPySpaces(c)
		// Assignment (single or augmented).
		for _, op := range []string{"+=", "-=", "*=", "/=", "="} {
			if c.lit(op) {
				if op == "=" && c.peek() == '=' {
					// part of '=='; cannot happen since pyExpr consumed it
					t.hit("py.err.assign")
					return false
				}
				t.hit("py.stmt.assign." + op)
				skipPySpaces(c)
				return pyExpr(c)
			}
		}
		c.i = save
		t.hit("py.stmt.expr")
		return true
	}
}

func pyParamList(c *cursor) bool {
	t := c.t
	skipPySpaces(c)
	if c.eat(')') {
		t.hit("py.def.noparams")
		return true
	}
	for {
		skipPySpaces(c)
		if !pyName(c) {
			t.hit("py.err.param")
			return false
		}
		t.hit("py.def.param")
		skipPySpaces(c)
		if c.eat(',') {
			continue
		}
		if c.eat(')') {
			return true
		}
		t.hit("py.err.param-list")
		return false
	}
}

// --- expressions ---

func pyExpr(c *cursor) bool { return pyOr(c) }

func pyOr(c *cursor) bool {
	if !pyAnd(c) {
		return false
	}
	for {
		save := c.i
		skipPySpaces(c)
		if matchWord(c, "or") {
			c.t.hit("py.expr.or")
			skipPySpaces(c)
			if !pyAnd(c) {
				return false
			}
			continue
		}
		c.i = save
		return true
	}
}

func pyAnd(c *cursor) bool {
	if !pyNot(c) {
		return false
	}
	for {
		save := c.i
		skipPySpaces(c)
		if matchWord(c, "and") {
			c.t.hit("py.expr.and")
			skipPySpaces(c)
			if !pyNot(c) {
				return false
			}
			continue
		}
		c.i = save
		return true
	}
}

func pyNot(c *cursor) bool {
	skipPySpaces(c)
	if matchWord(c, "not") {
		c.t.hit("py.expr.not")
		return pyNot(c)
	}
	return pyCompare(c)
}

func pyCompare(c *cursor) bool {
	if !pyArith(c) {
		return false
	}
	save := c.i
	skipPySpaces(c)
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if c.lit(op) {
			c.t.hit("py.expr.cmp." + op)
			skipPySpaces(c)
			return pyArith(c)
		}
	}
	c.i = save
	return true
}

func pyArith(c *cursor) bool {
	if !pyTerm(c) {
		return false
	}
	for {
		save := c.i
		skipPySpaces(c)
		if c.peek() == '+' && c.peekAt(1) != '=' {
			c.i++
			c.t.hit("py.expr.add")
		} else if c.peek() == '-' && c.peekAt(1) != '=' {
			c.i++
			c.t.hit("py.expr.sub")
		} else {
			c.i = save
			return true
		}
		skipPySpaces(c)
		if !pyTerm(c) {
			return false
		}
	}
}

func pyTerm(c *cursor) bool {
	if !pyUnary(c) {
		return false
	}
	for {
		save := c.i
		skipPySpaces(c)
		switch {
		case c.lit("**"):
			c.t.hit("py.expr.pow")
		case c.peek() == '*' && c.peekAt(1) != '=':
			c.i++
			c.t.hit("py.expr.mul")
		case c.peek() == '/' && c.peekAt(1) != '=':
			c.i++
			c.t.hit("py.expr.div")
		case c.peek() == '%':
			c.i++
			c.t.hit("py.expr.mod")
		default:
			c.i = save
			return true
		}
		skipPySpaces(c)
		if !pyUnary(c) {
			return false
		}
	}
}

func pyUnary(c *cursor) bool {
	skipPySpaces(c)
	if c.peek() == '-' && c.peekAt(1) != '=' {
		c.i++
		c.t.hit("py.expr.neg")
		return pyUnary(c)
	}
	return pyPostfix(c)
}

// pyPostfix parses an atom followed by call/attribute/subscript suffixes.
func pyPostfix(c *cursor) bool {
	t := c.t
	if !pyAtom(c) {
		return false
	}
	for {
		switch {
		case c.peek() == '(':
			c.i++
			t.hit("py.expr.call")
			if !pyExprList(c, ')') {
				return false
			}
		case c.peek() == '.':
			c.i++
			t.hit("py.expr.attr")
			if !pyName(c) {
				t.hit("py.err.attr-name")
				return false
			}
		case c.peek() == '[':
			c.i++
			t.hit("py.expr.subscript")
			skipPySpaces(c)
			if !pyExpr(c) {
				return false
			}
			skipPySpaces(c)
			if !c.eat(']') {
				t.hit("py.err.subscript-close")
				return false
			}
		default:
			return true
		}
	}
}

// pyExprList parses comma-separated expressions up to the closer.
func pyExprList(c *cursor, close byte) bool {
	t := c.t
	skipPySpaces(c)
	if c.eat(close) {
		t.hit("py.expr.empty-list")
		return true
	}
	items := 0
	for {
		if !pyExpr(c) {
			return false
		}
		items++
		skipPySpaces(c)
		if c.eat(',') {
			skipPySpaces(c)
			if c.eat(close) { // trailing comma
				t.hit("py.expr.trailing-comma")
				return true
			}
			continue
		}
		if c.eat(close) {
			t.bucket("py.list.items", items)
			return true
		}
		t.hit("py.err.list-close")
		return false
	}
}

func pyAtom(c *cursor) bool {
	t := c.t
	skipPySpaces(c)
	b := c.peek()
	switch {
	case c.eof():
		t.hit("py.err.missing-expr")
		return false
	case isDigit(b):
		c.skip(isDigit)
		if c.eat('.') {
			c.skip(isDigit)
			t.hit("py.atom.float")
		} else {
			t.hit("py.atom.int")
		}
		return true
	case b == '\'' || b == '"':
		c.i++
		for !c.eof() && c.peek() != b {
			if c.peek() == '\\' {
				c.i++
				if c.eof() {
					t.hit("py.err.string-escape")
					return false
				}
			}
			c.i++
		}
		if !c.eat(b) {
			t.hit("py.err.string-open")
			return false
		}
		t.hit("py.atom.string")
		return true
	case b == '(':
		c.i++
		t.hit("py.atom.paren")
		skipPySpaces(c)
		if c.eat(')') {
			t.hit("py.atom.unit")
			return true
		}
		return pyExprList(c, ')')
	case b == '[':
		c.i++
		t.hit("py.atom.list")
		return pyExprList(c, ']')
	case b == '{':
		c.i++
		t.hit("py.atom.dict")
		skipPySpaces(c)
		if c.eat('}') {
			return true
		}
		for {
			if !pyExpr(c) {
				return false
			}
			skipPySpaces(c)
			if !c.eat(':') {
				t.hit("py.err.dict-colon")
				return false
			}
			skipPySpaces(c)
			if !pyExpr(c) {
				return false
			}
			skipPySpaces(c)
			if c.eat(',') {
				skipPySpaces(c)
				continue
			}
			if c.eat('}') {
				return true
			}
			t.hit("py.err.dict-close")
			return false
		}
	case matchWord(c, "True") || matchWord(c, "False") || matchWord(c, "None"):
		t.hit("py.atom.const")
		return true
	case isLetter(b):
		pyName(c)
		t.hit("py.atom.name")
		return true
	default:
		t.hit("py.err.atom")
		return false
	}
}

func pyName(c *cursor) bool {
	if !isLetter(c.peek()) {
		return false
	}
	c.skip(isAlnum)
	return true
}

func skipPySpaces(c *cursor) { c.skip(isSpace) }

// matchWord consumes the keyword only when not followed by an identifier
// character.
func matchWord(c *cursor, w string) bool {
	if len(c.s)-c.i < len(w) || c.s[c.i:c.i+len(w)] != w {
		return false
	}
	if c.i+len(w) < len(c.s) && isAlnum(c.s[c.i+len(w)]) {
		return false
	}
	c.i += len(w)
	return true
}

func hasPrefixWord(s, w string) bool {
	if len(s) < len(w) || s[:len(w)] != w {
		return false
	}
	return len(s) == len(w) || !isAlnum(s[len(w)])
}

func isElseLine(s string) bool {
	if !hasPrefixWord(s, "else") {
		return false
	}
	for i := len("else"); i < len(s); i++ {
		if s[i] == ':' {
			return true
		}
		if s[i] != ' ' {
			return false
		}
	}
	return false
}
