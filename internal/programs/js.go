package programs

// JavaScript returns a simulated SpiderMonkey front-end: a parser for a
// miniature of JavaScript's statement syntax — var/let/const declarations,
// function declarations and expressions, if/else, while, for, return,
// blocks, and a C-style expression grammar with ternaries, member access,
// calls, and object/array literals.
func JavaScript() Program {
	return &base{
		name: "javascript",
		reg:  newRegistry(),
		seeds: []string{
			"var x = 1 + 2;\nconsole.log(x);",
			"function add(a, b) { return a + b; }\nvar r = add(1, 2);",
			"if (x === 1) { y = [1, 2]; } else { y = {k: 1, m: \"s\"}; }",
			"for (i = 0; i < 10; i = i + 1) { total = total + i; }\nwhile (x > 0) { x = x - 1; }",
		},
		parse: jsParse,
	}
}

func jsParse(t *tracer, input string) bool {
	t.hit("js.enter")
	c := &cursor{s: input, t: t}
	for {
		jsWS(c)
		if c.eof() {
			t.hit("js.accept")
			return true
		}
		if !jsStatement(c) {
			return false
		}
	}
}

// jsWS consumes whitespace and // and /* */ comments.
func jsWS(c *cursor) {
	for {
		if c.skip(func(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }) > 0 {
			continue
		}
		if c.peek() == '/' && c.peekAt(1) == '/' {
			c.t.hit("js.comment.line")
			c.skip(func(b byte) bool { return b != '\n' })
			continue
		}
		if c.peek() == '/' && c.peekAt(1) == '*' {
			c.t.hit("js.comment.block")
			c.i += 2
			for !c.eof() && !(c.peek() == '*' && c.peekAt(1) == '/') {
				c.i++
			}
			c.lit("*/")
			continue
		}
		return
	}
}

func jsStatement(c *cursor) bool {
	t := c.t
	jsWS(c)
	switch {
	case c.peek() == '{':
		return jsBlock(c)
	case c.eat(';'):
		t.hit("js.stmt.empty")
		return true
	case matchWord(c, "var"), matchWord(c, "let"), matchWord(c, "const"):
		t.hit("js.stmt.decl")
		for {
			jsWS(c)
			if !jsName(c) {
				t.hit("js.err.decl-name")
				return false
			}
			jsWS(c)
			if c.peek() == '=' && c.peekAt(1) != '=' {
				c.i++
				t.hit("js.decl.init")
				jsWS(c)
				if !jsAssignExpr(c) {
					return false
				}
				jsWS(c)
			}
			if c.eat(',') {
				t.hit("js.decl.multi")
				continue
			}
			break
		}
		return jsSemi(c)
	case matchWord(c, "function"):
		t.hit("js.stmt.function")
		jsWS(c)
		if !jsName(c) {
			t.hit("js.err.function-name")
			return false
		}
		return jsFunctionRest(c)
	case matchWord(c, "if"):
		t.hit("js.stmt.if")
		if !jsParenExpr(c) {
			return false
		}
		if !jsStatement(c) {
			return false
		}
		save := c.i
		jsWS(c)
		if matchWord(c, "else") {
			t.hit("js.stmt.else")
			return jsStatement(c)
		}
		c.i = save
		return true
	case matchWord(c, "while"):
		t.hit("js.stmt.while")
		if !jsParenExpr(c) {
			return false
		}
		return jsStatement(c)
	case matchWord(c, "for"):
		t.hit("js.stmt.for")
		jsWS(c)
		if !c.eat('(') {
			t.hit("js.err.for-paren")
			return false
		}
		// init ; cond ; update — each part optional.
		jsWS(c)
		if c.peek() != ';' {
			if matchWord(c, "var") || matchWord(c, "let") {
				t.hit("js.for.decl")
				jsWS(c)
				if !jsName(c) {
					t.hit("js.err.for-name")
					return false
				}
				jsWS(c)
				if c.eat('=') {
					jsWS(c)
					if !jsAssignExpr(c) {
						return false
					}
				}
			} else if !jsExpr(c) {
				return false
			}
		}
		jsWS(c)
		if !c.eat(';') {
			t.hit("js.err.for-semi1")
			return false
		}
		jsWS(c)
		if c.peek() != ';' {
			if !jsExpr(c) {
				return false
			}
		}
		jsWS(c)
		if !c.eat(';') {
			t.hit("js.err.for-semi2")
			return false
		}
		jsWS(c)
		if c.peek() != ')' {
			if !jsExpr(c) {
				return false
			}
		}
		jsWS(c)
		if !c.eat(')') {
			t.hit("js.err.for-close")
			return false
		}
		return jsStatement(c)
	case matchWord(c, "return"):
		t.hit("js.stmt.return")
		jsWS(c)
		if c.peek() != ';' && c.peek() != '}' && !c.eof() {
			if !jsExpr(c) {
				return false
			}
		}
		return jsSemi(c)
	case matchWord(c, "break"):
		t.hit("js.stmt.break")
		return jsSemi(c)
	case matchWord(c, "continue"):
		t.hit("js.stmt.continue")
		return jsSemi(c)
	default:
		t.hit("js.stmt.expr")
		if !jsExpr(c) {
			return false
		}
		return jsSemi(c)
	}
}

// jsSemi requires the statement terminator ';' (or a closing brace / end of
// input, a simplified automatic-semicolon rule).
func jsSemi(c *cursor) bool {
	t := c.t
	jsWS(c)
	if c.eat(';') {
		t.hit("js.semi")
		return true
	}
	if c.peek() == '}' || c.eof() {
		t.hit("js.semi.auto")
		return true
	}
	t.hit("js.err.semi")
	return false
}

func jsBlock(c *cursor) bool {
	t := c.t
	if !c.eat('{') {
		t.hit("js.err.block-open")
		return false
	}
	t.hit("js.block.open")
	c.depth++
	t.bucket("js.depth", c.depth)
	defer func() { c.depth-- }()
	stmts := 0
	for {
		jsWS(c)
		if c.eat('}') {
			t.hit("js.block.close")
			t.bucket("js.block.stmts", stmts)
			return true
		}
		if c.eof() {
			t.hit("js.err.block-unclosed")
			return false
		}
		if !jsStatement(c) {
			return false
		}
		stmts++
	}
}

func jsParenExpr(c *cursor) bool {
	t := c.t
	jsWS(c)
	if !c.eat('(') {
		t.hit("js.err.cond-open")
		return false
	}
	if !jsExpr(c) {
		return false
	}
	jsWS(c)
	if !c.eat(')') {
		t.hit("js.err.cond-close")
		return false
	}
	return true
}

// jsFunctionRest parses (params) { body } after the function keyword/name.
func jsFunctionRest(c *cursor) bool {
	t := c.t
	jsWS(c)
	if !c.eat('(') {
		t.hit("js.err.fn-paren")
		return false
	}
	jsWS(c)
	if !c.eat(')') {
		for {
			jsWS(c)
			if !jsName(c) {
				t.hit("js.err.fn-param")
				return false
			}
			t.hit("js.fn.param")
			jsWS(c)
			if c.eat(',') {
				continue
			}
			if c.eat(')') {
				break
			}
			t.hit("js.err.fn-params")
			return false
		}
	}
	jsWS(c)
	return jsBlock(c)
}

// --- expressions ---

// jsExpr parses a comma-free expression (assignment level).
func jsExpr(c *cursor) bool { return jsAssignExpr(c) }

func jsAssignExpr(c *cursor) bool {
	if !jsTernary(c) {
		return false
	}
	save := c.i
	jsWS(c)
	if c.peek() == '=' && c.peekAt(1) != '=' {
		c.i++
		c.t.hit("js.expr.assign")
		jsWS(c)
		return jsAssignExpr(c)
	}
	for _, op := range []string{"+=", "-=", "*=", "/="} {
		if c.lit(op) {
			c.t.hit("js.expr.assign-op")
			jsWS(c)
			return jsAssignExpr(c)
		}
	}
	c.i = save
	return true
}

func jsTernary(c *cursor) bool {
	if !jsOr(c) {
		return false
	}
	save := c.i
	jsWS(c)
	if c.eat('?') {
		c.t.hit("js.expr.ternary")
		if !jsAssignExpr(c) {
			return false
		}
		jsWS(c)
		if !c.eat(':') {
			c.t.hit("js.err.ternary-colon")
			return false
		}
		return jsAssignExpr(c)
	}
	c.i = save
	return true
}

func jsOr(c *cursor) bool {
	if !jsAnd(c) {
		return false
	}
	for {
		save := c.i
		jsWS(c)
		if c.lit("||") {
			c.t.hit("js.expr.or")
			if !jsAnd(c) {
				return false
			}
			continue
		}
		c.i = save
		return true
	}
}

func jsAnd(c *cursor) bool {
	if !jsEquality(c) {
		return false
	}
	for {
		save := c.i
		jsWS(c)
		if c.lit("&&") {
			c.t.hit("js.expr.and")
			if !jsEquality(c) {
				return false
			}
			continue
		}
		c.i = save
		return true
	}
}

func jsEquality(c *cursor) bool {
	if !jsRelational(c) {
		return false
	}
	for {
		save := c.i
		jsWS(c)
		matched := false
		for _, op := range []string{"===", "!==", "==", "!="} {
			if c.lit(op) {
				c.t.hit("js.expr.eq." + op)
				matched = true
				break
			}
		}
		if !matched {
			c.i = save
			return true
		}
		if !jsRelational(c) {
			return false
		}
	}
}

func jsRelational(c *cursor) bool {
	if !jsAdditive(c) {
		return false
	}
	for {
		save := c.i
		jsWS(c)
		matched := false
		for _, op := range []string{"<=", ">=", "<", ">"} {
			if c.lit(op) {
				c.t.hit("js.expr.rel")
				matched = true
				break
			}
		}
		if !matched {
			c.i = save
			return true
		}
		if !jsAdditive(c) {
			return false
		}
	}
}

func jsAdditive(c *cursor) bool {
	if !jsMultiplicative(c) {
		return false
	}
	for {
		save := c.i
		jsWS(c)
		if c.peek() == '+' && c.peekAt(1) != '=' && c.peekAt(1) != '+' {
			c.i++
			c.t.hit("js.expr.add")
		} else if c.peek() == '-' && c.peekAt(1) != '=' && c.peekAt(1) != '-' {
			c.i++
			c.t.hit("js.expr.sub")
		} else {
			c.i = save
			return true
		}
		if !jsMultiplicative(c) {
			return false
		}
	}
}

func jsMultiplicative(c *cursor) bool {
	if !jsUnary(c) {
		return false
	}
	for {
		save := c.i
		jsWS(c)
		if c.peek() == '*' && c.peekAt(1) != '=' {
			c.i++
			c.t.hit("js.expr.mul")
		} else if c.peek() == '/' && c.peekAt(1) != '=' && c.peekAt(1) != '/' && c.peekAt(1) != '*' {
			c.i++
			c.t.hit("js.expr.div")
		} else if c.peek() == '%' {
			c.i++
			c.t.hit("js.expr.mod")
		} else {
			c.i = save
			return true
		}
		if !jsUnary(c) {
			return false
		}
	}
}

func jsUnary(c *cursor) bool {
	jsWS(c)
	switch {
	case c.peek() == '!' && c.peekAt(1) != '=':
		c.i++
		c.t.hit("js.expr.not")
		return jsUnary(c)
	case c.peek() == '-' && c.peekAt(1) != '=':
		c.i++
		c.t.hit("js.expr.neg")
		return jsUnary(c)
	case matchWord(c, "typeof"):
		c.t.hit("js.expr.typeof")
		return jsUnary(c)
	case matchWord(c, "new"):
		c.t.hit("js.expr.new")
		return jsUnary(c)
	}
	return jsPostfix(c)
}

func jsPostfix(c *cursor) bool {
	t := c.t
	if !jsAtom(c) {
		return false
	}
	for {
		switch {
		case c.peek() == '.':
			c.i++
			t.hit("js.expr.member")
			if !jsName(c) {
				t.hit("js.err.member-name")
				return false
			}
		case c.peek() == '(':
			c.i++
			t.hit("js.expr.call")
			jsWS(c)
			if c.eat(')') {
				t.bucket("js.call.args", 0)
				continue
			}
			args := 0
			for {
				if !jsAssignExpr(c) {
					return false
				}
				args++
				jsWS(c)
				if c.eat(',') {
					jsWS(c)
					continue
				}
				if c.eat(')') {
					t.bucket("js.call.args", args)
					break
				}
				t.hit("js.err.call-close")
				return false
			}
		case c.peek() == '[':
			c.i++
			t.hit("js.expr.index")
			if !jsExpr(c) {
				return false
			}
			jsWS(c)
			if !c.eat(']') {
				t.hit("js.err.index-close")
				return false
			}
		case c.lit("++"):
			t.hit("js.expr.incr")
		case c.lit("--"):
			t.hit("js.expr.decr")
		default:
			return true
		}
	}
}

func jsAtom(c *cursor) bool {
	t := c.t
	jsWS(c)
	b := c.peek()
	switch {
	case c.eof():
		t.hit("js.err.missing-expr")
		return false
	case isDigit(b):
		c.skip(isDigit)
		if c.eat('.') {
			c.skip(isDigit)
			t.hit("js.atom.float")
		} else {
			t.hit("js.atom.int")
		}
		return true
	case b == '"' || b == '\'':
		c.i++
		for !c.eof() && c.peek() != b && c.peek() != '\n' {
			if c.peek() == '\\' {
				c.i++
				if c.eof() {
					t.hit("js.err.string-escape")
					return false
				}
			}
			c.i++
		}
		if !c.eat(b) {
			t.hit("js.err.string-open")
			return false
		}
		t.hit("js.atom.string")
		return true
	case b == '(':
		c.i++
		t.hit("js.atom.paren")
		if !jsExpr(c) {
			return false
		}
		jsWS(c)
		if !c.eat(')') {
			t.hit("js.err.paren-close")
			return false
		}
		return true
	case b == '[':
		c.i++
		t.hit("js.atom.array")
		jsWS(c)
		if c.eat(']') {
			return true
		}
		for {
			if !jsAssignExpr(c) {
				return false
			}
			jsWS(c)
			if c.eat(',') {
				jsWS(c)
				continue
			}
			if c.eat(']') {
				return true
			}
			t.hit("js.err.array-close")
			return false
		}
	case b == '{':
		c.i++
		t.hit("js.atom.object")
		jsWS(c)
		if c.eat('}') {
			return true
		}
		for {
			jsWS(c)
			if !jsPropertyName(c) {
				t.hit("js.err.prop-name")
				return false
			}
			jsWS(c)
			if !c.eat(':') {
				t.hit("js.err.prop-colon")
				return false
			}
			if !jsAssignExpr(c) {
				return false
			}
			jsWS(c)
			if c.eat(',') {
				continue
			}
			if c.eat('}') {
				return true
			}
			t.hit("js.err.object-close")
			return false
		}
	case matchWord(c, "function"):
		t.hit("js.atom.function-expr")
		jsWS(c)
		jsName(c) // optional name
		return jsFunctionRest(c)
	case matchWord(c, "true") || matchWord(c, "false") || matchWord(c, "null") || matchWord(c, "undefined") || matchWord(c, "this"):
		t.hit("js.atom.const")
		return true
	case isLetter(b):
		jsName(c)
		t.hit("js.atom.name")
		return true
	default:
		t.hit("js.err.atom")
		return false
	}
}

func jsPropertyName(c *cursor) bool {
	if isLetter(c.peek()) {
		c.skip(isAlnum)
		return true
	}
	if isDigit(c.peek()) {
		c.skip(isDigit)
		return true
	}
	if c.peek() == '"' || c.peek() == '\'' {
		q := c.peek()
		c.i++
		c.skip(func(b byte) bool { return b != q && b != '\n' })
		return c.eat(q)
	}
	return false
}

func jsName(c *cursor) bool {
	if !isLetter(c.peek()) {
		return false
	}
	c.skip(isAlnum)
	return true
}
