package programs

// XML returns a simulated XML parser in the spirit of libxml: arbitrary tag
// names with matching end tags (checked with a stack — a context-sensitive
// property), attributes with single or double quotes and no duplicate names
// per element (the paper's §8.3 example of behaviour GLADE must learn to
// avoid), entity references, comments, CDATA sections, processing
// instructions, and an optional XML prolog.
func XML() Program {
	return &base{
		name: "xml",
		reg:  newRegistry(),
		seeds: []string{
			"<a>hi</a>",
			`<?xml version="1.0"?><doc id="1"><item k='v'>x &amp; y</item><!-- c --></doc>`,
			"<r><![CDATA[raw]]><p a=\"b\">t</p></r>",
		},
		parse: xmlProgParse,
	}
}

func xmlProgParse(t *tracer, input string) bool {
	c := &cursor{s: input, t: t}
	t.hit("xml.enter")
	// Optional prolog.
	if c.lit("<?xml") {
		t.hit("xml.prolog")
		for !c.eof() && !(c.peek() == '?' && c.peekAt(1) == '>') {
			c.i++
		}
		if !c.lit("?>") {
			t.hit("xml.err.prolog-open")
			return false
		}
	}
	xmlSkipMisc(c)
	// Exactly one root element.
	name, ok := xmlElement(c, 0)
	if !ok {
		return false
	}
	_ = name
	xmlSkipMisc(c)
	if !c.eof() {
		t.hit("xml.err.trailing")
		return false
	}
	t.hit("xml.accept")
	return true
}

// xmlSkipMisc consumes whitespace, comments, and PIs between top-level
// constructs.
func xmlSkipMisc(c *cursor) {
	for {
		if c.skip(func(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }) > 0 {
			continue
		}
		if c.peek() == '<' && c.peekAt(1) == '!' && c.peekAt(2) == '-' {
			if !xmlComment(c) {
				return
			}
			continue
		}
		return
	}
}

// xmlElement parses one element and returns its tag name.
func xmlElement(c *cursor, depth int) (string, bool) {
	t := c.t
	t.bucket("xml.depth", depth)
	if !c.eat('<') {
		t.hit("xml.err.no-element")
		return "", false
	}
	start := c.i
	if c.skip(isXMLNameChar) == 0 {
		t.hit("xml.err.tag-name")
		return "", false
	}
	name := c.s[start:c.i]
	t.hit("xml.elem.open")
	seen := map[string]bool{}
	for {
		sp := c.skip(func(b byte) bool { return b == ' ' || b == '\t' || b == '\n' })
		switch {
		case c.lit("/>"):
			t.hit("xml.elem.selfclose")
			t.bucket("xml.attrs", len(seen))
			return name, true
		case c.eat('>'):
			t.hit("xml.elem.openclose")
			t.bucket("xml.attrs", len(seen))
			if !xmlContent(c, name, depth) {
				return "", false
			}
			return name, true
		case c.eof():
			t.hit("xml.err.tag-unterminated")
			return "", false
		default:
			if sp == 0 {
				t.hit("xml.err.attr-space")
				return "", false
			}
			attr, ok := xmlAttr(c)
			if !ok {
				return "", false
			}
			if seen[attr] {
				// Duplicate attribute names are a well-formedness error —
				// the constraint the paper highlights as non-context-free.
				t.hit("xml.err.attr-duplicate")
				return "", false
			}
			seen[attr] = true
		}
	}
}

// xmlAttr parses name = "value" (single or double quoted), returning the
// attribute name.
func xmlAttr(c *cursor) (string, bool) {
	t := c.t
	start := c.i
	if c.skip(isXMLNameChar) == 0 {
		t.hit("xml.err.attr-name")
		return "", false
	}
	name := c.s[start:c.i]
	c.skip(isSpace)
	if !c.eat('=') {
		t.hit("xml.err.attr-eq")
		return "", false
	}
	c.skip(isSpace)
	quote := c.peek()
	if quote != '"' && quote != '\'' {
		t.hit("xml.err.attr-quote")
		return "", false
	}
	if quote == '\'' {
		t.hit("xml.attr.single-quote")
	} else {
		t.hit("xml.attr.double-quote")
	}
	c.i++
	for !c.eof() && c.peek() != quote {
		if c.peek() == '<' {
			t.hit("xml.err.attr-lt")
			return "", false
		}
		if c.peek() == '&' {
			if !xmlEntity(c) {
				return "", false
			}
			continue
		}
		c.i++
	}
	if !c.eat(quote) {
		t.hit("xml.err.attr-unterminated")
		return "", false
	}
	t.hit("xml.attr.ok")
	return name, true
}

// xmlContent parses element content up to the matching </name>.
func xmlContent(c *cursor, name string, depth int) bool {
	t := c.t
	children := 0
	text := 0
	for {
		if c.eof() {
			t.hit("xml.err.missing-close")
			return false
		}
		b := c.peek()
		switch {
		case b == '<' && c.peekAt(1) == '/':
			c.i += 2
			start := c.i
			if c.skip(isXMLNameChar) == 0 {
				t.hit("xml.err.close-name")
				return false
			}
			got := c.s[start:c.i]
			c.skip(isSpace)
			if !c.eat('>') {
				t.hit("xml.err.close-gt")
				return false
			}
			if got != name {
				t.hit("xml.err.tag-mismatch")
				return false
			}
			t.hit("xml.elem.close")
			t.bucket("xml.children", children)
			t.bucket("xml.textlen", text)
			return true
		case c.peek() == '<' && c.peekAt(1) == '!' && c.peekAt(2) == '-':
			if !xmlComment(c) {
				return false
			}
		case c.lit("<![CDATA["):
			t.hit("xml.cdata.open")
			for !c.eof() && !(c.peek() == ']' && c.peekAt(1) == ']' && c.peekAt(2) == '>') {
				c.i++
			}
			if !c.lit("]]>") {
				t.hit("xml.err.cdata-open")
				return false
			}
			t.hit("xml.cdata.close")
		case b == '<' && c.peekAt(1) == '?':
			c.i += 2
			t.hit("xml.pi.open")
			if c.skip(isXMLNameChar) == 0 {
				t.hit("xml.err.pi-target")
				return false
			}
			for !c.eof() && !(c.peek() == '?' && c.peekAt(1) == '>') {
				c.i++
			}
			if !c.lit("?>") {
				t.hit("xml.err.pi-open")
				return false
			}
			t.hit("xml.pi.close")
		case b == '<':
			if _, ok := xmlElement(c, depth+1); !ok {
				return false
			}
			children++
			t.hit("xml.content.child")
		case b == '&':
			if !xmlEntity(c) {
				return false
			}
		case b == '>':
			t.hit("xml.err.raw-gt") // strict: bare '>' in content rejected
			return false
		default:
			c.i++
			text++
			t.hit("xml.content.text")
		}
	}
}

// xmlComment parses <!-- ... --> rejecting inner "--".
func xmlComment(c *cursor) bool {
	t := c.t
	if !c.lit("<!--") {
		t.hit("xml.err.comment-start")
		return false
	}
	t.hit("xml.comment.open")
	for !c.eof() {
		if c.peek() == '-' && c.peekAt(1) == '-' {
			if c.peekAt(2) == '>' {
				c.i += 3
				t.hit("xml.comment.close")
				return true
			}
			t.hit("xml.err.comment-dashes")
			return false
		}
		c.i++
	}
	t.hit("xml.err.comment-open")
	return false
}

// xmlEntity parses &name; or &#digits;.
func xmlEntity(c *cursor) bool {
	t := c.t
	c.i++ // '&'
	if c.eat('#') {
		if c.skip(isDigit) == 0 {
			t.hit("xml.err.entity-number")
			return false
		}
		if !c.eat(';') {
			t.hit("xml.err.entity-semi")
			return false
		}
		t.hit("xml.entity.numeric")
		return true
	}
	start := c.i
	if c.skip(isLower) == 0 {
		t.hit("xml.err.entity-name")
		return false
	}
	name := c.s[start:c.i]
	if !c.eat(';') {
		t.hit("xml.err.entity-semi")
		return false
	}
	switch name {
	case "amp", "lt", "gt", "quot", "apos":
		t.hit("xml.entity.named")
		return true
	default:
		t.hit("xml.err.entity-unknown")
		return false
	}
}

func isXMLNameChar(b byte) bool {
	return isAlnum(b) || b == '-' || b == '.' || b == ':'
}
