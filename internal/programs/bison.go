package programs

// Bison returns a simulated bison/yacc front-end: it parses grammar files —
// %token/%left/%right/%nonassoc/%start/%type declarations, %{ prologue %},
// a %% rules section with alternatives, actions, and precedence modifiers,
// and an optional epilogue.
func Bison() Program {
	return &base{
		name: "bison",
		reg:  newRegistry(),
		seeds: []string{
			"%token NUM\n%%\nexpr : NUM | expr '+' NUM ;\n%%\n",
			"%token ID\n%left '+' '-'\n%start prog\n%%\nprog : stmt ;\nstmt : ID '=' expr { assign(); } ;\nexpr : ID | expr '+' ID ;\n",
			"%{\nint x;\n%}\n%token A B\n%%\ns : A s B | ;\n",
		},
		parse: bisonParse,
	}
}

func bisonParse(t *tracer, input string) bool {
	c := &cursor{s: input, t: t}
	t.hit("bison.enter")
	if !bisonDeclarations(c) {
		return false
	}
	if !c.lit("%%") {
		t.hit("bison.err.no-rules-marker")
		return false
	}
	t.hit("bison.rules-marker")
	if !bisonRules(c) {
		return false
	}
	if c.lit("%%") {
		t.hit("bison.epilogue")
		c.i = len(c.s)
	}
	bisonWS(c)
	if !c.eof() {
		t.hit("bison.err.trailing")
		return false
	}
	t.hit("bison.accept")
	return true
}

func bisonWS(c *cursor) {
	for {
		if c.skip(func(b byte) bool { return b == ' ' || b == '\t' || b == '\n' }) > 0 {
			continue
		}
		// C-style comments are allowed anywhere whitespace is.
		if c.peek() == '/' && c.peekAt(1) == '*' {
			c.t.hit("bison.comment")
			c.i += 2
			for !c.eof() && !(c.peek() == '*' && c.peekAt(1) == '/') {
				c.i++
			}
			if !c.eof() {
				c.i += 2
			}
			continue
		}
		if c.peek() == '/' && c.peekAt(1) == '/' {
			c.t.hit("bison.line-comment")
			c.skip(func(b byte) bool { return b != '\n' })
			continue
		}
		return
	}
}

// bisonDeclarations parses the section before %%.
func bisonDeclarations(c *cursor) bool {
	t := c.t
	for {
		bisonWS(c)
		if c.eof() {
			t.hit("bison.err.no-sections")
			return false
		}
		if c.peek() == '%' && c.peekAt(1) == '%' {
			return true
		}
		switch {
		case c.lit("%{"):
			t.hit("bison.decl.prologue")
			for !c.eof() && !(c.peek() == '%' && c.peekAt(1) == '}') {
				c.i++
			}
			if !c.lit("%}") {
				t.hit("bison.err.prologue-open")
				return false
			}
		case c.lit("%token"):
			t.hit("bison.decl.token")
			if !bisonSymbolList(c) {
				return false
			}
		case c.lit("%left"):
			t.hit("bison.decl.left")
			if !bisonSymbolList(c) {
				return false
			}
		case c.lit("%right"):
			t.hit("bison.decl.right")
			if !bisonSymbolList(c) {
				return false
			}
		case c.lit("%nonassoc"):
			t.hit("bison.decl.nonassoc")
			if !bisonSymbolList(c) {
				return false
			}
		case c.lit("%start"):
			t.hit("bison.decl.start")
			bisonWS(c)
			if !bisonIdent(c) {
				t.hit("bison.err.start-name")
				return false
			}
		case c.lit("%type"):
			t.hit("bison.decl.type")
			bisonWS(c)
			if c.eat('<') {
				if c.skip(isAlnum) == 0 || !c.eat('>') {
					t.hit("bison.err.type-tag")
					return false
				}
				t.hit("bison.decl.type-tag")
			}
			if !bisonSymbolList(c) {
				return false
			}
		default:
			t.hit("bison.err.decl")
			return false
		}
	}
}

// bisonSymbolList parses one or more symbols (identifiers or char tokens).
func bisonSymbolList(c *cursor) bool {
	t := c.t
	n := 0
	for {
		bisonWS(c)
		switch {
		case bisonIdent(c):
			t.hit("bison.sym.ident")
			n++
		case bisonCharToken(c):
			t.hit("bison.sym.char")
			n++
		default:
			if n == 0 {
				t.hit("bison.err.symbol-list")
				return false
			}
			return true
		}
	}
}

func bisonIdent(c *cursor) bool {
	if !isLetter(c.peek()) {
		return false
	}
	c.skip(isAlnum)
	return true
}

// bisonCharToken parses 'x' (with \ escapes).
func bisonCharToken(c *cursor) bool {
	if c.peek() != '\'' {
		return false
	}
	c.i++
	if c.peek() == '\\' {
		c.i++
	}
	if c.eof() || c.peek() == '\n' {
		return false
	}
	c.i++
	return c.eat('\'')
}

// bisonRules parses rule : alternatives ;.
func bisonRules(c *cursor) bool {
	t := c.t
	sawRule := false
	rules := 0
	for {
		bisonWS(c)
		if c.eof() || (c.peek() == '%' && c.peekAt(1) == '%') {
			if !sawRule {
				t.hit("bison.err.no-rules")
				return false
			}
			t.bucket("bison.rules", rules)
			return true
		}
		if !bisonIdent(c) {
			t.hit("bison.err.rule-name")
			return false
		}
		t.hit("bison.rule.name")
		bisonWS(c)
		if !c.eat(':') {
			t.hit("bison.err.rule-colon")
			return false
		}
		for {
			if !bisonAlternative(c) {
				return false
			}
			bisonWS(c)
			if c.eat('|') {
				t.hit("bison.rule.alt")
				continue
			}
			break
		}
		bisonWS(c)
		if !c.eat(';') {
			t.hit("bison.err.rule-semi")
			return false
		}
		t.hit("bison.rule.done")
		sawRule = true
		rules++
	}
}

// bisonAlternative parses one possibly-empty right-hand side with optional
// actions and %prec.
func bisonAlternative(c *cursor) bool {
	t := c.t
	syms := 0
	for {
		bisonWS(c)
		switch {
		case c.peek() == '|' || c.peek() == ';' || c.eof():
			t.hit("bison.alt.end")
			t.bucket("bison.alt.syms", syms)
			return true
		case c.peek() == '{':
			if !bisonAction(c) {
				return false
			}
		case c.lit("%prec"):
			t.hit("bison.alt.prec")
			bisonWS(c)
			if !bisonIdent(c) && !bisonCharToken(c) {
				t.hit("bison.err.prec-symbol")
				return false
			}
		case bisonIdent(c):
			t.hit("bison.alt.ident")
			syms++
		case bisonCharToken(c):
			t.hit("bison.alt.char")
			syms++
		case c.peek() == '\'':
			t.hit("bison.err.char-token")
			return false
		default:
			t.hit("bison.err.alt-symbol")
			return false
		}
	}
}

// bisonAction parses a brace-balanced action block, honoring strings and
// char literals inside.
func bisonAction(c *cursor) bool {
	t := c.t
	t.hit("bison.action.open")
	depth := 0
	for !c.eof() {
		switch c.peek() {
		case '{':
			depth++
			c.i++
		case '}':
			depth--
			c.i++
			if depth == 0 {
				t.hit("bison.action.close")
				return true
			}
		case '"':
			c.i++
			for !c.eof() && c.peek() != '"' {
				if c.peek() == '\\' {
					c.i++
				}
				if !c.eof() {
					c.i++
				}
			}
			if !c.eat('"') {
				t.hit("bison.err.action-string")
				return false
			}
			t.hit("bison.action.string")
		case '$':
			c.i++
			if c.eat('$') {
				t.hit("bison.action.dollar-dollar")
			} else if c.skip(isDigit) > 0 {
				t.hit("bison.action.dollar-n")
			}
		default:
			c.i++
		}
	}
	t.hit("bison.err.action-open")
	return false
}
