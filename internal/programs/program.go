// Package programs provides the eight simulated programs of the paper's
// fuzzing evaluation (§8.3): sed, flex, grep, bison, an XML parser, and
// miniature Python, Ruby, and JavaScript front-ends.
//
// The paper runs real binaries and measures gcov line coverage. Here each
// program is a hand-written recursive-descent parser for a structurally
// faithful miniature of the real input language, instrumented with explicit
// coverage points: every distinct construct, branch, and error path the
// parser can take records a point, playing the role of a source line. The
// algorithms under evaluation are blackbox, so only the accept/reject
// boundary and the coverage signal matter — both are preserved.
package programs

import (
	"sort"
	"sync"
)

// Result is the outcome of one program execution.
type Result struct {
	// OK reports whether the input was accepted (no parse error) — the
	// membership oracle signal.
	OK bool
	// Points lists the coverage points hit during the run, sorted.
	Points []int
}

// Program is one simulated program under test.
type Program interface {
	// Name identifies the program ("sed", "flex", ...).
	Name() string
	// Run parses input, returning validity and coverage.
	Run(input string) Result
	// Seeds returns the program's bundled seed inputs Ein (small examples
	// "from documentation", §8.3).
	Seeds() []string
	// NumPoints returns the number of distinct coverage points registered
	// so far across all runs (the denominator analogue; Figure 7's
	// normalized metric makes it cancel).
	NumPoints() int
}

// All returns the eight programs in the paper's Figure 6 order.
func All() []Program {
	return []Program{Sed(), Flex(), Grep(), Bison(), XML(), Ruby(), Python(), JavaScript()}
}

// ByName returns the named program, or nil.
func ByName(name string) Program {
	for _, p := range All() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}

// registry interns coverage-point labels to dense ids, shared by all runs
// of one program instance. Runs may execute concurrently (the parallel
// oracle fans program executions across workers), so the intern table is
// mutex-protected.
type registry struct {
	mu     sync.Mutex
	ids    map[string]int
	labels []string
}

func newRegistry() *registry { return &registry{ids: map[string]int{}} }

func (r *registry) id(label string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.ids[label]; ok {
		return id
	}
	id := len(r.labels)
	r.ids[label] = id
	r.labels = append(r.labels, label)
	return id
}

func (r *registry) numPoints() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.labels)
}

// tracer records coverage for a single run.
type tracer struct {
	reg *registry
	set map[int]bool
}

func newTracer(reg *registry) *tracer {
	return &tracer{reg: reg, set: map[int]bool{}}
}

// hit records coverage point label.
func (t *tracer) hit(label string) {
	t.set[t.reg.id(label)] = true
}

// bucket records a size/depth-dependent coverage point. Real parsers have
// code that only runs at particular scales — recursion-depth guards, buffer
// growth, table rehashing — which gcov reports as distinct lines; bucketed
// points simulate those. Buckets: 0, 1, 2, 3, 4+, 8+, 16+.
func (t *tracer) bucket(label string, n int) {
	var suffix string
	switch {
	case n <= 3:
		suffix = []string{"0", "1", "2", "3"}[n]
	case n < 8:
		suffix = "4+"
	case n < 16:
		suffix = "8+"
	default:
		suffix = "16+"
	}
	t.hit(label + "." + suffix)
}

func (t *tracer) points() []int {
	out := make([]int, 0, len(t.set))
	for id := range t.set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// base implements Program around a traced parse function.
type base struct {
	name  string
	reg   *registry
	seeds []string
	parse func(t *tracer, input string) bool
}

func (b *base) Name() string    { return b.name }
func (b *base) Seeds() []string { return append([]string(nil), b.seeds...) }
func (b *base) NumPoints() int  { return b.reg.numPoints() }

func (b *base) Run(input string) Result {
	t := newTracer(b.reg)
	ok := b.parse(t, input)
	return Result{OK: ok, Points: t.points()}
}

// cursor is a shared scanning helper for the hand-written parsers.
type cursor struct {
	s string
	i int
	t *tracer
	// depth tracks construct nesting for bucketed coverage points.
	depth int
}

func (c *cursor) eof() bool { return c.i >= len(c.s) }

func (c *cursor) peek() byte {
	if c.eof() {
		return 0
	}
	return c.s[c.i]
}

func (c *cursor) peekAt(off int) byte {
	if c.i+off >= len(c.s) {
		return 0
	}
	return c.s[c.i+off]
}

func (c *cursor) eat(b byte) bool {
	if !c.eof() && c.s[c.i] == b {
		c.i++
		return true
	}
	return false
}

func (c *cursor) lit(prefix string) bool {
	if len(c.s)-c.i >= len(prefix) && c.s[c.i:c.i+len(prefix)] == prefix {
		c.i += len(prefix)
		return true
	}
	return false
}

// skip consumes bytes while pred holds and returns how many were consumed.
func (c *cursor) skip(pred func(byte) bool) int {
	n := 0
	for !c.eof() && pred(c.s[c.i]) {
		c.i++
		n++
	}
	return n
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLower(c byte) bool  { return c >= 'a' && c <= 'z' }
func isUpper(c byte) bool  { return c >= 'A' && c <= 'Z' }
func isLetter(c byte) bool { return isLower(c) || isUpper(c) || c == '_' }
func isAlnum(c byte) bool  { return isLetter(c) || isDigit(c) }
func isSpace(c byte) bool  { return c == ' ' || c == '\t' }
