package programs

// Grep returns a simulated GNU grep: it validates basic regular expressions
// (BRE) — anchors, classes with ranges and named sets, escapes, groups,
// alternation, back-references, and interval repetition \{n,m\}.
func Grep() Program {
	return &base{
		name: "grep",
		reg:  newRegistry(),
		seeds: []string{
			"^abc.*xyz$",
			`\(foo\|bar\)\{1,3\}`,
			`[a-z0-9_]*[[:digit:]]`,
		},
		parse: grepRun,
	}
}

func grepRun(t *tracer, input string) bool {
	c := &cursor{s: input, t: t}
	t.hit("grep.enter")
	if !grepAlt(c, 0) {
		return false
	}
	if !c.eof() {
		t.hit("grep.err.trailing")
		return false
	}
	t.hit("grep.accept")
	return true
}

// grepAlt parses branch ("\|" branch)*.
func grepAlt(c *cursor, depth int) bool {
	t := c.t
	if !grepBranch(c, depth) {
		return false
	}
	for c.peek() == '\\' && c.peekAt(1) == '|' {
		c.i += 2
		t.hit("grep.alt")
		if !grepBranch(c, depth) {
			return false
		}
	}
	return true
}

// grepBranch parses a concatenation of pieces; it stops at "\|", "\)" or
// end of input.
func grepBranch(c *cursor, depth int) bool {
	t := c.t
	first := true
	pieces := 0
	defer func() { t.bucket("grep.pieces", pieces) }()
	for {
		b := c.peek()
		switch {
		case c.eof():
			return true
		case b == '\\' && (c.peekAt(1) == '|'):
			return true
		case b == '\\' && c.peekAt(1) == ')':
			if depth == 0 {
				t.hit("grep.err.unmatched-close")
				return false
			}
			return true
		case b == '^':
			c.i++
			if first {
				t.hit("grep.anchor.begin")
			} else {
				t.hit("grep.caret.literal")
			}
		case b == '$':
			c.i++
			if c.eof() || (c.peek() == '\\' && (c.peekAt(1) == '|' || c.peekAt(1) == ')')) {
				t.hit("grep.anchor.end")
			} else {
				t.hit("grep.dollar.literal")
			}
		default:
			if !grepPiece(c, depth) {
				return false
			}
			pieces++
		}
		first = false
	}
}

// grepPiece parses atom followed by repetition operators.
func grepPiece(c *cursor, depth int) bool {
	t := c.t
	if !grepAtom(c, depth) {
		return false
	}
	for {
		switch {
		case c.peek() == '*':
			c.i++
			t.hit("grep.rep.star")
		case c.peek() == '\\' && c.peekAt(1) == '{':
			c.i += 2
			t.hit("grep.rep.interval")
			if !grepInterval(c) {
				return false
			}
		case c.peek() == '\\' && c.peekAt(1) == '+':
			c.i += 2
			t.hit("grep.rep.plus")
		case c.peek() == '\\' && c.peekAt(1) == '?':
			c.i += 2
			t.hit("grep.rep.question")
		default:
			return true
		}
	}
}

// grepInterval parses the body of \{n\}, \{n,\} or \{n,m\}.
func grepInterval(c *cursor) bool {
	t := c.t
	lo := c.skip(isDigit)
	if lo == 0 {
		t.hit("grep.err.interval.lo")
		return false
	}
	if c.eat(',') {
		if c.skip(isDigit) > 0 {
			t.hit("grep.interval.range")
		} else {
			t.hit("grep.interval.open")
		}
	} else {
		t.hit("grep.interval.exact")
	}
	if !(c.peek() == '\\' && c.peekAt(1) == '}') {
		t.hit("grep.err.interval.close")
		return false
	}
	c.i += 2
	return true
}

// grepAtom parses one atom: ordinary char, '.', class, group, escape, or
// back-reference.
func grepAtom(c *cursor, depth int) bool {
	t := c.t
	b := c.peek()
	switch {
	case b == '.':
		c.i++
		t.hit("grep.atom.any")
		return true
	case b == '[':
		return grepClass(c)
	case b == '*':
		t.hit("grep.err.dangling-star")
		return false
	case b == '\\':
		nxt := c.peekAt(1)
		switch {
		case nxt == '(':
			c.i += 2
			t.hit("grep.group.open")
			t.bucket("grep.group.depth", depth+1)
			if !grepAlt(c, depth+1) {
				return false
			}
			if !(c.peek() == '\\' && c.peekAt(1) == ')') {
				t.hit("grep.err.group.open")
				return false
			}
			c.i += 2
			t.hit("grep.group.close")
			return true
		case nxt >= '1' && nxt <= '9':
			c.i += 2
			t.hit("grep.backref")
			return true
		case nxt == '.' || nxt == '*' || nxt == '[' || nxt == ']' || nxt == '\\' ||
			nxt == '^' || nxt == '$':
			c.i += 2
			t.hit("grep.escape.meta")
			return true
		case nxt == 'w' || nxt == 'W' || nxt == 's' || nxt == 'S' || nxt == 'b' || nxt == 'B' ||
			nxt == '<' || nxt == '>':
			c.i += 2
			t.hit("grep.escape.class")
			return true
		case nxt == 0:
			t.hit("grep.err.trailing-backslash")
			return false
		default:
			t.hit("grep.err.bad-escape")
			return false
		}
	case b == 0 && c.eof():
		t.hit("grep.err.missing-atom")
		return false
	case b < 32 || b > 126:
		t.hit("grep.err.nonprintable")
		return false
	default:
		c.i++
		t.hit("grep.atom.char")
		return true
	}
}

// grepClass parses [...] including negation, ranges, and POSIX named sets.
func grepClass(c *cursor) bool {
	t := c.t
	c.i++ // '['
	t.hit("grep.class.open")
	if c.eat('^') {
		t.hit("grep.class.negate")
	}
	// ']' immediately after open (or ^) is a literal member.
	n := 0
	if c.peek() == ']' {
		c.i++
		t.hit("grep.class.literal-bracket")
		n++
	}
	for {
		if c.eof() {
			t.hit("grep.err.class.unterminated")
			return false
		}
		b := c.peek()
		if b == ']' {
			c.i++
			if n == 0 {
				t.hit("grep.err.class.empty")
				return false
			}
			t.hit("grep.class.close")
			t.bucket("grep.class.size", n)
			return true
		}
		if b == '[' && c.peekAt(1) == ':' {
			c.i += 2
			name := c.i
			c.skip(isLower)
			if c.i == name || !c.lit(":]") {
				t.hit("grep.err.class.posix")
				return false
			}
			switch c.s[name : c.i-2] {
			case "alpha", "digit", "alnum", "space", "upper", "lower", "punct", "xdigit":
				t.hit("grep.class.posix")
			default:
				t.hit("grep.err.class.posix-name")
				return false
			}
			n++
			continue
		}
		if b == '\n' {
			t.hit("grep.err.class.newline")
			return false
		}
		c.i++
		n++
		// Range?
		if c.peek() == '-' && c.peekAt(1) != ']' && c.peekAt(1) != 0 {
			lo := b
			c.i++
			hi := c.peek()
			c.i++
			if lo > hi {
				t.hit("grep.err.class.range-order")
				return false
			}
			t.hit("grep.class.range")
			n++
		}
	}
}
