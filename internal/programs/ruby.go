package programs

// Ruby returns a simulated Ruby front-end: a parser for a miniature of
// Ruby's statement syntax — def/end, if/elsif/else/end, while/end, blocks
// with do |x| ... end, instance and global variables, symbols, string and
// array and hash literals, and method-call chains.
func Ruby() Program {
	return &base{
		name: "ruby",
		reg:  newRegistry(),
		seeds: []string{
			"x = 1 + 2\nputs x\n",
			"def add(a, b)\n  a + b\nend\n",
			"if x == :sym\n  @count = @count + 1\nelse\n  puts \"no\"\nend\n",
			"[1, 2, 3].each do |i|\n  puts i\nend\nwhile x < 10\n  x = x + 1\nend\n",
		},
		parse: rbParse,
	}
}

func rbParse(t *tracer, input string) bool {
	t.hit("rb.enter")
	c := &cursor{s: input, t: t}
	if !rbStatements(c, nil) {
		return false
	}
	rbSkipAll(c)
	if !c.eof() {
		t.hit("rb.err.trailing")
		return false
	}
	t.hit("rb.accept")
	return true
}

// rbSkipAll consumes spaces, newlines, and # comments.
func rbSkipAll(c *cursor) {
	for {
		if c.skip(func(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == ';' }) > 0 {
			continue
		}
		if c.peek() == '#' {
			c.t.hit("rb.comment")
			c.skip(func(b byte) bool { return b != '\n' })
			continue
		}
		return
	}
}

// rbStatements parses statements until one of the given terminator words
// (or end of input when terminators is nil). The terminator itself is not
// consumed.
func rbStatements(c *cursor, terminators []string) bool {
	t := c.t
	if terminators != nil {
		c.depth++
		t.bucket("rb.depth", c.depth)
		defer func() { c.depth-- }()
	}
	stmts := 0
	defer func() { t.bucket("rb.stmts", stmts) }()
	for {
		rbSkipAll(c)
		if c.eof() {
			if terminators != nil {
				t.hit("rb.err.missing-end")
				return false
			}
			return true
		}
		for _, term := range terminators {
			if peekWord(c, term) {
				return true
			}
		}
		if !rbStatement(c) {
			return false
		}
		stmts++
		// Statements are separated by newline or ';'.
		c.skip(isSpace)
		if c.peek() == '#' {
			t.hit("rb.comment")
			c.skip(func(b byte) bool { return b != '\n' })
		}
		if !c.eof() && c.peek() != '\n' && c.peek() != ';' {
			sawTerm := false
			for _, term := range terminators {
				if peekWord(c, term) {
					sawTerm = true
				}
			}
			if !sawTerm {
				t.hit("rb.err.separator")
				return false
			}
		}
	}
}

func rbStatement(c *cursor) bool {
	t := c.t
	switch {
	case matchWord(c, "def"):
		t.hit("rb.stmt.def")
		c.skip(isSpace)
		if !rbMethodName(c) {
			t.hit("rb.err.def-name")
			return false
		}
		c.skip(isSpace)
		if c.eat('(') {
			t.hit("rb.def.params")
			c.skip(isSpace)
			if !c.eat(')') {
				for {
					c.skip(isSpace)
					if !rbName(c) {
						t.hit("rb.err.param")
						return false
					}
					c.skip(isSpace)
					if c.eat(',') {
						continue
					}
					if c.eat(')') {
						break
					}
					t.hit("rb.err.param-list")
					return false
				}
			}
		}
		if !rbStatements(c, []string{"end"}) {
			return false
		}
		matchWord(c, "end")
		t.hit("rb.def.end")
		return true
	case matchWord(c, "if"), matchWord(c, "unless"):
		t.hit("rb.stmt.if")
		c.skip(isSpace)
		if !rbExpr(c) {
			return false
		}
		c.skip(isSpace)
		matchWord(c, "then")
		for {
			if !rbStatements(c, []string{"end", "else", "elsif"}) {
				return false
			}
			if matchWord(c, "elsif") {
				t.hit("rb.stmt.elsif")
				c.skip(isSpace)
				if !rbExpr(c) {
					return false
				}
				c.skip(isSpace)
				matchWord(c, "then")
				continue
			}
			break
		}
		if matchWord(c, "else") {
			t.hit("rb.stmt.else")
			if !rbStatements(c, []string{"end"}) {
				return false
			}
		}
		if !matchWord(c, "end") {
			t.hit("rb.err.if-end")
			return false
		}
		t.hit("rb.if.end")
		return true
	case matchWord(c, "while"), matchWord(c, "until"):
		t.hit("rb.stmt.while")
		c.skip(isSpace)
		if !rbExpr(c) {
			return false
		}
		c.skip(isSpace)
		matchWord(c, "do")
		if !rbStatements(c, []string{"end"}) {
			return false
		}
		matchWord(c, "end")
		t.hit("rb.while.end")
		return true
	case matchWord(c, "return"):
		t.hit("rb.stmt.return")
		c.skip(isSpace)
		if !c.eof() && c.peek() != '\n' && c.peek() != ';' && c.peek() != '#' {
			return rbExpr(c)
		}
		return true
	default:
		// Expression statement, possibly an assignment.
		if !rbExpr(c) {
			return false
		}
		save := c.i
		c.skip(isSpace)
		if c.peek() == '=' && c.peekAt(1) != '=' {
			c.i++
			t.hit("rb.stmt.assign")
			c.skip(isSpace)
			return rbExpr(c)
		}
		c.i = save
		t.hit("rb.stmt.expr")
		return true
	}
}

// --- expressions ---

func rbExpr(c *cursor) bool { return rbOr(c) }

func rbOr(c *cursor) bool {
	if !rbAnd(c) {
		return false
	}
	for {
		save := c.i
		c.skip(isSpace)
		if c.lit("||") || matchWord(c, "or") {
			c.t.hit("rb.expr.or")
			c.skip(isSpace)
			if !rbAnd(c) {
				return false
			}
			continue
		}
		c.i = save
		return true
	}
}

func rbAnd(c *cursor) bool {
	if !rbNot(c) {
		return false
	}
	for {
		save := c.i
		c.skip(isSpace)
		if c.lit("&&") || matchWord(c, "and") {
			c.t.hit("rb.expr.and")
			c.skip(isSpace)
			if !rbNot(c) {
				return false
			}
			continue
		}
		c.i = save
		return true
	}
}

func rbNot(c *cursor) bool {
	c.skip(isSpace)
	if c.peek() == '!' && c.peekAt(1) != '=' {
		c.i++
		c.t.hit("rb.expr.not")
		return rbNot(c)
	}
	if matchWord(c, "not") {
		c.t.hit("rb.expr.not-word")
		c.skip(isSpace)
		return rbNot(c)
	}
	return rbCompare(c)
}

func rbCompare(c *cursor) bool {
	if !rbArith(c) {
		return false
	}
	save := c.i
	c.skip(isSpace)
	for _, op := range []string{"<=>", "==", "!=", "<=", ">=", "<", ">", "=~"} {
		if c.lit(op) {
			c.t.hit("rb.expr.cmp." + op)
			c.skip(isSpace)
			return rbArith(c)
		}
	}
	c.i = save
	return true
}

func rbArith(c *cursor) bool {
	if !rbTerm(c) {
		return false
	}
	for {
		save := c.i
		c.skip(isSpace)
		if c.eat('+') {
			c.t.hit("rb.expr.add")
		} else if c.peek() == '-' && c.peekAt(1) != '=' {
			c.i++
			c.t.hit("rb.expr.sub")
		} else {
			c.i = save
			return true
		}
		c.skip(isSpace)
		if !rbTerm(c) {
			return false
		}
	}
}

func rbTerm(c *cursor) bool {
	if !rbUnary(c) {
		return false
	}
	for {
		save := c.i
		c.skip(isSpace)
		switch {
		case c.lit("**"):
			c.t.hit("rb.expr.pow")
		case c.peek() == '*':
			c.i++
			c.t.hit("rb.expr.mul")
		case c.peek() == '/':
			c.i++
			c.t.hit("rb.expr.div")
		case c.peek() == '%':
			c.i++
			c.t.hit("rb.expr.mod")
		default:
			c.i = save
			return true
		}
		c.skip(isSpace)
		if !rbUnary(c) {
			return false
		}
	}
}

func rbUnary(c *cursor) bool {
	c.skip(isSpace)
	if c.peek() == '-' && isDigit(c.peekAt(1)) {
		c.i++
		c.t.hit("rb.expr.neg")
	}
	return rbPostfix(c)
}

func rbPostfix(c *cursor) bool {
	t := c.t
	if !rbAtom(c) {
		return false
	}
	for {
		switch {
		case c.peek() == '.':
			c.i++
			t.hit("rb.expr.method")
			if !rbMethodName(c) {
				t.hit("rb.err.method-name")
				return false
			}
			if c.eat('(') {
				if !rbArgs(c, ')') {
					return false
				}
			}
			// Optional block: do |x| ... end  or { |x| ... }
			save := c.i
			c.skip(isSpace)
			if matchWord(c, "do") {
				t.hit("rb.block.do")
				if !rbBlockBody(c, "end") {
					return false
				}
			} else {
				c.i = save
			}
		case c.peek() == '[':
			c.i++
			t.hit("rb.expr.index")
			c.skip(isSpace)
			if !rbExpr(c) {
				return false
			}
			c.skip(isSpace)
			if !c.eat(']') {
				t.hit("rb.err.index-close")
				return false
			}
		default:
			return true
		}
	}
}

// rbBlockBody parses optional |params| then statements then the end word.
func rbBlockBody(c *cursor, endWord string) bool {
	t := c.t
	c.skip(isSpace)
	if c.eat('|') {
		t.hit("rb.block.params")
		for {
			c.skip(isSpace)
			if !rbName(c) {
				t.hit("rb.err.block-param")
				return false
			}
			c.skip(isSpace)
			if c.eat(',') {
				continue
			}
			if c.eat('|') {
				break
			}
			t.hit("rb.err.block-params")
			return false
		}
	}
	if !rbStatements(c, []string{endWord}) {
		return false
	}
	if !matchWord(c, endWord) {
		t.hit("rb.err.block-end")
		return false
	}
	t.hit("rb.block.end")
	return true
}

func rbArgs(c *cursor, close byte) bool {
	t := c.t
	c.skip(isSpace)
	if c.eat(close) {
		return true
	}
	args := 0
	for {
		if !rbExpr(c) {
			return false
		}
		args++
		c.skip(isSpace)
		if c.eat(',') {
			c.skip(isSpace)
			continue
		}
		if c.eat(close) {
			t.bucket("rb.args", args)
			return true
		}
		t.hit("rb.err.args-close")
		return false
	}
}

func rbAtom(c *cursor) bool {
	t := c.t
	c.skip(isSpace)
	b := c.peek()
	switch {
	case c.eof():
		t.hit("rb.err.missing-expr")
		return false
	case isDigit(b):
		c.skip(isDigit)
		if c.peek() == '.' && isDigit(c.peekAt(1)) {
			c.i++
			c.skip(isDigit)
			t.hit("rb.atom.float")
		} else {
			t.hit("rb.atom.int")
		}
		return true
	case b == '"' || b == '\'':
		c.i++
		for !c.eof() && c.peek() != b {
			if c.peek() == '\\' {
				c.i++
				if c.eof() {
					t.hit("rb.err.string-escape")
					return false
				}
			}
			c.i++
		}
		if !c.eat(b) {
			t.hit("rb.err.string-open")
			return false
		}
		t.hit("rb.atom.string")
		return true
	case b == ':':
		c.i++
		if !rbName(c) {
			t.hit("rb.err.symbol")
			return false
		}
		t.hit("rb.atom.symbol")
		return true
	case b == '@':
		c.i++
		if !rbName(c) {
			t.hit("rb.err.ivar")
			return false
		}
		t.hit("rb.atom.ivar")
		return true
	case b == '$':
		c.i++
		if !rbName(c) {
			t.hit("rb.err.gvar")
			return false
		}
		t.hit("rb.atom.gvar")
		return true
	case b == '(':
		c.i++
		t.hit("rb.atom.paren")
		c.skip(isSpace)
		if !rbExpr(c) {
			return false
		}
		c.skip(isSpace)
		if !c.eat(')') {
			t.hit("rb.err.paren-close")
			return false
		}
		return true
	case b == '[':
		c.i++
		t.hit("rb.atom.array")
		return rbArgs(c, ']')
	case b == '{':
		c.i++
		t.hit("rb.atom.hash")
		c.skip(isSpace)
		if c.eat('}') {
			return true
		}
		for {
			c.skip(isSpace)
			if !rbExpr(c) {
				return false
			}
			c.skip(isSpace)
			if !c.lit("=>") {
				t.hit("rb.err.hash-arrow")
				return false
			}
			c.skip(isSpace)
			if !rbExpr(c) {
				return false
			}
			c.skip(isSpace)
			if c.eat(',') {
				continue
			}
			if c.eat('}') {
				return true
			}
			t.hit("rb.err.hash-close")
			return false
		}
	case matchWord(c, "true") || matchWord(c, "false") || matchWord(c, "nil"):
		t.hit("rb.atom.const")
		return true
	case isLetter(b):
		if rbReserved(c) {
			t.hit("rb.err.keyword-expr")
			return false
		}
		rbName(c)
		t.hit("rb.atom.name")
		// Command-style call: name(args) or "puts expr".
		if c.eat('(') {
			t.hit("rb.call.parens")
			return rbArgs(c, ')')
		}
		save := c.i
		if c.skip(isSpace) > 0 && rbStartsArg(c.peek()) {
			t.hit("rb.call.command")
			return rbExpr(c)
		}
		c.i = save
		return true
	default:
		t.hit("rb.err.atom")
		return false
	}
}

// rbStartsArg reports whether a byte can start a command-call argument
// ("puts x", "puts :sym", "puts \"s\"").
func rbStartsArg(b byte) bool {
	return isDigit(b) || b == '"' || b == '\'' || b == ':' || b == '@' || b == '$' || b == '[' || isLetter(b)
}

func rbName(c *cursor) bool {
	if !isLetter(c.peek()) {
		return false
	}
	c.skip(isAlnum)
	return true
}

// rbMethodName allows trailing ? or ! on method names.
func rbMethodName(c *cursor) bool {
	if !rbName(c) {
		return false
	}
	if c.peek() == '?' || c.peek() == '!' {
		c.i++
	}
	return true
}

// rbReserved reports whether the next word is a keyword that cannot start
// an expression atom.
func rbReserved(c *cursor) bool {
	for _, w := range []string{"end", "else", "elsif", "then", "do", "def", "if", "unless", "while", "until", "return"} {
		if peekWord(c, w) {
			return true
		}
	}
	return false
}

// peekWord reports whether the next token is exactly the given keyword.
func peekWord(c *cursor, w string) bool {
	if len(c.s)-c.i < len(w) || c.s[c.i:c.i+len(w)] != w {
		return false
	}
	return c.i+len(w) >= len(c.s) || !isAlnum(c.s[c.i+len(w)])
}
