package programs

import (
	"math/rand"
	"testing"
)

func TestAllHaveSeedsAndNames(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("All() returned %d programs", len(all))
	}
	for _, p := range all {
		if p.Name() == "" {
			t.Fatal("unnamed program")
		}
		if len(p.Seeds()) < 2 {
			t.Errorf("%s: too few seeds", p.Name())
		}
		if ByName(p.Name()) == nil {
			t.Errorf("ByName(%q) = nil", p.Name())
		}
	}
	if ByName("nope") != nil {
		t.Fatal("ByName of unknown program non-nil")
	}
}

func TestSeedsAreValid(t *testing.T) {
	for _, p := range All() {
		for i, s := range p.Seeds() {
			res := p.Run(s)
			if !res.OK {
				t.Errorf("%s: seed %d rejected: %q", p.Name(), i, s)
			}
			if len(res.Points) == 0 {
				t.Errorf("%s: seed %d produced no coverage", p.Name(), i)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	for _, p := range All() {
		for _, s := range append(p.Seeds(), "garbage \x00 input", "") {
			a := p.Run(s)
			b := p.Run(s)
			if a.OK != b.OK || len(a.Points) != len(b.Points) {
				t.Fatalf("%s: nondeterministic run on %q", p.Name(), s)
			}
			for i := range a.Points {
				if a.Points[i] != b.Points[i] {
					t.Fatalf("%s: nondeterministic coverage on %q", p.Name(), s)
				}
			}
		}
	}
}

func TestInvalidInputsStillCover(t *testing.T) {
	// Error paths are coverage too (real fuzzing hits them constantly).
	for _, p := range All() {
		res := p.Run("\x01\x02 utterly invalid \xff")
		if res.OK {
			t.Errorf("%s: accepted garbage", p.Name())
		}
		if len(res.Points) == 0 {
			t.Errorf("%s: error path recorded no coverage", p.Name())
		}
	}
}

func TestCoverageGrowsWithDiversity(t *testing.T) {
	for _, p := range All() {
		seeds := p.Seeds()
		first := map[int]bool{}
		for _, pt := range p.Run(seeds[0]).Points {
			first[pt] = true
		}
		union := map[int]bool{}
		for _, s := range seeds {
			for _, pt := range p.Run(s).Points {
				union[pt] = true
			}
		}
		if len(union) <= len(first) {
			t.Errorf("%s: seed diversity adds no coverage (%d vs %d)", p.Name(), len(union), len(first))
		}
	}
}

func TestNoPanicsOnRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, p := range All() {
		for i := 0; i < 300; i++ {
			n := rng.Intn(60)
			b := make([]byte, n)
			for j := range b {
				b[j] = byte(rng.Intn(256))
			}
			p.Run(string(b)) // must not panic
		}
	}
}

func TestNoPanicsOnMutatedSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range All() {
		for _, s := range p.Seeds() {
			for i := 0; i < 100; i++ {
				b := []byte(s)
				for k := 0; k < 1+rng.Intn(4); k++ {
					if len(b) == 0 {
						break
					}
					b[rng.Intn(len(b))] = byte(rng.Intn(128))
				}
				p.Run(string(b))
			}
		}
	}
}

func TestSed(t *testing.T) {
	p := Sed()
	valid := []string{
		"",
		"d",
		"5d",
		"$p",
		"1,5d",
		"/re/d",
		"s/a/b/",
		"s/a/b/g",
		"s|a|b|",
		"s/a*/b\\1/g2",
		"y/ab/cd/",
		"/x/,/y/p",
		"3~2d",
		"a hello",
		":loop\nb loop",
		"{p;d}",
		"1!d",
		"# comment",
		"s/[a-z]/X/",
	}
	for _, s := range valid {
		if !p.Run(s).OK {
			t.Errorf("rejects valid %q", s)
		}
	}
	invalid := []string{
		"z",
		"s/a/b",
		"s/a",
		"sXaXb",   // alnum delimiter
		"y/ab/c/", // length mismatch
		"1,d",
		"{p",
		"}",
		"s/[a/b/",
		"s/*x/y/",
		":",
	}
	for _, s := range invalid {
		if p.Run(s).OK {
			t.Errorf("accepts invalid %q", s)
		}
	}
}

func TestGrepProgram(t *testing.T) {
	p := Grep()
	valid := []string{
		"",
		"abc",
		"^a.*b$",
		"[a-z]*",
		"[^abc]",
		"[]a]",
		`\(a\|b\)c`,
		`a\{1,3\}`,
		`a\{2\}`,
		`a\{2,\}`,
		`\(x\)\1`,
		`\.\*`,
		"[[:digit:]]",
		`\<word\>`,
	}
	for _, s := range valid {
		if !p.Run(s).OK {
			t.Errorf("rejects valid %q", s)
		}
	}
	invalid := []string{
		"*a",
		"[",
		"[]",
		`\(a`,
		`a\)`,
		`a\{,3\}`,
		`a\{1,3`,
		`a\`,
		"[z-a]",
		"[[:nosuch:]]",
		"\x01",
	}
	for _, s := range invalid {
		if p.Run(s).OK {
			t.Errorf("accepts invalid %q", s)
		}
	}
}

func TestFlexProgram(t *testing.T) {
	p := Flex()
	valid := []string{
		"%%\n",
		"%%\nabc ;\n",
		"D [0-9]\n%%\n{D}+ { n(); }\n",
		"%option yylineno\n%%\nx |\ny { f(); }\n%%\nrest is code",
		"%{\ncode\n%}\n%%\n\"lit\" ;\n",
		"%%\na{1,3} ;\n",
	}
	for _, s := range valid {
		if !p.Run(s).OK {
			t.Errorf("rejects valid %q", s)
		}
	}
	invalid := []string{
		"",
		"no marker",
		"%%\n*bad ;\n",
		"%%\n{D ;\n",
		"%%\nabc { unclosed\n",
		"%option\n%%\n",
		"D\n%%\n", // macro without pattern
		"%{\nnever closed\n%%\n",
	}
	for _, s := range invalid {
		if p.Run(s).OK {
			t.Errorf("accepts invalid %q", s)
		}
	}
}

func TestBisonProgram(t *testing.T) {
	p := Bison()
	valid := []string{
		"%%\ns : ;\n",
		"%token A\n%%\ns : A | s A ;\n",
		"%token NUM\n%left '+'\n%%\ne : e '+' e { $$ = $1; } | NUM ;\n",
		"%start s\n%%\ns : 'x' %prec HIGH ;\n",
		"%%\ns : /* empty */ ;\n%%\ntrailing",
		"%type <v> e\n%%\ne : ;\n",
	}
	for _, s := range valid {
		if !p.Run(s).OK {
			t.Errorf("rejects valid %q", s)
		}
	}
	invalid := []string{
		"",
		"%%\n",        // no rules
		"%%\ns : \n",  // missing ;
		"%%\n: A ;\n", // missing name
		"%token\n%%\ns : ;\n",
		"%%\ns A ;\n",     // missing colon
		"%%\ns : { x ;\n", // unclosed action
		"%bogus\n%%\ns : ;\n",
	}
	for _, s := range invalid {
		if p.Run(s).OK {
			t.Errorf("accepts invalid %q", s)
		}
	}
}

func TestXMLProgram(t *testing.T) {
	p := XML()
	valid := []string{
		"<a/>",
		"<a></a>",
		"<doc><b>x</b></doc>",
		`<a k="v"/>`,
		`<a k='v'/>`,
		"<a>x &amp; y</a>",
		"<a>&#65;</a>",
		"<a><!-- c --></a>",
		"<a><![CDATA[<raw>]]></a>",
		"<a><?pi data?></a>",
		`<?xml version="1.0"?><a/>`,
	}
	for _, s := range valid {
		if !p.Run(s).OK {
			t.Errorf("rejects valid %q", s)
		}
	}
	invalid := []string{
		"",
		"<a>",
		"<a></b>",          // tag mismatch
		`<a k="v" k="w"/>`, // duplicate attribute (paper's example)
		"<a>&bogus;</a>",
		"<a>&amp</a>",
		"<a><!-- -- --></a>", // double dash in comment
		"<a>x</a><b/>",       // two roots
		`<a k=v/>`,
		"<a>x > y</a>", // bare '>' rejected by our strict parser
	}
	for _, s := range invalid {
		if p.Run(s).OK {
			t.Errorf("accepts invalid %q", s)
		}
	}
}

func TestPythonProgram(t *testing.T) {
	p := Python()
	valid := []string{
		"x = 1\n",
		"x = 1 + 2 * 3\n",
		"f(1, 2)\n",
		"x = a.b.c[0]\n",
		"if x == 1:\n    pass\n",
		"if x:\n    y = 1\nelif z:\n    y = 2\nelse:\n    y = 3\n",
		"while not done: f()\n",
		"for i in range(10):\n    total += i\n",
		"def f(a, b):\n    return a + b\n",
		"def g():\n    pass\n",
		"x = [1, 2, 'three']\n",
		"d = {'k': 1, 'm': 2}\n",
		"import os.path\n",
		"x = 1; y = 2\n",
		"# only a comment\npass\n",
		"x = (1, 2)\n",
		"x = -y ** 2\n",
	}
	for _, s := range valid {
		if !p.Run(s).OK {
			t.Errorf("rejects valid %q", s)
		}
	}
	invalid := []string{
		"if x\n    pass\n", // missing colon
		"x = \n",           // missing rhs
		"def f(:\n    pass\n",
		"   x = 1\n",    // indent not multiple of 4
		"if x:\npass\n", // empty suite (no indent)
		"x = [1, 2\n",   // unclosed list
		"for in y:\n    pass\n",
		"x = 'unterminated\n",
		"\tx = 1\n", // tab indent
		"x == \n",
	}
	for _, s := range invalid {
		if p.Run(s).OK {
			t.Errorf("accepts invalid %q", s)
		}
	}
}

func TestRubyProgram(t *testing.T) {
	p := Ruby()
	valid := []string{
		"x = 1\n",
		"puts x\n",
		"puts \"hello\"\n",
		"def f(a, b)\n  a + b\nend\n",
		"def f\n  1\nend\n",
		"if x == 1\n  y = 2\nelsif z\n  y = 3\nelse\n  y = 4\nend\n",
		"while x < 10\n  x = x + 1\nend\n",
		"xs.each do |i|\n  puts i\nend\n",
		"x = [1, 2, 3]\n",
		"h = {:a => 1, :b => 2}\n",
		"@count = @count + 1\n",
		"$global = :sym\n",
		"x = f(1, 2).size\n",
		"# comment only\nx = 1\n",
		"return 5\n",
	}
	for _, s := range valid {
		if !p.Run(s).OK {
			t.Errorf("rejects valid %q", s)
		}
	}
	invalid := []string{
		"def f(\nend\n",
		"if x\n  y = 1\n", // missing end
		"end\n",
		"x = \n",
		"x = 'unterminated\n",
		"h = {:a 1}\n", // missing =>
		"xs.each do |i\nend\n",
		"@ = 1\n",
		"x = [1, 2\n",
	}
	for _, s := range invalid {
		if p.Run(s).OK {
			t.Errorf("accepts invalid %q", s)
		}
	}
}

func TestJavaScriptProgram(t *testing.T) {
	p := JavaScript()
	valid := []string{
		"var x = 1;",
		"let y = x + 2;",
		"const z = \"s\";",
		"x = y === 1 ? 2 : 3;",
		"function f(a, b) { return a + b; }",
		"if (x) { f(); } else { g(); }",
		"while (x > 0) { x--; }",
		"for (i = 0; i < 10; i++) { s = s + i; }",
		"for (;;) { break; }",
		"var o = {a: 1, \"b\": 2};",
		"var a = [1, 2, 3];",
		"console.log(a[0].b);",
		"var f = function(x) { return x; };",
		"// comment\nx = 1;",
		"/* block */ x = 1;",
		"x = typeof y;",
		"x = new Thing(1);",
		"x = 1", // automatic semicolon at EOF
	}
	for _, s := range valid {
		if !p.Run(s).OK {
			t.Errorf("rejects valid %q", s)
		}
	}
	invalid := []string{
		"var = 1;",
		"x = ;",
		"if x { }",
		"function () { }", // declaration needs a name
		"f(1, ;",
		"var o = {a 1};",
		"x = 'unterminated;",
		"while () { }",
		"for (i = 0; i < 10) { }",
		"x = 1 +;",
		"{ x = 1; ",
	}
	for _, s := range invalid {
		if p.Run(s).OK {
			t.Errorf("accepts invalid %q", s)
		}
	}
}
