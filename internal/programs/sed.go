package programs

// Sed returns a simulated GNU sed: it parses sed scripts — addresses,
// substitution/transliteration commands, text commands, labels, branches,
// and command blocks — accepting exactly the syntactically valid scripts.
func Sed() Program {
	return &base{
		name: "sed",
		reg:  newRegistry(),
		seeds: []string{
			"s/abc/xyz/g",
			"1,5d\np\nq",
			"/start/,/stop/s/a/b/\ny/abc/xyz/",
		},
		parse: sedParse,
	}
}

func sedParse(t *tracer, input string) bool {
	c := &cursor{s: input, t: t}
	t.hit("sed.enter")
	cmds := 0
	for {
		c.skip(isSpace)
		if c.eof() {
			t.hit("sed.eof")
			t.bucket("sed.cmds", cmds)
			return true
		}
		if c.eat('\n') || c.eat(';') {
			t.hit("sed.separator")
			continue
		}
		if !sedCommand(c, 0) {
			t.hit("sed.err.command")
			return false
		}
		cmds++
		c.skip(isSpace)
		if !c.eof() && c.peek() != '\n' && c.peek() != ';' && c.peek() != '}' {
			t.hit("sed.err.trailing")
			return false
		}
		if c.peek() == '}' {
			t.hit("sed.err.unmatched-close")
			return false
		}
	}
}

// sedCommand parses one optionally-addressed command. depth tracks block
// nesting for '}' handling.
func sedCommand(c *cursor, depth int) bool {
	t := c.t
	hasAddr := sedAddress(c)
	if hasAddr {
		t.hit("sed.addr.one")
		c.skip(isSpace)
		if c.eat(',') {
			t.hit("sed.addr.range")
			c.skip(isSpace)
			if !sedAddress(c) {
				t.hit("sed.err.addr2")
				return false
			}
		}
		c.skip(isSpace)
		if c.eat('!') {
			t.hit("sed.addr.negate")
		}
		c.skip(isSpace)
	}
	if c.eof() {
		t.hit("sed.err.missing-cmd")
		return false
	}
	switch cmd := c.peek(); cmd {
	case 's':
		c.i++
		t.hit("sed.cmd.s")
		return sedSubst(c)
	case 'y':
		c.i++
		t.hit("sed.cmd.y")
		return sedTranslit(c)
	case 'd', 'p', 'q', '=', 'x', 'h', 'g', 'n', 'N', 'D', 'G', 'H', 'P':
		c.i++
		t.hit("sed.cmd.simple." + string(cmd))
		return true
	case 'a', 'i', 'c':
		c.i++
		t.hit("sed.cmd.text." + string(cmd))
		return sedTextArg(c)
	case 'b', 't':
		c.i++
		t.hit("sed.cmd.branch." + string(cmd))
		c.skip(isSpace)
		n := c.skip(isAlnum)
		if n > 0 {
			t.hit("sed.branch.label")
		} else {
			t.hit("sed.branch.nolabel")
		}
		return true
	case ':':
		c.i++
		t.hit("sed.cmd.label")
		if c.skip(isAlnum) == 0 {
			t.hit("sed.err.empty-label")
			return false
		}
		return true
	case '{':
		c.i++
		t.hit("sed.cmd.block")
		t.bucket("sed.block.depth", depth+1)
		return sedBlock(c, depth+1)
	case '#':
		t.hit("sed.cmd.comment")
		c.skip(func(b byte) bool { return b != '\n' })
		return true
	default:
		t.hit("sed.err.unknown-cmd")
		return false
	}
}

// sedAddress parses an optional address: a line number, $, or /regex/.
func sedAddress(c *cursor) bool {
	t := c.t
	switch {
	case isDigit(c.peek()):
		c.skip(isDigit)
		t.hit("sed.addr.line")
		if c.eat('~') {
			t.hit("sed.addr.step")
			if c.skip(isDigit) == 0 {
				return false
			}
		}
		return true
	case c.peek() == '$':
		c.i++
		t.hit("sed.addr.last")
		return true
	case c.peek() == '/':
		c.i++
		t.hit("sed.addr.regex")
		return sedRegexUntil(c, '/')
	}
	return false
}

// sedRegexUntil validates a regex body up to the delimiter.
func sedRegexUntil(c *cursor, delim byte) bool {
	t := c.t
	n := 0
	for !c.eof() {
		b := c.peek()
		switch {
		case b == delim:
			c.i++
			if n == 0 {
				t.hit("sed.re.empty")
			} else {
				t.hit("sed.re.ok")
			}
			t.bucket("sed.re.len", n)
			return true
		case b == '\\':
			c.i++
			if c.eof() || c.peek() == '\n' {
				t.hit("sed.err.re.escape")
				return false
			}
			t.hit("sed.re.escape")
			c.i++
		case b == '[':
			c.i++
			t.hit("sed.re.class")
			if c.eat('^') {
				t.hit("sed.re.class.negate")
			}
			if c.skip(func(x byte) bool { return x != ']' && x != '\n' }) == 0 {
				t.hit("sed.err.re.class-empty")
				return false
			}
			if !c.eat(']') {
				t.hit("sed.err.re.class-open")
				return false
			}
		case b == '*':
			c.i++
			if n == 0 {
				t.hit("sed.err.re.dangling-star")
				return false
			}
			t.hit("sed.re.star")
			continue // star does not add a new atom
		case b == '\n':
			t.hit("sed.err.re.newline")
			return false
		default:
			c.i++
			t.hit("sed.re.char")
		}
		n++
	}
	t.hit("sed.err.re.unterminated")
	return false
}

// sedSubst parses s/regex/replacement/flags with an arbitrary delimiter.
func sedSubst(c *cursor) bool {
	t := c.t
	if c.eof() {
		t.hit("sed.err.s.nodelim")
		return false
	}
	delim := c.peek()
	if isAlnum(delim) || delim == '\\' || delim == '\n' {
		t.hit("sed.err.s.baddelim")
		return false
	}
	if delim != '/' {
		t.hit("sed.s.altdelim")
	}
	c.i++
	if !sedRegexUntil(c, delim) {
		return false
	}
	// Replacement: chars, \n escapes, & references.
	for !c.eof() {
		b := c.peek()
		if b == delim {
			c.i++
			t.hit("sed.s.repl-done")
			// Flags.
			for !c.eof() {
				switch f := c.peek(); f {
				case 'g', 'p', 'i':
					c.i++
					t.hit("sed.s.flag." + string(f))
				case '1', '2', '3', '4', '5', '6', '7', '8', '9':
					c.i++
					t.hit("sed.s.flag.count")
				default:
					return true
				}
			}
			return true
		}
		if b == '\n' {
			t.hit("sed.err.s.newline")
			return false
		}
		if b == '\\' {
			c.i++
			if c.eof() {
				t.hit("sed.err.s.escape")
				return false
			}
			if isDigit(c.peek()) {
				t.hit("sed.s.backref")
			} else {
				t.hit("sed.s.escape")
			}
			c.i++
			continue
		}
		if b == '&' {
			t.hit("sed.s.amp")
		}
		c.i++
	}
	t.hit("sed.err.s.unterminated")
	return false
}

// sedTranslit parses y/set1/set2/ where both sets must have equal length.
func sedTranslit(c *cursor) bool {
	t := c.t
	if c.eof() {
		t.hit("sed.err.y.nodelim")
		return false
	}
	delim := c.peek()
	if isAlnum(delim) || delim == '\\' || delim == '\n' {
		t.hit("sed.err.y.baddelim")
		return false
	}
	c.i++
	set1, ok := sedPlainUntil(c, delim)
	if !ok {
		t.hit("sed.err.y.set1")
		return false
	}
	set2, ok := sedPlainUntil(c, delim)
	if !ok {
		t.hit("sed.err.y.set2")
		return false
	}
	if set1 != set2 {
		t.hit("sed.err.y.length")
		return false
	}
	t.hit("sed.y.ok")
	return true
}

func sedPlainUntil(c *cursor, delim byte) (int, bool) {
	n := 0
	for !c.eof() {
		b := c.peek()
		if b == delim {
			c.i++
			return n, true
		}
		if b == '\n' {
			return 0, false
		}
		c.i++
		n++
	}
	return 0, false
}

// sedTextArg parses the a/i/c text argument: "a text" or "a\" + next line.
func sedTextArg(c *cursor) bool {
	t := c.t
	if c.eat('\\') {
		if !c.eat('\n') {
			t.hit("sed.err.text.backslash")
			return false
		}
		t.hit("sed.text.multiline")
	} else {
		t.hit("sed.text.inline")
	}
	c.skip(isSpace)
	c.skip(func(b byte) bool { return b != '\n' })
	return true
}

// sedBlock parses commands until the matching '}'.
func sedBlock(c *cursor, depth int) bool {
	t := c.t
	for {
		c.skip(isSpace)
		if c.eat('\n') || c.eat(';') {
			continue
		}
		if c.eat('}') {
			t.hit("sed.block.close")
			return true
		}
		if c.eof() {
			t.hit("sed.err.block.open")
			return false
		}
		if !sedCommand(c, depth) {
			return false
		}
	}
}
