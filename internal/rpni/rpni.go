// Package rpni implements the RPNI algorithm (Oncina & García 1992) for
// learning a regular language from positive and negative examples: build
// the prefix-tree acceptor of the positives, then merge states in canonical
// order, keeping a merge only when the quotient automaton still rejects
// every negative example. This is the second baseline of §8.2.
package rpni

import (
	"sort"
	"time"

	"glade/internal/automata"
)

// Stats reports learner effort.
type Stats struct {
	PTAStates   int
	MergesTried int
	MergesKept  int
	FinalStates int
	TimedOut    bool
	Duration    time.Duration
}

// Learn runs RPNI over the given samples and alphabet. The returned DFA is
// complete over the alphabet (missing transitions go to a dead state). On
// timeout the current partially-merged automaton is returned with
// Stats.TimedOut set.
func Learn(positives, negatives []string, alphabet []byte, timeout time.Duration) (*automata.DFA, Stats) {
	var stats Stats
	start := time.Now()
	var deadline time.Time
	if timeout > 0 {
		deadline = start.Add(timeout)
	}
	expired := func() bool {
		if deadline.IsZero() {
			return false
		}
		if time.Now().After(deadline) {
			stats.TimedOut = true
			return true
		}
		return false
	}

	p := buildPTA(positives, alphabet)
	stats.PTAStates = p.n

	// Red-blue merge loop in canonical (BFS) order.
	red := []int{0}
	inRed := map[int]bool{0: true}
	blueSet := map[int]bool{}
	refreshBlue := func() []int {
		for b := range blueSet {
			delete(blueSet, b)
		}
		for _, r := range red {
			rr := p.find(r)
			for _, t := range p.trans[rr] {
				tt := p.find(t)
				if !inRed[tt] {
					blueSet[tt] = true
				}
			}
		}
		blues := make([]int, 0, len(blueSet))
		for b := range blueSet {
			blues = append(blues, b)
		}
		sort.Ints(blues)
		return blues
	}

	for {
		if expired() {
			break
		}
		blues := refreshBlue()
		if len(blues) == 0 {
			break
		}
		q := blues[0]
		merged := false
		for _, r := range red {
			rr := p.find(r)
			if rr == p.find(q) {
				merged = true
				break
			}
			stats.MergesTried++
			snapshot := p.save()
			if p.mergeFold(rr, p.find(q)) && p.consistent(negatives) {
				stats.MergesKept++
				merged = true
				break
			}
			p.restore(snapshot)
			if expired() {
				break
			}
		}
		if !merged {
			red = append(red, p.find(q))
			inRed[p.find(q)] = true
		}
	}

	d := p.toDFA(alphabet)
	stats.FinalStates = d.NumStates()
	stats.Duration = time.Since(start)
	return d, stats
}

// pta is a prefix-tree acceptor under state merging: a union-find over tree
// states plus per-representative transition maps.
type pta struct {
	n      int
	parent []int
	accept []bool
	trans  []map[byte]int
}

func buildPTA(positives []string, alphabet []byte) *pta {
	// Sort for canonical state numbering (lexicographic prefix order).
	sorted := append([]string(nil), positives...)
	sort.Strings(sorted)
	p := &pta{}
	p.newState()
	inAlpha := map[byte]bool{}
	for _, a := range alphabet {
		inAlpha[a] = true
	}
	for _, s := range sorted {
		cur := 0
		ok := true
		for i := 0; i < len(s); i++ {
			if !inAlpha[s[i]] {
				ok = false
				break
			}
			next, exists := p.trans[cur][s[i]]
			if !exists {
				next = p.newState()
				p.trans[cur][s[i]] = next
			}
			cur = next
		}
		if ok {
			p.accept[cur] = true
		}
	}
	return p
}

func (p *pta) newState() int {
	p.parent = append(p.parent, p.n)
	p.accept = append(p.accept, false)
	p.trans = append(p.trans, map[byte]int{})
	p.n++
	return p.n - 1
}

func (p *pta) find(x int) int {
	for p.parent[x] != x {
		p.parent[x] = p.parent[p.parent[x]]
		x = p.parent[x]
	}
	return x
}

// save snapshots the mutable state for backtracking a failed merge.
type snapshot struct {
	parent []int
	accept []bool
	trans  []map[byte]int
}

func (p *pta) save() *snapshot {
	s := &snapshot{
		parent: append([]int(nil), p.parent...),
		accept: append([]bool(nil), p.accept...),
		trans:  make([]map[byte]int, len(p.trans)),
	}
	for i, m := range p.trans {
		c := make(map[byte]int, len(m))
		for k, v := range m {
			c[k] = v
		}
		s.trans[i] = c
	}
	return s
}

func (p *pta) restore(s *snapshot) {
	p.parent = s.parent
	p.accept = s.accept
	p.trans = s.trans
}

// mergeFold merges state b into state a and recursively folds successor
// conflicts to restore determinism. Acceptance conflicts are legal here
// because negatives are checked separately. It always succeeds; the boolean
// keeps the call shape symmetric with consistent().
func (p *pta) mergeFold(a, b int) bool {
	a, b = p.find(a), p.find(b)
	if a == b {
		return true
	}
	p.parent[b] = a
	p.accept[a] = p.accept[a] || p.accept[b]
	// Snapshot b's edges: recursive folds may mutate transition maps while
	// we fold, and ranging over a mutating map is unsafe.
	type edge struct {
		c byte
		t int
	}
	edges := make([]edge, 0, len(p.trans[b]))
	for c, t := range p.trans[b] {
		edges = append(edges, edge{c, t})
	}
	for _, e := range edges {
		a = p.find(a)
		if ta, ok := p.trans[a][e.c]; ok {
			if !p.mergeFold(ta, e.t) {
				return false
			}
		} else {
			p.trans[a][e.c] = e.t
		}
	}
	return true
}

// consistent reports whether every negative example is rejected by the
// current quotient automaton (strings that fall off the automaton are
// rejected).
func (p *pta) consistent(negatives []string) bool {
	for _, s := range negatives {
		cur := p.find(0)
		ok := true
		for i := 0; i < len(s); i++ {
			next, exists := p.trans[cur][s[i]]
			if !exists {
				ok = false
				break
			}
			cur = p.find(next)
		}
		if ok && p.accept[cur] {
			return false
		}
	}
	return true
}

// toDFA extracts the quotient automaton as a complete DFA with an explicit
// dead state for missing transitions.
func (p *pta) toDFA(alphabet []byte) *automata.DFA {
	idOf := map[int]int{}
	var reps []int
	assign := func(r int) int {
		if id, ok := idOf[r]; ok {
			return id
		}
		id := len(reps)
		idOf[r] = id
		reps = append(reps, r)
		return id
	}
	assign(p.find(0))
	for qi := 0; qi < len(reps); qi++ {
		r := reps[qi]
		for _, a := range alphabet {
			if t, ok := p.trans[r][a]; ok {
				assign(p.find(t))
			}
		}
	}
	dead := len(reps)
	d := &automata.DFA{Alphabet: append([]byte(nil), alphabet...)}
	d.Delta = make([][]int, len(reps)+1)
	d.Accept = make([]bool, len(reps)+1)
	for qi, r := range reps {
		d.Accept[qi] = p.accept[r]
		row := make([]int, len(alphabet))
		for ai, a := range alphabet {
			if t, ok := p.trans[r][a]; ok {
				row[ai] = idOf[p.find(t)]
			} else {
				row[ai] = dead
			}
		}
		d.Delta[qi] = row
	}
	deadRow := make([]int, len(alphabet))
	for i := range deadRow {
		deadRow[i] = dead
	}
	d.Delta[dead] = deadRow
	return d
}
