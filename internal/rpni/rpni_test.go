package rpni

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"glade/internal/automata"
	"glade/internal/bytesets"
	"glade/internal/rex"
)

// characteristicLearn runs RPNI with a generous characteristic sample drawn
// from the truth DFA plus enumerated negatives.
func characteristicLearn(t *testing.T, truth *automata.DFA, alphabet []byte, maxLen int) *automata.DFA {
	t.Helper()
	var pos, neg []string
	var enum func(prefix string)
	enum = func(prefix string) {
		if truth.Accepts(prefix) {
			pos = append(pos, prefix)
		} else {
			neg = append(neg, prefix)
		}
		if len(prefix) == maxLen {
			return
		}
		for _, a := range alphabet {
			enum(prefix + string(a))
		}
	}
	enum("")
	got, stats := Learn(pos, neg, alphabet, 0)
	if stats.PTAStates == 0 {
		t.Fatal("empty PTA")
	}
	return got
}

func TestLearnsFromCharacteristicSamples(t *testing.T) {
	cases := []struct {
		name     string
		e        rex.Expr
		alphabet string
		maxLen   int
	}{
		{"aStar", rex.Rep(rex.Literal("a")), "ab", 6},
		{"abStar", rex.Rep(rex.Literal("ab")), "ab", 8},
		{"literal", rex.Literal("ab"), "ab", 5},
		{"endsB", rex.Concat(rex.Rep(rex.OneOf(bytesets.OfString("ab"))), rex.Literal("b")), "ab", 7},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			truth := automata.FromRex(c.e, []byte(c.alphabet))
			got := characteristicLearn(t, truth, []byte(c.alphabet), c.maxLen)
			if eq, w := automata.Equivalent(got, truth); !eq {
				t.Fatalf("learned wrong language; witness %q", w)
			}
		})
	}
}

// TestIncompleteSamplesUndergeneralize documents the failure mode the paper
// leans on: without the characteristic sample, RPNI's language can miss
// valid strings entirely.
func TestIncompleteSamplesUndergeneralize(t *testing.T) {
	// Target a*: give only "aa" and no negatives that force the loop.
	got, _ := Learn([]string{"aa"}, []string{"b"}, []byte("ab"), 0)
	if !got.Accepts("aa") {
		t.Fatal("rejects its own positive example")
	}
	// A terminal never seen in the positives is never accepted (§8.2).
	if got.Accepts("bbbb") {
		t.Fatal("accepted string built from unseen terminal")
	}
}

// TestNeverAcceptsNegatives is the defining invariant of RPNI.
func TestNeverAcceptsNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := []byte("ab")
	truth := automata.FromRex(rex.Rep(rex.Literal("ab")), alphabet)
	for trial := 0; trial < 30; trial++ {
		var pos, neg []string
		for i := 0; i < 15; i++ {
			s := randString(rng, alphabet, 8)
			if truth.Accepts(s) {
				pos = append(pos, s)
			} else {
				neg = append(neg, s)
			}
		}
		if len(pos) == 0 {
			pos = []string{""}
		}
		got, _ := Learn(pos, neg, alphabet, 0)
		for _, n := range neg {
			if got.Accepts(n) {
				t.Fatalf("accepts negative %q (pos=%v neg=%v)", n, pos, neg)
			}
		}
		for _, p := range pos {
			if !got.Accepts(p) {
				t.Fatalf("rejects positive %q", p)
			}
		}
	}
}

func TestPositivesOutsideAlphabetIgnored(t *testing.T) {
	got, _ := Learn([]string{"ab", "zz"}, nil, []byte("ab"), 0)
	if !got.Accepts("ab") {
		t.Fatal("rejects in-alphabet positive")
	}
	if got.Accepts("zz") {
		t.Fatal("accepted out-of-alphabet string")
	}
}

func TestTimeoutReturnsAutomaton(t *testing.T) {
	// Large PTA with an immediate deadline.
	var pos []string
	for i := 0; i < 200; i++ {
		pos = append(pos, strings.Repeat("ab", i%20))
	}
	got, stats := Learn(pos, []string{"a"}, []byte("ab"), time.Nanosecond)
	if got == nil {
		t.Fatal("nil DFA on timeout")
	}
	if !stats.TimedOut {
		t.Fatal("TimedOut not set")
	}
}

func randString(rng *rand.Rand, alphabet []byte, maxLen int) string {
	n := rng.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}
