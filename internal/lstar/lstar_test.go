package lstar

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"glade/internal/automata"
	"glade/internal/oracle"
	"glade/internal/rex"
)

// exactTeacher builds a teacher whose positive sampler draws from the true
// DFA — a strong equivalence oracle approximation.
func exactTeacher(e rex.Expr, alphabet []byte, seed int64) (Teacher, *automata.DFA) {
	truth := automata.FromRex(e, alphabet)
	rng := rand.New(rand.NewSource(seed))
	return Teacher{
		Oracle:   oracle.Func(truth.Accepts),
		Alphabet: alphabet,
		SamplePositive: func(r *rand.Rand) string {
			if s, ok := automata.Sample(truth, r, 20, 0.3); ok {
				return s
			}
			return ""
		},
		EquivSamples: 200,
		MaxSampleLen: 20,
		Rng:          rng,
	}, truth
}

func TestLearnSimpleRegulars(t *testing.T) {
	cases := []struct {
		name     string
		e        rex.Expr
		alphabet string
	}{
		{"aStar", rex.Rep(rex.Literal("a")), "ab"},
		{"abStar", rex.Rep(rex.Literal("ab")), "ab"},
		{"literal", rex.Literal("abba"), "ab"},
		{"evenAs", rex.Rep(rex.Union(rex.Literal("aa"), rex.Literal("b"))), "ab"},
		{"altStar", rex.Concat(rex.Literal("a"), rex.Rep(rex.Union(rex.Literal("b"), rex.Literal("c")))), "abc"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			teacher, truth := exactTeacher(c.e, []byte(c.alphabet), 7)
			got, stats := Learn(teacher)
			if eq, w := automata.Equivalent(got, truth); !eq {
				t.Fatalf("learned wrong language; witness %q (stats %+v)", w, stats)
			}
			if stats.MembershipQueries == 0 {
				t.Fatal("no membership queries recorded")
			}
		})
	}
}

// TestLearnIsMinimal: L-Star's output has one state per Myhill-Nerode class.
func TestLearnIsMinimal(t *testing.T) {
	teacher, truth := exactTeacher(rex.Rep(rex.Union(rex.Literal("aa"), rex.Literal("b"))), []byte("ab"), 3)
	got, _ := Learn(teacher)
	min := automata.Minimize(truth)
	if got.NumStates() != min.NumStates() {
		t.Fatalf("learned %d states, minimal is %d", got.NumStates(), min.NumStates())
	}
}

// TestWeakEquivalenceOracleCanUndergeneralize documents the paper's point:
// with few random samples, L-Star may settle on a wrong hypothesis without
// crashing. We only require that learning terminates and returns some DFA.
func TestWeakEquivalenceOracleCanUndergeneralize(t *testing.T) {
	// Target: strings over {a,b} whose length is divisible by 5 — needs
	// counterexamples of length >= 5 that random sampling may miss.
	o := oracle.Func(func(s string) bool { return len(s)%5 == 0 })
	teacher := Teacher{
		Oracle:       o,
		Alphabet:     []byte("ab"),
		Positives:    []string{"aaaaa"},
		EquivSamples: 3,
		MaxSampleLen: 4,
		Rng:          rand.New(rand.NewSource(5)),
	}
	d, stats := Learn(teacher)
	if d == nil || stats.States == 0 {
		t.Fatal("no hypothesis returned")
	}
}

func TestTimeout(t *testing.T) {
	// A slow oracle forces the deadline to trip mid-run.
	o := oracle.Func(func(s string) bool {
		time.Sleep(200 * time.Microsecond)
		return strings.Count(s, "a")%3 == 0 && len(s)%2 == 0
	})
	teacher := Teacher{
		Oracle:       o,
		Alphabet:     []byte("abcd"),
		EquivSamples: 50,
		MaxSampleLen: 30,
		Timeout:      5 * time.Millisecond,
		Rng:          rand.New(rand.NewSource(9)),
	}
	d, stats := Learn(teacher)
	if d == nil {
		t.Fatal("no DFA on timeout")
	}
	if !stats.TimedOut {
		t.Fatal("TimedOut not set")
	}
}

func TestDefaultsApplied(t *testing.T) {
	teacher := Teacher{
		Oracle:   oracle.Func(func(s string) bool { return s == "" }),
		Alphabet: []byte("a"),
	}
	d, _ := Learn(teacher)
	if !d.Accepts("") || d.Accepts("a") {
		t.Fatal("failed to learn the empty-string language with defaults")
	}
}
