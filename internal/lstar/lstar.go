// Package lstar implements Angluin's L-Star algorithm for learning regular
// languages from membership and equivalence queries, in the variant the
// paper evaluates (§8.2): the equivalence oracle is approximated by random
// sampling — positive examples, random strings, and samples from the
// current hypothesis — accepting the hypothesis when no counterexample is
// found among a fixed number of samples.
package lstar

import (
	"math/rand"
	"sort"
	"strings"
	"time"

	"glade/internal/automata"
	"glade/internal/oracle"
)

// Teacher bundles what L-Star may ask about the target language.
type Teacher struct {
	// Oracle answers membership queries.
	Oracle oracle.Oracle
	// Alphabet is the byte alphabet the learner works over.
	Alphabet []byte
	// Positives is a pool of known-valid strings (the seed inputs Ein);
	// the sampling equivalence oracle checks the hypothesis accepts them.
	Positives []string
	// SamplePositive, when non-nil, draws additional valid strings for the
	// equivalence oracle (the paper samples from the target distribution).
	SamplePositive func(rng *rand.Rand) string
	// EquivSamples is the number of samples per equivalence query before
	// the hypothesis is accepted (the paper uses 50).
	EquivSamples int
	// MaxSampleLen bounds hypothesis samples and random strings.
	MaxSampleLen int
	// Timeout bounds total learning time; zero means unbounded.
	Timeout time.Duration
	// Rng drives all sampling.
	Rng *rand.Rand
}

// Stats reports learner effort.
type Stats struct {
	MembershipQueries int
	EquivalenceChecks int
	Counterexamples   int
	States            int
	TimedOut          bool
	Duration          time.Duration
}

// Learn runs L-Star and returns the final hypothesis DFA. On timeout it
// returns the last hypothesis built (or a single-state DFA when none was
// completed) with Stats.TimedOut set.
func Learn(t Teacher) (*automata.DFA, Stats) {
	if t.EquivSamples <= 0 {
		t.EquivSamples = 50
	}
	if t.MaxSampleLen <= 0 {
		t.MaxSampleLen = 40
	}
	if t.Rng == nil {
		t.Rng = rand.New(rand.NewSource(1))
	}
	l := &learner{
		t:     t,
		memo:  map[string]bool{},
		rows:  map[string][]bool{},
		start: time.Now(),
	}
	if t.Timeout > 0 {
		l.deadline = l.start.Add(t.Timeout)
	}
	l.s = []string{""}
	l.e = []string{""}

	var hypothesis *automata.DFA
	for {
		if !l.makeClosedConsistent() {
			break // timed out
		}
		hypothesis = l.buildDFA()
		l.stats.EquivalenceChecks++
		cex, found := l.findCounterexample(hypothesis)
		if !found {
			break
		}
		l.stats.Counterexamples++
		// Angluin: add all prefixes of the counterexample to S.
		for i := 1; i <= len(cex); i++ {
			l.addPrefix(cex[:i])
		}
		if l.expired() {
			break
		}
	}
	if hypothesis == nil {
		hypothesis = l.buildDFA()
	}
	l.stats.States = hypothesis.NumStates()
	l.stats.Duration = time.Since(l.start)
	return hypothesis, l.stats
}

type learner struct {
	t        Teacher
	s        []string // prefix set S (kept prefix-closed, sorted for determinism)
	e        []string // suffix set E
	memo     map[string]bool
	rows     map[string][]bool // cached row vectors, invalidated when E grows
	stats    Stats
	start    time.Time
	deadline time.Time
}

func (l *learner) expired() bool {
	if l.deadline.IsZero() {
		return false
	}
	if time.Now().After(l.deadline) {
		l.stats.TimedOut = true
		return true
	}
	return false
}

func (l *learner) member(s string) bool {
	if v, ok := l.memo[s]; ok {
		return v
	}
	l.stats.MembershipQueries++
	v := l.t.Oracle.Accepts(s)
	l.memo[s] = v
	return v
}

// row returns the observation-table row of prefix u over the current E.
func (l *learner) row(u string) []bool {
	if r, ok := l.rows[u]; ok && len(r) == len(l.e) {
		return r
	}
	r := make([]bool, len(l.e))
	for i, e := range l.e {
		r[i] = l.member(u + e)
	}
	l.rows[u] = r
	return r
}

func rowKey(r []bool) string {
	var b strings.Builder
	for _, v := range r {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func (l *learner) addPrefix(u string) {
	for _, s := range l.s {
		if s == u {
			return
		}
	}
	l.s = append(l.s, u)
	sort.Strings(l.s)
}

func (l *learner) addSuffix(e string) {
	for _, x := range l.e {
		if x == e {
			return
		}
	}
	l.e = append(l.e, e)
	l.rows = map[string][]bool{} // row width changed
}

// makeClosedConsistent drives the table to a closed and consistent state.
// It returns false if the deadline expired.
func (l *learner) makeClosedConsistent() bool {
	for {
		if l.expired() {
			return false
		}
		// Closedness: every one-letter extension's row must appear among
		// the rows of S.
		sRows := map[string]bool{}
		for _, s := range l.s {
			sRows[rowKey(l.row(s))] = true
		}
		closedViolation := ""
		for _, s := range l.s {
			for _, a := range l.t.Alphabet {
				ext := s + string(a)
				if !sRows[rowKey(l.row(ext))] {
					closedViolation = ext
					break
				}
			}
			if closedViolation != "" {
				break
			}
		}
		if closedViolation != "" {
			l.addPrefix(closedViolation)
			continue
		}
		// Consistency: equal rows must stay equal under every extension.
		inconsistency := ""
		for i := 0; i < len(l.s) && inconsistency == ""; i++ {
			for j := i + 1; j < len(l.s) && inconsistency == ""; j++ {
				if rowKey(l.row(l.s[i])) != rowKey(l.row(l.s[j])) {
					continue
				}
				for _, a := range l.t.Alphabet {
					ri := l.row(l.s[i] + string(a))
					rj := l.row(l.s[j] + string(a))
					for k := range ri {
						if ri[k] != rj[k] {
							inconsistency = string(a) + l.e[k]
							break
						}
					}
					if inconsistency != "" {
						break
					}
				}
			}
		}
		if inconsistency != "" {
			l.addSuffix(inconsistency)
			continue
		}
		return true
	}
}

// buildDFA constructs the hypothesis from the closed, consistent table.
func (l *learner) buildDFA() *automata.DFA {
	// Distinct rows of S become states; the empty prefix's row is start.
	stateOf := map[string]int{}
	var reps []string
	for _, s := range l.s {
		k := rowKey(l.row(s))
		if _, ok := stateOf[k]; !ok {
			stateOf[k] = len(reps)
			reps = append(reps, s)
		}
	}
	d := &automata.DFA{Alphabet: append([]byte(nil), l.t.Alphabet...)}
	d.Delta = make([][]int, len(reps))
	d.Accept = make([]bool, len(reps))
	for id, rep := range reps {
		d.Accept[id] = l.row(rep)[indexOf(l.e, "")]
		row := make([]int, len(l.t.Alphabet))
		for ai, a := range l.t.Alphabet {
			row[ai] = stateOf[rowKey(l.row(rep+string(a)))]
		}
		d.Delta[id] = row
	}
	// Reorder so the start state (row of "") is state 0.
	startID := stateOf[rowKey(l.row(""))]
	if startID != 0 {
		d = swapStates(d, 0, startID)
	}
	return d
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	panic("lstar: empty suffix missing from E")
}

func swapStates(d *automata.DFA, a, b int) *automata.DFA {
	m := func(s int) int {
		switch s {
		case a:
			return b
		case b:
			return a
		}
		return s
	}
	out := &automata.DFA{Alphabet: d.Alphabet}
	out.Delta = make([][]int, len(d.Delta))
	out.Accept = make([]bool, len(d.Accept))
	for s := range d.Delta {
		row := make([]int, len(d.Delta[s]))
		for i, t := range d.Delta[m(s)] {
			row[i] = m(t)
		}
		out.Delta[s] = row
		out.Accept[s] = d.Accept[m(s)]
	}
	return out
}

// findCounterexample implements the sampling equivalence oracle: it draws
// EquivSamples strings — rotating through the positive pool, the positive
// sampler, random strings, and hypothesis samples — and returns the first
// disagreement between the hypothesis and the membership oracle.
func (l *learner) findCounterexample(d *automata.DFA) (string, bool) {
	for k := 0; k < l.t.EquivSamples; k++ {
		if l.expired() {
			return "", false
		}
		var candidate string
		switch k % 4 {
		case 0:
			if len(l.t.Positives) > 0 {
				candidate = l.t.Positives[k/4%len(l.t.Positives)]
			} else if l.t.SamplePositive != nil {
				candidate = l.t.SamplePositive(l.t.Rng)
			}
		case 1:
			if l.t.SamplePositive != nil {
				candidate = l.t.SamplePositive(l.t.Rng)
			} else if len(l.t.Positives) > 0 {
				candidate = l.t.Positives[l.t.Rng.Intn(len(l.t.Positives))]
			}
		case 2:
			candidate = l.randomString()
		default:
			if s, ok := automata.Sample(d, l.t.Rng, l.t.MaxSampleLen, 0.3); ok {
				candidate = s
			} else {
				candidate = l.randomString()
			}
		}
		if d.Accepts(candidate) != l.member(candidate) {
			return candidate, true
		}
	}
	return "", false
}

func (l *learner) randomString() string {
	n := l.t.Rng.Intn(l.t.MaxSampleLen/2 + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = l.t.Alphabet[l.t.Rng.Intn(len(l.t.Alphabet))]
	}
	return string(b)
}
