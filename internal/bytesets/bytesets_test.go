package bytesets

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var s Set
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatalf("zero Set not empty: %v", s)
	}
	if s.Has(0) || s.Has(255) {
		t.Fatal("empty set Has returned true")
	}
	if got := s.String(); got != "[]" {
		t.Fatalf("String() = %q, want []", got)
	}
}

func TestAddRemoveHas(t *testing.T) {
	var s Set
	for _, b := range []byte{0, 1, 63, 64, 127, 128, 200, 255} {
		s.Add(b)
		if !s.Has(b) {
			t.Fatalf("Has(%d) = false after Add", b)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Has(64) after Remove")
	}
	if s.Len() != 7 {
		t.Fatalf("Len = %d, want 7", s.Len())
	}
}

func TestOfString(t *testing.T) {
	s := OfString("abca")
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, b := range []byte("abc") {
		if !s.Has(b) {
			t.Fatalf("missing %q", b)
		}
	}
}

func TestRange(t *testing.T) {
	s := Range('a', 'f')
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	if s.Min() != 'a' {
		t.Fatalf("Min = %q", s.Min())
	}
	if !Range('z', 'a').IsEmpty() {
		t.Fatal("inverted Range not empty")
	}
	full := Range(0, 255)
	if full.Len() != 256 {
		t.Fatalf("full Len = %d", full.Len())
	}
}

func TestSetAlgebra(t *testing.T) {
	a := OfString("abcd")
	b := OfString("cdef")
	if got := a.Union(b); got.Len() != 6 {
		t.Fatalf("Union len = %d", got.Len())
	}
	if got := a.Intersect(b); !got.Equal(OfString("cd")) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Diff(b); !got.Equal(OfString("ab")) {
		t.Fatalf("Diff = %v", got)
	}
	if got := a.Complement().Complement(); !got.Equal(a) {
		t.Fatal("double Complement != identity")
	}
}

func TestBytesSorted(t *testing.T) {
	s := Of(9, 3, 200, 3, 0)
	bs := s.Bytes()
	want := []byte{0, 3, 9, 200}
	if len(bs) != len(want) {
		t.Fatalf("Bytes = %v", bs)
	}
	for i := range bs {
		if bs[i] != want[i] {
			t.Fatalf("Bytes = %v, want %v", bs, want)
		}
	}
}

func TestPick(t *testing.T) {
	s := Of(5, 70, 130, 255)
	want := []byte{5, 70, 130, 255}
	for i, w := range want {
		if got := s.Pick(i); got != w {
			t.Fatalf("Pick(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestPickPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick out of range did not panic")
		}
	}()
	Of(1).Pick(1)
}

func TestMinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min of empty did not panic")
		}
	}()
	var s Set
	s.Min()
}

func TestString(t *testing.T) {
	cases := []struct {
		in   Set
		want string
	}{
		{OfString("abc"), "[a-c]"},
		{OfString("ab"), "[ab]"},
		{Of('a', 'c'), "[ac]"},
		{Of('\n'), `[\n]`},
		{Of(0), `[\x00]`},
		{Of('-'), `[\-]`},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%v bytes) = %q, want %q", c.in.Bytes(), got, c.want)
		}
	}
}

func TestPrintable(t *testing.T) {
	p := Printable()
	if p.Len() != 95 {
		t.Fatalf("Printable Len = %d, want 95", p.Len())
	}
	pw := PrintableWS()
	if pw.Len() != 97 || !pw.Has('\t') || !pw.Has('\n') {
		t.Fatalf("PrintableWS wrong: len=%d", pw.Len())
	}
}

// Property: membership after construction matches the defining predicate.
func TestQuickOfString(t *testing.T) {
	f := func(s string) bool {
		set := OfString(s)
		seen := map[byte]bool{}
		for i := 0; i < len(s); i++ {
			seen[s[i]] = true
		}
		for b := 0; b < 256; b++ {
			if set.Has(byte(b)) != seen[byte(b)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan — complement of union equals intersection of complements.
func TestQuickDeMorgan(t *testing.T) {
	f := func(a, b string) bool {
		x, y := OfString(a), OfString(b)
		return x.Union(y).Complement().Equal(x.Complement().Intersect(y.Complement()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Pick enumerates exactly Bytes().
func TestQuickPickBytesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		var s Set
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			s.Add(byte(rng.Intn(256)))
		}
		bs := s.Bytes()
		if len(bs) != s.Len() {
			t.Fatalf("len(Bytes)=%d Len=%d", len(bs), s.Len())
		}
		for i, b := range bs {
			if got := s.Pick(i); got != b {
				t.Fatalf("Pick(%d)=%d want %d", i, got, b)
			}
		}
	}
}
