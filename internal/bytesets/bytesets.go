// Package bytesets provides a dense bitmap set over byte values.
//
// Byte sets are the terminal alphabet representation used throughout the
// repository: regular-expression character classes, grammar terminals, and
// the character-generalization phase of the GLADE learner all operate on
// sets of bytes. The zero value is the empty set and is ready to use.
package bytesets

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a set of byte values represented as a 256-bit bitmap.
// The zero value is the empty set. Set is a value type: assignment copies.
type Set struct {
	w [4]uint64
}

// Of returns the set containing exactly the given bytes.
func Of(bs ...byte) Set {
	var s Set
	for _, b := range bs {
		s.Add(b)
	}
	return s
}

// OfString returns the set of bytes appearing in str.
func OfString(str string) Set {
	var s Set
	for i := 0; i < len(str); i++ {
		s.Add(str[i])
	}
	return s
}

// Range returns the set {lo, lo+1, ..., hi}. It is empty if lo > hi.
func Range(lo, hi byte) Set {
	var s Set
	for b := int(lo); b <= int(hi); b++ {
		s.Add(byte(b))
	}
	return s
}

// Add inserts b into the set.
func (s *Set) Add(b byte) { s.w[b>>6] |= 1 << (b & 63) }

// Remove deletes b from the set.
func (s *Set) Remove(b byte) { s.w[b>>6] &^= 1 << (b & 63) }

// Has reports whether b is in the set.
func (s Set) Has(b byte) bool { return s.w[b>>6]&(1<<(b&63)) != 0 }

// Len returns the number of bytes in the set.
func (s Set) Len() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set contains no bytes.
func (s Set) IsEmpty() bool { return s.w == [4]uint64{} }

// Equal reports whether s and t contain the same bytes.
func (s Set) Equal(t Set) bool { return s.w == t.w }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	var r Set
	for i := range r.w {
		r.w[i] = s.w[i] | t.w[i]
	}
	return r
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	var r Set
	for i := range r.w {
		r.w[i] = s.w[i] & t.w[i]
	}
	return r
}

// Diff returns s \ t.
func (s Set) Diff(t Set) Set {
	var r Set
	for i := range r.w {
		r.w[i] = s.w[i] &^ t.w[i]
	}
	return r
}

// Complement returns the set of all bytes not in s.
func (s Set) Complement() Set {
	var r Set
	for i := range r.w {
		r.w[i] = ^s.w[i]
	}
	return r
}

// Bytes returns the members of the set in ascending order.
func (s Set) Bytes() []byte {
	out := make([]byte, 0, s.Len())
	for i, w := range s.w {
		for w != 0 {
			b := byte(i<<6 + bits.TrailingZeros64(w))
			out = append(out, b)
			w &= w - 1
		}
	}
	return out
}

// Min returns the smallest byte in the set. It panics on the empty set.
func (s Set) Min() byte {
	for i, w := range s.w {
		if w != 0 {
			return byte(i<<6 + bits.TrailingZeros64(w))
		}
	}
	panic("bytesets: Min of empty set")
}

// Pick returns the i-th smallest member (0-based). It panics if i is out of
// range. It is used for uniform sampling from character classes.
func (s Set) Pick(i int) byte {
	for wi, w := range s.w {
		c := bits.OnesCount64(w)
		if i < c {
			for ; ; i-- {
				b := bits.TrailingZeros64(w)
				if i == 0 {
					return byte(wi<<6 + b)
				}
				w &= w - 1
			}
		}
		i -= c
	}
	panic("bytesets: Pick out of range")
}

// String renders the set in a compact character-class notation such as
// [a-z0-9_] with non-printable bytes escaped as \xNN.
func (s Set) String() string {
	if s.IsEmpty() {
		return "[]"
	}
	var b strings.Builder
	b.WriteByte('[')
	members := s.Bytes()
	for i := 0; i < len(members); {
		j := i
		for j+1 < len(members) && members[j+1] == members[j]+1 {
			j++
		}
		if j-i >= 2 {
			b.WriteString(escapeByte(members[i]))
			b.WriteByte('-')
			b.WriteString(escapeByte(members[j]))
		} else {
			for k := i; k <= j; k++ {
				b.WriteString(escapeByte(members[k]))
			}
		}
		i = j + 1
	}
	b.WriteByte(']')
	return b.String()
}

func escapeByte(c byte) string {
	switch c {
	case '\n':
		return `\n`
	case '\t':
		return `\t`
	case '\r':
		return `\r`
	case '\\', ']', '[', '-', '^':
		return `\` + string(c)
	}
	if c < 32 || c > 126 {
		return fmt.Sprintf(`\x%02x`, c)
	}
	return string(c)
}

// Printable is the set of printable ASCII characters (0x20..0x7e).
func Printable() Set { return Range(0x20, 0x7e) }

// PrintableWS is Printable plus tab and newline; this is the default
// character-generalization alphabet used by the learner.
func PrintableWS() Set {
	s := Printable()
	s.Add('\t')
	s.Add('\n')
	return s
}
