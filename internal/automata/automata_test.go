package automata

import (
	"math/rand"
	"strings"
	"testing"

	"glade/internal/bytesets"
	"glade/internal/rex"
)

var abc = []byte("abc")

func mustDFA(t *testing.T, e rex.Expr, alphabet []byte) *DFA {
	t.Helper()
	d := FromRex(e, alphabet)
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid DFA for %s: %v", rex.String(e), err)
	}
	return d
}

func TestFromRexLiteral(t *testing.T) {
	d := mustDFA(t, rex.Literal("ab"), abc)
	if !d.Accepts("ab") {
		t.Fatal("does not accept ab")
	}
	for _, s := range []string{"", "a", "b", "abc", "ba"} {
		if d.Accepts(s) {
			t.Fatalf("accepts %q", s)
		}
	}
}

func TestFromRexStar(t *testing.T) {
	d := mustDFA(t, rex.Rep(rex.Union(rex.Literal("ab"), rex.Literal("c"))), abc)
	for _, s := range []string{"", "ab", "c", "abc", "cab", "ababcc"} {
		if !d.Accepts(s) {
			t.Fatalf("does not accept %q", s)
		}
	}
	for _, s := range []string{"a", "b", "ba", "abca"} {
		if d.Accepts(s) {
			t.Fatalf("accepts %q", s)
		}
	}
}

func TestOutOfAlphabetRejected(t *testing.T) {
	d := mustDFA(t, rex.Rep(rex.OneOf(bytesets.OfString("abc"))), abc)
	if d.Accepts("abd") {
		t.Fatal("accepted input containing byte outside the alphabet")
	}
}

func TestMinimizeCollapsesStates(t *testing.T) {
	// (a+b)(a+b) has a minimal DFA with 4 states over {a,b}:
	// start, after-1, accept, dead.
	e := rex.Concat(
		rex.Union(rex.Literal("a"), rex.Literal("b")),
		rex.Union(rex.Literal("a"), rex.Literal("b")),
	)
	d := mustDFA(t, e, []byte("ab"))
	if d.NumStates() != 4 {
		t.Fatalf("NumStates = %d, want 4", d.NumStates())
	}
}

func TestMinimizePreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		e := randomExpr(rng, 4)
		d := FromRex(e, abc)
		m := rex.Compile(e)
		for k := 0; k < 30; k++ {
			s := randomString(rng, 8)
			if d.Accepts(s) != m.Match(s) {
				t.Fatalf("DFA disagrees with matcher on %q for %s", s, rex.String(e))
			}
		}
	}
}

func TestProductOps(t *testing.T) {
	a := mustDFA(t, rex.Rep(rex.Literal("a")), abc)  // a*
	b := mustDFA(t, rex.Rep(rex.Literal("aa")), abc) // (aa)*
	inter := Intersect(a, b)                         // (aa)*
	uni := Union(a, b)                               // a*
	diff := Difference(a, b)                         // odd-length a-strings
	for n := 0; n <= 7; n++ {
		s := strings.Repeat("a", n)
		if got, want := inter.Accepts(s), n%2 == 0; got != want {
			t.Fatalf("Intersect(%q) = %v", s, got)
		}
		if !uni.Accepts(s) {
			t.Fatalf("Union does not accept %q", s)
		}
		if got, want := diff.Accepts(s), n%2 == 1; got != want {
			t.Fatalf("Difference(%q) = %v", s, got)
		}
	}
	if inter.Accepts("b") || uni.Accepts("ba") {
		t.Fatal("product accepted strings outside both languages")
	}
}

func TestComplement(t *testing.T) {
	d := mustDFA(t, rex.Literal("ab"), abc)
	c := Complement(d)
	for _, s := range []string{"", "a", "ab", "abc", "ba"} {
		if c.Accepts(s) == d.Accepts(s) {
			t.Fatalf("complement agrees with original on %q", s)
		}
	}
}

func TestShortestAccepted(t *testing.T) {
	d := mustDFA(t, rex.Concat(rex.Rep(rex.Literal("c")), rex.Literal("ab")), abc)
	w, ok := ShortestAccepted(d)
	if !ok || w != "ab" {
		t.Fatalf("ShortestAccepted = %q,%v want ab,true", w, ok)
	}
	empty := mustDFA(t, rex.Union(), abc)
	if _, ok := ShortestAccepted(empty); ok {
		t.Fatal("ShortestAccepted found string in empty language")
	}
	if !Empty(empty) {
		t.Fatal("Empty(∅ DFA) = false")
	}
}

func TestEquivalent(t *testing.T) {
	// a(a)* vs (a)*a — same language.
	x := mustDFA(t, rex.Concat(rex.Literal("a"), rex.Rep(rex.Literal("a"))), abc)
	y := mustDFA(t, rex.Concat(rex.Rep(rex.Literal("a")), rex.Literal("a")), abc)
	if eq, w := Equivalent(x, y); !eq {
		t.Fatalf("equivalent automata reported different with witness %q", w)
	}
	z := mustDFA(t, rex.Rep(rex.Literal("a")), abc)
	eq, w := Equivalent(x, z)
	if eq {
		t.Fatal("different automata reported equivalent")
	}
	if w != "" {
		t.Fatalf("witness = %q, want empty string (shortest difference)", w)
	}
}

func TestSampleAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		e := randomExpr(rng, 4)
		d := FromRex(e, abc)
		for k := 0; k < 20; k++ {
			s, ok := Sample(d, rng, 12, 0.3)
			if !ok {
				break
			}
			if !d.Accepts(s) {
				t.Fatalf("sampled %q not accepted by DFA of %s", s, rex.String(e))
			}
			if len(s) > 12 {
				t.Fatalf("sample %q exceeds maxLen", s)
			}
		}
	}
}

func TestSampleEmptyLanguage(t *testing.T) {
	d := FromRex(rex.Union(), abc)
	if _, ok := Sample(d, rand.New(rand.NewSource(1)), 10, 0.5); ok {
		t.Fatal("sampled from empty language")
	}
}

func TestAlphabetOf(t *testing.T) {
	got := AlphabetOf("cab", "bd")
	want := "abcd"
	if string(got) != want {
		t.Fatalf("AlphabetOf = %q, want %q", got, want)
	}
}

// Property: minimization is idempotent and preserves equivalence.
func TestMinimizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 100; iter++ {
		e := randomExpr(rng, 4)
		d := FromRex(e, abc)
		m := Minimize(d)
		if m.NumStates() != d.NumStates() {
			t.Fatalf("Minimize not idempotent: %d -> %d states", d.NumStates(), m.NumStates())
		}
		if eq, w := Equivalent(d, m); !eq {
			t.Fatalf("minimized DFA differs, witness %q", w)
		}
	}
}

// Property: union/intersection via products agree with pointwise boolean
// combination of Accepts.
func TestProductPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 60; iter++ {
		a := FromRex(randomExpr(rng, 3), abc)
		b := FromRex(randomExpr(rng, 3), abc)
		u, n := Union(a, b), Intersect(a, b)
		for k := 0; k < 25; k++ {
			s := randomString(rng, 6)
			if u.Accepts(s) != (a.Accepts(s) || b.Accepts(s)) {
				t.Fatalf("Union pointwise mismatch on %q", s)
			}
			if n.Accepts(s) != (a.Accepts(s) && b.Accepts(s)) {
				t.Fatalf("Intersect pointwise mismatch on %q", s)
			}
		}
	}
}

func randomExpr(rng *rand.Rand, depth int) rex.Expr {
	if depth == 0 {
		return rex.Literal(string(rune('a' + rng.Intn(3))))
	}
	switch rng.Intn(5) {
	case 0:
		return rex.Literal(randomString(rng, 3))
	case 1:
		return rex.Concat(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 2:
		return rex.Union(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 3:
		return rex.Rep(randomExpr(rng, depth-1))
	default:
		return rex.OneOf(bytesets.OfString(randomString(rng, 2)))
	}
}

func randomString(rng *rand.Rand, maxLen int) string {
	n := rng.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(3))
	}
	return string(b)
}

func BenchmarkDeterminizeMinimize(b *testing.B) {
	e := rex.Rep(rex.Concat(
		rex.Literal("<a>"),
		rex.Rep(rex.Union(rex.Literal("h"), rex.Literal("i"))),
		rex.Literal("</a>"),
	))
	alphabet := []byte("<a>/hi")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromRex(e, alphabet)
	}
}
