// Package automata implements deterministic finite automata and the
// constructions needed by the L-Star and RPNI baseline learners: subset
// construction from regular expressions, minimization, boolean products,
// equivalence checking with counterexamples, and bounded random sampling.
//
// Automata operate over an explicit alphabet (a slice of bytes). Restricting
// the alphabet keeps observation tables small for L-Star, matching how the
// paper's evaluation instantiates libalf over the bytes occurring in the
// problem instance.
package automata

import (
	"fmt"
	"sort"

	"glade/internal/bytesets"
	"glade/internal/rex"
)

// DFA is a complete deterministic finite automaton. State 0 is the start
// state. Delta[s][a] is the successor of state s on Alphabet[a]; every state
// has a transition for every alphabet index (completeness), so a dead/sink
// state is explicit when needed. Accept[s] reports whether s is accepting.
type DFA struct {
	Alphabet []byte
	Delta    [][]int
	Accept   []bool
}

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return len(d.Delta) }

// index returns the alphabet index of byte c, or -1 if c is outside the
// alphabet.
func (d *DFA) index(c byte) int {
	for i, a := range d.Alphabet {
		if a == c {
			return i
		}
	}
	return -1
}

// Accepts reports whether the DFA accepts input. Inputs containing bytes
// outside the alphabet are rejected.
func (d *DFA) Accepts(input string) bool {
	s := 0
	for i := 0; i < len(input); i++ {
		a := d.index(input[i])
		if a < 0 {
			return false
		}
		s = d.Delta[s][a]
	}
	return d.Accept[s]
}

// Validate checks structural invariants and returns an error describing the
// first violation found.
func (d *DFA) Validate() error {
	if len(d.Delta) == 0 {
		return fmt.Errorf("automata: DFA has no states")
	}
	if len(d.Accept) != len(d.Delta) {
		return fmt.Errorf("automata: Accept length %d != %d states", len(d.Accept), len(d.Delta))
	}
	for s, row := range d.Delta {
		if len(row) != len(d.Alphabet) {
			return fmt.Errorf("automata: state %d has %d transitions, want %d", s, len(row), len(d.Alphabet))
		}
		for a, t := range row {
			if t < 0 || t >= len(d.Delta) {
				return fmt.Errorf("automata: state %d on %q goes to invalid state %d", s, d.Alphabet[a], t)
			}
		}
	}
	return nil
}

// FromRex compiles a regular expression to a minimal complete DFA over the
// given alphabet via Thompson NFA + subset construction + minimization.
func FromRex(e rex.Expr, alphabet []byte) *DFA {
	n := buildNFA(e)
	d := n.determinize(alphabet)
	return Minimize(d)
}

// nfa is a private epsilon-NFA used only as a stepping stone to DFAs.
type nfa struct {
	// trans[s] lists (byte-set, target) edges; eps[s] lists ε-targets.
	trans  [][]nEdge
	eps    [][]int
	start  int
	accept int
}

type nEdge struct {
	set bytesets.Set
	to  int
}

func buildNFA(e rex.Expr) *nfa {
	n := &nfa{}
	n.accept = n.newState()
	n.start = n.compile(e, n.accept)
	return n
}

func (n *nfa) newState() int {
	n.trans = append(n.trans, nil)
	n.eps = append(n.eps, nil)
	return len(n.trans) - 1
}

func (n *nfa) compile(e rex.Expr, next int) int {
	switch e := e.(type) {
	case *rex.Lit:
		entry := next
		for i := len(e.S) - 1; i >= 0; i-- {
			s := n.newState()
			n.trans[s] = append(n.trans[s], nEdge{bytesets.Of(e.S[i]), entry})
			entry = s
		}
		return entry
	case *rex.Class:
		s := n.newState()
		n.trans[s] = append(n.trans[s], nEdge{e.Set, next})
		return s
	case *rex.Seq:
		entry := next
		for i := len(e.Kids) - 1; i >= 0; i-- {
			entry = n.compile(e.Kids[i], entry)
		}
		return entry
	case *rex.Alt:
		s := n.newState()
		for _, k := range e.Kids {
			n.eps[s] = append(n.eps[s], n.compile(k, next))
		}
		return s
	case *rex.Star:
		loop := n.newState()
		body := n.compile(e.Kid, loop)
		n.eps[loop] = append(n.eps[loop], body, next)
		return loop
	default:
		panic("automata: unknown rex.Expr")
	}
}

func (n *nfa) closure(states map[int]bool) {
	var stack []int
	for s := range states {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.eps[s] {
			if !states[t] {
				states[t] = true
				stack = append(stack, t)
			}
		}
	}
}

func setKey(states map[int]bool) string {
	ids := make([]int, 0, len(states))
	for s := range states {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	return fmt.Sprint(ids)
}

func (n *nfa) determinize(alphabet []byte) *DFA {
	d := &DFA{Alphabet: append([]byte(nil), alphabet...)}
	type pending struct {
		id  int
		set map[int]bool
	}
	startSet := map[int]bool{n.start: true}
	n.closure(startSet)
	ids := map[string]int{setKey(startSet): 0}
	d.Delta = append(d.Delta, make([]int, len(alphabet)))
	d.Accept = append(d.Accept, startSet[n.accept])
	work := []pending{{0, startSet}}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for ai, c := range alphabet {
			next := map[int]bool{}
			for s := range cur.set {
				for _, e := range n.trans[s] {
					if e.set.Has(c) {
						next[e.to] = true
					}
				}
			}
			n.closure(next)
			key := setKey(next)
			id, ok := ids[key]
			if !ok {
				id = len(d.Delta)
				ids[key] = id
				d.Delta = append(d.Delta, make([]int, len(alphabet)))
				d.Accept = append(d.Accept, next[n.accept])
				work = append(work, pending{id, next})
			}
			d.Delta[cur.id][ai] = id
		}
	}
	return d
}

// Minimize returns an equivalent DFA with the minimum number of states
// (Moore's partition-refinement algorithm), with unreachable states removed.
func Minimize(d *DFA) *DFA {
	// Restrict to reachable states first.
	reach := make([]int, d.NumStates())
	for i := range reach {
		reach[i] = -1
	}
	order := []int{0}
	reach[0] = 0
	for qi := 0; qi < len(order); qi++ {
		s := order[qi]
		for _, t := range d.Delta[s] {
			if reach[t] < 0 {
				reach[t] = len(order)
				order = append(order, t)
			}
		}
	}
	// Initial partition: accepting vs non-accepting.
	class := make([]int, len(order))
	for i, s := range order {
		if d.Accept[s] {
			class[i] = 1
		}
	}
	numClasses := 2
	for {
		// Signature of a state: (class, class of successor per letter).
		sig := make(map[string]int)
		newClass := make([]int, len(order))
		next := 0
		for i, s := range order {
			key := fmt.Sprint(class[i], ":")
			for _, t := range d.Delta[s] {
				key += fmt.Sprint(class[reach[t]], ",")
			}
			id, ok := sig[key]
			if !ok {
				id = next
				next++
				sig[key] = id
			}
			newClass[i] = id
		}
		if next == numClasses {
			break
		}
		class, numClasses = newClass, next
	}
	// Renumber so the start state's class is 0.
	remap := make([]int, numClasses)
	for i := range remap {
		remap[i] = -1
	}
	nextID := 0
	assign := func(c int) int {
		if remap[c] < 0 {
			remap[c] = nextID
			nextID++
		}
		return remap[c]
	}
	assign(class[0])
	out := &DFA{Alphabet: append([]byte(nil), d.Alphabet...)}
	out.Delta = make([][]int, numClasses)
	out.Accept = make([]bool, numClasses)
	for i, s := range order {
		c := assign(class[i])
		if out.Delta[c] != nil {
			continue
		}
		row := make([]int, len(d.Alphabet))
		for a, t := range d.Delta[s] {
			row[a] = assign(class[reach[t]])
		}
		out.Delta[c] = row
		out.Accept[c] = d.Accept[s]
	}
	return out
}
