package automata

import (
	"math/rand"
	"sort"
)

// Product returns the product automaton of a and b with acceptance
// determined by combine(acceptA, acceptB). Both automata must share the same
// alphabet (same bytes in the same order).
func Product(a, b *DFA, combine func(bool, bool) bool) *DFA {
	if len(a.Alphabet) != len(b.Alphabet) {
		panic("automata: Product over mismatched alphabets")
	}
	for i := range a.Alphabet {
		if a.Alphabet[i] != b.Alphabet[i] {
			panic("automata: Product over mismatched alphabets")
		}
	}
	type pair struct{ x, y int }
	ids := map[pair]int{{0, 0}: 0}
	out := &DFA{Alphabet: append([]byte(nil), a.Alphabet...)}
	out.Delta = append(out.Delta, make([]int, len(a.Alphabet)))
	out.Accept = append(out.Accept, combine(a.Accept[0], b.Accept[0]))
	work := []pair{{0, 0}}
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		id := ids[p]
		for ai := range a.Alphabet {
			np := pair{a.Delta[p.x][ai], b.Delta[p.y][ai]}
			nid, ok := ids[np]
			if !ok {
				nid = len(out.Delta)
				ids[np] = nid
				out.Delta = append(out.Delta, make([]int, len(a.Alphabet)))
				out.Accept = append(out.Accept, combine(a.Accept[np.x], b.Accept[np.y]))
				work = append(work, np)
			}
			out.Delta[id][ai] = nid
		}
	}
	return out
}

// Intersect returns a DFA for L(a) ∩ L(b).
func Intersect(a, b *DFA) *DFA {
	return Product(a, b, func(x, y bool) bool { return x && y })
}

// Union returns a DFA for L(a) ∪ L(b).
func Union(a, b *DFA) *DFA {
	return Product(a, b, func(x, y bool) bool { return x || y })
}

// Difference returns a DFA for L(a) \ L(b).
func Difference(a, b *DFA) *DFA {
	return Product(a, b, func(x, y bool) bool { return x && !y })
}

// Complement returns a DFA for the complement of L(d) relative to
// Alphabet*.
func Complement(d *DFA) *DFA {
	out := &DFA{Alphabet: append([]byte(nil), d.Alphabet...)}
	out.Delta = make([][]int, d.NumStates())
	out.Accept = make([]bool, d.NumStates())
	for s := range d.Delta {
		out.Delta[s] = append([]int(nil), d.Delta[s]...)
		out.Accept[s] = !d.Accept[s]
	}
	return out
}

// ShortestAccepted returns a shortest accepted string via BFS, and false if
// the language is empty.
func ShortestAccepted(d *DFA) (string, bool) {
	type node struct {
		state int
		prev  int // index into visitOrder, -1 for start
		via   byte
	}
	visited := make([]bool, d.NumStates())
	visitOrder := []node{{0, -1, 0}}
	visited[0] = true
	for qi := 0; qi < len(visitOrder); qi++ {
		cur := visitOrder[qi]
		if d.Accept[cur.state] {
			// Reconstruct the path.
			var rev []byte
			for i := qi; visitOrder[i].prev >= 0; i = visitOrder[i].prev {
				rev = append(rev, visitOrder[i].via)
			}
			for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
				rev[l], rev[r] = rev[r], rev[l]
			}
			return string(rev), true
		}
		for ai, t := range d.Delta[cur.state] {
			if !visited[t] {
				visited[t] = true
				visitOrder = append(visitOrder, node{t, qi, d.Alphabet[ai]})
			}
		}
	}
	return "", false
}

// Equivalent reports whether L(a) = L(b); when not, it also returns a
// shortest string witnessing the difference.
func Equivalent(a, b *DFA) (bool, string) {
	sym := Union(Difference(a, b), Difference(b, a))
	w, found := ShortestAccepted(sym)
	if found {
		return false, w
	}
	return true, ""
}

// Empty reports whether L(d) = ∅.
func Empty(d *DFA) bool {
	_, found := ShortestAccepted(d)
	return !found
}

// Sample draws a random accepted string of length at most maxLen, and false
// if no accepted string of length ≤ maxLen exists. Sampling walks the DFA
// choosing uniformly among (letter, successor) moves that can still reach an
// accepting state within the remaining budget, stopping at accepting states
// with probability stopP.
func Sample(d *DFA, rng *rand.Rand, maxLen int, stopP float64) (string, bool) {
	// dist[s] = length of shortest accepted suffix from s (or -1).
	dist := shortestAcceptDistances(d)
	if dist[0] < 0 || dist[0] > maxLen {
		return "", false
	}
	var out []byte
	s := 0
	for len(out) <= maxLen {
		if d.Accept[s] && (rng.Float64() < stopP || len(out) == maxLen) {
			return string(out), true
		}
		// Candidate moves that keep an accepting state reachable in budget.
		budget := maxLen - len(out) - 1
		var moves []int
		for ai, t := range d.Delta[s] {
			if dist[t] >= 0 && dist[t] <= budget {
				moves = append(moves, ai)
			}
		}
		if len(moves) == 0 {
			if d.Accept[s] {
				return string(out), true
			}
			return "", false
		}
		ai := moves[rng.Intn(len(moves))]
		out = append(out, d.Alphabet[ai])
		s = d.Delta[s][ai]
	}
	if d.Accept[s] {
		return string(out), true
	}
	return "", false
}

func shortestAcceptDistances(d *DFA) []int {
	dist := make([]int, d.NumStates())
	for i := range dist {
		dist[i] = -1
	}
	// Multi-source BFS on reversed edges from accepting states.
	rev := make([][]int, d.NumStates())
	for s, row := range d.Delta {
		for _, t := range row {
			rev[t] = append(rev[t], s)
		}
	}
	var queue []int
	for s, acc := range d.Accept {
		if acc {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		for _, p := range rev[s] {
			if dist[p] < 0 {
				dist[p] = dist[s] + 1
				queue = append(queue, p)
			}
		}
	}
	return dist
}

// AlphabetOf returns the sorted union of the bytes in the given strings —
// the alphabet a learner is run over when only examples are available.
func AlphabetOf(examples ...string) []byte {
	seen := map[byte]bool{}
	for _, e := range examples {
		for i := 0; i < len(e); i++ {
			seen[e[i]] = true
		}
	}
	out := make([]byte, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
