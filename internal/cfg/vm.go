package cfg

import "glade/internal/bytesets"

// vm.go is the second rung of the recognition ladder: the compiled IR is
// lowered to a compact bytecode program executed by a backtracking
// recognizer VM. The VM explores leftmost derivations depth-first —
// alternatives push choice points, nonterminals push continuation frames
// onto a persistent (never-mutated) arena so restoring a choice point is
// O(1) — and decides membership exactly when the search finishes within
// its step budget. Inputs that exhaust the budget return vmUnknown and
// fall through to the pooled Earley rung, which stays the reference.
//
// Lowering first normalizes each nonterminal's alternatives in three
// language-preserving steps that matter enormously on learned grammars
// (whose nonterminals carry long unit chains and many overlapping
// one-byte alternatives — raw backtracking over those is exponential):
//
//   - unit closure: alternatives that are a bare nonterminal are replaced
//     by that nonterminal's own (transitively resolved) alternatives, so
//     unit cycles vanish instead of looping;
//   - deduplication: byte-identical right-hand sides collapse to one;
//   - single-terminal union: all alternatives that are exactly one
//     terminal class merge into one alternative over the classes' union,
//     cutting the per-byte branching factor to one.
//
// Every non-nullable alternative is guarded by its precomputed FIRST-byte
// set, so the VM skips alternatives that cannot match the next input byte
// in one instruction. Grammars that are left-recursive after
// normalization (the depth-first search would not terminate), or whose
// lowered program exceeds the code budget, are not lowered at all —
// Compile leaves vm == nil and the ladder runs DFA → Earley.

// VM opcodes. Operands live in vmInst.a / vmInst.b.
const (
	vmOpClass  int32 = iota // a: class index — consume one byte ∈ classes[a]
	vmOpCall                // a: nonterminal — push continuation, enter its code
	vmOpReturn              // pop continuation; at top level, accept iff input consumed
	vmOpSplit               // a: pc — push a choice point resuming at a
	vmOpGuard               // a: class, b: pc — unless next byte ∈ classes[a], go to b (b < 0: fail)
	vmOpFail                // unconditional fail (nonterminal with no alternatives)
)

// vmInst is one VM instruction.
type vmInst struct{ op, a, b int32 }

// vmProgram is a lowered grammar: one contiguous code segment plus the
// entry pc of every nonterminal (calls resolve through ntEntry, so
// lowering needs no fixups).
type vmProgram struct {
	code    []vmInst
	ntEntry []int32
}

const (
	// vmMaxCode bounds the lowered program; unit closure can duplicate
	// shared production bodies, so pathological grammars are refused
	// rather than inflated.
	vmMaxCode = 1 << 17
	// vmStepsBase and vmStepsPerByte set the per-input step budget. The
	// budget is the determinism escape hatch: a backtracking search that
	// exceeds linear-with-headroom work bails to the Earley rung instead
	// of going exponential.
	vmStepsBase    = 4096
	vmStepsPerByte = 256
	// vmMaxFrames bounds the choice-point stack and the continuation
	// arena (each ≤ 12 bytes/entry), independent of the step budget.
	vmMaxFrames = 1 << 19
	// vmMaxPooledFrames bounds what a pooled scratch may retain.
	vmMaxPooledFrames = 1 << 16
)

// runVM verdicts.
const (
	vmReject int32 = iota
	vmAccept
	vmUnknown
)

// vmCont is one continuation frame: return to ret, then continue with the
// parent chain. Frames are append-only within a run, so choice points can
// reference them by index and restore in O(1).
type vmCont struct{ ret, parent int32 }

// vmFrame is one choice point: resume at pc with the saved position and
// continuation chain.
type vmFrame struct{ pc, pos, cont int32 }

// vmScratch is the reusable per-run state of one VM execution.
type vmScratch struct {
	bt   []vmFrame
	cont []vmCont
}

func (c *Compiled) getVMScratch() *vmScratch {
	if sc, ok := c.vmScratch.Get().(*vmScratch); ok {
		return sc
	}
	return &vmScratch{}
}

func (c *Compiled) putVMScratch(sc *vmScratch) {
	if cap(sc.bt)+cap(sc.cont) > vmMaxPooledFrames {
		return
	}
	c.vmScratch.Put(sc)
}

// runVM executes the lowered program on input and returns vmAccept,
// vmReject, or vmUnknown when the step budget or a frame bound is hit.
func (c *Compiled) runVM(sc *vmScratch, input string) int32 {
	vm := c.vm
	n := int32(len(input))
	pc := vm.ntEntry[c.start]
	pos := int32(0)
	cont := int32(-1)
	sc.bt = sc.bt[:0]
	sc.cont = sc.cont[:0]
	steps := vmStepsBase + vmStepsPerByte*int(n)
	for {
		steps--
		if steps < 0 {
			return vmUnknown
		}
		in := vm.code[pc]
		switch in.op {
		case vmOpClass:
			if pos < n && c.classes[in.a].Has(input[pos]) {
				pos++
				pc++
				continue
			}
		case vmOpGuard:
			if pos < n && c.classes[in.a].Has(input[pos]) {
				pc++
				continue
			}
			if in.b >= 0 {
				pc = in.b
				continue
			}
		case vmOpSplit:
			if len(sc.bt) >= vmMaxFrames {
				return vmUnknown
			}
			sc.bt = append(sc.bt, vmFrame{pc: in.a, pos: pos, cont: cont})
			pc++
			continue
		case vmOpCall:
			if len(sc.cont) >= vmMaxFrames {
				return vmUnknown
			}
			sc.cont = append(sc.cont, vmCont{ret: pc + 1, parent: cont})
			cont = int32(len(sc.cont) - 1)
			pc = vm.ntEntry[in.a]
			continue
		case vmOpReturn:
			if cont >= 0 {
				f := sc.cont[cont]
				pc = f.ret
				cont = f.parent
				continue
			}
			if pos == n {
				return vmAccept
			}
		case vmOpFail:
			// fall through to backtrack
		}
		// Fail: restore the most recent choice point, or reject.
		if len(sc.bt) == 0 {
			return vmReject
		}
		f := sc.bt[len(sc.bt)-1]
		sc.bt = sc.bt[:len(sc.bt)-1]
		pc, pos, cont = f.pc, f.pos, f.cont
	}
}

// vmAlt is one normalized alternative: the right-hand side in arena
// encoding (≥ 0 nonterminal, < 0 ^class) and the FIRST-byte guard class
// (-1 when the alternative derives ε and must always be tried).
type vmAlt struct {
	syms  []int32
	guard int32
}

// lowerVM lowers the IR to bytecode, or returns nil when the grammar is
// ineligible (left-recursive after normalization, or over the code
// budget).
func (c *Compiled) lowerVM() *vmProgram {
	alts, ok := c.vmAlternatives()
	if !ok {
		return nil
	}
	reach := c.vmReachable(alts)
	if c.vmLeftRecursive(alts, reach) {
		return nil
	}
	vm := &vmProgram{ntEntry: make([]int32, c.NumNT())}
	failPC := int32(-1)
	for nt := range vm.ntEntry {
		vm.ntEntry[nt] = -1
	}
	for nt := 0; nt < c.NumNT(); nt++ {
		if !reach[nt] {
			continue
		}
		as := alts[nt]
		if len(as) == 0 {
			if failPC < 0 {
				failPC = int32(len(vm.code))
				vm.code = append(vm.code, vmInst{op: vmOpFail})
			}
			vm.ntEntry[nt] = failPC
			continue
		}
		vm.ntEntry[nt] = int32(len(vm.code))
		for i, alt := range as {
			last := i == len(as)-1
			guardIdx, splitIdx := -1, -1
			if alt.guard >= 0 {
				guardIdx = len(vm.code)
				vm.code = append(vm.code, vmInst{op: vmOpGuard, a: alt.guard, b: -1})
			}
			if !last {
				splitIdx = len(vm.code)
				vm.code = append(vm.code, vmInst{op: vmOpSplit})
			}
			for _, s := range alt.syms {
				if s < 0 {
					vm.code = append(vm.code, vmInst{op: vmOpClass, a: ^s})
				} else {
					vm.code = append(vm.code, vmInst{op: vmOpCall, a: s})
				}
			}
			vm.code = append(vm.code, vmInst{op: vmOpReturn})
			next := int32(len(vm.code))
			if !last {
				if guardIdx >= 0 {
					vm.code[guardIdx].b = next
				}
				vm.code[splitIdx].a = next
			}
			if len(vm.code) > vmMaxCode {
				return nil
			}
		}
	}
	return vm
}

// vmAlternatives builds the normalized per-nonterminal alternative lists:
// unit closure, duplicate removal, single-terminal union. The bool result
// is false when normalization exceeds the code budget.
func (c *Compiled) vmAlternatives() ([][]vmAlt, bool) {
	numNT := c.NumNT()
	alts := make([][]vmAlt, numNT)
	total := 0
	for nt := 0; nt < numNT; nt++ {
		// Unit closure: collect nt plus every nonterminal reachable via
		// alternatives that are exactly one nonterminal symbol.
		members := []int32{int32(nt)}
		seen := map[int32]bool{int32(nt): true}
		for i := 0; i < len(members); i++ {
			m := members[i]
			for p := c.ntProd[m]; p < c.ntProd[m+1]; p++ {
				if c.prodLen(p) == 1 && c.arena[c.prodOff[p]] >= 0 {
					t := c.arena[c.prodOff[p]]
					if !seen[t] {
						seen[t] = true
						members = append(members, t)
					}
				}
			}
		}
		// Gather the non-unit alternatives of the closure, deduplicated,
		// with single-terminal alternatives pulled aside for the union.
		var union bytesets.Set
		haveUnion := false
		dedup := map[string]bool{}
		for _, m := range members {
			for p := c.ntProd[m]; p < c.ntProd[m+1]; p++ {
				syms := c.arena[c.prodOff[p]:c.prodOff[p+1]]
				if len(syms) == 1 && syms[0] >= 0 {
					continue // unit alternative, resolved by the closure
				}
				if len(syms) == 1 && syms[0] < 0 {
					union = union.Union(c.classes[^syms[0]])
					haveUnion = true
					continue
				}
				key := symsKey(syms)
				if dedup[key] {
					continue
				}
				dedup[key] = true
				guard := int32(-1)
				if !c.prodNullable[p] {
					guard = c.classIndex(c.prodFirst[p])
				}
				alts[nt] = append(alts[nt], vmAlt{syms: syms, guard: guard})
				total += len(syms) + 2
			}
		}
		if haveUnion {
			ci := c.classIndex(union)
			alts[nt] = append(alts[nt], vmAlt{syms: []int32{^ci}, guard: ci})
			total += 3
		}
		if total > vmMaxCode {
			return nil, false
		}
	}
	return alts, true
}

// symsKey renders an arena slice as a map key for duplicate detection.
func symsKey(syms []int32) string {
	b := make([]byte, 0, len(syms)*4)
	for _, s := range syms {
		b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return string(b)
}

// vmReachable marks the nonterminals reachable from the start symbol
// through the normalized alternatives — the set the VM can ever call.
func (c *Compiled) vmReachable(alts [][]vmAlt) []bool {
	reach := make([]bool, c.NumNT())
	reach[c.start] = true
	stack := []int32{c.start}
	for len(stack) > 0 {
		nt := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, alt := range alts[nt] {
			for _, s := range alt.syms {
				if s >= 0 && !reach[s] {
					reach[s] = true
					stack = append(stack, s)
				}
			}
		}
	}
	return reach
}

// vmLeftRecursive reports whether any reachable nonterminal is
// left-recursive under the normalized alternatives, counting nullable
// prefixes (hidden left recursion): A → B if some alternative of A
// reaches B after a possibly-empty sequence of nullable nonterminals.
// A left-recursive grammar would send the depth-first search into an
// unproductive loop, so such grammars keep the Earley rung instead.
func (c *Compiled) vmLeftRecursive(alts [][]vmAlt, reach []bool) bool {
	numNT := c.NumNT()
	adj := make([][]int32, numNT)
	for nt := 0; nt < numNT; nt++ {
		if !reach[nt] {
			continue
		}
		for _, alt := range alts[nt] {
			for _, s := range alt.syms {
				if s < 0 {
					break // terminal: nothing further is a left corner
				}
				adj[nt] = append(adj[nt], s)
				if !c.nullable[s] {
					break
				}
			}
		}
	}
	// Iterative three-color DFS for a cycle among reachable nonterminals.
	color := make([]int8, numNT) // 0 white, 1 gray, 2 black
	type frame struct {
		nt   int32
		next int
	}
	for root := 0; root < numNT; root++ {
		if !reach[root] || color[root] != 0 {
			continue
		}
		stack := []frame{{nt: int32(root)}}
		color[root] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.nt]) {
				t := adj[f.nt][f.next]
				f.next++
				switch color[t] {
				case 0:
					color[t] = 1
					stack = append(stack, frame{nt: t})
				case 1:
					return true
				}
				continue
			}
			color[f.nt] = 2
			stack = stack[:len(stack)-1]
		}
	}
	return false
}

// classIndex interns set into the class table, reusing an existing entry
// when one matches. Only called during Compile, before the Compiled is
// shared.
func (c *Compiled) classIndex(set bytesets.Set) int32 {
	for i, s := range c.classes {
		if s.Equal(set) {
			return int32(i)
		}
	}
	c.classes = append(c.classes, set)
	return int32(len(c.classes) - 1)
}
