package cfg

// The compiled recognizer is the same Earley algorithm as Parser (with the
// Aycock–Horspool nullable shortcut), restructured for throughput:
//
//   - chart rows are append-only slices of fixed-width items, not
//     map[item]bool sets;
//   - per-row item deduplication uses a generation-stamped table indexed
//     by dotted state, so nothing is cleared between rows or inputs;
//   - the "items waiting at position k for nonterminal A" table is an
//     intrusive linked list threaded through each row's item slice;
//   - prediction consults the precomputed FIRST-byte sets, skipping
//     productions that can neither start with the next input byte nor
//     derive ε — on learned grammars, whose nonterminals carry many
//     alternative literal productions, this prunes most of the chart;
//   - all scratch state lives in a per-Compiled sync.Pool, so a steady
//     state Accepts performs no heap allocation at all.
//
// Unlike Parser, the compiled engine is a recognizer only: it answers
// membership but does not retain the completed-span index a parse tree
// needs. Tree extraction (seed parsing in fuzz.Grammar) stays on Parser.

// citem is one Earley item: production prod (global index) with the dot
// dot symbols in, started at input position origin. waitNext threads the
// same-row list of items waiting on a given nonterminal (-1 terminates).
type citem struct {
	prod     int32
	dot      int32
	origin   int32
	waitNext int32
}

// crow is one chart row: the item set for one input position plus the
// heads of its per-nonterminal waiting lists.
type crow struct {
	items    []citem
	waitHead []int32
}

// earleyScratch is the reusable per-run state of one recognition. stamp
// and origins implement row-scoped item dedup: stamp[ds] marks the last
// row (identified by stampVal) that touched dotted state ds, and
// origins[ds] lists the origins already added for it in that row.
type earleyScratch struct {
	rows     []crow
	stamp    []uint64
	origins  [][]int32
	stampVal uint64
}

// maxPooledRows and maxPooledItems bound the chart a scratch may retain in
// the pool — rows bound the input length, items the total chart width
// (Earley charts are O(n²) items on ambiguous grammars, so a single wide
// input could otherwise pin tens of MB per pooled scratch for the process
// lifetime). An over-budget scratch is simply dropped and rebuilt.
const (
	maxPooledRows  = 1 << 14
	maxPooledItems = 1 << 20 // ~16 MB of items at 16 bytes each
)

func (c *Compiled) getScratch() *earleyScratch {
	if sc, ok := c.scratch.Get().(*earleyScratch); ok {
		return sc
	}
	n := len(c.arena) + c.numProds()
	return &earleyScratch{
		stamp:   make([]uint64, n),
		origins: make([][]int32, n),
	}
}

func (c *Compiled) putScratch(sc *earleyScratch) {
	if cap(sc.rows) > maxPooledRows {
		return
	}
	retained := 0
	for _, row := range sc.rows[:cap(sc.rows)] {
		retained += cap(row.items)
	}
	if retained > maxPooledItems {
		return
	}
	c.scratch.Put(sc)
}

// run executes one recognition over the pooled scratch.
func (c *Compiled) run(sc *earleyScratch, input string) bool {
	n := len(input)
	sc.prepare(n + 1)

	// Seed row 0 with the start productions and process it.
	sc.stampVal++
	sc.initRow(0, c.NumNT())
	for p := c.ntProd[c.start]; p < c.ntProd[c.start+1]; p++ {
		if c.predictable(p, input, 0) {
			c.add(sc, 0, p, 0, 0)
		}
	}
	accepted := c.process(sc, 0, input)

	for pos := 0; pos < n; pos++ {
		// Scan: advance every item whose next symbol is a terminal class
		// containing input[pos] into the next row, then process it.
		sc.stampVal++
		sc.initRow(pos+1, c.NumNT())
		b := input[pos]
		row := &sc.rows[pos]
		for qi := range row.items {
			it := row.items[qi]
			if int(it.dot) == c.prodLen(it.prod) {
				continue
			}
			sym := c.arena[c.prodOff[it.prod]+it.dot]
			if sym < 0 && c.classes[^sym].Has(b) {
				c.add(sc, pos+1, it.prod, it.dot+1, it.origin)
			}
		}
		if len(sc.rows[pos+1].items) == 0 {
			// Dead end: no item survives this byte, so no later row can
			// ever fill and the input is rejected.
			return false
		}
		if c.process(sc, pos+1, input) {
			accepted = true
		}
	}
	return accepted
}

// process drains row pos (items are their own work queue: the slice only
// grows, and qi chases its end), applying prediction and completion. It
// returns whether a completion proved start ⇒* input (only possible when
// pos is the final row).
func (c *Compiled) process(sc *earleyScratch, pos int, input string) bool {
	accepted := false
	final := pos == len(input)
	row := &sc.rows[pos]
	for qi := 0; qi < len(row.items); qi++ {
		it := row.items[qi]
		if int(it.dot) == c.prodLen(it.prod) {
			// Completion: prodNT[it.prod] derives input[it.origin:pos].
			// Advance every item waiting on it at the origin row. When
			// origin == pos the waiting list may still grow behind this
			// walk, but any item registered later meets the nullable
			// shortcut instead: an empty span proves the nonterminal
			// nullable, and prediction advances over nullable
			// nonterminals immediately.
			nt := c.prodNT[it.prod]
			if final && nt == c.start && it.origin == 0 {
				accepted = true
			}
			wi := sc.rows[it.origin].waitHead[nt]
			for wi >= 0 {
				w := sc.rows[it.origin].items[wi]
				c.add(sc, pos, w.prod, w.dot+1, w.origin)
				wi = w.waitNext
			}
			continue
		}
		sym := c.arena[c.prodOff[it.prod]+it.dot]
		if sym < 0 {
			continue // terminal: the scan pass between rows handles it
		}
		// Prediction: register the item as waiting on sym, predict sym's
		// productions (FIRST-pruned), and take the nullable shortcut.
		row.items[qi].waitNext = row.waitHead[sym]
		row.waitHead[sym] = int32(qi)
		for p := c.ntProd[sym]; p < c.ntProd[sym+1]; p++ {
			if c.predictable(p, input, pos) {
				c.add(sc, pos, p, 0, int32(pos))
			}
		}
		if c.nullable[sym] {
			c.add(sc, pos, it.prod, it.dot+1, it.origin)
		}
	}
	return accepted
}

// predictable reports whether predicting production p at input position
// pos can contribute to any derivation: p must either derive ε or be able
// to produce input[pos] as its first byte (at the end of the input only ε
// remains). Skipping the rest is what keeps learned-grammar charts small.
func (c *Compiled) predictable(p int32, input string, pos int) bool {
	if c.prodNullable[p] {
		return true
	}
	return pos < len(input) && c.prodFirst[p].Has(input[pos])
}

// add inserts item (prod, dot, origin) into row pos unless the row already
// holds it. Dedup is by dotted state: ds enumerates (prod, dot) pairs
// compactly, and the stamped origins list scopes seen-origins to the
// current row without any clearing.
func (c *Compiled) add(sc *earleyScratch, pos int, prod, dot, origin int32) {
	ds := int(c.prodOff[prod]) + int(prod) + int(dot)
	if sc.stamp[ds] != sc.stampVal {
		sc.stamp[ds] = sc.stampVal
		sc.origins[ds] = sc.origins[ds][:0]
	}
	for _, o := range sc.origins[ds] {
		if o == origin {
			return
		}
	}
	sc.origins[ds] = append(sc.origins[ds], origin)
	sc.rows[pos].items = append(sc.rows[pos].items, citem{prod: prod, dot: dot, origin: origin, waitNext: -1})
}

// prepare sizes the scratch for a chart of rows rows.
func (sc *earleyScratch) prepare(rows int) {
	if cap(sc.rows) < rows {
		sc.rows = append(sc.rows[:cap(sc.rows)], make([]crow, rows-cap(sc.rows))...)
	}
	sc.rows = sc.rows[:rows]
}

// initRow resets row pos for the current input: empty item set, empty
// waiting lists.
func (sc *earleyScratch) initRow(pos, numNT int) {
	row := &sc.rows[pos]
	row.items = row.items[:0]
	if cap(row.waitHead) < numNT {
		row.waitHead = make([]int32, numNT)
	}
	row.waitHead = row.waitHead[:numNT]
	for i := range row.waitHead {
		row.waitHead[i] = -1
	}
}
