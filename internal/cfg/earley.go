package cfg

import (
	"fmt"
	"sort"
)

// Parser is an Earley recognizer/parser for a fixed grammar. It is safe for
// sequential reuse across inputs; it is not safe for concurrent use.
type Parser struct {
	g        *Grammar
	nullable []bool
}

// NewParser compiles g into a Parser.
func NewParser(g *Grammar) *Parser {
	return &Parser{g: g, nullable: g.Nullable()}
}

// item is an Earley item: production Prods[nt][prod], dot position, origin.
type item struct {
	nt, prod, dot, origin int
}

// chart holds, for each input position, the item set and, for parse-tree
// extraction, the set of completed spans.
type chart struct {
	sets []map[item]bool
	// completed[nt] maps start position to the sorted list of end positions
	// such that nt derives input[start:end].
	completed []map[int][]int
}

// Accepts reports whether input ∈ L(g).
func (p *Parser) Accepts(input string) bool {
	ch := p.run(input)
	return p.accepted(ch, input)
}

func (p *Parser) accepted(ch *chart, input string) bool {
	for _, end := range ch.completed[p.g.Start][0] {
		if end == len(input) {
			return true
		}
	}
	return false
}

// run executes the Earley algorithm and returns the filled chart.
func (p *Parser) run(input string) *chart {
	g := p.g
	n := len(input)
	ch := &chart{
		sets:      make([]map[item]bool, n+1),
		completed: make([]map[int][]int, g.NumNT()),
	}
	for i := range ch.sets {
		ch.sets[i] = map[item]bool{}
	}
	for nt := range ch.completed {
		ch.completed[nt] = map[int][]int{}
	}
	// itemsByOrigin[k] lists items waiting at position k for a completion:
	// index of items in set k whose next symbol is a nonterminal.
	type wait struct{ it item }
	waiting := make([]map[int][]item, n+1) // waiting[k][nt] = items at k expecting nt
	for i := range waiting {
		waiting[i] = map[int][]item{}
	}
	recordComplete := func(nt, start, end int) {
		ends := ch.completed[nt][start]
		idx := sort.SearchInts(ends, end)
		if idx < len(ends) && ends[idx] == end {
			return
		}
		ends = append(ends, 0)
		copy(ends[idx+1:], ends[idx:])
		ends[idx] = end
		ch.completed[nt][start] = ends
	}

	var queue []item
	add := func(pos int, it item) {
		if !ch.sets[pos][it] {
			ch.sets[pos][it] = true
			queue = append(queue, it)
		}
	}

	process := func(pos int) {
		for len(queue) > 0 {
			it := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			rhs := g.Prods[it.nt][it.prod]
			if it.dot == len(rhs) {
				// Completion: nt derives input[origin:pos].
				recordComplete(it.nt, it.origin, pos)
				for _, w := range waiting[it.origin][it.nt] {
					add(pos, item{w.nt, w.prod, w.dot + 1, w.origin})
				}
				continue
			}
			sym := rhs[it.dot]
			if sym.IsNT() {
				// Prediction.
				waiting[pos][sym.NT] = append(waiting[pos][sym.NT], it)
				for pi := range g.Prods[sym.NT] {
					add(pos, item{sym.NT, pi, 0, pos})
				}
				// Aycock–Horspool nullable shortcut: if the predicted
				// nonterminal is nullable, advance over it immediately.
				if p.nullable[sym.NT] {
					recordComplete(sym.NT, pos, pos)
					add(pos, item{it.nt, it.prod, it.dot + 1, it.origin})
				}
			}
			// Terminals are handled by the scan pass between positions.
		}
	}

	// Seed with the start productions.
	for pi := range g.Prods[g.Start] {
		add(0, item{g.Start, pi, 0, 0})
	}
	process(0)
	for pos := 0; pos < n; pos++ {
		c := input[pos]
		for it := range ch.sets[pos] {
			rhs := g.Prods[it.nt][it.prod]
			if it.dot < len(rhs) {
				sym := rhs[it.dot]
				if !sym.IsNT() && sym.Set.Has(c) {
					add(pos+1, item{it.nt, it.prod, it.dot + 1, it.origin})
				}
			}
		}
		process(pos + 1)
		if len(ch.sets[pos+1]) == 0 {
			// Dead end: no further progress is possible; the remaining
			// charts stay empty and the input is rejected.
			break
		}
	}
	return ch
}

// Tree is a parse-tree node for a nonterminal. Kids holds one subtree per
// nonterminal symbol on the production's right-hand side, in order;
// terminal symbols contribute to Text but not to Kids.
type Tree struct {
	NT   int
	Prod int
	Lo   int // span start in the input
	Hi   int // span end in the input
	Kids []*Tree
}

// Text returns the substring of input this node derives.
func (t *Tree) Text(input string) string { return input[t.Lo:t.Hi] }

// Nodes appends all nodes of the subtree (preorder) to dst and returns it.
func (t *Tree) Nodes(dst []*Tree) []*Tree {
	dst = append(dst, t)
	for _, k := range t.Kids {
		dst = k.Nodes(dst)
	}
	return dst
}

// Parse returns a parse tree for input, or an error if input ∉ L(g). When
// the grammar is ambiguous an arbitrary derivation is returned.
func (p *Parser) Parse(input string) (*Tree, error) {
	ch := p.run(input)
	if !p.accepted(ch, input) {
		return nil, fmt.Errorf("cfg: input not in language (len %d)", len(input))
	}
	b := &builder{
		p: p, ch: ch, input: input,
		failed:      map[buildKey]bool{},
		splitFailed: map[splitKey]bool{},
		inProgress:  map[buildKey]bool{},
	}
	t := b.build(p.g.Start, 0, len(input))
	if t == nil {
		return nil, fmt.Errorf("cfg: internal error: accepted input has no derivation")
	}
	return t, nil
}

type buildKey struct{ nt, i, j int }

type splitKey struct{ nt, prod, k, pos, j int }

// builder reconstructs one derivation from a filled chart, memoizing
// failures so backtracking stays polynomial.
type builder struct {
	p           *Parser
	ch          *chart
	input       string
	failed      map[buildKey]bool
	splitFailed map[splitKey]bool
	// inProgress guards against unit-production cycles (A ⇒ B ⇒ A over the
	// same span): re-entering a key already on the recursion stack returns
	// nil, forcing the builder to pick an acyclic derivation, which must
	// exist for any accepted input. guardHits counts guard activations so
	// failures observed under a guard are not memoized permanently.
	inProgress map[buildKey]bool
	guardHits  int
}

// build reconstructs a derivation of nt over input[i:j] from the chart.
func (b *builder) build(nt, i, j int) *Tree {
	key := buildKey{nt, i, j}
	if b.failed[key] {
		return nil
	}
	if b.inProgress[key] {
		b.guardHits++
		return nil
	}
	b.inProgress[key] = true
	defer delete(b.inProgress, key)
	before := b.guardHits
	for pi := range b.p.g.Prods[nt] {
		if kids := b.split(nt, pi, 0, i, j); kids != nil {
			return &Tree{NT: nt, Prod: pi, Lo: i, Hi: j, Kids: kids}
		}
	}
	if b.guardHits == before {
		b.failed[key] = true
	}
	return nil
}

// split tries to derive input[pos:j] from rhs[k:] of production prod of nt,
// returning the child subtrees for the nonterminal symbols, or nil if
// impossible. The returned slice is non-nil (possibly empty) on success.
func (b *builder) split(nt, prod, k, pos, j int) []*Tree {
	key := splitKey{nt, prod, k, pos, j}
	if b.splitFailed[key] {
		return nil
	}
	before := b.guardHits
	rhs := b.p.g.Prods[nt][prod]
	if k == len(rhs) {
		if pos == j {
			return []*Tree{}
		}
		b.splitFailed[key] = true
		return nil
	}
	sym := rhs[k]
	if !sym.IsNT() {
		if pos < j && sym.Set.Has(b.input[pos]) {
			if rest := b.split(nt, prod, k+1, pos+1, j); rest != nil {
				return rest
			}
		}
		if b.guardHits == before {
			b.splitFailed[key] = true
		}
		return nil
	}
	// Try every recorded completion of sym.NT starting at pos, longest
	// first: synthesized grammars are repetition-heavy, and preferring the
	// longest completion first reaches the unique split quickly.
	ends := b.ch.completed[sym.NT][pos]
	for e := len(ends) - 1; e >= 0; e-- {
		end := ends[e]
		if end > j {
			continue
		}
		rest := b.split(nt, prod, k+1, end, j)
		if rest == nil {
			continue
		}
		kid := b.build(sym.NT, pos, end)
		if kid == nil {
			continue
		}
		return append([]*Tree{kid}, rest...)
	}
	if b.guardHits == before {
		b.splitFailed[key] = true
	}
	return nil
}
