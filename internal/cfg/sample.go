package cfg

import (
	"math/rand"
	"strings"
)

// Sampler draws random strings from a grammar using the procedure of §8.1:
// the grammar is treated as a probabilistic CFG with the uniform
// distribution over each nonterminal's productions, and strings are sampled
// by top-down expansion.
//
// Uniform expansion of a recursive grammar diverges with positive
// probability, so the sampler enforces a depth budget: once the budget is
// exhausted it restricts the choice to productions of minimal derivation
// depth, which guarantees termination without skewing shallow samples.
type Sampler struct {
	g *Gram
	// minDepth[nt] is the height of the shallowest derivation tree of nt
	// (terminal-only production = 1), or maxInt if nt is unproductive.
	minDepth []int
	// minCost[nt][prod] = 1 + max over nonterminal symbols of minDepth.
	minCost  [][]int
	MaxDepth int
}

// Gram aliases Grammar so the Sampler struct reads naturally.
type Gram = Grammar

// DefaultSampleDepth is the sampling depth budget used throughout the
// repository when a caller has no reason to choose otherwise: deep enough
// that the depth-bounded fallback rarely engages on the grammars GLADE
// learns, shallow enough that recursion-heavy grammars still terminate
// quickly. The grammar fuzzer, the facade conveniences, and the bench
// suite all share this value.
const DefaultSampleDepth = 24

const unbounded = int(^uint(0) >> 1)

// NewSampler builds a sampler for g with the given depth budget (values
// around 32-64 work well for the grammars in this repository).
func NewSampler(g *Grammar, maxDepth int) *Sampler {
	s := &Sampler{g: g, MaxDepth: maxDepth}
	n := g.NumNT()
	s.minDepth = make([]int, n)
	for i := range s.minDepth {
		s.minDepth[i] = unbounded
	}
	for changed := true; changed; {
		changed = false
		for nt, prods := range g.Prods {
			for _, p := range prods {
				cost := 1
				ok := true
				for _, sym := range p {
					if !sym.IsNT() {
						continue
					}
					d := s.minDepth[sym.NT]
					if d == unbounded {
						ok = false
						break
					}
					if d+1 > cost {
						cost = d + 1
					}
				}
				if ok && cost < s.minDepth[nt] {
					s.minDepth[nt] = cost
					changed = true
				}
			}
		}
	}
	s.minCost = make([][]int, n)
	for nt, prods := range g.Prods {
		s.minCost[nt] = make([]int, len(prods))
		for pi, p := range prods {
			cost := 1
			for _, sym := range p {
				if sym.IsNT() {
					d := s.minDepth[sym.NT]
					if d == unbounded {
						cost = unbounded
						break
					}
					if d+1 > cost {
						cost = d + 1
					}
				}
			}
			s.minCost[nt][pi] = cost
		}
	}
	return s
}

// Sample draws one string from the start symbol. It panics if the start
// symbol is unproductive.
func (s *Sampler) Sample(rng *rand.Rand) string {
	return s.SampleFrom(rng, s.g.Start)
}

// SampleFrom draws one string derived from nonterminal nt.
func (s *Sampler) SampleFrom(rng *rand.Rand, nt int) string {
	if s.minDepth[nt] == unbounded {
		panic("cfg: sampling from unproductive nonterminal " + s.g.Names[nt])
	}
	var b strings.Builder
	s.expand(&b, rng, nt, s.MaxDepth)
	return b.String()
}

func (s *Sampler) expand(b *strings.Builder, rng *rand.Rand, nt, budget int) {
	prods := s.g.Prods[nt]
	// Candidate productions: all fitting the budget; if none fit, fall back
	// to the productions of minimal cost so expansion always terminates.
	var fits []int
	for pi := range prods {
		if s.minCost[nt][pi] <= budget {
			fits = append(fits, pi)
		}
	}
	if len(fits) == 0 {
		best := unbounded
		for pi := range prods {
			if s.minCost[nt][pi] < best {
				best = s.minCost[nt][pi]
			}
		}
		for pi := range prods {
			if s.minCost[nt][pi] == best {
				fits = append(fits, pi)
			}
		}
	}
	pi := fits[rng.Intn(len(fits))]
	for _, sym := range prods[pi] {
		if sym.IsNT() {
			s.expand(b, rng, sym.NT, budget-1)
		} else {
			n := sym.Set.Len()
			b.WriteByte(sym.Set.Pick(rng.Intn(n)))
		}
	}
}
