package cfg

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"glade/internal/bytesets"
)

// Marshal renders the grammar in a line-oriented text format that Unmarshal
// parses back. The format is stable and human-editable:
//
//	start <name>
//	<name> -> <sym> <sym> ...      one line per production
//	<name> ->                      an epsilon production
//
// Symbols are nonterminal names, Go-quoted byte-string literals ("ab\n"),
// or character classes in set notation ({a-z0-9_}). Nonterminal names must
// match [A-Za-z_][A-Za-z0-9_']*.
//
// Nonterminal blocks are emitted in first-mention order (breadth-first
// from the start symbol, unreachable nonterminals after). Unmarshal interns
// nonterminals by first mention, so this order is its fixed point: Marshal
// after Unmarshal reproduces the text byte for byte — the property the
// glade-serve grammar store relies on to re-serve stored bytes verbatim.
func Marshal(g *Grammar) string {
	var b strings.Builder
	fmt.Fprintf(&b, "start %s\n", g.Names[g.Start])
	for _, nt := range mentionOrder(g) {
		for _, p := range g.Prods[nt] {
			fmt.Fprintf(&b, "%s ->", g.Names[nt])
			i := 0
			for i < len(p) {
				s := p[i]
				b.WriteByte(' ')
				if s.IsNT() {
					b.WriteString(g.Names[s.NT])
					i++
					continue
				}
				if s.Set.Len() == 1 {
					// Merge runs of singleton terminals into one literal.
					var lit []byte
					for i < len(p) && !p[i].IsNT() && p[i].Set.Len() == 1 {
						lit = append(lit, p[i].Set.Min())
						i++
					}
					b.WriteString(strconv.Quote(string(lit)))
					continue
				}
				b.WriteString(marshalClass(s.Set))
				i++
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// mentionOrder returns every nonterminal in the order its name first
// appears when blocks are emitted in this very order — breadth-first from
// the start symbol, then each unreachable nonterminal (in id order) with
// its own breadth-first expansion, so a nonterminal first mentioned inside
// an unreachable block still precedes later-id unreachables.
func mentionOrder(g *Grammar) []int {
	order := make([]int, 0, len(g.Prods))
	seen := make([]bool, len(g.Prods))
	add := func(nt int) {
		if !seen[nt] {
			seen[nt] = true
			order = append(order, nt)
		}
	}
	cursor := 0
	expand := func() {
		for ; cursor < len(order); cursor++ {
			for _, p := range g.Prods[order[cursor]] {
				for _, s := range p {
					if s.IsNT() {
						add(s.NT)
					}
				}
			}
		}
	}
	add(g.Start)
	expand()
	for nt := range g.Prods {
		add(nt)
		expand()
	}
	return order
}

func marshalClass(set bytesets.Set) string {
	var b strings.Builder
	b.WriteByte('{')
	members := set.Bytes()
	for i := 0; i < len(members); {
		j := i
		for j+1 < len(members) && members[j+1] == members[j]+1 {
			j++
		}
		if j-i >= 2 {
			b.WriteString(escapeClassByte(members[i]))
			b.WriteByte('-')
			b.WriteString(escapeClassByte(members[j]))
		} else {
			for k := i; k <= j; k++ {
				b.WriteString(escapeClassByte(members[k]))
			}
		}
		i = j + 1
	}
	b.WriteByte('}')
	return b.String()
}

func escapeClassByte(c byte) string {
	switch c {
	case '\\', '-', '{', '}':
		return `\` + string(c)
	case '\n':
		return `\n`
	case '\t':
		return `\t`
	case '\r':
		return `\r`
	}
	if c < 32 || c > 126 {
		return fmt.Sprintf(`\x%02x`, c)
	}
	return string(c)
}

// Unmarshal parses the Marshal format. Nonterminals are created on first
// mention; the start symbol defaults to the first nonterminal when no
// "start" line is present.
func Unmarshal(text string) (*Grammar, error) {
	g := New()
	names := map[string]int{}
	intern := func(name string) int {
		if id, ok := names[name]; ok {
			return id
		}
		id := g.AddNT(name)
		names[name] = id
		return id
	}
	startName := ""
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// A "start" directive names the start symbol. A nonterminal may
		// itself be named "start", so a line that is a production (it
		// contains "->") is never treated as the directive.
		if rest, ok := strings.CutPrefix(line, "start "); ok && !strings.Contains(rest, "->") {
			startName = strings.TrimSpace(rest)
			continue
		}
		name, rhs, ok := strings.Cut(line, "->")
		if !ok {
			return nil, fmt.Errorf("cfg: line %d: missing '->'", lineNo)
		}
		nt := intern(strings.TrimSpace(name))
		syms, err := parseSyms(strings.TrimSpace(rhs), intern)
		if err != nil {
			return nil, fmt.Errorf("cfg: line %d: %v", lineNo, err)
		}
		g.Add(nt, syms...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g.NumNT() == 0 {
		return nil, fmt.Errorf("cfg: no productions")
	}
	// Names are interned on mention from both sides of '->'; reject any
	// that violate the documented shape (empty, or digit-leading) now —
	// such a grammar would marshal to text Unmarshal cannot re-parse.
	for name := range names {
		if !validName(name) {
			return nil, fmt.Errorf("cfg: invalid nonterminal name %q", name)
		}
	}
	if startName != "" {
		id, ok := names[startName]
		if !ok {
			return nil, fmt.Errorf("cfg: start symbol %q has no productions", startName)
		}
		g.Start = id
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func parseSyms(rhs string, intern func(string) int) ([]Sym, error) {
	var out []Sym
	i := 0
	for i < len(rhs) {
		switch c := rhs[i]; {
		case c == ' ' || c == '\t':
			i++
		case c == '"':
			lit, rest, err := scanQuoted(rhs[i:])
			if err != nil {
				return nil, err
			}
			out = append(out, Str(lit)...)
			i = len(rhs) - len(rest)
		case c == '{':
			set, n, err := scanClass(rhs[i:])
			if err != nil {
				return nil, err
			}
			out = append(out, T(set))
			i += n
		case isNameByte(c):
			j := i
			for j < len(rhs) && isNameByte(rhs[j]) {
				j++
			}
			out = append(out, N(intern(rhs[i:j])))
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q", c)
		}
	}
	return out, nil
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '\''
}

// validName reports whether name matches the documented nonterminal shape
// [A-Za-z_][A-Za-z0-9_']*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	c := name[0]
	if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_') {
		return false
	}
	for i := 1; i < len(name); i++ {
		if !isNameByte(name[i]) {
			return false
		}
	}
	return true
}

// scanQuoted reads a Go-quoted string from the front of s and returns the
// unquoted value plus the remainder.
func scanQuoted(s string) (string, string, error) {
	// Find the closing quote, honoring backslash escapes.
	for j := 1; j < len(s); j++ {
		if s[j] == '\\' {
			j++
			continue
		}
		if s[j] == '"' {
			lit, err := strconv.Unquote(s[:j+1])
			if err != nil {
				return "", "", fmt.Errorf("bad literal %s: %v", s[:j+1], err)
			}
			return lit, s[j+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated literal")
}

// scanClass reads a {…} character class and returns the set and the number
// of bytes consumed.
func scanClass(s string) (bytesets.Set, int, error) {
	var set bytesets.Set
	i := 1
	var prev int = -1
	for i < len(s) {
		c := s[i]
		switch {
		case c == '}':
			return set, i + 1, nil
		case c == '-' && prev >= 0 && i+1 < len(s) && s[i+1] != '}':
			// Range prev-next.
			i++
			hi, n, err := classByte(s[i:])
			if err != nil {
				return set, 0, err
			}
			i += n
			if hi < byte(prev) {
				return set, 0, fmt.Errorf("inverted range in class")
			}
			for b := prev; b <= int(hi); b++ {
				set.Add(byte(b))
			}
			prev = -1
		default:
			b, n, err := classByte(s[i:])
			if err != nil {
				return set, 0, err
			}
			i += n
			set.Add(b)
			prev = int(b)
		}
	}
	return set, 0, fmt.Errorf("unterminated class")
}

func classByte(s string) (byte, int, error) {
	if len(s) == 0 {
		return 0, 0, fmt.Errorf("empty class element")
	}
	if s[0] != '\\' {
		return s[0], 1, nil
	}
	if len(s) < 2 {
		return 0, 0, fmt.Errorf("dangling escape in class")
	}
	switch s[1] {
	case 'n':
		return '\n', 2, nil
	case 't':
		return '\t', 2, nil
	case 'r':
		return '\r', 2, nil
	case 'x':
		if len(s) < 4 {
			return 0, 0, fmt.Errorf("bad \\x escape")
		}
		v, err := strconv.ParseUint(s[2:4], 16, 8)
		if err != nil {
			return 0, 0, fmt.Errorf("bad \\x escape: %v", err)
		}
		return byte(v), 4, nil
	default:
		return s[1], 2, nil
	}
}

// Equal reports whether two grammars are structurally identical up to
// nonterminal numbering (names and production order must match).
func Equal(a, b *Grammar) bool {
	return canonical(a) == canonical(b)
}

func canonical(g *Grammar) string {
	lines := strings.Split(strings.TrimSpace(Marshal(g)), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
