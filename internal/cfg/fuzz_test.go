package cfg_test

// Native fuzz targets locking down the recognition ladder and the grammar
// wire format:
//
//   - FuzzAcceptsDifferential feeds arbitrary inputs to every engine — the
//     map-based Earley Parser (the reference), the full compiled ladder,
//     the Earley rung alone, and the DFA prefilter in its sound
//     direction — over the pinned learned sed/xml grammars plus the
//     handcrafted pathological set, and fails on any disagreement.
//   - FuzzCompileRoundTrip drives Unmarshal → Marshal → Unmarshal →
//     Compile on arbitrary grammar text: parsing must never panic, the
//     marshaled form must be a fixed point, and the two compiled ladders
//     must agree with the reference parser on a deterministic probe set.
//
// The seed corpora live under testdata/fuzz/ and run as ordinary tests in
// every `go test` invocation; `make fuzz` (and the CI fuzz-smoke job) run
// the randomized exploration.

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"glade/internal/cfg"
)

// Input caps per grammar family: the map-based reference parser is
// O(n²)-ish on ambiguous grammars, so the large learned goldens get a
// tighter cap than the small handcrafted shapes — longer suffixes add
// fuzz wall-clock, not ladder coverage.
const (
	maxFuzzInputGolden = 96
	maxFuzzInputSmall  = 256
)

// fuzzEngine is one pre-built grammar with all engines constructed once
// per process (fuzz workers re-execute the test binary, not the target).
type fuzzEngine struct {
	name   string
	cap    int
	parser *cfg.Parser
	comp   *cfg.Compiled
}

func buildFuzzEngines(tb testing.TB) []*fuzzEngine {
	var out []*fuzzEngine
	add := func(name string, g *cfg.Grammar, cap int) {
		out = append(out, &fuzzEngine{name: name, cap: cap, parser: cfg.NewParser(g), comp: cfg.Compile(g)})
	}
	for _, golden := range []string{"golden_sed_w1.grammar", "golden_xml_w1.grammar"} {
		text, err := os.ReadFile(filepath.Join("..", "core", "testdata", golden))
		if err != nil {
			tb.Fatalf("golden grammar: %v", err)
		}
		g, err := cfg.Unmarshal(string(text))
		if err != nil {
			tb.Fatalf("golden grammar %s: %v", golden, err)
		}
		add(golden, g, maxFuzzInputGolden)
	}
	paths := pathologicalGrammars()
	names := make([]string, 0, len(paths))
	for name := range paths {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		add(name, paths[name], maxFuzzInputSmall)
	}
	return out
}

// checkLadderAgreement runs one input through every engine of e and fails
// on any disagreement with the reference parser.
func checkLadderAgreement(t *testing.T, e *fuzzEngine, input string) {
	t.Helper()
	want := e.parser.Accepts(input)
	got, rung := e.comp.AcceptsRung(input)
	if got != want {
		t.Fatalf("%s: ladder says %v via %s rung, reference parser says %v for %q",
			e.name, got, rung, want, input)
	}
	if earley := e.comp.AcceptsEarley(input); earley != want {
		t.Fatalf("%s: Earley rung says %v, reference parser says %v for %q",
			e.name, earley, want, input)
	}
	if e.comp.PrefilterRejects(input) && want {
		t.Fatalf("%s: DFA prefilter rejects %q, which the reference accepts", e.name, input)
	}
}

// FuzzAcceptsDifferential: arbitrary inputs, every grammar, every engine.
func FuzzAcceptsDifferential(f *testing.F) {
	engines := buildFuzzEngines(f)
	for _, seed := range []string{
		"", "a", "ab", "aaaa", "s/a/b/", "s/a/b/g", "s0a0b0",
		"<item>hello</item>", "<a><b>x</b></a>", "<a></b>", "((", "(()())",
		"\x00\xff<", "aab", "s/[a-z]*/X/p",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		for _, e := range engines {
			in := input
			if len(in) > e.cap {
				in = in[:e.cap]
			}
			checkLadderAgreement(t, e, in)
		}
	})
}

// roundTripProbes are the deterministic membership probes the round-trip
// target checks on both compilations of a fuzzed grammar.
var roundTripProbes = []string{
	"", "a", "b", "ab", "aa", "ba", "abc", "0", "1", "<x>", "((", "()",
}

// FuzzCompileRoundTrip: arbitrary grammar text must never panic the
// unmarshaler, marshaling must reach a fixed point, and recompiling the
// round-tripped grammar must preserve every probe verdict across the whole
// ladder.
func FuzzCompileRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"start S\nS -> \"a\" S\nS ->\n",
		"start S\nS -> S S\nS -> \"a\"\nS ->\n",
		"start A\nA -> B\nB -> A\nA -> \"a\"\nB -> {b-d}\n",
		"start S\nS -> \"(\" S \")\" S\nS ->\n",
		"start S\nS -> {a-z} S\nS -> {0-9}\n",
		"start S\n",
		"not a grammar",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 4096 {
			return // bound Compile cost; long tails add no parser coverage
		}
		g, err := cfg.Unmarshal(text)
		if err != nil {
			return
		}
		m := cfg.Marshal(g)
		g2, err := cfg.Unmarshal(m)
		if err != nil {
			t.Fatalf("re-unmarshal of marshaled grammar failed: %v\n%s", err, m)
		}
		if m2 := cfg.Marshal(g2); m2 != m {
			t.Fatalf("marshal not a fixed point:\nfirst:\n%s\nsecond:\n%s", m, m2)
		}
		parser := cfg.NewParser(g)
		c1, c2 := cfg.Compile(g), cfg.Compile(g2)
		for _, in := range roundTripProbes {
			want := parser.Accepts(in)
			if got, rung := c1.AcceptsRung(in); got != want {
				t.Fatalf("ladder says %v via %s rung, parser says %v for %q\n%s", got, rung, want, in, m)
			}
			if got, rung := c2.AcceptsRung(in); got != want {
				t.Fatalf("round-tripped ladder says %v via %s rung, parser says %v for %q\n%s", got, rung, want, in, m)
			}
			if c1.PrefilterRejects(in) && want {
				t.Fatalf("prefilter rejects %q, which the parser accepts\n%s", in, m)
			}
		}
	})
}
