package cfg_test

// Property-style guard for the grammar store's on-disk format: Marshal →
// Unmarshal → Marshal must round-trip byte-identically on every grammar
// the learner actually produces. The service persists grammars as Marshal
// text and re-serves those bytes verbatim after a restart, so any
// asymmetry between the two directions would silently corrupt the store.
//
// This lives in an external test package so it can run the real learner
// (core imports cfg; cfg_test may import core without a cycle).

import (
	"context"
	"testing"
	"time"

	"glade/internal/cfg"
	"glade/internal/core"
	"glade/internal/oracle"
	"glade/internal/programs"
	"glade/internal/targets"
)

// assertRoundTrip checks the double round-trip: the second Marshal must
// reproduce the first byte for byte, and a third pass (re-parsing the
// reproduced text) must be stable too.
func assertRoundTrip(t *testing.T, name string, g *cfg.Grammar) {
	t.Helper()
	first := cfg.Marshal(g)
	parsed, err := cfg.Unmarshal(first)
	if err != nil {
		t.Fatalf("%s: Unmarshal of Marshal output failed: %v\n%s", name, err, first)
	}
	second := cfg.Marshal(parsed)
	if second != first {
		t.Fatalf("%s: Marshal→Unmarshal→Marshal not byte-identical:\n-- first --\n%s\n-- second --\n%s", name, first, second)
	}
	if !cfg.Equal(g, parsed) {
		t.Fatalf("%s: round-tripped grammar not Equal to the original", name)
	}
}

// TestMarshalRoundTripLearnedTargets covers every grammar learned from the
// §8.2 target languages' documentation seeds — the corpus the core tests
// and the service's builtin target jobs produce.
func TestMarshalRoundTripLearnedTargets(t *testing.T) {
	for _, tgt := range targets.All() {
		opts := core.DefaultOptions()
		opts.Timeout = 30 * time.Second
		res, err := core.Learn(context.Background(), tgt.DocSeeds, oracle.AsCheck(tgt.Oracle), opts)
		if err != nil {
			t.Fatalf("%s: %v", tgt.Name, err)
		}
		assertRoundTrip(t, "target "+tgt.Name, res.Grammar)
		// The store serves trimmed grammars too (cmd/glade prints them);
		// the format must hold on both.
		assertRoundTrip(t, "target "+tgt.Name+" (trimmed)", res.Grammar.Trim())
	}
}

// TestMarshalRoundTripLearnedPrograms covers grammars learned from the
// §8.3 simulated programs' bundled seeds — the service's builtin program
// jobs.
func TestMarshalRoundTripLearnedPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("learns several programs")
	}
	for _, p := range programs.All() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			opts := core.DefaultOptions()
			opts.Timeout = 60 * time.Second
			opts.Workers = 4
			res, err := core.Learn(context.Background(), p.Seeds(), oracle.Func(func(s string) bool { return p.Run(s).OK }), opts)
			if err != nil {
				t.Fatal(err)
			}
			assertRoundTrip(t, "program "+p.Name(), res.Grammar)
		})
	}
}

// TestMarshalRoundTripEdgeCases covers constructs the learner emits rarely
// but the format must still carry: epsilon productions, class
// metacharacter escapes, non-printable bytes, and literal quoting.
func TestMarshalRoundTripEdgeCases(t *testing.T) {
	texts := []string{
		"start A\nA ->\n",
		"start A\nA -> \"a\\\"b\\\\c\"\n",
		"start A\nA -> {\\-\\{\\}\\\\} A\nA ->\n",
		"start A\nA -> {\\x00\\x7f\\n\\t\\r}\n",
		"start A\nA -> {a-z0-9} B\nB -> \"<>\" B\nB ->\n",
	}
	for _, text := range texts {
		g, err := cfg.Unmarshal(text)
		if err != nil {
			t.Fatalf("edge-case source did not parse: %v\n%s", err, text)
		}
		assertRoundTrip(t, "edge case", g)
	}
}
