package cfg

import (
	"sync"
	"sync/atomic"
)

// ladder.go wires the three recognition rungs together behind Accepts:
//
//	DFA prefilter  — O(n) reject-fast filter over a regular superset
//	                 language (prefilter.go); a rejection is final, an
//	                 acceptance hands off.
//	bytecode VM    — exact backtracking recognizer with FIRST guards and
//	                 a step budget (vm.go); definitive verdicts are final,
//	                 budget exhaustion hands off.
//	pooled Earley  — the general recognizer (compiled_earley.go), always
//	                 correct, and the differential reference for the
//	                 rungs above.
//
// Either of the first two rungs may be absent (grammar over the
// construction budgets, or left-recursive for the VM); the ladder simply
// skips missing rungs. Every consumer of Accepts/AcceptsAll — fuzzing,
// campaign triage, service generation validation, the learner's
// phase-2 candidate checks — inherits the ladder.

// Rung identifies which engine of the compiled ladder produced a verdict.
type Rung int32

// The ladder's rungs, in the order Accepts consults them.
const (
	// RungDFA is the regular-approximation prefilter: only ever the
	// source of a rejection.
	RungDFA Rung = iota
	// RungVM is the bytecode backtracking recognizer.
	RungVM
	// RungEarley is the pooled Earley recognizer — the fallback and the
	// differential reference.
	RungEarley
)

// String names the rung for logs and test failures.
func (r Rung) String() string {
	switch r {
	case RungDFA:
		return "dfa"
	case RungVM:
		return "vm"
	case RungEarley:
		return "earley"
	}
	return "unknown"
}

// Accepts reports whether input ∈ L(g), consulting the ladder: DFA
// prefilter, then the bytecode VM, then the Earley recognizer. It is
// allocation-free at steady state and safe for concurrent use.
func (c *Compiled) Accepts(input string) bool {
	ok, _ := c.AcceptsRung(input)
	return ok
}

// AcceptsRung answers membership and reports which rung decided — the
// introspection hook behind the differential suite and the parse
// benchmark's per-rung accounting.
func (c *Compiled) AcceptsRung(input string) (bool, Rung) {
	if c.dfa != nil && !c.dfa.mayAccept(input) {
		return false, RungDFA
	}
	if c.vm != nil {
		vsc := c.getVMScratch()
		v := c.runVM(vsc, input)
		c.putVMScratch(vsc)
		if v != vmUnknown {
			return v == vmAccept, RungVM
		}
	}
	return c.AcceptsEarley(input), RungEarley
}

// AcceptsEarley answers membership using only the Earley rung — the
// reference the other rungs are differentially tested against (and the
// engine PR 4 shipped, for benchmarking the ladder's gain).
func (c *Compiled) AcceptsEarley(input string) bool {
	sc := c.getScratch()
	ok := c.run(sc, input)
	c.putScratch(sc)
	return ok
}

// HasPrefilter reports whether the regular-approximation DFA was built
// (grammars over the state/work budgets run without one).
func (c *Compiled) HasPrefilter() bool { return c.dfa != nil }

// HasVM reports whether the grammar lowered to bytecode (left-recursive
// or oversized grammars fall back to Earley).
func (c *Compiled) HasVM() bool { return c.vm != nil }

// PrefilterRejects reports whether the DFA prefilter alone rejects input.
// By the soundness contract this implies input ∉ L(g); the differential
// suite pins that direction explicitly.
func (c *Compiled) PrefilterRejects(input string) bool {
	return c.dfa != nil && !c.dfa.mayAccept(input)
}

// AcceptsAll answers membership for every input through the ladder using
// at most workers concurrent goroutines, mirroring oracle.Parallel's bulk
// path. Values of workers below 2 run sequentially (still reusing one
// scratch set across the whole batch). The result is index-aligned with
// inputs.
func (c *Compiled) AcceptsAll(inputs []string, workers int) []bool {
	out := make([]bool, len(inputs))
	if workers > len(inputs) {
		workers = len(inputs)
	}
	if workers <= 1 {
		var run ladderRunner
		defer run.release(c)
		for i, in := range inputs {
			out[i] = run.accepts(c, in)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var run ladderRunner
			defer run.release(c)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(inputs) {
					return
				}
				out[i] = run.accepts(c, inputs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// ladderRunner holds lazily acquired scratch state for a batch of ladder
// queries, so a whole AcceptsAll slice shares one scratch set per worker.
type ladderRunner struct {
	esc *earleyScratch
	vsc *vmScratch
}

// accepts runs one ladder query using the runner's scratch.
func (r *ladderRunner) accepts(c *Compiled, in string) bool {
	if c.dfa != nil && !c.dfa.mayAccept(in) {
		return false
	}
	if c.vm != nil {
		if r.vsc == nil {
			r.vsc = c.getVMScratch()
		}
		if v := c.runVM(r.vsc, in); v != vmUnknown {
			return v == vmAccept
		}
	}
	if r.esc == nil {
		r.esc = c.getScratch()
	}
	return c.run(r.esc, in)
}

// release returns any acquired scratch to the pools.
func (r *ladderRunner) release(c *Compiled) {
	if r.esc != nil {
		c.putScratch(r.esc)
	}
	if r.vsc != nil {
		c.putVMScratch(r.vsc)
	}
}
