package cfg

import (
	"math"
	"sync"

	"glade/internal/bytesets"
)

// Compiled is a grammar lowered into a flat, contiguous intermediate
// representation for the throughput workloads of §8: batch membership
// checking and high-volume sampling. Where Grammar is a pointer-rich
// structure convenient to build and transform, Compiled interns everything
// into index tables —
//
//   - every production's symbols live in one shared arena slice, with
//     per-production offsets and per-nonterminal production ranges;
//   - terminal byte classes are deduplicated into a 256-bit bitmap table;
//   - nullability, minimal derivation depth, per-production derivation
//     cost, and FIRST-byte sets are precomputed once —
//
// so the recognizer and sampler run over dense int32 slices with no
// pointer chasing, no map lookups, and no per-call bookkeeping
// allocations. A Compiled is immutable after Compile (except MaxDepth,
// which callers may set before sharing it) and safe for concurrent use:
// Accepts, AcceptsAll, Sample, and SampleDeriv may all be called from any
// number of goroutines, with per-call scratch state drawn from an
// internal sync.Pool.
type Compiled struct {
	start int32
	names []string // nonterminal names, for error messages only

	// arena holds every production's symbols back to back: a value >= 0 is
	// a nonterminal index, a value < 0 is ^i for an index i into classes.
	arena   []int32
	classes []bytesets.Set

	// Production p (a global index) owns arena[prodOff[p]:prodOff[p+1]]
	// and belongs to nonterminal prodNT[p]. Nonterminal nt owns the
	// production range [ntProd[nt], ntProd[nt+1]) — productions are laid
	// out grouped by owner, in Grammar order, so a production's index
	// within its nonterminal is p - ntProd[nt].
	prodOff []int32
	prodNT  []int32
	ntProd  []int32

	// nullable[nt] reports nt ⇒* ε. minDepth[nt] is the height of nt's
	// shallowest derivation tree (unboundedCost when unproductive), and
	// prodCost[p] = 1 + max over p's nonterminal symbols of minDepth —
	// the tables behind the sampler's depth budgeting.
	nullable []bool
	minDepth []int32
	prodCost []int32

	// prodFirst[p] is the set of bytes a derivation from production p can
	// start with; prodNullable[p] reports whether p's whole right-hand
	// side derives ε. Together they let the recognizer skip predicting
	// productions that can neither match the next input byte nor vanish.
	prodFirst    []bytesets.Set
	prodNullable []bool

	// MaxDepth is the sampling depth budget (see Sampler). It defaults to
	// DefaultSampleDepth; adjust it before sharing the Compiled across
	// goroutines.
	MaxDepth int

	// The recognition ladder (see ladder.go): dfa is the reject-fast
	// regular-approximation prefilter, vm the lowered bytecode program.
	// Either may be nil when the grammar exceeds its construction budget
	// (or, for vm, is left-recursive); Accepts skips missing rungs.
	dfa *prefilter
	vm  *vmProgram

	scratch   sync.Pool // *earleyScratch
	vmScratch sync.Pool // *vmScratch
}

// unboundedCost marks unproductive nonterminals in the int32 depth tables
// (the Sampler's unbounded, narrowed to the IR's element width).
const unboundedCost = math.MaxInt32

// Compile lowers g into its flat intermediate representation. The grammar
// is deep-copied into the IR, so later mutations of g do not affect the
// Compiled.
func Compile(g *Grammar) *Compiled {
	numNT := g.NumNT()
	c := &Compiled{
		start:    int32(g.Start),
		names:    append([]string(nil), g.Names...),
		MaxDepth: DefaultSampleDepth,
		nullable: g.Nullable(),
		ntProd:   make([]int32, numNT+1),
	}
	classIdx := map[bytesets.Set]int32{}
	for nt, prods := range g.Prods {
		c.ntProd[nt] = int32(len(c.prodNT))
		for _, p := range prods {
			c.prodOff = append(c.prodOff, int32(len(c.arena)))
			c.prodNT = append(c.prodNT, int32(nt))
			for _, s := range p {
				if s.IsNT() {
					c.arena = append(c.arena, int32(s.NT))
					continue
				}
				ci, ok := classIdx[s.Set]
				if !ok {
					ci = int32(len(c.classes))
					c.classes = append(c.classes, s.Set)
					classIdx[s.Set] = ci
				}
				c.arena = append(c.arena, ^ci)
			}
		}
	}
	c.ntProd[numNT] = int32(len(c.prodNT))
	c.prodOff = append(c.prodOff, int32(len(c.arena)))
	c.computeDepths()
	c.computeFirst()
	// Build the ladder's optional rungs last: the prefilter snapshots the
	// byte-class tables before VM lowering interns its union and guard
	// classes.
	c.dfa = c.buildPrefilter()
	c.vm = c.lowerVM()
	return c
}

// NumNT returns the number of nonterminals.
func (c *Compiled) NumNT() int { return len(c.ntProd) - 1 }

// Start returns the start nonterminal's index.
func (c *Compiled) Start() int { return int(c.start) }

// numProds returns the total number of productions.
func (c *Compiled) numProds() int { return len(c.prodNT) }

// prodLen returns the number of symbols on production p's right-hand side.
func (c *Compiled) prodLen(p int32) int { return int(c.prodOff[p+1] - c.prodOff[p]) }

// computeDepths fills minDepth and prodCost by the same fixed point the
// Sampler computes over the pointer representation.
func (c *Compiled) computeDepths() {
	c.minDepth = make([]int32, c.NumNT())
	for i := range c.minDepth {
		c.minDepth[i] = unboundedCost
	}
	for changed := true; changed; {
		changed = false
		for p := 0; p < c.numProds(); p++ {
			cost := c.costOf(int32(p))
			if cost < c.minDepth[c.prodNT[p]] {
				c.minDepth[c.prodNT[p]] = cost
				changed = true
			}
		}
	}
	c.prodCost = make([]int32, c.numProds())
	for p := 0; p < c.numProds(); p++ {
		c.prodCost[p] = c.costOf(int32(p))
	}
}

// costOf returns 1 + the max minDepth over production p's nonterminal
// symbols, or unboundedCost if any of them is unproductive.
func (c *Compiled) costOf(p int32) int32 {
	cost := int32(1)
	for i := c.prodOff[p]; i < c.prodOff[p+1]; i++ {
		s := c.arena[i]
		if s < 0 {
			continue
		}
		d := c.minDepth[s]
		if d == unboundedCost {
			return unboundedCost
		}
		if d+1 > cost {
			cost = d + 1
		}
	}
	return cost
}

// computeFirst fills prodFirst and prodNullable from the per-nonterminal
// FIRST-byte fixed point.
func (c *Compiled) computeFirst() {
	first := make([]bytesets.Set, c.NumNT())
	for changed := true; changed; {
		changed = false
		for p := 0; p < c.numProds(); p++ {
			nt := c.prodNT[p]
			f := first[nt].Union(c.firstOf(int32(p), first))
			if !f.Equal(first[nt]) {
				first[nt] = f
				changed = true
			}
		}
	}
	c.prodFirst = make([]bytesets.Set, c.numProds())
	c.prodNullable = make([]bool, c.numProds())
	for p := 0; p < c.numProds(); p++ {
		c.prodFirst[p] = c.firstOf(int32(p), first)
		c.prodNullable[p] = c.epsilonOf(int32(p))
	}
}

// firstOf returns the FIRST-byte set of production p under the given
// per-nonterminal FIRST sets: the union over the nullable prefix of p's
// symbols, stopping after the first non-nullable one.
func (c *Compiled) firstOf(p int32, first []bytesets.Set) bytesets.Set {
	var f bytesets.Set
	for i := c.prodOff[p]; i < c.prodOff[p+1]; i++ {
		s := c.arena[i]
		if s < 0 {
			return f.Union(c.classes[^s])
		}
		f = f.Union(first[s])
		if !c.nullable[s] {
			break
		}
	}
	return f
}

// epsilonOf reports whether production p's whole right-hand side derives ε.
func (c *Compiled) epsilonOf(p int32) bool {
	for i := c.prodOff[p]; i < c.prodOff[p+1]; i++ {
		s := c.arena[i]
		if s < 0 || !c.nullable[s] {
			return false
		}
	}
	return true
}
