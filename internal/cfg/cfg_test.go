package cfg

import (
	"math/rand"
	"strings"
	"testing"

	"glade/internal/bytesets"
)

// xmlLike builds the paper's Figure 1 grammar
// A → (a..z | <a>A</a>)* over a restricted letter set.
func xmlLike() *Grammar {
	g := New()
	a := g.AddNT("A")
	item := g.AddNT("Item")
	g.Add(a)                // A → ε
	g.Add(a, N(item), N(a)) // A → Item A
	g.Add(item, T(bytesets.Range('a', 'z')))
	g.Add(item, Cat(Str("<a>"), One(N(a)), Str("</a>"))...)
	return g
}

// balanced builds S → ε | (S)S — Dyck language of one parenthesis pair.
func balanced() *Grammar {
	g := New()
	s := g.AddNT("S")
	g.Add(s)
	g.Add(s, Cat(Str("("), One(N(s)), Str(")"), One(N(s)))...)
	return g
}

func TestValidate(t *testing.T) {
	if err := xmlLike().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := New()
	x := bad.AddNT("X")
	bad.Add(x, N(5))
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted dangling nonterminal")
	}
	bad2 := New()
	y := bad2.AddNT("Y")
	bad2.Add(y, T(bytesets.Set{}))
	if err := bad2.Validate(); err == nil {
		t.Fatal("Validate accepted empty terminal class")
	}
}

func TestNullable(t *testing.T) {
	g := xmlLike()
	nl := g.Nullable()
	if !nl[0] {
		t.Fatal("A should be nullable")
	}
	if nl[1] {
		t.Fatal("Item should not be nullable")
	}
}

func TestEarleyXMLLike(t *testing.T) {
	p := NewParser(xmlLike())
	valid := []string{"", "hi", "<a>hi</a>", "<a></a>", "<a><a>x</a>y</a>z", "ab<a>c</a>"}
	for _, s := range valid {
		if !p.Accepts(s) {
			t.Errorf("rejects valid %q", s)
		}
	}
	invalid := []string{"<a>", "</a>", "<a>hi</a", "<b>x</b>", "<a><a>x</a>", "HI"}
	for _, s := range invalid {
		if p.Accepts(s) {
			t.Errorf("accepts invalid %q", s)
		}
	}
}

func TestEarleyBalanced(t *testing.T) {
	p := NewParser(balanced())
	for _, s := range []string{"", "()", "()()", "(())", "(()())()", "((((()))))"} {
		if !p.Accepts(s) {
			t.Errorf("rejects balanced %q", s)
		}
	}
	for _, s := range []string{"(", ")", ")(", "(()", "())"} {
		if p.Accepts(s) {
			t.Errorf("accepts unbalanced %q", s)
		}
	}
}

func TestEarleyLeftRecursion(t *testing.T) {
	// E → E + a | a : classic left recursion Earley must handle.
	g := New()
	e := g.AddNT("E")
	g.Add(e, N(e), TByte('+'), TByte('a'))
	g.Add(e, TByte('a'))
	p := NewParser(g)
	for _, s := range []string{"a", "a+a", "a+a+a+a"} {
		if !p.Accepts(s) {
			t.Errorf("rejects %q", s)
		}
	}
	for _, s := range []string{"", "+", "a+", "+a", "aa"} {
		if p.Accepts(s) {
			t.Errorf("accepts %q", s)
		}
	}
}

func TestEarleyNullableChains(t *testing.T) {
	// S → A B 'x'; A → ε | 'a'; B → A A — deep nullable chains.
	g := New()
	s := g.AddNT("S")
	a := g.AddNT("A")
	b := g.AddNT("B")
	g.Add(s, N(a), N(b), TByte('x'))
	g.Add(a)
	g.Add(a, TByte('a'))
	g.Add(b, N(a), N(a))
	p := NewParser(g)
	for _, in := range []string{"x", "ax", "aax", "aaax"} {
		if !p.Accepts(in) {
			t.Errorf("rejects %q", in)
		}
	}
	for _, in := range []string{"", "a", "aaaax", "xa"} {
		if p.Accepts(in) {
			t.Errorf("accepts %q", in)
		}
	}
}

func TestParseTree(t *testing.T) {
	g := xmlLike()
	p := NewParser(g)
	input := "<a>hi</a>"
	tree, err := p.Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NT != g.Start || tree.Lo != 0 || tree.Hi != len(input) {
		t.Fatalf("root = %+v", tree)
	}
	if tree.Text(input) != input {
		t.Fatalf("root text = %q", tree.Text(input))
	}
	// Every node's span must equal the concatenation spans of its kids
	// interleaved with terminals; verify node texts re-derive via spans.
	for _, n := range tree.Nodes(nil) {
		if n.Lo > n.Hi || n.Lo < 0 || n.Hi > len(input) {
			t.Fatalf("bad span %d..%d", n.Lo, n.Hi)
		}
		prod := g.Prods[n.NT][n.Prod]
		nNT := 0
		for _, sym := range prod {
			if sym.IsNT() {
				nNT++
			}
		}
		if nNT != len(n.Kids) {
			t.Fatalf("node has %d kids, production has %d nonterminals", len(n.Kids), nNT)
		}
	}
}

func TestParseRejects(t *testing.T) {
	p := NewParser(xmlLike())
	if _, err := p.Parse("<a>"); err == nil {
		t.Fatal("Parse accepted invalid input")
	}
}

func TestTrim(t *testing.T) {
	g := New()
	s := g.AddNT("S")
	dead := g.AddNT("Dead")       // unproductive: only self-loop
	unreach := g.AddNT("Unreach") // productive but unreachable
	g.Add(s, TByte('a'))
	g.Add(s, N(dead))
	g.Add(dead, N(dead), TByte('b'))
	g.Add(unreach, TByte('c'))
	trimmed := g.Trim()
	if trimmed.NumNT() != 1 {
		t.Fatalf("Trim kept %d nonterminals, want 1", trimmed.NumNT())
	}
	p := NewParser(trimmed)
	if !p.Accepts("a") || p.Accepts("b") {
		t.Fatal("Trim changed the language")
	}
}

func TestTrimEmptyLanguage(t *testing.T) {
	g := New()
	s := g.AddNT("S")
	g.Add(s, N(s), TByte('a'))
	trimmed := g.Trim()
	if NewParser(trimmed).Accepts("a") {
		t.Fatal("empty-language grammar accepts a string after Trim")
	}
}

func TestSamplerProducesMembers(t *testing.T) {
	for name, g := range map[string]*Grammar{"xml": xmlLike(), "dyck": balanced()} {
		p := NewParser(g)
		sm := NewSampler(g, 24)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 300; i++ {
			s := sm.Sample(rng)
			if len(s) > 4000 {
				t.Fatalf("%s: sample too long (%d bytes): depth bound ineffective", name, len(s))
			}
			if !p.Accepts(s) {
				t.Fatalf("%s: sampled %q not accepted by own grammar", name, s)
			}
		}
	}
}

func TestSamplerUnproductivePanics(t *testing.T) {
	g := New()
	s := g.AddNT("S")
	g.Add(s, N(s))
	sm := NewSampler(g, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("sampling unproductive grammar did not panic")
		}
	}()
	sm.Sample(rand.New(rand.NewSource(1)))
}

func TestSamplerTerminatesOnDeepGrammar(t *testing.T) {
	// S → ( S ) | ε with tiny budget must still terminate.
	g := balanced()
	sm := NewSampler(g, 2)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		s := sm.Sample(rng)
		if len(s) > 200 {
			t.Fatalf("runaway sample of length %d", len(s))
		}
	}
}

func TestString(t *testing.T) {
	g := xmlLike()
	out := g.String()
	for _, want := range []string{"start: A", "A ::= ", "Item", "[a-z]", `"<a>"`} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q in:\n%s", want, out)
		}
	}
}

// Property: parse trees reconstruct for every sampled string, and each
// node's production is consistent with its children.
func TestQuickSampleParseRoundTrip(t *testing.T) {
	g := xmlLike()
	p := NewParser(g)
	sm := NewSampler(g, 16)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 150; i++ {
		s := sm.Sample(rng)
		tree, err := p.Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		checkTree(t, g, tree, s)
	}
}

// checkTree verifies that the parse tree is a valid derivation: children
// cover exactly the nonterminal positions, spans tile, terminals match.
func checkTree(t *testing.T, g *Grammar, n *Tree, input string) {
	t.Helper()
	prod := g.Prods[n.NT][n.Prod]
	pos := n.Lo
	ki := 0
	for _, sym := range prod {
		if sym.IsNT() {
			kid := n.Kids[ki]
			ki++
			if kid.NT != sym.NT || kid.Lo != pos {
				t.Fatalf("child mismatch at %d: got NT %d span %d..%d", pos, kid.NT, kid.Lo, kid.Hi)
			}
			checkTree(t, g, kid, input)
			pos = kid.Hi
		} else {
			if pos >= len(input) || !sym.Set.Has(input[pos]) {
				t.Fatalf("terminal mismatch at %d in %q", pos, input)
			}
			pos++
		}
	}
	if pos != n.Hi {
		t.Fatalf("span mismatch: consumed to %d, node ends %d", pos, n.Hi)
	}
}

func BenchmarkEarleyAccepts(b *testing.B) {
	p := NewParser(xmlLike())
	input := strings.Repeat("<a>hi<a>deep</a>x</a>", 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Accepts(input) {
			b.Fatal("rejected")
		}
	}
}

func BenchmarkEarleyParse(b *testing.B) {
	p := NewParser(xmlLike())
	input := strings.Repeat("<a>hi<a>deep</a>x</a>", 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Parse(input); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampler(b *testing.B) {
	sm := NewSampler(xmlLike(), 24)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm.Sample(rng)
	}
}

// TestParseUnitCycle: grammars with unit-production cycles (A → B, B → A)
// must not send the tree builder into infinite recursion.
func TestParseUnitCycle(t *testing.T) {
	g := New()
	a := g.AddNT("A")
	b := g.AddNT("B")
	g.Add(a, N(b))
	g.Add(b, N(a))
	g.Add(b, TByte('x'))
	g.Add(a, N(a), N(a)) // and a same-span binary cycle via nullables
	g.Add(a)
	p := NewParser(g)
	for _, s := range []string{"", "x", "xx", "xxx"} {
		if !p.Accepts(s) {
			t.Fatalf("rejects %q", s)
		}
		tree, err := p.Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		checkTree(t, g, tree, s)
	}
}
