package cfg

import (
	"fmt"
	"strings"
)

// String renders the grammar in a BNF-like notation, one nonterminal per
// line with alternatives separated by " | ". Terminal singletons print as
// quoted characters; larger classes print in character-class notation.
func (g *Grammar) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "start: %s\n", g.Names[g.Start])
	for nt, prods := range g.Prods {
		fmt.Fprintf(&b, "%s ::= ", g.Names[nt])
		if len(prods) == 0 {
			b.WriteString("<no productions>")
		}
		for pi, p := range prods {
			if pi > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(g.prodString(p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ProdString renders one production right-hand side.
func (g *Grammar) ProdString(p Prod) string { return g.prodString(p) }

func (g *Grammar) prodString(p Prod) string {
	if len(p) == 0 {
		return "ε"
	}
	var b strings.Builder
	// Merge runs of singleton terminals into one quoted literal.
	i := 0
	first := true
	for i < len(p) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		s := p[i]
		if s.IsNT() {
			b.WriteString(g.Names[s.NT])
			i++
			continue
		}
		if s.Set.Len() == 1 {
			var lit []byte
			for i < len(p) && !p[i].IsNT() && p[i].Set.Len() == 1 {
				lit = append(lit, p[i].Set.Min())
				i++
			}
			fmt.Fprintf(&b, "%q", lit)
			continue
		}
		b.WriteString(s.Set.String())
		i++
	}
	return b.String()
}
