package cfg_test

// Rung-routing tests for the recognition ladder: each grammar shape must
// take its intended rung (DFA reject, VM verdict, or Earley fallback),
// asserted through the AcceptsRung introspection hook. The differential
// suites in compiled_test.go pin the verdicts themselves; these tests pin
// the routing — a silent fallback to Earley would keep verdicts correct
// while quietly losing the ladder's speed, and a silently-dead prefilter
// would stop reject-fast filtering.

import (
	"fmt"
	"strings"
	"testing"

	"glade/internal/bytesets"
	"glade/internal/cfg"
)

// wantRung asserts both the verdict and the rung that produced it.
func wantRung(t *testing.T, c *cfg.Compiled, input string, want bool, rung cfg.Rung) {
	t.Helper()
	got, r := c.AcceptsRung(input)
	if got != want || r != rung {
		t.Fatalf("AcceptsRung(%q) = (%v, %s), want (%v, %s)", input, got, r, want, rung)
	}
}

func TestVMRungRightRecursion(t *testing.T) {
	g := cfg.New() // S -> a S | ε : the shape GLADE's repetitions learn
	s := g.AddNT("S")
	g.Add(s, cfg.TByte('a'), cfg.N(s))
	g.Add(s)
	c := cfg.Compile(g)
	if !c.HasVM() || !c.HasPrefilter() {
		t.Fatalf("HasVM=%v HasPrefilter=%v, want both", c.HasVM(), c.HasPrefilter())
	}
	wantRung(t, c, "", true, cfg.RungVM)
	wantRung(t, c, "aaaa", true, cfg.RungVM)
	wantRung(t, c, "b", false, cfg.RungDFA)
}

func TestVMRungUnitCycle(t *testing.T) {
	g := cfg.New() // A -> B | a ; B -> A | b — unit closure resolves the cycle
	a := g.AddNT("A")
	b := g.AddNT("B")
	g.Add(a, cfg.N(b))
	g.Add(a, cfg.TByte('a'))
	g.Add(b, cfg.N(a))
	g.Add(b, cfg.TByte('b'))
	c := cfg.Compile(g)
	if !c.HasVM() {
		t.Fatal("unit cycle should lower: closure removes the unit alternatives")
	}
	wantRung(t, c, "a", true, cfg.RungVM)
	wantRung(t, c, "b", true, cfg.RungVM)
	// L = {a,b} is finite and regular, so the approximation is exact and
	// every reject is the DFA's.
	wantRung(t, c, "ab", false, cfg.RungDFA)
	wantRung(t, c, "", false, cfg.RungDFA)
}

func TestVMRungAmbiguousNullableFallsBack(t *testing.T) {
	g := cfg.New() // S -> S S | a | ε — left-recursive, VM must refuse
	s := g.AddNT("S")
	g.Add(s, cfg.N(s), cfg.N(s))
	g.Add(s, cfg.TByte('a'))
	g.Add(s)
	c := cfg.Compile(g)
	if c.HasVM() {
		t.Fatal("left-recursive grammar must not lower to the VM")
	}
	wantRung(t, c, "", true, cfg.RungEarley)
	wantRung(t, c, "aaa", true, cfg.RungEarley)
	wantRung(t, c, "b", false, cfg.RungDFA)
}

func TestVMRungHiddenLeftRecursionFallsBack(t *testing.T) {
	g := cfg.New() // S -> A S b | c ; A -> ε — hidden: S's corner via nullable A
	s := g.AddNT("S")
	a := g.AddNT("A")
	g.Add(s, cfg.N(a), cfg.N(s), cfg.TByte('b'))
	g.Add(s, cfg.TByte('c'))
	g.Add(a)
	c := cfg.Compile(g)
	if c.HasVM() {
		t.Fatal("hidden left recursion must not lower to the VM")
	}
	wantRung(t, c, "cbb", true, cfg.RungEarley)
}

func TestVMRungEmptyLanguage(t *testing.T) {
	g := cfg.New() // S with no productions
	g.AddNT("S")
	c := cfg.Compile(g)
	if !c.HasPrefilter() || !c.HasVM() {
		t.Fatalf("HasPrefilter=%v HasVM=%v, want both (trivially)", c.HasPrefilter(), c.HasVM())
	}
	// The approximation of the empty language is empty: everything dies
	// on the first rung, including ε.
	wantRung(t, c, "", false, cfg.RungDFA)
	wantRung(t, c, "a", false, cfg.RungDFA)
}

func TestVMRungEpsilonOnly(t *testing.T) {
	g := cfg.New() // S -> ε
	s := g.AddNT("S")
	g.Add(s)
	c := cfg.Compile(g)
	wantRung(t, c, "", true, cfg.RungVM)
	wantRung(t, c, "a", false, cfg.RungDFA)
}

func TestVMRungDyck(t *testing.T) {
	g := cfg.New() // S -> ( S ) S | ε — properly context-free, VM-friendly
	s := g.AddNT("S")
	g.Add(s, cfg.TByte('('), cfg.N(s), cfg.TByte(')'), cfg.N(s))
	g.Add(s)
	c := cfg.Compile(g)
	if !c.HasVM() {
		t.Fatal("dyck should lower to the VM")
	}
	wantRung(t, c, "", true, cfg.RungVM)
	wantRung(t, c, "(()())", true, cfg.RungVM)
}

func TestVMBudgetExhaustionFallsBackToEarley(t *testing.T) {
	// S -> A S b | A ; A -> aa | a. Rejecting a long all-a input needs
	// every segmentation of a^n into A's to fail — exponential for the
	// backtracking VM, so the step budget must trip and hand the input
	// to the Earley rung. The DFA cannot reject it: the collapsed
	// approximation forgets the pending b's.
	g := cfg.New()
	s := g.AddNT("S")
	a := g.AddNT("A")
	g.Add(s, cfg.N(a), cfg.N(s), cfg.TByte('b'))
	g.Add(s, cfg.N(a))
	g.AddString(a, "aa")
	g.AddString(a, "a")
	c := cfg.Compile(g)
	if !c.HasVM() {
		t.Fatal("grammar should lower to the VM")
	}
	in := strings.Repeat("a", 64)
	if c.PrefilterRejects(in) {
		t.Fatal("test premise broken: prefilter rejected the probe input")
	}
	wantRung(t, c, in, false, cfg.RungEarley)
	// Short inputs stay within budget and keep the VM rung.
	wantRung(t, c, "ab", false, cfg.RungVM)
	wantRung(t, c, "aa", true, cfg.RungVM)
}

func TestVMCodeBudgetFallsBack(t *testing.T) {
	// One production wider than the VM code budget: both optional rungs
	// are refused (the NFA is over its state budget too) and everything
	// runs on Earley.
	g := cfg.New()
	s := g.AddNT("S")
	g.AddString(s, strings.Repeat("a", 1<<17+16))
	c := cfg.Compile(g)
	if c.HasVM() {
		t.Fatal("oversized grammar must not lower to the VM")
	}
	if c.HasPrefilter() {
		t.Fatal("oversized grammar must skip the prefilter")
	}
	wantRung(t, c, "aaa", false, cfg.RungEarley)
}

func TestVMNormalizationMergesOverlappingAlternatives(t *testing.T) {
	// Duplicate productions, unit chains, and overlapping one-byte
	// classes — the learned-grammar shape that is exponential for naive
	// backtracking. Normalization must merge them so both verdicts stay
	// within budget on the VM rung. The nesting alternative R -> S R makes
	// the language properly context-free, so the prefilter's regular
	// approximation has slack and rejects genuinely reach the VM.
	g := cfg.New()
	s := g.AddNT("S")
	rep := g.AddNT("R")
	alt := g.AddNT("Alt")
	alt2 := g.AddNT("Alt2")
	g.Add(s, cfg.TByte('<'), cfg.N(rep), cfg.TByte('>'))
	g.Add(rep)
	g.Add(rep, cfg.N(alt), cfg.N(rep))
	g.Add(rep, cfg.N(s), cfg.N(rep))
	g.Add(alt, cfg.T(bytesets.Range('a', 'm')))
	g.Add(alt, cfg.T(bytesets.Range('a', 'm'))) // exact duplicate
	g.Add(alt, cfg.T(bytesets.Range('g', 'z'))) // overlapping class
	g.Add(alt, cfg.N(alt2))                     // unit chain
	g.Add(alt2, cfg.T(bytesets.Of('0', '1')))
	c := cfg.Compile(g)
	if !c.HasVM() {
		t.Fatal("grammar should lower to the VM")
	}
	// Unbalanced nesting: the collapsed approximation accepts (the inner
	// "<m>" completes a start production), the VM must reject — without
	// blowing the budget, which raw un-normalized alternatives would.
	in := "<" + strings.Repeat("<m>", 40)
	if c.PrefilterRejects(in) {
		t.Fatal("test premise broken: prefilter rejected the probe")
	}
	wantRung(t, c, in, false, cfg.RungVM)
	wantRung(t, c, "<a<01>z>", true, cfg.RungVM)
}

func TestPrefilterStateCapFallsBack(t *testing.T) {
	// Strings over {a,b} whose 15th-from-last byte is 'a': the minimal
	// DFA needs 2^15 states, far over the cap, so the prefilter is
	// skipped while the VM still answers exactly.
	g := cfg.New()
	s := g.AddNT("S")
	any := bytesets.Of('a', 'b')
	prev := -1
	for i := 0; i < 15; i++ {
		nt := g.AddNT(fmt.Sprintf("T%d", i))
		if prev >= 0 {
			g.Add(prev, cfg.T(any), cfg.N(nt))
		} else {
			g.Add(s, cfg.TByte('a'), cfg.N(nt))
		}
		prev = nt
	}
	g.Add(prev)
	g.Add(s, cfg.T(any), cfg.N(s))
	c := cfg.Compile(g)
	if c.HasPrefilter() {
		t.Fatal("subset construction should exceed the state cap")
	}
	if !c.HasVM() {
		t.Fatal("grammar should still lower to the VM")
	}
	wantRung(t, c, "a"+strings.Repeat("b", 14), true, cfg.RungVM)
	parser := cfg.NewParser(g)
	for _, in := range []string{"", "a", "abbbb", "a" + strings.Repeat("b", 20), strings.Repeat("ab", 16)} {
		if got, _ := c.AcceptsRung(in); got != parser.Accepts(in) {
			t.Fatalf("verdict mismatch on %q", in)
		}
	}
}
