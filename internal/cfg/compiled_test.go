package cfg_test

// Differential property tests for the compiled-grammar engine: the
// compiled recognizer must agree byte for byte with the map-based Earley
// Parser, and the compiled sampler must emit byte-identical streams to
// Sampler, on every grammar the learner actually produces, on handcrafted
// pathological grammars, and on randomly generated ones. A concurrency
// test hammers one Compiled from many goroutines under -race.
//
// External test package so the real learner can run (core imports cfg).

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"glade/internal/bench"
	"glade/internal/bytesets"
	"glade/internal/cfg"
	"glade/internal/core"
	"glade/internal/oracle"
	"glade/internal/programs"
	"glade/internal/targets"
)

// assertEngineAgreement checks Parser vs Compiled (both Accepts and
// AcceptsAll) on every input.
func assertEngineAgreement(t *testing.T, name string, g *cfg.Grammar, inputs []string) {
	t.Helper()
	parser := cfg.NewParser(g)
	comp := cfg.Compile(g)
	want := make([]bool, len(inputs))
	for i, in := range inputs {
		want[i] = parser.Accepts(in)
		got, rung := comp.AcceptsRung(in)
		if got != want[i] {
			t.Fatalf("%s: Compiled.Accepts(%q) = %v via %s rung, Parser says %v", name, in, got, rung, want[i])
		}
		// Every rung must agree with the map-based reference on its own:
		// the Earley rung directly, the prefilter in its sound direction
		// (a DFA rejection must never contradict an accept).
		if e := comp.AcceptsEarley(in); e != want[i] {
			t.Fatalf("%s: AcceptsEarley(%q) = %v, Parser says %v", name, in, e, want[i])
		}
		if comp.PrefilterRejects(in) && want[i] {
			t.Fatalf("%s: DFA prefilter rejects %q, which the reference accepts", name, in)
		}
	}
	for _, workers := range []int{1, 4} {
		got := comp.AcceptsAll(inputs, workers)
		for i := range inputs {
			if got[i] != want[i] {
				t.Fatalf("%s: AcceptsAll(workers=%d)[%d] = %v for %q, Parser says %v",
					name, workers, i, got[i], inputs[i], want[i])
			}
		}
	}
}

// assertSamplerIdentity checks that Compiled.Sample and Sampler.Sample
// consume the rng identically: same seeds in, same strings out. It also
// checks the in-language property — every sampled string must be accepted
// by both engines. depth is the sampling budget: learned grammars use
// DefaultSampleDepth, but arbitrary recursive grammars need a small budget
// (depth bounds a sample tree's height, not its width, and a random
// super-critical grammar can fill the whole 4^depth frontier).
func assertSamplerIdentity(t *testing.T, name string, g *cfg.Grammar, n, depth int) []string {
	t.Helper()
	if !g.Productive()[g.Start] {
		return nil
	}
	sm := cfg.NewSampler(g, depth)
	comp := cfg.Compile(g)
	comp.MaxDepth = depth
	parser := cfg.NewParser(g)
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	var out []string
	for i := 0; i < n; i++ {
		a, b := sm.Sample(rngA), comp.Sample(rngB)
		if a != b {
			t.Fatalf("%s: sample %d diverged: Sampler %q, Compiled %q", name, i, a, b)
		}
		if !parser.Accepts(a) || !comp.Accepts(a) {
			t.Fatalf("%s: sampled string %q not accepted by its own grammar", name, a)
		}
		out = append(out, a)
	}
	// SampleDeriv must agree with Sampler.SampleDeriv rendering too.
	rngA, rngB = rand.New(rand.NewSource(11)), rand.New(rand.NewSource(11))
	for i := 0; i < n/4+1; i++ {
		a := sm.SampleDeriv(rngA, g.Start).Render()
		b := comp.SampleDeriv(rngB, g.Start).Render()
		if a != b {
			t.Fatalf("%s: deriv sample %d diverged: Sampler %q, Compiled %q", name, i, a, b)
		}
	}
	return out
}

// corpusFor assembles accept and reject cases for g — the same corpus the
// parse benchmark's CI gate measures (bench.ParseCorpus at the default
// rand seed), so the differential suite verifies exactly the inputs the
// benchmark times.
func corpusFor(g *cfg.Grammar, seeds []string) []string {
	return bench.ParseCorpus(g, seeds, 1)
}

// TestCompiledMatchesParserLearnedTargets runs the differential check on
// every grammar learned from the §8.2 target languages.
func TestCompiledMatchesParserLearnedTargets(t *testing.T) {
	for _, tgt := range targets.All() {
		opts := core.DefaultOptions()
		opts.Timeout = 30 * time.Second
		res, err := core.Learn(context.Background(), tgt.DocSeeds, oracle.AsCheck(tgt.Oracle), opts)
		if err != nil {
			t.Fatalf("%s: %v", tgt.Name, err)
		}
		assertEngineAgreement(t, "target "+tgt.Name, res.Grammar, corpusFor(res.Grammar, tgt.DocSeeds))
		assertSamplerIdentity(t, "target "+tgt.Name, res.Grammar, 40, cfg.DefaultSampleDepth)
	}
}

// TestCompiledMatchesParserLearnedPrograms runs the differential check on
// grammars learned from the §8.3 simulated programs' bundled seeds.
func TestCompiledMatchesParserLearnedPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("learns several programs")
	}
	for _, p := range programs.All() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			opts := core.DefaultOptions()
			opts.Timeout = 60 * time.Second
			opts.Workers = 4
			res, err := core.Learn(context.Background(), p.Seeds(), oracle.Func(func(s string) bool { return p.Run(s).OK }), opts)
			if err != nil {
				t.Fatal(err)
			}
			assertEngineAgreement(t, p.Name(), res.Grammar, corpusFor(res.Grammar, p.Seeds()))
			assertSamplerIdentity(t, p.Name(), res.Grammar, 40, cfg.DefaultSampleDepth)
		})
	}
}

// pathologicalGrammars are handcrafted stress shapes for the recognizer:
// left/right recursion, heavy ambiguity, nullable chains, unit cycles,
// epsilon-only and empty languages.
func pathologicalGrammars() map[string]*cfg.Grammar {
	out := map[string]*cfg.Grammar{}

	leftRec := cfg.New() // S -> S a | ε
	s := leftRec.AddNT("S")
	leftRec.Add(s, cfg.N(s), cfg.TByte('a'))
	leftRec.Add(s)
	out["left-recursion"] = leftRec

	rightRec := cfg.New() // S -> a S | ε
	s = rightRec.AddNT("S")
	rightRec.Add(s, cfg.TByte('a'), cfg.N(s))
	rightRec.Add(s)
	out["right-recursion"] = rightRec

	ambig := cfg.New() // S -> S S | a | ε
	s = ambig.AddNT("S")
	ambig.Add(s, cfg.N(s), cfg.N(s))
	ambig.Add(s, cfg.TByte('a'))
	ambig.Add(s)
	out["ambiguous-nullable"] = ambig

	cycle := cfg.New() // A -> B | a ; B -> A | b  (unit cycle)
	a := cycle.AddNT("A")
	b := cycle.AddNT("B")
	cycle.Add(a, cfg.N(b))
	cycle.Add(a, cfg.TByte('a'))
	cycle.Add(b, cfg.N(a))
	cycle.Add(b, cfg.TByte('b'))
	out["unit-cycle"] = cycle

	nullChain := cfg.New() // S -> A B ; A -> a | ε ; B -> b | ε
	s = nullChain.AddNT("S")
	a = nullChain.AddNT("A")
	b = nullChain.AddNT("B")
	nullChain.Add(s, cfg.N(a), cfg.N(b))
	nullChain.Add(a, cfg.TByte('a'))
	nullChain.Add(a)
	nullChain.Add(b, cfg.TByte('b'))
	nullChain.Add(b)
	out["nullable-chain"] = nullChain

	eps := cfg.New() // S -> ε
	s = eps.AddNT("S")
	eps.Add(s)
	out["epsilon-only"] = eps

	empty := cfg.New() // S with no productions: the empty language
	empty.AddNT("S")
	out["empty-language"] = empty

	dyck := cfg.New() // S -> ( S ) S | ε
	s = dyck.AddNT("S")
	dyck.Add(s, cfg.TByte('('), cfg.N(s), cfg.TByte(')'), cfg.N(s))
	dyck.Add(s)
	out["dyck"] = dyck

	classes := cfg.New() // S -> [a-c] S | [xy]
	s = classes.AddNT("S")
	classes.Add(s, cfg.T(bytesets.Range('a', 'c')), cfg.N(s))
	classes.Add(s, cfg.T(bytesets.Of('x', 'y')))
	out["byte-classes"] = classes

	return out
}

// TestCompiledMatchesParserPathological enumerates every string up to
// length 6 over a small alphabet and demands exact verdict agreement.
func TestCompiledMatchesParserPathological(t *testing.T) {
	alphabet := []byte("ab()xy")
	var inputs []string
	var grow func(prefix []byte, depth int)
	grow = func(prefix []byte, depth int) {
		inputs = append(inputs, string(prefix))
		if depth == 0 {
			return
		}
		for _, c := range alphabet {
			grow(append(prefix, c), depth-1)
		}
	}
	grow(nil, 4)
	for _, c := range alphabet { // a few longer strings
		inputs = append(inputs, string([]byte{c, c, c, c, c, c}), "((((((", "aaabbb")
	}
	for name, g := range pathologicalGrammars() {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid test grammar: %v", name, err)
		}
		assertEngineAgreement(t, name, g, inputs)
		assertSamplerIdentity(t, name, g, 30, 8)
	}
}

// randomGrammar generates a small arbitrary grammar: random productions
// over a handful of nonterminals, mixing byte-class terminals, nonterminal
// references, and epsilon productions. Many are unproductive or
// non-nullable in interesting ways — exactly the point.
func randomGrammar(rng *rand.Rand) *cfg.Grammar {
	g := cfg.New()
	numNT := 1 + rng.Intn(5)
	for i := 0; i < numNT; i++ {
		g.AddNT(fmt.Sprintf("N%d", i))
	}
	alphabet := []byte("abc()")
	for nt := 0; nt < numNT; nt++ {
		for pi, prods := 0, 1+rng.Intn(3); pi < prods; pi++ {
			var syms []cfg.Sym
			for si, n := 0, rng.Intn(5); si < n; si++ {
				if rng.Intn(2) == 0 {
					syms = append(syms, cfg.N(rng.Intn(numNT)))
					continue
				}
				set := bytesets.Of(alphabet[rng.Intn(len(alphabet))])
				if rng.Intn(4) == 0 {
					set.Add(alphabet[rng.Intn(len(alphabet))])
				}
				syms = append(syms, cfg.T(set))
			}
			g.Add(nt, syms...)
		}
	}
	return g
}

// TestCompiledMatchesParserRandom fuzzes the two engines against each
// other over random grammars and random inputs.
func TestCompiledMatchesParserRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []byte("abc()")
	for trial := 0; trial < 150; trial++ {
		g := randomGrammar(rng)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: invalid random grammar: %v", trial, err)
		}
		inputs := []string{""}
		for i := 0; i < 40; i++ {
			b := make([]byte, rng.Intn(10))
			for j := range b {
				b[j] = alphabet[rng.Intn(len(alphabet))]
			}
			inputs = append(inputs, string(b))
		}
		if g.Productive()[g.Start] {
			sm := cfg.NewSampler(g, 6)
			for i := 0; i < 10; i++ {
				inputs = append(inputs, sm.Sample(rng))
			}
		}
		name := fmt.Sprintf("trial-%d", trial)
		assertEngineAgreement(t, name, g, inputs)
		assertSamplerIdentity(t, name, g, 10, 6)
	}
}

// TestCompiledConcurrent hammers one Compiled from 8 goroutines mixing
// Accepts, AcceptsAll, and Sample — the -race proof that the pooled
// scratch state is actually per-call.
func TestCompiledConcurrent(t *testing.T) {
	g := pathologicalGrammars()["dyck"]
	parser := cfg.NewParser(g)
	comp := cfg.Compile(g)
	rng := rand.New(rand.NewSource(5))
	var inputs []string
	var want []bool
	sm := cfg.NewSampler(g, cfg.DefaultSampleDepth)
	for i := 0; i < 200; i++ {
		var s string
		if i%2 == 0 {
			s = sm.Sample(rng)
		} else {
			b := make([]byte, rng.Intn(12))
			for j := range b {
				b[j] = "()"[rng.Intn(2)]
			}
			s = string(b)
		}
		inputs = append(inputs, s)
		want = append(want, parser.Accepts(s))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for round := 0; round < 30; round++ {
				for i, in := range inputs {
					if got := comp.Accepts(in); got != want[i] {
						errs <- fmt.Errorf("worker %d: Accepts(%q) = %v, want %v", w, in, got, want[i])
						return
					}
				}
				got := comp.AcceptsAll(inputs, 3)
				for i := range inputs {
					if got[i] != want[i] {
						errs <- fmt.Errorf("worker %d: AcceptsAll[%d] wrong", w, i)
						return
					}
				}
				if s := comp.Sample(rng); !comp.Accepts(s) {
					errs <- fmt.Errorf("worker %d: sampled %q rejected", w, s)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
