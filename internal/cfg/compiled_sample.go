package cfg

import (
	"math/rand"
	"sync"
)

// The compiled sampler draws from the same distribution as Sampler — the
// uniform PCFG of §8.1 with the depth-bounded fallback — directly over the
// flat IR's cost tables. Production choice consumes the rng identically to
// Sampler (one Intn over the in-budget candidate count, in production
// order, then one Intn per terminal byte), so a Compiled and a Sampler
// seeded with the same rng emit byte-identical streams; the difference is
// purely mechanical: no candidate slice is materialized per expansion, and
// string assembly goes through a pooled byte buffer, so a steady-state
// Sample allocates only the returned string.

// sampleBufs pools the output buffers of Sample/SampleFrom across all
// Compiled grammars.
var sampleBufs = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// Sample draws one string from the start symbol. It panics if the start
// symbol is unproductive. It is safe for concurrent use with distinct
// rngs.
func (c *Compiled) Sample(rng *rand.Rand) string {
	return c.SampleFrom(rng, int(c.start))
}

// SampleFrom draws one string derived from nonterminal nt.
func (c *Compiled) SampleFrom(rng *rand.Rand, nt int) string {
	if c.minDepth[nt] == unboundedCost {
		panic("cfg: sampling from unproductive nonterminal " + c.names[nt])
	}
	bp := sampleBufs.Get().(*[]byte)
	buf := c.appendSample((*bp)[:0], rng, int32(nt), c.MaxDepth)
	s := string(buf)
	*bp = buf
	sampleBufs.Put(bp)
	return s
}

// pickProd chooses a production of nt uniformly among those whose
// derivation cost fits the budget, falling back to the minimal-cost group
// when none fits — Sampler's candidate rule, computed by counting over the
// cost table instead of building a slice.
func (c *Compiled) pickProd(rng *rand.Rand, nt int32, budget int) int32 {
	lo, hi := c.ntProd[nt], c.ntProd[nt+1]
	count := 0
	for p := lo; p < hi; p++ {
		if int(c.prodCost[p]) <= budget {
			count++
		}
	}
	if count == 0 {
		best := int32(unboundedCost)
		for p := lo; p < hi; p++ {
			if c.prodCost[p] < best {
				best = c.prodCost[p]
			}
		}
		for p := lo; p < hi; p++ {
			if c.prodCost[p] == best {
				count++
			}
		}
		k := rng.Intn(count)
		for p := lo; ; p++ {
			if c.prodCost[p] == best {
				if k == 0 {
					return p
				}
				k--
			}
		}
	}
	k := rng.Intn(count)
	for p := lo; ; p++ {
		if int(c.prodCost[p]) <= budget {
			if k == 0 {
				return p
			}
			k--
		}
	}
}

// appendSample expands nt under the budget, appending the produced bytes
// to buf.
func (c *Compiled) appendSample(buf []byte, rng *rand.Rand, nt int32, budget int) []byte {
	p := c.pickProd(rng, nt, budget)
	for i := c.prodOff[p]; i < c.prodOff[p+1]; i++ {
		s := c.arena[i]
		if s >= 0 {
			buf = c.appendSample(buf, rng, s, budget-1)
			continue
		}
		set := c.classes[^s]
		buf = append(buf, set.Pick(rng.Intn(set.Len())))
	}
	return buf
}

// SampleDeriv draws a random derivation tree from nonterminal nt — the
// grammar fuzzer's subtree-resampling primitive. The tree necessarily
// allocates; Deriv.Prod is the production's index within nt, matching
// Grammar.Prods[nt].
func (c *Compiled) SampleDeriv(rng *rand.Rand, nt int) *Deriv {
	if c.minDepth[nt] == unboundedCost {
		panic("cfg: sampling from unproductive nonterminal " + c.names[nt])
	}
	return c.expandDeriv(rng, int32(nt), c.MaxDepth)
}

func (c *Compiled) expandDeriv(rng *rand.Rand, nt int32, budget int) *Deriv {
	p := c.pickProd(rng, nt, budget)
	d := &Deriv{NT: int(nt), Prod: int(p - c.ntProd[nt]), Parts: make([]DerivPart, c.prodLen(p))}
	for i := c.prodOff[p]; i < c.prodOff[p+1]; i++ {
		s := c.arena[i]
		if s >= 0 {
			d.Parts[i-c.prodOff[p]] = DerivPart{Child: c.expandDeriv(rng, s, budget-1)}
			continue
		}
		set := c.classes[^s]
		d.Parts[i-c.prodOff[p]] = DerivPart{Byte: set.Pick(rng.Intn(set.Len()))}
	}
	return d
}
