// Package cfg implements the context-free grammar substrate: grammar
// representation with byte-class terminals, an Earley recognizer and parser,
// the probabilistic sampler of §8.1 of the paper (uniform production choice
// with a depth-bounded fallback), and grammar printing.
package cfg

import (
	"fmt"

	"glade/internal/bytesets"
)

// Sym is one grammar symbol: either a nonterminal (NT >= 0) or a terminal
// byte class (NT == -1, Set holds the accepted bytes).
type Sym struct {
	NT  int
	Set bytesets.Set
}

// N returns the nonterminal symbol with index i.
func N(i int) Sym {
	if i < 0 {
		panic("cfg: negative nonterminal index")
	}
	return Sym{NT: i}
}

// T returns a terminal symbol matching any byte in set.
func T(set bytesets.Set) Sym { return Sym{NT: -1, Set: set} }

// TByte returns a terminal symbol matching exactly b.
func TByte(b byte) Sym { return Sym{NT: -1, Set: bytesets.Of(b)} }

// IsNT reports whether the symbol is a nonterminal.
func (s Sym) IsNT() bool { return s.NT >= 0 }

// Prod is one production right-hand side. An empty Prod derives ε.
type Prod []Sym

// Grammar is a context-free grammar. Nonterminals are indices into Names
// and Prods; Start is the start nonterminal.
type Grammar struct {
	Names []string
	Prods [][]Prod
	Start int
}

// New returns an empty grammar; the first added nonterminal becomes the
// start symbol.
func New() *Grammar { return &Grammar{} }

// AddNT adds a nonterminal with the given name and returns its index.
func (g *Grammar) AddNT(name string) int {
	g.Names = append(g.Names, name)
	g.Prods = append(g.Prods, nil)
	return len(g.Names) - 1
}

// Add appends a production nt → syms.
func (g *Grammar) Add(nt int, syms ...Sym) {
	g.Prods[nt] = append(g.Prods[nt], Prod(syms))
}

// AddString appends a production nt → the literal byte string s.
func (g *Grammar) AddString(nt int, s string) {
	g.Add(nt, Str(s)...)
}

// Str converts a literal string to a symbol sequence of single-byte
// terminals, for use inside larger productions.
func Str(s string) []Sym {
	syms := make([]Sym, len(s))
	for i := 0; i < len(s); i++ {
		syms[i] = TByte(s[i])
	}
	return syms
}

// Cat concatenates symbol sequences, flattening the usual mix of Str(...)
// and single symbols when building grammars by hand.
func Cat(parts ...[]Sym) []Sym {
	var out []Sym
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// One wraps a single symbol as a sequence, for use with Cat.
func One(s Sym) []Sym { return []Sym{s} }

// NumNT returns the number of nonterminals.
func (g *Grammar) NumNT() int { return len(g.Names) }

// Validate checks structural invariants.
func (g *Grammar) Validate() error {
	if len(g.Names) == 0 {
		return fmt.Errorf("cfg: grammar has no nonterminals")
	}
	if g.Start < 0 || g.Start >= len(g.Names) {
		return fmt.Errorf("cfg: start symbol %d out of range", g.Start)
	}
	for nt, prods := range g.Prods {
		for pi, p := range prods {
			for si, s := range p {
				if s.IsNT() && s.NT >= len(g.Names) {
					return fmt.Errorf("cfg: %s production %d symbol %d references unknown nonterminal %d",
						g.Names[nt], pi, si, s.NT)
				}
				if !s.IsNT() && s.Set.IsEmpty() {
					return fmt.Errorf("cfg: %s production %d symbol %d is an empty terminal class",
						g.Names[nt], pi, si)
				}
			}
		}
	}
	return nil
}

// Nullable returns, for each nonterminal, whether it derives ε.
func (g *Grammar) Nullable() []bool {
	nullable := make([]bool, g.NumNT())
	for changed := true; changed; {
		changed = false
		for nt, prods := range g.Prods {
			if nullable[nt] {
				continue
			}
		prodLoop:
			for _, p := range prods {
				for _, s := range p {
					if !s.IsNT() || !nullable[s.NT] {
						continue prodLoop
					}
				}
				nullable[nt] = true
				changed = true
				break
			}
		}
	}
	return nullable
}

// Productive returns, for each nonterminal, whether it derives at least one
// terminal string.
func (g *Grammar) Productive() []bool {
	prod := make([]bool, g.NumNT())
	for changed := true; changed; {
		changed = false
		for nt, prods := range g.Prods {
			if prod[nt] {
				continue
			}
		prodLoop:
			for _, p := range prods {
				for _, s := range p {
					if s.IsNT() && !prod[s.NT] {
						continue prodLoop
					}
				}
				prod[nt] = true
				changed = true
				break
			}
		}
	}
	return prod
}

// Reachable returns, for each nonterminal, whether it is reachable from the
// start symbol.
func (g *Grammar) Reachable() []bool {
	reach := make([]bool, g.NumNT())
	reach[g.Start] = true
	stack := []int{g.Start}
	for len(stack) > 0 {
		nt := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Prods[nt] {
			for _, s := range p {
				if s.IsNT() && !reach[s.NT] {
					reach[s.NT] = true
					stack = append(stack, s.NT)
				}
			}
		}
	}
	return reach
}

// Trim returns an equivalent grammar containing only reachable and
// productive nonterminals. If the start symbol is unproductive the result
// is a grammar with the bare start symbol and no productions (the empty
// language).
func (g *Grammar) Trim() *Grammar {
	productive := g.Productive()
	reach := g.Reachable()
	keep := make([]int, g.NumNT())
	out := New()
	for nt := range g.Names {
		keep[nt] = -1
		if reach[nt] && productive[nt] {
			keep[nt] = out.AddNT(g.Names[nt])
		}
	}
	if keep[g.Start] < 0 {
		s := out.AddNT(g.Names[g.Start])
		out.Start = s
		return out
	}
	out.Start = keep[g.Start]
	for nt, prods := range g.Prods {
		if keep[nt] < 0 {
			continue
		}
	prodLoop:
		for _, p := range prods {
			np := make(Prod, len(p))
			for i, s := range p {
				if s.IsNT() {
					if keep[s.NT] < 0 {
						continue prodLoop
					}
					np[i] = N(keep[s.NT])
				} else {
					np[i] = s
				}
			}
			out.Prods[keep[nt]] = append(out.Prods[keep[nt]], np)
		}
	}
	return out
}

// Terminals returns the union of all terminal byte classes in the grammar —
// the alphabet a baseline learner is instantiated over.
func (g *Grammar) Terminals() bytesets.Set {
	var s bytesets.Set
	for _, prods := range g.Prods {
		for _, p := range prods {
			for _, sym := range p {
				if !sym.IsNT() {
					s = s.Union(sym.Set)
				}
			}
		}
	}
	return s
}

// Size returns the total number of symbols over all productions — the usual
// measure of grammar size.
func (g *Grammar) Size() int {
	n := 0
	for _, prods := range g.Prods {
		for _, p := range prods {
			n += 1 + len(p)
		}
	}
	return n
}
