package cfg

import (
	"math/rand"
	"strings"
)

// Deriv is a concrete derivation tree whose leaves carry the produced
// bytes. Unlike Tree (which indexes spans of a fixed input), Deriv owns its
// text and supports splicing — the representation the grammar-based fuzzer
// mutates.
type Deriv struct {
	NT    int
	Prod  int
	Parts []DerivPart
}

// DerivPart is one right-hand-side position: either a child derivation (for
// a nonterminal symbol) or a produced terminal byte.
type DerivPart struct {
	Child *Deriv // nil for terminal positions
	Byte  byte
}

// Render returns the string this derivation produces.
func (d *Deriv) Render() string {
	var b strings.Builder
	d.render(&b)
	return b.String()
}

func (d *Deriv) render(b *strings.Builder) {
	for _, p := range d.Parts {
		if p.Child != nil {
			p.Child.render(b)
		} else {
			b.WriteByte(p.Byte)
		}
	}
}

// Clone deep-copies the derivation.
func (d *Deriv) Clone() *Deriv {
	out := &Deriv{NT: d.NT, Prod: d.Prod, Parts: make([]DerivPart, len(d.Parts))}
	for i, p := range d.Parts {
		if p.Child != nil {
			out.Parts[i] = DerivPart{Child: p.Child.Clone()}
		} else {
			out.Parts[i] = p
		}
	}
	return out
}

// Nodes appends all derivation nodes (preorder) to dst and returns it.
func (d *Deriv) Nodes(dst []*Deriv) []*Deriv {
	dst = append(dst, d)
	for _, p := range d.Parts {
		if p.Child != nil {
			dst = p.Child.Nodes(dst)
		}
	}
	return dst
}

// DerivFromTree converts a parse tree of input (from Parser.Parse) into an
// owned derivation.
func DerivFromTree(g *Grammar, t *Tree, input string) *Deriv {
	prod := g.Prods[t.NT][t.Prod]
	d := &Deriv{NT: t.NT, Prod: t.Prod, Parts: make([]DerivPart, len(prod))}
	pos := t.Lo
	ki := 0
	for i, sym := range prod {
		if sym.IsNT() {
			kid := t.Kids[ki]
			ki++
			d.Parts[i] = DerivPart{Child: DerivFromTree(g, kid, input)}
			pos = kid.Hi
		} else {
			d.Parts[i] = DerivPart{Byte: input[pos]}
			pos++
		}
	}
	return d
}

// SampleDeriv draws a random derivation from nonterminal nt, using the same
// uniform production choice and depth budgeting as Sample.
func (s *Sampler) SampleDeriv(rng *rand.Rand, nt int) *Deriv {
	if s.minDepth[nt] == unbounded {
		panic("cfg: sampling from unproductive nonterminal " + s.g.Names[nt])
	}
	return s.expandDeriv(rng, nt, s.MaxDepth)
}

func (s *Sampler) expandDeriv(rng *rand.Rand, nt, budget int) *Deriv {
	prods := s.g.Prods[nt]
	var fits []int
	for pi := range prods {
		if s.minCost[nt][pi] <= budget {
			fits = append(fits, pi)
		}
	}
	if len(fits) == 0 {
		best := unbounded
		for pi := range prods {
			if s.minCost[nt][pi] < best {
				best = s.minCost[nt][pi]
			}
		}
		for pi := range prods {
			if s.minCost[nt][pi] == best {
				fits = append(fits, pi)
			}
		}
	}
	pi := fits[rng.Intn(len(fits))]
	prod := prods[pi]
	d := &Deriv{NT: nt, Prod: pi, Parts: make([]DerivPart, len(prod))}
	for i, sym := range prod {
		if sym.IsNT() {
			d.Parts[i] = DerivPart{Child: s.expandDeriv(rng, sym.NT, budget-1)}
		} else {
			n := sym.Set.Len()
			d.Parts[i] = DerivPart{Byte: sym.Set.Pick(rng.Intn(n))}
		}
	}
	return d
}
