package cfg

import (
	"math/rand"
	"strings"
	"testing"

	"glade/internal/bytesets"
)

func TestMarshalRoundTripXMLLike(t *testing.T) {
	g := xmlLike()
	text := Marshal(g)
	back, err := Unmarshal(text)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, text)
	}
	if !Equal(g, back) {
		t.Fatalf("round trip changed the grammar:\n--- original\n%s\n--- back\n%s", Marshal(g), Marshal(back))
	}
	// Language preserved on concrete strings.
	p1, p2 := NewParser(g), NewParser(back)
	for _, s := range []string{"", "hi", "<a>hi</a>", "<a><a>x</a></a>", "<a>", "HI"} {
		if p1.Accepts(s) != p2.Accepts(s) {
			t.Fatalf("language changed at %q", s)
		}
	}
}

func TestMarshalFormat(t *testing.T) {
	g := New()
	s := g.AddNT("S")
	g.Add(s, Cat(Str("ab\n"), One(T(bytesets.Range('a', 'z'))), One(N(s)))...)
	g.Add(s)
	out := Marshal(g)
	for _, want := range []string{"start S", `"ab\n"`, "{a-z}", "S ->\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("Marshal output missing %q:\n%s", want, out)
		}
	}
}

func TestUnmarshalHandWritten(t *testing.T) {
	text := `
# Dyck language with letters
start S
S ->
S -> "(" S ")" S
S -> {a-c} S
`
	g, err := Unmarshal(text)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser(g)
	for _, s := range []string{"", "()", "(ab)c", "((a))"} {
		if !p.Accepts(s) {
			t.Errorf("rejects %q", s)
		}
	}
	for _, s := range []string{"(", ")", "d"} {
		if p.Accepts(s) {
			t.Errorf("accepts %q", s)
		}
	}
}

func TestUnmarshalDefaultStart(t *testing.T) {
	g, err := Unmarshal("A -> \"x\" B\nB -> \"y\"\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.Names[g.Start] != "A" {
		t.Fatalf("default start = %s", g.Names[g.Start])
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []string{
		"",                      // no productions
		"S \"x\"",               // missing arrow
		`S -> "unterminated`,    // bad literal
		"S -> {a-",              // unterminated class
		"S -> {z-a}",            // inverted range
		"start T\nS -> \"x\"\n", // unknown start
		"S -> ?",                // bad symbol
	}
	for _, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("Unmarshal(%q) succeeded", c)
		}
	}
}

func TestClassEscapes(t *testing.T) {
	g := New()
	s := g.AddNT("S")
	set := bytesets.Of('-', '\\', '{', '}', '\n', 0x07)
	g.Add(s, T(set))
	back, err := Unmarshal(Marshal(g))
	if err != nil {
		t.Fatal(err)
	}
	got := back.Prods[back.Start][0][0].Set
	if !got.Equal(set) {
		t.Fatalf("class round trip: %v != %v", got.Bytes(), set.Bytes())
	}
}

// Property: Marshal/Unmarshal round-trips random grammars and preserves
// membership on sampled strings.
func TestQuickMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for iter := 0; iter < 60; iter++ {
		g := randomGrammar(rng)
		back, err := Unmarshal(Marshal(g))
		if err != nil {
			t.Fatalf("Unmarshal: %v\n%s", err, Marshal(g))
		}
		if !Equal(g, back) {
			t.Fatalf("not equal after round trip:\n%s\nvs\n%s", Marshal(g), Marshal(back))
		}
		if !g.Productive()[g.Start] {
			continue
		}
		sm := NewSampler(g, 12)
		p := NewParser(back)
		for k := 0; k < 10; k++ {
			s := sm.Sample(rng)
			if !p.Accepts(s) {
				t.Fatalf("round-tripped grammar rejects sample %q of\n%s", s, Marshal(g))
			}
		}
	}
}

// randomGrammar builds a small random grammar with valid structure.
func randomGrammar(rng *rand.Rand) *Grammar {
	g := New()
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		g.AddNT("N" + string(rune('A'+i)))
	}
	for nt := 0; nt < n; nt++ {
		prods := 1 + rng.Intn(3)
		for p := 0; p < prods; p++ {
			var syms []Sym
			for k := rng.Intn(4); k > 0; k-- {
				switch rng.Intn(3) {
				case 0:
					syms = append(syms, N(rng.Intn(n)))
				case 1:
					syms = append(syms, TByte(byte('a'+rng.Intn(4))))
				default:
					lo := byte('a' + rng.Intn(4))
					syms = append(syms, T(bytesets.Range(lo, lo+byte(rng.Intn(4)))))
				}
			}
			g.Add(nt, syms...)
		}
	}
	return g
}
