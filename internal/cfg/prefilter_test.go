package cfg_test

// Soundness and routing tests for the DFA prefilter rung, including the
// pinned golden grammars the learner actually produces: the prefilter may
// only ever reject strings outside the language, it must reject a useful
// share of near-miss corpora (a 0% reject rate means the rung is dead
// weight), and the learned sed/xml grammars must keep their intended
// ladder shapes — xml lowers to the VM, sed's hidden left recursion
// (A1 ⇒ A1b A1 with A1b ⇒* A1 A1) correctly refuses the VM and runs
// DFA → Earley.

import (
	"os"
	"path/filepath"
	"testing"

	"glade/internal/bench"
	"glade/internal/bytesets"
	"glade/internal/cfg"
	"glade/internal/programs"
)

// loadGolden parses one pinned learned grammar from the core package's
// golden testdata.
func loadGolden(t *testing.T, name string) *cfg.Grammar {
	t.Helper()
	text, err := os.ReadFile(filepath.Join("..", "core", "testdata", name))
	if err != nil {
		t.Fatalf("golden grammar: %v", err)
	}
	g, err := cfg.Unmarshal(string(text))
	if err != nil {
		t.Fatalf("golden grammar %s: %v", name, err)
	}
	return g
}

// TestPrefilterSoundnessGolden checks, over the same corpus the parse
// benchmark gates on, that the prefilter never rejects an input the
// reference Earley engine accepts — and that it does reject something.
func TestPrefilterSoundnessGolden(t *testing.T) {
	for _, tc := range []struct {
		golden, program string
	}{
		{"golden_sed_w1.grammar", "sed"},
		{"golden_xml_w1.grammar", "xml"},
	} {
		g := loadGolden(t, tc.golden)
		c := cfg.Compile(g)
		if !c.HasPrefilter() {
			t.Fatalf("%s: learned grammar should build a prefilter", tc.program)
		}
		p := programs.ByName(tc.program)
		if p == nil {
			t.Fatalf("unknown program %s", tc.program)
		}
		rejected := 0
		for _, in := range bench.ParseCorpus(g, p.Seeds(), 1) {
			if !c.PrefilterRejects(in) {
				continue
			}
			rejected++
			if c.AcceptsEarley(in) {
				t.Fatalf("%s: prefilter rejects %q, which Earley accepts", tc.program, in)
			}
		}
		if rejected == 0 {
			t.Fatalf("%s: prefilter rejected nothing on the benchmark corpus", tc.program)
		}
	}
}

// TestLadderShapeGolden pins which rungs the pinned learned grammars get:
// losing xml's VM (or sed's prefilter) would silently degrade the ladder
// while every verdict stayed correct.
func TestLadderShapeGolden(t *testing.T) {
	xml := cfg.Compile(loadGolden(t, "golden_xml_w1.grammar"))
	if !xml.HasPrefilter() || !xml.HasVM() {
		t.Fatalf("xml: HasPrefilter=%v HasVM=%v, want full ladder", xml.HasPrefilter(), xml.HasVM())
	}
	// sed's learned grammar is genuinely left-recursive after unit closure,
	// so the VM must refuse it and accepts must take the Earley rung.
	sed := cfg.Compile(loadGolden(t, "golden_sed_w1.grammar"))
	if !sed.HasPrefilter() {
		t.Fatal("sed: learned grammar should build a prefilter")
	}
	if sed.HasVM() {
		t.Fatal("sed: left-recursive learned grammar must not lower to the VM")
	}
	if got, rung := sed.AcceptsRung("s/a/b/"); !got || rung != cfg.RungEarley {
		t.Fatalf("sed: AcceptsRung(s/a/b/) = (%v, %s), want (true, earley)", got, rung)
	}
}

// TestPrefilterExactOnRegularGrammar: for a regular grammar the collapsed
// approximation is the language itself, so the prefilter alone decides
// every reject.
func TestPrefilterExactOnRegularGrammar(t *testing.T) {
	g := cfg.New() // S -> [a-c] S | [xy]
	s := g.AddNT("S")
	g.Add(s, cfg.T(bytesets.Range('a', 'c')), cfg.N(s))
	g.Add(s, cfg.T(bytesets.Of('x', 'y')))
	c := cfg.Compile(g)
	parser := cfg.NewParser(g)
	for _, in := range []string{"", "x", "abcx", "abc", "xy", "aay", "zax", "aaz"} {
		want := parser.Accepts(in)
		got, rung := c.AcceptsRung(in)
		if got != want {
			t.Fatalf("AcceptsRung(%q) = %v, want %v", in, got, want)
		}
		if !want && rung != cfg.RungDFA {
			t.Fatalf("reject of %q took the %s rung, want dfa (approximation is exact)", in, rung)
		}
	}
}
