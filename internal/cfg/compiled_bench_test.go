package cfg_test

// Microbenchmarks pitting the compiled engine against the map-based
// Parser/Sampler on grammars learned from the §8.3 sed and xml programs.
// All report allocations, so `go test -bench` makes allocation regressions
// on the membership and sampling hot paths visible.
//
//	go test -bench 'Accepts|Sample' -benchmem ./internal/cfg/

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"glade/internal/cfg"
	"glade/internal/core"
	"glade/internal/oracle"
	"glade/internal/programs"
)

// benchGrammars caches one learned grammar (and a membership corpus) per
// program across all benchmarks in the package.
var benchGrammars sync.Map // name -> *benchGrammar

type benchGrammar struct {
	g      *cfg.Grammar
	corpus []string
	err    error
}

func learnedBenchGrammar(tb testing.TB, name string) *benchGrammar {
	if v, ok := benchGrammars.Load(name); ok {
		bg := v.(*benchGrammar)
		if bg.err != nil {
			tb.Fatal(bg.err)
		}
		return bg
	}
	p := programs.ByName(name)
	opts := core.DefaultOptions()
	opts.Timeout = 60 * time.Second
	opts.Workers = 4
	res, err := core.Learn(context.Background(), p.Seeds(), oracle.Func(func(s string) bool { return p.Run(s).OK }), opts)
	bg := &benchGrammar{err: err}
	if err == nil {
		bg.g = res.Grammar
		bg.corpus = corpusFor(res.Grammar, p.Seeds())
	}
	benchGrammars.Store(name, bg)
	if bg.err != nil {
		tb.Fatal(bg.err)
	}
	return bg
}

func benchPrograms(b *testing.B, f func(b *testing.B, bg *benchGrammar)) {
	for _, name := range []string{"sed", "xml"} {
		name := name
		b.Run(name, func(b *testing.B) {
			bg := learnedBenchGrammar(b, name)
			f(b, bg)
		})
	}
}

// BenchmarkAccepts measures single-input membership: the map-based Earley
// Parser versus the compiled recognizer, round-robin over the corpus.
func BenchmarkAccepts(b *testing.B) {
	benchPrograms(b, func(b *testing.B, bg *benchGrammar) {
		var bytes int
		for _, s := range bg.corpus {
			bytes += len(s)
		}
		b.Run("parser", func(b *testing.B) {
			parser := cfg.NewParser(bg.g)
			b.ReportAllocs()
			b.SetBytes(int64(bytes) / int64(len(bg.corpus)))
			for i := 0; i < b.N; i++ {
				parser.Accepts(bg.corpus[i%len(bg.corpus)])
			}
		})
		b.Run("compiled", func(b *testing.B) {
			comp := cfg.Compile(bg.g)
			b.ReportAllocs()
			b.SetBytes(int64(bytes) / int64(len(bg.corpus)))
			for i := 0; i < b.N; i++ {
				comp.Accepts(bg.corpus[i%len(bg.corpus)])
			}
		})
	})
}

// BenchmarkAcceptsAll measures batch membership over the whole corpus at 1
// and 8 workers.
func BenchmarkAcceptsAll(b *testing.B) {
	benchPrograms(b, func(b *testing.B, bg *benchGrammar) {
		comp := cfg.Compile(bg.g)
		for _, workers := range []int{1, 8} {
			workers := workers
			name := map[int]string{1: "workers-1", 8: "workers-8"}[workers]
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					comp.AcceptsAll(bg.corpus, workers)
				}
			})
		}
	})
}

// BenchmarkSample measures string sampling: the pointer-walking Sampler
// versus the compiled sampler with pooled output buffers.
func BenchmarkSample(b *testing.B) {
	benchPrograms(b, func(b *testing.B, bg *benchGrammar) {
		b.Run("sampler", func(b *testing.B) {
			sm := cfg.NewSampler(bg.g, cfg.DefaultSampleDepth)
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sm.Sample(rng)
			}
		})
		b.Run("compiled", func(b *testing.B) {
			comp := cfg.Compile(bg.g)
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				comp.Sample(rng)
			}
		})
	})
}
