package cfg

import "math/bits"

// prefilter.go is the first rung of the recognition ladder: a DFA over a
// regular over-approximation of the grammar's language, used as an O(n),
// allocation-free reject-fast filter in front of the VM and Earley rungs.
//
// The approximation is the classic RTN collapse (Nederhof's basic
// construction): treat every dotted position of the flat IR as an NFA
// state, wire terminal symbols as byte-class transitions, and approximate
// nonterminal symbols by ε-edges into every production of the callee plus
// ε-edges from every production end of that callee back to *every*
// position that follows an occurrence of it. Because call and return
// edges are not matched up, the NFA's language is a superset of L(G):
// whenever the DFA rejects, the input is certainly not in the language,
// so Accepts can return false without running a general recognizer.
// DFA acceptance means only "maybe" and hands off to the next rung.
//
// The subset construction runs over byte-equivalence classes (bytes that
// no terminal class distinguishes share a DFA column) and is bounded by
// state and work budgets; grammars whose approximation explodes simply
// run without a prefilter.

const (
	// maxPrefilterNFAStates bounds the dotted-state NFA: grammars larger
	// than this skip the prefilter (subset-construction bitsets would be
	// proportionally wide).
	maxPrefilterNFAStates = 1 << 16
	// maxPrefilterDFAStates bounds the determinized automaton; the classic
	// 2^n blow-up grammars hit this and fall back to filterless operation.
	maxPrefilterDFAStates = 2048
	// prefilterWorkBudget bounds total elementary construction steps so
	// Compile stays cheap even on adversarial (e.g. fuzz-generated)
	// grammars.
	prefilterWorkBudget = 1 << 24
)

// prefilter is the built DFA: a flat transition table over byte-equivalence
// classes. start == -1 encodes the empty approximation (reject everything).
type prefilter struct {
	width  int32      // number of byte-equivalence classes
	start  int32      // start state, or -1 when even ε is rejected
	cls    [256]int32 // byte -> equivalence class
	delta  []int32    // state*width + class -> next state, -1 = dead
	accept []bool     // per-state acceptance
}

// mayAccept reports whether input is in the DFA's (superset) language.
// A false result proves input ∉ L(g); true means the next rung decides.
// It is allocation-free and safe for concurrent use.
func (d *prefilter) mayAccept(input string) bool {
	st := d.start
	if st < 0 {
		return false
	}
	w := int(d.width)
	delta := d.delta
	for i := 0; i < len(input); i++ {
		st = delta[int(st)*w+int(d.cls[input[i]])]
		if st < 0 {
			return false
		}
	}
	return d.accept[st]
}

// buildPrefilter constructs the approximation DFA from the flat IR, or
// returns nil when the grammar exceeds the state or work budgets.
func (c *Compiled) buildPrefilter() *prefilter {
	numStates := len(c.arena) + c.numProds()
	if numStates > maxPrefilterNFAStates {
		return nil
	}
	budget := prefilterWorkBudget

	// NFA over dotted states, reusing the compiled recognizer's encoding:
	// ds(p, dot) = prodOff[p] + p + dot, so ds+1 is "dot advanced by one".
	symCls := make([]int32, numStates) // terminal class at the dot, or -1
	eps := make([][]int32, numStates)  // ε-edges (call entries + returns)
	acc := make([]bool, numStates)     // production ends of the start NT
	afterNT := make([][]int32, c.NumNT())
	for i := range symCls {
		symCls[i] = -1
	}
	for p := 0; p < c.numProds(); p++ {
		base := int(c.prodOff[p]) + p
		n := c.prodLen(int32(p))
		for dot := 0; dot < n; dot++ {
			budget--
			s := c.arena[int(c.prodOff[p])+dot]
			ds := base + dot
			if s < 0 {
				symCls[ds] = ^s
				continue
			}
			// Call edges into every production of s; the matching return
			// edge is registered below once afterNT is complete.
			for q := c.ntProd[s]; q < c.ntProd[s+1]; q++ {
				eps[ds] = append(eps[ds], c.prodOff[q]+q)
			}
			afterNT[s] = append(afterNT[s], int32(ds+1))
		}
		if c.prodNT[p] == c.start {
			acc[base+n] = true
		}
	}
	if budget < 0 {
		return nil
	}
	for p := 0; p < c.numProds(); p++ {
		end := int(c.prodOff[p]) + p + c.prodLen(int32(p))
		eps[end] = append(eps[end], afterNT[c.prodNT[p]]...)
		budget -= len(afterNT[c.prodNT[p]])
	}
	if budget < 0 {
		return nil
	}

	// Byte-equivalence classes: bytes with identical membership across all
	// terminal classes share one DFA column.
	d := &prefilter{start: -1}
	keyLen := (len(c.classes) + 7) / 8
	sigs := map[string]int32{}
	var reps []byte // one representative byte per equivalence class
	key := make([]byte, keyLen)
	for b := 0; b < 256; b++ {
		for i := range key {
			key[i] = 0
		}
		for k, set := range c.classes {
			if set.Has(byte(b)) {
				key[k/8] |= 1 << (k % 8)
			}
		}
		budget -= len(c.classes)
		id, ok := sigs[string(key)]
		if !ok {
			id = int32(len(reps))
			sigs[string(key)] = id
			reps = append(reps, byte(b))
		}
		d.cls[b] = id
	}
	if budget < 0 {
		return nil
	}
	d.width = int32(len(reps))

	// Subset construction over bitsets of NFA states.
	words := (numStates + 63) / 64
	if words == 0 {
		words = 1
	}
	closure := func(set []uint64, stack []int32) {
		for len(stack) > 0 {
			ds := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, t := range eps[ds] {
				if set[t>>6]&(1<<(t&63)) == 0 {
					set[t>>6] |= 1 << (t & 63)
					stack = append(stack, t)
				}
			}
		}
	}
	setKey := func(set []uint64) string {
		b := make([]byte, 0, words*8)
		for _, w := range set {
			b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
				byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
		}
		return string(b)
	}

	start := make([]uint64, words)
	var stack []int32
	for q := c.ntProd[c.start]; q < c.ntProd[c.start+1]; q++ {
		ds := c.prodOff[q] + q
		if start[ds>>6]&(1<<(ds&63)) == 0 {
			start[ds>>6] |= 1 << (ds & 63)
			stack = append(stack, ds)
		}
	}
	closure(start, stack)
	empty := true
	for _, w := range start {
		if w != 0 {
			empty = false
			break
		}
	}
	if empty {
		return d // start == -1: the empty language rejects everything
	}

	index := map[string]int32{setKey(start): 0}
	sets := [][]uint64{start}
	d.start = 0
	for si := 0; si < len(sets); si++ {
		set := sets[si]
		accepting := false
		row := make([]int32, d.width)
		for e := int32(0); e < d.width; e++ {
			row[e] = -1
		}
		// One pass over the members fills every column of this state's row.
		next := make([][]uint64, d.width)
		var nextStacks [][]int32
		nextStacks = make([][]int32, d.width)
		for wi, w := range set {
			for w != 0 {
				ds := int32(wi<<6 + bits.TrailingZeros64(w))
				w &= w - 1
				if acc[ds] {
					accepting = true
				}
				k := symCls[ds]
				if k < 0 {
					continue
				}
				for e := int32(0); e < d.width; e++ {
					budget--
					if !c.classes[k].Has(reps[e]) {
						continue
					}
					if next[e] == nil {
						next[e] = make([]uint64, words)
					}
					t := ds + 1
					if next[e][t>>6]&(1<<(t&63)) == 0 {
						next[e][t>>6] |= 1 << (t & 63)
						nextStacks[e] = append(nextStacks[e], t)
					}
				}
			}
		}
		if budget < 0 {
			return nil
		}
		d.accept = append(d.accept, accepting)
		for e := int32(0); e < d.width; e++ {
			if next[e] == nil {
				continue
			}
			closure(next[e], nextStacks[e])
			k := setKey(next[e])
			id, ok := index[k]
			if !ok {
				if len(sets) >= maxPrefilterDFAStates {
					return nil
				}
				id = int32(len(sets))
				index[k] = id
				sets = append(sets, next[e])
			}
			row[e] = id
		}
		d.delta = append(d.delta, row...)
	}
	return d
}
