package metrics

import (
	"math"
	"math/rand"
	"testing"

	"glade/internal/automata"
	"glade/internal/bytesets"
	"glade/internal/cfg"
	"glade/internal/oracle"
	"glade/internal/rex"
)

func grammarAB() *cfg.Grammar {
	g := cfg.New()
	s := g.AddNT("S")
	g.Add(s)
	g.Add(s, cfg.T(bytesets.OfString("ab")), cfg.N(s))
	return g
}

func grammarA() *cfg.Grammar {
	g := cfg.New()
	s := g.AddNT("S")
	g.Add(s)
	g.Add(s, cfg.TByte('a'), cfg.N(s))
	return g
}

func TestF1(t *testing.T) {
	if got := (Eval{Precision: 1, Recall: 1}).F1(); got != 1 {
		t.Fatalf("F1 = %v", got)
	}
	if got := (Eval{}).F1(); got != 0 {
		t.Fatalf("F1 of zero = %v", got)
	}
	e := Eval{Precision: 0.5, Recall: 1}
	if math.Abs(e.F1()-2.0/3.0) > 1e-9 {
		t.Fatalf("F1 = %v", e.F1())
	}
}

func TestEvaluateIdenticalLanguages(t *testing.T) {
	a := NewGrammarLang(grammarAB(), 16)
	b := NewGrammarLang(grammarAB(), 16)
	e := Evaluate(a, b, 300, rand.New(rand.NewSource(1)))
	if e.Precision != 1 || e.Recall != 1 {
		t.Fatalf("identical languages: %+v", e)
	}
}

func TestEvaluateSubsetLanguage(t *testing.T) {
	sub := NewGrammarLang(grammarA(), 16)    // a*
	super := NewGrammarLang(grammarAB(), 16) // (a+b)*
	e := Evaluate(sub, super, 400, rand.New(rand.NewSource(2)))
	if e.Precision != 1 {
		t.Fatalf("subset precision = %v", e.Precision)
	}
	if e.Recall >= 0.95 || e.Recall <= 0.05 {
		t.Fatalf("subset recall = %v, expected strictly partial", e.Recall)
	}
}

func TestEvaluateEmptyLearned(t *testing.T) {
	g := cfg.New()
	s := g.AddNT("S")
	g.Add(s, cfg.N(s)) // unproductive
	empty := NewGrammarLang(g, 8)
	super := NewGrammarLang(grammarAB(), 16)
	e := Evaluate(empty, super, 100, rand.New(rand.NewSource(3)))
	if e.PrecisionN != 0 {
		t.Fatalf("sampled from empty language: %+v", e)
	}
	if e.Recall != 0 {
		t.Fatalf("empty language recall = %v", e.Recall)
	}
}

func TestDFALang(t *testing.T) {
	d := automata.FromRex(rex.Rep(rex.Literal("ab")), []byte("ab"))
	l := &DFALang{D: d, MaxLen: 12}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		s, ok := l.Sample(rng)
		if !ok {
			t.Fatal("sampler failed")
		}
		if !l.Accepts(s) {
			t.Fatalf("sampled %q not accepted", s)
		}
	}
}

func TestOracleLang(t *testing.T) {
	l := &OracleLang{
		O: oracle.Func(func(s string) bool { return s == "x" }),
		S: func(rng *rand.Rand) (string, bool) { return "x", true },
	}
	e := Evaluate(l, l, 50, rand.New(rand.NewSource(5)))
	if e.Precision != 1 || e.Recall != 1 {
		t.Fatalf("OracleLang self-eval: %+v", e)
	}
}
