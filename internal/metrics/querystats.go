package metrics

import (
	"context"
	"fmt"
	"sync"
	"time"

	"glade/internal/oracle"
)

// QueryStats is a snapshot of a QueryTimer: how many oracle queries ran,
// how long each took, and the aggregate throughput over the observed
// window. It is how the parallel oracle engine's speedup is measured — at
// Workers=N the per-query latency is unchanged while throughput scales.
// The JSON names are the wire format of glade-serve /v1/stats rows and of
// campaign checkpoint reports (durations marshal as nanoseconds).
type QueryStats struct {
	// Queries is the number of membership queries observed.
	Queries int `json:"queries"`
	// Batches is the number of bulk-path calls observed.
	Batches int `json:"batches"`
	// Busy is the cumulative query latency. For bulk calls the batch's
	// wall time is attributed once, so under concurrency Busy can be far
	// below Queries × mean single-query latency.
	Busy time.Duration `json:"busy_ns"`
	// MinLatency and MaxLatency bound observed per-query latency; bulk
	// calls contribute their per-item mean.
	MinLatency time.Duration `json:"min_latency_ns"`
	MaxLatency time.Duration `json:"max_latency_ns"`
	// Wall is the span from the first query's start to the last query's
	// completion.
	Wall time.Duration `json:"wall_ns"`
}

// MeanLatency is the average per-query latency.
func (s QueryStats) MeanLatency() time.Duration {
	if s.Queries == 0 {
		return 0
	}
	return s.Busy / time.Duration(s.Queries)
}

// Throughput is queries per second over the observed wall window.
func (s QueryStats) Throughput() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Queries) / s.Wall.Seconds()
}

// String renders the snapshot for log lines.
func (s QueryStats) String() string {
	return fmt.Sprintf("%d queries in %v (mean %v, %.0f q/s)",
		s.Queries, s.Wall.Round(time.Millisecond), s.MeanLatency().Round(time.Microsecond), s.Throughput())
}

// QueryTimer wraps an oracle and records per-query latency and throughput.
// It implements both the single and bulk paths of the v2 CheckOracle
// contract (plus the legacy boolean shims) and is safe for concurrent use,
// so it can sit anywhere in the oracle stack — below the worker pool it
// times individual program runs, above it it times whole waves. Queries
// that end in an oracle error are still timed: the wall clock they burned
// is real.
type QueryTimer struct {
	inner oracle.CheckOracle

	mu       sync.Mutex
	stats    QueryStats
	started  bool
	firstAt  time.Time
	lastDone time.Time
}

// NewQueryTimer wraps inner with query timing.
func NewQueryTimer(inner oracle.CheckOracle) *QueryTimer { return &QueryTimer{inner: inner} }

// Check implements oracle.CheckOracle.
func (q *QueryTimer) Check(ctx context.Context, input string) (oracle.Verdict, error) {
	start := time.Now()
	v, err := q.inner.Check(ctx, input)
	q.record(start, time.Now(), 1, false)
	return v, err
}

// CheckBatch implements oracle.BatchCheckOracle, forwarding to the inner
// oracle's bulk path when it has one.
func (q *QueryTimer) CheckBatch(ctx context.Context, inputs []string) ([]oracle.Verdict, error) {
	start := time.Now()
	out, err := oracle.CheckAll(ctx, q.inner, inputs, 1)
	q.record(start, time.Now(), len(inputs), true)
	return out, err
}

// Accepts implements the legacy oracle.Oracle contract; errors read as
// rejection.
func (q *QueryTimer) Accepts(input string) bool {
	v, err := q.Check(context.Background(), input)
	return err == nil && v == oracle.Accept
}

// AcceptsBatch implements the legacy oracle.BatchOracle contract; a batch
// error reads as all-rejected.
func (q *QueryTimer) AcceptsBatch(inputs []string) []bool {
	vs, err := q.CheckBatch(context.Background(), inputs)
	out := make([]bool, len(inputs))
	if err != nil {
		return out
	}
	for i, v := range vs {
		out[i] = v == oracle.Accept
	}
	return out
}

func (q *QueryTimer) record(start, end time.Time, n int, batch bool) {
	if n == 0 {
		return
	}
	elapsed := end.Sub(start)
	per := elapsed / time.Duration(n)
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.started || start.Before(q.firstAt) {
		q.firstAt = start
		q.started = true
	}
	if end.After(q.lastDone) {
		q.lastDone = end
	}
	s := &q.stats
	s.Queries += n
	if batch {
		s.Batches++
	}
	s.Busy += elapsed
	if s.MinLatency == 0 || per < s.MinLatency {
		s.MinLatency = per
	}
	if per > s.MaxLatency {
		s.MaxLatency = per
	}
}

// Snapshot returns the statistics recorded so far.
func (q *QueryTimer) Snapshot() QueryStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	if q.started {
		s.Wall = q.lastDone.Sub(q.firstAt)
	}
	return s
}

// Reset clears the recorded statistics.
func (q *QueryTimer) Reset() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.stats = QueryStats{}
	q.started = false
	q.firstAt, q.lastDone = time.Time{}, time.Time{}
}
