package metrics

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"glade/internal/oracle"
	"glade/internal/telemetry"
)

// QueryStats is a snapshot of a QueryTimer: how many oracle queries ran,
// how long each took, and the aggregate throughput over the observed
// window. It is how the parallel oracle engine's speedup is measured — at
// Workers=N the per-query latency is unchanged while throughput scales.
// The JSON names are the wire format of glade-serve /v1/stats rows and of
// campaign checkpoint reports (durations marshal as nanoseconds).
type QueryStats struct {
	// Queries is the number of membership queries observed.
	Queries int `json:"queries"`
	// Batches is the number of bulk-path calls observed.
	Batches int `json:"batches"`
	// Busy is the cumulative query latency. For bulk calls the batch's
	// wall time is attributed once, so under concurrency Busy can be far
	// below Queries × mean single-query latency.
	Busy time.Duration `json:"busy_ns"`
	// MinLatency and MaxLatency bound observed per-query latency; bulk
	// calls contribute their per-item mean.
	MinLatency time.Duration `json:"min_latency_ns"`
	MaxLatency time.Duration `json:"max_latency_ns"`
	// Wall is the span from the first query's start to the last query's
	// completion.
	Wall time.Duration `json:"wall_ns"`
	// P50Latency, P95Latency, and P99Latency are per-query latency
	// quantiles estimated from a fixed-bucket histogram (see
	// internal/telemetry); bulk calls contribute their per-item mean, the
	// same convention as MinLatency/MaxLatency.
	P50Latency time.Duration `json:"p50_latency_ns"`
	P95Latency time.Duration `json:"p95_latency_ns"`
	P99Latency time.Duration `json:"p99_latency_ns"`
}

// MeanLatency is the average per-query latency.
func (s QueryStats) MeanLatency() time.Duration {
	if s.Queries == 0 {
		return 0
	}
	return s.Busy / time.Duration(s.Queries)
}

// Throughput is queries per second over the observed wall window. Very
// fast in-process batches can start and finish within the clock's
// resolution, leaving Wall (and even Busy) at zero; rather than reporting a
// nonsense 0 q/s for work that demonstrably ran, the denominator falls
// back from Wall to Busy to a one-nanosecond floor.
func (s QueryStats) Throughput() float64 {
	if s.Queries == 0 {
		return 0
	}
	window := s.Wall
	if window <= 0 {
		window = s.Busy
	}
	if window <= 0 {
		window = time.Nanosecond
	}
	return float64(s.Queries) / window.Seconds()
}

// String renders the snapshot for log lines.
func (s QueryStats) String() string {
	return fmt.Sprintf("%d queries in %v (mean %v, p99 %v, %.0f q/s)",
		s.Queries, s.Wall.Round(time.Millisecond), s.MeanLatency().Round(time.Microsecond),
		s.P99Latency.Round(time.Microsecond), s.Throughput())
}

// QueryTimer wraps an oracle and records per-query latency and throughput.
// It implements both the single and bulk paths of the v2 CheckOracle
// contract (plus the legacy boolean shims) and is safe for concurrent use,
// so it can sit anywhere in the oracle stack — below the worker pool it
// times individual program runs, above it it times whole waves. Queries
// that end in an oracle error are still timed: the wall clock they burned
// is real.
type QueryTimer struct {
	inner oracle.CheckOracle

	// hist bins every per-query latency so Snapshot can report
	// p50/p95/p99 alongside the mean; mirror, when set, receives the same
	// observations so a shared telemetry registry (e.g. glade-serve's
	// /metrics) sees them too.
	hist   *telemetry.Histogram
	mirror atomic.Pointer[telemetry.Histogram]

	mu       sync.Mutex
	stats    QueryStats
	started  bool
	firstAt  time.Time
	lastDone time.Time
}

// NewQueryTimer wraps inner with query timing.
func NewQueryTimer(inner oracle.CheckOracle) *QueryTimer {
	return &QueryTimer{inner: inner, hist: &telemetry.Histogram{}}
}

// Mirror registers h as a secondary latency sink: every per-query
// observation recorded by the timer is also observed on h. Use it to feed a
// registry-owned histogram (one per pool source) without double-timing the
// oracle. A nil h removes the mirror.
func (q *QueryTimer) Mirror(h *telemetry.Histogram) { q.mirror.Store(h) }

// Check implements oracle.CheckOracle.
func (q *QueryTimer) Check(ctx context.Context, input string) (oracle.Verdict, error) {
	start := time.Now()
	v, err := q.inner.Check(ctx, input)
	q.record(start, time.Now(), 1, false)
	return v, err
}

// CheckBatch implements oracle.BatchCheckOracle, forwarding to the inner
// oracle's bulk path when it has one.
func (q *QueryTimer) CheckBatch(ctx context.Context, inputs []string) ([]oracle.Verdict, error) {
	start := time.Now()
	out, err := oracle.CheckAll(ctx, q.inner, inputs, 1)
	q.record(start, time.Now(), len(inputs), true)
	return out, err
}

// Accepts implements the legacy oracle.Oracle contract; errors read as
// rejection.
func (q *QueryTimer) Accepts(input string) bool {
	v, err := q.Check(context.Background(), input)
	return err == nil && v == oracle.Accept
}

// AcceptsBatch implements the legacy oracle.BatchOracle contract; a batch
// error reads as all-rejected.
func (q *QueryTimer) AcceptsBatch(inputs []string) []bool {
	vs, err := q.CheckBatch(context.Background(), inputs)
	out := make([]bool, len(inputs))
	if err != nil {
		return out
	}
	for i, v := range vs {
		out[i] = v == oracle.Accept
	}
	return out
}

func (q *QueryTimer) record(start, end time.Time, n int, batch bool) {
	if n == 0 {
		return
	}
	elapsed := end.Sub(start)
	per := elapsed / time.Duration(n)
	// Histogram observations are atomic; keep them outside the mutex so
	// the hot path adds no lock hold time.
	q.hist.ObserveN(per, n)
	if m := q.mirror.Load(); m != nil {
		m.ObserveN(per, n)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.started || start.Before(q.firstAt) {
		q.firstAt = start
		q.started = true
	}
	if end.After(q.lastDone) {
		q.lastDone = end
	}
	s := &q.stats
	s.Queries += n
	if batch {
		s.Batches++
	}
	s.Busy += elapsed
	if s.MinLatency == 0 || per < s.MinLatency {
		s.MinLatency = per
	}
	if per > s.MaxLatency {
		s.MaxLatency = per
	}
}

// Snapshot returns the statistics recorded so far, including latency
// quantiles derived from the timer's histogram.
func (q *QueryTimer) Snapshot() QueryStats {
	q.mu.Lock()
	s := q.stats
	if q.started {
		s.Wall = q.lastDone.Sub(q.firstAt)
	}
	q.mu.Unlock()
	hs := q.hist.Snapshot()
	s.P50Latency = hs.Quantile(0.50)
	s.P95Latency = hs.Quantile(0.95)
	s.P99Latency = hs.Quantile(0.99)
	return s
}

// Histogram exposes the timer's latency histogram snapshot, for callers
// that want the full bucket distribution rather than fixed quantiles.
func (q *QueryTimer) Histogram() telemetry.HistogramSnapshot { return q.hist.Snapshot() }

// Reset clears the recorded statistics.
func (q *QueryTimer) Reset() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.stats = QueryStats{}
	q.started = false
	q.firstAt, q.lastDone = time.Time{}, time.Time{}
	q.hist.Reset()
}
