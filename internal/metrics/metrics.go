// Package metrics implements the evaluation measures of §2 and §8.2:
// precision and recall of a learned language against a target language,
// estimated by sampling (Definition 2.1), and the F1 score combining them.
package metrics

import (
	"math/rand"

	"glade/internal/automata"
	"glade/internal/cfg"
	"glade/internal/oracle"
)

// Language is the minimal view the evaluator needs of a language: a
// membership test and a sampler. Sample returns false when the language is
// empty (or no sample could be produced).
type Language interface {
	Accepts(input string) bool
	Sample(rng *rand.Rand) (string, bool)
}

// Eval holds a precision/recall measurement.
type Eval struct {
	Precision float64
	Recall    float64
	// PrecisionN and RecallN are the sample counts actually used.
	PrecisionN int
	RecallN    int
}

// F1 returns the harmonic mean of precision and recall (0 when both are 0).
func (e Eval) F1() float64 {
	if e.Precision+e.Recall == 0 {
		return 0
	}
	return 2 * e.Precision * e.Recall / (e.Precision + e.Recall)
}

// Evaluate estimates precision (samples of learned ∈ target) and recall
// (samples of target ∈ learned) with n samples per side, following §8.2
// (which uses n = 1000).
func Evaluate(learned, target Language, n int, rng *rand.Rand) Eval {
	var e Eval
	ok := 0
	for i := 0; i < n; i++ {
		s, drawn := learned.Sample(rng)
		if !drawn {
			break
		}
		e.PrecisionN++
		if target.Accepts(s) {
			ok++
		}
	}
	if e.PrecisionN > 0 {
		e.Precision = float64(ok) / float64(e.PrecisionN)
	}
	ok = 0
	for i := 0; i < n; i++ {
		s, drawn := target.Sample(rng)
		if !drawn {
			break
		}
		e.RecallN++
		if learned.Accepts(s) {
			ok++
		}
	}
	if e.RecallN > 0 {
		e.Recall = float64(ok) / float64(e.RecallN)
	}
	return e
}

// GrammarLang wraps a context-free grammar as a Language using the Earley
// parser for membership and the §8.1 sampler for sampling.
type GrammarLang struct {
	parser  *cfg.Parser
	sampler *cfg.Sampler
	empty   bool
}

// NewGrammarLang builds a GrammarLang with the given sampler depth budget.
func NewGrammarLang(g *cfg.Grammar, depth int) *GrammarLang {
	productive := g.Productive()
	return &GrammarLang{
		parser:  cfg.NewParser(g),
		sampler: cfg.NewSampler(g, depth),
		empty:   !productive[g.Start],
	}
}

// Accepts implements Language.
func (l *GrammarLang) Accepts(s string) bool { return l.parser.Accepts(s) }

// Sample implements Language.
func (l *GrammarLang) Sample(rng *rand.Rand) (string, bool) {
	if l.empty {
		return "", false
	}
	return l.sampler.Sample(rng), true
}

// DFALang wraps a DFA as a Language with bounded-length sampling.
type DFALang struct {
	D      *automata.DFA
	MaxLen int
}

// Accepts implements Language.
func (l *DFALang) Accepts(s string) bool { return l.D.Accepts(s) }

// Sample implements Language.
func (l *DFALang) Sample(rng *rand.Rand) (string, bool) {
	return automata.Sample(l.D, rng, l.MaxLen, 0.25)
}

// OracleLang pairs an arbitrary membership oracle with an external sampler;
// it is how a target (hand parser + ground-truth grammar) enters Evaluate.
type OracleLang struct {
	O oracle.Oracle
	S func(rng *rand.Rand) (string, bool)
}

// Accepts implements Language.
func (l *OracleLang) Accepts(s string) bool { return l.O.Accepts(s) }

// Sample implements Language.
func (l *OracleLang) Sample(rng *rand.Rand) (string, bool) { return l.S(rng) }
