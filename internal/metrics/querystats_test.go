package metrics

import (
	"sync"
	"testing"
	"time"

	"glade/internal/oracle"
	"glade/internal/telemetry"
)

func TestQueryTimerCounts(t *testing.T) {
	q := NewQueryTimer(oracle.Func(func(s string) bool {
		time.Sleep(time.Millisecond)
		return s == "yes"
	}))
	if !q.Accepts("yes") || q.Accepts("no") {
		t.Fatal("timer altered oracle answers")
	}
	q.AcceptsBatch([]string{"yes", "no", "yes"})
	s := q.Snapshot()
	if s.Queries != 5 {
		t.Fatalf("Queries = %d, want 5", s.Queries)
	}
	if s.Batches != 1 {
		t.Fatalf("Batches = %d, want 1", s.Batches)
	}
	if s.MeanLatency() < 500*time.Microsecond {
		t.Fatalf("MeanLatency = %v, want ≥ 0.5ms", s.MeanLatency())
	}
	if s.Wall <= 0 || s.Throughput() <= 0 {
		t.Fatalf("Wall/Throughput not recorded: %+v", s)
	}
	if s.MinLatency <= 0 || s.MaxLatency < s.MinLatency {
		t.Fatalf("latency bounds wrong: %+v", s)
	}
	q.Reset()
	if s := q.Snapshot(); s.Queries != 0 || s.Wall != 0 {
		t.Fatalf("Reset left state: %+v", s)
	}
}

// TestQueryTimerThroughputScales is the property the parallel engine is
// built for: fanning a fixed-latency oracle across workers multiplies
// throughput without touching per-query latency.
func TestQueryTimerThroughputScales(t *testing.T) {
	const delay = 2 * time.Millisecond
	slow := oracle.Func(func(string) bool {
		time.Sleep(delay)
		return true
	})
	inputs := make([]string, 64)
	for i := range inputs {
		inputs[i] = string(rune('a' + i%26))
	}

	measure := func(workers int) QueryStats {
		q := NewQueryTimer(slow)
		oracle.Parallel(q, workers).AcceptsBatch(inputs)
		return q.Snapshot()
	}
	seq := measure(1)
	par := measure(8)
	if par.Queries != seq.Queries {
		t.Fatalf("query counts differ: %d vs %d", par.Queries, seq.Queries)
	}
	// 8 workers on a sleep-bound oracle: conservatively demand 2×.
	if par.Throughput() < 2*seq.Throughput() {
		t.Fatalf("throughput did not scale: seq %.0f q/s, par %.0f q/s",
			seq.Throughput(), par.Throughput())
	}
}

// Regression: a batch so fast that start and end land on the same clock
// tick used to report throughput as 0 q/s. The guard falls back from Wall
// to Busy to a 1ns floor, so any completed query reports finite, nonzero
// throughput.
func TestQueryTimerSubMicrosecondBatchThroughput(t *testing.T) {
	q := NewQueryTimer(oracle.Func(func(string) bool { return true }))
	now := time.Now()
	// Simulate an in-process batch whose wall time is below the clock's
	// resolution: identical start and end timestamps.
	q.record(now, now, 64, true)
	s := q.Snapshot()
	if s.Wall != 0 {
		t.Fatalf("Wall = %v, want 0 for a zero-elapsed batch", s.Wall)
	}
	if got := s.Throughput(); got <= 0 {
		t.Fatalf("Throughput = %v for 64 completed queries, want > 0", got)
	}
	// And with no queries at all, throughput must still read zero.
	if got := (QueryStats{}).Throughput(); got != 0 {
		t.Fatalf("empty Throughput = %v, want 0", got)
	}
}

// The timer's histogram feeds p50/p95/p99 into every snapshot and mirrors
// observations into an externally supplied histogram.
func TestQueryTimerQuantilesAndMirror(t *testing.T) {
	q := NewQueryTimer(oracle.Func(func(string) bool { return true }))
	var mirror telemetry.Histogram
	q.Mirror(&mirror)
	base := time.Now()
	for i := 0; i < 99; i++ {
		q.record(base, base.Add(time.Millisecond), 1, false)
	}
	q.record(base, base.Add(time.Second), 1, false)
	s := q.Snapshot()
	if s.P50Latency < 500*time.Microsecond || s.P50Latency > 2500*time.Microsecond {
		t.Errorf("P50 = %v, want ~1ms", s.P50Latency)
	}
	if s.P99Latency < s.P50Latency {
		t.Errorf("P99 %v < P50 %v", s.P99Latency, s.P50Latency)
	}
	if s.P95Latency < s.P50Latency || s.P95Latency > s.P99Latency {
		t.Errorf("P95 = %v outside [P50=%v, P99=%v]", s.P95Latency, s.P50Latency, s.P99Latency)
	}
	if ms := mirror.Snapshot(); ms.Count != 100 {
		t.Errorf("mirror saw %d observations, want 100", ms.Count)
	}
	if hs := q.Histogram(); hs.Count != 100 || hs.Max != time.Second {
		t.Errorf("histogram snapshot = count %d max %v", hs.Count, hs.Max)
	}
	q.Reset()
	if hs := q.Histogram(); hs.Count != 0 {
		t.Errorf("Reset left %d histogram observations", hs.Count)
	}
}

func TestQueryTimerConcurrent(t *testing.T) {
	q := NewQueryTimer(oracle.Func(func(string) bool { return true }))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				q.Accepts("x")
			}
		}()
	}
	wg.Wait()
	if s := q.Snapshot(); s.Queries != 800 {
		t.Fatalf("Queries = %d, want 800", s.Queries)
	}
}
