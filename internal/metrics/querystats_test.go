package metrics

import (
	"sync"
	"testing"
	"time"

	"glade/internal/oracle"
)

func TestQueryTimerCounts(t *testing.T) {
	q := NewQueryTimer(oracle.Func(func(s string) bool {
		time.Sleep(time.Millisecond)
		return s == "yes"
	}))
	if !q.Accepts("yes") || q.Accepts("no") {
		t.Fatal("timer altered oracle answers")
	}
	q.AcceptsBatch([]string{"yes", "no", "yes"})
	s := q.Snapshot()
	if s.Queries != 5 {
		t.Fatalf("Queries = %d, want 5", s.Queries)
	}
	if s.Batches != 1 {
		t.Fatalf("Batches = %d, want 1", s.Batches)
	}
	if s.MeanLatency() < 500*time.Microsecond {
		t.Fatalf("MeanLatency = %v, want ≥ 0.5ms", s.MeanLatency())
	}
	if s.Wall <= 0 || s.Throughput() <= 0 {
		t.Fatalf("Wall/Throughput not recorded: %+v", s)
	}
	if s.MinLatency <= 0 || s.MaxLatency < s.MinLatency {
		t.Fatalf("latency bounds wrong: %+v", s)
	}
	q.Reset()
	if s := q.Snapshot(); s.Queries != 0 || s.Wall != 0 {
		t.Fatalf("Reset left state: %+v", s)
	}
}

// TestQueryTimerThroughputScales is the property the parallel engine is
// built for: fanning a fixed-latency oracle across workers multiplies
// throughput without touching per-query latency.
func TestQueryTimerThroughputScales(t *testing.T) {
	const delay = 2 * time.Millisecond
	slow := oracle.Func(func(string) bool {
		time.Sleep(delay)
		return true
	})
	inputs := make([]string, 64)
	for i := range inputs {
		inputs[i] = string(rune('a' + i%26))
	}

	measure := func(workers int) QueryStats {
		q := NewQueryTimer(slow)
		oracle.Parallel(q, workers).AcceptsBatch(inputs)
		return q.Snapshot()
	}
	seq := measure(1)
	par := measure(8)
	if par.Queries != seq.Queries {
		t.Fatalf("query counts differ: %d vs %d", par.Queries, seq.Queries)
	}
	// 8 workers on a sleep-bound oracle: conservatively demand 2×.
	if par.Throughput() < 2*seq.Throughput() {
		t.Fatalf("throughput did not scale: seq %.0f q/s, par %.0f q/s",
			seq.Throughput(), par.Throughput())
	}
}

func TestQueryTimerConcurrent(t *testing.T) {
	q := NewQueryTimer(oracle.Func(func(string) bool { return true }))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				q.Accepts("x")
			}
		}()
	}
	wg.Wait()
	if s := q.Snapshot(); s.Queries != 800 {
		t.Fatalf("Queries = %d, want 800", s.Queries)
	}
}
