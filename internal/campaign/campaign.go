// Package campaign implements long-running grammar-fuzzing campaigns: the
// §8.3 use of a GLADE-synthesized grammar as a fuzzer, extended from the
// one-shot sample-count comparison of cmd/glade-fuzz into an engine that
// drives a learned grammar against a membership oracle indefinitely.
//
// Each wave draws a batch of candidates — mostly grammar-fuzzed, a
// configurable fraction naively mutated — deduplicates them against a
// bounded seen-set, executes them through the concurrent oracle engine
// (oracle.Parallel over a metrics.QueryTimer, on the v2 verdict path), and
// triages each oracle.Verdict into a deduplicating corpus:
//
//	accept_flip  oracle accepts, grammar cannot parse (under-approximation)
//	reject_flip  grammar-generated, oracle rejects (over-approximation)
//	new_shape    accepted input with an unseen token shape
//	crash        target died on a signal (oracle.Crash)
//	timeout      target hung until the per-query kill (oracle.Timeout)
//
// Any verdict-capable oracle populates the crash and timeout buckets —
// oracle.Exec is merely the common case. An oracle error (the oracle
// itself failing, distinct from rejecting an input) ends the campaign and
// is surfaced from Run; cancelling the Run context ends it normally.
//
// A campaign becomes differential by setting Config.DiffOracle: every wave
// then also runs through the second oracle, and inputs on which the two
// oracles' boolean answers disagree land in two more buckets —
// diff_accept (primary accepts, diff rejects) and diff_reject (the
// reverse). Generation and refresh stay driven by the primary; the diff
// oracle is a pure comparator, turning a learned grammar into a
// test-input generator for cross-implementation differential testing.
//
// The engine checkpoints a JSON Report periodically (and finally), and can
// periodically refresh its grammar by re-running core.Learn seeded with the
// accept flips it found — the campaign's own discoveries widening the
// generator that makes them.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"glade/internal/bytesets"
	"glade/internal/cfg"
	"glade/internal/core"
	"glade/internal/fuzz"
	"glade/internal/metrics"
	"glade/internal/oracle"
	"glade/internal/telemetry"
)

// Config configures a Campaign. Grammar, Seeds, and Oracle are required;
// every other field has a usable default.
type Config struct {
	// Grammar is the synthesized grammar driving generation.
	Grammar *cfg.Grammar
	// Seeds are the example inputs the grammar was learned from; the
	// grammar fuzzer starts every input from a parsed seed tree.
	Seeds []string
	// Oracle answers membership queries on the v2 verdict path; Crash and
	// Timeout verdicts populate their corpus buckets regardless of the
	// oracle's concrete type. Wrap a plain boolean oracle with
	// oracle.AsCheck. It must be safe for concurrent use when Workers > 1.
	Oracle oracle.CheckOracle
	// DiffOracle, when non-nil, makes the campaign differential: every wave
	// also runs through it, and inputs where its boolean answer disagrees
	// with Oracle's are triaged into the diff_accept / diff_reject buckets.
	// Like Oracle it must be safe for concurrent use when Workers > 1.
	DiffOracle oracle.CheckOracle
	// DiffName labels the diff oracle in reports ("builtin:json-strict").
	DiffName string
	// Workers bounds concurrent oracle queries per wave (default 1).
	Workers int
	// BatchSize is the number of candidates per wave (default 64).
	BatchSize int
	// Duration bounds the campaign's runtime; zero runs until the Run
	// context is cancelled.
	Duration time.Duration
	// MutateRatio is the fraction of each wave drawn from the naive
	// byte-level mutator rather than the grammar fuzzer (default 0.25).
	// Mutated inputs can leave L(Ĉ), which is what makes accept flips —
	// and crashes — findable.
	MutateRatio float64
	// ReportPath, when non-empty, receives the checkpointed JSON report.
	ReportPath string
	// ReportEvery is the checkpoint and progress-callback interval
	// (default 2s).
	ReportEvery time.Duration
	// RefreshEvery, when positive, re-runs core.Learn at this interval
	// with the accept flips found since the last refresh as extra seeds,
	// swapping in the widened grammar. The campaign pauses while the
	// refresh learns.
	RefreshEvery time.Duration
	// RefreshTimeout bounds each refresh's learning time (default 30s).
	RefreshTimeout time.Duration
	// MaxRefreshSeeds bounds the accept flips fed to one refresh
	// (default 8) — learning cost grows with seed count.
	MaxRefreshSeeds int
	// MaxBucket bounds retained corpus entries per bucket (default 100);
	// bucket counts keep growing past it.
	MaxBucket int
	// RandSeed seeds the campaign's generators (default 1).
	RandSeed int64
	// Progress, when non-nil, receives report snapshots at the checkpoint
	// cadence plus one final Done snapshot. It is called on the campaign
	// goroutine and must not block.
	Progress func(Report)
	// Logf, when non-nil, receives campaign log lines.
	Logf func(format string, args ...any)
	// QueryHist, when non-nil, additionally receives every primary-oracle
	// query latency (the embedding service mirrors campaign queries onto
	// its shared per-source histogram this way).
	QueryHist *telemetry.Histogram
}

func (conf Config) withDefaults() Config {
	if conf.Workers < 1 {
		conf.Workers = 1
	}
	if conf.BatchSize <= 0 {
		conf.BatchSize = 64
	}
	if conf.MutateRatio <= 0 || conf.MutateRatio > 1 {
		conf.MutateRatio = 0.25
	}
	if conf.ReportEvery <= 0 {
		conf.ReportEvery = 2 * time.Second
	}
	if conf.RefreshTimeout <= 0 {
		conf.RefreshTimeout = 30 * time.Second
	}
	if conf.MaxRefreshSeeds <= 0 {
		conf.MaxRefreshSeeds = 8
	}
	if conf.MaxBucket <= 0 {
		conf.MaxBucket = 100
	}
	if conf.RandSeed == 0 {
		conf.RandSeed = 1
	}
	return conf
}

// Campaign is one long-running fuzzing campaign. Create with New, drive
// with Run; Snapshot may be called concurrently while Run executes.
type Campaign struct {
	conf Config

	// Generators and the flip-detection recognizer; refresh swaps them
	// under mu, and nextWave/classify read them under mu. compiled is the
	// fuzzer's own compiled-grammar engine (one cfg.Compile per grammar,
	// shared between generation and triage membership).
	grammar  *cfg.Grammar
	fuzzer   *fuzz.Grammar
	compiled *cfg.Compiled
	naive    *fuzz.Naive

	// execOracle records whether the oracle runs external processes; the
	// grammar-refresh path then restricts its character-generalization
	// alphabet, since subprocess queries are too expensive for a full
	// printable-ASCII sweep (a cost heuristic only — triage itself is
	// oracle-agnostic).
	execOracle bool
	// resilient is the oracle's Resilient layer when it has one; its
	// retry/breaker counters are folded into report snapshots.
	resilient *oracle.Resilient
	timer     *metrics.QueryTimer
	pool      *oracle.Pool
	// diffTimer/diffPool are the second oracle stack of a differential
	// campaign; nil otherwise.
	diffTimer *metrics.QueryTimer
	diffPool  *oracle.Pool
	rng       *rand.Rand
	seen      *seenSet // executed-input dedup

	mu     sync.Mutex
	report Report // counter fields only; snapshotLocked fills the rest
	corpus *corpus

	lastCheckpoint    time.Time
	lastRefresh       time.Time
	flipsSinceRefresh int
}

// candidate is one wave slot: the input and where it came from, which
// classification needs (grammar-generated inputs are in L(Ĉ) by
// construction; mutated ones must be parsed to tell).
type candidate struct {
	input       string
	fromGrammar bool
}

// New validates conf and builds the campaign: the grammar fuzzer over the
// seeds, the naive mutator, the parser for flip detection, and the
// concurrent oracle stack (the query timer under the worker pool). Wave
// verdicts flow straight from the oracle's Check path — no recording
// side-channel, no special-casing of exec oracles.
func New(conf Config) (*Campaign, error) {
	conf = conf.withDefaults()
	if conf.Grammar == nil {
		return nil, fmt.Errorf("campaign: Grammar is required")
	}
	if conf.Oracle == nil {
		return nil, fmt.Errorf("campaign: Oracle is required")
	}
	if len(conf.Seeds) == 0 {
		return nil, fmt.Errorf("campaign: at least one seed input is required")
	}
	fuzzer := fuzz.NewGrammar(conf.Grammar, conf.Seeds)
	c := &Campaign{
		conf:     conf,
		grammar:  conf.Grammar,
		fuzzer:   fuzzer,
		compiled: fuzzer.Compiled(),
		naive:    fuzz.NewNaive(conf.Seeds, nil),
		rng:      rand.New(rand.NewSource(conf.RandSeed)),
		seen:     newSeenSet(1 << 16),
		corpus:   newCorpus(conf.MaxBucket),
	}
	// The cost heuristic and crash triage care about the base oracle, so
	// look through resilience/chaos wrappers (oracle.Innermost); the
	// Resilient layer itself, when present, feeds retry and breaker
	// counters into the report.
	_, c.execOracle = oracle.Innermost(conf.Oracle).(*oracle.Exec)
	c.resilient = findResilient(conf.Oracle)
	c.timer = metrics.NewQueryTimer(conf.Oracle)
	if conf.QueryHist != nil {
		c.timer.Mirror(conf.QueryHist)
	}
	c.pool = oracle.Parallel(c.timer, conf.Workers)
	if conf.DiffOracle != nil {
		c.diffTimer = metrics.NewQueryTimer(conf.DiffOracle)
		c.diffPool = oracle.Parallel(c.diffTimer, conf.Workers)
		c.report.DiffOracle = conf.DiffName
		if c.report.DiffOracle == "" {
			c.report.DiffOracle = "diff"
		}
	}
	c.report.GrammarSymbols = conf.Grammar.Size()
	return c, nil
}

// Run executes the campaign until its Duration elapses or ctx is
// cancelled, whichever comes first, and returns the final report (which is
// also checkpointed to Config.ReportPath when set). Cancellation is the
// normal way an unbounded campaign ends. Run returns an error — alongside
// the finalized report — when the oracle itself fails mid-campaign or the
// final report cannot be written.
func (c *Campaign) Run(ctx context.Context) (*Report, error) {
	if c.conf.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.conf.Duration)
		defer cancel()
	}
	now := time.Now()
	c.mu.Lock()
	c.report.StartedAt = now
	c.mu.Unlock()
	c.lastCheckpoint = now
	c.lastRefresh = now
	c.logf("campaign: start (batch=%d workers=%d mutate=%.0f%%)",
		c.conf.BatchSize, c.conf.Workers, 100*c.conf.MutateRatio)
	// An immediate checkpoint gives watchers a line before the first wave
	// lands and guarantees the report file exists from the very start.
	c.checkpoint(false, true)

	var oracleErr error
	for ctx.Err() == nil {
		wave := c.nextWave()
		if len(wave) == 0 {
			// Everything this wave was a duplicate. Yield briefly so a
			// saturated (tiny-grammar) campaign does not spin hot.
			select {
			case <-ctx.Done():
			case <-time.After(5 * time.Millisecond):
			}
			continue
		}
		inputs := make([]string, len(wave))
		for i, cand := range wave {
			inputs[i] = cand.input
		}
		verdicts, err := c.pool.CheckBatch(ctx, inputs)
		if err != nil {
			if ctx.Err() != nil {
				// The wave was cut short by cancellation; its partial
				// verdicts are artifacts. Discard and finish normally.
				break
			}
			if oracle.IsTransient(err) {
				// A transient outage (retries exhausted, breaker open)
				// drops this wave but must not finalize a long-running
				// campaign: count it, pause, and keep fuzzing.
				c.oracleOutage(ctx, err)
				continue
			}
			// The oracle itself failed permanently (not a rejection):
			// finalize the report gathered so far and surface the failure.
			oracleErr = err
			break
		}
		var diffVerdicts []oracle.Verdict
		if c.diffPool != nil {
			diffVerdicts, err = c.diffPool.CheckBatch(ctx, inputs)
			if err != nil {
				if ctx.Err() != nil {
					break
				}
				if oracle.IsTransient(err) {
					// Dropping only the comparison would turn this wave
					// into a false "no disagreements", so the whole wave
					// is dropped, like a primary-oracle outage.
					c.oracleOutage(ctx, fmt.Errorf("diff oracle: %w", err))
					continue
				}
				// A broken diff oracle ends the campaign like a broken
				// primary.
				oracleErr = fmt.Errorf("diff oracle: %w", err)
				break
			}
		}
		c.classify(wave, verdicts, diffVerdicts, c.triageParse(wave, verdicts))
		c.maybeRefresh(ctx)
		c.checkpoint(false, false)
	}

	final := c.checkpoint(true, true)
	c.logf("campaign: done (%d waves, %d inputs, %d interesting)",
		final.Waves, final.Inputs, final.Interesting())
	if c.conf.ReportPath != "" {
		if err := final.WriteFile(c.conf.ReportPath); err != nil {
			return &final, fmt.Errorf("campaign: write report: %w", err)
		}
	}
	if oracleErr != nil {
		return &final, fmt.Errorf("campaign: oracle failed: %w", oracleErr)
	}
	return &final, nil
}

// Outage pauses: how long the wave loop yields after a transient oracle
// failure before trying the next wave. A breaker-open outage pauses
// longer — the breaker will fail everything fast until its cooldown
// elapses, so spinning waves against it is pure waste.
const (
	outagePause        = 250 * time.Millisecond
	breakerOutagePause = time.Second
)

// oracleOutage records a dropped wave caused by a transient oracle
// failure and pauses the loop (ctx-aware) before the next wave.
func (c *Campaign) oracleOutage(ctx context.Context, err error) {
	c.mu.Lock()
	c.report.OracleOutages++
	n := c.report.OracleOutages
	c.mu.Unlock()
	pause := outagePause
	if errors.Is(err, oracle.ErrBreakerOpen) {
		pause = breakerOutagePause
	}
	c.logf("campaign: transient oracle outage #%d (wave dropped, pausing %v): %v", n, pause, err)
	select {
	case <-ctx.Done():
	case <-time.After(pause):
	}
}

// findResilient walks the oracle's Unwrap chain looking for the
// Resilient layer.
func findResilient(o oracle.CheckOracle) *oracle.Resilient {
	for o != nil {
		if r, ok := o.(*oracle.Resilient); ok {
			return r
		}
		u, ok := o.(interface{ Unwrap() oracle.CheckOracle })
		if !ok {
			return nil
		}
		o = u.Unwrap()
	}
	return nil
}

// nextWave draws up to BatchSize fresh candidates, counting skipped
// duplicates.
func (c *Campaign) nextWave() []candidate {
	c.mu.Lock()
	defer c.mu.Unlock()
	wave := make([]candidate, 0, c.conf.BatchSize)
	dups := 0
	for i := 0; i < c.conf.BatchSize; i++ {
		var cand candidate
		if c.rng.Float64() < c.conf.MutateRatio {
			cand = candidate{input: c.naive.Next(c.rng)}
		} else {
			cand = candidate{input: c.fuzzer.Next(c.rng), fromGrammar: true}
		}
		if c.seen.contains(cand.input) {
			dups++
			continue
		}
		c.seen.add(cand.input)
		wave = append(wave, cand)
	}
	c.report.Duplicates += dups
	return wave
}

// triageParse answers, for each wave slot, whether the grammar can parse
// the candidate — the accept-flip check. Only oracle-accepted mutated
// candidates need parsing (grammar-generated inputs are in L(Ĉ) by
// construction), and the batch runs through the compiled recognizer's
// worker pool before classify takes the mutex, so triage keeps pace with
// the oracle query wave instead of parsing one candidate at a time on the
// coordinator.
func (c *Campaign) triageParse(wave []candidate, verdicts []oracle.Verdict) []bool {
	var batch []string
	var idx []int
	for i, cand := range wave {
		if verdicts[i] == oracle.Accept && !cand.fromGrammar {
			batch = append(batch, cand.input)
			idx = append(idx, i)
		}
	}
	inGrammar := make([]bool, len(wave))
	if len(batch) == 0 {
		return inGrammar
	}
	c.mu.Lock()
	compiled := c.compiled
	c.mu.Unlock()
	for j, ok := range compiled.AcceptsAll(batch, c.conf.Workers) {
		inGrammar[idx[j]] = ok
	}
	return inGrammar
}

// classify triages one executed wave into the corpus and counters, keyed
// directly on each slot's oracle.Verdict — any verdict-capable oracle
// populates the crash and timeout buckets. diffVerdicts, non-nil only in
// differential campaigns, is the second oracle's answer per slot;
// inGrammar is triageParse's answer per wave slot.
func (c *Campaign) classify(wave []candidate, verdicts, diffVerdicts []oracle.Verdict, inGrammar []bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.report.Waves++
	for i, cand := range wave {
		c.report.Inputs++
		if diffVerdicts != nil && verdicts[i].Accepted() != diffVerdicts[i].Accepted() {
			c.report.DiffDisagreements++
			bucket := BucketDiffReject
			if verdicts[i].Accepted() {
				bucket = BucketDiffAccept
			}
			c.corpus.add(Entry{Input: cand.input, Bucket: bucket, Wave: c.report.Waves})
		}
		switch verdicts[i] {
		case oracle.Crash:
			c.report.Rejected++
			c.corpus.add(Entry{Input: cand.input, Bucket: BucketCrash, Wave: c.report.Waves})
		case oracle.Timeout:
			c.report.Rejected++
			c.corpus.add(Entry{Input: cand.input, Bucket: BucketTimeout, Wave: c.report.Waves})
		case oracle.Accept:
			c.report.Accepted++
			// Mutated inputs that the oracle accepts but the grammar cannot
			// parse show where the grammar under-approximates; they are the
			// refresh seeds. triageParse already parsed exactly these.
			if !cand.fromGrammar && !inGrammar[i] {
				if c.corpus.add(Entry{Input: cand.input, Bucket: BucketAcceptFlip, Wave: c.report.Waves}) {
					c.flipsSinceRefresh++
				}
			}
			if shape := shapeOf(cand.input); c.corpus.newShape(shape) {
				c.corpus.add(Entry{Input: cand.input, Bucket: BucketShape, Shape: shape, Wave: c.report.Waves})
			}
		default:
			c.report.Rejected++
			if cand.fromGrammar {
				c.corpus.add(Entry{Input: cand.input, Bucket: BucketRejectFlip, Wave: c.report.Waves})
			}
		}
	}
}

// maybeRefresh re-learns the grammar when the refresh interval has elapsed
// and new accept flips exist to learn from. The refreshed grammar swaps in
// atomically for subsequent waves; on failure the old grammar stays.
func (c *Campaign) maybeRefresh(ctx context.Context) {
	if c.conf.RefreshEvery <= 0 || time.Since(c.lastRefresh) < c.conf.RefreshEvery {
		return
	}
	c.lastRefresh = time.Now()
	c.mu.Lock()
	flips := c.corpus.recent(BucketAcceptFlip, c.conf.MaxRefreshSeeds)
	fresh := c.flipsSinceRefresh
	c.mu.Unlock()
	if fresh == 0 || len(flips) == 0 {
		return
	}
	seeds := append(append([]string(nil), c.conf.Seeds...), flips...)
	opts := core.DefaultOptions()
	opts.Workers = c.conf.Workers
	opts.Timeout = c.conf.RefreshTimeout
	opts.RandSeed = c.conf.RandSeed
	if c.execOracle {
		// External processes are too expensive for a full printable-ASCII
		// sweep per literal; restrict character generalization exactly as
		// cmd/glade and glade-serve do.
		opts.GenAlphabet = bytesets.OfString(strings.Join(seeds, "")).
			Union(bytesets.OfString(" \t\nabcxyz012<>()[]{}/\\\"'"))
	}
	// The campaign context cancels the refresh learn directly now; the
	// soft-timeout clamp remains so a refresh starting just before a
	// Duration deadline finalizes gracefully instead of being aborted with
	// its work discarded. A refresh with almost no time left is not worth
	// starting at all.
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining < 2*time.Second {
			return
		}
		if remaining < opts.Timeout {
			opts.Timeout = remaining
		}
	}
	if ctx.Err() != nil {
		return
	}
	c.logf("campaign: refreshing grammar with %d accept flips", len(flips))
	// Learning through the timer keeps refresh queries in the report's
	// oracle stats. core.Learn adds its own cache and worker pool on top.
	res, err := core.Learn(ctx, seeds, c.timer, opts)
	if err != nil {
		c.logf("campaign: refresh failed, keeping current grammar: %v", err)
		return
	}
	fuzzer := fuzz.NewGrammar(res.Grammar, seeds)
	c.mu.Lock()
	c.grammar = res.Grammar
	c.fuzzer = fuzzer
	c.compiled = fuzzer.Compiled()
	c.flipsSinceRefresh = 0
	c.report.Refreshes++
	c.report.GrammarSymbols = res.Grammar.Size()
	c.mu.Unlock()
	c.logf("campaign: refreshed grammar (%d symbols, %.2fs)",
		res.Grammar.Size(), res.Stats.Duration.Seconds())
}

// checkpoint, at the checkpoint cadence (or when forced), snapshots the
// report, writes the report file, and invokes the Progress callback. Off
// cadence it returns a zero Report without snapshotting — it runs after
// every wave, and assembling a snapshot copies the whole retained corpus
// under the mutex watchers contend on.
func (c *Campaign) checkpoint(done, force bool) Report {
	now := time.Now()
	if !force && now.Sub(c.lastCheckpoint) < c.conf.ReportEvery {
		return Report{}
	}
	c.lastCheckpoint = now
	c.mu.Lock()
	r := c.snapshotLocked(done, now)
	c.mu.Unlock()
	if c.conf.ReportPath != "" && !done { // the final write happens in Run
		if err := r.WriteFile(c.conf.ReportPath); err != nil {
			c.logf("campaign: checkpoint write failed: %v", err)
		}
	}
	if c.conf.Progress != nil {
		c.conf.Progress(r)
	}
	return r
}

// snapshotLocked assembles a full Report from the live counters. Callers
// hold c.mu.
func (c *Campaign) snapshotLocked(done bool, now time.Time) Report {
	r := c.report
	r.UpdatedAt = now
	if !r.StartedAt.IsZero() {
		r.ElapsedSeconds = now.Sub(r.StartedAt).Seconds()
	}
	r.Buckets = c.corpus.bucketCounts()
	r.Corpus = append([]Entry(nil), c.corpus.entries...)
	r.Queries = c.timer.Snapshot()
	if c.diffTimer != nil {
		qs := c.diffTimer.Snapshot()
		r.DiffQueries = &qs
	}
	if c.resilient != nil {
		st := c.resilient.Stats()
		r.OracleRetries = st.Retries
		r.BreakerOpens = st.BreakerOpens
	}
	r.Done = done
	return r
}

// Snapshot returns the campaign's current report; safe to call
// concurrently with Run (the glade-serve watch stream polls it).
func (c *Campaign) Snapshot() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked(false, time.Now())
}

func (c *Campaign) logf(format string, args ...any) {
	if c.conf.Logf != nil {
		c.conf.Logf(format, args...)
	}
}
