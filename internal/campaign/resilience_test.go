package campaign

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"glade/internal/oracle"
)

// TestCampaignSurvivesTransientOutage wraps the oracle so that a couple
// of early waves fail transiently: the campaign must drop those waves,
// count them in oracle_outages, and keep running to a normal finish
// instead of finalizing on the first hiccup.
func TestCampaignSurvivesTransientOutage(t *testing.T) {
	conf := grepCampaignConfig(t)
	inner := conf.Oracle
	var calls atomic.Int64
	conf.Oracle = oracle.CheckFunc(func(ctx context.Context, input string) (oracle.Verdict, error) {
		// Fail calls 30..45: a mid-campaign outage. Each failed wave
		// stops at its first error, so the window spans several waves.
		if n := calls.Add(1); n >= 30 && n <= 45 {
			return oracle.Reject, oracle.MarkTransient(errors.New("oracle briefly down"))
		}
		return inner.Check(ctx, input)
	})
	conf.Duration = 8 * time.Second
	conf.Workers = 4
	conf.BatchSize = 16
	c, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run = %v; a transient outage must not finalize the campaign", err)
	}
	if !rep.Done {
		t.Fatal("report not marked done")
	}
	if rep.OracleOutages == 0 {
		t.Fatal("oracle_outages = 0, want > 0")
	}
	if rep.Waves < 2 || rep.Inputs == 0 {
		t.Fatalf("campaign made no progress after the outage: waves=%d inputs=%d", rep.Waves, rep.Inputs)
	}
	if rep.Accepted+rep.Rejected != rep.Inputs {
		t.Fatalf("accepted(%d)+rejected(%d) != inputs(%d) after dropped waves",
			rep.Accepted, rep.Rejected, rep.Inputs)
	}
}

// TestCampaignPermanentOracleErrorStillAborts pins the other side: a
// permanent failure finalizes the report and surfaces the error.
func TestCampaignPermanentOracleErrorStillAborts(t *testing.T) {
	conf := grepCampaignConfig(t)
	perm := errors.New("binary vanished")
	conf.Oracle = oracle.CheckFunc(func(context.Context, string) (oracle.Verdict, error) {
		return oracle.Reject, perm
	})
	conf.Duration = 30 * time.Second
	c, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := c.Run(context.Background())
	if !errors.Is(err, perm) {
		t.Fatalf("Run err = %v, want the permanent oracle error", err)
	}
	if rep == nil || !rep.Done {
		t.Fatal("permanent failure must still finalize the report")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("permanent failure did not abort promptly")
	}
}

// TestCampaignReportsResilientCounters runs with a Resilient-wrapped
// flaky oracle and checks the retry counters surface in the report.
func TestCampaignReportsResilientCounters(t *testing.T) {
	conf := grepCampaignConfig(t)
	inj := oracle.NewFaultInjector(conf.Oracle, oracle.FaultOptions{Seed: 5, TransientRate: 0.05})
	conf.Oracle = oracle.NewResilient(inj, oracle.ResilientOptions{
		Retry: oracle.RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond},
	})
	conf.Duration = time.Second
	c, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OracleRetries == 0 {
		t.Fatal("oracle_retries = 0, want > 0 under 5% fault injection")
	}
	if rep.OracleOutages != 0 {
		t.Fatalf("oracle_outages = %d; retries should have absorbed every fault", rep.OracleOutages)
	}
}
