package campaign

import "strings"

// Bucket classifies why a campaign input was deemed interesting. The
// buckets mirror what a grammar tells a fuzzer beyond raw coverage: both
// directions of disagreement between the synthesized language L(Ĉ) and the
// program's true language L*, structural novelty among accepted inputs,
// and the two abnormal-execution verdicts an exec oracle can report.
type Bucket string

const (
	// BucketAcceptFlip marks an input the oracle accepted but the current
	// grammar cannot parse — evidence the grammar under-approximates L*.
	// Accept flips are the seeds grammar refresh feeds back into
	// core.Learn.
	BucketAcceptFlip Bucket = "accept_flip"
	// BucketRejectFlip marks a grammar-generated input (so in L(Ĉ) by
	// construction) that the oracle rejected — evidence the grammar
	// over-approximates L*.
	BucketRejectFlip Bucket = "reject_flip"
	// BucketShape marks the first accepted input exhibiting a previously
	// unseen token shape (see shapeOf) — structural diversity among valid
	// inputs, the campaign analogue of new coverage.
	BucketShape Bucket = "new_shape"
	// BucketCrash marks an input on which the exec oracle's target died on
	// a signal.
	BucketCrash Bucket = "crash"
	// BucketTimeout marks an input on which the exec oracle's target hung
	// until the per-query timeout killed it.
	BucketTimeout Bucket = "timeout"
	// BucketDiffAccept marks a differential-campaign disagreement where the
	// primary oracle accepted the input and the diff oracle did not — the
	// primary's language is wider here (or the diff target has a bug).
	BucketDiffAccept Bucket = "diff_accept"
	// BucketDiffReject marks the opposite disagreement: the primary oracle
	// rejected an input the diff oracle accepts.
	BucketDiffReject Bucket = "diff_reject"
)

// Buckets lists every bucket in report order.
func Buckets() []Bucket {
	return []Bucket{BucketAcceptFlip, BucketRejectFlip, BucketShape, BucketCrash, BucketTimeout,
		BucketDiffAccept, BucketDiffReject}
}

// Entry is one retained interesting input.
type Entry struct {
	Input  string `json:"input"`
	Bucket Bucket `json:"bucket"`
	// Shape is the input's token shape (new_shape entries only).
	Shape string `json:"shape,omitempty"`
	// Wave is the campaign wave that found the input.
	Wave int `json:"wave"`
}

// maxShapes bounds the token-shape intern table; once full, shape novelty
// stops being tracked (the report's other buckets keep filling). The bound
// keeps an indefinitely running campaign's memory flat.
const maxShapes = 4096

// shapeOf computes an input's token shape: letters collapse to 'a', digits
// to '0', blanks to '_', runs of the same class collapse to one character,
// and punctuation is kept verbatim. "s/ab2/x/g" → "a/a0/a/a". Two inputs
// with the same shape exercise the same token structure, so only the first
// is corpus-worthy.
func shapeOf(input string) string {
	var b strings.Builder
	var prev byte
	for i := 0; i < len(input); i++ {
		ch := input[i]
		var cls byte
		switch {
		case ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z':
			cls = 'a'
		case ch >= '0' && ch <= '9':
			cls = '0'
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			cls = '_'
		default:
			cls = ch
		}
		if cls != prev || (cls != 'a' && cls != '0' && cls != '_') {
			b.WriteByte(cls)
		}
		prev = cls
	}
	return b.String()
}

// seenSet is a bounded approximate membership set with two-generation
// rotation: lookups consult both generations, inserts fill the current one,
// and when the current generation reaches cap it becomes the previous
// generation (dropping the old previous). Memory stays ≤ 2×cap entries
// forever, at the cost of occasionally re-admitting an input last seen more
// than a full generation ago — harmless for execution dedup.
type seenSet struct {
	cap       int
	cur, prev map[string]struct{}
}

func newSeenSet(cap int) *seenSet {
	return &seenSet{cap: cap, cur: make(map[string]struct{})}
}

func (s *seenSet) contains(k string) bool {
	if _, ok := s.cur[k]; ok {
		return true
	}
	_, ok := s.prev[k]
	return ok
}

func (s *seenSet) add(k string) {
	if len(s.cur) >= s.cap {
		s.prev = s.cur
		s.cur = make(map[string]struct{}, s.cap)
	}
	s.cur[k] = struct{}{}
}

// corpus accumulates interesting inputs, deduplicated and bounded: per
// bucket at most maxPerBucket entries are retained (counts keep growing so
// the report stays honest about volume), and a bounded seen set stops the
// same input from re-entering after a dedup-set rotation.
type corpus struct {
	maxPerBucket int
	counts       map[Bucket]int
	retained     map[Bucket]int
	entries      []Entry
	seen         *seenSet
	shapes       map[string]struct{}
}

func newCorpus(maxPerBucket int) *corpus {
	return &corpus{
		maxPerBucket: maxPerBucket,
		counts:       map[Bucket]int{},
		retained:     map[Bucket]int{},
		seen:         newSeenSet(4 * maxPerBucket * len(Buckets())),
		shapes:       map[string]struct{}{},
	}
}

// newShape records the shape if unseen, reporting whether it was new.
// Novelty tracking stops once the intern table is full.
func (c *corpus) newShape(shape string) bool {
	if _, ok := c.shapes[shape]; ok {
		return false
	}
	if len(c.shapes) >= maxShapes {
		return false
	}
	c.shapes[shape] = struct{}{}
	return true
}

// add records an interesting input, returning whether it was retained
// (false for duplicates and for buckets already at capacity; the bucket
// count increments either way unless the input is a duplicate).
func (c *corpus) add(e Entry) bool {
	key := string(e.Bucket) + "\x00" + e.Input
	if c.seen.contains(key) {
		return false
	}
	c.seen.add(key)
	c.counts[e.Bucket]++
	if c.retained[e.Bucket] >= c.maxPerBucket {
		return false
	}
	c.retained[e.Bucket]++
	c.entries = append(c.entries, e)
	return true
}

// bucketCounts copies the per-bucket totals.
func (c *corpus) bucketCounts() map[Bucket]int {
	out := make(map[Bucket]int, len(c.counts))
	for b, n := range c.counts {
		out[b] = n
	}
	return out
}

// recent returns up to n retained entries of the given bucket, newest
// first.
func (c *corpus) recent(b Bucket, n int) []string {
	var out []string
	for i := len(c.entries) - 1; i >= 0 && len(out) < n; i-- {
		if c.entries[i].Bucket == b {
			out = append(out, c.entries[i].Input)
		}
	}
	return out
}
