package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"glade/internal/bench"
	"glade/internal/cfg"
	"glade/internal/oracle"
	"glade/internal/programs"
)

// grepCampaignConfig learns (and caches, via bench) the grep grammar and
// returns a campaign config against the builtin grep program — small
// enough to learn in well under a second.
func grepCampaignConfig(t *testing.T) Config {
	t.Helper()
	p := programs.ByName("grep")
	res, err := bench.LearnProgram(context.Background(), p, 30*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Grammar: res.Grammar,
		Seeds:   p.Seeds(),
		Oracle:  oracle.Func(func(s string) bool { return p.Run(s).OK }),
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil grammar accepted")
	}
	conf := grepCampaignConfig(t)
	conf.Oracle = nil
	if _, err := New(conf); err == nil {
		t.Error("nil oracle accepted")
	}
	conf = grepCampaignConfig(t)
	conf.Seeds = nil
	if _, err := New(conf); err == nil {
		t.Error("empty seeds accepted")
	}
}

// TestCampaignRunsAndTriages runs a short campaign against the builtin
// grep program and checks the core engine behaviors: waves execute, the
// corpus fills with deduplicated bucketed entries, and the report's
// counters are consistent.
func TestCampaignRunsAndTriages(t *testing.T) {
	conf := grepCampaignConfig(t)
	conf.Duration = 2 * time.Second
	conf.Workers = 4
	conf.ReportEvery = 100 * time.Millisecond
	var progressCalls int
	conf.Progress = func(Report) { progressCalls++ }
	c, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Done {
		t.Error("final report not marked done")
	}
	if rep.Waves == 0 || rep.Inputs == 0 {
		t.Fatalf("campaign did no work: %+v", rep)
	}
	if rep.Accepted+rep.Rejected != rep.Inputs {
		t.Errorf("accepted %d + rejected %d != inputs %d", rep.Accepted, rep.Rejected, rep.Inputs)
	}
	if rep.Interesting() == 0 || len(rep.Corpus) == 0 {
		t.Fatalf("no interesting inputs found: buckets %v", rep.Buckets)
	}
	if rep.Buckets[BucketShape] == 0 {
		t.Errorf("no new-shape entries after %d accepted inputs", rep.Accepted)
	}
	if rep.Queries.Queries == 0 {
		t.Error("query stats empty")
	}
	if progressCalls < 2 {
		t.Errorf("progress called %d times, want >= 2", progressCalls)
	}
	// Corpus entries are unique per (bucket, input).
	seen := map[string]bool{}
	for _, e := range rep.Corpus {
		key := string(e.Bucket) + "\x00" + e.Input
		if seen[key] {
			t.Errorf("duplicate corpus entry %q in %s", e.Input, e.Bucket)
		}
		seen[key] = true
	}
}

// TestCampaignCheckpointReport checks the periodic report file: valid
// JSON, atomic, and finally marked done.
func TestCampaignCheckpointReport(t *testing.T) {
	conf := grepCampaignConfig(t)
	conf.Duration = time.Second
	conf.ReportEvery = 50 * time.Millisecond
	conf.ReportPath = filepath.Join(t.TempDir(), "sub", "report.json")
	c, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(conf.ReportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if !rep.Done || rep.Inputs == 0 || len(rep.Corpus) == 0 {
		t.Fatalf("final report incomplete: done=%v inputs=%d corpus=%d", rep.Done, rep.Inputs, len(rep.Corpus))
	}
}

// TestCampaignCancellation: an unbounded campaign must stop promptly when
// its context is cancelled and still return a final report.
func TestCampaignCancellation(t *testing.T) {
	conf := grepCampaignConfig(t)
	c, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *Report, 1)
	go func() {
		rep, _ := c.Run(ctx)
		done <- rep
	}()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case rep := <-done:
		if !rep.Done {
			t.Error("cancelled campaign's report not marked done")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("campaign did not stop after cancellation")
	}
}

// TestCampaignSnapshotConcurrent polls Snapshot while the campaign runs
// (the watch-stream access pattern); run under -race this is the
// concurrency check.
func TestCampaignSnapshotConcurrent(t *testing.T) {
	conf := grepCampaignConfig(t)
	conf.Duration = time.Second
	conf.Workers = 4
	c, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s := c.Snapshot()
				if s.Accepted+s.Rejected != s.Inputs {
					t.Errorf("inconsistent snapshot: %+v", s)
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
}

// TestCampaignExecVerdicts drives a campaign against a shell oracle that
// accepts inputs containing "ok", crashes on inputs containing "boom", and
// hangs on inputs containing "zzz" — the crash and timeout buckets must
// fill through the exec verdict path.
func TestCampaignExecVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	script := `in=$(cat); case "$in" in *boom*) kill -SEGV $$;; *zzz*) sleep 30;; *ok*) exit 0;; *) exit 1;; esac`
	ex := &oracle.Exec{Argv: []string{"sh", "-c", script}, Timeout: 200 * time.Millisecond, Workers: 4}
	// A tiny hand-built grammar whose language is ok, okok, okokok, ... —
	// learning is not the point here, triage is.
	res, err := bench.LearnProgram(context.Background(), programs.ByName("grep"), 30*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := Config{
		Grammar: res.Grammar,
		// Seed the mutators with strings adjacent to the trigger words so a
		// short campaign reliably hits all three behaviors.
		Seeds:       []string{"ok", "okboomok", "okzzzok"},
		Oracle:      ex,
		Workers:     4,
		BatchSize:   16,
		Duration:    3 * time.Second,
		MutateRatio: 0.9,
	}
	c, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Buckets[BucketCrash] == 0 {
		t.Errorf("no crash entries: buckets %v (%d inputs)", rep.Buckets, rep.Inputs)
	}
	if rep.Buckets[BucketTimeout] == 0 {
		t.Errorf("no timeout entries: buckets %v (%d inputs)", rep.Buckets, rep.Inputs)
	}
}

// TestCampaignDifferential runs a deterministic differential campaign:
// the primary oracle accepts any non-empty run of 'a's, the diff oracle
// only even-length runs, and the grammar generates runs of every length —
// so odd-length samples are guaranteed disagreements. They must be
// counted, triaged into diff_accept (primary accepts, diff rejects), and
// the diff oracle's own query stats must land in the report.
func TestCampaignDifferential(t *testing.T) {
	g, err := cfg.Unmarshal("start A\nA -> \"a\"\nA -> \"a\" A\n")
	if err != nil {
		t.Fatal(err)
	}
	allAs := func(s string) bool {
		for i := 0; i < len(s); i++ {
			if s[i] != 'a' {
				return false
			}
		}
		return len(s) > 0
	}
	conf := Config{
		Grammar:    g,
		Seeds:      []string{"aa", "aaaa"},
		Oracle:     oracle.Func(allAs),
		DiffOracle: oracle.Func(func(s string) bool { return allAs(s) && len(s)%2 == 0 }),
		DiffName:   "builtin:even-as",
		Duration:   time.Second,
		Workers:    2,
		BatchSize:  32,
	}
	c, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.DiffOracle != "builtin:even-as" {
		t.Errorf("DiffOracle = %q", rep.DiffOracle)
	}
	if rep.DiffDisagreements == 0 {
		t.Fatal("no disagreements despite guaranteed odd-length samples")
	}
	if rep.Buckets[BucketDiffAccept] == 0 {
		t.Errorf("no diff_accept entries: buckets %v", rep.Buckets)
	}
	if rep.DiffQueries == nil || rep.DiffQueries.Queries == 0 {
		t.Error("diff oracle query stats missing from report")
	}
	diffEntries := 0
	for _, e := range rep.Corpus {
		if e.Bucket == BucketDiffAccept {
			diffEntries++
			if len(e.Input)%2 == 0 || !allAs(e.Input) {
				t.Errorf("diff_accept entry %q is not an odd-length a-run", e.Input)
			}
		}
	}
	if diffEntries == 0 {
		t.Error("no diff_accept corpus entries retained")
	}
}

// TestCampaignDiffOracleErrorAborts: a failing diff oracle must end the
// campaign with an error — a silent "no disagreements" report would be a
// false negative.
func TestCampaignDiffOracleErrorAborts(t *testing.T) {
	conf := grepCampaignConfig(t)
	conf.DiffOracle = oracle.CheckFunc(func(context.Context, string) (oracle.Verdict, error) {
		return oracle.Reject, errors.New("diff target unavailable")
	})
	c, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "diff oracle") {
		t.Fatalf("Run err = %v, want wrapped diff oracle failure", err)
	}
}

// TestShapeOf pins the token-shape signature.
func TestShapeOf(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"s/ab2/x/g", "a/a0/a/a"},
		{"hello world", "a_a"},
		{"<a>hi</a>", "<a>a</a>"},
		{"  \t\n", "_"},
		{"(())", "(())"},
		{"abc123", "a0"},
	}
	for _, tc := range cases {
		if got := shapeOf(tc.in); got != tc.want {
			t.Errorf("shapeOf(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestSeenSetRotation: the dedup set must stay bounded while still
// remembering recent keys.
func TestSeenSetRotation(t *testing.T) {
	s := newSeenSet(4)
	for i := 0; i < 100; i++ {
		k := string(rune('a' + i%26))
		s.add(k)
	}
	if len(s.cur)+len(s.prev) > 8 {
		t.Fatalf("seen set grew past 2x cap: %d", len(s.cur)+len(s.prev))
	}
	s = newSeenSet(100)
	s.add("x")
	if !s.contains("x") {
		t.Fatal("fresh key forgotten")
	}
	if s.contains("y") {
		t.Fatal("phantom key")
	}
}

// TestCorpusBounds: counts grow without bound but retained entries cap at
// maxPerBucket, and duplicates are rejected entirely.
func TestCorpusBounds(t *testing.T) {
	co := newCorpus(3)
	for i := 0; i < 10; i++ {
		co.add(Entry{Input: string(rune('a' + i)), Bucket: BucketRejectFlip})
	}
	if co.counts[BucketRejectFlip] != 10 {
		t.Errorf("count = %d, want 10", co.counts[BucketRejectFlip])
	}
	if co.retained[BucketRejectFlip] != 3 || len(co.entries) != 3 {
		t.Errorf("retained = %d entries = %d, want 3", co.retained[BucketRejectFlip], len(co.entries))
	}
	if co.add(Entry{Input: "a", Bucket: BucketRejectFlip}) {
		t.Error("duplicate retained")
	}
	if co.counts[BucketRejectFlip] != 10 {
		t.Error("duplicate counted")
	}
	// The same input in a different bucket is a distinct finding.
	if got := co.counts[BucketCrash]; got != 0 {
		t.Fatalf("crash count = %d", got)
	}
	co.add(Entry{Input: "a", Bucket: BucketCrash})
	if co.counts[BucketCrash] != 1 {
		t.Error("cross-bucket entry rejected")
	}
}

// TestCampaignRefresh: with aggressive refresh settings against a target
// whose language is wider than the learned grammar, the campaign must find
// accept flips and complete at least one grammar refresh.
func TestCampaignRefresh(t *testing.T) {
	p := programs.ByName("grep")
	// Learn from a deliberately narrow single seed so the true language is
	// much wider than the grammar — mutants then produce accept flips.
	res, err := bench.LearnProgram(context.Background(), p, 30*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := Config{
		Grammar:      res.Grammar,
		Seeds:        p.Seeds(),
		Oracle:       oracle.Func(func(s string) bool { return p.Run(s).OK }),
		Workers:      4,
		Duration:     4 * time.Second,
		MutateRatio:  0.8, // hunt flips aggressively
		RefreshEvery: 300 * time.Millisecond,
	}
	c, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Buckets[BucketAcceptFlip] == 0 {
		t.Skipf("no accept flips found in this run; refresh untestable (buckets %v)", rep.Buckets)
	}
	if rep.Refreshes == 0 {
		t.Errorf("accept flips found (%d) but no refresh ran", rep.Buckets[BucketAcceptFlip])
	}
	if rep.GrammarSymbols == 0 {
		t.Error("grammar size missing from report")
	}
}
