package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"

	"glade/internal/metrics"
)

// Report is a campaign's checkpointed state: execution counters, per-bucket
// interesting-input totals, the retained corpus, oracle query timing, and
// grammar-refresh history. The engine writes it as indented JSON to
// Config.ReportPath every Config.ReportEvery and once more at completion,
// so a campaign killed at any point leaves a usable report behind.
type Report struct {
	// StartedAt and UpdatedAt bound the observed window; ElapsedSeconds is
	// their difference, kept explicit for report consumers.
	StartedAt      time.Time `json:"started_at"`
	UpdatedAt      time.Time `json:"updated_at"`
	ElapsedSeconds float64   `json:"elapsed_seconds"`
	// Waves counts completed batches; Inputs counts executed (post-dedup)
	// inputs; Duplicates counts candidates skipped as already executed.
	Waves      int `json:"waves"`
	Inputs     int `json:"inputs"`
	Duplicates int `json:"duplicates"`
	// Accepted and Rejected split the oracle's verdicts over Inputs;
	// crashes and timeouts count as rejections here and appear in Buckets.
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	// Buckets is the per-bucket interesting-input total; Corpus holds the
	// retained entries themselves (bounded per bucket by Config.MaxBucket).
	Buckets map[Bucket]int `json:"buckets"`
	Corpus  []Entry        `json:"corpus"`
	// Refreshes counts completed grammar refreshes; GrammarSymbols is the
	// current grammar's size (it grows when refresh absorbs accept flips).
	Refreshes      int `json:"refreshes"`
	GrammarSymbols int `json:"grammar_symbols"`
	// Queries is the oracle-level timing snapshot (latency, throughput).
	Queries metrics.QueryStats `json:"queries"`
	// DiffOracle names the second oracle of a differential campaign (empty
	// otherwise); DiffDisagreements counts inputs on which the two oracles'
	// boolean answers differed, and DiffQueries is the diff oracle's own
	// timing snapshot.
	DiffOracle        string              `json:"diff_oracle,omitempty"`
	DiffDisagreements int                 `json:"diff_disagreements,omitempty"`
	DiffQueries       *metrics.QueryStats `json:"diff_queries,omitempty"`
	// OracleOutages counts waves dropped because the oracle failed
	// transiently (retries exhausted or breaker open); the campaign
	// pauses and continues instead of finalizing. OracleRetries and
	// BreakerOpens mirror the oracle's Resilient-layer counters when the
	// oracle stack has one (zero otherwise).
	OracleOutages int    `json:"oracle_outages,omitempty"`
	OracleRetries uint64 `json:"oracle_retries,omitempty"`
	BreakerOpens  uint64 `json:"breaker_opens,omitempty"`
	// Done is false in periodic checkpoints and true in the final report.
	Done bool `json:"done"`
}

// Interesting sums the per-bucket totals — the campaign's headline number.
func (r Report) Interesting() int {
	n := 0
	for _, c := range r.Buckets {
		n += c
	}
	return n
}

// WriteFile atomically writes the report as indented JSON to path,
// creating parent directories as needed. Atomicity (temp file + rename)
// means a reader — or the next daemon incarnation — never observes a torn
// report.
func (r Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".campaign-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
