package fuzz

import (
	"math/rand"

	"glade/internal/programs"
)

// Checkpoint is one point on a coverage-vs-samples curve (Figure 7(c)).
type Checkpoint struct {
	Samples   int
	Valid     int
	IncrCover int
}

// CoverageRun is the outcome of one fuzzing campaign against one program —
// the raw ingredients of the paper's §8.3 metrics.
type CoverageRun struct {
	Fuzzer  string
	Program string
	Samples int
	// Valid counts generated inputs accepted by the program.
	Valid int
	// SeedCover is the number of coverage points hit by the seed inputs.
	SeedCover int
	// IncrCover is the valid incremental coverage numerator: points hit by
	// valid generated inputs but not by the seeds.
	IncrCover int
	// Curve samples IncrCover over time when checkpointEvery > 0.
	Curve []Checkpoint
}

// Normalized returns this run's valid normalized incremental coverage
// against a baseline run (the naive fuzzer in the paper). It is 0 when the
// baseline found nothing.
func (r CoverageRun) Normalized(baseline CoverageRun) float64 {
	if baseline.IncrCover == 0 {
		if r.IncrCover == 0 {
			return 1
		}
		return 0
	}
	return float64(r.IncrCover) / float64(baseline.IncrCover)
}

// RunCoverage executes the fuzzing campaign of §8.3: generate samples
// inputs with f against p, keep only valid ones, and measure the coverage
// they add beyond the program's bundled seeds.
func RunCoverage(p programs.Program, f Fuzzer, samples int, rng *rand.Rand, checkpointEvery int) CoverageRun {
	run := CoverageRun{Fuzzer: f.Name(), Program: p.Name(), Samples: samples}
	seedPoints := map[int]bool{}
	for _, s := range p.Seeds() {
		for _, pt := range p.Run(s).Points {
			seedPoints[pt] = true
		}
	}
	run.SeedCover = len(seedPoints)
	incr := map[int]bool{}
	for i := 0; i < samples; i++ {
		input := f.Next(rng)
		res := p.Run(input)
		f.Observe(input, res)
		if res.OK {
			run.Valid++
			for _, pt := range res.Points {
				if !seedPoints[pt] {
					incr[pt] = true
				}
			}
		}
		if checkpointEvery > 0 && (i+1)%checkpointEvery == 0 {
			run.Curve = append(run.Curve, Checkpoint{Samples: i + 1, Valid: run.Valid, IncrCover: len(incr)})
		}
	}
	run.IncrCover = len(incr)
	return run
}
