package fuzz

import (
	"math/rand"

	"glade/internal/programs"
)

// AFL is a coverage-guided mutation fuzzer modeled on afl-fuzz's havoc
// stage: a queue of interesting inputs (seeded with Ein, fuzzed round-robin
// as §8.3 describes), stacked random mutations, and queue growth whenever
// an input reaches new coverage points.
type AFL struct {
	queue   []string
	qi      int
	seen    map[int]bool
	pending string
}

// NewAFL builds the fuzzer with the given seed queue.
func NewAFL(seeds []string) *AFL {
	q := append([]string(nil), seeds...)
	if len(q) == 0 {
		q = []string{""}
	}
	return &AFL{queue: q, seen: map[int]bool{}}
}

// Name implements Fuzzer.
func (f *AFL) Name() string { return "afl" }

// QueueLen reports the current queue size (for stats).
func (f *AFL) QueueLen() int { return len(f.queue) }

// Next implements Fuzzer: round-robin over the queue, havoc mutations.
func (f *AFL) Next(rng *rand.Rand) string {
	base := f.queue[f.qi%len(f.queue)]
	f.qi++
	b := []byte(base)
	// Stacked havoc: 2^(1..6) mutations, as afl does.
	n := 1 << (1 + rng.Intn(6))
	for k := 0; k < n; k++ {
		b = f.havoc(rng, b)
	}
	f.pending = string(b)
	return f.pending
}

// Observe implements Fuzzer: inputs discovering new coverage join the
// queue.
func (f *AFL) Observe(input string, res programs.Result) {
	novel := false
	for _, pt := range res.Points {
		if !f.seen[pt] {
			f.seen[pt] = true
			novel = true
		}
	}
	if novel && input != "" {
		f.queue = append(f.queue, input)
	}
}

// havoc applies one random afl-style mutation.
func (f *AFL) havoc(rng *rand.Rand, b []byte) []byte {
	switch rng.Intn(8) {
	case 0: // single bit flip
		if len(b) == 0 {
			return b
		}
		i := rng.Intn(len(b))
		b[i] ^= 1 << uint(rng.Intn(8))
		return b
	case 1: // random byte overwrite
		if len(b) == 0 {
			return b
		}
		b[rng.Intn(len(b))] = byte(rng.Intn(256))
		return b
	case 2: // arithmetic on a byte
		if len(b) == 0 {
			return b
		}
		i := rng.Intn(len(b))
		b[i] = byte(int(b[i]) + rng.Intn(71) - 35)
		return b
	case 3: // delete a block
		if len(b) < 2 {
			return b
		}
		lo := rng.Intn(len(b))
		l := 1 + rng.Intn(len(b)-lo)
		return append(b[:lo], b[lo+l:]...)
	case 4: // clone a block
		if len(b) == 0 || len(b) > 1<<12 {
			return b
		}
		lo := rng.Intn(len(b))
		l := 1 + rng.Intn(len(b)-lo)
		at := rng.Intn(len(b) + 1)
		block := append([]byte(nil), b[lo:lo+l]...)
		return append(b[:at], append(block, b[at:]...)...)
	case 5: // overwrite with a block copied from elsewhere
		if len(b) < 2 {
			return b
		}
		src := rng.Intn(len(b))
		dst := rng.Intn(len(b))
		l := 1 + rng.Intn(len(b)-max(src, dst))
		copy(b[dst:dst+l], b[src:src+l])
		return b
	case 6: // insert a random byte
		i := rng.Intn(len(b) + 1)
		return append(b[:i], append([]byte{byte(rng.Intn(256))}, b[i:]...)...)
	default: // splice with another queue entry
		other := f.queue[rng.Intn(len(f.queue))]
		if len(other) == 0 || len(b) == 0 {
			return b
		}
		cut1 := rng.Intn(len(b))
		cut2 := rng.Intn(len(other))
		return append(b[:cut1], other[cut2:]...)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
