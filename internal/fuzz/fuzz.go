// Package fuzz implements the three fuzzers compared in §8.3 — the naive
// mutation fuzzer, an afl-style coverage-guided fuzzer, and the
// grammar-based fuzzer driven by a GLADE-synthesized grammar — plus the
// coverage-experiment harness computing the paper's valid (normalized)
// incremental coverage metric.
package fuzz

import (
	"math/rand"

	"glade/internal/programs"
)

// Fuzzer generates test inputs; Observe feeds back execution results so
// coverage-guided fuzzers can steer.
type Fuzzer interface {
	// Name identifies the fuzzer in tables.
	Name() string
	// Next produces the next input to execute.
	Next(rng *rand.Rand) string
	// Observe reports the result of executing the input returned by the
	// matching Next call.
	Observe(input string, res programs.Result)
}

// MaxMutations is the paper's bound on mutations per generated input
// (n chosen uniformly from 0..50).
const MaxMutations = 50

// Naive is the paper's baseline fuzzer: pick a random seed, apply n ∈
// [0,50] random single-byte deletions or insertions.
type Naive struct {
	Seeds    []string
	Alphabet []byte
}

// NewNaive builds a naive fuzzer over the given seeds; the insertion
// alphabet defaults to all 256 bytes when alphabet is empty.
func NewNaive(seeds []string, alphabet []byte) *Naive {
	return &Naive{Seeds: seeds, Alphabet: alphabet}
}

// Name implements Fuzzer.
func (f *Naive) Name() string { return "naive" }

// Observe implements Fuzzer (the naive fuzzer ignores feedback).
func (f *Naive) Observe(string, programs.Result) {}

// Next implements Fuzzer.
func (f *Naive) Next(rng *rand.Rand) string {
	if len(f.Seeds) == 0 {
		return ""
	}
	b := []byte(f.Seeds[rng.Intn(len(f.Seeds))])
	n := rng.Intn(MaxMutations + 1)
	for k := 0; k < n; k++ {
		if len(b) > 0 && rng.Intn(2) == 0 {
			// Delete the byte at a random index.
			i := rng.Intn(len(b))
			b = append(b[:i], b[i+1:]...)
		} else {
			// Insert a random byte before a random index.
			i := rng.Intn(len(b) + 1)
			b = append(b[:i], append([]byte{f.randByte(rng)}, b[i:]...)...)
		}
	}
	return string(b)
}

func (f *Naive) randByte(rng *rand.Rand) byte {
	if len(f.Alphabet) == 0 {
		return byte(rng.Intn(256))
	}
	return f.Alphabet[rng.Intn(len(f.Alphabet))]
}
