package fuzz

import (
	"math/rand"

	"glade/internal/cfg"
	"glade/internal/programs"
)

// Grammar is the grammar-based fuzzer of §8.3: given the synthesized
// grammar Ĉ and the seed inputs, each generated input starts from the parse
// tree of a random seed and undergoes n ∈ [0,50] subtree resamplings —
// choose a random tree node labeled A and replace it with a fresh sample
// from PL(Ĉ,A).
type Grammar struct {
	g        *cfg.Grammar
	compiled *cfg.Compiled
	trees    []*cfg.Deriv
	// fallback seeds that did not parse under the grammar (possible when
	// learning timed out); they are emitted unmodified occasionally.
	unparsed []string
}

// NewGrammar builds the fuzzer. Seeds that fail to parse under g are kept
// as unmutatable fallbacks; at least one seed must parse or be present.
//
// The fuzzer compiles g once (cfg.Compile) and runs every subtree
// resample on the compiled tables; seed parsing stays on the chart
// parser, which is what tree extraction needs anyway. The Compiled is
// shared with callers (see Compiled) so a grammar's consumers — fuzzer,
// campaign triage, service generation — build it exactly once.
func NewGrammar(g *cfg.Grammar, seeds []string) *Grammar {
	f := &Grammar{g: g, compiled: cfg.Compile(g)}
	parser := cfg.NewParser(g)
	for _, s := range seeds {
		if t, err := parser.Parse(s); err == nil {
			f.trees = append(f.trees, cfg.DerivFromTree(g, t, s))
		} else {
			f.unparsed = append(f.unparsed, s)
		}
	}
	return f
}

// Name implements Fuzzer.
func (f *Grammar) Name() string { return "glade" }

// Compiled returns the fuzzer's compiled grammar engine, for callers that
// need membership checks against the same grammar (campaign triage batches
// through its AcceptsAll).
func (f *Grammar) Compiled() *cfg.Compiled { return f.compiled }

// ParsedSeeds reports how many seeds parsed under the grammar.
func (f *Grammar) ParsedSeeds() int { return len(f.trees) }

// Observe implements Fuzzer (the grammar fuzzer ignores feedback).
func (f *Grammar) Observe(string, programs.Result) {}

// Next implements Fuzzer.
func (f *Grammar) Next(rng *rand.Rand) string {
	if len(f.trees) == 0 {
		if len(f.unparsed) == 0 {
			return ""
		}
		return f.unparsed[rng.Intn(len(f.unparsed))]
	}
	d := f.trees[rng.Intn(len(f.trees))].Clone()
	n := rng.Intn(MaxMutations + 1)
	for k := 0; k < n; k++ {
		d = f.mutate(rng, d)
	}
	return d.Render()
}

// mutate performs one §8.3 modification: replace a uniformly random node
// with a fresh sample from its nonterminal.
func (f *Grammar) mutate(rng *rand.Rand, root *cfg.Deriv) *cfg.Deriv {
	nodes := root.Nodes(nil)
	target := nodes[rng.Intn(len(nodes))]
	fresh := f.compiled.SampleDeriv(rng, target.NT)
	if target == root {
		return fresh
	}
	// Find and replace the target in its parent.
	var walk func(d *cfg.Deriv) bool
	walk = func(d *cfg.Deriv) bool {
		for i := range d.Parts {
			c := d.Parts[i].Child
			if c == nil {
				continue
			}
			if c == target {
				d.Parts[i].Child = fresh
				return true
			}
			if walk(c) {
				return true
			}
		}
		return false
	}
	walk(root)
	return root
}
