package fuzz

import (
	"context"
	"math/rand"
	"testing"

	"glade/internal/bytesets"
	"glade/internal/cfg"
	"glade/internal/core"
	"glade/internal/oracle"
	"glade/internal/programs"
)

func TestNaiveZeroMutationsReturnsSeed(t *testing.T) {
	f := NewNaive([]string{"seed"}, []byte("ab"))
	rng := rand.New(rand.NewSource(1))
	seen := false
	for i := 0; i < 200; i++ {
		if f.Next(rng) == "seed" {
			seen = true
			break
		}
	}
	if !seen {
		t.Fatal("naive fuzzer never reproduced the unmutated seed (n=0 case)")
	}
}

func TestNaiveEmptySeeds(t *testing.T) {
	f := NewNaive(nil, nil)
	if got := f.Next(rand.New(rand.NewSource(2))); got != "" {
		t.Fatalf("Next with no seeds = %q", got)
	}
}

func TestNaiveMutates(t *testing.T) {
	f := NewNaive([]string{"aaaa"}, []byte("b"))
	rng := rand.New(rand.NewSource(3))
	distinct := map[string]bool{}
	for i := 0; i < 300; i++ {
		distinct[f.Next(rng)] = true
	}
	if len(distinct) < 20 {
		t.Fatalf("naive fuzzer produced only %d distinct inputs", len(distinct))
	}
}

func TestAFLQueueGrowsOnNewCoverage(t *testing.T) {
	p := programs.Sed()
	f := NewAFL(p.Seeds())
	rng := rand.New(rand.NewSource(4))
	before := f.QueueLen()
	for i := 0; i < 3000; i++ {
		in := f.Next(rng)
		f.Observe(in, p.Run(in))
	}
	if f.QueueLen() <= before {
		t.Fatalf("queue did not grow: %d -> %d", before, f.QueueLen())
	}
}

func TestAFLHavocNoPanics(t *testing.T) {
	f := NewAFL([]string{"", "x", "hello world"})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		_ = f.Next(rng)
		f.Observe("", programs.Result{})
	}
}

// xmlGrammar learns the running-example grammar to drive the fuzzer.
func xmlGrammar(t *testing.T) (*cfg.Grammar, []string) {
	t.Helper()
	o := oracle.Func(func(s string) bool {
		d, i := 0, 0
		for i < len(s) {
			switch {
			case len(s)-i >= 3 && s[i:i+3] == "<a>":
				d++
				i += 3
			case len(s)-i >= 4 && s[i:i+4] == "</a>":
				d--
				if d < 0 {
					return false
				}
				i += 4
			case s[i] >= 'a' && s[i] <= 'z':
				i++
			default:
				return false
			}
		}
		return d == 0
	})
	opts := core.DefaultOptions()
	opts.GenAlphabet = bytesets.Range('a', 'z').Union(bytesets.OfString("</>"))
	res, err := core.Learn(context.Background(), []string{"<a>hi</a>"}, o, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Grammar, []string{"<a>hi</a>"}
}

func TestGrammarFuzzerStaysInLanguage(t *testing.T) {
	g, seeds := xmlGrammar(t)
	f := NewGrammar(g, seeds)
	if f.ParsedSeeds() != 1 {
		t.Fatalf("ParsedSeeds = %d", f.ParsedSeeds())
	}
	parser := cfg.NewParser(g)
	rng := rand.New(rand.NewSource(6))
	distinct := map[string]bool{}
	for i := 0; i < 400; i++ {
		s := f.Next(rng)
		if !parser.Accepts(s) {
			t.Fatalf("generated %q outside the grammar", s)
		}
		distinct[s] = true
	}
	if len(distinct) < 50 {
		t.Fatalf("grammar fuzzer produced only %d distinct inputs", len(distinct))
	}
}

func TestGrammarFuzzerUnparsedFallback(t *testing.T) {
	g := cfg.New()
	s := g.AddNT("S")
	g.Add(s, cfg.TByte('x'))
	f := NewGrammar(g, []string{"not-in-language"})
	if f.ParsedSeeds() != 0 {
		t.Fatal("unparseable seed counted as parsed")
	}
	if got := f.Next(rand.New(rand.NewSource(7))); got != "not-in-language" {
		t.Fatalf("fallback Next = %q", got)
	}
}

func TestRunCoverage(t *testing.T) {
	p := programs.Sed()
	f := NewNaive(p.Seeds(), []byte("sdpq/ab*[]{}3,;\n"))
	rng := rand.New(rand.NewSource(8))
	run := RunCoverage(p, f, 2000, rng, 500)
	if run.Samples != 2000 || run.Fuzzer != "naive" || run.Program != "sed" {
		t.Fatalf("run metadata wrong: %+v", run)
	}
	if run.Valid == 0 {
		t.Fatal("no valid inputs generated")
	}
	if run.SeedCover == 0 {
		t.Fatal("seed coverage is zero")
	}
	if len(run.Curve) != 4 {
		t.Fatalf("expected 4 checkpoints, got %d", len(run.Curve))
	}
	for i := 1; i < len(run.Curve); i++ {
		if run.Curve[i].IncrCover < run.Curve[i-1].IncrCover {
			t.Fatal("incremental coverage decreased over time")
		}
	}
	if run.Curve[len(run.Curve)-1].IncrCover != run.IncrCover {
		t.Fatal("final checkpoint disagrees with total")
	}
}

func TestNormalized(t *testing.T) {
	base := CoverageRun{IncrCover: 10}
	if got := (CoverageRun{IncrCover: 25}).Normalized(base); got != 2.5 {
		t.Fatalf("Normalized = %v", got)
	}
	zero := CoverageRun{}
	if got := zero.Normalized(zero); got != 1 {
		t.Fatalf("0/0 Normalized = %v", got)
	}
	if got := (CoverageRun{IncrCover: 5}).Normalized(zero); got != 0 {
		t.Fatalf("x/0 Normalized = %v", got)
	}
}

// TestGrammarFuzzerBeatsNaiveOnXML is a miniature of Figure 7(a): on the
// XML program, the grammar-based fuzzer's valid incremental coverage should
// exceed the naive fuzzer's.
func TestGrammarFuzzerBeatsNaiveOnXML(t *testing.T) {
	g, seeds := xmlGrammar(t)
	p := programs.XML()
	rngA := rand.New(rand.NewSource(9))
	rngB := rand.New(rand.NewSource(9))
	naive := RunCoverage(p, NewNaive(seeds, nil), 3000, rngA, 0)
	glade := RunCoverage(p, NewGrammar(g, seeds), 3000, rngB, 0)
	if glade.Valid <= naive.Valid {
		t.Fatalf("glade valid=%d <= naive valid=%d", glade.Valid, naive.Valid)
	}
	if glade.IncrCover < naive.IncrCover {
		t.Fatalf("glade incr=%d < naive incr=%d", glade.IncrCover, naive.IncrCover)
	}
}
