package rex

import (
	"math/rand"
	"strings"
	"testing"

	"glade/internal/bytesets"
)

func TestMatchLiteral(t *testing.T) {
	e := Literal("abc")
	if !Match(e, "abc") {
		t.Fatal("literal does not match itself")
	}
	for _, s := range []string{"", "ab", "abcd", "abd", "xabc"} {
		if Match(e, s) {
			t.Fatalf("literal matched %q", s)
		}
	}
}

func TestMatchEpsilon(t *testing.T) {
	if !Match(Epsilon(), "") {
		t.Fatal("epsilon does not match empty string")
	}
	if Match(Epsilon(), "a") {
		t.Fatal("epsilon matched non-empty string")
	}
}

func TestMatchClass(t *testing.T) {
	e := OneOf(bytesets.OfString("abc"))
	for _, s := range []string{"a", "b", "c"} {
		if !Match(e, s) {
			t.Fatalf("class did not match %q", s)
		}
	}
	for _, s := range []string{"", "d", "ab"} {
		if Match(e, s) {
			t.Fatalf("class matched %q", s)
		}
	}
}

func TestMatchEmptyLanguage(t *testing.T) {
	empty := Union() // empty alternation = ∅
	alt, ok := empty.(*Alt)
	if !ok || len(alt.Kids) != 0 {
		t.Fatalf("Union() = %#v, want empty Alt", empty)
	}
	for _, s := range []string{"", "a"} {
		if Match(empty, s) {
			t.Fatalf("empty language matched %q", s)
		}
	}
	if !Empty(empty) {
		t.Fatal("Empty(∅) = false")
	}
}

func TestMatchStar(t *testing.T) {
	e := Rep(Literal("ab"))
	for _, s := range []string{"", "ab", "abab", "ababab"} {
		if !Match(e, s) {
			t.Fatalf("(ab)* did not match %q", s)
		}
	}
	for _, s := range []string{"a", "aba", "ba"} {
		if Match(e, s) {
			t.Fatalf("(ab)* matched %q", s)
		}
	}
}

func TestMatchPaperXMLRegex(t *testing.T) {
	// (<a>(h+i)*</a>)* — the regex synthesized at step R9 of Figure 2.
	e := Rep(Concat(
		Literal("<a>"),
		Rep(Union(Literal("h"), Literal("i"))),
		Literal("</a>"),
	))
	valid := []string{"", "<a></a>", "<a>hi</a>", "<a>ihih</a>", "<a>h</a><a>iii</a>"}
	for _, s := range valid {
		if !Match(e, s) {
			t.Fatalf("did not match %q", s)
		}
	}
	invalid := []string{"<a>", "<a>x</a>", "<a><a>hi</a></a>", "hi"}
	for _, s := range invalid {
		if Match(e, s) {
			t.Fatalf("matched %q", s)
		}
	}
}

func TestConcatFlattening(t *testing.T) {
	e := Concat(Literal("a"), Concat(Literal("b"), Literal("c")), Epsilon())
	lit, ok := e.(*Lit)
	if !ok || lit.S != "abc" {
		t.Fatalf("Concat did not merge literals: %s", String(e))
	}
}

func TestUnionFlattening(t *testing.T) {
	e := Union(Literal("a"), Union(Literal("b"), Literal("c")))
	alt, ok := e.(*Alt)
	if !ok || len(alt.Kids) != 3 {
		t.Fatalf("Union did not flatten: %s", String(e))
	}
}

func TestNullable(t *testing.T) {
	cases := []struct {
		e    Expr
		want bool
	}{
		{Epsilon(), true},
		{Literal("a"), false},
		{Rep(Literal("a")), true},
		{Concat(Rep(Literal("a")), Literal("b")), false},
		{Concat(Rep(Literal("a")), Rep(Literal("b"))), true},
		{Union(Literal("a"), Epsilon()), true},
		{OneOf(bytesets.OfString("x")), false},
	}
	for _, c := range cases {
		if got := Nullable(c.e); got != c.want {
			t.Errorf("Nullable(%s) = %v, want %v", String(c.e), got, c.want)
		}
	}
}

func TestMinLen(t *testing.T) {
	e := Union(Concat(Literal("ab"), Rep(Literal("c"))), Literal("wxyz"))
	n, ok := MinLen(e)
	if !ok || n != 2 {
		t.Fatalf("MinLen = %d,%v want 2,true", n, ok)
	}
	if _, ok := MinLen(Union()); ok {
		t.Fatal("MinLen(∅) reported non-empty")
	}
}

func TestString(t *testing.T) {
	e := Rep(Concat(Literal("<a>"), Rep(Union(Literal("h"), Literal("i"))), Literal("</a>")))
	got := String(e)
	want := "(<a>(h + i)*</a>)*"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestStringEscapes(t *testing.T) {
	got := String(Literal("a+b*c\n"))
	if !strings.Contains(got, `\+`) || !strings.Contains(got, `\*`) || !strings.Contains(got, `\n`) {
		t.Fatalf("String escaping wrong: %q", got)
	}
}

// Property: every sampled string matches its source expression.
func TestSampleMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		e := randomExpr(rng, 4)
		if Empty(e) {
			continue
		}
		m := Compile(e)
		for k := 0; k < 10; k++ {
			s := Sample(e, rng, 0.4)
			if !m.Match(s) {
				t.Fatalf("sample %q does not match %s", s, String(e))
			}
		}
	}
}

// Property: a string of length < MinLen never matches.
func TestMinLenIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		e := randomExpr(rng, 4)
		n, ok := MinLen(e)
		if !ok {
			continue
		}
		m := Compile(e)
		for l := 0; l < n; l++ {
			s := strings.Repeat("a", l)
			if m.Match(s) {
				t.Fatalf("matched %q shorter than MinLen=%d for %s", s, n, String(e))
			}
		}
		_ = m
	}
}

// randomExpr generates a random expression over {a,b,c} with bounded depth.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 {
		switch rng.Intn(3) {
		case 0:
			return Epsilon()
		case 1:
			return Literal(string(rune('a' + rng.Intn(3))))
		default:
			return OneOf(bytesets.OfString("ab"))
		}
	}
	switch rng.Intn(5) {
	case 0:
		return Literal(randLit(rng))
	case 1:
		return Concat(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 2:
		return Union(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 3:
		return Rep(randomExpr(rng, depth-1))
	default:
		return OneOf(bytesets.OfString(randLit(rng)))
	}
}

func randLit(rng *rand.Rand) string {
	n := rng.Intn(3) + 1
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(3))
	}
	return string(b)
}

// Property: Nullable(e) agrees with Match(e, "").
func TestNullableAgreesWithMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 500; iter++ {
		e := randomExpr(rng, 4)
		if Nullable(e) != Match(e, "") {
			t.Fatalf("Nullable disagreement on %s", String(e))
		}
	}
}

func BenchmarkMatchStar(b *testing.B) {
	e := Rep(Concat(Literal("<a>"), Rep(Union(Literal("h"), Literal("i"))), Literal("</a>")))
	m := Compile(e)
	input := strings.Repeat("<a>hihihihi</a>", 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Match(input) {
			b.Fatal("no match")
		}
	}
}
