// Package rex implements the regular-expression ASTs used by the GLADE
// learner and the evaluation targets.
//
// Expressions are trees of literals, byte classes, concatenations,
// alternations, and Kleene stars — exactly the operator vocabulary of the
// paper's meta-grammar Cregex (§4.1). The package provides linear-time
// matching via Thompson NFA simulation, uniform random sampling, and
// printing. It deliberately does not depend on the standard regexp package:
// the learner needs byte-exact semantics with no Unicode or syntax layer.
package rex

import (
	"math/rand"
	"strings"

	"glade/internal/bytesets"
)

// Expr is a regular expression over bytes.
//
// The concrete types are *Lit, *Class, *Seq, *Alt, and *Star. The empty
// string is Epsilon() (an empty *Lit); the empty language is represented by
// an empty *Alt.
type Expr interface {
	// MinString returns some shortest member of the language, and false if
	// the language is empty.
	minLen() (int, bool)
	isExpr()
}

// Lit matches exactly the literal byte string S.
type Lit struct{ S string }

// Class matches any single byte in Set. An empty Set matches nothing.
type Class struct{ Set bytesets.Set }

// Seq matches the concatenation of its children. An empty Seq matches the
// empty string.
type Seq struct{ Kids []Expr }

// Alt matches any of its children. An empty Alt matches nothing (the empty
// language ∅).
type Alt struct{ Kids []Expr }

// Star matches zero or more repetitions of Kid.
type Star struct{ Kid Expr }

func (*Lit) isExpr()   {}
func (*Class) isExpr() {}
func (*Seq) isExpr()   {}
func (*Alt) isExpr()   {}
func (*Star) isExpr()  {}

// Epsilon returns an expression matching exactly the empty string.
func Epsilon() Expr { return &Lit{} }

// Literal returns an expression matching exactly s.
func Literal(s string) Expr { return &Lit{S: s} }

// OneOf returns an expression matching any byte of set.
func OneOf(set bytesets.Set) Expr { return &Class{Set: set} }

// Concat returns the concatenation of the given expressions, flattening
// nested sequences and merging adjacent literals.
func Concat(es ...Expr) Expr {
	var kids []Expr
	var push func(Expr)
	push = func(e Expr) {
		switch e := e.(type) {
		case *Seq:
			for _, k := range e.Kids {
				push(k)
			}
		case *Lit:
			if e.S == "" {
				return
			}
			if len(kids) > 0 {
				if last, ok := kids[len(kids)-1].(*Lit); ok {
					kids[len(kids)-1] = &Lit{S: last.S + e.S}
					return
				}
			}
			kids = append(kids, e)
		default:
			kids = append(kids, e)
		}
	}
	for _, e := range es {
		push(e)
	}
	switch len(kids) {
	case 0:
		return Epsilon()
	case 1:
		return kids[0]
	}
	return &Seq{Kids: kids}
}

// Union returns the alternation of the given expressions, flattening nested
// alternations.
func Union(es ...Expr) Expr {
	var kids []Expr
	for _, e := range es {
		if a, ok := e.(*Alt); ok {
			kids = append(kids, a.Kids...)
		} else {
			kids = append(kids, e)
		}
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return &Alt{Kids: kids}
}

// Rep returns the Kleene closure of e.
func Rep(e Expr) Expr { return &Star{Kid: e} }

func (e *Lit) minLen() (int, bool) { return len(e.S), true }

func (e *Class) minLen() (int, bool) {
	if e.Set.IsEmpty() {
		return 0, false
	}
	return 1, true
}

func (e *Seq) minLen() (int, bool) {
	total := 0
	for _, k := range e.Kids {
		n, ok := k.minLen()
		if !ok {
			return 0, false
		}
		total += n
	}
	return total, true
}

func (e *Alt) minLen() (int, bool) {
	best, found := 0, false
	for _, k := range e.Kids {
		n, ok := k.minLen()
		if ok && (!found || n < best) {
			best, found = n, true
		}
	}
	return best, found
}

func (e *Star) minLen() (int, bool) { return 0, true }

// MinLen returns the length of a shortest string in L(e), and false if the
// language is empty.
func MinLen(e Expr) (int, bool) { return e.minLen() }

// Empty reports whether L(e) = ∅.
func Empty(e Expr) bool {
	_, ok := e.minLen()
	return !ok
}

// Nullable reports whether ε ∈ L(e).
func Nullable(e Expr) bool {
	switch e := e.(type) {
	case *Lit:
		return e.S == ""
	case *Class:
		return false
	case *Seq:
		for _, k := range e.Kids {
			if !Nullable(k) {
				return false
			}
		}
		return true
	case *Alt:
		for _, k := range e.Kids {
			if Nullable(k) {
				return true
			}
		}
		return false
	case *Star:
		return true
	}
	panic("rex: unknown Expr")
}

// String renders the expression with the paper's notation: + for
// alternation, * for repetition, parentheses for grouping.
func String(e Expr) string {
	var b strings.Builder
	write(&b, e, 0)
	return b.String()
}

// precedence levels: 0 = alternation, 1 = concatenation, 2 = atom/star.
func write(b *strings.Builder, e Expr, prec int) {
	switch e := e.(type) {
	case *Lit:
		if e.S == "" {
			b.WriteString("ε")
			return
		}
		b.WriteString(escapeLit(e.S))
	case *Class:
		b.WriteString(e.Set.String())
	case *Seq:
		if prec > 1 {
			b.WriteByte('(')
		}
		for _, k := range e.Kids {
			write(b, k, 2)
		}
		if prec > 1 {
			b.WriteByte(')')
		}
	case *Alt:
		if len(e.Kids) == 0 {
			b.WriteString("∅")
			return
		}
		if prec > 0 {
			b.WriteByte('(')
		}
		for i, k := range e.Kids {
			if i > 0 {
				b.WriteString(" + ")
			}
			write(b, k, 1)
		}
		if prec > 0 {
			b.WriteByte(')')
		}
	case *Star:
		write(b, e.Kid, 2)
		b.WriteByte('*')
	default:
		panic("rex: unknown Expr")
	}
}

func escapeLit(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\n':
			b.WriteString(`\n`)
		case c == '\t':
			b.WriteString(`\t`)
		case c == '\r':
			b.WriteString(`\r`)
		case strings.IndexByte(`+*()[]\`, c) >= 0:
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 32 || c > 126:
			const hex = "0123456789abcdef"
			b.WriteString(`\x`)
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&15])
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Sample draws a random string from L(e) using rng. Alternation branches
// are chosen uniformly; each star iterates with probability continueP
// (0 < continueP < 1). Sample panics if L(e) is empty.
func Sample(e Expr, rng *rand.Rand, continueP float64) string {
	var b strings.Builder
	sample(&b, e, rng, continueP)
	return b.String()
}

func sample(b *strings.Builder, e Expr, rng *rand.Rand, p float64) {
	switch e := e.(type) {
	case *Lit:
		b.WriteString(e.S)
	case *Class:
		n := e.Set.Len()
		if n == 0 {
			panic("rex: Sample from empty class")
		}
		b.WriteByte(e.Set.Pick(rng.Intn(n)))
	case *Seq:
		for _, k := range e.Kids {
			sample(b, k, rng, p)
		}
	case *Alt:
		var nonEmpty []Expr
		for _, k := range e.Kids {
			if !Empty(k) {
				nonEmpty = append(nonEmpty, k)
			}
		}
		if len(nonEmpty) == 0 {
			panic("rex: Sample from empty alternation")
		}
		sample(b, nonEmpty[rng.Intn(len(nonEmpty))], rng, p)
	case *Star:
		if Empty(e.Kid) {
			return
		}
		for rng.Float64() < p {
			sample(b, e.Kid, rng, p)
		}
	default:
		panic("rex: unknown Expr")
	}
}
