package rex

import "glade/internal/bytesets"

// Matcher is a compiled regular expression supporting linear-time matching
// via Thompson NFA simulation.
type Matcher struct {
	states []nstate
	start  int
	accept int
}

// nstate is one NFA state. Exactly one of the transition kinds is used:
// byte-class edge (set, to) or up to two epsilon edges (eps).
type nstate struct {
	set  bytesets.Set
	to   int
	eps  [2]int
	neps int
	kind int8 // 0 = epsilon node, 1 = class edge
}

// Compile builds a Matcher for e using Thompson's construction.
func Compile(e Expr) *Matcher {
	m := &Matcher{}
	m.accept = m.newEps()
	m.start = m.compile(e, m.accept)
	return m
}

func (m *Matcher) newEps() int {
	m.states = append(m.states, nstate{kind: 0})
	return len(m.states) - 1
}

func (m *Matcher) newClass(set bytesets.Set, to int) int {
	m.states = append(m.states, nstate{kind: 1, set: set, to: to})
	return len(m.states) - 1
}

func (m *Matcher) addEps(from, to int) {
	st := &m.states[from]
	if st.neps >= 2 {
		panic("rex: epsilon fan-out exceeded")
	}
	st.eps[st.neps] = to
	st.neps++
}

// compile returns the entry state of a fragment matching e and continuing
// to state next.
func (m *Matcher) compile(e Expr, next int) int {
	switch e := e.(type) {
	case *Lit:
		entry := next
		for i := len(e.S) - 1; i >= 0; i-- {
			entry = m.newClass(bytesets.Of(e.S[i]), entry)
		}
		return entry
	case *Class:
		return m.newClass(e.Set, next)
	case *Seq:
		entry := next
		for i := len(e.Kids) - 1; i >= 0; i-- {
			entry = m.compile(e.Kids[i], entry)
		}
		return entry
	case *Alt:
		if len(e.Kids) == 0 {
			return m.newEps() // dead state: no outgoing edges
		}
		// Build a binary tree of 2-way epsilon splits.
		entries := make([]int, len(e.Kids))
		for i, k := range e.Kids {
			entries[i] = m.compile(k, next)
		}
		for len(entries) > 1 {
			var merged []int
			for i := 0; i < len(entries); i += 2 {
				if i+1 == len(entries) {
					merged = append(merged, entries[i])
					continue
				}
				split := m.newEps()
				m.addEps(split, entries[i])
				m.addEps(split, entries[i+1])
				merged = append(merged, split)
			}
			entries = merged
		}
		return entries[0]
	case *Star:
		loop := m.newEps()
		body := m.compile(e.Kid, loop)
		m.addEps(loop, body)
		m.addEps(loop, next)
		return loop
	default:
		panic("rex: unknown Expr")
	}
}

// Match reports whether input ∈ L(e) for the compiled expression.
func (m *Matcher) Match(input string) bool {
	cur := make([]bool, len(m.states))
	next := make([]bool, len(m.states))
	var stack []int
	addState := func(mark []bool, s int) {
		if mark[s] {
			return
		}
		mark[s] = true
		stack = append(stack, s)
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			st := &m.states[q]
			if st.kind == 0 {
				for i := 0; i < st.neps; i++ {
					if !mark[st.eps[i]] {
						mark[st.eps[i]] = true
						stack = append(stack, st.eps[i])
					}
				}
			}
		}
	}
	addState(cur, m.start)
	for i := 0; i < len(input); i++ {
		c := input[i]
		any := false
		for s := range next {
			next[s] = false
		}
		for s, on := range cur {
			if !on {
				continue
			}
			st := &m.states[s]
			if st.kind == 1 && st.set.Has(c) {
				addState(next, st.to)
				any = true
			}
		}
		cur, next = next, cur
		if !any {
			return false
		}
	}
	return cur[m.accept]
}

// Match is a convenience that compiles e and matches input once. For
// repeated matching against the same expression, use Compile.
func Match(e Expr, input string) bool { return Compile(e).Match(input) }
