package targets

import (
	"glade/internal/bytesets"
	"glade/internal/cfg"
	"glade/internal/oracle"
)

// grepPlainCh is the set of ordinary (self-matching) characters: printable
// ASCII except the BRE metacharacters. grepClassCh is the set of characters
// allowed inside a bracket expression (everything printable except the
// closing bracket), matching GNU grep's treatment of [, ., * and ^ as
// literals inside a class.
func grepPlainCh() bytesets.Set {
	return bytesets.Printable().Diff(bytesets.OfString(`.[]*\^$`))
}

func grepClassCh() bytesets.Set {
	return bytesets.Printable().Diff(bytesets.OfString(`]`))
}

// Grep models the regular-expression input language of GNU Grep (basic
// regular expressions, the paper's simplified form A → ([...] + \(A\))*):
//
//	re     := concat ("\|" concat)*
//	concat := (atom "*"*)*
//	atom   := plain | "." | "[" cchar+ "]" | "\(" re "\)"
func Grep() *Target {
	g := cfg.New()
	re := g.AddNT("RE")
	concat := g.AddNT("Concat")
	item := g.AddNT("Item")
	stars := g.AddNT("Stars")
	atom := g.AddNT("Atom")
	cchars := g.AddNT("ClassChars")

	g.Add(re, cfg.N(concat))
	g.Add(re, cfg.N(concat), cfg.TByte('\\'), cfg.TByte('|'), cfg.N(re))
	g.Add(concat)
	g.Add(concat, cfg.N(item), cfg.N(concat))
	g.Add(item, cfg.N(atom), cfg.N(stars))
	g.Add(stars)
	g.Add(stars, cfg.TByte('*'), cfg.N(stars))
	g.Add(atom, cfg.T(grepPlainCh()))
	g.Add(atom, cfg.TByte('.'))
	g.Add(atom, cfg.TByte('['), cfg.T(grepClassCh()), cfg.N(cchars), cfg.TByte(']'))
	g.Add(atom, cfg.Cat(cfg.Str(`\(`), cfg.One(cfg.N(re)), cfg.Str(`\)`))...)
	g.Add(cchars)
	g.Add(cchars, cfg.T(grepClassCh()), cfg.N(cchars))

	return &Target{
		Name:    "grep",
		Grammar: g,
		Oracle:  oracle.Func(grepValid),
		SeedGen: grepSeed,
		DocSeeds: []string{
			`abc`,
			`a*b\|c`,
			`\(ab\)*[a-z]x`,
			`[^0-9]*\(a\|b\)`,
		},
	}
}

// grepValid is a recursive-descent recognizer for exactly the grammar
// above.
func grepValid(s string) bool {
	p := &grepParser{s: s}
	if !p.alt(0) {
		return false
	}
	return p.i == len(s)
}

type grepParser struct {
	s string
	i int
}

func (p *grepParser) peek() (byte, bool) {
	if p.i < len(p.s) {
		return p.s[p.i], true
	}
	return 0, false
}

// alt parses concat ("\|" concat)*.
func (p *grepParser) alt(depth int) bool {
	if !p.concat(depth) {
		return false
	}
	for {
		if p.i+1 < len(p.s) && p.s[p.i] == '\\' && p.s[p.i+1] == '|' {
			p.i += 2
			if !p.concat(depth) {
				return false
			}
			continue
		}
		return true
	}
}

// concat parses (atom "*"*)* — it stops (successfully) at "\|", "\)", or
// end of input; a '*' with no preceding atom is an error.
func (p *grepParser) concat(depth int) bool {
	for {
		c, ok := p.peek()
		if !ok {
			return true
		}
		switch {
		case c == '*' || c == ']' || c == '^' || c == '$':
			return false // not ordinary at this position in our grammar
		case c == '\\':
			if p.i+1 >= len(p.s) {
				return false
			}
			switch p.s[p.i+1] {
			case '|', ')':
				return true // belongs to the caller
			case '(':
				p.i += 2
				if !p.alt(depth + 1) {
					return false
				}
				if !(p.i+1 < len(p.s) && p.s[p.i] == '\\' && p.s[p.i+1] == ')') {
					return false
				}
				p.i += 2
			default:
				return false // unsupported escape
			}
		case c == '[':
			if !p.class() {
				return false
			}
		case c == '.' || isGrepPlain(c):
			p.i++
		default:
			return false
		}
		for {
			c, ok := p.peek()
			if !ok || c != '*' {
				break
			}
			p.i++
		}
	}
}

func (p *grepParser) class() bool {
	p.i++ // consume '['
	n := 0
	for {
		c, ok := p.peek()
		if !ok {
			return false
		}
		if c == ']' {
			p.i++
			return n >= 1
		}
		if !isGrepClassChar(c) {
			return false
		}
		p.i++
		n++
	}
}

func isGrepPlain(c byte) bool {
	if c < 32 || c > 126 {
		return false
	}
	switch c {
	case '.', '[', ']', '*', '\\', '^', '$':
		return false
	}
	return true
}

func isGrepClassChar(c byte) bool {
	return c >= 32 && c <= 126 && c != ']'
}
