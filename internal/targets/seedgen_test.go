package targets

import (
	"math/rand"
	"testing"

	"glade/internal/cfg"
)

// TestSeedGenProducesValidInputs: every generated realistic seed must be in
// the target language under both definitions.
func TestSeedGenProducesValidInputs(t *testing.T) {
	for _, tgt := range All() {
		if tgt.SeedGen == nil {
			t.Fatalf("%s: no SeedGen", tgt.Name)
		}
		p := cfg.NewParser(tgt.Grammar)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 300; i++ {
			s := tgt.SeedGen(rng)
			if !tgt.Oracle.Accepts(s) {
				t.Fatalf("%s: oracle rejects generated seed %q", tgt.Name, s)
			}
			if !p.Accepts(s) {
				t.Fatalf("%s: grammar rejects generated seed %q", tgt.Name, s)
			}
		}
	}
}

func TestEvalSamplerValid(t *testing.T) {
	for _, tgt := range All() {
		es := tgt.EvalSampler()
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < 100; i++ {
			s := es(rng)
			if !tgt.Oracle.Accepts(s) {
				t.Fatalf("%s: invalid eval sample %q", tgt.Name, s)
			}
		}
	}
}
