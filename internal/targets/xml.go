package targets

import (
	"strings"

	"glade/internal/bytesets"
	"glade/internal/cfg"
	"glade/internal/oracle"
)

// XML models the XML target of §8.2: all major XML constructs — attributes,
// comments, CDATA sections, processing instructions, nested elements — with
// a fixed tag name so the language stays context-free (as the paper does):
//
//	doc     := elem
//	elem    := "<a" attrs sp ">" content "</a>" | "<a" attrs sp "/>"
//	attrs   := (sp1 name "=" '"' val '"')*
//	content := (textch | elem | comment | cdata | pi)*
//	comment := "<!--" cch* "-->"       cdata := "<![CDATA[" cch* "]]>"
//	pi      := "<?" name " " cch* "?>"
//	name    := [a-z]+   val := [a-z0-9 ]*   textch := [a-z0-9 \n]   cch := [a-z0-9 ]
func XML() *Target {
	g := cfg.New()
	doc := g.AddNT("Doc")
	elem := g.AddNT("Elem")
	attrs := g.AddNT("Attrs")
	attr := g.AddNT("Attr")
	name := g.AddNT("Name")
	val := g.AddNT("Val")
	sp := g.AddNT("SP")
	sp1 := g.AddNT("SP1")
	content := g.AddNT("Content")
	comment := g.AddNT("Comment")
	cdata := g.AddNT("CData")
	pi := g.AddNT("PI")
	cch := g.AddNT("PlainChars")

	nameCh := bytesets.Range('a', 'z')
	valCh := bytesets.Printable().Diff(bytesets.OfString(`"<&`))
	textCh := bytesets.Printable().Diff(bytesets.OfString(`<>&`)).Union(bytesets.Of('\n'))
	plainCh := bytesets.Printable().Diff(bytesets.OfString(`-]?`))

	g.Add(doc, cfg.N(elem))
	g.Add(elem, cfg.Cat(cfg.Str("<a"), cfg.One(cfg.N(attrs)), cfg.One(cfg.N(sp)), cfg.Str(">"),
		cfg.One(cfg.N(content)), cfg.Str("</a>"))...)
	g.Add(elem, cfg.Cat(cfg.Str("<a"), cfg.One(cfg.N(attrs)), cfg.One(cfg.N(sp)), cfg.Str("/>"))...)
	g.Add(attrs)
	g.Add(attrs, cfg.N(sp1), cfg.N(attr), cfg.N(attrs))
	g.Add(attr, cfg.Cat(cfg.One(cfg.N(name)), cfg.Str(`="`), cfg.One(cfg.N(val)), cfg.Str(`"`))...)
	g.Add(name, cfg.T(nameCh))
	g.Add(name, cfg.T(nameCh), cfg.N(name))
	g.Add(val)
	g.Add(val, cfg.T(valCh), cfg.N(val))
	g.Add(sp)
	g.Add(sp, cfg.TByte(' '), cfg.N(sp))
	g.Add(sp1, cfg.TByte(' '), cfg.N(sp))
	g.Add(content)
	g.Add(content, cfg.T(textCh), cfg.N(content))
	g.Add(content, cfg.N(elem), cfg.N(content))
	g.Add(content, cfg.N(comment), cfg.N(content))
	g.Add(content, cfg.N(cdata), cfg.N(content))
	g.Add(content, cfg.N(pi), cfg.N(content))
	g.Add(comment, cfg.Cat(cfg.Str("<!--"), cfg.One(cfg.N(cch)), cfg.Str("-->"))...)
	g.Add(cdata, cfg.Cat(cfg.Str("<![CDATA["), cfg.One(cfg.N(cch)), cfg.Str("]]>"))...)
	g.Add(pi, cfg.Cat(cfg.Str("<?"), cfg.One(cfg.N(name)), cfg.Str(" "), cfg.One(cfg.N(cch)), cfg.Str("?>"))...)
	g.Add(cch)
	g.Add(cch, cfg.T(plainCh), cfg.N(cch))

	return &Target{
		Name:    "xml",
		Grammar: g,
		Oracle:  oracle.Func(xmlValid),
		SeedGen: xmlSeed,
		DocSeeds: []string{
			"<a>hi</a>",
			`<a id="x1" class="note">text <a/> more</a>`,
			"<a><!-- remark --><![CDATA[raw data]]><?proc do it?></a>",
		},
	}
}

func xmlValid(s string) bool {
	p := &xmlTargetParser{s: s}
	if !p.elem() {
		return false
	}
	return p.i == len(s)
}

type xmlTargetParser struct {
	s string
	i int
}

func (p *xmlTargetParser) has(prefix string) bool {
	return strings.HasPrefix(p.s[p.i:], prefix)
}

func (p *xmlTargetParser) lit(prefix string) bool {
	if p.has(prefix) {
		p.i += len(prefix)
		return true
	}
	return false
}

func (p *xmlTargetParser) elem() bool {
	if !p.lit("<a") {
		return false
	}
	// Attributes: runs of " name="val"" separated by at least one space.
	for {
		spaces := 0
		for p.i < len(p.s) && p.s[p.i] == ' ' {
			p.i++
			spaces++
		}
		if p.lit("/>") {
			return true
		}
		if p.lit(">") {
			return p.content()
		}
		if spaces == 0 {
			return false
		}
		if !p.attr() {
			return false
		}
	}
}

func (p *xmlTargetParser) attr() bool {
	n := 0
	for p.i < len(p.s) && p.s[p.i] >= 'a' && p.s[p.i] <= 'z' {
		p.i++
		n++
	}
	if n == 0 || !p.lit(`="`) {
		return false
	}
	for p.i < len(p.s) && isXMLValChar(p.s[p.i]) {
		p.i++
	}
	return p.lit(`"`)
}

func (p *xmlTargetParser) content() bool {
	for {
		if p.i >= len(p.s) {
			return false // missing close tag
		}
		c := p.s[p.i]
		switch {
		case p.has("</a>"):
			p.i += 4
			return true
		case p.has("<!--"):
			p.i += 4
			if !p.scanPlainUntil("-->") {
				return false
			}
		case p.has("<![CDATA["):
			p.i += 9
			if !p.scanPlainUntil("]]>") {
				return false
			}
		case p.has("<?"):
			p.i += 2
			n := 0
			for p.i < len(p.s) && p.s[p.i] >= 'a' && p.s[p.i] <= 'z' {
				p.i++
				n++
			}
			if n == 0 || !p.lit(" ") {
				return false
			}
			if !p.scanPlainUntil("?>") {
				return false
			}
		case c == '<':
			if !p.elem() {
				return false
			}
		case isXMLTextChar(c):
			p.i++
		default:
			return false
		}
	}
}

// scanPlainUntil consumes plain chars then the terminator.
func (p *xmlTargetParser) scanPlainUntil(term string) bool {
	for {
		if p.lit(term) {
			return true
		}
		if p.i >= len(p.s) || !isXMLPlainChar(p.s[p.i]) {
			return false
		}
		p.i++
	}
}

func isXMLValChar(c byte) bool {
	return c >= 32 && c <= 126 && c != '"' && c != '<' && c != '&'
}

func isXMLTextChar(c byte) bool {
	return c == '\n' || c >= 32 && c <= 126 && c != '<' && c != '>' && c != '&'
}

func isXMLPlainChar(c byte) bool {
	return c >= 32 && c <= 126 && c != '-' && c != ']' && c != '?'
}
