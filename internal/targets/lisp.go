package targets

import (
	"glade/internal/bytesets"
	"glade/internal/cfg"
	"glade/internal/oracle"
)

// Lisp models the simple Lisp parser of the paper's evaluation (based on
// Norvig's lispy), including quoted strings, quote sugar, and comments:
//
//	sexp   := "(" ws sym more ")"
//	more   := ws | ws item more
//	item   := sym | string | "'" item | sexp
//	sym    := [a-z0-9+*/<>=?!-]+
//	string := '"' [a-z0-9 ()]* '"'
//	ws     := (" " | "\n" | ";" [a-z0-9 ]* "\n")*
//
// Adjacent symbols without separating whitespace read as one symbol, so the
// grammar's optional separators do not change the language.
func Lisp() *Target {
	g := cfg.New()
	s := g.AddNT("Program")
	sexp := g.AddNT("Sexp")
	more := g.AddNT("More")
	item := g.AddNT("Item")
	sym := g.AddNT("Sym")
	str := g.AddNT("String")
	schars := g.AddNT("StringChars")
	ws := g.AddNT("WS")
	spc := g.AddNT("Space")
	cchars := g.AddNT("CommentChars")

	symCh := lispSymSet()
	strCh := bytesets.Printable().Diff(bytesets.OfString(`"\`))
	comCh := bytesets.Printable()

	g.Add(s, cfg.N(sexp))
	g.Add(sexp, cfg.TByte('('), cfg.N(ws), cfg.N(sym), cfg.N(more), cfg.TByte(')'))
	g.Add(more, cfg.N(ws))
	g.Add(more, cfg.N(ws), cfg.N(item), cfg.N(more))
	g.Add(item, cfg.N(sym))
	g.Add(item, cfg.N(str))
	g.Add(item, cfg.TByte('\''), cfg.N(item))
	g.Add(item, cfg.N(sexp))
	g.Add(sym, cfg.T(symCh))
	g.Add(sym, cfg.T(symCh), cfg.N(sym))
	g.Add(str, cfg.TByte('"'), cfg.N(schars), cfg.TByte('"'))
	g.Add(schars)
	g.Add(schars, cfg.T(strCh), cfg.N(schars))
	g.Add(ws)
	g.Add(ws, cfg.N(spc), cfg.N(ws))
	g.Add(spc, cfg.TByte(' '))
	g.Add(spc, cfg.TByte('\n'))
	g.Add(spc, cfg.TByte(';'), cfg.N(cchars), cfg.TByte('\n'))
	g.Add(cchars)
	g.Add(cchars, cfg.T(comCh), cfg.N(cchars))

	return &Target{
		Name:    "lisp",
		Grammar: g,
		Oracle:  oracle.Func(lispValid),
		SeedGen: lispSeed,
		DocSeeds: []string{
			"(define x 10)",
			"(+ 1 (* 2 3))",
			"(print \"hello (world)\" 'sym)",
			"(begin ; a comment\n (f x))",
		},
	}
}

func lispSymSet() bytesets.Set {
	return bytesets.Range('a', 'z').
		Union(bytesets.Range('0', '9')).
		Union(bytesets.OfString("+*/<>=?!-"))
}

func lispValid(s string) bool {
	p := &lispParser{s: s}
	if !p.sexp() {
		return false
	}
	return p.i == len(s)
}

type lispParser struct {
	s string
	i int
}

func (p *lispParser) eat(c byte) bool {
	if p.i < len(p.s) && p.s[p.i] == c {
		p.i++
		return true
	}
	return false
}

// skipWS consumes spaces, newlines, and ;-to-newline comments. It returns
// false on a malformed comment (missing closing newline or bad byte).
func (p *lispParser) skipWS() bool {
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case ' ', '\n':
			p.i++
		case ';':
			p.i++
			for p.i < len(p.s) && isLispCommentChar(p.s[p.i]) {
				p.i++
			}
			if p.i >= len(p.s) || p.s[p.i] != '\n' {
				return false
			}
			p.i++
		default:
			return true
		}
	}
	return true
}

func (p *lispParser) sexp() bool {
	if !p.eat('(') {
		return false
	}
	if !p.skipWS() {
		return false
	}
	if !p.sym() {
		return false
	}
	for {
		if !p.skipWS() {
			return false
		}
		if p.eat(')') {
			return true
		}
		if p.i >= len(p.s) {
			return false
		}
		if !p.item() {
			return false
		}
	}
}

func (p *lispParser) item() bool {
	if p.i >= len(p.s) {
		return false
	}
	switch c := p.s[p.i]; {
	case c == '(':
		return p.sexp()
	case c == '"':
		return p.str()
	case c == '\'':
		p.i++
		return p.item()
	case isLispSymChar(c):
		return p.sym()
	default:
		return false
	}
}

func (p *lispParser) sym() bool {
	n := 0
	for p.i < len(p.s) && isLispSymChar(p.s[p.i]) {
		p.i++
		n++
	}
	return n >= 1
}

func (p *lispParser) str() bool {
	p.i++ // opening quote
	for p.i < len(p.s) && isLispStrChar(p.s[p.i]) {
		p.i++
	}
	return p.eat('"')
}

func isLispSymChar(c byte) bool {
	if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
		return true
	}
	switch c {
	case '+', '*', '/', '<', '>', '=', '?', '!', '-':
		return true
	}
	return false
}

func isLispStrChar(c byte) bool {
	return c >= 32 && c <= 126 && c != '"' && c != '\\'
}

func isLispCommentChar(c byte) bool {
	return c >= 32 && c <= 126
}
