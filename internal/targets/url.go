package targets

import (
	"strings"

	"glade/internal/bytesets"
	"glade/internal/cfg"
	"glade/internal/oracle"
)

// urlHostCh and urlPathCh are the character classes of the Stack Overflow
// URL regex the paper evaluates against [55], restricted to lowercase ASCII:
//
//	https?://(www\.)?[-a-z0-9@:%._+~#=]{1,256}\.[a-z]{2,6}([-a-z0-9@:%_+.~#?&/=]*)
func urlHostCh() bytesets.Set {
	return bytesets.Range('a', 'z').Union(bytesets.Range('0', '9')).
		Union(bytesets.OfString("-@:%._+~#="))
}

func urlPathCh() bytesets.Set {
	return bytesets.Range('a', 'z').Union(bytesets.Range('0', '9')).
		Union(bytesets.OfString("-@:%_+.~#?&/="))
}

// URL models the paper's URL target. As in the regex, membership asks for
// the existence of a split: a scheme, an optional "www.", a non-empty
// liberal host part, a dot, a 2-6 letter TLD, and a liberal tail.
func URL() *Target {
	g := cfg.New()
	s := g.AddNT("URL")
	scheme := g.AddNT("Scheme")
	optWWW := g.AddNT("OptWWW")
	host := g.AddNT("Host")
	tld := g.AddNT("TLD")
	tail := g.AddNT("Tail")

	g.Add(s, cfg.Cat(cfg.One(cfg.N(scheme)), cfg.Str("://"), cfg.One(cfg.N(optWWW)),
		cfg.One(cfg.N(host)), cfg.Str("."), cfg.One(cfg.N(tld)), cfg.One(cfg.N(tail)))...)
	g.AddString(scheme, "http")
	g.AddString(scheme, "https")
	g.AddString(scheme, "ftp")
	g.Add(optWWW)
	g.AddString(optWWW, "www.")
	g.Add(host, cfg.T(urlHostCh()))
	g.Add(host, cfg.T(urlHostCh()), cfg.N(host))
	for n := 2; n <= 6; n++ {
		syms := make([]cfg.Sym, n)
		for i := range syms {
			syms[i] = cfg.T(bytesets.Range('a', 'z'))
		}
		g.Add(tld, syms...)
	}
	g.Add(tail)
	g.Add(tail, cfg.T(urlPathCh()), cfg.N(tail))

	return &Target{
		Name:    "url",
		Grammar: g,
		Oracle:  oracle.Func(urlValid),
		SeedGen: urlSeed,
		DocSeeds: []string{
			"http://example.com",
			"https://www.example.org/a/b?x=1&y=2",
			"ftp://files.example-site.net/pub/file.txt",
		},
	}
}

// urlValid recognizes exactly the grammar's language: some dot splits the
// string into scheme://(www.)? host ".", a 2-6 letter TLD, and a tail of
// path characters.
func urlValid(s string) bool {
	rest, ok := cutScheme(s)
	if !ok {
		return false
	}
	if after, found := strings.CutPrefix(rest, "www."); found && urlMatchBody(after) {
		return true
	}
	return urlMatchBody(rest)
}

// urlMatchBody checks host "." tld tail for some dot position.
func urlMatchBody(s string) bool {
	// Host chars are a subset of path chars except '?', '&', '/' — so scan
	// dots left to right; host validity is prefix-monotone.
	for dot := 1; dot < len(s); dot++ {
		if s[dot] != '.' {
			continue
		}
		if !allIn(s[:dot], isURLHostChar) {
			break // host prefix invalid; longer prefixes stay invalid
		}
		// TLD: 2-6 lowercase letters.
		for tldLen := 2; tldLen <= 6 && dot+1+tldLen <= len(s); tldLen++ {
			tld := s[dot+1 : dot+1+tldLen]
			if !allIn(tld, isTLDChar) {
				break
			}
			if allIn(s[dot+1+tldLen:], isURLPathChar) {
				return true
			}
		}
	}
	return false
}

func allIn(s string, pred func(byte) bool) bool {
	for i := 0; i < len(s); i++ {
		if !pred(s[i]) {
			return false
		}
	}
	return true
}

func cutScheme(s string) (string, bool) {
	for _, sch := range []string{"https://", "http://", "ftp://"} {
		if strings.HasPrefix(s, sch) {
			return s[len(sch):], true
		}
	}
	return "", false
}

func isTLDChar(c byte) bool { return c >= 'a' && c <= 'z' }

func isURLHostChar(c byte) bool {
	if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
		return true
	}
	switch c {
	case '-', '@', ':', '%', '.', '_', '+', '~', '#', '=':
		return true
	}
	return false
}

func isURLPathChar(c byte) bool {
	return isURLHostChar(c) || c == '?' || c == '&' || c == '/'
}
