// Package targets defines the four hand-written evaluation languages of
// §8.2 — URL, Grep regular expressions, Lisp, and XML — each as a pair of
// (a) a context-free grammar used to sample seed inputs and to measure
// recall, and (b) a fast hand-written parser used as the membership oracle,
// playing the role of the program under learning.
//
// The two representations are kept in exact agreement; the package tests
// cross-check them on sampled members and on mutated near-misses.
package targets

import (
	"math/rand"

	"glade/internal/cfg"
	"glade/internal/oracle"
)

// Target is one evaluation language.
type Target struct {
	// Name identifies the target in tables ("url", "grep", "lisp", "xml").
	Name string
	// Grammar is the ground-truth context-free grammar defining L*.
	Grammar *cfg.Grammar
	// Oracle answers membership in L* (a hand-written parser; the "program").
	Oracle oracle.Oracle
	// DocSeeds are a few representative hand-picked seed inputs, standing in
	// for the paper's "examples from documentation".
	DocSeeds []string
	// SeedGen generates random *realistic* valid inputs — the distribution
	// seed inputs actually come from (documentation examples, test suites).
	// The uniform PCFG sampler over Grammar produces adversarially
	// unstructured strings no human test suite contains; learning from
	// those is a different (harder) problem than the paper's.
	SeedGen func(rng *rand.Rand) string
}

// All returns the four evaluation targets in the paper's order.
func All() []*Target {
	return []*Target{URL(), Grep(), Lisp(), XML()}
}

// ByName returns the named target, or nil.
func ByName(name string) *Target {
	for _, t := range All() {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// SampleSeeds draws n distinct seed inputs. Seeds play the role of the
// paper's "small test suites or examples from documentation", so they are
// drawn from SeedGen (the realistic distribution) when available, falling
// back to short samples from the ground-truth grammar. Duplicates are
// re-drawn (bounded), so the result may be shorter than n for very small
// languages.
func (t *Target) SampleSeeds(rng *rand.Rand, n int) []string {
	var draw func() string
	if t.SeedGen != nil {
		draw = func() string { return t.SeedGen(rng) }
	} else {
		sm := cfg.NewSampler(t.Grammar, 14)
		draw = func() string { return sm.Sample(rng) }
	}
	seen := map[string]bool{}
	var out []string
	for attempts := 0; len(out) < n && attempts < 200*n; attempts++ {
		s := draw()
		if seen[s] || len(s) > 60 {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}

// EvalSampler returns the sampler defining the target distribution PL* of
// Definition 2.1 used to measure recall: an even mixture of the realistic
// distribution (SeedGen) and shallow samples from the ground-truth grammar,
// so recall rewards both realistic and structurally adventurous strings.
func (t *Target) EvalSampler() func(rng *rand.Rand) string {
	sm := cfg.NewSampler(t.Grammar, 12)
	return func(rng *rand.Rand) string {
		if t.SeedGen != nil && rng.Intn(2) == 0 {
			return t.SeedGen(rng)
		}
		return sm.Sample(rng)
	}
}
