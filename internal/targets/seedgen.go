package targets

import (
	"math/rand"
	"strings"
)

// words is the shared vocabulary the realistic seed generators draw
// identifiers from.
var words = []string{
	"a", "api", "app", "bar", "baz", "blog", "cdn", "com", "data", "dev",
	"doc", "example", "file", "foo", "home", "img", "index", "item", "lib",
	"list", "main", "net", "news", "org", "page", "print", "qux", "shop",
	"site", "src", "test", "user", "web", "x", "y", "zip",
}

func word(rng *rand.Rand) string { return words[rng.Intn(len(words))] }

func digits(rng *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('0' + rng.Intn(10)))
	}
	return b.String()
}

// urlSeed generates a realistic URL: scheme, optional www, dotted host,
// known TLD, optional port, path, and query.
func urlSeed(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString([]string{"http", "https", "ftp"}[rng.Intn(3)])
	b.WriteString("://")
	if rng.Intn(3) == 0 {
		b.WriteString("www.")
	}
	for i := rng.Intn(2); i >= 0; i-- {
		b.WriteString(word(rng))
		b.WriteByte('.')
	}
	b.WriteString([]string{"com", "org", "net", "io", "dev", "co"}[rng.Intn(6)])
	if rng.Intn(4) == 0 {
		b.WriteByte(':')
		b.WriteString(digits(rng, 1+rng.Intn(4)))
	}
	for i := rng.Intn(3); i > 0; i-- {
		b.WriteByte('/')
		b.WriteString(word(rng))
	}
	if rng.Intn(3) == 0 {
		b.WriteByte('/')
	}
	if rng.Intn(3) == 0 {
		b.WriteByte('?')
		b.WriteString(word(rng))
		b.WriteByte('=')
		b.WriteString(digits(rng, 1))
		if rng.Intn(2) == 0 {
			b.WriteByte('&')
			b.WriteString(word(rng))
			b.WriteByte('=')
			b.WriteString(word(rng))
		}
	}
	return b.String()
}

// grepSeed generates a realistic basic regular expression.
func grepSeed(rng *rand.Rand) string {
	var b strings.Builder
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			b.WriteString(word(rng))
		case 1:
			b.WriteString("[a-z]")
		case 2:
			b.WriteString("[0-9]*")
		case 3:
			b.WriteString(".")
		case 4:
			b.WriteString(`\(`)
			b.WriteString(word(rng))
			if rng.Intn(2) == 0 {
				b.WriteString(`\|`)
				b.WriteString(word(rng))
			}
			b.WriteString(`\)`)
			if rng.Intn(2) == 0 {
				b.WriteByte('*')
			}
		default:
			b.WriteString(word(rng))
			b.WriteByte('*')
		}
	}
	return b.String()
}

// lispSeed generates a realistic s-expression.
func lispSeed(rng *rand.Rand) string {
	ops := []string{"define", "lambda", "if", "car", "cons", "+", "*", "list", "print"}
	var expr func(depth int) string
	expr = func(depth int) string {
		var parts []string
		if rng.Intn(4) == 0 {
			parts = append(parts, word(rng))
		} else {
			parts = append(parts, ops[rng.Intn(len(ops))])
		}
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			switch {
			case depth > 0 && rng.Intn(3) == 0:
				parts = append(parts, expr(depth-1))
			case rng.Intn(5) == 0:
				parts = append(parts, `"`+word(rng)+`"`)
			case rng.Intn(5) == 0:
				parts = append(parts, "'"+word(rng))
			case rng.Intn(3) == 0:
				parts = append(parts, digits(rng, 1+rng.Intn(2)))
			default:
				parts = append(parts, word(rng))
			}
		}
		return "(" + strings.Join(parts, " ") + ")"
	}
	s := expr(2)
	if rng.Intn(6) == 0 {
		s = strings.Replace(s, " ", " ; note\n ", 1)
	}
	return s
}

// xmlSeed generates a realistic XML document for the fixed-tag target.
func xmlSeed(rng *rand.Rand) string {
	var elem func(depth int) string
	elem = func(depth int) string {
		var b strings.Builder
		b.WriteString("<a")
		for i := rng.Intn(3); i > 0; i-- {
			b.WriteByte(' ')
			b.WriteString(word(rng))
			b.WriteString(`="`)
			if rng.Intn(2) == 0 {
				b.WriteString(word(rng))
			}
			b.WriteByte('"')
		}
		if depth == 0 || rng.Intn(4) == 0 {
			b.WriteString("/>")
			return b.String()
		}
		b.WriteByte('>')
		for i := 1 + rng.Intn(3); i > 0; i-- {
			switch rng.Intn(6) {
			case 0:
				b.WriteString(elem(depth - 1))
			case 1:
				b.WriteString("<!-- " + word(rng) + " -->")
			case 2:
				b.WriteString("<![CDATA[" + word(rng) + "]]>")
			case 3:
				b.WriteString("<?" + word(rng) + " " + word(rng) + "?>")
			default:
				b.WriteString(word(rng))
				if rng.Intn(3) == 0 {
					b.WriteByte(' ')
					b.WriteString(digits(rng, 1))
				}
			}
		}
		b.WriteString("</a>")
		return b.String()
	}
	return elem(2)
}
