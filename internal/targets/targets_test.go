package targets

import (
	"math/rand"
	"testing"

	"glade/internal/cfg"
)

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("All() returned %d targets", len(all))
	}
	names := map[string]bool{}
	for _, tgt := range all {
		if tgt.Name == "" || tgt.Grammar == nil || tgt.Oracle == nil {
			t.Fatalf("incomplete target %+v", tgt)
		}
		if err := tgt.Grammar.Validate(); err != nil {
			t.Fatalf("%s grammar invalid: %v", tgt.Name, err)
		}
		names[tgt.Name] = true
		if ByName(tgt.Name) == nil {
			t.Fatalf("ByName(%q) = nil", tgt.Name)
		}
	}
	for _, want := range []string{"url", "grep", "lisp", "xml"} {
		if !names[want] {
			t.Fatalf("missing target %q", want)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("ByName of unknown target non-nil")
	}
}

func TestDocSeedsValid(t *testing.T) {
	for _, tgt := range All() {
		if len(tgt.DocSeeds) < 3 {
			t.Errorf("%s: only %d doc seeds", tgt.Name, len(tgt.DocSeeds))
		}
		p := cfg.NewParser(tgt.Grammar)
		for _, s := range tgt.DocSeeds {
			if !tgt.Oracle.Accepts(s) {
				t.Errorf("%s: oracle rejects doc seed %q", tgt.Name, s)
			}
			if !p.Accepts(s) {
				t.Errorf("%s: grammar rejects doc seed %q", tgt.Name, s)
			}
		}
	}
}

// TestGrammarOracleAgreementOnSamples: every grammar sample must be
// accepted by the hand parser — the two definitions of L* agree on members.
func TestGrammarOracleAgreementOnSamples(t *testing.T) {
	for _, tgt := range All() {
		sm := cfg.NewSampler(tgt.Grammar, 26)
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 400; i++ {
			s := sm.Sample(rng)
			if !tgt.Oracle.Accepts(s) {
				t.Fatalf("%s: oracle rejects grammar sample %q", tgt.Name, s)
			}
		}
	}
}

// TestGrammarOracleAgreementOnMutants: random single-byte mutations of
// samples must classify identically under the Earley parser and the hand
// parser — the two definitions agree on non-members too.
func TestGrammarOracleAgreementOnMutants(t *testing.T) {
	for _, tgt := range All() {
		p := cfg.NewParser(tgt.Grammar)
		sm := cfg.NewSampler(tgt.Grammar, 22)
		rng := rand.New(rand.NewSource(29))
		alphabet := []byte("abcz019 <>/()[]{}\"'\\.*|=&?#:;\n-")
		for i := 0; i < 120; i++ {
			s := sm.Sample(rng)
			for k := 0; k < 6; k++ {
				m := mutate(rng, s, alphabet)
				if len(m) > 120 {
					continue
				}
				want := p.Accepts(m)
				got := tgt.Oracle.Accepts(m)
				if got != want {
					t.Fatalf("%s: oracle=%v grammar=%v on %q (mutant of %q)",
						tgt.Name, got, want, m, s)
				}
			}
		}
	}
}

func mutate(rng *rand.Rand, s string, alphabet []byte) string {
	b := []byte(s)
	switch rng.Intn(3) {
	case 0: // insert
		pos := rng.Intn(len(b) + 1)
		c := alphabet[rng.Intn(len(alphabet))]
		b = append(b[:pos], append([]byte{c}, b[pos:]...)...)
	case 1: // delete
		if len(b) == 0 {
			return s
		}
		pos := rng.Intn(len(b))
		b = append(b[:pos], b[pos+1:]...)
	default: // replace
		if len(b) == 0 {
			return s
		}
		pos := rng.Intn(len(b))
		b[pos] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

func TestSampleSeeds(t *testing.T) {
	tgt := XML()
	rng := rand.New(rand.NewSource(3))
	seeds := tgt.SampleSeeds(rng, 20)
	if len(seeds) != 20 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	seen := map[string]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %q", s)
		}
		seen[s] = true
		if !tgt.Oracle.Accepts(s) {
			t.Fatalf("invalid seed %q", s)
		}
	}
}

func TestURLCases(t *testing.T) {
	o := URL().Oracle
	valid := []string{
		"http://a.bc",
		"https://www.example.org/a/b?x=1&y=2",
		"ftp://files.example-site.net/pub/file.txt",
		"http://x0.y1.zz/p/q.r?a=1&b=2",
		"http://a.b.co",         // any dot may split host from TLD
		"http://a:8080.com",     // ':' is a host char in the regex
		"https://www.ab.cdefgh", // 6-letter TLD
	}
	for _, s := range valid {
		if !o.Accepts(s) {
			t.Errorf("rejects valid %q", s)
		}
	}
	invalid := []string{
		"",
		"http://",
		"http://host",   // no dot
		"http://a.b",    // 1-letter TLD (regex wants 2-6)
		"gopher://a.bc", // unknown scheme
		"http:/a.bc",
		"HTTP://a.bc",     // uppercase not in our lowercase alphabet
		"http://.bc",      // empty host part
		"http://ab.cd|ef", // '|' not a path char
	}
	for _, s := range invalid {
		if o.Accepts(s) {
			t.Errorf("accepts invalid %q", s)
		}
	}
}

func TestGrepCases(t *testing.T) {
	o := Grep().Oracle
	valid := []string{
		"",
		"abc",
		"a*",
		"a**",
		".*",
		"[abc]x",
		"[^a-z]",
		`\(a\)`,
		`\(a\|b\)*c`,
		`a\|`,
		`\|a`,
		`ab c`,
	}
	for _, s := range valid {
		if !o.Accepts(s) {
			t.Errorf("rejects valid %q", s)
		}
	}
	invalid := []string{
		"*a",
		"a\\",
		`\x`,
		"[",
		"[]",
		"a]",
		`\(a`,
		`a\)`,
		`\(\|*\)`,
		"a^b", // '^' is not ordinary in our grammar
	}
	for _, s := range invalid {
		if o.Accepts(s) {
			t.Errorf("accepts invalid %q", s)
		}
	}
}

func TestLispCases(t *testing.T) {
	o := Lisp().Oracle
	valid := []string{
		"(a)",
		"(+ 1 2)",
		"(f (g x) y)",
		"(f \"str with (parens)\")",
		"(f 'x '(a b))",
		"(f ; comment\n x)",
		"( f )",
		"(f(g))",
	}
	for _, s := range valid {
		if !o.Accepts(s) {
			t.Errorf("rejects valid %q", s)
		}
	}
	invalid := []string{
		"",
		"()",     // first item required
		"( )",    // likewise
		"(f",     // unterminated
		"f)",     // no open
		"(f))",   // extra close
		"(f \")", // unterminated string
		"(f ; comment no newline)",
		"x",
		"(F)", // uppercase not in alphabet
	}
	for _, s := range invalid {
		if o.Accepts(s) {
			t.Errorf("accepts invalid %q", s)
		}
	}
}

func TestXMLCases(t *testing.T) {
	o := XML().Oracle
	valid := []string{
		"<a></a>",
		"<a/>",
		"<a />",
		"<a>text</a>",
		`<a x="1"></a>`,
		`<a x="1" y="b c"><a/></a>`,
		"<a><!-- note --></a>",
		"<a><![CDATA[data]]></a>",
		"<a><?p target?></a>",
		"<a><a><a>deep</a></a></a>",
		"<a>line\nbreak</a>",
	}
	for _, s := range valid {
		if !o.Accepts(s) {
			t.Errorf("rejects valid %q", s)
		}
	}
	invalid := []string{
		"",
		"<a>",
		"</a>",
		"<a></b>",
		"<b></b>",
		`<a x=1></a>`,
		`<a x="1></a>`,
		`<ax="1"></a>`, // missing space before attribute
		"<a><!-- -- --></a>",
		"<a><?p?></a>", // PI needs space + body
		"<a>text",
		"<a><a></a>",
	}
	for _, s := range invalid {
		if o.Accepts(s) {
			t.Errorf("accepts invalid %q", s)
		}
	}
}
